// Package soma's root benchmark suite: one benchmark per paper artifact
// (Fig. 2, 3, 6, 7, 8, the Sec. VI-B statistics and the LLM observations)
// plus micro-benchmarks of the pipeline stages. Benchmarks use the fast
// search profile; `somabench` regenerates the full figures.
package soma

import (
	"context"
	"testing"

	"soma/internal/cocco"
	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/exp"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/isa"
	"soma/internal/models"
	"soma/internal/sim"
	"soma/internal/soma"
	"soma/internal/trace"
	"soma/internal/workload"
)

func fastPar() soma.Params { return soma.FastParams() }

// BenchmarkFig2Motivation regenerates the Sec. III-B double-buffer
// utilization imbalance (one Cocco schedule of ResNet-50, edge, batch 1).
func BenchmarkFig2Motivation(b *testing.B) {
	g := models.ResNet50(1)
	for i := 0; i < b.N; i++ {
		res, err := cocco.New(g, hw.Edge(), soma.EDP(), fastPar()).Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics.DRAMUtilization >= 1 || res.Metrics.ComputeUtilization >= 1 {
			b.Fatal("utilization out of range")
		}
	}
}

// BenchmarkFig3Scatter regenerates the per-layer and per-tile ops-vs-DRAM
// scatter for ResNet-50.
func BenchmarkFig3Scatter(b *testing.B) {
	g := models.ResNet50(1)
	for i := 0; i < b.N; i++ {
		layers := exp.Fig3Layers(g)
		tiles, err := exp.Fig3Tiles(g, hw.Edge(), fastPar())
		if err != nil {
			b.Fatal(err)
		}
		if exp.Spread(tiles) <= exp.Spread(layers) {
			b.Fatal("tiles must be more spread out than layers")
		}
	}
}

// BenchmarkFig6Overall regenerates one Fig. 6 bar group (Cocco vs Ours_1 vs
// Ours_2) on ResNet-50, edge, batch 1.
func BenchmarkFig6Overall(b *testing.B) {
	c := exp.Case{Platform: "edge", Workload: "resnet50", Batch: 1}
	for i := 0; i < b.N; i++ {
		r := exp.RunPair(c, fastPar())
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		if r.Ours2.LatencyNS > r.Cocco.LatencyNS {
			b.Fatal("SoMa lost to Cocco on its best-case workload")
		}
	}
}

// BenchmarkFig6Stats regenerates the Sec. VI-B1 fusion statistics for one
// case (tile counts, LGs, FLGs).
func BenchmarkFig6Stats(b *testing.B) {
	c := exp.Case{Platform: "edge", Workload: "resnet50", Batch: 1}
	for i := 0; i < b.N; i++ {
		r := exp.RunPair(c, fastPar())
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		if r.Cocco.Tiles <= r.Ours2.Tiles {
			b.Fatal("Cocco must over-tile relative to SoMa")
		}
	}
}

// BenchmarkLLMDecode regenerates one LLM-observation point: GPT-2-Small
// decode at batch 4 on the edge platform.
func BenchmarkLLMDecode(b *testing.B) {
	g := models.GPT2Decode(models.GPT2Small(), 4)
	for i := 0; i < b.N; i++ {
		res, err := soma.New(g, hw.Edge(), soma.EDP(), fastPar()).Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Stage2.Metrics.Utilization > 0.2 {
			b.Fatal("decode cannot be compute-bound")
		}
	}
}

// BenchmarkFig7DSE regenerates one cell of the Fig. 7 heatmap (ResNet-50,
// batch 1, 32 GB/s x 8 MB).
func BenchmarkFig7DSE(b *testing.B) {
	g := models.ResNet50(1)
	cfg := hw.Edge().WithDRAM(32).WithGBuf(8 << 20)
	for i := 0; i < b.N; i++ {
		if _, err := soma.New(g, cfg, soma.EDP(), fastPar()).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Trace regenerates the execution-graph comparison for the
// quickstart-scale network.
func BenchmarkFig8Trace(b *testing.B) {
	c := exp.Case{Platform: "edge", Workload: "resnet50", Batch: 1}
	for i := 0; i < b.N; i++ {
		tp, err := exp.Fig8(context.Background(), c, fastPar())
		if err != nil {
			b.Fatal(err)
		}
		if len(trace.Render(tp.Ours2, tp.M2, 100)) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkScenario measures one composed multi-model run: the built-in
// multi-tenant CNN mix scheduled as a single graph plus its per-model
// isolated baselines (the exp.RunScenario flow behind `soma -scenario` and
// scenario jobs in somad).
func BenchmarkScenario(b *testing.B) {
	sc, err := workload.Builtin("multi-tenant-cnn")
	if err != nil {
		b.Fatal(err)
	}
	par := fastPar()
	par.Beta1, par.Beta2 = 2, 1
	for i := 0; i < b.N; i++ {
		res, err := exp.RunScenario(exp.ScenarioRun{Scenario: sc, Platform: "edge",
			Obj: soma.EDP(), Par: par})
		if err != nil {
			b.Fatal(err)
		}
		if res.Scenario == nil || res.Scenario.ComposedSpeedup <= 0 {
			b.Fatal("scenario aggregates missing")
		}
	}
}

// --- portfolio search engine ----------------------------------------------

// benchPortfolio runs the SoMa search on ResNet-50 (edge, batch 1) with an
// 8-chain portfolio on the given worker count. Comparing the Workers=1 and
// Workers=8 variants measures the engine's parallel speedup; the best
// schedule is identical across all of them by construction.
func benchPortfolio(b *testing.B, workers int) {
	g := models.ResNet50(1)
	par := fastPar()
	par.Chains = 8
	par.Workers = workers
	for i := 0; i < b.N; i++ {
		res, err := soma.New(g, hw.Edge(), soma.EDP(), par).Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Cache.Hits == 0 {
			b.Fatal("portfolio run must produce evaluation-cache hits")
		}
	}
}

// BenchmarkPortfolioSerial is the baseline: 8 chains on one worker.
func BenchmarkPortfolioSerial(b *testing.B) { benchPortfolio(b, 1) }

// BenchmarkPortfolio4Workers runs the same 8 chains on 4 workers.
func BenchmarkPortfolio4Workers(b *testing.B) { benchPortfolio(b, 4) }

// BenchmarkPortfolio8Workers runs the same 8 chains on 8 workers.
func BenchmarkPortfolio8Workers(b *testing.B) { benchPortfolio(b, 8) }

// BenchmarkEvalCacheHit measures a memoized re-evaluation (one canonical-key
// build plus a map lookup) against BenchmarkSimulate's full replay.
func BenchmarkEvalCacheHit(b *testing.B) {
	s := resnetSchedule(b)
	cs := coresched.New(hw.Edge())
	cache := sim.NewCache(0)
	if _, err := cache.Evaluate(s, cs, sim.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Evaluate(s, cs, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the pipeline stages -------------------------------

func resnetSchedule(b *testing.B) *core.Schedule {
	b.Helper()
	g := models.ResNet50(1)
	s, err := core.Parse(g, core.DefaultEncoding(g, 4))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkParse measures LFA parsing of ResNet-50 (encoding -> schedule).
func BenchmarkParse(b *testing.B) {
	g := models.ResNet50(1)
	e := core.DefaultEncoding(g, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Parse(g, e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate measures one timeline evaluation of ResNet-50.
func BenchmarkSimulate(b *testing.B) {
	s := resnetSchedule(b)
	cs := coresched.New(hw.Edge())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Evaluate(s, cs, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreSched measures one uncached core-array scheduler search.
func BenchmarkCoreSched(b *testing.B) {
	req := coresched.Request{
		Kind: graph.Conv, OutElems: 56 * 56, OutC: 256, InC: 128,
		KH: 3, KW: 3, InBytes: 58 * 58 * 128, OutBytes: 56 * 56 * 256,
		WeightBytes: 128 * 256 * 9, Ops: 2 * 56 * 56 * 256 * 128 * 9, ElemBytes: 1,
	}
	for i := 0; i < b.N; i++ {
		cs := coresched.New(hw.Edge()) // fresh cache each time
		cs.Evaluate(req)
	}
}

// BenchmarkBufferUsage measures buffer-occupancy accounting.
func BenchmarkBufferUsage(b *testing.B) {
	s := resnetSchedule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.PeakBuffer() <= 0 {
			b.Fatal("no buffer usage")
		}
	}
}

// BenchmarkIRGenerate measures lowering to the abstract instruction stream.
func BenchmarkIRGenerate(b *testing.B) {
	s := resnetSchedule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := isa.Generate(s, hw.Edge().GBufBytes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDLSAMove measures one stage-2 neighbor move + legality check.
func BenchmarkDLSAMove(b *testing.B) {
	s := resnetSchedule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := s.Clone()
		c.MoveTensor(i%len(c.Order), (i*7)%len(c.Order))
		if !c.OrderValid() {
			b.Fatal("move broke order")
		}
	}
}
