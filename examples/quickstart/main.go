// Quickstart: build a small DNN with the graph API, schedule it through the
// engine on the edge accelerator preset, and print the report plus the
// execution graph. This is the minimal end-to-end path through the library:
//
//	graph -> engine.Request -> engine.Run -> payload (+ raw schedule) -> trace.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"soma/internal/coresched"
	"soma/internal/engine"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/sim"
	"soma/internal/soma"
	"soma/internal/trace"
)

func main() {
	// A five-layer CNN mirroring the paper's Fig. 4 example: two convs,
	// a pooling layer, and two independent conv heads.
	g := graph.New("fig4-quickstart", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input,
		Out: graph.Shape{N: 1, C: 16, H: 64, W: 64}})
	a := g.Add(graph.Layer{Name: "A", Kind: graph.Conv,
		Deps:        []graph.Dep{{Producer: in}},
		Out:         graph.Shape{N: 1, C: 32, H: 64, W: 64},
		K:           graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 16 * 32 * 9, Ops: 2 * 16 * 32 * 9 * 64 * 64})
	b := g.Add(graph.Layer{Name: "B", Kind: graph.Conv,
		Deps:        []graph.Dep{{Producer: a}},
		Out:         graph.Shape{N: 1, C: 32, H: 64, W: 64},
		K:           graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 32 * 32 * 9, Ops: 2 * 32 * 32 * 9 * 64 * 64})
	c := g.Add(graph.Layer{Name: "C", Kind: graph.Pool,
		Deps: []graph.Dep{{Producer: b}},
		Out:  graph.Shape{N: 1, C: 32, H: 32, W: 32},
		K:    graph.Kernel{KH: 2, KW: 2, SH: 2, SW: 2}, Ops: 32 * 32 * 32 * 4})
	g.Add(graph.Layer{Name: "E", Kind: graph.Conv,
		Deps:        []graph.Dep{{Producer: c}},
		Out:         graph.Shape{N: 1, C: 32, H: 32, W: 32},
		K:           graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 32 * 32 * 9, Ops: 2 * 32 * 32 * 9 * 32 * 32})
	g.Add(graph.Layer{Name: "D", Kind: graph.Conv,
		Deps:        []graph.Dep{{Producer: c}},
		Out:         graph.Shape{N: 1, C: 32, H: 32, W: 32},
		K:           graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 32 * 32 * 9, Ops: 2 * 32 * 32 * 9 * 32 * 32})
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Print(g.Summary())

	// Explore the DRAM Communication Scheduling Space: one engine.Request
	// with an explicit graph (a registry model name works the same way).
	cfg := hw.Edge()
	res, err := engine.Run(context.Background(), engine.Request{
		Graph: g, Platform: "edge", Params: soma.DefaultParams()}, nil)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Raw.Metrics
	fmt.Printf("encoding: %s\n", res.Raw.Encoding)
	fmt.Printf("latency:  %.3f ms  (stage 1: %.3f ms)\n",
		m.LatencyNS/1e6, res.Raw.Stage1Metrics.LatencyNS/1e6)
	fmt.Printf("energy:   %.3f mJ\n", m.EnergyPJ/1e9)
	fmt.Printf("util:     %.2f%% of peak (bound %.2f%%)\n",
		100*m.Utilization, 100*m.TheoreticalMaxUtil)

	// Replay with tracing to draw the DRAM-COMPUTE diagram.
	traced, err := sim.Evaluate(res.Raw.Schedule, coresched.New(cfg), sim.Options{Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trace.Render(res.Raw.Schedule, traced, 100))
	fmt.Print(trace.Legend(res.Raw.Schedule))
}
