// Custom-hardware design study: a miniature version of the paper's Fig. 7
// design-space exploration plus the compiler back-end. Sweeps DRAM bandwidth
// against buffer size for a custom accelerator, reports the cheapest
// configuration that stays within 5% of the best latency (the paper's
// "buffer compensates bandwidth" insight), then lowers the winning schedule
// to the abstract instruction stream.
//
// Run: go run ./examples/custom_hw
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"soma/internal/engine"
	"soma/internal/hw"
	"soma/internal/isa"
	"soma/internal/report"
	"soma/internal/soma"
)

func main() {
	par := soma.DefaultParams()

	type point struct {
		bw    float64
		bufMB int64
		ms    float64
		res   *report.Result
		cfg   hw.Config
	}
	var pts []point
	best := point{ms: 1e18}
	fmt.Println("latency (ms) for ResNet-50 batch 4 on a 16 TOPS custom accelerator:")
	fmt.Printf("%10s", "bw\\buf")
	bufs := []int64{4, 8, 16}
	for _, b := range bufs {
		fmt.Printf("  %6dMB", b)
	}
	fmt.Println()
	for _, bw := range []float64{8, 16, 32, 64} {
		fmt.Printf("%8gGB", bw)
		for _, bufMB := range bufs {
			cfg := hw.Edge().WithDRAM(bw).WithGBuf(bufMB << 20)
			// Config overrides the platform preset; the engine still
			// resolves the model and assembles the payload.
			res, err := engine.Run(context.Background(), engine.Request{
				Model: "resnet50", Batch: 4, Platform: "edge", Config: &cfg,
				Params: par}, nil)
			if err != nil {
				fmt.Printf("  %8s", "inf")
				continue
			}
			ms := res.Metrics.LatencyNS / 1e6
			pts = append(pts, point{bw, bufMB, ms, res, cfg})
			if ms < best.ms {
				best = pts[len(pts)-1]
			}
			fmt.Printf("  %8.2f", ms)
		}
		fmt.Println()
	}

	// Cheapest config within 5% of the best latency: prefer low bandwidth
	// (expensive HBM-class interfaces) over buffer area.
	pick := best
	for _, p := range pts {
		if p.ms <= best.ms*1.05 && (p.bw < pick.bw || (p.bw == pick.bw && p.bufMB < pick.bufMB)) {
			pick = p
		}
	}
	fmt.Printf("\nbest latency: %.2f ms at %gGB/s + %dMB\n", best.ms, best.bw, best.bufMB)
	fmt.Printf("recommended:  %gGB/s + %dMB (%.2f ms, within 5%%) - buffer substitutes bandwidth\n",
		pick.bw, pick.bufMB, pick.ms)

	// Lower the recommended schedule to instructions.
	prog, err := isa.Generate(pick.res.Raw.Schedule, pick.cfg.GBufBytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlowered program: %d instructions (%d loads / %d stores / %d computes), GBUF high water %.2f MB\n",
		len(prog.Instrs), prog.Counts()[isa.Load], prog.Counts()[isa.Store],
		prog.Counts()[isa.Compute], float64(prog.GBufHighWater)/(1<<20))
	f, err := os.CreateTemp("", "soma-*.ir")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := prog.WriteText(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instruction stream written to %s\n", f.Name())
}
