// Fig. 4 walkthrough: reconstructs the paper's worked example - the
// five-layer network A..E with Computing Order [A B C E D], FLC Set {1,2},
// DRAM Cut Set {2} and Tiling Numbers 2,1,2 - and shows how the
// Tensor-centric Notation parses into the tile sequence
// A1 A2 B C1 E1 D1 C2 E2 D2 and exactly thirteen DRAM tensors
// (IA1 IA2 WA WB WE WD OB IC1 IC2 OE1 OE2 OD1 OD2), then evaluates the
// schedule and renders the DRAM-COMPUTE-BUFFER diagram.
//
// Run: go run ./examples/fig4_walkthrough
package main

import (
	"fmt"
	"log"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/sim"
	"soma/internal/trace"
)

func main() {
	// Topology of Fig. 4: A -> B -> C(pool); C -> E; C -> D.
	g := graph.New("fig4", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input,
		Out: graph.Shape{N: 1, C: 16, H: 64, W: 64}})
	a := g.Add(graph.Layer{Name: "A", Kind: graph.Conv,
		Deps:        []graph.Dep{{Producer: in}},
		Out:         graph.Shape{N: 1, C: 32, H: 64, W: 64},
		K:           graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 16 * 32 * 9, Ops: 2 * 16 * 32 * 9 * 64 * 64})
	b := g.Add(graph.Layer{Name: "B", Kind: graph.Conv,
		Deps:        []graph.Dep{{Producer: a}},
		Out:         graph.Shape{N: 1, C: 32, H: 64, W: 64},
		K:           graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 32 * 32 * 9, Ops: 2 * 32 * 32 * 9 * 64 * 64})
	c := g.Add(graph.Layer{Name: "C", Kind: graph.Pool,
		Deps: []graph.Dep{{Producer: b}},
		Out:  graph.Shape{N: 1, C: 32, H: 32, W: 32},
		K:    graph.Kernel{KH: 2, KW: 2, SH: 2, SW: 2}, Ops: 32 * 32 * 32 * 4})
	e := g.Add(graph.Layer{Name: "E", Kind: graph.Conv,
		Deps:        []graph.Dep{{Producer: c}},
		Out:         graph.Shape{N: 1, C: 32, H: 32, W: 32},
		K:           graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 32 * 32 * 9, Ops: 2 * 32 * 32 * 9 * 32 * 32})
	d := g.Add(graph.Layer{Name: "D", Kind: graph.Conv,
		Deps:        []graph.Dep{{Producer: c}},
		Out:         graph.Shape{N: 1, C: 32, H: 32, W: 32},
		K:           graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 32 * 32 * 9, Ops: 2 * 32 * 32 * 9 * 32 * 32})

	// The paper's encoding: [A | B || C,E,D] with tiling 2,1,2.
	enc := &core.Encoding{
		Order:  []graph.LayerID{a, b, c, e, d},
		FLCs:   []int{1, 2},
		IsDRAM: []bool{false, true},
		Tile:   []int{2, 1, 2},
	}
	fmt.Printf("encoding: %s\n\n", enc)

	s, err := core.Parse(g, enc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("COMPUTE row (the paper's A1 A2 B C1 E1 D1 C2 E2 D2):")
	for _, tl := range s.Tiles {
		fmt.Printf("  %d: %s%d  FLG%d LG%d  region %v\n",
			tl.Seq, g.Layer(tl.Layer).Name, tl.Index+1, tl.FLG, tl.LG, tl.Region)
	}

	fmt.Printf("\nDRAM tensors (%d, the paper's example has 13) in DRAM Tensor Order:\n", len(s.Tensors))
	for _, id := range s.Order {
		ts := &s.Tensors[id]
		switch {
		case ts.Kind == core.StoreOfmap:
			fmt.Printf("  O%s%d  bytes=%-6d living=(%d,%d)\n",
				g.Layer(ts.Layer).Name, tileIdx(s, ts.Producer)+1, ts.Bytes, ts.Producer, ts.End)
		case ts.Kind == core.LoadWeight:
			fmt.Printf("  W%s   bytes=%-6d living=(%d,%d)\n",
				g.Layer(ts.Layer).Name, ts.Bytes, ts.Start, ts.Release)
		default:
			fmt.Printf("  I%s%d  bytes=%-6d living=(%d,%d)\n",
				g.Layer(ts.Layer).Name, tileIdx(s, ts.FirstUse)+1, ts.Bytes, ts.Start, ts.Release)
		}
	}

	cs := coresched.New(hw.Edge())
	m, err := sim.Evaluate(s, cs, sim.Options{Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(trace.Render(s, m, 100))
	_ = in
}

// tileIdx maps a tile seq back to its within-FLG index.
func tileIdx(s *core.Schedule, seq int) int { return s.Tiles[seq].Index }
