// LLM batching study: reproduces the paper's two decode-phase observations
// on GPT-2 (Sec. VI-B): (1) decode imposes an almost pure DRAM-bandwidth
// demand, leaving DRAM scheduling little room; (2) utilization grows
// sublinearly with batch size because the per-sample KV cache catches up
// with the shared weights.
//
// Run: go run ./examples/llm_batching [-model gpt2s|gpt2xl]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"soma/internal/engine"
	"soma/internal/hw"
	"soma/internal/models"
	"soma/internal/soma"
)

func main() {
	model := flag.String("model", "gpt2s", "gpt2s (edge) or gpt2xl (cloud)")
	flag.Parse()

	var cfg hw.Config
	var gc models.GPTConfig
	var platform string
	switch *model {
	case "gpt2s":
		cfg, gc, platform = hw.Edge(), models.GPT2Small(), "edge"
	case "gpt2xl":
		cfg, gc, platform = hw.Cloud(), models.GPT2XL(), "cloud"
	default:
		log.Fatalf("unknown model %q", *model)
	}
	par := soma.DefaultParams()

	fmt.Printf("%s decode on %s (context %d tokens)\n", gc.Name, cfg.Name, gc.SeqLen)
	fmt.Printf("%5s  %9s  %9s  %10s  %12s  %10s\n",
		"batch", "util", "dram-busy", "latency", "tok/s", "kv:weights")
	prevUtil := 0.0
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64} {
		g := models.GPT2Decode(gc, b)
		res, err := engine.Run(context.Background(), engine.Request{Graph: g,
			Model: *model + "-decode", Batch: b, Platform: platform, Params: par}, nil)
		if err != nil {
			fmt.Printf("%5d  infeasible: %v\n", b, err)
			continue
		}
		m := res.Metrics
		kv := float64(2*gc.Layers*b*gc.SeqLen*gc.DModel) /
			float64(g.TotalWeightBytes()-2*int64(gc.Layers)*int64(b)*int64(gc.SeqLen)*int64(gc.DModel))
		growth := ""
		if prevUtil > 0 {
			growth = fmt.Sprintf(" (x%.2f)", m.Utilization/prevUtil)
		}
		prevUtil = m.Utilization
		fmt.Printf("%5d  %8.2f%%  %8.1f%%  %9.3fms  %11.1f  %9.2f%s\n",
			b, 100*m.Utilization, 100*m.DRAMUtilization, m.LatencyNS/1e6,
			float64(b)/(m.LatencyNS/1e9), kv, growth)
	}
	fmt.Println("\nDoubling the batch stops doubling utilization once kv:weights approaches 1 -")
	fmt.Println("the KV cache, unlike weights, scales with batch, capping decode compute density.")
}
