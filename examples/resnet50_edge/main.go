// ResNet-50 on the edge accelerator: the paper's running example
// (Sec. VII-B). Compares the Cocco baseline against SoMa's two stages and
// prints where the gains come from - fewer/coarser tiles, more fusion, and
// DRAM idle-time exploitation.
//
// Run: go run ./examples/resnet50_edge [-batch N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"soma/internal/core"
	"soma/internal/engine"
	"soma/internal/sim"
	"soma/internal/soma"
)

func main() {
	batch := flag.Int("batch", 1, "batch size")
	flag.Parse()

	// One request, two backends: engine.Compare runs the baseline and SoMa
	// on the identical problem (the somad API and the soma CLI route every
	// search through the same engine.Run).
	req := engine.Request{Model: "resnet50", Batch: *batch, Platform: "edge",
		Params: soma.DefaultParams()}
	results, err := engine.Compare(context.Background(), req, "cocco", "soma")
	if err != nil {
		log.Fatal(err)
	}
	base, ours := results[0], results[1]

	describe("Cocco (baseline)", base.Raw.Schedule, base.Raw.Metrics)
	s1, err := core.Parse(ours.Raw.Graph, ours.Raw.Encoding)
	if err != nil {
		log.Fatal(err)
	}
	describe("SoMa stage 1 (LFA: fusion + tiling + order)", s1, ours.Raw.Stage1Metrics)
	describe("SoMa stage 2 (+DLSA: prefetch & delayed store)", ours.Raw.Schedule, ours.Raw.Metrics)

	m2, mc := ours.Raw.Metrics, base.Raw.Metrics
	fmt.Printf("\nSoMa vs Cocco: %.2fx faster, %.1f%% less energy, %.1fx fewer tiles\n",
		mc.LatencyNS/m2.LatencyNS,
		100*(1-m2.EnergyPJ/mc.EnergyPJ),
		float64(base.Raw.Schedule.NumTiles())/float64(ours.Raw.Schedule.NumTiles()))
	fmt.Printf("stage 2 closes %.1f%% of the gap to the no-stall bound (util %.2f%% of %.2f%%)\n",
		100*m2.Utilization/m2.TheoreticalMaxUtil, 100*m2.Utilization, 100*m2.TheoreticalMaxUtil)
}

func describe(name string, s *core.Schedule, m *sim.Metrics) {
	st := s.Summarize()
	fmt.Printf("%-48s lat=%8.3fms energy=%7.3fmJ util=%6.2f%% dram=%7.2fMB tiles=%5d LGs=%2d FLGs=%2d tiling=%v\n",
		name, m.LatencyNS/1e6, m.EnergyPJ/1e9, 100*m.Utilization,
		float64(st.DRAMBytes)/(1<<20), st.Tiles, st.LGs, st.FLGs, s.Enc.Tile)
}
