// Multi-tenant composition study: two CNNs sharing one edge accelerator,
// scheduled three ways - each model isolated (the serial back-to-back
// baseline), strictly sequential composition (barrier edges, but DRAM
// transfers overlap the model boundary), and free interleaving (the scheduler
// may interleave the tenants' tiles). The deltas show what cross-model DRAM
// communication scheduling buys: the composed schedules prefetch one tenant's
// weights under the other's compute, raising DRAM busy time and cutting
// latency relative to the isolated sum.
//
// Run: go run ./examples/multi_tenant [-a resnet50] [-b mobilenetv2]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"soma/internal/engine"
	"soma/internal/soma"
	"soma/internal/workload"
)

func main() {
	modelA := flag.String("a", "resnet50", "first tenant model")
	modelB := flag.String("b", "mobilenetv2", "second tenant model")
	batch := flag.Int("batch", 1, "batch size of both tenants")
	flag.Parse()

	par := soma.FastParams()
	scenario := func(name string, arrival workload.ArrivalMode) workload.Scenario {
		s := workload.Scenario{
			Name:    name,
			Arrival: arrival,
			Components: []workload.Component{
				{Name: "a", Model: *modelA, Batch: *batch},
				{Name: "b", Model: *modelB, Batch: *batch},
			},
		}
		s.Normalize()
		return s
	}

	fmt.Printf("tenants: %s + %s (batch %d) on edge\n\n", *modelA, *modelB, *batch)
	fmt.Printf("%-22s  %10s  %10s  %9s  %9s\n",
		"schedule", "latency", "vs isolated", "dram-busy", "energy")

	var isolated float64
	for _, arrival := range []workload.ArrivalMode{workload.Sequential, workload.Interleaved} {
		sc := scenario(string(arrival)+"-pair", arrival)
		res, err := engine.Run(context.Background(), engine.Request{
			Scenario: &sc, Platform: "edge", Params: par,
		}, nil)
		if err != nil {
			log.Fatal(err)
		}
		info := res.Scenario
		if isolated == 0 {
			// The isolated runs are identical across arrivals; print
			// the baseline row once.
			isolated = info.IsolatedSumLatencyNS
			var energy, busy float64
			for _, c := range info.Components {
				energy += c.Isolated.Metrics.EnergyPJ
				busy += c.Isolated.Metrics.DRAMUtilization *
					c.Isolated.Metrics.LatencyNS / info.IsolatedSumLatencyNS
			}
			fmt.Printf("%-22s  %9.3fms  %10s  %8.1f%%  %7.3fmJ\n",
				"isolated (serial sum)", isolated/1e6, "1.00x", 100*busy, energy/1e9)
		}
		m := res.Metrics
		fmt.Printf("%-22s  %9.3fms  %9.2fx  %8.1f%%  %7.3fmJ\n",
			"composed "+string(arrival), m.LatencyNS/1e6, info.ComposedSpeedup,
			100*m.DRAMUtilization, m.EnergyPJ/1e9)
	}

	fmt.Println("\nSequential composition already beats the isolated sum: the next tenant's")
	fmt.Println("weights stream during the previous tenant's compute tail. Interleaving")
	fmt.Println("relaxes the barrier as well, enlarging the scheduling space - at small")
	fmt.Println("search budgets the SA may not fully exploit it, so raise -profile/-chains")
	fmt.Println("to see the interleaved schedule catch up and pass the sequential one.")
}
