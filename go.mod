module soma

go 1.22
