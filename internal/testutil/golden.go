// Package testutil holds helpers shared by the repo's test packages.
//
// The one that matters is Golden: every fixed-seed golden comparison
// (cmd/soma payloads, engine results, dse journals) funnels through it so the
// compare-and-regenerate contract lives in one place. Run any golden test
// with UPDATE_GOLDENS=1 to rewrite the committed file from the current run:
//
//	UPDATE_GOLDENS=1 go test ./cmd/soma ./internal/engine
//
// then inspect the diff before committing - a golden update is a claim that
// the new bytes are the intended behavior.
package testutil

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

// Golden compares got against the committed golden file at path, byte for
// byte. With UPDATE_GOLDENS=1 in the environment it instead rewrites the file
// and skips the comparison (the test passes and the diff shows up in git).
func Golden(t *testing.T, path string, got []byte) {
	t.Helper()
	if os.Getenv("UPDATE_GOLDENS") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden %s: %v", path, err)
		}
		t.Logf("updated golden %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s: %v (run with UPDATE_GOLDENS=1 to create it)", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverged from golden (%d bytes, want %d); %s", path, len(got), len(want),
			firstDiff(got, want))
	}
}

// firstDiff renders the first byte offset where two payloads disagree, with a
// short context window - enough to locate a divergence in a multi-KB JSON
// payload without dumping both sides.
func firstDiff(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo := i - 20
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first difference at byte %d: got %q, want %q",
				i, clip(got, lo, i+20), clip(want, lo, i+20))
		}
	}
	return fmt.Sprintf("payloads agree for %d bytes, lengths differ", n)
}

func clip(b []byte, lo, hi int) string {
	if hi > len(b) {
		hi = len(b)
	}
	return string(b[lo:hi])
}
