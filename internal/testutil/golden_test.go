package testutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGoldenMatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.golden")
	if err := os.WriteFile(path, []byte("payload\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	Golden(t, path, []byte("payload\n"))
}

func TestGoldenUpdate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.golden")
	t.Setenv("UPDATE_GOLDENS", "1")
	Golden(t, path, []byte("fresh\n"))
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "fresh\n" {
		t.Fatalf("golden not written: %q", got)
	}
}

func TestFirstDiff(t *testing.T) {
	msg := firstDiff([]byte("aaaa-X-bbbb"), []byte("aaaa-Y-bbbb"))
	if !strings.Contains(msg, "byte 5") {
		t.Fatalf("firstDiff = %q", msg)
	}
	msg = firstDiff([]byte("same"), []byte("same-longer"))
	if !strings.Contains(msg, "lengths differ") {
		t.Fatalf("firstDiff = %q", msg)
	}
}
