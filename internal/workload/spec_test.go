package workload

import (
	"bytes"
	"reflect"
	"testing"
)

// TestSpecRoundTrip: parse -> marshal -> parse is lossless, and marshal is a
// fixed point (canonical bytes).
func TestSpecRoundTrip(t *testing.T) {
	minimal := []byte(`{
		"name": "mix",
		"components": [
			{"model": "resnet50"},
			{"name": "tenant-b", "model": "mobilenetv2", "batch": 4, "weight": 2}
		]
	}`)
	s1, err := ParseSpec(minimal)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := s1.MarshalSpec()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(b1)
	if err != nil {
		t.Fatalf("re-parsing canonical spec: %v", err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("round trip changed the scenario:\n%+v\n%+v", s1, s2)
	}
	b2, err := s2.MarshalSpec()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("canonical marshal is not a fixed point:\n%s\n%s", b1, b2)
	}

	// Defaults became explicit.
	if s1.Arrival != Interleaved || s1.Components[0].Name != "resnet50" ||
		s1.Components[0].Batch != 1 || s1.Components[0].Weight != 1 {
		t.Fatalf("defaults not normalized: %+v", s1)
	}
}

// TestBuiltinSpecsRoundTrip: every built-in scenario's spec round-trips.
func TestBuiltinSpecsRoundTrip(t *testing.T) {
	for _, sc := range Builtins() {
		b, err := sc.MarshalSpec()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		got, err := ParseSpec(b)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !reflect.DeepEqual(sc, got) {
			t.Fatalf("%s: round trip changed the scenario", sc.Name)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"name":"x","components":[{"model":"resnet50"}],"priority":"high"}`,
		"unknown model": `{"name":"x","components":[{"model":"alexnet"}]}`,
		"bad arrival":   `{"name":"x","arrival":"lifo","components":[{"model":"resnet50"}]}`,
		"not json":      `scenario: yaml`,
		"no components": `{"name":"x"}`,
		"trailing data": `{"name":"x","components":[{"model":"resnet50"}]}{"name":"y"}`,
	}
	for name, in := range cases {
		if _, err := ParseSpec([]byte(in)); err == nil {
			t.Errorf("%s: ParseSpec accepted %s", name, in)
		}
	}
}

func TestSpecSHA256DistinguishesScenarios(t *testing.T) {
	a, err := Builtin("multi-tenant-cnn")
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.Components = append([]Component(nil), a.Components...)
	b.Components[0].Batch = 16
	ha, err := a.SpecSHA256()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.SpecSHA256()
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Fatal("different scenarios must digest differently")
	}
	ha2, err := a.SpecSHA256()
	if err != nil {
		t.Fatal(err)
	}
	if ha != ha2 {
		t.Fatal("digest must be deterministic")
	}
}
