package workload

import (
	"fmt"
	"sort"
	"strings"

	"soma/internal/graph"
	"soma/internal/models"
)

// ArrivalMode describes how a scenario's models share the accelerator.
type ArrivalMode string

const (
	// Interleaved lets the scheduler freely interleave the models' tiles:
	// no cross-model ordering constraints, so a bandwidth-bound model's
	// DRAM traffic can hide under a compute-bound model's tiles (the
	// multi-tenant case).
	Interleaved ArrivalMode = "interleaved"
	// Sequential runs the models back to back: every tile of model i
	// precedes every tile of model i+1 (barrier edges), but DRAM transfers
	// still overlap the boundary - the next model's weights may prefetch
	// while the previous one computes. Components run in descending
	// priority weight.
	Sequential ArrivalMode = "sequential"
	// PrefillDecode is the LLM serving pair: exactly two components, a
	// *-prefill model followed by its *-decode sibling, composed
	// sequentially (the decode's KV cache exists only after prefill).
	PrefillDecode ArrivalMode = "prefill+decode"
)

// Valid reports whether the mode is one of the defined arrival modes.
func (m ArrivalMode) Valid() bool {
	switch m {
	case Interleaved, Sequential, PrefillDecode:
		return true
	}
	return false
}

// Component is one model instance inside a scenario.
type Component struct {
	// Name is the instance name, unique within the scenario (defaults to
	// the model name). Composed layer names are prefixed "<Name>/".
	Name string `json:"name,omitempty"`
	// Model is a workload name from the models registry.
	Model string `json:"model"`
	// Batch is the instance's batch size (default 1).
	Batch int `json:"batch,omitempty"`
	// Weight is the priority weight (default 1): sequential arrival runs
	// higher-weight components first, and aggregate scenario metrics
	// weight per-component contributions by it.
	Weight float64 `json:"weight,omitempty"`
}

func (c Component) String() string {
	return fmt.Sprintf("%s(%s,b%d,w%g)", c.Name, c.Model, c.Batch, c.Weight)
}

// Scenario composes N named model graphs into one schedulable workload.
type Scenario struct {
	Name       string      `json:"name"`
	Arrival    ArrivalMode `json:"arrival"`
	Components []Component `json:"components"`
}

// Normalize fills defaults in place: arrival mode interleaved, per-component
// name = model name, batch 1, weight 1. ParseSpec calls it before Validate so
// a minimal spec is complete.
func (s *Scenario) Normalize() {
	if s.Arrival == "" {
		s.Arrival = Interleaved
	}
	for i := range s.Components {
		c := &s.Components[i]
		if c.Name == "" {
			c.Name = c.Model
		}
		if c.Batch == 0 {
			c.Batch = 1
		}
		if c.Weight == 0 {
			c.Weight = 1
		}
	}
}

// Validate checks the scenario against the model registry and the arrival
// mode's structural rules. It assumes Normalize ran (ParseSpec guarantees it;
// hand-built scenarios should call Normalize first).
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: scenario has no name")
	}
	if !s.Arrival.Valid() {
		return fmt.Errorf("workload: scenario %s: unknown arrival mode %q (%s|%s|%s)",
			s.Name, s.Arrival, Interleaved, Sequential, PrefillDecode)
	}
	if len(s.Components) == 0 {
		return fmt.Errorf("workload: scenario %s has no components", s.Name)
	}
	seen := make(map[string]bool, len(s.Components))
	for _, c := range s.Components {
		if c.Name == "" {
			return fmt.Errorf("workload: scenario %s: component with model %q has no name (call Normalize)", s.Name, c.Model)
		}
		if seen[c.Name] {
			return fmt.Errorf("workload: scenario %s: duplicate component name %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		if !models.Known(c.Model) {
			return fmt.Errorf("workload: scenario %s: component %s references unknown model %q (known: %v)",
				s.Name, c.Name, c.Model, models.Names())
		}
		if c.Batch <= 0 {
			return fmt.Errorf("workload: scenario %s: component %s has batch %d", s.Name, c.Name, c.Batch)
		}
		if c.Weight <= 0 {
			return fmt.Errorf("workload: scenario %s: component %s has weight %g", s.Name, c.Name, c.Weight)
		}
	}
	if s.Arrival == PrefillDecode {
		if len(s.Components) != 2 {
			return fmt.Errorf("workload: scenario %s: prefill+decode needs exactly 2 components, got %d",
				s.Name, len(s.Components))
		}
		pre, dec := s.Components[0].Model, s.Components[1].Model
		pb, okP := strings.CutSuffix(pre, "-prefill")
		db, okD := strings.CutSuffix(dec, "-decode")
		if !okP || !okD || pb == "" || pb != db {
			return fmt.Errorf("workload: scenario %s: prefill+decode needs a <base>-prefill then <base>-decode pair, got %q + %q",
				s.Name, pre, dec)
		}
	}
	return nil
}

// Span records one component's layer ownership in the composed graph: the
// contiguous ID range [First, Last] it occupies.
type Span struct {
	Component Component
	First     graph.LayerID
	Last      graph.LayerID
	// Graph is the component's isolated model graph as built during
	// composition, so callers scheduling the components stand-alone (the
	// per-model baselines of exp.RunScenario) need not rebuild it.
	Graph *graph.Graph
	// Layers counts the component's compute layers (excluding Inputs).
	Layers int
	// Ops / WeightBytes are the component's accounting sums, preserved
	// verbatim from the isolated model graph.
	Ops         int64
	WeightBytes int64
}

// Placement maps composed-graph layers back to the components that own them.
type Placement struct {
	// Spans lists the components in composition order (which for
	// sequential arrival is descending weight, not spec order).
	Spans []Span
}

// Owner returns the index in Spans of the component owning layer id, or -1.
func (p *Placement) Owner(id graph.LayerID) int {
	for i := range p.Spans {
		if id >= p.Spans[i].First && id <= p.Spans[i].Last {
			return i
		}
	}
	return -1
}

// order returns the components in composition order: spec order for
// interleaved and prefill+decode (the pair's order is semantic), descending
// weight (stable) for sequential, where higher-priority models run first.
func (s *Scenario) order() []Component {
	out := append([]Component(nil), s.Components...)
	if s.Arrival == Sequential {
		sort.SliceStable(out, func(a, b int) bool { return out[a].Weight > out[b].Weight })
	}
	return out
}

// Compose builds every component model and merges them into one schedulable
// graph plus the ownership placement. Layer names gain a "<component>/"
// prefix; dependency edges are remapped intra-component; sequential and
// prefill+decode arrival add ordering-only barrier edges (graph.Layer.After)
// from each component's sink layers to the next component's source layers, so
// compute strictly serializes across the boundary while DRAM transfers still
// overlap it. The composed graph passes graph.Validate and its insertion
// order is a valid Computing Order, so the existing two-stage machinery
// explores cross-model DRAM scheduling unchanged.
func (s *Scenario) Compose() (*graph.Graph, *Placement, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	comps := s.order()
	sequential := s.Arrival == Sequential || s.Arrival == PrefillDecode

	var g *graph.Graph
	pl := &Placement{}
	var prevSinks []graph.LayerID
	for _, c := range comps {
		mg, err := models.Build(c.Model, c.Batch)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: scenario %s: %w", s.Name, err)
		}
		if g == nil {
			g = graph.New("scenario:"+s.Name, mg.ElemBytes)
		} else if mg.ElemBytes != g.ElemBytes {
			return nil, nil, fmt.Errorf("workload: scenario %s: component %s has element width %d, scenario uses %d",
				s.Name, c.Name, mg.ElemBytes, g.ElemBytes)
		}
		base := graph.LayerID(g.Len())
		span := Span{Component: c, First: base, Graph: mg}
		for i := range mg.Layers {
			l := mg.Layers[i] // copy
			l.Name = c.Name + "/" + l.Name
			deps := make([]graph.Dep, len(l.Deps))
			for di, d := range l.Deps {
				deps[di] = graph.Dep{Producer: d.Producer + base, Global: d.Global}
			}
			l.Deps = deps
			l.After = nil
			if sequential && l.Kind != graph.Input && sourceLayer(mg, &mg.Layers[i]) {
				l.After = prevSinks
			}
			g.Add(l)
			if l.Kind != graph.Input {
				span.Layers++
				span.Ops += l.Ops
				span.WeightBytes += l.WeightBytes
			}
		}
		span.Last = graph.LayerID(g.Len() - 1)
		pl.Spans = append(pl.Spans, span)
		if sequential {
			prevSinks = prevSinks[:0:0]
			for id := span.First; id <= span.Last; id++ {
				if g.Layer(id).Kind != graph.Input && g.IsOutput(id) {
					prevSinks = append(prevSinks, id)
				}
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("workload: scenario %s: composed graph invalid: %w", s.Name, err)
	}
	return g, pl, nil
}

// sourceLayer reports whether a compute layer reads only Input pseudo-layers
// (the component's entry points, which receive the cross-component barriers;
// every other layer inherits the ordering transitively).
func sourceLayer(g *graph.Graph, l *graph.Layer) bool {
	for _, d := range l.Deps {
		if g.Layer(d.Producer).Kind != graph.Input {
			return false
		}
	}
	return true
}

// TotalBatch sums the component batch sizes (the scenario-level "batch"
// reported in payloads).
func (s *Scenario) TotalBatch() int {
	t := 0
	for _, c := range s.Components {
		t += c.Batch
	}
	return t
}

// TotalWeight sums the component priority weights.
func (s *Scenario) TotalWeight() float64 {
	var t float64
	for _, c := range s.Components {
		t += c.Weight
	}
	return t
}
