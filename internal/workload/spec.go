package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// ParseSpec decodes a declarative JSON scenario spec, fills defaults
// (Normalize) and validates the result. Unknown fields are rejected so typos
// fail loudly instead of silently composing the wrong scenario.
//
// A minimal spec:
//
//	{
//	  "name": "multi-tenant-cnn",
//	  "arrival": "interleaved",
//	  "components": [
//	    {"model": "resnet50"},
//	    {"model": "mobilenetv2", "batch": 4, "weight": 2}
//	  ]
//	}
func ParseSpec(data []byte) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("workload: bad scenario spec: %w", err)
	}
	if dec.More() {
		return Scenario{}, fmt.Errorf("workload: bad scenario spec: trailing data after the spec object")
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// MarshalSpec renders the scenario as its canonical indented JSON spec.
// Parse -> Marshal -> Parse is lossless: Normalize runs before encoding, so
// every default is explicit and the round-trip is a fixed point.
func (s Scenario) MarshalSpec() ([]byte, error) {
	s.Components = append([]Component(nil), s.Components...)
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SpecSHA256 digests the canonical spec; two scenarios with equal digests
// compose identical graphs, which makes the digest usable as a cache scope
// for composed-schedule evaluations.
func (s Scenario) SpecSHA256() (string, error) {
	b, err := s.MarshalSpec()
	if err != nil {
		return "", err
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:]), nil
}
