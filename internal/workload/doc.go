// Package workload is the multi-model scenario composition engine: it
// composes N named model graphs (each with its own batch, priority weight and
// arrival mode) into a single schedulable graph.Graph, so the existing
// two-stage SA/portfolio machinery optimizes cross-model DRAM communication
// scheduling unchanged - multi-tenant CNN mixes, LLM prefill+decode pairs,
// and vision+LLM combinations all become ordinary points of the scheduling
// space.
//
// A Scenario is declared either in Go or as a JSON spec (ParseSpec /
// Scenario.MarshalSpec, lossless round-trip; schema in docs/workloads.md).
// Compose merges the component graphs with per-component name prefixes and -
// for sequential and prefill+decode arrival - ordering-only barrier edges
// (graph.Layer.After) between consecutive components: compute strictly
// serializes across the boundary while DRAM transfers still overlap it, which
// is exactly the cross-model freedom the paper's DRAM-aware notation exposes.
// The returned Placement preserves per-model layer ownership for attribution
// and reporting.
//
// A small library of built-in scenarios ships with the package (Builtin /
// Builtins / BuiltinNames); the soma CLI's -scenario flag, exp.RunScenario
// and the somad /v1/scenarios endpoint all resolve names through it.
package workload
