package workload

import (
	"fmt"
	"sort"
)

// builtins is the library of ready-made scenarios. Keep entries buildable on
// the edge platform: the CLI default and the CI smoke step both run them
// there. Names must be unique and stable - scenario specs and the somad API
// reference them.
var builtins = map[string]func() Scenario{
	// Two CNN tenants sharing one accelerator: a weight-heavy network next
	// to a lightweight one, freely interleaved so the scheduler can hide
	// one tenant's DRAM traffic under the other's compute.
	"multi-tenant-cnn": func() Scenario {
		return Scenario{
			Name:    "multi-tenant-cnn",
			Arrival: Interleaved,
			Components: []Component{
				{Name: "resnet", Model: "resnet50", Batch: 1, Weight: 2},
				{Name: "mobile", Model: "mobilenetv2", Batch: 1, Weight: 1},
			},
		}
	},
	// The LLM serving pair: one prefill pass followed by a decode step
	// whose KV-cache reads arrive only after prefill completes.
	"gpt2s-prefill-decode": func() Scenario {
		return Scenario{
			Name:    "gpt2s-prefill-decode",
			Arrival: PrefillDecode,
			Components: []Component{
				{Name: "prefill", Model: "gpt2s-prefill", Batch: 1, Weight: 1},
				{Name: "decode", Model: "gpt2s-decode", Batch: 1, Weight: 1},
			},
		}
	},
	// A vision model sharing the accelerator with a bandwidth-bound LLM
	// decode step - the compute-heavy/bandwidth-heavy mix where
	// cross-model DRAM scheduling has the most room.
	"vision-llm-mix": func() Scenario {
		return Scenario{
			Name:    "vision-llm-mix",
			Arrival: Interleaved,
			Components: []Component{
				{Name: "vision", Model: "resnet50", Batch: 1, Weight: 1},
				{Name: "decode", Model: "gpt2s-decode", Batch: 1, Weight: 1},
			},
		}
	},
	// The same two CNN tenants as multi-tenant-cnn, but strictly
	// serialized in priority order - the baseline composed runs are
	// compared against (examples/multi_tenant contrasts the two).
	"sequential-cnn-pair": func() Scenario {
		return Scenario{
			Name:    "sequential-cnn-pair",
			Arrival: Sequential,
			Components: []Component{
				{Name: "resnet", Model: "resnet50", Batch: 1, Weight: 2},
				{Name: "mobile", Model: "mobilenetv2", Batch: 1, Weight: 1},
			},
		}
	},
}

// BuiltinNames lists the built-in scenarios in sorted order.
func BuiltinNames() []string {
	out := make([]string, 0, len(builtins))
	for k := range builtins {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Builtin returns the named built-in scenario, normalized and validated.
func Builtin(name string) (Scenario, error) {
	b, ok := builtins[name]
	if !ok {
		return Scenario{}, fmt.Errorf("workload: unknown built-in scenario %q (known: %v)", name, BuiltinNames())
	}
	s := b()
	s.Normalize()
	if err := s.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("workload: built-in scenario %q invalid: %w", name, err)
	}
	return s, nil
}

// Builtins returns every built-in scenario in name order.
func Builtins() []Scenario {
	names := BuiltinNames()
	out := make([]Scenario, 0, len(names))
	for _, n := range names {
		s, err := Builtin(n)
		if err != nil {
			panic(err) // the library is static; an invalid entry is a build bug
		}
		out = append(out, s)
	}
	return out
}
