package workload

import "testing"

// FuzzParseSpec drives the strict scenario-spec parser with arbitrary bytes.
// It must never panic, and every accepted scenario must hit the canonical
// fixed point: MarshalSpec re-parses and a second MarshalSpec reproduces the
// first byte for byte (SpecSHA256's stability rests on this).
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{"name": "mix", "components": [{"model": "resnet50"}]}`))
	f.Add([]byte(`{"name": "mt", "arrival": "interleaved", "components": [
		{"model": "resnet50"}, {"model": "mobilenetv2", "batch": 4, "weight": 2}]}`))
	f.Add([]byte(`{"name": "pd", "arrival": "prefill-decode", "components": [
		{"model": "gpt2s-prefill"}, {"model": "gpt2s-decode"}]}`))
	f.Add([]byte(`{"name": "seq", "arrival": "sequential", "components": [{"model": "vgg16"}]}`))
	f.Add([]byte(`{"components": []}`))
	f.Add([]byte(`{"name": "x", "components": [{"model": "nope"}]}`))
	f.Add([]byte(`{"name": "x", "componets": []}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		b1, err := s.MarshalSpec()
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		s2, err := ParseSpec(b1)
		if err != nil {
			t.Fatalf("canonical spec does not re-parse: %v\n%s", err, b1)
		}
		b2, err := s2.MarshalSpec()
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("round trip is not a fixed point:\n%s\n%s", b1, b2)
		}
	})
}
