package workload

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/models"
	"soma/internal/sim"
)

func TestBuiltinLibrary(t *testing.T) {
	names := BuiltinNames()
	if len(names) < 3 {
		t.Fatalf("want at least 3 built-in scenarios, got %v", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("BuiltinNames not sorted: %v", names)
	}
	for _, want := range []string{"multi-tenant-cnn", "gpt2s-prefill-decode", "vision-llm-mix"} {
		if _, err := Builtin(want); err != nil {
			t.Fatalf("Builtin(%s): %v", want, err)
		}
	}
	if len(Builtins()) != len(names) {
		t.Fatalf("Builtins/BuiltinNames length mismatch")
	}
	if _, err := Builtin("no-such-scenario"); err == nil {
		t.Fatal("unknown builtin must fail")
	}
}

// TestComposeValidatesAndPreservesOwnership: the composed graph passes
// graph.Validate, component spans are contiguous and cover the graph, and
// each span's layer/op/weight accounting matches the isolated model exactly.
func TestComposeValidatesAndPreservesOwnership(t *testing.T) {
	for _, name := range BuiltinNames() {
		sc, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		g, pl, err := sc.Compose()
		if err != nil {
			t.Fatalf("%s: Compose: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: composed graph invalid: %v", name, err)
		}
		if len(pl.Spans) != len(sc.Components) {
			t.Fatalf("%s: %d spans for %d components", name, len(pl.Spans), len(sc.Components))
		}
		next := graph.LayerID(0)
		for _, span := range pl.Spans {
			if span.First != next {
				t.Fatalf("%s: span %s starts at %d, want %d", name, span.Component.Name, span.First, next)
			}
			next = span.Last + 1
			mg, err := models.Build(span.Component.Model, span.Component.Batch)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := span.Layers, len(mg.ComputeLayers()); got != want {
				t.Fatalf("%s/%s: %d compute layers, want %d", name, span.Component.Name, got, want)
			}
			if span.Ops != mg.TotalOps() || span.WeightBytes != mg.TotalWeightBytes() {
				t.Fatalf("%s/%s: accounting drifted under composition", name, span.Component.Name)
			}
			prefix := span.Component.Name + "/"
			for id := span.First; id <= span.Last; id++ {
				if !strings.HasPrefix(g.Layer(id).Name, prefix) {
					t.Fatalf("%s: layer %d named %q, want prefix %q", name, id, g.Layer(id).Name, prefix)
				}
				if got := pl.Owner(id); pl.Spans[got].Component.Name != span.Component.Name {
					t.Fatalf("%s: Owner(%d) resolved to %s", name, id, pl.Spans[got].Component.Name)
				}
			}
		}
		if int(next) != g.Len() {
			t.Fatalf("%s: spans cover %d layers, graph has %d", name, next, g.Len())
		}
		if pl.Owner(graph.LayerID(g.Len())) != -1 {
			t.Fatal("Owner past the graph must be -1")
		}
	}
}

// TestSequentialBarriers: sequential arrival orders components by descending
// weight and serializes them with ordering-only barrier edges that the
// Computing Order legality check enforces.
func TestSequentialBarriers(t *testing.T) {
	sc, err := Builtin("sequential-cnn-pair")
	if err != nil {
		t.Fatal(err)
	}
	g, pl, err := sc.Compose()
	if err != nil {
		t.Fatal(err)
	}
	// resnet has weight 2, mobile weight 1: resnet must come first.
	if pl.Spans[0].Component.Name != "resnet" || pl.Spans[1].Component.Name != "mobile" {
		t.Fatalf("sequential arrival must order by descending weight, got %v", pl.Spans)
	}
	// The second component's source layers carry barriers on the first
	// component's sinks; barriers never appear inside the first component.
	var barriers int
	for id := pl.Spans[1].First; id <= pl.Spans[1].Last; id++ {
		for _, a := range g.Layer(id).After {
			barriers++
			if own := pl.Owner(a); own != 0 {
				t.Fatalf("barrier target %d owned by span %d, want 0", a, own)
			}
			if !g.IsOutput(a) {
				t.Fatalf("barrier target %d is not a sink of the first component", a)
			}
		}
	}
	if barriers == 0 {
		t.Fatal("sequential composition produced no barrier edges")
	}
	for id := pl.Spans[0].First; id <= pl.Spans[0].Last; id++ {
		if len(g.Layer(id).After) != 0 {
			t.Fatalf("first component layer %d has barriers", id)
		}
	}

	// Moving any second-component layer before the first component's
	// layers violates the barrier: the order must be rejected.
	ord := g.TopoOrder()
	if !g.IsValidOrder(ord) {
		t.Fatal("insertion order must be a valid Computing Order")
	}
	swapped := append([]graph.LayerID(nil), ord...)
	// Find the first compute layer of component 1 and move it to front.
	for i, id := range swapped {
		if pl.Owner(id) == 1 {
			copy(swapped[1:i+1], swapped[:i])
			swapped[0] = id
			break
		}
	}
	if g.IsValidOrder(swapped) {
		t.Fatal("order interleaving across a sequential barrier must be invalid")
	}

	// Interleaved composition of the same components has no barriers and
	// accepts the same interleaving.
	il := sc
	il.Name = "interleaved-pair"
	il.Arrival = Interleaved
	gi, pli, err := il.Compose()
	if err != nil {
		t.Fatal(err)
	}
	for i := range gi.Layers {
		if len(gi.Layers[i].After) != 0 {
			t.Fatal("interleaved composition must not add barriers")
		}
	}
	ordI := gi.TopoOrder()
	for i, id := range ordI {
		if pli.Owner(id) == 1 {
			copy(ordI[1:i+1], ordI[:i])
			ordI[0] = id
			break
		}
	}
	if !gi.IsValidOrder(ordI) {
		t.Fatal("interleaved composition must allow cross-model interleaving")
	}
}

// TestComposedGraphSchedulable: the composed graph of a sequential scenario
// parses and evaluates through the ordinary pipeline.
func TestComposedGraphSchedulable(t *testing.T) {
	sc, err := Builtin("sequential-cnn-pair")
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := sc.Compose()
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Parse(g, core.DefaultEncoding(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Evaluate(s, coresched.New(hw.Edge()), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.LatencyNS <= 0 || m.TotalDRAMBytes <= 0 {
		t.Fatalf("degenerate metrics for composed graph: %+v", m)
	}
}

func TestValidateErrors(t *testing.T) {
	mk := func(mut func(*Scenario)) error {
		s := Scenario{Name: "x", Arrival: Interleaved, Components: []Component{
			{Name: "a", Model: "resnet50", Batch: 1, Weight: 1},
			{Name: "b", Model: "mobilenetv2", Batch: 1, Weight: 1},
		}}
		mut(&s)
		return s.Validate()
	}
	cases := map[string]func(*Scenario){
		"no name":        func(s *Scenario) { s.Name = "" },
		"bad arrival":    func(s *Scenario) { s.Arrival = "fifo" },
		"no components":  func(s *Scenario) { s.Components = nil },
		"dup names":      func(s *Scenario) { s.Components[1].Name = "a" },
		"unknown model":  func(s *Scenario) { s.Components[0].Model = "alexnet" },
		"zero batch":     func(s *Scenario) { s.Components[0].Batch = 0 },
		"negative batch": func(s *Scenario) { s.Components[0].Batch = -4 },
		"zero weight":    func(s *Scenario) { s.Components[0].Weight = 0 },
		"pd cardinality": func(s *Scenario) { s.Arrival = PrefillDecode },
		"pd mismatch": func(s *Scenario) {
			s.Arrival = PrefillDecode
			s.Components = []Component{
				{Name: "p", Model: "gpt2s-prefill", Batch: 1, Weight: 1},
				{Name: "d", Model: "gpt2xl-decode", Batch: 1, Weight: 1},
			}
		},
	}
	for name, mut := range cases {
		if err := mk(mut); err == nil {
			t.Errorf("%s: Validate accepted an invalid scenario", name)
		}
	}
	if err := mk(func(s *Scenario) {}); err != nil {
		t.Fatalf("baseline scenario must validate: %v", err)
	}
	// A well-formed prefill+decode pair with differing batches is legal
	// (prefill one request, decode a serving batch).
	pd := Scenario{Name: "pd", Arrival: PrefillDecode, Components: []Component{
		{Name: "p", Model: "gpt2s-prefill", Batch: 1, Weight: 1},
		{Name: "d", Model: "gpt2s-decode", Batch: 8, Weight: 1},
	}}
	if err := pd.Validate(); err != nil {
		t.Fatalf("prefill+decode pair must validate: %v", err)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	s := Scenario{Name: "d", Components: []Component{{Model: "resnet50"}}}
	s.Normalize()
	want := Component{Name: "resnet50", Model: "resnet50", Batch: 1, Weight: 1}
	if !reflect.DeepEqual(s.Components[0], want) {
		t.Fatalf("Normalize got %+v, want %+v", s.Components[0], want)
	}
	if s.Arrival != Interleaved {
		t.Fatalf("default arrival %q, want %q", s.Arrival, Interleaved)
	}
	if s.TotalBatch() != 1 || s.TotalWeight() != 1 {
		t.Fatalf("totals wrong: batch %d weight %g", s.TotalBatch(), s.TotalWeight())
	}
}
