package sim

import (
	"fmt"
	"sort"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/hw"
	"soma/internal/obs"
)

// Incremental is a stateful, move-aware schedule evaluator for the DLSA
// exploration stage. Where Evaluate replays the whole schedule on every
// call, Incremental caches the simulation of the current (accepted) schedule
// - the per-tile and per-tensor completion times, the DRAM-channel frontier
// at periodic checkpoints, and the buffer-occupancy profile - and, when one
// DLSA move perturbs the schedule, re-simulates only from the latest
// checkpoint the move cannot have affected, splicing the cached prefix.
//
// Why that is sound: the merge in Evaluate interleaves two serial resources
// (compute pipeline, DRAM channel) whose commit times form a monotone fixed
// point - the times do not depend on the interleaving the loop happened to
// take, only on the schedule's attributes. A DLSA move changes the DRAM
// Tensor Order from its earliest moved position P onward, or one tensor's
// Start/End. Any checkpoint whose order cursor j <= P (and, for a store's
// End move, whose tile cursor i has not passed the new gate) therefore
// captures a commit set and times the perturbed schedule shares, and the
// suffix re-simulation from it reproduces Evaluate bit for bit. Structural
// moves (different tile set, different tensor set) cannot be delta-ed; they
// go through full Evaluate and a fresh Incremental.
//
// The proposal workflow mirrors simulated annealing: apply exactly one move
// (MoveTensor / SetStart / SetEnd), evaluate it (EvaluateProposal), then
// Accept or Reject. Rejected moves roll back in O(moved range); accepted
// moves splice the scratch suffix into the cached state. An Incremental is
// NOT safe for concurrent use - portfolio chains each own one.
type Incremental struct {
	s   *core.Schedule
	cs  *coresched.Scheduler
	cfg hw.Config
	opt Options
	tc  *TileCosts

	n, m int // tiles, tensors

	// Structures maintained for the live schedule across moves.
	blockers [][]int // tile seq -> gating tensor IDs (len n+1)
	usage    []int64 // buffer occupancy per tile seq
	posAcc   []int   // accepted order position of each tensor ID

	// Cached simulation of the accepted schedule. accValid means the arrays
	// and checkpoints describe a completed, deadlock-free merge.
	accTileEnd   []float64
	accTensorEnd []float64
	accEnd       mergeState
	accErr       error
	accValid     bool
	checkpoints  []checkpoint

	// Scratch for the pending proposal's suffix.
	scrTileEnd   []float64
	scrTensorEnd []float64
	scrStamp     []int64 // committed-this-proposal epoch stamps
	epoch        int64

	pending       pendingMove
	propEvaluated bool
	propErr       error
	propEnd       mergeState
	propCkpts     []checkpoint
	propResumeIdx int // checkpoint index resumed from; -1 = from scratch
	resumeI       int // prefix bounds of the current proposal's resume point
	resumeJ       int

	stats IncStats
}

// mergeState is the scalar simulation state between merge events.
type mergeState struct {
	i, j                  int
	computeFree, dramFree float64
	dramBusy              float64
	dramBytes             int64
}

// checkpoint is a mergeState recorded on the accepted schedule's trajectory.
type checkpoint = mergeState

// ckptStride is the number of merge events (tile + tensor commits) between
// recorded checkpoints: small enough that a resumed proposal wastes at most
// a few dozen events re-reaching its divergence point, large enough that
// checkpoint bookkeeping stays off the profile.
const ckptStride = 32

// pendingMove describes the single in-flight proposal.
type pendingMove struct {
	kind     moveKind
	id       int // tensor (start/end moves)
	from, to int // order positions (order moves)
	old, new int // start/end values
}

type moveKind int

const (
	moveNone moveKind = iota
	moveOrder
	moveStart
	moveEnd
)

// IncStats counts the evaluator's delta effectiveness.
type IncStats struct {
	// Proposals is the number of EvaluateProposal calls; Resumed of those
	// spliced a checkpointed prefix, Fallbacks re-simulated from scratch.
	Proposals, Resumed, Fallbacks int64
	// EventsTotal is Proposals x (tiles + tensors): the merge events a full
	// evaluator would have replayed. EventsSimulated is what this one did.
	EventsTotal, EventsSimulated int64
}

// IncTelemetry mirrors IncStats (plus rollbacks) as shared registry
// counters, so every incremental evaluator in a run - one per portfolio
// chain - aggregates into the same sim_inc_* family. All fields may be nil
// (obs counters are nil-safe), and a nil *IncTelemetry disables the bundle.
// An EvaluateProposal already replays O(tiles+tensors) merge events, so its
// handful of atomic adds is noise on the path it observes.
type IncTelemetry struct {
	Proposals, Resumed, Fallbacks, Rollbacks *obs.Counter
	EventsTotal, EventsSimulated             *obs.Counter
}

// NewIncTelemetry registers the incremental evaluator's metric family on
// reg. Nil-safe: a nil registry yields a nil IncTelemetry.
func NewIncTelemetry(reg *obs.Registry) *IncTelemetry {
	if reg == nil {
		return nil
	}
	return &IncTelemetry{
		Proposals: reg.Counter("sim_inc_proposals_total",
			"Incremental-evaluator proposal evaluations."),
		Resumed: reg.Counter("sim_inc_resumed_total",
			"Proposals resumed from a cached checkpoint."),
		Fallbacks: reg.Counter("sim_inc_fallbacks_total",
			"Proposals re-simulated from scratch (no valid checkpoint)."),
		Rollbacks: reg.Counter("sim_inc_rollbacks_total",
			"Rejected proposals rolled back in place."),
		EventsTotal: reg.Counter("sim_inc_events_total",
			"Merge events a full evaluator would have replayed."),
		EventsSimulated: reg.Counter("sim_inc_events_simulated_total",
			"Merge events actually re-simulated."),
	}
}

// NewIncremental builds an incremental evaluator owning s. The schedule must
// only be mutated through the evaluator's move methods from here on.
// Options.Trace is not supported (the renderer runs full evaluations);
// Options.TileCosts is precomputed when absent.
func NewIncremental(s *core.Schedule, cs *coresched.Scheduler, opt Options) (*Incremental, error) {
	if opt.Trace {
		return nil, fmt.Errorf("sim: incremental evaluator does not support tracing")
	}
	n, m := s.NumTiles(), len(s.Tensors)
	if len(s.Order) != m {
		return nil, fmt.Errorf("sim: order length %d != tensors %d", len(s.Order), m)
	}
	tc := opt.TileCosts
	if tc == nil {
		tc = PrecomputeTileCosts(s, cs)
	} else if len(tc.Dur) != n {
		return nil, fmt.Errorf("sim: tile-cost cache covers %d tiles, schedule has %d", len(tc.Dur), n)
	}
	inc := &Incremental{
		s: s, cs: cs, cfg: cs.Config(), opt: opt, tc: tc, n: n, m: m,
		usage:        s.BufferUsage(),
		posAcc:       make([]int, m),
		accTileEnd:   make([]float64, n),
		accTensorEnd: make([]float64, m),
		scrTileEnd:   make([]float64, n),
		scrTensorEnd: make([]float64, m),
		scrStamp:     make([]int64, m),
	}
	inc.blockers = buildBlockers(s, n)
	for p, id := range s.Order {
		inc.posAcc[id] = p
	}
	return inc, nil
}

// buildBlockers maps each tile seq to the tensor IDs gating it: loads gate
// their first consuming tile, stores gate the tile at their Living Duration
// end (the same structure Evaluate derives per call).
func buildBlockers(s *core.Schedule, n int) [][]int {
	blockers := make([][]int, n+1)
	for i := range s.Tensors {
		t := &s.Tensors[i]
		if t.Kind.IsLoad() {
			blockers[t.FirstUse] = append(blockers[t.FirstUse], t.ID)
		} else if t.End < n {
			blockers[t.End] = append(blockers[t.End], t.ID)
		}
	}
	return blockers
}

// Schedule returns the live schedule the evaluator owns.
func (inc *Incremental) Schedule() *core.Schedule { return inc.s }

// PosOf returns tensor id's current DRAM Tensor Order position. Only valid
// between proposals (the annealer looks positions up before proposing).
func (inc *Incremental) PosOf(id int) int { return inc.posAcc[id] }

// Stats returns the delta-effectiveness counters.
func (inc *Incremental) Stats() IncStats { return inc.stats }

// MoveTensor proposes relocating the tensor at order position from to
// position to (the DRAM Tensor Order operator). It returns false - and
// leaves no pending proposal - when the move is illegal or a no-op.
func (inc *Incremental) MoveTensor(from, to int) bool {
	if inc.pending.kind != moveNone {
		panic("sim: MoveTensor with a proposal already pending")
	}
	if !inc.s.MoveTensor(from, to) {
		return false
	}
	inc.pending = pendingMove{kind: moveOrder, from: from, to: to}
	return true
}

// SetStart proposes jittering a load's Living Duration start. Returns false
// when the clamped value leaves the schedule unchanged.
func (inc *Incremental) SetStart(id, start int) bool {
	if inc.pending.kind != moveNone {
		panic("sim: SetStart with a proposal already pending")
	}
	if id < 0 || id >= inc.m {
		return false
	}
	t := &inc.s.Tensors[id]
	old := t.Start
	if !inc.s.SetStart(id, start) || t.Start == old {
		return false
	}
	// The load occupies [Start, Release); shift the occupancy delta.
	if t.Start < old {
		inc.rangeAdd(t.Start, old, t.Bytes)
	} else {
		inc.rangeAdd(old, t.Start, -t.Bytes)
	}
	inc.pending = pendingMove{kind: moveStart, id: id, old: old, new: t.Start}
	return true
}

// SetEnd proposes jittering a store's Living Duration end. Returns false
// when the clamped value leaves the schedule unchanged.
func (inc *Incremental) SetEnd(id, end int) bool {
	if inc.pending.kind != moveNone {
		panic("sim: SetEnd with a proposal already pending")
	}
	if id < 0 || id >= inc.m {
		return false
	}
	t := &inc.s.Tensors[id]
	old := t.End
	if !inc.s.SetEnd(id, end) || t.End == old {
		return false
	}
	// The store occupies [Producer, max(End, OnChipHi)).
	oldHi, newHi := old, t.End
	if t.OnChipHi > oldHi {
		oldHi = t.OnChipHi
	}
	if t.OnChipHi > newHi {
		newHi = t.OnChipHi
	}
	if newHi > oldHi {
		inc.rangeAdd(oldHi, newHi, t.Bytes)
	} else if newHi < oldHi {
		inc.rangeAdd(newHi, oldHi, -t.Bytes)
	}
	// The gate moves from tile old to tile t.End (when inside the range).
	if old < inc.n {
		inc.removeBlocker(old, id)
	}
	if t.End < inc.n {
		inc.blockers[t.End] = append(inc.blockers[t.End], id)
	}
	inc.pending = pendingMove{kind: moveEnd, id: id, old: old, new: t.End}
	return true
}

// rangeAdd adds delta to the occupancy of tile seqs [lo, hi), clamped like
// Schedule.BufferUsage's interval accumulation.
func (inc *Incremental) rangeAdd(lo, hi int, delta int64) {
	if lo < 0 {
		lo = 0
	}
	if hi > inc.n {
		hi = inc.n
	}
	for seq := lo; seq < hi; seq++ {
		inc.usage[seq] += delta
	}
}

func (inc *Incremental) removeBlocker(seq, id int) {
	b := inc.blockers[seq]
	for k, v := range b {
		if v == id {
			b[k] = b[len(b)-1]
			inc.blockers[seq] = b[:len(b)-1]
			return
		}
	}
	panic("sim: blocker to remove not found")
}

// Metrics evaluates the accepted schedule (no proposal pending), simulating
// it from scratch if its cached state is stale. The returned Metrics is a
// fresh value the caller may keep.
func (inc *Incremental) Metrics() (*Metrics, error) {
	if inc.pending.kind != moveNone {
		panic("sim: Metrics with a proposal pending")
	}
	if !inc.accValid {
		err := inc.resim(mergeState{})
		inc.propResumeIdx = -1
		inc.mergeScratch(err)
	}
	if inc.accErr != nil {
		return &Metrics{}, inc.accErr
	}
	return finishMetrics(inc.cfg, inc.s, inc.opt.BufferBudget, inc.usage, inc.tc.Dur,
		inc.tc.CoreEnergy, inc.tc.ComputeBusy,
		inc.accEnd.computeFree, inc.accEnd.dramFree, inc.accEnd.dramBusy, inc.accEnd.dramBytes), nil
}

// EvaluateProposal evaluates the schedule with the pending move applied,
// re-simulating only from the latest checkpoint the move cannot affect. Its
// signature matches Cache.Memoize's eval callback, so stage-2 search keeps
// its memoization (and cache accounting) unchanged while every miss costs a
// suffix instead of a full replay.
func (inc *Incremental) EvaluateProposal() (*Metrics, error) {
	if inc.pending.kind == moveNone {
		panic("sim: EvaluateProposal without a pending move")
	}
	ck, idx := inc.resumePoint()
	inc.stats.Proposals++
	inc.stats.EventsTotal += int64(inc.n + inc.m)
	inc.stats.EventsSimulated += int64((inc.n - ck.i) + (inc.m - ck.j))
	if idx >= 0 {
		inc.stats.Resumed++
	} else {
		inc.stats.Fallbacks++
	}
	if tel := inc.opt.Telemetry; tel != nil {
		tel.Proposals.Inc()
		tel.EventsTotal.Add(int64(inc.n + inc.m))
		tel.EventsSimulated.Add(int64((inc.n - ck.i) + (inc.m - ck.j)))
		if idx >= 0 {
			tel.Resumed.Inc()
		} else {
			tel.Fallbacks.Inc()
		}
	}
	err := inc.resim(ck)
	inc.propEvaluated = true
	inc.propErr = err
	inc.propResumeIdx = idx
	if err != nil {
		return &Metrics{}, err
	}
	return finishMetrics(inc.cfg, inc.s, inc.opt.BufferBudget, inc.usage, inc.tc.Dur,
		inc.tc.CoreEnergy, inc.tc.ComputeBusy,
		inc.propEnd.computeFree, inc.propEnd.dramFree, inc.propEnd.dramBusy, inc.propEnd.dramBytes), nil
}

// resumePoint picks the latest accepted checkpoint still valid under the
// pending move: its order cursor must not have reached the first perturbed
// order position, and (for a store-End move) its tile cursor must not have
// passed the store's new gate. Both cursors are nondecreasing along the
// checkpoint list, so the valid region is a prefix.
func (inc *Incremental) resumePoint() (checkpoint, int) {
	if !inc.accValid {
		return mergeState{}, -1
	}
	maxJ, maxI := inc.m, inc.n
	switch inc.pending.kind {
	case moveOrder:
		maxJ = inc.pending.from
		if inc.pending.to < maxJ {
			maxJ = inc.pending.to
		}
	case moveStart:
		maxJ = inc.posAcc[inc.pending.id]
	case moveEnd:
		maxJ = inc.posAcc[inc.pending.id]
		if inc.pending.new < inc.n {
			maxI = inc.pending.new
		}
	default: // stale base: only a from-scratch replay is valid
		return mergeState{}, -1
	}
	idx := sort.Search(len(inc.checkpoints), func(k int) bool {
		return inc.checkpoints[k].j > maxJ || inc.checkpoints[k].i > maxI
	}) - 1
	if idx < 0 {
		return mergeState{}, -1
	}
	return inc.checkpoints[idx], idx
}

// resim replays the merge from ck over the live schedule, reading prefix
// state from the accepted arrays and writing the suffix into scratch. The
// loop body mirrors Evaluate's merge exactly so the resulting times are
// bit-identical.
func (inc *Incremental) resim(ck mergeState) error {
	s := inc.s
	n, m := inc.n, inc.m
	tileDur := inc.tc.Dur
	bw := inc.cfg.DRAMBandwidth
	inc.epoch++
	epoch := inc.epoch
	inc.resumeI, inc.resumeJ = ck.i, ck.j
	inc.propCkpts = inc.propCkpts[:0]

	i, j := ck.i, ck.j
	computeFree, dramFree := ck.computeFree, ck.dramFree
	dramBusy, dramBytes := ck.dramBusy, ck.dramBytes
	lastCk := i + j

	// committed / tensorEnd / tileEnd split reads between the accepted
	// prefix (strictly before the resume cursors, untouched by the move)
	// and the scratch suffix written this replay.
	committed := func(id int) bool {
		return inc.posAcc[id] < ck.j || inc.scrStamp[id] == epoch
	}
	tensorEnd := func(id int) float64 {
		if inc.posAcc[id] < ck.j {
			return inc.accTensorEnd[id]
		}
		return inc.scrTensorEnd[id]
	}
	tileEnd := func(seq int) float64 {
		if seq < ck.i {
			return inc.accTileEnd[seq]
		}
		return inc.scrTileEnd[seq]
	}

	for i < n || j < m {
		if i+j-lastCk >= ckptStride {
			inc.propCkpts = append(inc.propCkpts, mergeState{
				i: i, j: j, computeFree: computeFree, dramFree: dramFree,
				dramBusy: dramBusy, dramBytes: dramBytes})
			lastCk = i + j
		}
		advanced := false
		// Drain every currently-ready DRAM tensor.
		for j < m {
			t := &s.Tensors[s.Order[j]]
			var depTime float64
			if t.Kind.IsLoad() {
				if i < t.Start {
					break // needs more compute progress
				}
				if t.Start > 0 {
					depTime = tileEnd(t.Start - 1)
				}
				stalled := false
				for _, st := range t.AfterStores {
					if !committed(st) {
						stalled = true
						break
					}
					if te := tensorEnd(st); te > depTime {
						depTime = te
					}
				}
				if stalled {
					break
				}
			} else {
				if i <= t.Producer {
					break // producing tile not finished
				}
				depTime = tileEnd(t.Producer)
			}
			start := maxf(dramFree, depTime)
			dur := float64(t.Bytes) / bw
			inc.scrTensorEnd[t.ID] = start + dur
			inc.scrStamp[t.ID] = epoch
			dramFree = start + dur
			dramBusy += dur
			dramBytes += t.Bytes
			j++
			advanced = true
		}
		// Commit the next tile if its gating tensors are done.
		if i < n {
			ready := true
			var depTime float64
			for _, tid := range inc.blockers[i] {
				if !committed(tid) {
					ready = false
					break
				}
				if te := tensorEnd(tid); te > depTime {
					depTime = te
				}
			}
			if ready {
				start := maxf(computeFree, depTime)
				inc.scrTileEnd[i] = start + tileDur[i]
				computeFree = start + tileDur[i]
				i++
				advanced = true
			}
		}
		if !advanced {
			inc.propEnd = mergeState{i: i, j: j, computeFree: computeFree,
				dramFree: dramFree, dramBusy: dramBusy, dramBytes: dramBytes}
			return fmt.Errorf("%w: stuck at tile %d/%d, tensor %d/%d",
				ErrDeadlock, i, n, j, m)
		}
	}
	inc.propEnd = mergeState{i: i, j: j, computeFree: computeFree,
		dramFree: dramFree, dramBusy: dramBusy, dramBytes: dramBytes}
	return nil
}

// Accept commits the pending move: the live schedule keeps it, and - when
// the proposal was actually simulated (a cache hit may have skipped it) -
// the scratch suffix is spliced into the cached accepted state. An accepted
// but unsimulated (or deadlocked) proposal invalidates the cache instead;
// the next evaluation replays from scratch.
func (inc *Incremental) Accept() {
	if inc.pending.kind == moveNone {
		panic("sim: Accept without a pending move")
	}
	if inc.pending.kind == moveOrder {
		lo, hi := inc.pending.from, inc.pending.to
		if hi < lo {
			lo, hi = hi, lo
		}
		for p := lo; p <= hi; p++ {
			inc.posAcc[inc.s.Order[p]] = p
		}
	}
	if inc.propEvaluated {
		inc.mergeScratch(inc.propErr)
	} else {
		inc.accValid = false
		inc.accErr = nil
		inc.checkpoints = inc.checkpoints[:0]
	}
	inc.pending = pendingMove{}
	inc.propEvaluated = false
	inc.propErr = nil
}

// mergeScratch promotes the scratch suffix of the just-simulated proposal
// into the accepted state.
func (inc *Incremental) mergeScratch(err error) {
	if err != nil {
		inc.accValid = false
		inc.accErr = err
		inc.checkpoints = inc.checkpoints[:0]
		return
	}
	copy(inc.accTileEnd[inc.resumeI:], inc.scrTileEnd[inc.resumeI:])
	for p := inc.resumeJ; p < inc.m; p++ {
		id := inc.s.Order[p]
		inc.accTensorEnd[id] = inc.scrTensorEnd[id]
	}
	if inc.propResumeIdx < 0 {
		inc.checkpoints = inc.checkpoints[:0]
	} else {
		inc.checkpoints = inc.checkpoints[:inc.propResumeIdx+1]
	}
	inc.checkpoints = append(inc.checkpoints, inc.propCkpts...)
	inc.accEnd = inc.propEnd
	inc.accErr = nil
	inc.accValid = true
}

// Reject rolls the pending move back in O(perturbed range): the order
// rotation is reversed, Start/End restored, and the occupancy and gate
// deltas undone. The cached accepted state was never touched.
func (inc *Incremental) Reject() {
	switch inc.pending.kind {
	case moveNone:
		panic("sim: Reject without a pending move")
	case moveOrder:
		rotateOrder(inc.s.Order, inc.pending.to, inc.pending.from)
	case moveStart:
		t := &inc.s.Tensors[inc.pending.id]
		if inc.pending.new < inc.pending.old {
			inc.rangeAdd(inc.pending.new, inc.pending.old, -t.Bytes)
		} else {
			inc.rangeAdd(inc.pending.old, inc.pending.new, t.Bytes)
		}
		t.Start = inc.pending.old
	case moveEnd:
		t := &inc.s.Tensors[inc.pending.id]
		oldHi, newHi := inc.pending.old, inc.pending.new
		if t.OnChipHi > oldHi {
			oldHi = t.OnChipHi
		}
		if t.OnChipHi > newHi {
			newHi = t.OnChipHi
		}
		if newHi > oldHi {
			inc.rangeAdd(oldHi, newHi, -t.Bytes)
		} else if newHi < oldHi {
			inc.rangeAdd(newHi, oldHi, t.Bytes)
		}
		if inc.pending.new < inc.n {
			inc.removeBlocker(inc.pending.new, inc.pending.id)
		}
		if inc.pending.old < inc.n {
			inc.blockers[inc.pending.old] = append(inc.blockers[inc.pending.old], inc.pending.id)
		}
		t.End = inc.pending.old
	}
	inc.pending = pendingMove{}
	inc.propEvaluated = false
	inc.propErr = nil
	if tel := inc.opt.Telemetry; tel != nil {
		tel.Rollbacks.Inc()
	}
}

// rotateOrder moves the element at position from to position to, shifting
// the span between them (the inverse of a MoveTensor with swapped
// arguments).
func rotateOrder(order []int, from, to int) {
	id := order[from]
	if to < from {
		copy(order[to+1:from+1], order[to:from])
	} else {
		copy(order[from:to], order[from+1:to+1])
	}
	order[to] = id
}
