package sim

import (
	"errors"
	"testing"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/models"
)

func sh(n, c, h, w int) graph.Shape { return graph.Shape{N: n, C: c, H: h, W: w} }

func kr(kh, kw, s, sw, ph, pw int) graph.Kernel {
	return graph.Kernel{KH: kh, KW: kw, SH: s, SW: sw, PH: ph, PW: pw}
}

// smallNet is a three-conv chain small enough for exhaustive checking.
func smallNet(t testing.TB) *graph.Graph {
	g := graph.New("small", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh(1, 16, 32, 32)})
	prev := in
	for i := 0; i < 3; i++ {
		prev = g.Add(graph.Layer{Kind: graph.Conv, Deps: []graph.Dep{{Producer: prev}},
			Out: sh(1, 32, 32, 32), K: kr(3, 3, 1, 1, 1, 1),
			WeightBytes: 32 * 32 * 9, Ops: 2 * 32 * 32 * 9 * 32 * 32})
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("smallNet: %v", err)
	}
	return g
}

func parse(t testing.TB, g *graph.Graph, e *core.Encoding) *core.Schedule {
	s, err := core.Parse(g, e)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func evalOK(t testing.TB, s *core.Schedule, cfg hw.Config, opt Options) *Metrics {
	m, err := Evaluate(s, coresched.New(cfg), opt)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return m
}

func TestEvaluateBasicInvariants(t *testing.T) {
	g := smallNet(t)
	s := parse(t, g, core.DefaultEncoding(g, 2))
	m := evalOK(t, s, hw.Edge(), Options{})
	if m.LatencyNS <= 0 || m.EnergyPJ <= 0 {
		t.Fatalf("non-positive metrics: %+v", m)
	}
	if m.EnergyPJ != m.CoreEnergyPJ+m.DRAMEnergyPJ {
		t.Fatalf("energy breakdown mismatch: %g != %g + %g",
			m.EnergyPJ, m.CoreEnergyPJ, m.DRAMEnergyPJ)
	}
	// Latency cannot undercut either resource's busy time.
	if m.LatencyNS < m.ComputeBusyNS || m.LatencyNS < m.DRAMBusyNS {
		t.Fatalf("latency %g below busy times %g/%g", m.LatencyNS, m.ComputeBusyNS, m.DRAMBusyNS)
	}
	if m.Utilization <= 0 || m.Utilization > 1 {
		t.Fatalf("utilization = %g", m.Utilization)
	}
	if m.TheoreticalMaxUtil < m.Utilization {
		t.Fatalf("bound %g below achieved %g", m.TheoreticalMaxUtil, m.Utilization)
	}
	if m.DRAMUtilization <= 0 || m.DRAMUtilization > 1 ||
		m.ComputeUtilization <= 0 || m.ComputeUtilization > 1 {
		t.Fatalf("resource utilizations out of range: %+v", m)
	}
	if m.TotalDRAMBytes != s.TotalDRAMBytes() {
		t.Fatal("DRAM bytes mismatch")
	}
	if m.PeakBufferBytes != s.PeakBuffer() {
		t.Fatal("peak buffer mismatch")
	}
}

func TestMoreDRAMBandwidthNeverSlower(t *testing.T) {
	g := smallNet(t)
	s := parse(t, g, core.DefaultEncoding(g, 2))
	slow := evalOK(t, s, hw.Edge().WithDRAM(4), Options{})
	fast := evalOK(t, s, hw.Edge().WithDRAM(64), Options{})
	if fast.LatencyNS > slow.LatencyNS {
		t.Fatalf("more bandwidth slower: %g > %g", fast.LatencyNS, slow.LatencyNS)
	}
}

func TestFusionSavesDRAMEnergy(t *testing.T) {
	g := smallNet(t)
	unfused := parse(t, g, core.DefaultEncoding(g, 2))
	fusedEnc := core.DefaultEncoding(g, 2)
	for i := range fusedEnc.IsDRAM {
		fusedEnc.IsDRAM[i] = false // one LG, fine-grained cuts only
	}
	fused := parse(t, g, fusedEnc)
	mu := evalOK(t, unfused, hw.Edge(), Options{})
	mf := evalOK(t, fused, hw.Edge(), Options{})
	if mf.DRAMEnergyPJ >= mu.DRAMEnergyPJ {
		t.Fatalf("fusion must cut DRAM energy: %g >= %g", mf.DRAMEnergyPJ, mu.DRAMEnergyPJ)
	}
}

func TestPrefetchReducesLatency(t *testing.T) {
	// On a bandwidth-starved platform, prefetching weights earlier than
	// the double-buffer default must not hurt and should typically help.
	g := smallNet(t)
	s := parse(t, g, core.DefaultEncoding(g, 4))
	cfg := hw.Edge().WithDRAM(4)
	base := evalOK(t, s, cfg, Options{})
	early := s.Clone()
	for i := range early.Tensors {
		if early.Tensors[i].Kind.IsLoad() {
			early.SetStart(early.Tensors[i].ID, 0)
		}
	}
	m := evalOK(t, early, cfg, Options{})
	if m.LatencyNS > base.LatencyNS*1.0001 {
		t.Fatalf("maximal prefetch slower: %g > %g", m.LatencyNS, base.LatencyNS)
	}
}

func TestDelayedStoreEffect(t *testing.T) {
	// Relaxing every store deadline to the end of execution removes
	// store-induced compute stalls; latency must not increase.
	g := smallNet(t)
	s := parse(t, g, core.DefaultEncoding(g, 4))
	cfg := hw.Edge().WithDRAM(4)
	base := evalOK(t, s, cfg, Options{})
	lax := s.Clone()
	for i := range lax.Tensors {
		if lax.Tensors[i].Kind == core.StoreOfmap {
			lax.SetEnd(lax.Tensors[i].ID, lax.NumTiles())
		}
	}
	m := evalOK(t, lax, cfg, Options{})
	if m.LatencyNS > base.LatencyNS*1.0001 {
		t.Fatalf("delayed stores slower: %g > %g", m.LatencyNS, base.LatencyNS)
	}
}

func TestDeadlockDetection(t *testing.T) {
	g := smallNet(t)
	s := parse(t, g, core.DefaultEncoding(g, 2))
	// Force an illegal order: put a load that depends on a store before
	// that store by raw manipulation (MoveTensor would refuse).
	var loadPos, storePos = -1, -1
	for pos, id := range s.Order {
		ts := &s.Tensors[id]
		if ts.Kind == core.LoadIfmap && len(ts.AfterStores) > 0 && loadPos == -1 {
			loadPos = pos
		}
		if ts.Kind == core.StoreOfmap && storePos == -1 {
			storePos = pos
		}
	}
	if loadPos == -1 || storePos == -1 {
		t.Skip("no reload pair in this schedule")
	}
	// Swap the dependent load to the very front.
	s.Order[0], s.Order[loadPos] = s.Order[loadPos], s.Order[0]
	if s.OrderValid() {
		t.Skip("swap did not violate order")
	}
	_, err := Evaluate(s, coresched.New(hw.Edge()), Options{})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want deadlock, got %v", err)
	}
}

func TestBufferBudgetFlag(t *testing.T) {
	g := smallNet(t)
	s := parse(t, g, core.DefaultEncoding(g, 1))
	m := evalOK(t, s, hw.Edge(), Options{BufferBudget: 1})
	if m.BufferOK {
		t.Fatal("1-byte budget reported feasible")
	}
	m = evalOK(t, s, hw.Edge(), Options{})
	if !m.BufferOK {
		t.Fatalf("8MB budget infeasible for a tiny net (peak=%d)", m.PeakBufferBytes)
	}
	if m.Budget != hw.Edge().GBufBytes {
		t.Fatalf("default budget = %d", m.Budget)
	}
}

func TestTraceShapes(t *testing.T) {
	g := smallNet(t)
	s := parse(t, g, core.DefaultEncoding(g, 2))
	m := evalOK(t, s, hw.Edge(), Options{Trace: true})
	if len(m.TileStart) != s.NumTiles() || len(m.TensorStart) != len(s.Tensors) {
		t.Fatalf("trace lengths: %d %d", len(m.TileStart), len(m.TensorStart))
	}
	for i := range m.TileStart {
		if m.TileEnd[i] < m.TileStart[i] {
			t.Fatalf("tile %d ends before start", i)
		}
		if i > 0 && m.TileStart[i] < m.TileEnd[i-1] {
			t.Fatalf("tiles overlap on the serial pipeline: %d", i)
		}
	}
	for i := 1; i < len(s.Order); i++ {
		prev, cur := s.Order[i-1], s.Order[i]
		if m.TensorStart[cur] < m.TensorEnd[prev]-1e-9 {
			t.Fatalf("tensors overlap on the serial channel at order %d", i)
		}
	}
	// Without Trace the slices stay nil.
	m2 := evalOK(t, s, hw.Edge(), Options{})
	if m2.TileStart != nil || m2.TensorStart != nil {
		t.Fatal("trace data leaked without Trace option")
	}
}

func TestLoadRespectsStartSemantics(t *testing.T) {
	// A load with Start=s must not begin before tile s-1 completes.
	g := smallNet(t)
	s := parse(t, g, core.DefaultEncoding(g, 2))
	m := evalOK(t, s, hw.Edge(), Options{Trace: true})
	for _, ts := range s.Tensors {
		if !ts.Kind.IsLoad() || ts.Start == 0 {
			continue
		}
		if m.TensorStart[ts.ID]+1e-9 < m.TileEnd[ts.Start-1] {
			t.Fatalf("tensor %d started %.1f before tile %d finished %.1f",
				ts.ID, m.TensorStart[ts.ID], ts.Start-1, m.TileEnd[ts.Start-1])
		}
	}
	// Every load completes before its first consumer starts.
	for _, ts := range s.Tensors {
		if !ts.Kind.IsLoad() {
			continue
		}
		if m.TileStart[ts.FirstUse]+1e-9 < m.TensorEnd[ts.ID] {
			t.Fatalf("tile %d started before its load %d finished", ts.FirstUse, ts.ID)
		}
	}
	// Every store starts after its producing tile.
	for _, ts := range s.Tensors {
		if ts.Kind != core.StoreOfmap {
			continue
		}
		if m.TensorStart[ts.ID]+1e-9 < m.TileEnd[ts.Producer] {
			t.Fatalf("store %d started before tile %d finished", ts.ID, ts.Producer)
		}
	}
}

func TestStoreEndGatesTile(t *testing.T) {
	g := smallNet(t)
	s := parse(t, g, core.DefaultEncoding(g, 2))
	m := evalOK(t, s, hw.Edge(), Options{Trace: true})
	for _, ts := range s.Tensors {
		if ts.Kind != core.StoreOfmap || ts.End >= s.NumTiles() {
			continue
		}
		if m.TileStart[ts.End]+1e-9 < m.TensorEnd[ts.ID] {
			t.Fatalf("tile %d started before store %d (End=%d) finished",
				ts.End, ts.ID, ts.End)
		}
	}
}

func TestCostObjective(t *testing.T) {
	m := &Metrics{EnergyPJ: 10, LatencyNS: 3}
	if m.Cost(1, 1) != 30 {
		t.Fatalf("Cost(1,1) = %g", m.Cost(1, 1))
	}
	if m.Cost(0, 1) != 3 {
		t.Fatalf("Cost(0,1) = %g", m.Cost(0, 1))
	}
	if m.Cost(2, 1) != 300 {
		t.Fatalf("Cost(2,1) = %g", m.Cost(2, 1))
	}
}

func TestResNetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full model in -short mode")
	}
	g := models.ResNet50(1)
	s := parse(t, g, core.DefaultEncoding(g, 4))
	m := evalOK(t, s, hw.Edge(), Options{})
	if m.LatencyNS <= 0 {
		t.Fatal("resnet latency must be positive")
	}
	// Unfused ResNet-50 at batch 1 moves >= weights + input + output.
	if m.TotalDRAMBytes < g.TotalWeightBytes() {
		t.Fatalf("DRAM bytes %d below weight bytes %d", m.TotalDRAMBytes, g.TotalWeightBytes())
	}
	// Sanity: latency in a plausible window (0.1ms - 1s) for 16 TOPS.
	if m.LatencyNS < 1e5 || m.LatencyNS > 1e9 {
		t.Fatalf("resnet latency = %g ns, implausible", m.LatencyNS)
	}
}

func TestGPT2DecodeUtilizationTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full model in -short mode")
	}
	g := models.GPT2Decode(models.GPT2Small(), 1)
	s := parse(t, g, core.DefaultEncoding(g, 1))
	m := evalOK(t, s, hw.Edge(), Options{})
	// Paper observation: decode utilization is a fraction of a percent at
	// batch 1 on a 16 TOPS edge device.
	if m.Utilization > 0.05 {
		t.Fatalf("decode utilization %.4f too high for bandwidth-bound phase", m.Utilization)
	}
	if m.DRAMUtilization < 0.5 {
		t.Fatalf("decode should saturate DRAM, got %.3f", m.DRAMUtilization)
	}
}
