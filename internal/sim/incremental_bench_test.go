package sim

import (
	"math/rand"
	"testing"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/hw"
	"soma/internal/models"
)

// benchState builds the stage-2 starting point of one zoo model: the parsed
// default encoding with precomputed tile costs (stage 2 never re-tiles).
func benchState(b *testing.B) (*core.Schedule, *coresched.Scheduler, Options) {
	b.Helper()
	g, err := models.Build("mobilenetv2", 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.Parse(g, core.DefaultEncoding(g, 1))
	if err != nil {
		b.Fatal(err)
	}
	cs := coresched.New(hw.Edge())
	return s, cs, Options{TileCosts: PrecomputeTileCosts(s, cs)}
}

// BenchmarkIncrementalMove costs one DLSA proposal on the incremental
// evaluator: apply a move, re-simulate the affected suffix, accept or
// reject. This is the stage-2 hot path; somabench snapshot records it per
// zoo model into the committed BENCH trajectory.
func BenchmarkIncrementalMove(b *testing.B) {
	s, cs, opt := benchState(b)
	inc, err := NewIncremental(s.Clone(), cs, opt)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !proposeRandomMove(inc, rng) {
			continue
		}
		if _, err := inc.EvaluateProposal(); err != nil {
			inc.Reject()
			continue
		}
		if rng.Intn(2) == 0 {
			inc.Accept()
		} else {
			inc.Reject()
		}
	}
}

// BenchmarkFullEvaluateMove costs the same proposal on the historical
// clone-and-replay path the move-aware annealer replaced: clone the
// schedule, mutate the clone, evaluate it from scratch.
func BenchmarkFullEvaluateMove(b *testing.B) {
	s, cs, opt := benchState(b)
	cur := s.Clone()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cand := cur.Clone()
		if !applyRandomMove(cand, rng) {
			continue
		}
		if _, err := Evaluate(cand, cs, opt); err != nil {
			continue
		}
		if rng.Intn(2) == 0 {
			cur = cand
		}
	}
}

// applyRandomMove is proposeRandomMove applied directly to a schedule (the
// historical path had no evaluator to route moves through). Same operator
// mix, same changed-or-not semantics.
func applyRandomMove(s *core.Schedule, rng *rand.Rand) bool {
	switch rng.Intn(3) {
	case 0:
		return s.MoveTensor(rng.Intn(len(s.Order)), rng.Intn(len(s.Order)))
	case 1:
		id := rng.Intn(len(s.Tensors))
		if !s.Tensors[id].Kind.IsLoad() {
			return false
		}
		delta := 1 + rng.Intn(4)
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		old := s.Tensors[id].Start
		return s.SetStart(id, old+delta) && s.Tensors[id].Start != old
	default:
		id := rng.Intn(len(s.Tensors))
		if s.Tensors[id].Kind.IsLoad() {
			return false
		}
		delta := 1 + rng.Intn(4)
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		old := s.Tensors[id].End
		return s.SetEnd(id, old+delta) && s.Tensors[id].End != old
	}
}
