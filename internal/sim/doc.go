// Package sim is the paper's accurate evaluator (Sec. V-D): it replays a
// parsed schedule on two serial resources - the DRAM channel, which executes
// the DRAM tensors in DRAM Tensor Order, and the compute pipeline, which
// executes the tiles in sequence - enforcing exactly the start conditions
// the paper defines:
//
//   - a DRAM tensor starts when its predecessor in the DRAM Tensor Order has
//     finished; loads additionally wait until every tile before their Living
//     Duration Start has completed (and, for reloaded fmaps, until the
//     producer's stores finished); stores wait for their producing tile;
//   - a computing tile starts when all its loads have finished and every
//     store with End <= tile has finished.
//
// The evaluator reports latency, the energy breakdown (core array vs DRAM),
// both resources' busy times, buffer occupancy statistics and the
// theoretical maximum utilization bound used as Fig. 6's blue diamonds.
//
// Two memoization layers keep the annealer's evaluation volume tractable:
//
//   - TileCosts (PrecomputeTileCosts) caches the compute-side cost of every
//     tile; the DLSA exploration stage never changes tiles, so thousands of
//     candidate schedules share one precomputation.
//   - Cache memoizes entire evaluations keyed by the schedule's canonical
//     encoding (core.Encoding/core.Schedule CanonicalKey) plus the buffer
//     budget, with hit/miss counters surfaced through the run reports. The
//     portfolio chains of the parallel search engine share one Cache.
package sim
