package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/graph"
	"soma/internal/hw"
)

// randomEncoding derives a legal encoding from random bytes: random legal
// layer moves, random cuts, random tilings.
func randomEncoding(g *graph.Graph, seed int64) *core.Encoding {
	rng := rand.New(rand.NewSource(seed))
	e := core.DefaultEncoding(g, 1)
	n := len(e.Order)
	for i := 0; i < 3*n; i++ {
		switch rng.Intn(4) {
		case 0:
			e.MoveLayer(g, rng.Intn(n), rng.Intn(n))
		case 1:
			if len(e.FLCs) > 0 {
				e.RemoveFLC(rng.Intn(len(e.FLCs)), 1+rng.Intn(4))
			}
		case 2:
			e.AddFLC(1 + rng.Intn(n-1))
		case 3:
			if len(e.FLCs) > 0 {
				i := rng.Intn(len(e.FLCs))
				e.SetDRAM(i, !e.IsDRAM[i])
			}
		}
	}
	for i := range e.Tile {
		e.Tile[i] = 1 << rng.Intn(4)
	}
	return e
}

// TestRandomEncodingsInvariants: every legal random encoding of a CNN parses
// and simulates without deadlock, and the metrics satisfy the fundamental
// bounds.
func TestRandomEncodingsInvariants(t *testing.T) {
	g := smallNet(t)
	cs := coresched.New(hw.Edge())
	f := func(seedRaw uint16) bool {
		e := randomEncoding(g, int64(seedRaw))
		if err := e.Check(g); err != nil {
			return false // randomEncoding must keep legality
		}
		s, err := core.Parse(g, e)
		if err != nil {
			return true // e.g. tiling rejected: fine, just skip
		}
		m, err := Evaluate(s, cs, Options{})
		if err != nil {
			return false // parser-produced DLSA must never deadlock
		}
		if m.LatencyNS < m.ComputeBusyNS || m.LatencyNS < m.DRAMBusyNS {
			return false
		}
		if m.Utilization > m.TheoreticalMaxUtil+1e-9 {
			return false
		}
		if m.EnergyPJ <= 0 || m.PeakBufferBytes < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomEncodingsEnergyDecomposition: DRAM energy tracks DRAM bytes
// exactly for any encoding.
func TestRandomEncodingsEnergyDecomposition(t *testing.T) {
	g := smallNet(t)
	cfg := hw.Edge()
	cs := coresched.New(cfg)
	en := cfg.Energy
	f := func(seedRaw uint16) bool {
		e := randomEncoding(g, int64(seedRaw)+7777)
		s, err := core.Parse(g, e)
		if err != nil {
			return true
		}
		m, err := Evaluate(s, cs, Options{})
		if err != nil {
			return false
		}
		want := float64(m.TotalDRAMBytes) * (en.DRAMPerByte + en.GBufPerByte)
		diff := m.DRAMEnergyPJ - want
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFusionNeverIncreasesDRAMBytes: removing a DRAM cut (merging two LGs)
// can only reduce or keep the DRAM traffic of the parsed schedule.
func TestFusionNeverIncreasesDRAMBytes(t *testing.T) {
	g := smallNet(t)
	f := func(seedRaw uint16) bool {
		e := randomEncoding(g, int64(seedRaw)+31)
		s, err := core.Parse(g, e)
		if err != nil {
			return true
		}
		// Find a DRAM cut to demote to a plain FLC.
		demoted := e.Clone()
		found := false
		for i := range demoted.IsDRAM {
			if demoted.IsDRAM[i] {
				demoted.IsDRAM[i] = false
				found = true
				break
			}
		}
		if !found {
			return true
		}
		s2, err := core.Parse(g, demoted)
		if err != nil {
			return true
		}
		return s2.TotalDRAMBytes() <= s.TotalDRAMBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPrecomputedTileCostsMatchInline: passing TileCosts must not change any
// metric.
func TestPrecomputedTileCostsMatchInline(t *testing.T) {
	g := smallNet(t)
	s, err := core.Parse(g, core.DefaultEncoding(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	cs := coresched.New(hw.Edge())
	inline, err := Evaluate(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc := PrecomputeTileCosts(s, cs)
	cached, err := Evaluate(s, cs, Options{TileCosts: tc})
	if err != nil {
		t.Fatal(err)
	}
	if inline.LatencyNS != cached.LatencyNS || inline.EnergyPJ != cached.EnergyPJ {
		t.Fatalf("cached evaluation diverged: %v vs %v", inline, cached)
	}
	// Mismatched cache length is rejected.
	bad := &TileCosts{Dur: make([]float64, 1)}
	if _, err := Evaluate(s, cs, Options{TileCosts: bad}); err == nil {
		t.Fatal("mismatched tile-cost cache accepted")
	}
}
