package sim

import (
	"math/rand"
	"testing"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/hw"
	"soma/internal/models"
)

// metricsEqual compares the metric fields the search objective and the
// feasibility check consume. The incremental evaluator is engineered to be
// bit-identical to Evaluate (same float operations in the same order), so
// the comparison is exact, not tolerance-based - any drift would eventually
// flip an SA acceptance draw and break golden stability.
func metricsEqual(a, b *Metrics) bool {
	return a.LatencyNS == b.LatencyNS &&
		a.EnergyPJ == b.EnergyPJ &&
		a.CoreEnergyPJ == b.CoreEnergyPJ &&
		a.DRAMEnergyPJ == b.DRAMEnergyPJ &&
		a.ComputeBusyNS == b.ComputeBusyNS &&
		a.DRAMBusyNS == b.DRAMBusyNS &&
		a.TotalDRAMBytes == b.TotalDRAMBytes &&
		a.PeakBufferBytes == b.PeakBufferBytes &&
		a.AvgBufferBytes == b.AvgBufferBytes &&
		a.BufferOK == b.BufferOK &&
		a.Utilization == b.Utilization
}

// proposeRandomMove applies one random DLSA operator (the same three
// stage-2 search uses) through the incremental evaluator. Returns false if
// the drawn move was illegal or a no-op.
func proposeRandomMove(inc *Incremental, rng *rand.Rand) bool {
	s := inc.Schedule()
	switch rng.Intn(3) {
	case 0:
		from := rng.Intn(len(s.Order))
		to := rng.Intn(len(s.Order))
		return inc.MoveTensor(from, to)
	case 1:
		id := rng.Intn(len(s.Tensors))
		if !s.Tensors[id].Kind.IsLoad() {
			return false
		}
		delta := 1 + rng.Intn(4)
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		return inc.SetStart(id, s.Tensors[id].Start+delta)
	default:
		id := rng.Intn(len(s.Tensors))
		if s.Tensors[id].Kind.IsLoad() {
			return false
		}
		delta := 1 + rng.Intn(4)
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		return inc.SetEnd(id, s.Tensors[id].End+delta)
	}
}

// diffHarness drives moves random moves through an Incremental over s,
// checking after every proposal that the incremental metrics equal a full
// sim.Evaluate of the (mutated) schedule, and after every reject that the
// rollback restored the schedule exactly.
func diffHarness(t *testing.T, s *core.Schedule, cs *coresched.Scheduler, seed int64, moves int, wantResume bool) {
	t.Helper()
	tc := PrecomputeTileCosts(s, cs)
	opt := Options{TileCosts: tc}
	inc, err := NewIncremental(s, cs, opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	applied := 0
	for applied < moves {
		before := s.ExtractDLSA()
		if !proposeRandomMove(inc, rng) {
			continue
		}
		applied++

		action := rng.Intn(10)
		if action == 9 {
			// Simulated cache hit: the move is accepted without the
			// incremental evaluator ever seeing a proposal evaluation.
			// Its cached state must be invalidated, not corrupted.
			inc.Accept()
		} else {
			im, ierr := inc.EvaluateProposal()
			fm, ferr := Evaluate(s, cs, opt)
			if (ierr == nil) != (ferr == nil) {
				t.Fatalf("move %d: error disagreement: incremental=%v full=%v", applied, ierr, ferr)
			}
			if ierr == nil && !metricsEqual(im, fm) {
				t.Fatalf("move %d: proposal metrics diverge:\nincremental %+v\nfull        %+v", applied, im, fm)
			}
			// Deadlocked proposals cost Inf and are rejected by the
			// annealer; rejecting them here also keeps the walk on
			// legal states so checkpoints stay warm.
			if ierr == nil && action < 5 {
				inc.Accept()
			} else {
				inc.Reject()
				after := s.ExtractDLSA()
				if !dlsaEqual(before, after) {
					t.Fatalf("move %d: reject did not restore the schedule", applied)
				}
			}
		}

		// The accepted-state metrics must match a full evaluation at
		// every step (exercises both spliced and invalidated state).
		am, aerr := inc.Metrics()
		fm, ferr := Evaluate(s, cs, opt)
		if (aerr == nil) != (ferr == nil) {
			t.Fatalf("move %d: accepted-state error disagreement: incremental=%v full=%v", applied, aerr, ferr)
		}
		if aerr == nil && !metricsEqual(am, fm) {
			t.Fatalf("move %d: accepted-state metrics diverge:\nincremental %+v\nfull        %+v", applied, am, fm)
		}
	}
	if st := inc.Stats(); wantResume && st.Resumed == 0 {
		t.Errorf("no proposal ever resumed from a checkpoint (proposals=%d fallbacks=%d)", st.Proposals, st.Fallbacks)
	}
}

func dlsaEqual(a, b core.DLSA) bool {
	if len(a.Order) != len(b.Order) {
		return false
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] || a.Start[i] != b.Start[i] || a.End[i] != b.End[i] {
			return false
		}
	}
	return true
}

// TestIncrementalDifferentialSmall: exhaustive-ish random-walk agreement on
// the small synthetic net, across several seeds and fusion structures.
func TestIncrementalDifferentialSmall(t *testing.T) {
	g := smallNet(t)
	cs := coresched.New(hw.Edge())
	for seed := int64(1); seed <= 4; seed++ {
		e := randomEncoding(g, seed*101)
		s, err := core.Parse(g, e)
		if err != nil {
			continue
		}
		// Schedules this small have fewer merge events than the
		// checkpoint stride; resuming is not expected, only agreement.
		diffHarness(t, s, cs, seed, 400, false)
	}
}

// TestIncrementalDifferentialZoo: the same property over real zoo models
// (the schedules stage-2 search actually walks).
func TestIncrementalDifferentialZoo(t *testing.T) {
	cases := []struct {
		model string
		cfg   hw.Config
		tile  int
		moves int
	}{
		{"mobilenetv2", hw.Edge(), 2, 150},
		{"resnet50", hw.Cloud(), 1, 80},
		{"gpt2s-decode", hw.Edge(), 1, 150},
	}
	for _, c := range cases {
		t.Run(c.model, func(t *testing.T) {
			g, err := models.Build(c.model, 1)
			if err != nil {
				t.Fatal(err)
			}
			s, err := core.Parse(g, core.DefaultEncoding(g, c.tile))
			if err != nil {
				t.Fatal(err)
			}
			diffHarness(t, s, coresched.New(c.cfg), int64(len(c.model)), c.moves, true)
		})
	}
}

// TestIncrementalDeadlockAgreement: driving the order into a deadlocking
// state (reload before its producer store) must error identically in both
// evaluators, and the evaluator must recover once the state moves back to
// legality.
func TestIncrementalDeadlockAgreement(t *testing.T) {
	g := smallNet(t)
	// The default encoding puts every layer in its own LG, so each layer
	// boundary is a store + dependent-reload pair.
	s, err := core.Parse(g, core.DefaultEncoding(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Deadlock needs an order where a load precedes a store it depends on;
	// Schedule.MoveTensor refuses to create one directly, so force it by
	// swapping the raw order and rebuilding the evaluator - the incremental
	// evaluator must then report the same deadlock as Evaluate.
	var loadPos = -1
	for p, id := range s.Order {
		if len(s.Tensors[id].AfterStores) > 0 {
			loadPos = p
			break
		}
	}
	if loadPos < 0 {
		t.Skip("no dependent reload in this schedule")
	}
	dep := s.Tensors[s.Order[loadPos]].AfterStores[0]
	depPos := -1
	for p, id := range s.Order {
		if id == dep {
			depPos = p
		}
	}
	s.Order[loadPos], s.Order[depPos] = s.Order[depPos], s.Order[loadPos]

	cs := coresched.New(hw.Edge())
	inc, err := NewIncremental(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ierr := inc.Metrics()
	_, ferr := Evaluate(s, cs, Options{})
	if (ierr == nil) != (ferr == nil) {
		t.Fatalf("deadlock disagreement: incremental=%v full=%v", ierr, ferr)
	}
	if ferr == nil {
		t.Skip("swap did not deadlock this schedule")
	}
	// Recover: move the store back before the load via a legal move.
	if !inc.MoveTensor(depPos, loadPos) {
		t.Fatal("recovery move rejected")
	}
	im, ierr := inc.EvaluateProposal()
	fm, ferr := Evaluate(s, cs, Options{})
	if ierr != nil || ferr != nil {
		t.Fatalf("recovery still deadlocks: incremental=%v full=%v", ierr, ferr)
	}
	if !metricsEqual(im, fm) {
		t.Fatalf("post-recovery metrics diverge:\nincremental %+v\nfull        %+v", im, fm)
	}
	inc.Accept()
}
