package sim

import (
	"math"
	"sync"
	"testing"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/graph"
	"soma/internal/hw"
)

func cacheTestSchedule(t testing.TB) (*core.Schedule, *coresched.Scheduler) {
	t.Helper()
	g := graph.New("cache", 1)
	sh := graph.Shape{N: 1, C: 16, H: 28, W: 28}
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh})
	a := g.Add(graph.Layer{Name: "a", Kind: graph.Conv, Deps: []graph.Dep{{Producer: in}},
		Out: sh, K: graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 16 * 16 * 9, Ops: 2 * 16 * 16 * 9 * 28 * 28})
	g.Add(graph.Layer{Name: "b", Kind: graph.Conv, Deps: []graph.Dep{{Producer: a}},
		Out: sh, K: graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 16 * 16 * 9, Ops: 2 * 16 * 16 * 9 * 28 * 28})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := core.Parse(g, core.DefaultEncoding(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	return s, coresched.New(hw.Edge())
}

// TestCacheMatchesFreshEvaluation is the cache-correctness check: a cached
// result must be identical to a fresh evaluation of the same schedule.
func TestCacheMatchesFreshEvaluation(t *testing.T) {
	s, cs := cacheTestSchedule(t)
	c := NewCache(0)

	fresh, err := Evaluate(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Evaluate(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := c.Evaluate(s.Clone(), cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Metrics{first, cached} {
		if m.LatencyNS != fresh.LatencyNS || m.EnergyPJ != fresh.EnergyPJ ||
			m.PeakBufferBytes != fresh.PeakBufferBytes ||
			m.TotalDRAMBytes != fresh.TotalDRAMBytes ||
			m.Utilization != fresh.Utilization {
			t.Fatalf("cached metrics diverge from fresh: %+v vs %+v", m, fresh)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("expected 1 hit / 1 miss, got %+v", st)
	}

	// Mutating a returned value must not poison later lookups.
	cached.LatencyNS = -1
	again, err := c.Evaluate(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again.LatencyNS != fresh.LatencyNS {
		t.Fatal("cache returned an aliased, mutated value")
	}
}

func TestCacheKeyIncludesBudget(t *testing.T) {
	s, cs := cacheTestSchedule(t)
	c := NewCache(0)
	full, err := c.Evaluate(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := c.Evaluate(s, cs, Options{BufferBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !full.BufferOK || tiny.BufferOK {
		t.Fatalf("budget must decide feasibility: full=%v tiny=%v", full.BufferOK, tiny.BufferOK)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("different budgets must be distinct entries: %+v", st)
	}
}

func TestCacheTraceBypassAndFlush(t *testing.T) {
	s, cs := cacheTestSchedule(t)
	c := NewCache(2)
	if _, err := c.Evaluate(s, cs, Options{Trace: true}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits+st.Misses != 0 {
		t.Fatalf("traced evaluations must bypass the cache: %+v", st)
	}

	// Capacity 2 (generations of 1): three distinct keys must rotate the
	// generations at least once and never hold more than cap entries.
	for _, budget := range []int64{0, 1, 2} {
		if _, err := c.Evaluate(s, cs, Options{BufferBudget: budget}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Flushes == 0 || st.Entries > 2 {
		t.Fatalf("expected generational eviction at capacity: %+v", st)
	}
}

// TestCacheGenerationalEviction drives Memoize through many distinct keys
// and checks the daemon-facing guarantees: memory stays bounded by the
// capacity while recently used entries survive rotation via promotion.
func TestCacheGenerationalEviction(t *testing.T) {
	c := NewCache(4) // generations of 2
	evals := 0
	get := func(key string) {
		_, _ = c.Memoize(key, func() (*Metrics, error) {
			evals++
			return &Metrics{}, nil
		})
	}
	for _, key := range []string{"a", "b", "c", "a", "d", "a", "b"} {
		get(key)
		if st := c.Stats(); st.Entries > 4 {
			t.Fatalf("cache exceeded its capacity: %+v", st)
		}
	}
	st := c.Stats()
	// "a" is hit twice (promoted out of the old generation both times);
	// "b" was evicted with its generation and re-evaluated.
	if st.Hits != 2 || st.Misses != 5 || evals != 5 {
		t.Fatalf("hits/misses/evals = %d/%d/%d, want 2/5/5 (%+v)", st.Hits, st.Misses, evals, st)
	}
	if st.Flushes != 3 {
		t.Fatalf("expected 3 generation rotations, got %+v", st)
	}
	// The bound must hold under sustained churn, not just this sequence.
	for i := 0; i < 1000; i++ {
		get(string(rune('e' + i%64)))
	}
	if st := c.Stats(); st.Entries > 4 {
		t.Fatalf("sustained churn broke the bound: %+v", st)
	}
}

func TestCacheConcurrentEvaluate(t *testing.T) {
	s, cs := cacheTestSchedule(t)
	c := NewCache(0)
	want, err := Evaluate(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m, err := c.Evaluate(s, cs, Options{})
				if err != nil || m.LatencyNS != want.LatencyNS {
					t.Errorf("concurrent evaluate diverged: %v %v", m, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Hits+st.Misses != 400 || st.Hits <= 0 {
		t.Fatalf("unexpected counters: %+v", st)
	}
}

func TestNilCacheDelegates(t *testing.T) {
	s, cs := cacheTestSchedule(t)
	var c *Cache
	m, err := c.Evaluate(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.LatencyNS <= 0 || math.IsInf(m.LatencyNS, 1) {
		t.Fatalf("latency = %g", m.LatencyNS)
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats must be zero: %+v", st)
	}
}

// TestCacheScopeSeparatesContexts: canonical keys only identify schedules
// within one (graph, hardware) pair, so a shared cache must keep entries
// from different scopes apart (the somad daemon relies on this).
func TestCacheScopeSeparatesContexts(t *testing.T) {
	s, cs := cacheTestSchedule(t)
	c := NewCache(0)
	if _, err := c.Evaluate(s, cs, Options{CacheScope: "resnet50|1|edge|"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Evaluate(s, cs, Options{CacheScope: "resnet50|16|edge|"}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("different scopes must not share entries: %+v", st)
	}
	if _, err := c.Evaluate(s, cs, Options{CacheScope: "resnet50|1|edge|"}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("same scope must hit: %+v", st)
	}
}

// TestCacheConcurrentSameKeyAccounting hammers a small keyset from many
// goroutines so several workers miss the same key simultaneously (the
// portfolio-chain pattern). The counters must account for every single call
// - hits + misses == calls exactly, no undercounting - and the duplicate
// inserts of a shared key must not count toward generation fill: with a
// keyset smaller than one generation, no flush may ever happen.
func TestCacheConcurrentSameKeyAccounting(t *testing.T) {
	c := NewCache(64) // gen() == 32 > keys: any flush is a double-insert bug
	const workers, rounds, keys = 16, 200, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := Key("k", int64(i%keys))
				m, err := c.Memoize(key, func() (*Metrics, error) {
					return &Metrics{LatencyNS: float64(i % keys)}, nil
				})
				if err != nil || m.LatencyNS != float64(i%keys) {
					t.Errorf("worker %d: wrong result %v %v", w, m, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != workers*rounds {
		t.Fatalf("counters undercount: hits %d + misses %d != %d calls",
			st.Hits, st.Misses, workers*rounds)
	}
	if st.Misses < keys {
		t.Fatalf("fewer misses (%d) than distinct keys (%d)", st.Misses, keys)
	}
	if st.Entries != keys {
		t.Fatalf("entries = %d, want %d", st.Entries, keys)
	}
	if st.Flushes != 0 {
		t.Fatalf("duplicate concurrent inserts triggered %d flushes", st.Flushes)
	}
}

// TestCacheConcurrentRotation rotates generations under concurrency: a
// capacity far below the keyset forces flushes while workers read stats.
func TestCacheConcurrentRotation(t *testing.T) {
	c := NewCache(8)
	const workers, rounds = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := Key("rot", int64((w*rounds+i)%64))
				if _, err := c.Memoize(key, func() (*Metrics, error) {
					return &Metrics{LatencyNS: 1}, nil
				}); err != nil {
					t.Errorf("memoize: %v", err)
					return
				}
				if i%32 == 0 {
					_ = c.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != workers*rounds {
		t.Fatalf("counters undercount: hits %d + misses %d != %d calls",
			st.Hits, st.Misses, workers*rounds)
	}
	if st.Flushes == 0 {
		t.Fatal("tiny cache never rotated")
	}
	if st.Entries > 8+1 {
		t.Fatalf("entries %d exceed capacity", st.Entries)
	}
}
