package sim

import (
	"math"
	"sync"
	"testing"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/graph"
	"soma/internal/hw"
)

func cacheTestSchedule(t testing.TB) (*core.Schedule, *coresched.Scheduler) {
	t.Helper()
	g := graph.New("cache", 1)
	sh := graph.Shape{N: 1, C: 16, H: 28, W: 28}
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh})
	a := g.Add(graph.Layer{Name: "a", Kind: graph.Conv, Deps: []graph.Dep{{Producer: in}},
		Out: sh, K: graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 16 * 16 * 9, Ops: 2 * 16 * 16 * 9 * 28 * 28})
	g.Add(graph.Layer{Name: "b", Kind: graph.Conv, Deps: []graph.Dep{{Producer: a}},
		Out: sh, K: graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 16 * 16 * 9, Ops: 2 * 16 * 16 * 9 * 28 * 28})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := core.Parse(g, core.DefaultEncoding(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	return s, coresched.New(hw.Edge())
}

// TestCacheMatchesFreshEvaluation is the cache-correctness check: a cached
// result must be identical to a fresh evaluation of the same schedule.
func TestCacheMatchesFreshEvaluation(t *testing.T) {
	s, cs := cacheTestSchedule(t)
	c := NewCache(0)

	fresh, err := Evaluate(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Evaluate(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := c.Evaluate(s.Clone(), cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Metrics{first, cached} {
		if m.LatencyNS != fresh.LatencyNS || m.EnergyPJ != fresh.EnergyPJ ||
			m.PeakBufferBytes != fresh.PeakBufferBytes ||
			m.TotalDRAMBytes != fresh.TotalDRAMBytes ||
			m.Utilization != fresh.Utilization {
			t.Fatalf("cached metrics diverge from fresh: %+v vs %+v", m, fresh)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("expected 1 hit / 1 miss, got %+v", st)
	}

	// Mutating a returned value must not poison later lookups.
	cached.LatencyNS = -1
	again, err := c.Evaluate(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again.LatencyNS != fresh.LatencyNS {
		t.Fatal("cache returned an aliased, mutated value")
	}
}

func TestCacheKeyIncludesBudget(t *testing.T) {
	s, cs := cacheTestSchedule(t)
	c := NewCache(0)
	full, err := c.Evaluate(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := c.Evaluate(s, cs, Options{BufferBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !full.BufferOK || tiny.BufferOK {
		t.Fatalf("budget must decide feasibility: full=%v tiny=%v", full.BufferOK, tiny.BufferOK)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("different budgets must be distinct entries: %+v", st)
	}
}

func TestCacheTraceBypassAndFlush(t *testing.T) {
	s, cs := cacheTestSchedule(t)
	c := NewCache(1)
	if _, err := c.Evaluate(s, cs, Options{Trace: true}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits+st.Misses != 0 {
		t.Fatalf("traced evaluations must bypass the cache: %+v", st)
	}

	// Capacity 1: the second distinct key flushes the first.
	if _, err := c.Evaluate(s, cs, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Evaluate(s, cs, Options{BufferBudget: 1}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Flushes == 0 || st.Entries != 1 {
		t.Fatalf("expected an epoch flush at capacity: %+v", st)
	}
}

func TestCacheConcurrentEvaluate(t *testing.T) {
	s, cs := cacheTestSchedule(t)
	c := NewCache(0)
	want, err := Evaluate(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m, err := c.Evaluate(s, cs, Options{})
				if err != nil || m.LatencyNS != want.LatencyNS {
					t.Errorf("concurrent evaluate diverged: %v %v", m, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Hits+st.Misses != 400 || st.Hits <= 0 {
		t.Fatalf("unexpected counters: %+v", st)
	}
}

func TestNilCacheDelegates(t *testing.T) {
	s, cs := cacheTestSchedule(t)
	var c *Cache
	m, err := c.Evaluate(s, cs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.LatencyNS <= 0 || math.IsInf(m.LatencyNS, 1) {
		t.Fatalf("latency = %g", m.LatencyNS)
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats must be zero: %+v", st)
	}
}
