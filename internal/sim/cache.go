package sim

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/obs"
)

// EvalCache is the pluggable evaluation-cache tier: anything that can
// memoize (key -> evaluation outcome) pairs. The in-process Cache is the
// default implementation; internal/cluster adds a worker-local L1 in front
// of a coordinator-hosted remote L2, and the interface leaves room for
// persistent on-disk tiers. dse, engine, service and soma all consume this
// interface rather than the concrete Cache.
//
// Semantics every implementation must honor:
//
//   - Get returns a private copy the caller may mutate freely.
//   - Put may drop entries (bounded tiers, best-effort remote tiers); a
//     cache is an accelerator, never a source of truth.
//   - Evaluations are deterministic per key, so two racing Puts for one key
//     always store equal values - implementations may keep either.
//   - All methods are safe for concurrent use.
type EvalCache interface {
	// Get returns the memoized evaluation for key: the metrics (nil when
	// the cached evaluation failed), the cached failure (nil on success),
	// and whether the key was present at all.
	Get(key string) (*Metrics, error, bool)
	// Put stores one evaluation outcome under key.
	Put(key string, m *Metrics, err error)
	// Stats snapshots the tier's counters.
	Stats() CacheStats
}

// MetricsExporter is an optional EvalCache extension: tiers that can expose
// their counters as pull gauges implement it, and ExportCacheMetrics wires
// them to a registry. The concrete Cache and the cluster tiered cache both
// implement it.
type MetricsExporter interface {
	ExportMetrics(reg *obs.Registry)
}

// ExportCacheMetrics registers c's counters on reg when the tier supports it.
// Safe on a nil cache or registry.
func ExportCacheMetrics(c EvalCache, reg *obs.Registry) {
	if e, ok := c.(MetricsExporter); ok {
		e.ExportMetrics(reg)
	}
}

// Memoize returns the cached evaluation for key from any EvalCache tier, or
// runs eval and stores its result. A nil cache runs eval uncached. The
// concrete *Cache keeps its single-lock fast path (which also covers typed
// nil *Cache values hiding inside the interface).
func Memoize(c EvalCache, key string, eval func() (*Metrics, error)) (*Metrics, error) {
	if cc, ok := c.(*Cache); ok {
		return cc.Memoize(key, eval)
	}
	if c == nil {
		return eval()
	}
	if m, err, ok := c.Get(key); ok {
		return m, err
	}
	m, err := eval()
	c.Put(key, m, err)
	return m, err
}

// CachedEvaluate is a memoizing Evaluate over any EvalCache tier. Traced
// evaluations bypass the cache: their slices are large and the
// execution-graph renderer only ever runs once per figure.
func CachedEvaluate(c EvalCache, s *core.Schedule, cs *coresched.Scheduler, opt Options) (*Metrics, error) {
	if c == nil || opt.Trace {
		return Evaluate(s, cs, opt)
	}
	return Memoize(c, Key(opt.CacheScope+s.CanonicalKey(), opt.BufferBudget), func() (*Metrics, error) {
		return Evaluate(s, cs, opt)
	})
}

// Cache memoizes schedule evaluations. The annealing stages revisit states -
// rejected moves get re-proposed, portfolio chains share the initial
// solution, and every stage re-evaluates its winner once more at the end -
// so keying the evaluator by the schedule's canonical encoding (plus the
// buffer budget, which decides feasibility) turns those repeats into map
// lookups. A Cache is safe for concurrent use by the portfolio workers.
//
// Eviction is generational, which makes the cache safe to embed in a
// long-running daemon: entries live in two maps, cur and old, each holding
// at most cap/2 entries. Inserts go to cur; when cur fills, old is dropped
// and cur becomes the new old (one "flush" of the oldest generation). A hit
// in old promotes the entry back into cur. Total memory is therefore
// bounded by cap entries while the annealer's short revisit distance keeps
// hitting the surviving generation - unlike the previous wholesale flush,
// which emptied the cache at exactly the moment it was hottest.
type Cache struct {
	mu       sync.Mutex
	cur, old map[string]cacheEntry
	cap      int

	// Counters are atomics, not mu-guarded fields: Stats is polled by
	// observers (somad /v1/stats, progress reporting) while portfolio
	// workers hammer Memoize, and counting outside the critical section
	// keeps the stats exact even on the paths that bypass the maps.
	hits, misses, flushes atomic.Int64
}

type cacheEntry struct {
	m   Metrics
	err error
}

// DefaultCacheEntries bounds the cache before it flushes (an entry is a
// Metrics value plus its key, i.e. a few hundred bytes).
const DefaultCacheEntries = 1 << 17

// NewCache creates a cache holding at most capacity entries (<= 0 selects
// DefaultCacheEntries); entries beyond that evict the oldest generation.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{cur: make(map[string]cacheEntry), cap: capacity}
}

// gen is the per-generation entry bound (>= 1 so even cap 1 makes progress).
func (c *Cache) gen() int {
	g := c.cap / 2
	if g < 1 {
		g = 1
	}
	return g
}

// insert adds an entry to the current generation, rotating generations when
// it is full. Callers hold c.mu.
func (c *Cache) insert(key string, e cacheEntry) {
	if _, ok := c.cur[key]; !ok && len(c.cur) >= c.gen() {
		c.old = c.cur
		c.cur = make(map[string]cacheEntry, c.gen())
		c.flushes.Add(1)
	}
	c.cur[key] = e
}

// lookup finds an entry in either generation, promoting old hits so the
// working set survives rotation. Callers hold c.mu.
func (c *Cache) lookup(key string) (cacheEntry, bool) {
	if e, ok := c.cur[key]; ok {
		return e, true
	}
	if e, ok := c.old[key]; ok {
		delete(c.old, key)
		c.insert(key, e)
		return e, true
	}
	return cacheEntry{}, false
}

// Get implements EvalCache: the cached evaluation for key, counted as a hit
// or miss. The returned Metrics is a private copy. Safe on a nil cache
// (always a miss, counted nowhere).
func (c *Cache) Get(key string) (*Metrics, error, bool) {
	if c == nil {
		return nil, nil, false
	}
	c.mu.Lock()
	e, ok := c.lookup(key)
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, nil, false
	}
	c.hits.Add(1)
	m := e.m
	return &m, e.err, true
}

// Put implements EvalCache. Like Memoize's insert path it keeps the first
// entry when two workers race on one key - results are deterministic, so
// either copy is right, and re-inserting must not count toward generation
// fill or trigger a spurious flush. Safe on a nil cache (no-op).
func (c *Cache) Put(key string, m *Metrics, err error) {
	if c == nil {
		return
	}
	e := cacheEntry{err: err}
	if m != nil {
		e.m = *m
	}
	c.mu.Lock()
	if _, ok := c.lookup(key); !ok {
		c.insert(key, e)
	}
	c.mu.Unlock()
}

// Evaluate is a memoizing sim.Evaluate. Traced evaluations bypass the cache:
// their slices are large and the execution-graph renderer only ever runs
// once per figure.
func (c *Cache) Evaluate(s *core.Schedule, cs *coresched.Scheduler, opt Options) (*Metrics, error) {
	if c == nil || opt.Trace {
		return Evaluate(s, cs, opt)
	}
	return c.Memoize(Key(opt.CacheScope+s.CanonicalKey(), opt.BufferBudget), func() (*Metrics, error) {
		return Evaluate(s, cs, opt)
	})
}

// Key combines a canonical schedule (or encoding) key with the buffer budget
// it is evaluated under. Callers that can compute their key more cheaply
// than building the schedule use it with Memoize directly - stage 1 keys on
// the encoding and skips the parse entirely on a hit.
func Key(canonical string, budget int64) string {
	return string(binary.AppendVarint([]byte(canonical), budget))
}

// Memoize returns the cached evaluation for key, or runs eval and stores its
// result. The returned Metrics points to a private copy, so callers may not
// corrupt the cache by mutating it.
func (c *Cache) Memoize(key string, eval func() (*Metrics, error)) (*Metrics, error) {
	if c == nil {
		return eval()
	}
	c.mu.Lock()
	if e, ok := c.lookup(key); ok {
		c.mu.Unlock()
		c.hits.Add(1)
		m := e.m
		return &m, e.err
	}
	c.mu.Unlock()
	c.misses.Add(1)

	m, err := eval()
	e := cacheEntry{err: err}
	if m != nil {
		e.m = *m
	}
	c.mu.Lock()
	// Concurrent workers can miss the same key together (each then runs
	// its own eval - results are deterministic, so any copy is the right
	// one). Keep the first insert: re-inserting the same key must not
	// count toward generation fill or trigger a spurious flush.
	if _, ok := c.lookup(key); !ok {
		c.insert(key, e)
	}
	c.mu.Unlock()
	return m, err
}

// CacheStats is a point-in-time counter snapshot. report.HitRate formats the
// counters as a rate for run reports; somad serves them raw on /v1/stats.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Entries counts both live generations; Flushes counts evictions of
	// the oldest generation.
	Entries int   `json:"entries"`
	Flushes int64 `json:"flushes"`
	// Rate is HitRate() precomputed at snapshot time, so JSON consumers
	// (the somad dashboard, /v1/stats scripts) never re-derive it.
	Rate float64 `json:"hit_rate"`
}

// HitRate returns Hits / (Hits + Misses), or 0 for an unused cache - the one
// shared definition report, service and somabench format from.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters. Safe on a nil cache.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	entries := len(c.cur) + len(c.old)
	c.mu.Unlock()
	st := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(),
		Entries: entries, Flushes: c.flushes.Load()}
	st.Rate = st.HitRate()
	return st
}

// ExportMetrics registers pull gauges on reg exposing this cache's counters
// as the sim_eval_cache_* family. Gauges read the cache's own atomics at
// exposition time, so exporting costs nothing on the evaluation path.
// Re-exporting (e.g. after swapping caches) re-points the gauges at the new
// cache. Safe on a nil cache or nil registry.
func (c *Cache) ExportMetrics(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.GaugeFunc("sim_eval_cache_hits_total",
		"Evaluation-cache hits.", func() float64 { return float64(c.hits.Load()) })
	reg.GaugeFunc("sim_eval_cache_misses_total",
		"Evaluation-cache misses.", func() float64 { return float64(c.misses.Load()) })
	reg.GaugeFunc("sim_eval_cache_flushes_total",
		"Evaluation-cache generation evictions.", func() float64 { return float64(c.flushes.Load()) })
	reg.GaugeFunc("sim_eval_cache_entries",
		"Live evaluation-cache entries across both generations.", func() float64 {
			c.mu.Lock()
			n := len(c.cur) + len(c.old)
			c.mu.Unlock()
			return float64(n)
		})
}
