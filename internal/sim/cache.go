package sim

import (
	"encoding/binary"
	"sync"

	"soma/internal/core"
	"soma/internal/coresched"
)

// Cache memoizes schedule evaluations. The annealing stages revisit states -
// rejected moves get re-proposed, portfolio chains share the initial
// solution, and every stage re-evaluates its winner once more at the end -
// so keying the evaluator by the schedule's canonical encoding (plus the
// buffer budget, which decides feasibility) turns those repeats into map
// lookups. A Cache is safe for concurrent use by the portfolio workers.
type Cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	cap     int

	hits, misses, flushes int64
}

type cacheEntry struct {
	m   Metrics
	err error
}

// DefaultCacheEntries bounds the cache before it flushes (an entry is a
// Metrics value plus its key, i.e. a few hundred bytes).
const DefaultCacheEntries = 1 << 17

// NewCache creates a cache holding at most capacity entries (<= 0 selects
// DefaultCacheEntries). When full, the cache is flushed wholesale: the
// annealer's revisit distance is short, so an epoch flush loses little.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{entries: make(map[string]cacheEntry), cap: capacity}
}

// Evaluate is a memoizing sim.Evaluate. Traced evaluations bypass the cache:
// their slices are large and the execution-graph renderer only ever runs
// once per figure.
func (c *Cache) Evaluate(s *core.Schedule, cs *coresched.Scheduler, opt Options) (*Metrics, error) {
	if c == nil || opt.Trace {
		return Evaluate(s, cs, opt)
	}
	return c.Memoize(Key(s.CanonicalKey(), opt.BufferBudget), func() (*Metrics, error) {
		return Evaluate(s, cs, opt)
	})
}

// Key combines a canonical schedule (or encoding) key with the buffer budget
// it is evaluated under. Callers that can compute their key more cheaply
// than building the schedule use it with Memoize directly - stage 1 keys on
// the encoding and skips the parse entirely on a hit.
func Key(canonical string, budget int64) string {
	return string(binary.AppendVarint([]byte(canonical), budget))
}

// Memoize returns the cached evaluation for key, or runs eval and stores its
// result. The returned Metrics points to a private copy, so callers may not
// corrupt the cache by mutating it.
func (c *Cache) Memoize(key string, eval func() (*Metrics, error)) (*Metrics, error) {
	if c == nil {
		return eval()
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		m := e.m
		return &m, e.err
	}
	c.misses++
	c.mu.Unlock()

	m, err := eval()
	e := cacheEntry{err: err}
	if m != nil {
		e.m = *m
	}
	c.mu.Lock()
	if len(c.entries) >= c.cap {
		c.entries = make(map[string]cacheEntry)
		c.flushes++
	}
	c.entries[key] = e
	c.mu.Unlock()
	return m, err
}

// CacheStats is a point-in-time counter snapshot. report.HitRate formats the
// counters as a rate for run reports.
type CacheStats struct {
	Hits, Misses int64
	Entries      int
	Flushes      int64
}

// Stats snapshots the cache counters. Safe on a nil cache.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries), Flushes: c.flushes}
}
