package sim

import (
	"errors"
	"fmt"
	"math"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/hw"
)

// ErrDeadlock is returned when neither resource can make progress: the
// encoding's DLSA is semantically invalid (e.g. a reload ordered before its
// producing store).
var ErrDeadlock = errors.New("sim: schedule deadlocks")

// Options tunes one evaluation.
type Options struct {
	// BufferBudget overrides the hardware GBUF capacity for feasibility
	// (the Buffer Allocator passes reduced stage budgets). Zero means the
	// full configured capacity.
	BufferBudget int64
	// Trace retains per-tile and per-tensor start/end times for the
	// execution-graph renderer.
	Trace bool
	// TileCosts reuses precomputed per-tile costs. The DLSA exploration
	// stage never changes tiles, so it evaluates thousands of candidate
	// schedules against one PrecomputeTileCosts result.
	TileCosts *TileCosts
	// CacheScope namespaces Cache keys. Canonical schedule keys only
	// identify a schedule within one (graph, hardware) context, so
	// callers sharing one Cache across workloads or platforms (the somad
	// daemon) must set a scope that identifies that context; Evaluate
	// itself ignores the field.
	CacheScope string
	// Telemetry, when non-nil, lets an Incremental evaluator count its
	// proposals/resumes/fallbacks/rollbacks into a shared obs registry.
	// Observation only - evaluation results are unaffected. Evaluate
	// ignores the field.
	Telemetry *IncTelemetry
}

// TileCosts caches the compute-side evaluation of a schedule's tiles.
type TileCosts struct {
	Dur         []float64
	CoreEnergy  float64
	ComputeBusy float64
}

// PrecomputeTileCosts evaluates every tile of the schedule once.
func PrecomputeTileCosts(s *core.Schedule, cs *coresched.Scheduler) *TileCosts {
	tc := &TileCosts{Dur: make([]float64, s.NumTiles())}
	for i := range tc.Dur {
		r := cs.Evaluate(s.TileRequest(i))
		tc.Dur[i] = r.TimeNS
		tc.CoreEnergy += r.EnergyPJ
		tc.ComputeBusy += r.TimeNS
	}
	return tc
}

// Metrics is the evaluation result.
type Metrics struct {
	// LatencyNS is the batch completion time (both resources drained).
	LatencyNS float64
	// EnergyPJ = CoreEnergyPJ + DRAMEnergyPJ.
	EnergyPJ     float64
	CoreEnergyPJ float64
	DRAMEnergyPJ float64

	// ComputeBusyNS / DRAMBusyNS are the summed occupancy times.
	ComputeBusyNS float64
	DRAMBusyNS    float64

	TotalDRAMBytes int64

	// PeakBufferBytes / AvgBufferBytes summarize GBUF occupancy
	// (average weighted by tile compute time, per the paper's formula).
	PeakBufferBytes int64
	AvgBufferBytes  float64
	// BufferOK reports peak <= budget.
	BufferOK bool
	Budget   int64

	// Utilization is ops / (peak * latency) - the paper's performance
	// proxy. TheoreticalMaxUtil is the no-stall bound.
	Utilization        float64
	TheoreticalMaxUtil float64
	// DRAMUtilization / ComputeUtilization are busy/latency fractions.
	DRAMUtilization    float64
	ComputeUtilization float64

	// Trace data (only when Options.Trace).
	TileStart, TileEnd     []float64
	TensorStart, TensorEnd []float64
}

// Cost folds the metrics into the paper's optimization objective
// Energy^n x Delay^m.
func (m *Metrics) Cost(n, mm float64) float64 {
	return math.Pow(m.EnergyPJ, n) * math.Pow(m.LatencyNS, mm)
}

// Evaluate replays the schedule on the scheduler's hardware configuration.
func Evaluate(s *core.Schedule, cs *coresched.Scheduler, opt Options) (*Metrics, error) {
	cfg := cs.Config()
	n := s.NumTiles()
	mTensors := len(s.Tensors)
	if len(s.Order) != mTensors {
		return nil, fmt.Errorf("sim: order length %d != tensors %d", len(s.Order), mTensors)
	}

	// Per-tile durations and energies through the core-array scheduler
	// (or the caller's precomputed cache).
	tc := opt.TileCosts
	if tc == nil {
		tc = PrecomputeTileCosts(s, cs)
	} else if len(tc.Dur) != n {
		return nil, fmt.Errorf("sim: tile-cost cache covers %d tiles, schedule has %d", len(tc.Dur), n)
	}
	tileDur := tc.Dur
	coreEnergy, computeBusy := tc.CoreEnergy, tc.ComputeBusy

	// Which tensors gate which tile.
	blockers := make([][]int, n+1)
	for i := range s.Tensors {
		t := &s.Tensors[i]
		if t.Kind.IsLoad() {
			blockers[t.FirstUse] = append(blockers[t.FirstUse], t.ID)
		} else if t.End < n {
			blockers[t.End] = append(blockers[t.End], t.ID)
		}
	}

	tileEnd := make([]float64, n)
	tensorEnd := make([]float64, mTensors)
	committed := make([]bool, mTensors)
	var tileStart, tensorStart []float64
	if opt.Trace {
		tileStart = make([]float64, n)
		tensorStart = make([]float64, mTensors)
	}

	var computeFree, dramFree, dramBusy float64
	var dramBytes int64
	i, j := 0, 0
	for i < n || j < mTensors {
		advanced := false
		// Drain every currently-ready DRAM tensor.
		for j < mTensors {
			t := &s.Tensors[s.Order[j]]
			var depTime float64
			if t.Kind.IsLoad() {
				if i < t.Start {
					break // needs more compute progress
				}
				if t.Start > 0 {
					depTime = tileEnd[t.Start-1]
				}
				stalled := false
				for _, st := range t.AfterStores {
					if !committed[st] {
						stalled = true
						break
					}
					if tensorEnd[st] > depTime {
						depTime = tensorEnd[st]
					}
				}
				if stalled {
					break
				}
			} else {
				if i <= t.Producer {
					break // producing tile not finished
				}
				depTime = tileEnd[t.Producer]
			}
			start := maxf(dramFree, depTime)
			dur := float64(t.Bytes) / cfg.DRAMBandwidth
			tensorEnd[t.ID] = start + dur
			committed[t.ID] = true
			if opt.Trace {
				tensorStart[t.ID] = start
			}
			dramFree = start + dur
			dramBusy += dur
			dramBytes += t.Bytes
			j++
			advanced = true
		}
		// Commit the next tile if its gating tensors are done.
		if i < n {
			ready := true
			var depTime float64
			for _, tid := range blockers[i] {
				if !committed[tid] {
					ready = false
					break
				}
				if tensorEnd[tid] > depTime {
					depTime = tensorEnd[tid]
				}
			}
			if ready {
				start := maxf(computeFree, depTime)
				tileEnd[i] = start + tileDur[i]
				if opt.Trace {
					tileStart[i] = start
				}
				computeFree = tileEnd[i]
				i++
				advanced = true
			}
		}
		if !advanced {
			return &Metrics{}, fmt.Errorf("%w: stuck at tile %d/%d, tensor %d/%d",
				ErrDeadlock, i, n, j, mTensors)
		}
	}

	m := finishMetrics(cfg, s, opt.BufferBudget, s.BufferUsage(), tileDur,
		coreEnergy, computeBusy, computeFree, dramFree, dramBusy, dramBytes)
	if opt.Trace {
		m.TileStart, m.TileEnd = tileStart, tileEnd
		m.TensorStart, m.TensorEnd = tensorStart, tensorEnd
	}
	return m, nil
}

// finishMetrics folds a completed merge (final resource frontiers, DRAM
// occupancy) and the schedule's buffer-usage profile into the full metric
// set. Both Evaluate and the Incremental evaluator feed it identical inputs
// through identical float operations in the same order, so their Metrics are
// bit-for-bit equal - the property the differential tests pin down.
func finishMetrics(cfg hw.Config, s *core.Schedule, budget int64, usage []int64,
	tileDur []float64, coreEnergy, computeBusy, computeFree, dramFree, dramBusy float64,
	dramBytes int64) *Metrics {

	latency := maxf(computeFree, dramFree)
	if budget == 0 {
		budget = cfg.GBufBytes
	}
	var peak int64
	var weighted float64
	for seq, u := range usage {
		if u > peak {
			peak = u
		}
		weighted += float64(u) * tileDur[seq]
	}
	avg := 0.0
	if computeBusy > 0 {
		avg = weighted / computeBusy
	}

	en := cfg.Energy
	dramEnergy := float64(dramBytes) * (en.DRAMPerByte + en.GBufPerByte)
	total := coreEnergy + dramEnergy + en.StaticPerNS*latency

	ops := float64(s.G.TotalOps())
	peakRate := cfg.PeakOpsPerNS()
	theoLat := maxf(computeBusy, dramBusy)

	return &Metrics{
		LatencyNS:          latency,
		EnergyPJ:           total,
		CoreEnergyPJ:       coreEnergy,
		DRAMEnergyPJ:       dramEnergy,
		ComputeBusyNS:      computeBusy,
		DRAMBusyNS:         dramBusy,
		TotalDRAMBytes:     dramBytes,
		PeakBufferBytes:    peak,
		AvgBufferBytes:     avg,
		BufferOK:           peak <= budget,
		Budget:             budget,
		Utilization:        ops / (peakRate * latency),
		TheoreticalMaxUtil: ops / (peakRate * theoLat),
		DRAMUtilization:    dramBusy / latency,
		ComputeUtilization: computeBusy / latency,
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
