package service

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"soma/internal/cluster"
	"soma/internal/dse"
	"soma/internal/engine"
	"soma/internal/exp"
	"soma/internal/hw"
	"soma/internal/obs"
	"soma/internal/report"
	"soma/internal/sim"
	"soma/internal/workload"
)

// Config sizes the service. Zero values select the defaults.
type Config struct {
	// Workers is the number of concurrent search jobs (default 1: SoMa
	// itself parallelizes across portfolio chains, so one job per core
	// group is usually right).
	Workers int
	// QueueDepth bounds the FIFO of jobs waiting for a worker; submits
	// beyond it are rejected with 503 (default 64).
	QueueDepth int
	// CacheEntries bounds the shared evaluation cache (default
	// sim.DefaultCacheEntries).
	CacheEntries int
	// MaxJobs bounds the job table; beyond it the oldest terminal jobs
	// and their results are evicted (default DefaultMaxJobs).
	MaxJobs int
	// ClusterWorker mounts the cluster lease-execution endpoints
	// (/v1/cluster/ping, /v1/cluster/lease): this somad serves leases for
	// a remote coordinator (somad -worker).
	ClusterWorker bool
	// ClusterWorkers lists worker addresses; when non-empty, sweep jobs
	// are sharded across them through internal/cluster instead of running
	// in-process (somad -workers).
	ClusterWorkers []string
	// Advertise is this coordinator's externally reachable base URL; when
	// set alongside ClusterWorkers, workers use it as their remote
	// evaluation-cache L2 (backed by the shared in-process cache).
	Advertise string
}

func (c Config) normalized() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	return c
}

// Server is the scheduling service: a job store, a bounded FIFO queue
// drained by a fixed worker pool, and one process-wide evaluation cache
// shared by every job, so repeated (model, hw, budget) evaluations across
// requests are map lookups instead of simulator runs.
type Server struct {
	cfg   Config
	store *Store
	cache *sim.Cache

	// reg is the process-wide metrics registry behind GET /metrics: every
	// job's search telemetry (sa/sim/engine/dse families) lands here, plus
	// the service's own job counters. Jobs get per-job tracers but share
	// this one registry - Prometheus scraping wants process totals.
	reg     *obs.Registry
	started time.Time

	queue chan string

	// clusterWorker serves lease execution when cfg.ClusterWorker; the
	// cache server exposes the shared evaluation cache as the cluster L2
	// when this somad coordinates sweeps for remote workers.
	clusterWorker *cluster.Worker
	cacheServer   *cluster.CacheServer

	// base is canceled by Stop/Shutdown, stopping workers and running
	// jobs; draining additionally rejects new submits with 503.
	base     context.Context
	cancel   context.CancelFunc
	draining atomic.Bool
	wg       sync.WaitGroup

	mux *http.ServeMux
}

// New builds the service and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.normalized()
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		store:   NewStore(cfg.MaxJobs),
		cache:   sim.NewCache(cfg.CacheEntries),
		reg:     obs.NewRegistry(),
		started: time.Now(),
		queue:   make(chan string, cfg.QueueDepth),
		base:    base,
		cancel:  cancel,
	}
	// Export the shared cache's counters up front so /metrics serves the
	// sim_eval_cache_* family before the first job arrives.
	s.cache.ExportMetrics(s.reg)
	if cfg.ClusterWorker {
		s.clusterWorker = cluster.NewWorker(&obs.Obs{Reg: s.reg})
	}
	if len(cfg.ClusterWorkers) > 0 {
		s.cacheServer = cluster.NewCacheServer(s.cache)
		s.cacheServer.ExportMetrics(s.reg)
	}
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP API (see docs/api.md for the endpoint contract).
func (s *Server) Handler() http.Handler { return s.mux }

// Stop begins draining without waiting: new submits are rejected with 503
// and every queued or running job is canceled, which also unblocks ?wait=1
// handlers so an enclosing http.Server.Shutdown can complete. Call it
// before shutting the HTTP listener down, then Shutdown to wait for the
// worker pool.
func (s *Server) Stop() {
	s.draining.Store(true)
	s.cancel()
	s.store.CancelAll()
}

// Shutdown stops the service (see Stop) and waits for the worker pool to
// drain, or for ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Stop()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker drains the FIFO queue. Each popped job runs under its own cancel
// context derived from the server's base context, so both DELETE and
// Shutdown stop the annealer mid-chain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.base.Done():
			return
		case id := <-s.queue:
			s.runJob(id)
		}
	}
}

// runJob executes one job end to end and records its terminal state. The
// engine's progress stream is buffered on the job's event log, which the
// GET /v1/jobs/{id}/events SSE endpoint serves live.
func (s *Server) runJob(id string) {
	ctx, cancel := context.WithCancel(s.base)
	defer cancel()
	if !s.store.start(id, cancel) {
		return // canceled while queued
	}
	in, ok := s.store.inputs(id)
	if !ok {
		return
	}
	hooks := &engine.Hooks{Event: func(e engine.Event) { s.store.appendEvent(id, e) }}
	o := s.jobObs(id)
	if in.sweep != nil {
		s.runSweepJob(ctx, id, *in.sweep, hooks, o)
		return
	}
	in.req.Journal, _, _ = s.store.Convergence(id)
	res, err := s.execute(ctx, in, hooks, o)
	s.countJob(in.req.Backend, err)
	switch {
	case err == nil:
		// The job table serves JSON only: drop the Raw artifact sections
		// (graphs, schedules, encodings) so retained results cost payload
		// scalars, not whole schedule object trees. Telemetry goes with
		// them: it is wall-clock measurement, and dropping it keeps a
		// fixed-seed job's stored payload byte-identical to `soma -json`
		// (the wall times still reach /metrics and the job's trace).
		// Convergence goes the same way: the trajectory has its own
		// endpoint (GET /v1/jobs/{id}/convergence), and its samples carry
		// cache-warmth-dependent incremental counters that would break the
		// stored payload's byte-identity guarantee.
		res.Raw, res.Telemetry, res.Convergence = nil, nil, nil
		if res.Scenario != nil {
			for i := range res.Scenario.Components {
				if iso := res.Scenario.Components[i].Isolated; iso != nil {
					iso.Raw, iso.Telemetry = nil, nil
				}
			}
		}
		s.store.finish(id, StateDone, "", func(j *Job) { j.Result = res })
	case errors.Is(err, context.Canceled) || ctx.Err() != nil:
		s.store.finish(id, StateCanceled, "canceled", nil)
	default:
		s.store.finish(id, StateFailed, err.Error(), nil)
	}
}

// runSweepJob executes one sweep job through the dse grid runner with the
// process-wide cache, streaming per-point progress onto the job's event log
// (served live by the sweeps SSE endpoint). Retained outcomes are scrubbed:
// rows lose their in-memory Raw artifacts and run-dependent cache counters,
// which makes a fixed-seed sweep's rows byte-identical to the journal
// `soma -sweep` writes for the same spec.
func (s *Server) runSweepJob(ctx context.Context, id string, sw dse.Sweep, hooks *engine.Hooks, o *obs.Obs) {
	var out *dse.Outcome
	var err error
	if len(s.cfg.ClusterWorkers) > 0 {
		// Sharded execution; degrades to the local path by itself when no
		// worker answers the initial probe.
		var cacheURL string
		if s.cfg.Advertise != "" {
			cacheURL = cluster.NormalizeWorkerURL(s.cfg.Advertise)
		}
		out, err = cluster.Run(ctx, sw, cluster.Options{
			Workers: s.cfg.ClusterWorkers, Cache: s.cache, CacheURL: cacheURL,
			Hooks: hooks, Obs: o, Logf: log.Printf})
	} else {
		out, err = dse.Run(ctx, sw, dse.Options{Cache: s.cache, Hooks: hooks, Obs: o})
	}
	s.countJob("sweep", err)
	switch {
	case err == nil:
		out.Scrub()
		s.store.finish(id, StateDone, "", func(j *Job) { j.SweepOut = out })
	case errors.Is(err, context.Canceled) || ctx.Err() != nil:
		s.store.finish(id, StateCanceled, "canceled", nil)
	default:
		s.store.finish(id, StateFailed, err.Error(), nil)
	}
}

// execute performs the search through the engine - the same flow as
// cmd/soma, so both paths emit byte-identical payloads for a fixed seed.
// The process-wide evaluation cache is shared across every request; the
// engine scopes its keys per (workload, batch, hw) context, so
// heterogeneous jobs never collide.
func (s *Server) execute(ctx context.Context, in runInputs, h *engine.Hooks, o *obs.Obs) (*report.Result, error) {
	req := in.req
	req.Cache = s.cache
	req.Obs = o
	return engine.Run(ctx, req, h)
}

// jobObs bundles the process-wide registry with the job's own tracer, so
// metrics aggregate across jobs while traces stay per job.
func (s *Server) jobObs(id string) *obs.Obs {
	tr, ok := s.store.Trace(id)
	if !ok {
		return nil
	}
	return &obs.Obs{Reg: s.reg, Tracer: tr}
}

// countJob records one finished job on the somad_jobs_total counter, labeled
// by what ran (a backend name, or "sweep") and how it ended.
func (s *Server) countJob(kind string, err error) {
	outcome := "ok"
	switch {
	case errors.Is(err, context.Canceled):
		outcome = "canceled"
	case err != nil:
		outcome = "error"
	}
	s.reg.Counter("somad_jobs_total", "Jobs completed by the worker pool.",
		"kind", kind, "outcome", outcome).Inc()
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/hw", s.handleHW)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/backends", s.handleBackends)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/sweeps/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/convergence", s.handleConvergence)
	// Ops endpoints (docs/observability.md): Prometheus exposition plus the
	// stdlib profiling and expvar handlers. They live on the API mux, so a
	// single listener serves both planes; deployments that want them off the
	// public port can front the daemon with a path-filtering proxy.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/dash", s.handleDash)
	if s.clusterWorker != nil {
		s.clusterWorker.Mount(mux)
	}
	if s.cacheServer != nil {
		s.cacheServer.Mount(mux)
	}
	s.mux = mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Stats is the GET /v1/stats payload: queue occupancy, per-state job
// counts, the shared evaluation-cache counters, process uptime, per-backend
// solve tallies and the full metrics-registry snapshot.
type Stats struct {
	Workers       int            `json:"workers"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCapacity int            `json:"queue_capacity"`
	Jobs          map[State]int  `json:"jobs"`
	Cache         sim.CacheStats `json:"cache"`
	// UptimeSeconds is time since the service was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Solves counts completed jobs per backend name ("sweep" for grid
	// jobs), regardless of outcome.
	Solves map[string]int64 `json:"solves,omitempty"`
	// Metrics is the registry snapshot behind GET /metrics, as JSON for
	// clients that want counters without parsing Prometheus text.
	Metrics []obs.MetricSnapshot `json:"metrics,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	// One Counts() call serves both the per-state map and the queue depth:
	// both derive from a single pass under the store lock, so the two can
	// never contradict each other (a job counted done cannot also still be
	// pending in queue_depth, which separate len(queue) and Counts() reads
	// allowed).
	counts := s.store.Counts()
	writeJSON(w, http.StatusOK, Stats{
		Workers:       s.cfg.Workers,
		QueueDepth:    counts[StateQueued],
		QueueCapacity: cap(s.queue),
		Jobs:          counts,
		Cache:         s.cache.Stats(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Solves:        s.solveCounts(),
		Metrics:       s.reg.Snapshot(),
	})
}

// solveCounts reads the per-backend tallies off somad_jobs_total: one series
// per (kind, outcome), summed over outcomes here.
func (s *Server) solveCounts() map[string]int64 {
	out := make(map[string]int64)
	for _, m := range s.reg.Snapshot() {
		if m.Name != "somad_jobs_total" {
			continue
		}
		for _, se := range m.Series {
			if kind, ok := labelValue(se.Labels, "kind"); ok {
				out[kind] += int64(se.Value)
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// labelValue extracts one label's value from a rendered `{k="v",...}`
// signature.
func labelValue(sig, key string) (string, bool) {
	for _, part := range strings.Split(strings.Trim(sig, "{}"), ",") {
		if k, v, ok := strings.Cut(part, "="); ok && k == key {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// handleMetrics is GET /metrics: the registry in Prometheus text exposition.
// HEAD (matched by the same GET route pattern) serves the headers only, so
// scrape-endpoint probes cost no exposition rendering.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if r.Method == http.MethodHead {
		return
	}
	_ = s.reg.WritePrometheus(w)
}

// handleConvergence is GET /v1/jobs/{id}/convergence: the job's annealing
// trajectory and derived search diagnostics (obs.ConvergenceReport). Running
// jobs serve the live partial trajectory - the dashboard polls this for its
// sparklines - and finished jobs the sealed one. Sweep jobs 404: their rows
// carry per-point diagnostics summaries in the sweep result instead.
func (s *Server) handleConvergence(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	jnl, backend, ok := s.store.Convergence(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	if jnl == nil {
		writeError(w, http.StatusNotFound, "no convergence journal for "+id)
		return
	}
	writeJSON(w, http.StatusOK, obs.BuildConvergence(jnl, engine.ConvergenceStages(backend)...))
}

// handleTrace serves a job's span trace as Chrome trace-event JSON
// (load it at ui.perfetto.dev). Running jobs serve the partial trace
// collected so far; queued jobs serve an empty one.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.store.Trace(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = tr.WriteJSON(w)
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"models": exp.Registry().Models})
}

// handleScenarios serves the built-in scenario library: every entry is a
// complete declarative spec a client can resubmit verbatim as scenario_spec.
func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]workload.Scenario{"scenarios": workload.Builtins()})
}

// handleBackends serves the engine's solver registry: the framework values
// POST /v1/jobs accepts.
func (s *Server) handleBackends(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]engine.BackendInfo{"backends": engine.List()})
}

// handleEvents streams a job's engine progress events as Server-Sent Events:
// one `event:`/`data:` frame per engine.Event (data is the event's JSON),
// with the event's Seq as the SSE id. The stream replays buffered events
// first, then follows the running job live, and closes with a terminal
// `event: end` frame carrying the job's final state - on completion,
// failure, or DELETE-driven cancellation alike.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	log, ok := s.store.Events(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	next := 0
	for {
		evs, closed, wait := log.since(next)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data)
		}
		next += len(evs)
		if len(evs) > 0 {
			fl.Flush()
		}
		if closed {
			// The job can be evicted between its terminal transition and
			// this read; report the uncertainty rather than an empty state.
			state := State("unknown")
			if v, ok := s.store.Get(id); ok {
				state = v.State
			}
			fmt.Fprintf(w, "event: end\ndata: {\"state\":%q}\n\n", state)
			fl.Flush()
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		case <-s.base.Done():
			return
		}
	}
}

// HWInfo is one /v1/hw registry entry.
type HWInfo struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Cores       int     `json:"cores"`
	PeakTOPS    float64 `json:"peak_tops"`
	GBufBytes   int64   `json:"gbuf_bytes"`
	// DRAMBandwidth is bytes per nanosecond (== GB/s).
	DRAMBandwidth float64 `json:"dram_gbps"`
}

func hwInfo(name string, cfg hw.Config) HWInfo {
	return HWInfo{Name: name, Description: cfg.String(), Cores: cfg.Cores,
		PeakTOPS: cfg.PeakTOPS(), GBufBytes: cfg.GBufBytes,
		DRAMBandwidth: cfg.DRAMBandwidth}
}

func (s *Server) handleHW(w http.ResponseWriter, _ *http.Request) {
	infos := make([]HWInfo, 0, len(exp.Platforms()))
	for _, name := range exp.Platforms() {
		cfg, err := exp.Platform(name)
		if err != nil {
			continue
		}
		infos = append(infos, hwInfo(name, cfg))
	}
	writeJSON(w, http.StatusOK, map[string][]HWInfo{"hw": infos})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	in, err := req.normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.enqueue(w, r, s.store.Add(req, in))
}

// enqueue pushes a freshly added job onto the worker queue and writes the
// submit response: 202 with the queued view, 503 when the queue is full, or
// - with ?wait=1 - the blocking terminal result. Shared by the jobs and
// sweeps submit handlers so the queue-full and wait contracts cannot drift.
func (s *Server) enqueue(w http.ResponseWriter, r *http.Request, v View) {
	select {
	case s.queue <- v.ID:
	default:
		s.store.finish(v.ID, StateFailed, "queue full", nil)
		writeError(w, http.StatusServiceUnavailable, "job queue full, retry later")
		return
	}
	if r.URL.Query().Get("wait") != "" {
		s.waitFor(w, r, v.ID)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

// MaxSweepPoints bounds the grid size POST /v1/sweeps accepts: a typoed axis
// cross product should fail fast with a 400, not occupy a worker for hours.
const MaxSweepPoints = 4096

// handleSweepSubmit is POST /v1/sweeps: the body is a dse sweep spec
// (docs/dse.md). The expanded grid runs as one queued job on the shared
// worker pool and evaluation cache; per-point progress streams on
// GET /v1/sweeps/{id}/events.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	sw, err := dse.ParseSweep(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Bound the grid before expanding it: GridSize is a cheap product, so a
	// tiny request body declaring astronomically crossed axes gets its 400
	// without the server ever materializing a point slice.
	if n := sw.GridSize(); n > MaxSweepPoints {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("sweep expands to %d points, limit %d", n, MaxSweepPoints))
		return
	}
	if err := sw.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.enqueue(w, r, s.store.Add(Request{}, runInputs{sweep: &sw}))
}

// handleSweepList is GET /v1/sweeps: every sweep job in submission order
// (plain jobs stay on /v1/jobs and vice versa).
func (s *Server) handleSweepList(w http.ResponseWriter, _ *http.Request) {
	var sweeps []View
	for _, v := range s.store.List() {
		if v.Sweep != nil {
			sweeps = append(sweeps, v)
		}
	}
	if sweeps == nil {
		sweeps = []View{}
	}
	writeJSON(w, http.StatusOK, map[string][]View{"sweeps": sweeps})
}

// waitFor blocks a ?wait=1 submit until the job reaches a terminal state.
// If the client disconnects first, the job is canceled - the requester went
// away, so the annealer stops mid-chain instead of burning a worker slot.
func (s *Server) waitFor(w http.ResponseWriter, r *http.Request, id string) {
	done, ok := s.store.Done(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	select {
	case <-done:
		v, _ := s.store.Get(id)
		writeJSON(w, http.StatusOK, v)
	case <-r.Context().Done():
		s.store.Cancel(id)
	case <-s.base.Done():
		// Server draining: cancel rather than leave the handler blocked
		// (a job submitted in the instant before Stop's sweep would
		// otherwise never reach a terminal state).
		s.store.Cancel(id)
		v, _ := s.store.Get(id)
		writeJSON(w, http.StatusServiceUnavailable, v)
	}
}

// handleList is GET /v1/jobs: every plain job in submission order (sweep
// jobs are listed on /v1/sweeps).
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	var jobs []View
	for _, v := range s.store.List() {
		if v.Sweep == nil {
			jobs = append(jobs, v)
		}
	}
	if jobs == nil {
		jobs = []View{}
	}
	writeJSON(w, http.StatusOK, map[string][]View{"jobs": jobs})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, found, conflict := s.store.Cancel(id)
	if !found {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	if conflict {
		writeJSON(w, http.StatusConflict, v)
		return
	}
	writeJSON(w, http.StatusOK, v)
}
