package service

import (
	"bufio"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"soma/internal/dse"
)

// smallSweep is a 2-point grid quick enough for round-trip tests.
func smallSweep() map[string]any {
	return map[string]any{
		"name":   "test-sweep",
		"models": []string{"mobilenetv2"},
		"gbuf_mb": []int64{2, 4},
		"search":  map[string]any{"profile": "fast", "beta1": 2, "beta2": 1},
	}
}

func TestSweepRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var v View
	if code := doJSON(t, "POST", ts.URL+"/v1/sweeps?wait=1", smallSweep(), &v); code != http.StatusOK {
		t.Fatalf("submit = %d", code)
	}
	if !strings.HasPrefix(v.ID, "sweep-") {
		t.Fatalf("sweep job id = %q", v.ID)
	}
	if v.State != StateDone {
		t.Fatalf("state = %s (%s)", v.State, v.Error)
	}
	if v.Sweep == nil || v.Sweep.Name != "test-sweep" || v.Request != nil {
		t.Fatalf("sweep view misshaped: %+v", v)
	}
	out := v.SweepResult
	if out == nil || out.Points != 2 || len(out.Rows) != 2 || out.Failed != 0 {
		t.Fatalf("sweep result = %+v", out)
	}
	for i, row := range out.Rows {
		if row.Result == nil || row.Result.Cost <= 0 {
			t.Fatalf("row %d: %+v", i, row)
		}
		// Served rows are scrubbed: no cache counters survive.
		if s := row.Result.Search; s != nil && (s.CacheHits != 0 || s.CacheMisses != 0) {
			t.Fatalf("row %d not scrubbed: %+v", i, s)
		}
	}

	// The namespaces stay separate: sweeps list under /v1/sweeps, not jobs.
	var sweeps struct{ Sweeps []View }
	if code := doJSON(t, "GET", ts.URL+"/v1/sweeps", nil, &sweeps); code != 200 || len(sweeps.Sweeps) != 1 {
		t.Fatalf("sweep list = %d %+v", code, sweeps)
	}
	var jobs struct{ Jobs []View }
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs", nil, &jobs); code != 200 || len(jobs.Jobs) != 0 {
		t.Fatalf("jobs list must not include sweeps: %+v", jobs)
	}
	var got View
	if code := doJSON(t, "GET", ts.URL+"/v1/sweeps/"+v.ID, nil, &got); code != 200 || got.SweepResult == nil {
		t.Fatalf("get sweep = %d %+v", code, got)
	}
}

func TestSweepMatchesCLIJournalRows(t *testing.T) {
	// A sweep served over HTTP must carry the same scrubbed rows the dse
	// runner (and therefore `soma -sweep`'s journal) produces in-process.
	_, ts := newTestServer(t, Config{Workers: 1})
	var v View
	if code := doJSON(t, "POST", ts.URL+"/v1/sweeps?wait=1", smallSweep(), &v); code != http.StatusOK {
		t.Fatalf("submit = %d", code)
	}
	sw, err := dse.ParseSweep([]byte(`{"name":"test-sweep","models":["mobilenetv2"],
		"gbuf_mb":[2,4],"search":{"profile":"fast","beta1":2,"beta2":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	local, err := dse.Run(context.Background(), sw, dse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	local.Scrub()
	for i := range local.Rows {
		want, got := local.Rows[i].Result, v.SweepResult.Rows[i].Result
		if want.Cost != got.Cost || want.EncodingSHA256 != got.EncodingSHA256 ||
			want.ScheduleSHA256 != got.ScheduleSHA256 {
			t.Fatalf("row %d differs over HTTP: %+v vs %+v", i, want, got)
		}
	}
	if v.SweepResult.SpecSHA256 != local.SpecSHA256 {
		t.Fatalf("spec digests differ: %s vs %s", v.SweepResult.SpecSHA256, local.SpecSHA256)
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []map[string]any{
		{},                                  // no workload
		{"models": []string{"nope"}},        // unknown model
		{"modles": []string{"resnet50"}},    // typoed axis
		{"models": []string{"resnet50"}, "batches": []int{0}},  // bad batch
		{"models": []string{"resnet50"}, "seeds": make([]int64, MaxSweepPoints+1)}, // too big
	}
	for i, c := range cases {
		var e struct{ Error string }
		if code := doJSON(t, "POST", ts.URL+"/v1/sweeps", c, &e); code != http.StatusBadRequest {
			t.Fatalf("case %d: status %d (%+v)", i, code, e)
		}
		if e.Error == "" {
			t.Fatalf("case %d: no error message", i)
		}
	}
}

func TestSweepEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var v View
	if code := doJSON(t, "POST", ts.URL+"/v1/sweeps?wait=1", smallSweep(), &v); code != http.StatusOK {
		t.Fatalf("submit = %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			kinds[strings.TrimPrefix(line, "event: ")]++
		}
		if line == "event: end" {
			break
		}
	}
	if kinds["sweep-start"] != 1 || kinds["point-done"] != 2 || kinds["sweep-done"] != 1 {
		t.Fatalf("sse kinds = %v", kinds)
	}
}

// TestSweepAdaptiveRoundTrip: a spec with an adaptive block runs through the
// successive-halving driver server-side — the served outcome carries the rung
// stats and fidelity-stamped rows, and the SSE stream replays the rung events.
func TestSweepAdaptiveRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	spec := smallSweep()
	spec["gbuf_mb"] = []int64{2, 3, 4, 6}
	spec["seeds"] = []int64{1, 2}
	spec["adaptive"] = map[string]any{}
	var v View
	if code := doJSON(t, "POST", ts.URL+"/v1/sweeps?wait=1", spec, &v); code != http.StatusOK {
		t.Fatalf("submit = %d", code)
	}
	if v.State != StateDone {
		t.Fatalf("state = %s (%s)", v.State, v.Error)
	}
	out := v.SweepResult
	if out == nil || out.Adaptive == nil {
		t.Fatalf("adaptive sweep result missing stats: %+v", out)
	}
	a := out.Adaptive
	if a.Probes != 8 || a.Promotions == 0 || a.Promotions > a.Budget ||
		a.SolvesSaved != a.Probes-a.Promotions {
		t.Fatalf("adaptive stats = %+v", a)
	}
	fulls := 0
	for i, row := range out.Rows {
		switch row.Fidelity {
		case dse.FidelityFull:
			fulls++
		case dse.FidelityProbe:
		default:
			t.Fatalf("row %d fidelity = %q", i, row.Fidelity)
		}
	}
	if fulls != a.Promotions {
		t.Fatalf("%d full rows, want %d promotions", fulls, a.Promotions)
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	kinds := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			kinds[strings.TrimPrefix(line, "event: ")]++
		}
		if line == "event: end" {
			break
		}
	}
	if kinds["rung-start"] != 2 || kinds["rung-done"] != 2 {
		t.Fatalf("sse kinds = %v, want two rungs", kinds)
	}
}

func TestSweepCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// A deliberately slow grid: paper-profile points on a deep model.
	slow := map[string]any{
		"models": []string{"resnet101"},
		"seeds":  []int64{1, 2, 3, 4},
		"search": map[string]any{"profile": "paper"},
	}
	var v View
	if code := doJSON(t, "POST", ts.URL+"/v1/sweeps", slow, &v); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var cur View
		doJSON(t, "GET", ts.URL+"/v1/sweeps/"+v.ID, nil, &cur)
		if cur.State == StateRunning {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sweeps/"+v.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel = %d", code)
	}
	for time.Now().Before(deadline) {
		var cur View
		doJSON(t, "GET", ts.URL+"/v1/sweeps/"+v.ID, nil, &cur)
		if cur.State.Terminal() {
			if cur.State != StateCanceled {
				t.Fatalf("state = %s", cur.State)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("sweep did not reach a terminal state after cancel")
}
