package service

import (
	"sync"

	"soma/internal/engine"
)

// eventLog is one job's append-only progress-event buffer. Workers append
// engine events while the job runs; any number of SSE handlers read
// concurrently, each at its own offset, blocking on the notify channel when
// caught up. close marks the stream complete (job reached a terminal
// state), which wakes every waiter for the final drain.
type eventLog struct {
	mu     sync.Mutex
	events []engine.Event
	closed bool
	// notify is closed and replaced on every append, broadcasting "new
	// events or closure" to blocked readers.
	notify chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{notify: make(chan struct{})}
}

// append records one event; appends after close are dropped (a late
// callback from a canceled solver has no readers left to serve).
func (l *eventLog) append(e engine.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.events = append(l.events, e)
	close(l.notify)
	l.notify = make(chan struct{})
}

// close completes the stream; idempotent.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.notify)
}

// since returns the events at offset from onward, whether the stream is
// complete, and a channel that is closed when either changes.
func (l *eventLog) since(from int) (evs []engine.Event, closed bool, wait <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < len(l.events) {
		evs = l.events[from:]
	}
	return evs, l.closed, l.notify
}
