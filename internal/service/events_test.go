package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"soma/internal/engine"
)

// sseFrame is one parsed Server-Sent-Events frame.
type sseFrame struct {
	event string
	data  string
}

// readSSE consumes the stream until it ends (server closes) or limit frames
// arrived, whichever comes first.
func readSSE(t *testing.T, resp *http.Response, limit int) []sseFrame {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q, want text/event-stream", ct)
	}
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
			if limit > 0 && len(frames) >= limit {
				return frames
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return frames
}

// openStream connects to a job's SSE endpoint.
func openStream(t *testing.T, ts *httptest.Server, id string) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	return resp
}

// TestEventsStreamToCompletion: the SSE stream serves events while the job
// runs and terminates with an end frame once it completes.
func TestEventsStreamToCompletion(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	v := submit(t, ts, smallJob(21))
	// Connect immediately - typically while the job still runs; the log
	// replays anything missed, so the full stream arrives either way.
	frames := readSSE(t, openStream(t, ts, v.ID), 0)
	if len(frames) < 3 {
		t.Fatalf("only %d frames streamed", len(frames))
	}
	if frames[0].event != "start" {
		t.Errorf("first frame = %q, want start", frames[0].event)
	}
	last := frames[len(frames)-1]
	if last.event != "end" || !strings.Contains(last.data, `"done"`) {
		t.Errorf("last frame = %+v, want end with state done", last)
	}
	if prev := frames[len(frames)-2]; prev.event != "done" {
		t.Errorf("frame before end = %q, want the engine's done event", prev.event)
	}
	// Every data payload must round-trip as an engine.Event with
	// consecutive Seq (the end frame carries the job state instead).
	for i, f := range frames[:len(frames)-1] {
		var e engine.Event
		if err := json.Unmarshal([]byte(f.data), &e); err != nil {
			t.Fatalf("frame %d: bad event JSON %q: %v", i, f.data, err)
		}
		if e.Seq != i {
			t.Fatalf("frame %d has seq %d", i, e.Seq)
		}
	}

	// A terminal job's stream replays in full and ends immediately.
	replay := readSSE(t, openStream(t, ts, v.ID), 0)
	if len(replay) != len(frames) {
		t.Errorf("replay streamed %d frames, first read %d", len(replay), len(frames))
	}
}

// TestEventsStreamEndsOnDelete: deleting a running job terminates its open
// event streams with an end frame reporting the canceled state.
func TestEventsStreamEndsOnDelete(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	v := submit(t, ts, bigJob())
	pollUntil(t, ts, v.ID, time.Minute, func(v View) bool { return v.State == StateRunning })
	resp := openStream(t, ts, v.ID)

	// The stream is live: at least the engine's start event arrives while
	// the job is still running.
	first := readSSE(t, resp, 1)
	if len(first) != 1 || first[0].event != "start" {
		t.Fatalf("live stream opened with %+v, want the start event", first)
	}

	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	stream2 := openStream(t, ts, v.ID)
	done := make(chan []sseFrame, 1)
	go func() { done <- readSSE(t, stream2, 0) }()
	select {
	case frames := <-done:
		if len(frames) == 0 {
			t.Fatal("no frames after delete")
		}
		last := frames[len(frames)-1]
		if last.event != "end" || !strings.Contains(last.data, `"canceled"`) {
			t.Errorf("last frame = %+v, want end with state canceled", last)
		}
	case <-time.After(time.Minute):
		t.Fatal("stream did not terminate after DELETE")
	}
}

func TestEventsUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestBackendsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var body struct {
		Backends []engine.BackendInfo `json:"backends"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/backends", nil, &body); code != http.StatusOK {
		t.Fatalf("backends: status %d", code)
	}
	names := make([]string, len(body.Backends))
	for i, b := range body.Backends {
		names[i] = b.Name
	}
	for _, want := range []string{"cocco", "soma"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("backend %q missing from %v", want, names)
		}
	}
}

// TestEventLogParkedReader: a reader blocked on the notify channel never
// applies backpressure to the producer - appends proceed unbounded while the
// reader is parked, and one wake-up later the reader drains everything.
func TestEventLogParkedReader(t *testing.T) {
	l := newEventLog()
	evs, closed, wait := l.since(0)
	if len(evs) != 0 || closed {
		t.Fatalf("fresh log: %d events, closed %v", len(evs), closed)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		l.append(engine.Event{Seq: i, Kind: "improve"})
	}
	select {
	case <-wait:
	default:
		t.Fatal("parked reader was not woken by the first append")
	}
	evs, closed, _ = l.since(0)
	if len(evs) != n || closed {
		t.Fatalf("drain: %d events (want %d), closed %v", len(evs), n, closed)
	}
	l.close()
	l.append(engine.Event{Seq: n}) // dropped: the stream is complete
	evs, closed, _ = l.since(n)
	if len(evs) != 0 || !closed {
		t.Fatalf("after close: %d new events, closed %v", len(evs), closed)
	}
	l.close() // idempotent
}

// TestEventsSlowConsumerDoesNotBlockJob: a connected stream that never reads
// must not stall the solver or other consumers - the log buffers per job, so
// the fast reader sees the complete stream and the job finishes while the
// slow connection still holds its socket open.
func TestEventsSlowConsumerDoesNotBlockJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	v := submit(t, ts, smallJob(31))

	slow := openStream(t, ts, v.ID)
	defer slow.Body.Close() // never read from it

	frames := readSSE(t, openStream(t, ts, v.ID), 0)
	if len(frames) < 3 || frames[len(frames)-1].event != "end" {
		t.Fatalf("fast reader got %d frames, want a complete stream", len(frames))
	}
	got := pollUntil(t, ts, v.ID, time.Minute, terminal)
	if got.State != StateDone {
		t.Fatalf("job finished %q, want done despite the unread stream", got.State)
	}
}

// sseRecorder is a concurrency-safe ResponseWriter+Flusher for driving the
// SSE handler directly (httptest.ResponseRecorder is not safe to read while
// the handler writes).
type sseRecorder struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	header http.Header
}

func (w *sseRecorder) Header() http.Header {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}
func (w *sseRecorder) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}
func (w *sseRecorder) WriteHeader(int) {}
func (w *sseRecorder) Flush()          {}
func (w *sseRecorder) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Len()
}

// TestEventsHandlerReturnsOnDisconnect: when the client goes away mid-stream,
// the handler goroutine unblocks on the request context and returns - no
// goroutine is left parked on a running job's event log.
func TestEventsHandlerReturnsOnDisconnect(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	v := submit(t, ts, bigJob())
	pollUntil(t, ts, v.ID, time.Minute, func(v View) bool { return v.State == StateRunning })

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+v.ID+"/events", nil).WithContext(ctx)
	rec := &sseRecorder{}
	returned := make(chan struct{})
	go func() {
		svc.Handler().ServeHTTP(rec, req)
		close(returned)
	}()

	// Wait until the handler has streamed at least the start frame, proving
	// it is parked on the live log, then sever the connection.
	deadline := time.Now().Add(time.Minute)
	for rec.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler never streamed a frame")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case <-returned:
	case <-time.After(time.Minute):
		t.Fatal("handler did not return after client disconnect")
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
}
