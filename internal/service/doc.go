// Package service turns the one-shot SoMa search into a long-running
// scheduling service: cmd/somad wraps it in an HTTP binary.
//
// A Server owns three pieces:
//
//   - an in-memory job Store whose jobs move strictly through
//     queued -> running -> {done, failed, canceled};
//   - a bounded FIFO queue drained by a fixed pool of workers, each running
//     one soma.Explorer (or cocco baseline) job under a per-job
//     context.Context, so DELETE /v1/jobs/{id}, a ?wait=1 client disconnect,
//     and server shutdown all stop the annealer mid-chain;
//   - one process-wide sim.Cache shared by every job, so repeated
//     (model, hw, budget) evaluations across requests hit warm entries the
//     way a warm solver amortizes setup across constrained-search queries.
//
// Results are report.Result payloads - the same struct `soma -json` prints -
// so a fixed-seed job returns byte-identical cost and encoding over HTTP and
// over the CLI.
//
// Design-space exploration grids share the same machinery: POST /v1/sweeps
// queues a dse.Sweep as one job (the grid parallelizes internally via the
// dse runner), reusing the worker pool, the process-wide cache and the
// per-job SSE event stream; sweep rows are served scrubbed, byte-identical
// to the journal `soma -sweep` writes for the same spec. The endpoint
// contract is documented in docs/api.md.
package service
