package service

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"soma/internal/dse"
	"soma/internal/engine"
	"soma/internal/hw"
	"soma/internal/models"
	"soma/internal/obs"
	"soma/internal/report"
	"soma/internal/soma"
	"soma/internal/workload"
)

// State is a job's lifecycle position. Transitions are strictly
// queued -> running -> {done, failed, canceled}, except that a queued job may
// jump straight to canceled (deleted before a worker picked it up).
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Request is the POST /v1/jobs body: which workload to schedule on which
// platform, under what objective and search parameters. Zero values select
// the CLI defaults, so {"model":"resnet50","batch":1,"hw":"edge"} is a
// complete request. A multi-model job instead sets exactly one of Scenario
// (a built-in name from GET /v1/scenarios) or ScenarioSpec (an inline
// declarative spec, schema in docs/workloads.md); scenario jobs leave
// model/batch empty and run the soma framework.
type Request struct {
	Model string `json:"model,omitempty"`
	Batch int    `json:"batch,omitempty"`
	HW    string `json:"hw,omitempty"`
	// Framework picks the scheduler: soma (default) or cocco.
	Framework string `json:"framework,omitempty"`
	// Scenario names a built-in multi-model scenario.
	Scenario string `json:"scenario,omitempty"`
	// ScenarioSpec is an inline scenario spec (workload.ParseSpec schema).
	ScenarioSpec json.RawMessage `json:"scenario_spec,omitempty"`
	// Objective defaults to EDP (n = m = 1).
	Objective *report.Objective `json:"objective,omitempty"`
	Params    *ParamsRequest    `json:"params,omitempty"`
}

// ParamsRequest overrides individual search hyper-parameters on top of the
// named profile, mirroring the cmd/soma flags. It is the same search block
// a dse sweep spec carries, resolved by the same rule (dse.Search.Params),
// so job and sweep parameter semantics cannot drift.
type ParamsRequest = dse.Search

// runInputs are the resolved execution inputs of one job: either the fully
// normalized engine request of a plain scheduling job, or the sweep spec of
// a /v1/sweeps grid job (the server adds its shared cache and a hooks stream
// when a worker picks the job up).
type runInputs struct {
	req   engine.Request
	sweep *dse.Sweep
}

// normalize fills defaults and validates the request against the model,
// hardware and scenario registries, returning the resolved engine request.
// It is called at submit time so bad requests fail with 400 instead of a
// failed job.
func (r *Request) normalize() (in runInputs, err error) {
	scenario := r.Scenario != "" || len(r.ScenarioSpec) > 0
	switch {
	case scenario && (r.Model != "" || r.Batch != 0):
		return in, fmt.Errorf("scenario jobs must not set model/batch")
	case scenario && r.Scenario != "" && len(r.ScenarioSpec) > 0:
		return in, fmt.Errorf("set either scenario or scenario_spec, not both")
	case !scenario:
		if r.Batch == 0 {
			r.Batch = 1
		}
		if r.Model == "" || !models.Known(r.Model) {
			return in, fmt.Errorf("unknown model %q (GET /v1/models lists them)", r.Model)
		}
		if r.Batch < 0 {
			return in, fmt.Errorf("batch must be positive, got %d", r.Batch)
		}
	}
	if r.HW == "" {
		r.HW = "edge"
	}
	if _, err := hw.Platform(r.HW); err != nil {
		return in, fmt.Errorf("unknown hw %q (GET /v1/hw lists them)", r.HW)
	}
	if r.Framework == "" {
		r.Framework = "soma"
	}
	// Any registered engine backend is a valid framework, so solvers added
	// via engine.Register are accepted here with no service change.
	if _, err := engine.Get(r.Framework); err != nil {
		return in, fmt.Errorf("unknown framework %q (GET /v1/backends lists them)", r.Framework)
	}
	if scenario && r.Framework != "soma" {
		return in, fmt.Errorf("scenario jobs run the soma framework only")
	}
	if r.Objective == nil {
		r.Objective = &report.Objective{N: 1, M: 1}
	}
	p := r.Params
	if p == nil {
		p = &ParamsRequest{}
	}
	par, err := p.Params()
	if err != nil {
		return in, err
	}
	in.req = engine.Request{
		Backend:   r.Framework,
		Platform:  r.HW,
		Objective: soma.Objective{N: r.Objective.N, M: r.Objective.M},
		Params:    par,
	}
	if scenario {
		var sc workload.Scenario
		if r.Scenario != "" {
			sc, err = workload.Builtin(r.Scenario)
			if err != nil {
				return in, fmt.Errorf("%v (GET /v1/scenarios lists them)", err)
			}
		} else if sc, err = workload.ParseSpec(r.ScenarioSpec); err != nil {
			return in, err
		}
		in.req.Scenario = &sc
		return in, nil
	}
	in.req.Model = r.Model
	in.req.Batch = r.Batch
	return in, nil
}

// Job is one scheduling request (or sweep) moving through the queue. All
// fields are guarded by the Store's lock; handlers only ever see View
// snapshots.
type Job struct {
	ID    string
	State State
	Req   Request
	// in holds the resolved run inputs (normalize ran at submit).
	in runInputs

	Result *report.Result
	// SweepOut is the sweep-job counterpart of Result (rows scrubbed of
	// in-memory artifacts and run-dependent cache counters).
	SweepOut *dse.Outcome
	Err      string

	Created  time.Time
	Started  time.Time
	Finished time.Time

	// cancel aborts the running search; nil until a worker starts the job.
	cancel context.CancelFunc
	// done is closed on the transition into a terminal state, so waiters
	// (POST ?wait=1, tests) can block without polling.
	done chan struct{}
	// events buffers the engine's progress stream for the SSE endpoint;
	// closed together with done.
	events *eventLog
	// tracer collects the job's solve spans for GET /v1/jobs/{id}/trace.
	// Created at submission, so reading a running job serves the partial
	// trace; the tracer itself is concurrency-safe.
	tracer *obs.Tracer
	// journal collects the job's annealing trajectory for
	// GET /v1/jobs/{id}/convergence (plain jobs only - sweep rows carry
	// their own diagnostics summaries instead). Created at submission like
	// the tracer, so a running job serves its live partial trajectory; the
	// journal decimates itself to a bounded sample count per chain.
	journal *obs.Journal
}

// View is the JSON shape of a job served by the API. Plain jobs carry
// request/result; sweep jobs carry sweep/sweep_result instead.
type View struct {
	ID      string   `json:"id"`
	State   State    `json:"state"`
	Request *Request `json:"request,omitempty"`
	// Sweep is the submitted grid spec (sweep jobs only).
	Sweep *dse.Sweep `json:"sweep,omitempty"`
	Error string     `json:"error,omitempty"`
	// Result is present once State == done.
	Result *report.Result `json:"result,omitempty"`
	// SweepResult is the sweep-job counterpart of Result.
	SweepResult *dse.Outcome `json:"sweep_result,omitempty"`
	CreatedAt   string       `json:"created_at"`
	StartedAt   string       `json:"started_at,omitempty"`
	FinishedAt  string       `json:"finished_at,omitempty"`
}

func (j *Job) view() View {
	v := View{ID: j.ID, State: j.State, Error: j.Err,
		Result: j.Result, SweepResult: j.SweepOut,
		CreatedAt: j.Created.UTC().Format(time.RFC3339Nano)}
	if j.in.sweep != nil {
		v.Sweep = j.in.sweep
	} else {
		req := j.Req
		v.Request = &req
	}
	if !j.Started.IsZero() {
		v.StartedAt = j.Started.UTC().Format(time.RFC3339Nano)
	}
	if !j.Finished.IsZero() {
		v.FinishedAt = j.Finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}
