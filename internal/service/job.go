package service

import (
	"context"
	"fmt"
	"time"

	"soma/internal/exp"
	"soma/internal/models"
	"soma/internal/report"
	"soma/internal/soma"
)

// State is a job's lifecycle position. Transitions are strictly
// queued -> running -> {done, failed, canceled}, except that a queued job may
// jump straight to canceled (deleted before a worker picked it up).
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Request is the POST /v1/jobs body: which workload to schedule on which
// platform, under what objective and search parameters. Zero values select
// the CLI defaults, so {"model":"resnet50","batch":1,"hw":"edge"} is a
// complete request.
type Request struct {
	Model string `json:"model"`
	Batch int    `json:"batch"`
	HW    string `json:"hw"`
	// Framework picks the scheduler: soma (default) or cocco.
	Framework string `json:"framework,omitempty"`
	// Objective defaults to EDP (n = m = 1).
	Objective *report.Objective `json:"objective,omitempty"`
	Params    *ParamsRequest    `json:"params,omitempty"`
}

// ParamsRequest overrides individual search hyper-parameters on top of the
// named profile, mirroring the cmd/soma flags.
type ParamsRequest struct {
	// Profile is fast|default|paper (default: default).
	Profile string `json:"profile,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Chains  int    `json:"chains,omitempty"`
	Workers int    `json:"workers,omitempty"`
	Beta1   int    `json:"beta1,omitempty"`
	Beta2   int    `json:"beta2,omitempty"`
}

// normalize fills defaults and validates the request against the model and
// hardware registries, returning the resolved run inputs. It is called at
// submit time so bad requests fail with 400 instead of a failed job.
func (r *Request) normalize() (spec report.Spec, par soma.Params, err error) {
	if r.Batch == 0 {
		r.Batch = 1
	}
	if r.Model == "" || !knownModel(r.Model) {
		return spec, par, fmt.Errorf("unknown model %q (GET /v1/models lists them)", r.Model)
	}
	if r.Batch < 0 {
		return spec, par, fmt.Errorf("batch must be positive, got %d", r.Batch)
	}
	if r.HW == "" {
		r.HW = "edge"
	}
	if _, err := exp.Platform(r.HW); err != nil {
		return spec, par, fmt.Errorf("unknown hw %q (GET /v1/hw lists them)", r.HW)
	}
	switch r.Framework {
	case "":
		r.Framework = "soma"
	case "soma", "cocco":
	default:
		return spec, par, fmt.Errorf("unknown framework %q (soma|cocco)", r.Framework)
	}
	if r.Objective == nil {
		r.Objective = &report.Objective{N: 1, M: 1}
	}
	p := r.Params
	if p == nil {
		p = &ParamsRequest{}
	}
	par, err = soma.ProfileParams(p.Profile)
	if err != nil {
		return spec, par, err
	}
	if p.Seed != 0 {
		par.Seed = p.Seed
	}
	par.Chains = p.Chains
	par.Workers = p.Workers
	if p.Beta1 > 0 {
		par.Beta1 = p.Beta1
	}
	if p.Beta2 > 0 {
		par.Beta2 = p.Beta2
		par.Stage2MaxIters = 1 << 20
	}
	spec = report.Spec{Model: r.Model, Batch: r.Batch, HW: r.HW,
		Framework: r.Framework, Seed: par.Seed, Obj: *r.Objective}
	return spec, par, nil
}

func knownModel(name string) bool {
	for _, n := range models.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Job is one scheduling request moving through the queue. All fields are
// guarded by the Store's lock; handlers only ever see View snapshots.
type Job struct {
	ID    string
	State State
	Req   Request
	// spec/par are the resolved run inputs (normalize ran at submit).
	spec report.Spec
	par  soma.Params

	Result *report.Result
	Err    string

	Created  time.Time
	Started  time.Time
	Finished time.Time

	// cancel aborts the running search; nil until a worker starts the job.
	cancel context.CancelFunc
	// done is closed on the transition into a terminal state, so waiters
	// (POST ?wait=1, tests) can block without polling.
	done chan struct{}
}

// View is the JSON shape of a job served by the API.
type View struct {
	ID      string  `json:"id"`
	State   State   `json:"state"`
	Request Request `json:"request"`
	Error   string  `json:"error,omitempty"`
	// Result is present once State == done.
	Result     *report.Result `json:"result,omitempty"`
	CreatedAt  string         `json:"created_at"`
	StartedAt  string         `json:"started_at,omitempty"`
	FinishedAt string         `json:"finished_at,omitempty"`
}

func (j *Job) view() View {
	v := View{ID: j.ID, State: j.State, Request: j.Req, Error: j.Err,
		Result: j.Result, CreatedAt: j.Created.UTC().Format(time.RFC3339Nano)}
	if !j.Started.IsZero() {
		v.StartedAt = j.Started.UTC().Format(time.RFC3339Nano)
	}
	if !j.Finished.IsZero() {
		v.FinishedAt = j.Finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}
