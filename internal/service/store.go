package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"soma/internal/engine"
	"soma/internal/obs"
)

// Store is the in-memory job table. It owns every state transition so the
// queue, the workers, and the HTTP handlers never race on a Job: all reads
// go through View snapshots taken under the lock.
//
// Retention is bounded: once the table exceeds maxJobs, the oldest terminal
// jobs (and their result payloads) are evicted, so a daemon serving
// sustained traffic does not grow without bound. Live (queued/running) jobs
// are never evicted.
type Store struct {
	mu   sync.Mutex
	jobs map[string]*Job
	// order preserves submission order for listings and eviction.
	order   []string
	seq     int
	maxJobs int
}

// DefaultMaxJobs bounds the job table before old terminal jobs are evicted.
const DefaultMaxJobs = 1024

// NewStore creates an empty job table retaining at most maxJobs jobs
// (<= 0 selects DefaultMaxJobs).
func NewStore(maxJobs int) *Store {
	if maxJobs <= 0 {
		maxJobs = DefaultMaxJobs
	}
	return &Store{jobs: make(map[string]*Job), maxJobs: maxJobs}
}

// evict drops the oldest terminal jobs while the table is over its bound.
// Callers hold st.mu.
func (st *Store) evict() {
	if len(st.order) <= st.maxJobs {
		return
	}
	kept := st.order[:0]
	over := len(st.order) - st.maxJobs
	for _, id := range st.order {
		if over > 0 && st.jobs[id].State.Terminal() {
			delete(st.jobs, id)
			over--
			continue
		}
		kept = append(kept, id)
	}
	st.order = kept
}

// Add registers a new queued job (req already normalized into its run
// inputs) and returns its snapshot. Sweep jobs (in.sweep set) get the
// "sweep-" ID prefix so the two /v1 namespaces stay visually distinct while
// sharing one table, queue and worker pool.
func (st *Store) Add(req Request, in runInputs) View {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	kind := "job"
	if in.sweep != nil {
		kind = "sweep"
	}
	j := &Job{
		ID:      fmt.Sprintf("%s-%06d", kind, st.seq),
		State:   StateQueued,
		Req:     req,
		in:      in,
		Created: time.Now(),
		done:    make(chan struct{}),
		events:  newEventLog(),
		tracer:  obs.NewTracer(),
	}
	if in.sweep == nil {
		j.journal = obs.NewJournal()
	}
	st.jobs[j.ID] = j
	st.order = append(st.order, j.ID)
	st.evict()
	return j.view()
}

// Get snapshots one job; ok is false for unknown IDs.
func (st *Store) Get(id string) (View, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return View{}, false
	}
	return j.view(), true
}

// List snapshots every job in submission order.
func (st *Store) List() []View {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]View, 0, len(st.order))
	for _, id := range st.order {
		out = append(out, st.jobs[id].view())
	}
	return out
}

// Counts tallies jobs per state for /v1/stats.
func (st *Store) Counts() map[State]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	c := make(map[State]int, 5)
	for _, j := range st.jobs {
		c[j.State]++
	}
	return c
}

// Done exposes the job's completion channel (closed on the transition into a
// terminal state); ok is false for unknown IDs.
func (st *Store) Done(id string) (<-chan struct{}, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, false
	}
	return j.done, true
}

// start transitions queued -> running and installs the cancel hook. It
// returns false when the job was canceled while still in the queue (the
// worker then just drops it).
func (st *Store) start(id string, cancel context.CancelFunc) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok || j.State != StateQueued {
		return false
	}
	j.State = StateRunning
	j.Started = time.Now()
	j.cancel = cancel
	return true
}

// finish moves a running job into a terminal state.
func (st *Store) finish(id string, state State, errMsg string, apply func(*Job)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok || j.State.Terminal() {
		return
	}
	j.State = state
	j.Err = errMsg
	j.Finished = time.Now()
	j.cancel = nil
	if apply != nil {
		apply(j)
	}
	j.events.close()
	close(j.done)
}

// Cancel requests cancellation. A queued job is canceled immediately; a
// running job has its context canceled and reaches the canceled state once
// the annealer notices (the returned View may still say running). Canceling
// a terminal job is a no-op that reports conflict = true.
func (st *Store) Cancel(id string) (v View, found, conflict bool) {
	st.mu.Lock()
	j, ok := st.jobs[id]
	if !ok {
		st.mu.Unlock()
		return View{}, false, false
	}
	switch j.State {
	case StateQueued:
		j.State = StateCanceled
		j.Err = "canceled before start"
		j.Finished = time.Now()
		j.events.close()
		close(j.done)
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	default:
		v = j.view()
		st.mu.Unlock()
		return v, true, true
	}
	v = j.view()
	st.mu.Unlock()
	return v, true, false
}

// CancelAll cancels every non-terminal job: queued jobs go straight to
// canceled (closing their done channels, which unblocks waiters), running
// jobs have their contexts canceled. Used by Server.Stop.
func (st *Store) CancelAll() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, j := range st.jobs {
		switch j.State {
		case StateQueued:
			j.State = StateCanceled
			j.Err = "canceled: server shutting down"
			j.Finished = time.Now()
			j.events.close()
			close(j.done)
		case StateRunning:
			if j.cancel != nil {
				j.cancel()
			}
		}
	}
}

// Trace exposes a job's span tracer; ok is false for unknown IDs. The tracer
// is live from submission, so reading a running job serves the partial trace
// collected so far.
func (st *Store) Trace(id string) (*obs.Tracer, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, false
	}
	return j.tracer, true
}

// Convergence exposes a job's convergence journal and its backend name (for
// stage-preference selection); ok is false for unknown IDs, and the journal
// is nil for sweep jobs (their rows carry per-point diagnostics instead).
// Like the tracer, the journal is live from submission, so reading a running
// job serves the trajectory collected so far.
func (st *Store) Convergence(id string) (jnl *obs.Journal, backend string, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, found := st.jobs[id]
	if !found {
		return nil, "", false
	}
	return j.journal, j.in.req.Backend, true
}

// Events exposes a job's progress-event log; ok is false for unknown IDs.
// Evicted jobs lose their logs together with their results.
func (st *Store) Events(id string) (*eventLog, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, false
	}
	return j.events, true
}

// appendEvent records one progress event on a job's log (no-op for unknown
// or already-terminal jobs).
func (st *Store) appendEvent(id string, e engine.Event) {
	st.mu.Lock()
	j, ok := st.jobs[id]
	st.mu.Unlock()
	if ok {
		j.events.append(e)
	}
}

// inputs hands a worker the resolved run inputs (immutable after Add).
func (st *Store) inputs(id string) (in runInputs, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, found := st.jobs[id]
	if !found {
		return runInputs{}, false
	}
	return j.in, true
}
