package service

import (
	"testing"
)

func addJob(st *Store) View {
	return st.Add(Request{Model: "resnet50"}, runInputs{})
}

func finishJob(st *Store, id string) {
	st.start(id, func() {})
	st.finish(id, StateDone, "", nil)
}

// TestStoreEvictsOldTerminalJobs: the job table is bounded - beyond MaxJobs
// the oldest terminal jobs (and their results) are evicted, while live jobs
// are never touched.
func TestStoreEvictsOldTerminalJobs(t *testing.T) {
	st := NewStore(2)
	a := addJob(st)
	finishJob(st, a.ID)
	b := addJob(st)
	finishJob(st, b.ID)

	c := addJob(st) // third job pushes the table over its bound
	if _, ok := st.Get(a.ID); ok {
		t.Fatal("oldest terminal job survived eviction")
	}
	if _, ok := st.Get(b.ID); !ok {
		t.Fatal("within-bound terminal job was evicted")
	}

	d := addJob(st) // evicts b, leaving only live jobs
	e := addJob(st) // over bound, but live jobs must never be evicted
	if _, ok := st.Get(b.ID); ok {
		t.Fatal("second terminal job survived eviction")
	}
	for _, id := range []string{c.ID, d.ID, e.ID} {
		v, ok := st.Get(id)
		if !ok {
			t.Fatalf("live job %s was evicted", id)
		}
		if v.State != StateQueued {
			t.Fatalf("live job %s in state %q", id, v.State)
		}
	}
	if got := len(st.List()); got != 3 {
		t.Fatalf("listing has %d jobs, want 3", got)
	}
}

// TestStoreCancelAll: queued jobs jump straight to canceled (unblocking
// their done channels) and running jobs get their contexts canceled.
func TestStoreCancelAll(t *testing.T) {
	st := NewStore(0)
	queued := addJob(st)
	running := addJob(st)
	canceled := false
	st.start(running.ID, func() { canceled = true })

	st.CancelAll()

	if v, _ := st.Get(queued.ID); v.State != StateCanceled {
		t.Fatalf("queued job in state %q, want canceled", v.State)
	}
	done, _ := st.Done(queued.ID)
	select {
	case <-done:
	default:
		t.Fatal("queued job's done channel not closed")
	}
	if !canceled {
		t.Fatal("running job's cancel hook not invoked")
	}
	if v, _ := st.Get(running.ID); v.State != StateRunning {
		t.Fatalf("running job must stay running until its worker notices, got %q", v.State)
	}
	st.finish(running.ID, StateCanceled, "canceled", nil)
}

// TestSubmitRejectedWhileDraining: once Stop ran, new submits get 503.
func TestSubmitRejectedWhileDraining(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	svc.Stop()
	var e struct {
		Error string `json:"error"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/jobs", smallJob(1), &e); code != 503 {
		t.Fatalf("status %d, want 503", code)
	}
	if e.Error == "" {
		t.Fatal("503 without an error message")
	}
}
