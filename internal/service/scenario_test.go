package service

import (
	"bytes"
	"net/http"
	"sort"
	"testing"
	"time"

	"soma/internal/exp"
	"soma/internal/report"
	"soma/internal/soma"
	"soma/internal/workload"
)

// scenarioJob is a built-in-scenario request small enough for CI.
func scenarioJob(seed int64) map[string]any {
	return map[string]any{
		"scenario": "multi-tenant-cnn", "hw": "edge",
		"params": map[string]any{"profile": "fast", "seed": seed, "beta1": 2, "beta2": 1},
	}
}

func renderResult(t *testing.T, r *report.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestScenarioJobEndToEnd is the multi-model acceptance check: a fixed-seed
// scenario job over HTTP must be byte-identical to the library path that
// `soma -scenario -json` prints.
func TestScenarioJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	v := submit(t, ts, scenarioJob(5))
	got := pollUntil(t, ts, v.ID, 2*time.Minute, terminal)
	if got.State != StateDone || got.Result == nil {
		t.Fatalf("scenario job finished %q (err %q), want done", got.State, got.Error)
	}
	if got.Result.Scenario == nil || len(got.Result.Scenario.Components) != 2 {
		t.Fatalf("scenario section missing or malformed: %+v", got.Result.Scenario)
	}
	if got.Result.Workload.Model != exp.ScenarioModelName("multi-tenant-cnn") {
		t.Fatalf("workload model %q", got.Result.Workload.Model)
	}

	sc, err := workload.Builtin("multi-tenant-cnn")
	if err != nil {
		t.Fatal(err)
	}
	par, err := soma.ProfileParams("fast")
	if err != nil {
		t.Fatal(err)
	}
	par.Seed = 5
	par.Beta1, par.Beta2 = 2, 1
	par.Stage2MaxIters = 1 << 20
	want, err := exp.RunScenario(exp.ScenarioRun{Scenario: sc, Platform: "edge",
		Obj: soma.EDP(), Par: par})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderResult(t, got.Result), renderResult(t, want)) {
		t.Error("scenario payload diverged between the jobs API and the library path")
	}
}

// TestScenarioSpecJob submits an inline declarative spec instead of a
// built-in name.
func TestScenarioSpecJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := map[string]any{
		"scenario_spec": map[string]any{
			"name":    "twin-mobilenets",
			"arrival": "sequential",
			"components": []map[string]any{
				{"name": "a", "model": "mobilenetv2", "weight": 2},
				{"name": "b", "model": "mobilenetv2"},
			},
		},
		"params": map[string]any{"profile": "fast", "beta1": 2, "beta2": 1},
	}
	v := submit(t, ts, body)
	got := pollUntil(t, ts, v.ID, 2*time.Minute, terminal)
	if got.State != StateDone || got.Result == nil {
		t.Fatalf("spec job finished %q (err %q), want done", got.State, got.Error)
	}
	info := got.Result.Scenario
	if info == nil || info.Name != "twin-mobilenets" || info.Arrival != "sequential" {
		t.Fatalf("scenario section: %+v", info)
	}
	// Sequential arrival runs the heavier-weight component first.
	if info.Components[0].Name != "a" || info.Components[1].Name != "b" {
		t.Fatalf("component order: %+v", info.Components)
	}
}

func TestScenarioBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []map[string]any{
		{"scenario": "multi-tenant-cnn", "model": "resnet50"},
		{"scenario": "no-such-scenario"},
		{"scenario": "multi-tenant-cnn", "scenario_spec": map[string]any{"name": "x"}},
		{"scenario": "multi-tenant-cnn", "framework": "cocco"},
		{"scenario_spec": map[string]any{"name": "x", "components": []map[string]any{{"model": "alexnet"}}}},
		{"scenario_spec": map[string]any{"name": "x"}},
	}
	for i, body := range cases {
		var e apiError
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &e); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d (error %q), want 400", i, code, e.Error)
		}
	}
}

func TestScenariosEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var out struct {
		Scenarios []workload.Scenario `json:"scenarios"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/scenarios", nil, &out); code != http.StatusOK {
		t.Fatalf("scenarios: status %d", code)
	}
	if len(out.Scenarios) < 3 {
		t.Fatalf("want at least 3 built-in scenarios, got %d", len(out.Scenarios))
	}
	names := make([]string, 0, len(out.Scenarios))
	for _, sc := range out.Scenarios {
		names = append(names, sc.Name)
		if len(sc.Components) == 0 || !sc.Arrival.Valid() {
			t.Errorf("scenario %s served incomplete: %+v", sc.Name, sc)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("scenario listing not sorted: %v", names)
	}
	// Every served spec is resubmittable verbatim: it must re-validate.
	for _, sc := range out.Scenarios {
		if err := sc.Validate(); err != nil {
			t.Errorf("served scenario %s does not validate: %v", sc.Name, err)
		}
	}
}
