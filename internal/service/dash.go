package service

import (
	_ "embed"
	"net/http"
)

// dashHTML is the whole dashboard: one static page whose inline script polls
// the JSON API (/v1/stats for the metrics-registry snapshot, /v1/jobs, and
// per-job /convergence) and follows the newest running job's SSE stream. No
// build step, no external assets, no server-side rendering - the page is a
// plain API client, so it can never disagree with what the API serves.
//
//go:embed dash.html
var dashHTML []byte

// handleDash is GET /debug/dash: the live service dashboard (queue and
// worker occupancy, per-backend solve latency, recent jobs with convergence
// sparklines, and the newest running job's event stream).
func (s *Server) handleDash(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(dashHTML)
}
