package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"soma/internal/exp"
	"soma/internal/models"
	"soma/internal/report"
	"soma/internal/soma"
)

// newTestServer starts a service and its HTTP front end, both torn down with
// the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return svc, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// smallJob is a request small enough to finish in well under a second.
func smallJob(seed int64) map[string]any {
	return map[string]any{
		"model": "mobilenetv2", "batch": 1, "hw": "edge",
		"params": map[string]any{"profile": "fast", "seed": seed, "beta1": 2, "beta2": 1},
	}
}

// bigJob is a request that runs long enough to be observed running and then
// canceled (paper-scale iteration budgets on a deep model).
func bigJob() map[string]any {
	return map[string]any{
		"model": "resnet101", "batch": 16, "hw": "cloud",
		"params": map[string]any{"profile": "paper"},
	}
}

func submit(t *testing.T, ts *httptest.Server, body any) View {
	t.Helper()
	var v View
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body, &v); code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%+v)", code, v)
	}
	if v.ID == "" || v.State != StateQueued {
		t.Fatalf("submit returned %+v", v)
	}
	return v
}

// pollUntil polls the job until cond holds, failing the test on timeout.
func pollUntil(t *testing.T, ts *httptest.Server, id string, timeout time.Duration,
	cond func(View) bool) View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v View
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id, nil, &v); code != http.StatusOK {
			t.Fatalf("get %s: status %d", id, code)
		}
		if cond(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q (err %q)", id, v.State, v.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func terminal(v View) bool { return v.State.Terminal() }

// TestEndToEndDeterminism is the acceptance check: a fixed-seed job over
// HTTP must reproduce the exact cost and encoding of the same run through
// the library path cmd/soma uses, and resubmitting it must hit the shared
// evaluation cache.
func TestEndToEndDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	v := submit(t, ts, smallJob(7))
	got := pollUntil(t, ts, v.ID, 2*time.Minute, terminal)
	if got.State != StateDone || got.Result == nil {
		t.Fatalf("job finished %q (err %q), want done", got.State, got.Error)
	}

	// The same run through the library path (what cmd/soma -json prints).
	cfg, err := exp.Platform("edge")
	if err != nil {
		t.Fatal(err)
	}
	g, err := models.Build("mobilenetv2", 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := soma.ProfileParams("fast")
	if err != nil {
		t.Fatal(err)
	}
	par.Seed = 7
	par.Beta1, par.Beta2 = 2, 1
	par.Stage2MaxIters = 1 << 20
	res, err := soma.New(g, cfg, soma.EDP(), par).Run()
	if err != nil {
		t.Fatal(err)
	}
	spec := report.Spec{Model: "mobilenetv2", Batch: 1, HW: "edge",
		Framework: "soma", Seed: 7, Obj: report.Objective{N: 1, M: 1}}
	want := report.FromSoma(spec, cfg, res)

	if got.Result.Cost != want.Cost {
		t.Errorf("cost diverged: http %v, library %v", got.Result.Cost, want.Cost)
	}
	if got.Result.EncodingKey != want.EncodingKey {
		t.Errorf("encoding diverged:\nhttp    %s\nlibrary %s", got.Result.EncodingKey, want.EncodingKey)
	}
	if got.Result.ScheduleSHA256 != want.ScheduleSHA256 {
		t.Errorf("schedule diverged: http %s, library %s", got.Result.ScheduleSHA256, want.ScheduleSHA256)
	}

	// Resubmitting the identical job must be served from the warm cache
	// with an identical result.
	v2 := submit(t, ts, smallJob(7))
	got2 := pollUntil(t, ts, v2.ID, 2*time.Minute, terminal)
	if got2.State != StateDone || got2.Result == nil {
		t.Fatalf("second job finished %q, want done", got2.State)
	}
	if got2.Result.Cost != want.Cost || got2.Result.EncodingKey != want.EncodingKey {
		t.Error("second submission diverged from the first")
	}
	var st Stats
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Cache.Hits <= 0 {
		t.Errorf("expected shared-cache hits after identical resubmission, got %+v", st.Cache)
	}
	if st.Jobs[StateDone] != 2 {
		t.Errorf("job counts: %+v, want 2 done", st.Jobs)
	}
}

// TestCancelRunningJob checks that DELETE stops the annealer mid-chain and
// frees the (single) worker slot for the next job.
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	v := submit(t, ts, bigJob())
	pollUntil(t, ts, v.ID, time.Minute, func(v View) bool { return v.State == StateRunning })

	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	got := pollUntil(t, ts, v.ID, time.Minute, terminal)
	if got.State != StateCanceled {
		t.Fatalf("canceled job finished %q (err %q), want canceled", got.State, got.Error)
	}
	if got.Result != nil {
		t.Fatal("canceled job must not carry a result")
	}

	// The freed worker must pick up and finish the next job.
	next := submit(t, ts, smallJob(3))
	done := pollUntil(t, ts, next.ID, 2*time.Minute, terminal)
	if done.State != StateDone {
		t.Fatalf("follow-up job finished %q (err %q), want done", done.State, done.Error)
	}

	// Canceling a terminal job is a conflict, not a transition.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+done.ID, nil, nil); code != http.StatusConflict {
		t.Fatalf("cancel of done job: status %d, want 409", code)
	}
}

// TestCancelQueuedJob: a job deleted before any worker picks it up must go
// straight to canceled and never run.
func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	blocker := submit(t, ts, bigJob())
	pollUntil(t, ts, blocker.ID, time.Minute, func(v View) bool { return v.State == StateRunning })

	queued := submit(t, ts, smallJob(1))
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel queued: status %d", code)
	}
	got := pollUntil(t, ts, queued.ID, time.Minute, terminal)
	if got.State != StateCanceled {
		t.Fatalf("queued job finished %q, want canceled", got.State)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel blocker: status %d", code)
	}
}

// TestRegistryEndpoints table-tests the enumeration and liveness endpoints
// against the in-process registries.
func TestRegistryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	t.Run("healthz", func(t *testing.T) {
		var body map[string]string
		if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &body); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if body["status"] != "ok" {
			t.Fatalf("body %v", body)
		}
	})

	t.Run("models", func(t *testing.T) {
		var body struct {
			Models []string `json:"models"`
		}
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/models", nil, &body); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		want := models.Names()
		if fmt.Sprint(body.Models) != fmt.Sprint(want) {
			t.Fatalf("models = %v, want %v", body.Models, want)
		}
	})

	t.Run("hw", func(t *testing.T) {
		var body struct {
			HW []HWInfo `json:"hw"`
		}
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/hw", nil, &body); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if len(body.HW) != len(exp.Platforms()) {
			t.Fatalf("hw = %+v, want %d entries", body.HW, len(exp.Platforms()))
		}
		for i, name := range exp.Platforms() {
			info := body.HW[i]
			if info.Name != name {
				t.Errorf("hw[%d] = %q, want %q", i, info.Name, name)
			}
			if info.PeakTOPS <= 0 || info.GBufBytes <= 0 || info.DRAMBandwidth <= 0 ||
				info.Cores <= 0 || info.Description == "" {
				t.Errorf("hw[%d] has empty fields: %+v", i, info)
			}
		}
	})

	badSubmits := []struct {
		name string
		body map[string]any
	}{
		{"unknown model", map[string]any{"model": "alexnet", "hw": "edge"}},
		{"unknown hw", map[string]any{"model": "resnet50", "hw": "tpu"}},
		{"unknown framework", map[string]any{"model": "resnet50", "hw": "edge", "framework": "ilp"}},
		{"unknown profile", map[string]any{"model": "resnet50", "hw": "edge",
			"params": map[string]any{"profile": "huge"}}},
		{"negative batch", map[string]any{"model": "resnet50", "batch": -1, "hw": "edge"}},
	}
	for _, tc := range badSubmits {
		t.Run("400 "+tc.name, func(t *testing.T) {
			var e struct {
				Error string `json:"error"`
			}
			if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", tc.body, &e); code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", code)
			}
			if e.Error == "" {
				t.Fatal("400 without an error message")
			}
		})
	}

	t.Run("404 unknown job", func(t *testing.T) {
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-999999", nil, nil); code != http.StatusNotFound {
			t.Fatalf("status %d, want 404", code)
		}
		if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/job-999999", nil, nil); code != http.StatusNotFound {
			t.Fatalf("status %d, want 404", code)
		}
	})
}

// TestSubmitWait exercises the synchronous ?wait=1 path.
func TestSubmitWait(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var v View
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs?wait=1", smallJob(5), &v)
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if v.State != StateDone || v.Result == nil {
		t.Fatalf("wait returned %q (err %q), want done with result", v.State, v.Error)
	}
}

// TestQueueFull: submits beyond the queue bound are rejected with 503.
func TestQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	blocker := submit(t, ts, bigJob())
	pollUntil(t, ts, blocker.ID, time.Minute, func(v View) bool { return v.State == StateRunning })
	submit(t, ts, smallJob(1)) // fills the single queue slot

	var e struct {
		Error string `json:"error"`
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallJob(2), &e); code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
	if !strings.Contains(e.Error, "queue full") {
		t.Fatalf("error %q", e.Error)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel blocker: status %d", code)
	}
}

// TestListJobs: the listing preserves submission order.
func TestListJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	a := submit(t, ts, smallJob(1))
	b := submit(t, ts, smallJob(2))
	var body struct {
		Jobs []View `json:"jobs"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil, &body); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(body.Jobs) != 2 || body.Jobs[0].ID != a.ID || body.Jobs[1].ID != b.ID {
		t.Fatalf("listing %+v, want [%s %s]", body.Jobs, a.ID, b.ID)
	}
	pollUntil(t, ts, b.ID, 2*time.Minute, terminal)
}
