package service

import (
	"net/http"
	"strings"
	"testing"

	"soma/internal/obs"
)

// findFamily picks one metric family out of a registry snapshot.
func findFamily(t *testing.T, snaps []obs.MetricSnapshot, name string) obs.MetricSnapshot {
	t.Helper()
	for _, m := range snaps {
		if m.Name == name {
			return m
		}
	}
	return obs.MetricSnapshot{Name: name}
}

// TestConvergenceEndpoint: a finished plain job serves its full trajectory
// and diagnostics on /convergence, while the stored result stays scrubbed of
// the section; sweep jobs and unknown IDs 404.
func TestConvergenceEndpoint(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})

	before := findFamily(t, svc.reg.Snapshot(), "engine_solves_total")

	var v View
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs?wait=1", smallJob(13), &v); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	if v.State != StateDone || v.Result == nil {
		t.Fatalf("job finished %q, want done", v.State)
	}
	if v.Result.Convergence != nil {
		t.Error("stored result carries a Convergence section; want it scrubbed")
	}

	var rep obs.ConvergenceReport
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"/convergence", nil, &rep); code != http.StatusOK {
		t.Fatalf("convergence: status %d", code)
	}
	if len(rep.Series) == 0 || rep.Diagnostics == nil {
		t.Fatalf("empty convergence report: %+v", rep)
	}
	stages := map[string]bool{}
	for _, cs := range rep.Series {
		stages[cs.Stage] = true
		if !cs.Finished || len(cs.Samples) == 0 {
			t.Errorf("series %s/%d/%d unfinished or empty", cs.Stage, cs.AllocIter, cs.Chain)
		}
	}
	if !stages["stage1"] || !stages["stage2"] {
		t.Errorf("series stages = %v, want stage1 and stage2", stages)
	}
	if rep.Diagnostics.Stage != "stage2" {
		t.Errorf("diagnostics winner stage = %q, want stage2", rep.Diagnostics.Stage)
	}
	if rep.Diagnostics.FinalBest != v.Result.Cost {
		t.Errorf("diagnostics FinalBest %g != stored cost %g",
			rep.Diagnostics.FinalBest, v.Result.Cost)
	}

	// The solve landed exactly once on the shared registry - asserted as a
	// delta so metrics from other tests' servers can never interfere.
	delta := obs.SnapshotDelta(before, findFamily(t, svc.reg.Snapshot(), "engine_solves_total"))
	var ok float64
	for _, se := range delta.Series {
		if strings.Contains(se.Labels, `backend="soma"`) && strings.Contains(se.Labels, `outcome="ok"`) {
			ok = se.Value
		}
	}
	if ok != 1 {
		t.Errorf("engine_solves_total delta = %+v, want one ok soma solve", delta.Series)
	}

	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/job-999999/convergence", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}

	var sv View
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps?wait=1", smallSweep(), &sv); code != http.StatusOK {
		t.Fatalf("sweep submit: status %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+sv.ID+"/convergence", nil, nil); code != http.StatusNotFound {
		t.Errorf("sweep convergence: status %d, want 404 (rows carry diagnostics instead)", code)
	}
}

// TestDashboard: /debug/dash serves the embedded single-page dashboard.
func TestDashboard(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	_, body := get(t, ts.URL+"/debug/dash")
	for _, want := range []string{"<!DOCTYPE html>", "somad", "/v1/stats", "/v1/jobs", "/convergence", "EventSource"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

// TestMetricsContentTypeAndHead: the exposition carries the Prometheus text
// content type on GET and HEAD alike, and HEAD serves no body.
func TestMetricsContentTypeAndHead(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	var v View
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs?wait=1", smallJob(17), &v); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	const wantCT = "text/plain; version=0.0.4; charset=utf-8"
	if ct := resp.Header.Get("Content-Type"); ct != wantCT {
		t.Errorf("GET content type = %q, want %q", ct, wantCT)
	}
	_, body := get(t, ts.URL+"/metrics")
	// Histogram expositions must close with the +Inf bucket.
	if !strings.Contains(body, `engine_solve_seconds_bucket{backend="soma",le="+Inf"} 1`) {
		t.Error("exposition missing the +Inf bucket of engine_solve_seconds")
	}

	head, err := http.Head(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer head.Body.Close()
	if head.StatusCode != http.StatusOK {
		t.Errorf("HEAD status %d", head.StatusCode)
	}
	if ct := head.Header.Get("Content-Type"); ct != wantCT {
		t.Errorf("HEAD content type = %q, want %q", ct, wantCT)
	}
	buf := make([]byte, 1)
	if n, _ := head.Body.Read(buf); n != 0 {
		t.Error("HEAD served a body")
	}
}
