package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// get fetches one URL and returns (status, body).
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestObservabilityEndpoints runs one job to completion and checks that the
// whole ops surface lights up: Prometheus families on /metrics, the per-job
// Perfetto trace, the extended /v1/stats payload, and the stdlib debug
// handlers.
func TestObservabilityEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	var v View
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs?wait=1", smallJob(9), &v); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	if v.State != StateDone || v.Result == nil {
		t.Fatalf("job finished %q, want done", v.State)
	}
	// Stored results are scrubbed of the wall-clock Telemetry section so
	// the daemon serves the same bytes `soma -json` prints.
	if v.Result.Telemetry != nil {
		t.Error("stored result carries a Telemetry section; want it scrubbed")
	}

	t.Run("metrics", func(t *testing.T) {
		code, body := get(t, ts.URL+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		for _, family := range []string{
			"soma_sa_moves_proposed_total", "sim_inc_proposals_total",
			"sim_eval_cache_misses_total", "engine_solve_seconds_bucket",
			`engine_solves_total{backend="soma",outcome="ok"} 1`,
			`somad_jobs_total{kind="soma",outcome="ok"} 1`,
		} {
			if !strings.Contains(body, family) {
				t.Errorf("exposition missing %s", family)
			}
		}
	})

	t.Run("trace", func(t *testing.T) {
		code, body := get(t, ts.URL+"/v1/jobs/"+v.ID+"/trace")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var tf struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal([]byte(body), &tf); err != nil {
			t.Fatalf("trace is not valid JSON: %v", err)
		}
		if len(tf.TraceEvents) == 0 {
			t.Fatal("trace has no events")
		}
		for _, want := range []string{`"solve"`, `"stage1"`, `"stage2"`} {
			if !strings.Contains(body, want) {
				t.Errorf("trace missing %s span", want)
			}
		}
		if code, _ := get(t, ts.URL+"/v1/jobs/job-999999/trace"); code != http.StatusNotFound {
			t.Errorf("unknown job trace: status %d, want 404", code)
		}
	})

	t.Run("stats", func(t *testing.T) {
		var st Stats
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if st.UptimeSeconds <= 0 {
			t.Errorf("uptime %v, want > 0", st.UptimeSeconds)
		}
		if st.Solves["soma"] != 1 {
			t.Errorf("solves %v, want soma:1", st.Solves)
		}
		if len(st.Metrics) == 0 {
			t.Error("stats carries no registry snapshot")
		}
		if st.QueueDepth != 0 || st.Jobs[StateQueued] != 0 {
			t.Errorf("queue depth %d / queued %d after drain, want 0/0",
				st.QueueDepth, st.Jobs[StateQueued])
		}
	})

	t.Run("debug", func(t *testing.T) {
		if code, _ := get(t, ts.URL+"/debug/vars"); code != http.StatusOK {
			t.Errorf("expvar: status %d", code)
		}
		if code, body := get(t, ts.URL+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
			t.Errorf("pprof cmdline: status %d", code)
		}
	})
}

// TestSweepTrace: sweep jobs serve their trace on the sweeps namespace, with
// every point on its own track.
func TestSweepTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var v View
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps?wait=1", smallSweep(), &v); code != http.StatusOK {
		t.Fatalf("sweep submit: status %d", code)
	}
	if v.State != StateDone {
		t.Fatalf("sweep finished %q (err %q), want done", v.State, v.Error)
	}
	code, body := get(t, ts.URL+"/v1/sweeps/"+v.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: status %d", code)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	for _, want := range []string{"point-000", "point-001"} {
		if !strings.Contains(body, want) {
			t.Errorf("trace missing %s track", want)
		}
	}
	var st Stats
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Solves["sweep"] != 1 {
		t.Errorf("solves %v, want sweep:1", st.Solves)
	}
}
