// Package soma is the end-to-end scheduling framework of Sec. V: a Buffer
// Allocator drives repeated two-stage explorations - stage 1 anneals the
// Layer-Fusion-related Attributes under the classical double-buffer DLSA,
// stage 2 freezes the LFA and anneals the DRAM Tensor Order and Living
// Durations - splitting the GBUF between the two buffer-hungry paradigms
// until the combined Energy^n x Delay^m cost stops improving.
package soma

import (
	"context"
	"errors"
	"fmt"
	"math"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/obs"
	"soma/internal/sa"
	"soma/internal/sim"
)

// Objective is the optimization goal Energy^N x Delay^M.
type Objective struct{ N, M float64 }

// EDP is the paper's default objective (n = m = 1).
func EDP() Objective { return Objective{N: 1, M: 1} }

// Params are the search hyper-parameters (framework configuration input).
type Params struct {
	// Beta1 scales stage-1 iterations: N1 = Beta1 x #layers (paper: 100).
	Beta1 int
	// Beta2 scales stage-2 iterations: N2 = Beta2 x #tensors
	// (paper: 1000; far smaller values already converge on our sizes).
	Beta2 int
	// Stage1MaxIters / Stage2MaxIters cap the stage budgets so very large
	// workloads (hundreds of layers, 10^5 tensors) stay tractable.
	Stage1MaxIters int
	Stage2MaxIters int
	// T0 / Alpha are the annealing temperatures.
	T0, Alpha float64
	// Seed makes runs reproducible.
	Seed int64
	// BufferStepFrac is the Buffer Allocator's per-iteration budget cut
	// (the paper's a% = 10%).
	BufferStepFrac float64
	// Patience stops the allocator after this many consecutive
	// non-improving iterations (the paper stops after 2).
	Patience int
	// Chains is the portfolio width: every annealing stage runs Chains
	// independently seeded chains (seed, seed+1, ...) and keeps the best
	// incumbent. <= 1 is the classic single-chain search.
	Chains int
	// Workers bounds the goroutines running portfolio chains. The best
	// schedule is a pure function of Seed and Chains - Workers only
	// changes wall-clock time. <= 1 runs the chains serially.
	Workers int
	// MinTile is the initial tiling granularity of stage 1's no-fusion
	// starting solution.
	MinTile int
	// Ablate disables individual design choices (Sec. VII ablations).
	Ablate Ablation
}

// Ablation switches off SoMa design features to quantify their value.
type Ablation struct {
	// NoFLC restricts the FLC Set to equal the DRAM Cut Set (no
	// weight-freeing fine-grained cuts), like the baseline.
	NoFLC bool
	// NoTiling freezes every tiling number at the initial granularity.
	NoTiling bool
	// NoStage2 skips the DLSA exploration stage.
	NoStage2 bool
	// NoAllocator runs a single two-stage pass with the full buffer
	// instead of the Buffer Allocator loop.
	NoAllocator bool
}

// PaperParams returns the paper's published hyper-parameters. Full runs take
// server-scale time; prefer DefaultParams for interactive use.
func PaperParams() Params {
	return Params{Beta1: 100, Beta2: 1000, Stage1MaxIters: 1 << 20, Stage2MaxIters: 1 << 20,
		T0: 0.25, Alpha: 4, Seed: 1, BufferStepFrac: 0.10, Patience: 2, MinTile: 1}
}

// DefaultParams returns laptop-scale parameters that preserve the paper's
// qualitative results.
func DefaultParams() Params {
	return Params{Beta1: 24, Beta2: 8, Stage1MaxIters: 4000, Stage2MaxIters: 12000,
		T0: 0.25, Alpha: 4, Seed: 1, BufferStepFrac: 0.10, Patience: 2, MinTile: 1}
}

// ProfileParams maps a named search profile (as used by the CLI -profile
// flag and the somad job API) to its parameter set; the empty name selects
// the default profile.
func ProfileParams(name string) (Params, error) {
	switch name {
	case "", "default":
		return DefaultParams(), nil
	case "fast":
		return FastParams(), nil
	case "paper":
		return PaperParams(), nil
	default:
		return Params{}, fmt.Errorf("soma: unknown profile %q (fast|default|paper)", name)
	}
}

// FastParams returns the smallest profile used by tests and smoke benches.
func FastParams() Params {
	p := DefaultParams()
	p.Beta1, p.Beta2 = 8, 3
	p.Stage1MaxIters, p.Stage2MaxIters = 1200, 2000
	p.Patience = 1
	return p
}

// StageResult bundles one stage's outcome.
type StageResult struct {
	Metrics *sim.Metrics
	Cost    float64
	Stats   sa.PortfolioStats
}

// Result is the framework output for one workload/hardware pair.
type Result struct {
	Encoding *core.Encoding
	Schedule *core.Schedule
	// Stage1 holds the best LFA solution under double-buffer DLSA;
	// Stage2 the final solution after DLSA exploration.
	Stage1, Stage2 StageResult
	// Cost is the final objective value (== Stage2.Cost).
	Cost float64
	// AllocIters is the number of Buffer Allocator iterations executed.
	AllocIters int
	// Stage1Budget is the winning stage-1 buffer budget.
	Stage1Budget int64
	// Cache is the evaluation-cache counter snapshot for the whole run.
	Cache sim.CacheStats
	// Stage1WallNS/Stage2WallNS are the wall-clock nanoseconds spent in
	// each stage summed over every allocator iteration (filled by
	// Run/RunContext; zero for a bare RunOnce). Wall time is measurement,
	// not search state: it never feeds back into the exploration.
	Stage1WallNS, Stage2WallNS int64
}

// Explorer runs SoMa for one graph on one hardware configuration.
type Explorer struct {
	G   *graph.Graph
	CS  *coresched.Scheduler
	Cfg hw.Config
	Obj Objective
	Par Params
	// Cache memoizes full schedule evaluations across stages, chains and
	// allocator iterations (the core-array scheduler keeps its own
	// per-tile cache underneath). Any sim.EvalCache tier works - soma.New
	// installs a private in-process sim.Cache, the somad daemon shares one
	// across jobs, and cluster workers plug in a tiered local+remote cache.
	Cache sim.EvalCache
	// Scope namespaces this explorer's cache keys. Canonical keys only
	// identify a schedule within one (graph, hardware) pair, so anyone
	// sharing one Cache across several explorers (the somad daemon) must
	// give each distinct workload/platform context a distinct scope. The
	// private cache soma.New installs needs none.
	Scope string
	// Progress, when non-nil, receives solver progress callbacks (stage
	// starts/finishes and per-chain incumbent improvements). It observes
	// the search only and never changes the result; portfolio chains invoke
	// it concurrently, so it must be safe for concurrent use.
	Progress func(Progress)
	// Reg, when non-nil, receives search telemetry: annealer move counters
	// per stage (soma_sa_*), incremental-evaluator counters (sim_inc_*),
	// the evaluation cache's counters (sim_eval_cache_*) and allocator
	// iteration counts. Like Progress it observes only - fixed-seed
	// results are byte-identical with or without it.
	Reg *obs.Registry
	// Track, when non-nil, is the trace track this explorer's stage spans
	// and best-cost counter samples land on.
	Track *obs.Track
	// Journal, when non-nil, collects each annealing chain's convergence
	// trajectory: one obs series per (stage, allocator iteration, chain).
	// Like Reg it is pass-through observation only - fixed-seed results are
	// byte-identical with or without it.
	Journal *obs.Journal
	// allocIter is the 1-based Buffer Allocator iteration currently
	// running, tagged onto progress events. RunContext writes it strictly
	// between RunOnce calls, so concurrent chain callbacks only ever read a
	// settled value.
	allocIter int
	// stage1WallNS/stage2WallNS accumulate per-stage wall time across the
	// allocator loop; RunContext folds them into the Result.
	stage1WallNS, stage2WallNS int64
}

// New builds an explorer. The core-array scheduler cache and the evaluation
// cache are shared across all stages and allocator iterations.
func New(g *graph.Graph, cfg hw.Config, obj Objective, par Params) *Explorer {
	return &Explorer{G: g, CS: coresched.New(cfg), Cfg: cfg, Obj: obj, Par: par,
		Cache: sim.NewCache(0)}
}

// portfolio normalizes the Params' portfolio knobs.
func (e *Explorer) portfolio() sa.PortfolioConfig {
	return sa.PortfolioConfig{Chains: e.Par.Chains, Workers: e.Par.Workers}
}

// stageJournal hands a stage's portfolio each chain's convergence series,
// keyed by the current allocator iteration; nil when journaling is off.
func (e *Explorer) stageJournal(stage string) func(int) *obs.Series {
	if e.Journal == nil {
		return nil
	}
	j, iter := e.Journal, e.allocIter
	return func(chain int) *obs.Series { return j.Series(stage, iter, chain) }
}

// cost evaluates a schedule under a stage budget, returning +Inf for
// infeasible or deadlocked candidates together with the metrics when
// available.
func (e *Explorer) cost(s *core.Schedule, budget int64) (float64, *sim.Metrics) {
	m, err := sim.CachedEvaluate(e.Cache, s, e.CS, sim.Options{BufferBudget: budget, CacheScope: e.Scope})
	if err != nil {
		return math.Inf(1), nil
	}
	if !m.BufferOK {
		return math.Inf(1), m
	}
	return m.Cost(e.Obj.N, e.Obj.M), m
}

// Run executes the full Buffer Allocator loop (Sec. V-B): iteration 1 gives
// stage 1 the whole GBUF; subsequent iterations shrink the stage-1 budget by
// BufferStepFrac of the first iteration's peak usage, and the loop stops
// after Patience consecutive iterations without improving the overall cost.
func (e *Explorer) Run() (*Result, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: canceling ctx stops the
// annealing chains within a few dozen iterations and RunContext returns
// ctx.Err() (a canceled exploration yields no result, even if earlier
// allocator iterations finished - callers wanting partial results should run
// iterations themselves via RunOnce).
func (e *Explorer) RunContext(ctx context.Context) (*Result, error) {
	full := e.Cfg.GBufBytes
	sim.ExportCacheMetrics(e.Cache, e.Reg)
	e.stage1WallNS, e.stage2WallNS = 0, 0
	allocIters := e.Reg.Counter("soma_alloc_iters_total",
		"Buffer Allocator iterations executed.")
	finish := func(r *Result) *Result {
		if e.Cache != nil {
			r.Cache = e.Cache.Stats()
		}
		r.Stage1WallNS, r.Stage2WallNS = e.stage1WallNS, e.stage2WallNS
		allocIters.Add(int64(r.AllocIters))
		return r
	}
	e.allocIter = 1
	best, err := e.RunOnce(ctx, full, e.Par.Seed)
	if err != nil {
		return nil, err
	}
	best.AllocIters = 1
	best.Stage1Budget = full
	if e.Par.Ablate.NoAllocator {
		return finish(best), nil
	}

	step := int64(e.Par.BufferStepFrac * float64(best.Stage1.Metrics.PeakBufferBytes))
	if step <= 0 {
		return finish(best), nil
	}
	bad := 0
	for k := 1; ; k++ {
		budget := best.Stage1.Metrics.PeakBufferBytes - int64(k)*step
		if budget <= 0 {
			break
		}
		e.allocIter = k + 1
		cand, err := e.RunOnce(ctx, budget, e.Par.Seed+int64(k))
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if err != nil {
			bad++
		} else if cand.Cost < best.Cost {
			cand.AllocIters = best.AllocIters + 1
			cand.Stage1Budget = budget
			best = cand
			bad = 0
		} else {
			bad++
		}
		best.AllocIters++
		if bad >= e.Par.Patience {
			break
		}
	}
	return finish(best), nil
}

// RunOnce performs a single two-stage exploration with the given stage-1
// buffer budget. Canceling ctx aborts the exploration with ctx.Err().
func (e *Explorer) RunOnce(ctx context.Context, stage1Budget int64, seed int64) (*Result, error) {
	enc, s1, err := e.RunStage1(ctx, stage1Budget, seed)
	if err != nil {
		return nil, err
	}
	sched, err := core.Parse(e.G, enc)
	if err != nil {
		return nil, fmt.Errorf("soma: reparsing stage-1 winner: %w", err)
	}
	if e.Par.Ablate.NoStage2 {
		return &Result{Encoding: enc, Schedule: sched,
			Stage1: s1, Stage2: s1, Cost: s1.Cost}, nil
	}
	final, s2 := e.RunStage2(ctx, sched, seed)
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	return &Result{
		Encoding: enc,
		Schedule: final,
		Stage1:   s1,
		Stage2:   s2,
		Cost:     s2.Cost,
	}, nil
}

// ErrNoFeasible is returned when not even the initial no-fusion encoding can
// be scheduled within the budget.
var ErrNoFeasible = errors.New("soma: no feasible schedule found")
