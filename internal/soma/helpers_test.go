package soma

import "math/rand"

// newRand gives tests a deterministic operator stream.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
