package soma

import (
	"context"
	"math"
	"testing"

	"soma/internal/core"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/sim"
)

func sh(n, c, h, w int) graph.Shape { return graph.Shape{N: n, C: c, H: h, W: w} }

func kr(kh, kw, s, sw, ph, pw int) graph.Kernel {
	return graph.Kernel{KH: kh, KW: kw, SH: s, SW: sw, PH: ph, PW: pw}
}

// testNet is a 6-layer CNN with a residual join: enough structure for all
// LFA operators to fire.
func testNet(t testing.TB) *graph.Graph {
	g := graph.New("t6", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh(1, 16, 56, 56)})
	c1 := g.Add(graph.Layer{Name: "c1", Kind: graph.Conv, Deps: []graph.Dep{{Producer: in}},
		Out: sh(1, 32, 56, 56), K: kr(3, 3, 1, 1, 1, 1), WeightBytes: 16 * 32 * 9, Ops: 2 * 16 * 32 * 9 * 56 * 56})
	c2 := g.Add(graph.Layer{Name: "c2", Kind: graph.Conv, Deps: []graph.Dep{{Producer: c1}},
		Out: sh(1, 32, 56, 56), K: kr(3, 3, 1, 1, 1, 1), WeightBytes: 32 * 32 * 9, Ops: 2 * 32 * 32 * 9 * 56 * 56})
	c3 := g.Add(graph.Layer{Name: "c3", Kind: graph.Conv, Deps: []graph.Dep{{Producer: c2}},
		Out: sh(1, 32, 56, 56), K: kr(1, 1, 1, 1, 0, 0), WeightBytes: 32 * 32, Ops: 2 * 32 * 32 * 56 * 56})
	ad := g.Add(graph.Layer{Name: "add", Kind: graph.Eltwise, Deps: []graph.Dep{{Producer: c3}, {Producer: c1}},
		Out: sh(1, 32, 56, 56), Ops: 32 * 56 * 56})
	p := g.Add(graph.Layer{Name: "pool", Kind: graph.Pool, Deps: []graph.Dep{{Producer: ad}},
		Out: sh(1, 32, 28, 28), K: kr(2, 2, 2, 2, 0, 0), Ops: 32 * 28 * 28 * 4})
	g.Add(graph.Layer{Name: "c4", Kind: graph.Conv, Deps: []graph.Dep{{Producer: p}},
		Out: sh(1, 64, 28, 28), K: kr(3, 3, 1, 1, 1, 1), WeightBytes: 32 * 64 * 9, Ops: 2 * 32 * 64 * 9 * 28 * 28})
	if err := g.Validate(); err != nil {
		t.Fatalf("testNet: %v", err)
	}
	return g
}

func TestStage1ImprovesOnNoFusion(t *testing.T) {
	g := testNet(t)
	e := New(g, hw.Edge(), EDP(), FastParams())
	// Cost of the unfused initial solution.
	init, err := core.Parse(g, core.DefaultEncoding(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	initCost, _ := e.cost(init, e.Cfg.GBufBytes)
	enc, s1, err := e.RunStage1(context.Background(), e.Cfg.GBufBytes, 1)
	if err != nil {
		t.Fatalf("stage1: %v", err)
	}
	if err := enc.Check(g); err != nil {
		t.Fatalf("stage1 returned illegal encoding: %v", err)
	}
	if s1.Cost > initCost {
		t.Fatalf("stage1 worse than init: %g > %g", s1.Cost, initCost)
	}
	if !s1.Metrics.BufferOK {
		t.Fatal("stage1 winner exceeds buffer")
	}
	// On a fusable CNN the search should actually fuse something.
	if enc.NumLGs() >= len(enc.Order) {
		t.Fatalf("no fusion found: %d LGs for %d layers", enc.NumLGs(), len(enc.Order))
	}
}

func TestStage2NeverWorseThanStage1(t *testing.T) {
	g := testNet(t)
	e := New(g, hw.Edge(), EDP(), FastParams())
	enc, s1, err := e.RunStage1(context.Background(), e.Cfg.GBufBytes, 2)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.Parse(g, enc)
	if err != nil {
		t.Fatal(err)
	}
	final, s2 := e.RunStage2(context.Background(), sched, 2)
	if s2.Cost > s1.Cost*1.0001 {
		t.Fatalf("stage2 regressed: %g > %g", s2.Cost, s1.Cost)
	}
	if !final.OrderValid() || !final.LivingValid() {
		t.Fatal("stage2 produced an invalid DLSA")
	}
	if !s2.Metrics.BufferOK {
		t.Fatal("stage2 winner exceeds buffer")
	}
}

func TestRunEndToEnd(t *testing.T) {
	g := testNet(t)
	e := New(g, hw.Edge(), EDP(), FastParams())
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Cost <= 0 || math.IsInf(res.Cost, 1) {
		t.Fatalf("cost = %g", res.Cost)
	}
	if res.Cost != res.Stage2.Cost {
		t.Fatal("result cost must be the stage-2 cost")
	}
	if res.AllocIters < 1 {
		t.Fatalf("allocator iterations = %d", res.AllocIters)
	}
	if res.Stage2.Metrics.Utilization > res.Stage2.Metrics.TheoreticalMaxUtil {
		t.Fatal("utilization above the no-stall bound")
	}
	// The final schedule must replay to the same metrics.
	m, err := sim.Evaluate(res.Schedule, e.CS, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.LatencyNS-res.Stage2.Metrics.LatencyNS) > 1e-6*res.Stage2.Metrics.LatencyNS {
		t.Fatalf("replay mismatch: %g vs %g", m.LatencyNS, res.Stage2.Metrics.LatencyNS)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	g := testNet(t)
	p := FastParams()
	a, err := New(g, hw.Edge(), EDP(), p).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, hw.Edge(), EDP(), p).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("same seed diverged: %g vs %g", a.Cost, b.Cost)
	}
}

func TestTinyBufferInfeasible(t *testing.T) {
	g := testNet(t)
	cfg := hw.Edge()
	cfg.GBufBytes = 1 << 10 // 1 KB: nothing fits
	e := New(g, cfg, EDP(), FastParams())
	if _, err := e.Run(); err == nil {
		t.Fatal("1KB buffer must be infeasible")
	}
}

func TestObjectiveExponentsChangeWinner(t *testing.T) {
	g := testNet(t)
	p := FastParams()
	edp, err := New(g, hw.Edge(), EDP(), p).Run()
	if err != nil {
		t.Fatal(err)
	}
	lat, err := New(g, hw.Edge(), Objective{N: 0, M: 1}, p).Run()
	if err != nil {
		t.Fatal(err)
	}
	// A latency-only objective can never find a *slower* schedule than
	// what it reports; both must be feasible and positive.
	if lat.Stage2.Metrics.LatencyNS <= 0 || edp.Stage2.Metrics.LatencyNS <= 0 {
		t.Fatal("non-positive latency")
	}
}

func TestMutateLFAPreservesLegality(t *testing.T) {
	g := testNet(t)
	e := New(g, hw.Edge(), EDP(), FastParams())
	enc := core.DefaultEncoding(g, 1)
	rngEnc := enc
	for i := 0; i < 300; i++ {
		c, kind, ok := e.mutateLFAKind(rngEnc, newRand(int64(i)))
		if kind == "" {
			t.Fatalf("iteration %d: unnamed operator", i)
		}
		if !ok {
			continue
		}
		if err := c.Check(g); err != nil {
			t.Fatalf("iteration %d: illegal encoding: %v", i, err)
		}
		rngEnc = c
	}
}

func TestSizePickerPrefersBigTensors(t *testing.T) {
	g := testNet(t)
	s, err := core.Parse(g, core.DefaultEncoding(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	p := newSizePicker(s)
	rng := newRand(5)
	counts := make(map[int]int)
	for i := 0; i < 5000; i++ {
		counts[p.pick(rng)]++
	}
	// The largest tensor must be sampled more often than the smallest.
	var big, small int
	var bigBytes, smallBytes int64 = -1, 1 << 62
	for i := range s.Tensors {
		if s.Tensors[i].Bytes > bigBytes {
			bigBytes, big = s.Tensors[i].Bytes, i
		}
		if s.Tensors[i].Bytes < smallBytes {
			smallBytes, small = s.Tensors[i].Bytes, i
		}
	}
	if bigBytes > 2*smallBytes && counts[big] <= counts[small] {
		t.Fatalf("size-proportional sampling broken: big=%d small=%d", counts[big], counts[small])
	}
}
