package soma

import (
	"bytes"
	"context"
	"testing"

	"soma/internal/hw"
	"soma/internal/models"
	"soma/internal/sim"
)

// portfolioParams is a trimmed fast profile: small enough that running
// several ResNet-50 portfolios stays test-suite friendly, large enough that
// all operators fire and the portfolio chains genuinely diverge.
func portfolioParams(chains, workers int) Params {
	p := FastParams()
	p.Beta1, p.Beta2 = 3, 2
	p.Stage1MaxIters, p.Stage2MaxIters = 300, 500
	p.Chains = chains
	p.Workers = workers
	return p
}

// TestPortfolioWorkerCountInvariance is the tentpole determinism guarantee:
// with a fixed seed, the serialized best schedule is byte-identical no
// matter how many workers execute the portfolio (ResNet-50, edge platform).
func TestPortfolioWorkerCountInvariance(t *testing.T) {
	g := models.ResNet50(1)
	var want []byte
	for _, workers := range []int{1, 8} {
		res, err := New(g, hw.Edge(), EDP(), portfolioParams(4, workers)).Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := res.Schedule.WriteScheme(&buf); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("workers=8 produced a different serialized schedule (%d vs %d bytes)",
				len(want), buf.Len())
		}
	}
}

// TestPortfolioNeverWorseThanSerial: chain 0 of a portfolio stage runs the
// exact serial chain, so within one stage the portfolio's best cost can only
// improve on the serial result. (The guarantee is per stage: across a full
// Run a different stage-1 winner changes what stage 2 and the Buffer
// Allocator see, so end-to-end costs are not comparable.)
func TestPortfolioNeverWorseThanSerial(t *testing.T) {
	g := testNet(t)
	serial := New(g, hw.Edge(), EDP(), portfolioParams(1, 1))
	_, s1Serial, err := serial.RunStage1(context.Background(), serial.Cfg.GBufBytes, serial.Par.Seed)
	if err != nil {
		t.Fatal(err)
	}
	pf := New(g, hw.Edge(), EDP(), portfolioParams(6, 2))
	_, s1Pf, err := pf.RunStage1(context.Background(), pf.Cfg.GBufBytes, pf.Par.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if s1Pf.Cost > s1Serial.Cost {
		t.Fatalf("stage-1 portfolio regressed: %g > serial %g", s1Pf.Cost, s1Serial.Cost)
	}
	if st := s1Pf.Stats; st.Chains != 6 || len(st.PerChain) != 6 {
		t.Fatalf("stage-1 portfolio stats wrong: %+v", st)
	}

	res, err := pf.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Stage2.Stats; st.Chains != 6 || len(st.PerChain) != 6 {
		t.Fatalf("stage-2 portfolio stats wrong: %+v", st)
	}
}

// TestRunReportsCacheHits: a standard run must surface non-zero cache
// counters, and the cached winner metrics must equal a fresh evaluation.
func TestRunReportsCacheHits(t *testing.T) {
	g := testNet(t)
	e := New(g, hw.Edge(), EDP(), portfolioParams(2, 1))
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Hits > 0 means the reported hit rate is > 0 (report.HitRate formats
	// these same counters for the CLIs).
	if res.Cache.Hits == 0 || res.Cache.Misses == 0 {
		t.Fatalf("expected live cache counters, got %+v", res.Cache)
	}
	fresh, err := sim.Evaluate(res.Schedule, e.CS, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Stage2.Metrics
	if fresh.LatencyNS != m.LatencyNS || fresh.EnergyPJ != m.EnergyPJ {
		t.Fatalf("cached winner metrics diverge from fresh evaluation: %g/%g vs %g/%g",
			m.LatencyNS, m.EnergyPJ, fresh.LatencyNS, fresh.EnergyPJ)
	}
}

// TestPortfolioMatchesSerialDefault: Chains=0 (the default) must behave
// exactly like the pre-portfolio serial search for the same seed.
func TestPortfolioMatchesSerialDefault(t *testing.T) {
	g := testNet(t)
	a, err := New(g, hw.Edge(), EDP(), FastParams()).Run()
	if err != nil {
		t.Fatal(err)
	}
	p := FastParams()
	p.Chains, p.Workers = 1, 1
	b, err := New(g, hw.Edge(), EDP(), p).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("explicit serial portfolio diverged from default: %g vs %g", a.Cost, b.Cost)
	}
}
