package soma

import (
	"soma/internal/core"
	"soma/internal/graph"
	"soma/internal/hw"
)

// QuantumCycles is the KC-parallelism work quantum used by the heuristic
// tiling rule: a tile should hold roughly this many cycles of full-array
// work. Under KC mapping the spatial extent is "free", so layers with more
// kernel-channel work per spatial element tile finer. The value is
// calibrated so ResNet-50 stages land at the paper's reported Cocco tiling
// numbers (8-16 at batch 1) and the per-network tile counts match the
// Sec. VI-B averages.
const QuantumCycles = 2048

// HeuristicTile is the conservative tiling-number heuristic shared by the
// Cocco baseline (its only tiling policy) and SoMa's stage-1 initial
// solution (the paper's "minimum granularity required for the core array to
// perform parallel computation"). It combines:
//
//   - the KC-parallelism work quantum (one quantum of MACs per tile), and
//   - a buffer-fit refinement: the double-buffered tileable working set
//     (largest fmap slab, per-sample weight slice, or global operand) must
//     fit what remains of a conservative quarter-GBUF share after resident
//     weights.
//
// The result is clamped to the group's splittable extent.
func HeuristicTile(g *graph.Graph, cfg hw.Config, layers []graph.LayerID) int {
	var resident, tileable int64
	var maxMACs float64
	maxSplit := 1 << 30
	for _, id := range layers {
		l := g.Layer(id)
		if l.WeightsPerSample {
			tileable = max64(tileable, l.WeightBytes)
		} else {
			resident += l.WeightBytes
		}
		// A tile's working set holds its output slab plus the input
		// slabs of every operand (global operands ride whole).
		working := l.Out.Bytes(g.ElemBytes)
		for _, d := range l.Deps {
			p := g.Layer(d.Producer)
			working += p.Out.Bytes(g.ElemBytes)
		}
		tileable = max64(tileable, working)
		if l.Kind.OnPEArray() {
			if m := float64(l.Ops) / 2; m > maxMACs {
				maxMACs = m
			}
		}
		if sp := l.Out.N * l.Out.H * l.Out.W; sp < maxSplit {
			maxSplit = sp
		}
	}

	// KC-parallelism quantum.
	quantum := float64(cfg.Cores*cfg.MACsPerCore()) * QuantumCycles
	t := 1
	for float64(t) < maxMACs/quantum {
		t *= 2
	}

	// Buffer fit (closed form - resident weights cannot be tiled away,
	// so the available share is floored rather than looping forever).
	budget := cfg.GBufBytes / 4
	avail := budget - resident
	if floor := budget / 8; avail < floor {
		avail = floor
	}
	need := 2 * tileable // double buffering
	for int64(t) < (need+avail-1)/avail {
		t *= 2
	}

	if t > maxSplit {
		t = maxSplit
	}
	if t < 1 {
		t = 1
	}
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// InitialEncoding builds stage 1's starting solution: every layer forms its
// own FLG and LG at its heuristic minimum granularity (never below minTile).
func InitialEncoding(g *graph.Graph, cfg hw.Config, minTile int) *core.Encoding {
	e := core.DefaultEncoding(g, 1)
	for i, id := range e.Order {
		t := HeuristicTile(g, cfg, []graph.LayerID{id})
		if t < minTile {
			t = minTile
		}
		e.Tile[i] = t
	}
	return e
}
