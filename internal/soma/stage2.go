package soma

import (
	"context"
	"math"
	"math/rand"
	"time"

	"soma/internal/core"
	"soma/internal/sa"
	"soma/internal/sim"
)

// RunStage2 anneals the DLSA (Sec. V-C2) of a frozen LFA solution: the
// initial state is the double-buffer DLSA the parser installed; operators
// move a DRAM tensor to another legal order position or jitter a Living
// Duration (Start for loads, End for stores). Tensors are selected with
// probability proportional to their size, as larger tensors move the needle
// more (paper rule). Stage 2 may use the whole GBUF: the allocator's budget
// split only constrains stage 1. Canceling ctx stops the annealer early and
// returns the incumbent; RunOnce turns that into ctx.Err() for its caller.
//
// The stage runs on the move-aware annealer with sim.Incremental underneath:
// every DLSA operator perturbs the schedule in place, cache misses simulate
// only the suffix of the schedule the move can affect, and rejected moves
// roll back without re-simulation. The rng draw sequence, the cache key
// stream, and the simulated metrics are all identical to the historical
// clone-and-replay implementation, so fixed-seed results are byte-stable
// across the switch.
func (e *Explorer) RunStage2(ctx context.Context, sched *core.Schedule, seed int64) (*core.Schedule, StageResult) {
	e.notify(Progress{Stage: "stage2", Kind: "start", AllocIter: e.allocIter,
		Budget: e.Cfg.GBufBytes})
	start := time.Now()
	span := e.Track.Start("stage2", "soma").Arg("alloc_iter", e.allocIter)
	defer func() {
		e.stage2WallNS += time.Since(start).Nanoseconds()
		span.End()
	}()
	iters := e.Par.Beta2 * len(sched.Tensors)
	if iters > e.Par.Stage2MaxIters {
		iters = e.Par.Stage2MaxIters
	}
	picker := newSizePicker(sched)

	// Stage 2 never changes the tiles, so their costs are evaluated once
	// and reused across every candidate DLSA; the evaluation cache then
	// short-circuits revisited DLSA points entirely.
	tc := sim.PrecomputeTileCosts(sched, e.CS)
	cfg := sa.Config{T0: e.Par.T0, Alpha: e.Par.Alpha, Iters: iters, Seed: seed + 7919,
		Telemetry: sa.NewTelemetry(e.Reg, "stage2")}
	pf := e.portfolio()
	pf.OnImprove = e.improveHook("stage2")
	pf.Journal = e.stageJournal("stage2")
	incTel := sim.NewIncTelemetry(e.Reg)
	best, bestCost, stats := sa.RunMovesPortfolioCtx[*core.Schedule](ctx, cfg, pf,
		func(int) sa.MoveState[*core.Schedule] {
			// Chains perturb their own schedule clone and incremental
			// evaluator; the tile costs, size picker, evaluation cache
			// and telemetry counters are shared (all safe for
			// concurrent use).
			return newStage2Moves(e, sched.Clone(), picker, tc, incTel)
		})
	_, m := e.cost(best, e.Cfg.GBufBytes)
	e.notify(Progress{Stage: "stage2", Kind: "done", AllocIter: e.allocIter, Cost: bestCost})
	return best, StageResult{Metrics: m, Cost: bestCost, Stats: stats}
}

// stage2Moves is the DLSA search's sa.MoveState: one in-place mutating
// schedule backed by an incremental evaluator, with every proposal memoized
// through the explorer's evaluation cache under the exact key the full
// evaluator would use. A cache hit skips even the suffix re-simulation; a
// miss runs sim.Incremental.EvaluateProposal as the eval callback.
type stage2Moves struct {
	e      *Explorer
	picker *sizePicker
	inc    *sim.Incremental
	budget int64
	// kind names the operator the last productive Propose drew, for the
	// convergence journal's per-kind tallies (sa.MoveKinder).
	kind string
}

func newStage2Moves(e *Explorer, s *core.Schedule, picker *sizePicker, tc *sim.TileCosts,
	tel *sim.IncTelemetry) *stage2Moves {
	inc, err := sim.NewIncremental(s, e.CS, sim.Options{
		BufferBudget: e.Cfg.GBufBytes, TileCosts: tc, CacheScope: e.Scope, Telemetry: tel})
	if err != nil {
		// Only reachable on tile-cost/schedule shape mismatch, which a
		// parse-derived schedule cannot produce.
		panic("soma: stage-2 incremental evaluator: " + err.Error())
	}
	return &stage2Moves{e: e, picker: picker, inc: inc, budget: e.Cfg.GBufBytes}
}

// key is the evaluation-cache key of the live schedule - the same bytes
// Cache.Evaluate derives, so stage-2 points stay interchangeable with every
// other cache user (the final winner re-evaluation, the somad daemon).
func (ms *stage2Moves) key() string {
	return sim.Key(ms.e.Scope+ms.inc.Schedule().CanonicalKey(), ms.budget)
}

// objective folds metrics into the annealing cost (+Inf for deadlocked or
// budget-violating schedules), mirroring Explorer.cost.
func (ms *stage2Moves) objective(m *sim.Metrics, err error) float64 {
	if err != nil || !m.BufferOK {
		return math.Inf(1)
	}
	return m.Cost(ms.e.Obj.N, ms.e.Obj.M)
}

func (ms *stage2Moves) InitCost() float64 {
	m, err := sim.Memoize(ms.e.Cache, ms.key(), ms.inc.Metrics)
	return ms.objective(m, err)
}

// Propose applies one random DLSA operator in place and evaluates it. The
// operator mix and its rng draw order replicate the historical mutateDLSA
// exactly (picker draw, operator coin, then the operator's own draws).
func (ms *stage2Moves) Propose(rng *rand.Rand) (float64, bool) {
	s := ms.inc.Schedule()
	if len(s.Tensors) == 0 {
		return 0, false
	}
	id := ms.picker.pick(rng)
	t := &s.Tensors[id]
	ok := false
	if rng.Intn(2) == 0 {
		// Change DRAM Tensor Order: move the tensor elsewhere.
		ms.kind = "move-tensor"
		ok = ms.inc.MoveTensor(ms.inc.PosOf(id), rng.Intn(len(s.Order)))
	} else {
		ms.kind = "duration"
		// Change Living Duration: jitter Start (loads) or End (stores).
		// The jitter span scales with the schedule length so prefetches
		// can reach far-away DRAM-idle windows on large tile sequences.
		span := s.NumTiles() / 16
		if span < 8 {
			span = 8
		}
		delta := 1 + rng.Intn(span)
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		if t.Kind.IsLoad() {
			ok = ms.inc.SetStart(id, t.Start+delta)
		} else {
			ok = ms.inc.SetEnd(id, t.End+delta)
		}
	}
	if !ok {
		return 0, false
	}
	m, err := sim.Memoize(ms.e.Cache, ms.key(), ms.inc.EvaluateProposal)
	return ms.objective(m, err), true
}

func (ms *stage2Moves) Accept() { ms.inc.Accept() }
func (ms *stage2Moves) Reject() { ms.inc.Reject() }

// MoveKind implements sa.MoveKinder for the convergence journal.
func (ms *stage2Moves) MoveKind() string { return ms.kind }

// IncCounts implements sa.IncCountSource: the incremental evaluator's
// cumulative resumed/fallback proposal counts, journaled so convergence
// samples carry the incremental-vs-fallback ratio over the run. The split
// depends on shared-cache warmth, so it is deterministic only for serial
// runs (the counters never steer the search either way).
func (ms *stage2Moves) IncCounts() (resumed, fallbacks int64) {
	st := ms.inc.Stats()
	return st.Resumed, st.Fallbacks
}

// Snapshot clones the live schedule: the annealer retains it as the
// incumbent while the state keeps mutating.
func (ms *stage2Moves) Snapshot() *core.Schedule { return ms.inc.Schedule().Clone() }

// sizePicker samples tensor IDs proportionally to their byte size.
type sizePicker struct {
	cum []int64
}

func newSizePicker(s *core.Schedule) *sizePicker {
	cum := make([]int64, len(s.Tensors))
	var acc int64
	for i := range s.Tensors {
		acc += s.Tensors[i].Bytes
		cum[i] = acc
	}
	return &sizePicker{cum: cum}
}

func (p *sizePicker) pick(rng *rand.Rand) int {
	total := p.cum[len(p.cum)-1]
	if total <= 0 {
		return rng.Intn(len(p.cum))
	}
	x := rng.Int63n(total)
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
