package soma

import (
	"context"
	"math"
	"math/rand"

	"soma/internal/core"
	"soma/internal/sa"
	"soma/internal/sim"
)

// RunStage2 anneals the DLSA (Sec. V-C2) of a frozen LFA solution: the
// initial state is the double-buffer DLSA the parser installed; operators
// move a DRAM tensor to another legal order position or jitter a Living
// Duration (Start for loads, End for stores). Tensors are selected with
// probability proportional to their size, as larger tensors move the needle
// more (paper rule). Stage 2 may use the whole GBUF: the allocator's budget
// split only constrains stage 1. Canceling ctx stops the annealer early and
// returns the incumbent; RunOnce turns that into ctx.Err() for its caller.
func (e *Explorer) RunStage2(ctx context.Context, sched *core.Schedule, seed int64) (*core.Schedule, StageResult) {
	e.notify(Progress{Stage: "stage2", Kind: "start", AllocIter: e.allocIter,
		Budget: e.Cfg.GBufBytes})
	iters := e.Par.Beta2 * len(sched.Tensors)
	if iters > e.Par.Stage2MaxIters {
		iters = e.Par.Stage2MaxIters
	}
	picker := newSizePicker(sched)

	// Stage 2 never changes the tiles, so their costs are evaluated once
	// and reused across every candidate DLSA; the evaluation cache then
	// short-circuits revisited DLSA points entirely.
	tc := sim.PrecomputeTileCosts(sched, e.CS)
	costS := func(s *core.Schedule) float64 {
		m, err := e.Cache.Evaluate(s, e.CS, sim.Options{BufferBudget: e.Cfg.GBufBytes,
			TileCosts: tc, CacheScope: e.Scope})
		if err != nil || !m.BufferOK {
			return math.Inf(1)
		}
		return m.Cost(e.Obj.N, e.Obj.M)
	}
	cfg := sa.Config{T0: e.Par.T0, Alpha: e.Par.Alpha, Iters: iters, Seed: seed + 7919}
	pf := e.portfolio()
	pf.OnImprove = e.improveHook("stage2")
	best, bestCost, stats := sa.RunPortfolioCtx(ctx, cfg, pf, sched, costS, func(s *core.Schedule, rng *rand.Rand) (*core.Schedule, bool) {
		c := s.Clone()
		return c, mutateDLSA(c, picker, rng)
	})
	_, m := e.cost(best, e.Cfg.GBufBytes)
	e.notify(Progress{Stage: "stage2", Kind: "done", AllocIter: e.allocIter, Cost: bestCost})
	return best, StageResult{Metrics: m, Cost: bestCost, Stats: stats}
}

// mutateDLSA applies one random DLSA operator in place.
func mutateDLSA(s *core.Schedule, picker *sizePicker, rng *rand.Rand) bool {
	if len(s.Tensors) == 0 {
		return false
	}
	id := picker.pick(rng)
	t := &s.Tensors[id]
	if rng.Intn(2) == 0 {
		// Change DRAM Tensor Order: move the tensor elsewhere.
		from := -1
		for p, o := range s.Order {
			if o == id {
				from = p
				break
			}
		}
		return s.MoveTensor(from, rng.Intn(len(s.Order)))
	}
	// Change Living Duration: jitter Start (loads) or End (stores). The
	// jitter span scales with the schedule length so prefetches can reach
	// far-away DRAM-idle windows on large tile sequences.
	span := s.NumTiles() / 16
	if span < 8 {
		span = 8
	}
	delta := 1 + rng.Intn(span)
	if rng.Intn(2) == 0 {
		delta = -delta
	}
	if t.Kind.IsLoad() {
		old := t.Start
		return s.SetStart(id, t.Start+delta) && s.Tensors[id].Start != old
	}
	old := t.End
	return s.SetEnd(id, t.End+delta) && s.Tensors[id].End != old
}

// sizePicker samples tensor IDs proportionally to their byte size.
type sizePicker struct {
	cum []int64
}

func newSizePicker(s *core.Schedule) *sizePicker {
	cum := make([]int64, len(s.Tensors))
	var acc int64
	for i := range s.Tensors {
		acc += s.Tensors[i].Bytes
		cum[i] = acc
	}
	return &sizePicker{cum: cum}
}

func (p *sizePicker) pick(rng *rand.Rand) int {
	total := p.cum[len(p.cum)-1]
	if total <= 0 {
		return rng.Intn(len(p.cum))
	}
	x := rng.Int63n(total)
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
