package soma

// Progress is one solver progress callback delivered to Explorer.Progress
// (and, with Stage "cocco", to the baseline's equivalent hook). The solver
// reports three kinds of observations:
//
//   - "start": an annealing stage is about to run (Stage, AllocIter, Budget)
//   - "improve": one portfolio chain improved its incumbent (Chain, Iter,
//     Cost); chains run concurrently, so improve callbacks may arrive from
//     multiple goroutines interleaved
//   - "done": the stage finished with its final best Cost
//
// Callbacks observe the search only - they never influence the explored
// space or the returned result, so a fixed seed yields byte-identical
// results with or without a Progress hook installed.
type Progress struct {
	// Stage is "stage1", "stage2" or "cocco".
	Stage string
	// Kind is "start", "improve" or "done".
	Kind string
	// AllocIter is the 1-based Buffer Allocator iteration the stage runs
	// under (0 when a stage is invoked outside the allocator loop).
	AllocIter int
	// Budget is the stage-1 buffer budget in bytes (start events only).
	Budget int64
	// Chain / Iter / Cost locate an improvement: portfolio chain index,
	// iteration within the chain, and the chain's new best cost.
	Chain int
	Iter  int
	Cost  float64
}

// notify delivers a progress event if a hook is installed.
func (e *Explorer) notify(p Progress) {
	if e.Progress != nil {
		e.Progress(p)
	}
}

// improveHook adapts the portfolio's per-chain improvement callback to a
// stage-tagged Progress event (and, when tracing, a best-cost counter
// sample); it returns nil when no observer is installed so the annealer
// skips callback plumbing entirely.
func (e *Explorer) improveHook(stage string) func(chain, iter int, cost float64) {
	if e.Progress == nil && e.Track == nil {
		return nil
	}
	return func(chain, iter int, cost float64) {
		if e.Progress != nil {
			e.Progress(Progress{Stage: stage, Kind: "improve", AllocIter: e.allocIter,
				Chain: chain, Iter: iter, Cost: cost})
		}
		e.Track.Counter("best_cost/"+stage, cost)
	}
}
