package soma

import (
	"context"
	"math"
	"math/rand"
	"time"

	"soma/internal/core"
	"soma/internal/sa"
	"soma/internal/sim"
)

// encKeyPrefix separates encoding-level cache entries from schedule-level
// ones (an encoding key is a strict prefix of its schedules' keys).
const encKeyPrefix = "enc:"

// RunStage1 anneals the LFA (Sec. V-C1). The initial solution is the
// no-fusion encoding (every layer its own FLG and LG) at minimum tiling
// granularity; the DLSA stays the classical double-buffer strategy during
// this stage. Operators: change computing order, multiply/divide an FLG's
// tiling number by two, add/delete an FLC, add/delete a DRAM cut.
// With Params.Chains > 1 the stage runs a portfolio of independently seeded
// chains and keeps the best incumbent. Canceling ctx aborts the stage with
// ctx.Err().
func (e *Explorer) RunStage1(ctx context.Context, budget int64, seed int64) (*core.Encoding, StageResult, error) {
	e.notify(Progress{Stage: "stage1", Kind: "start", AllocIter: e.allocIter, Budget: budget})
	start := time.Now()
	span := e.Track.Start("stage1", "soma").
		Arg("alloc_iter", e.allocIter).Arg("budget", budget)
	defer func() {
		e.stage1WallNS += time.Since(start).Nanoseconds()
		span.End()
	}()
	init := InitialEncoding(e.G, e.Cfg, e.Par.MinTile)
	iters := e.Par.Beta1 * len(init.Order)
	if e.Par.Stage1MaxIters > 0 && iters > e.Par.Stage1MaxIters {
		iters = e.Par.Stage1MaxIters
	}

	// Keyed on the encoding so cache hits skip the parse as well as the
	// evaluation. Every revisited LFA point - re-proposed moves, the
	// shared initial solution of a portfolio, the winner's re-evaluation
	// below - costs one map lookup.
	evalEnc := func(enc *core.Encoding) (*sim.Metrics, error) {
		return sim.Memoize(e.Cache, sim.Key(e.Scope+encKeyPrefix+enc.CanonicalKey(), budget),
			func() (*sim.Metrics, error) {
				s, err := core.Parse(e.G, enc)
				if err != nil {
					return nil, err
				}
				return sim.Evaluate(s, e.CS, sim.Options{BufferBudget: budget})
			})
	}
	costEnc := func(enc *core.Encoding) float64 {
		m, err := evalEnc(enc)
		if err != nil || !m.BufferOK {
			return math.Inf(1)
		}
		return m.Cost(e.Obj.N, e.Obj.M)
	}

	cfg := sa.Config{T0: e.Par.T0, Alpha: e.Par.Alpha, Iters: iters, Seed: seed,
		Telemetry: sa.NewTelemetry(e.Reg, "stage1")}
	pf := e.portfolio()
	pf.OnImprove = e.improveHook("stage1")
	pf.Journal = e.stageJournal("stage1")
	best, bestCost, stats := sa.RunMovesPortfolioCtx[*core.Encoding](ctx, cfg, pf,
		func(int) sa.MoveState[*core.Encoding] {
			// Encodings are value-like (mutateLFAKind clones before
			// mutating), so every chain may start from the shared init; each
			// adapter instance is still private to its chain. The rng draw
			// order is exactly the historical clone interface's.
			return &lfaMoves{e: e, cur: init, cost: costEnc}
		})
	if err := ctx.Err(); err != nil {
		return nil, StageResult{}, err
	}
	if math.IsInf(bestCost, 1) {
		return nil, StageResult{}, ErrNoFeasible
	}
	m, err := evalEnc(best)
	if err != nil {
		return nil, StageResult{}, err
	}
	c := math.Inf(1)
	if m.BufferOK {
		c = m.Cost(e.Obj.N, e.Obj.M)
	}
	e.notify(Progress{Stage: "stage1", Kind: "done", AllocIter: e.allocIter, Cost: c})
	return best, StageResult{Metrics: m, Cost: c, Stats: stats}, nil
}

// lfaMoves adapts the stage-1 clone-per-candidate mutator to the move-aware
// annealer, tagging each productive proposal with its operator kind for the
// convergence journal. Its rng draw sequence is exactly the historical clone
// interface's (the operator's draws, then the annealer's acceptance draw),
// so fixed-seed results are byte-stable across the switch.
type lfaMoves struct {
	e         *Explorer
	cur, cand *core.Encoding
	cost      func(*core.Encoding) float64
	kind      string
}

func (m *lfaMoves) InitCost() float64 { return m.cost(m.cur) }

func (m *lfaMoves) Propose(rng *rand.Rand) (float64, bool) {
	cand, kind, ok := m.e.mutateLFAKind(m.cur, rng)
	if !ok {
		return 0, false
	}
	m.cand, m.kind = cand, kind
	return m.cost(cand), true
}

func (m *lfaMoves) Accept()                  { m.cur = m.cand }
func (m *lfaMoves) Reject()                  {}
func (m *lfaMoves) Snapshot() *core.Encoding { return m.cur }
func (m *lfaMoves) MoveKind() string         { return m.kind }

// mutateLFAKind applies one random LFA operator to a clone of enc, also
// naming the operator drawn (the journal's per-kind accept/reject tallies).
func (e *Explorer) mutateLFAKind(enc *core.Encoding, rng *rand.Rand) (*core.Encoding, string, bool) {
	c := enc.Clone()
	n := len(c.Order)
	switch rng.Intn(5) {
	case 0: // Change Computing Order: move a random layer somewhere legal.
		return c, "order", c.MoveLayer(e.G, rng.Intn(n), rng.Intn(n))
	case 1: // Change Tiling Number: x2 or /2 on a random FLG.
		if e.Par.Ablate.NoTiling {
			return c, "tile", false
		}
		f := rng.Intn(c.NumFLGs())
		if rng.Intn(2) == 0 {
			c.Tile[f] *= 2
			// Cap at the FLG's realizable tile count to keep the
			// space bounded.
			if c.Tile[f] > maxTiles(e, c, f) {
				return c, "tile", false
			}
		} else {
			if c.Tile[f] <= 1 {
				return c, "tile", false
			}
			c.Tile[f] /= 2
		}
		return c, "tile", true
	case 2: // Add an FLC at a random uncut position.
		p := 1 + rng.Intn(n-1)
		ok := c.AddFLC(p)
		if ok && e.Par.Ablate.NoFLC {
			// Ablation: every cut must also be a DRAM cut.
			for i, cut := range c.FLCs {
				if cut == p {
					c.IsDRAM[i] = true
				}
			}
		}
		return c, "add-flc", ok
	case 3: // Delete an FLC; the merged FLG inherits a tiling number
		// probabilistically by layer-count ratio (paper rule).
		if len(c.FLCs) == 0 {
			return c, "del-flc", false
		}
		i := rng.Intn(len(c.FLCs))
		loA, hiA := c.FLGBounds(i)
		loB, hiB := c.FLGBounds(i + 1)
		tile := c.Tile[i]
		if rng.Intn(hiB-loA) >= hiA-loA {
			tile = c.Tile[i+1]
		}
		_ = loB
		return c, "del-flc", c.RemoveFLC(i, tile)
	default: // Add/Delete a DRAM cut (the added one must be an FLC).
		if len(c.FLCs) == 0 || e.Par.Ablate.NoFLC {
			return c, "dram-cut", false
		}
		i := rng.Intn(len(c.FLCs))
		c.IsDRAM[i] = !c.IsDRAM[i]
		return c, "dram-cut", true
	}
}

// maxTiles bounds an FLG's useful tiling number by the smallest layer shape
// in the group (finer splits produce empty tiles).
func maxTiles(e *Explorer, c *core.Encoding, f int) int {
	minN, minH, minW := math.MaxInt32, math.MaxInt32, math.MaxInt32
	for _, id := range c.FLGLayers(f) {
		s := e.G.Layer(id).Out
		minN = min(minN, s.N)
		minH = min(minH, s.H)
		minW = min(minW, s.W)
	}
	return minN * minH * minW
}
