package soma

import (
	"testing"

	"soma/internal/core"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/models"
	"soma/internal/sim"
)

func TestHeuristicTilePositiveAndClamped(t *testing.T) {
	g := testNet(t)
	cfg := hw.Edge()
	for _, id := range g.ComputeLayers() {
		tile := HeuristicTile(g, cfg, []graph.LayerID{id})
		l := g.Layer(id)
		if tile < 1 {
			t.Fatalf("%s: tile %d", l.Name, tile)
		}
		if tile > l.Out.N*l.Out.H*l.Out.W {
			t.Fatalf("%s: tile %d exceeds splittable extent", l.Name, tile)
		}
	}
}

func TestHeuristicTileScalesWithWork(t *testing.T) {
	// A layer with 64x the MACs must tile at least as fine.
	mk := func(batch int) *graph.Graph {
		g := graph.New("w", 1)
		in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh(batch, 64, 56, 56)})
		g.Add(graph.Layer{Name: "c", Kind: graph.Conv, Deps: []graph.Dep{{Producer: in}},
			Out: sh(batch, 64, 56, 56), K: kr(3, 3, 1, 1, 1, 1),
			WeightBytes: 64 * 64 * 9, Ops: int64(batch) * 2 * 64 * 64 * 9 * 56 * 56})
		return g
	}
	small := mk(1)
	big := mk(64)
	ts := HeuristicTile(small, hw.Edge(), small.ComputeLayers())
	tb := HeuristicTile(big, hw.Edge(), big.ComputeLayers())
	if tb <= ts {
		t.Fatalf("64x work should tile finer: %d <= %d", tb, ts)
	}
}

func TestHeuristicTileCoversPerSampleWeights(t *testing.T) {
	// A decode-style layer whose per-sample KV cache exceeds the GBUF must
	// be split finely enough that one tile's slice fits.
	g := models.GPT2Decode(models.GPT2Small(), 64)
	cfg := hw.Edge()
	enc := InitialEncoding(g, cfg, 1)
	s, err := core.Parse(g, enc)
	if err != nil {
		t.Fatalf("initial encoding unparseable: %v", err)
	}
	if s.PeakBuffer() > cfg.GBufBytes {
		t.Fatalf("initial decode encoding infeasible: peak %.2f MB",
			float64(s.PeakBuffer())/(1<<20))
	}
}

func TestInitialEncodingFeasibleAcrossZoo(t *testing.T) {
	// The whole point of the heuristic initial solution: every workload at
	// every batch size starts from a feasible (buffer-fitting) schedule on
	// its paper platform.
	cases := []struct {
		model string
		cfg   hw.Config
	}{
		{"resnet50", hw.Edge()},
		{"resnet101", hw.Edge()},
		{"ires", hw.Edge()},
		{"randwire", hw.Edge()},
		{"gpt2s-prefill", hw.Edge()},
		{"gpt2s-decode", hw.Edge()},
		{"gpt2xl-prefill", hw.Cloud()},
		{"gpt2xl-decode", hw.Cloud()},
	}
	for _, c := range cases {
		for _, b := range []int{1, 64} {
			g, err := models.Build(c.model, b)
			if err != nil {
				t.Fatal(err)
			}
			enc := InitialEncoding(g, c.cfg, 1)
			s, err := core.Parse(g, enc)
			if err != nil {
				t.Fatalf("%s b%d: %v", c.model, b, err)
			}
			if peak := s.PeakBuffer(); peak > c.cfg.GBufBytes {
				t.Errorf("%s b%d: initial peak %.2f MB exceeds %.0f MB GBUF",
					c.model, b, float64(peak)/(1<<20), float64(c.cfg.GBufBytes)/(1<<20))
			}
		}
	}
}

func TestInitialEncodingRespectsMinTile(t *testing.T) {
	g := testNet(t)
	e := InitialEncoding(g, hw.Edge(), 16)
	for _, tile := range e.Tile {
		if tile < 16 {
			t.Fatalf("tile %d below MinTile", tile)
		}
	}
}

// Evaluate the initial solution end to end once (regression guard for the
// batch-64 feasibility bug).
func TestStage1FeasibleAtBatch64(t *testing.T) {
	g, err := models.Build("resnet50", 64)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, hw.Edge(), EDP(), FastParams())
	enc := InitialEncoding(g, e.Cfg, 1)
	s, err := core.Parse(g, enc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Evaluate(s, e.CS, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.BufferOK {
		t.Fatalf("batch-64 initial solution infeasible: peak %.2f MB",
			float64(m.PeakBufferBytes)/(1<<20))
	}
}
