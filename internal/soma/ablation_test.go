package soma

import (
	"testing"

	"soma/internal/hw"
)

func TestAblationNoFLC(t *testing.T) {
	g := testNet(t)
	p := FastParams()
	p.Ablate.NoFLC = true
	res, err := New(g, hw.Edge(), EDP(), p).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Encoding.FLCs {
		if !res.Encoding.IsDRAM[i] {
			t.Fatal("NoFLC ablation produced a fine-grained-only cut")
		}
	}
}

func TestAblationNoTiling(t *testing.T) {
	g := testNet(t)
	p := FastParams()
	p.Ablate.NoTiling = true
	res, err := New(g, hw.Edge(), EDP(), p).Run()
	if err != nil {
		t.Fatal(err)
	}
	// With tiling frozen, every FLG's tiling number must still be one the
	// initial heuristic could have produced for some of its layers: since
	// merges inherit one of the two merged values, the set of values in
	// use can only shrink from the initial per-layer set.
	initial := map[int]bool{}
	init := InitialEncoding(g, hw.Edge(), p.MinTile)
	for _, tile := range init.Tile {
		initial[tile] = true
	}
	for _, tile := range res.Encoding.Tile {
		if !initial[tile] {
			t.Fatalf("NoTiling ablation invented tiling number %d (initial set %v)",
				tile, initial)
		}
	}
}

func TestAblationNoStage2(t *testing.T) {
	g := testNet(t)
	p := FastParams()
	p.Ablate.NoStage2 = true
	res, err := New(g, hw.Edge(), EDP(), p).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage2.Cost != res.Stage1.Cost {
		t.Fatalf("NoStage2 must report stage-1 cost: %g vs %g",
			res.Stage2.Cost, res.Stage1.Cost)
	}
}

func TestAblationNoAllocator(t *testing.T) {
	g := testNet(t)
	p := FastParams()
	p.Ablate.NoAllocator = true
	res, err := New(g, hw.Edge(), EDP(), p).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AllocIters != 1 {
		t.Fatalf("NoAllocator ran %d allocator iterations", res.AllocIters)
	}
	if res.Stage1Budget != hw.Edge().GBufBytes {
		t.Fatalf("NoAllocator budget = %d", res.Stage1Budget)
	}
}

func TestAblationsNeverBeatFull(t *testing.T) {
	// Each ablation removes freedom, so with the same seed/budget the
	// best ablated cost should not beat full search by more than noise.
	g := testNet(t)
	p := FastParams()
	full, err := New(g, hw.Edge(), EDP(), p).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, ab := range []Ablation{{NoFLC: true}, {NoTiling: true}, {NoStage2: true}} {
		pa := p
		pa.Ablate = ab
		res, err := New(g, hw.Edge(), EDP(), pa).Run()
		if err != nil {
			t.Fatalf("%+v: %v", ab, err)
		}
		if res.Cost < full.Cost*0.9 {
			t.Fatalf("ablation %+v beat full search: %g < %g", ab, res.Cost, full.Cost)
		}
	}
}
