package models

import (
	"testing"

	"soma/internal/graph"
)

func TestVGG16Accounting(t *testing.T) {
	g := VGG16(1)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// VGG-16: ~15.5 GMACs = ~31 GOPs; ~138 M parameters.
	gops := float64(g.TotalOps()) / 1e9
	if gops < 28 || gops > 34 {
		t.Fatalf("VGG-16 ops = %.1f GOPs, want ~31", gops)
	}
	mb := float64(g.TotalWeightBytes()) / (1 << 20)
	if mb < 125 || mb > 140 {
		t.Fatalf("VGG-16 weights = %.1f MB, want ~132", mb)
	}
	if n := g.Stats()["conv"]; n != 13 {
		t.Fatalf("convs = %d, want 13", n)
	}
	// Every chunk of the split classifier must fit comfortably on-chip.
	for _, id := range g.ComputeLayers() {
		if w := g.Layer(id).WeightBytes; w > 4<<20 {
			t.Fatalf("layer %s holds %.1f MB weights (chunking failed)",
				g.Layer(id).Name, float64(w)/(1<<20))
		}
	}
}

func TestMobileNetV2Accounting(t *testing.T) {
	g := MobileNetV2(1)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// ~0.3 GMACs = ~0.6 GOPs; ~3.4 M parameters.
	gops := float64(g.TotalOps()) / 1e9
	if gops < 0.5 || gops > 0.9 {
		t.Fatalf("MobileNetV2 ops = %.2f GOPs, want ~0.6", gops)
	}
	mb := float64(g.TotalWeightBytes()) / (1 << 20)
	if mb < 2.5 || mb > 4.5 {
		t.Fatalf("MobileNetV2 weights = %.1f MB, want ~3.3", mb)
	}
	if n := g.Stats()["dwconv"]; n != 17 {
		t.Fatalf("depthwise convs = %d, want 17", n)
	}
	// Inverted residual adds exist where stride 1 and channels match.
	if g.Stats()["eltwise"] < 8 {
		t.Fatalf("residual adds = %d, want >= 8", g.Stats()["eltwise"])
	}
}

func TestMobileNetV2IsFmapDominated(t *testing.T) {
	// MobileNet's fusion value comes from fmaps dwarfing weights.
	g := MobileNetV2(1)
	var maxFmap int64
	for _, id := range g.ComputeLayers() {
		if b := g.Layer(id).Out.Bytes(g.ElemBytes); b > maxFmap {
			maxFmap = b
		}
	}
	if maxFmap < g.TotalWeightBytes()/8 {
		t.Fatalf("fmap %.2f MB unexpectedly small vs weights %.2f MB",
			float64(maxFmap)/(1<<20), float64(g.TotalWeightBytes())/(1<<20))
	}
}

func TestFCChunkedPreservesTotals(t *testing.T) {
	b := newBuilder("fc", 1)
	in := b.input("in", graph.Shape{N: 1, C: 512, H: 7, W: 7})
	out := b.fcChunked("fc", in, 4096, 8)
	s := b.g.Layer(out).Out
	if s.C != 4096 {
		t.Fatalf("chunked output C = %d", s.C)
	}
	var w int64
	for _, id := range b.g.ComputeLayers() {
		w += b.g.Layer(id).WeightBytes
	}
	want := int64(512*7*7) * 4096
	if w != want {
		t.Fatalf("chunked weights = %d, want %d", w, want)
	}
}

func TestRegistryGrewTo11(t *testing.T) {
	if len(Names()) != 11 {
		t.Fatalf("registry = %v", Names())
	}
}
