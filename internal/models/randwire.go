package models

import (
	"fmt"
	"math/rand"

	"soma/internal/graph"
)

// RandWire builds a randomly wired network (Xie et al., ICCV'19) in the
// small-compute regime: a conv stem followed by three randomly wired stages
// of separable-conv nodes, then classification. The wiring is produced by a
// seeded Erdos-Renyi-style generator so the workload is fully reproducible;
// the paper uses RandWire to stress irregular, wide dependency structures.
func RandWire(batch int) *graph.Graph { return RandWireSeeded(batch, 0x5e7) }

// RandWireSeeded is RandWire with an explicit wiring seed (test hook).
func RandWireSeeded(batch int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder(fmt.Sprintf("randwire-b%d", batch), 1)
	in := b.input("input", graph.Shape{N: batch, C: 3, H: 224, W: 224})

	// Stem: conv /2, then separable conv /2 -> 56x56.
	x := b.conv("stem1", in, 32, 3, 3, 2, 2, 1, 1) // 112x112x32
	x = b.conv("stem2", x, 64, 3, 3, 2, 2, 1, 1)   // 56x56x64

	x = randStage(b, rng, "st1", x, 64, 10)  // 56x56
	x = downsample(b, "ds1", x, 128)         // 28x28
	x = randStage(b, rng, "st2", x, 128, 12) // 28x28
	x = downsample(b, "ds2", x, 256)         // 14x14
	x = randStage(b, rng, "st3", x, 256, 10) // 14x14

	x = b.conv1("head", x, 1024)
	x = b.gpool("gap", x)
	b.fc("fc", x, 1000)
	mustValidate(b.g)
	return b.g
}

// downsample halves the spatial extent and widens channels between stages.
func downsample(b *builder, name string, in graph.LayerID, outC int) graph.LayerID {
	return b.conv(name, in, outC, 3, 3, 2, 2, 1, 1)
}

// randStage wires n separable-conv nodes with random skip edges. Node i
// always consumes node i-1 (keeping the graph connected and the insertion
// order topological) plus up to two random earlier nodes, aggregated with
// element-wise adds as in the original RandWire formulation.
func randStage(b *builder, rng *rand.Rand, p string, in graph.LayerID, ch, n int) graph.LayerID {
	nodes := []graph.LayerID{in}
	for i := 0; i < n; i++ {
		// Pick the mandatory predecessor plus random extras.
		agg := nodes[len(nodes)-1]
		extras := rng.Intn(3)
		for e := 0; e < extras && len(nodes) > 1; e++ {
			cand := nodes[rng.Intn(len(nodes))]
			if cand != agg {
				agg = b.add(fmt.Sprintf("%s_n%d_agg%d", p, i, e), agg, cand)
			}
		}
		// Separable conv node: depthwise 3x3 then pointwise 1x1.
		dw := b.dwconv(fmt.Sprintf("%s_n%d_dw", p, i), agg, 3, 3, 1, 1, 1, 1)
		pw := b.conv1(fmt.Sprintf("%s_n%d_pw", p, i), dw, ch)
		nodes = append(nodes, pw)
	}
	// Stage output merges the last few nodes (RandWire averages all sinks;
	// the last two suffice to create a wide join).
	out := nodes[len(nodes)-1]
	if len(nodes) > 2 {
		out = b.add(p+"_out", out, nodes[len(nodes)-2])
	}
	return out
}
