package models

import (
	"fmt"

	"soma/internal/graph"
)

// InceptionResNetV1 builds Inception-ResNet-v1 (Szegedy et al., AAAI'17) at
// the given batch size. The paper uses it as the representative of wide,
// multi-branch topologies. Block counts follow the original: 5x A, 10x B,
// 5x C with the two reduction blocks in between.
func InceptionResNetV1(batch int) *graph.Graph {
	b := newBuilder(fmt.Sprintf("ires-b%d", batch), 1)
	in := b.input("input", graph.Shape{N: batch, C: 3, H: 299, W: 299})

	// Stem: 299x299x3 -> 35x35x256.
	x := b.conv("stem_c1", in, 32, 3, 3, 2, 2, 0, 0) // 149x149x32
	x = b.conv("stem_c2", x, 32, 3, 3, 1, 1, 0, 0)   // 147x147x32
	x = b.conv3("stem_c3", x, 64)                    // 147x147x64
	x = b.pool("stem_p1", x, 3, 3, 2, 2, 0, 0)       // 73x73x64
	x = b.conv1("stem_c4", x, 80)                    // 73x73x80
	x = b.conv("stem_c5", x, 192, 3, 3, 1, 1, 0, 0)  // 71x71x192
	x = b.conv("stem_c6", x, 256, 3, 3, 2, 2, 0, 0)  // 35x35x256

	for i := 0; i < 5; i++ {
		x = inceptionA(b, fmt.Sprintf("a%d", i), x)
	}
	x = reductionA(b, x) // 17x17x896

	for i := 0; i < 10; i++ {
		x = inceptionB(b, fmt.Sprintf("b%d", i), x)
	}
	x = reductionB(b, x) // 8x8x1792

	for i := 0; i < 5; i++ {
		x = inceptionC(b, fmt.Sprintf("c%d", i), x)
	}
	x = b.gpool("gap", x)
	b.fc("fc", x, 1000)
	mustValidate(b.g)
	return b.g
}

// inceptionA: three branches at 35x35x256 with a linear 1x1 merge + residual.
func inceptionA(b *builder, p string, in graph.LayerID) graph.LayerID {
	b0 := b.conv1(p+"_b0", in, 32)
	b1 := b.conv1(p+"_b1a", in, 32)
	b1 = b.conv3(p+"_b1b", b1, 32)
	b2 := b.conv1(p+"_b2a", in, 32)
	b2 = b.conv3(p+"_b2b", b2, 32)
	b2 = b.conv3(p+"_b2c", b2, 32)
	cat := b.concat(p+"_cat", b0, b1, b2)
	up := b.conv1(p+"_up", cat, 256)
	return b.add(p+"_add", up, in)
}

// reductionA: 35x35x256 -> 17x17x896.
func reductionA(b *builder, in graph.LayerID) graph.LayerID {
	p := "redA"
	b0 := b.conv(p+"_b0", in, 384, 3, 3, 2, 2, 0, 0)
	b1 := b.conv1(p+"_b1a", in, 192)
	b1 = b.conv3(p+"_b1b", b1, 192)
	b1 = b.conv(p+"_b1c", b1, 256, 3, 3, 2, 2, 0, 0)
	b2 := b.pool(p+"_pool", in, 3, 3, 2, 2, 0, 0)
	return b.concat(p+"_cat", b0, b1, b2)
}

// inceptionB: two branches at 17x17x896 with 1x7/7x1 factorized convs.
func inceptionB(b *builder, p string, in graph.LayerID) graph.LayerID {
	b0 := b.conv1(p+"_b0", in, 128)
	b1 := b.conv1(p+"_b1a", in, 128)
	b1 = b.conv(p+"_b1b", b1, 128, 1, 7, 1, 1, 0, 3)
	b1 = b.conv(p+"_b1c", b1, 128, 7, 1, 1, 1, 3, 0)
	cat := b.concat(p+"_cat", b0, b1)
	up := b.conv1(p+"_up", cat, 896)
	return b.add(p+"_add", up, in)
}

// reductionB: 17x17x896 -> 8x8x1792.
func reductionB(b *builder, in graph.LayerID) graph.LayerID {
	p := "redB"
	b0 := b.conv1(p+"_b0a", in, 256)
	b0 = b.conv(p+"_b0b", b0, 384, 3, 3, 2, 2, 0, 0)
	b1 := b.conv1(p+"_b1a", in, 256)
	b1 = b.conv(p+"_b1b", b1, 256, 3, 3, 2, 2, 0, 0)
	b2 := b.conv1(p+"_b2a", in, 256)
	b2 = b.conv3(p+"_b2b", b2, 256)
	b2 = b.conv(p+"_b2c", b2, 256, 3, 3, 2, 2, 0, 0)
	b3 := b.pool(p+"_pool", in, 3, 3, 2, 2, 0, 0)
	return b.concat(p+"_cat", b0, b1, b2, b3)
}

// inceptionC: two branches at 8x8x1792 with 1x3/3x1 factorized convs.
func inceptionC(b *builder, p string, in graph.LayerID) graph.LayerID {
	b0 := b.conv1(p+"_b0", in, 192)
	b1 := b.conv1(p+"_b1a", in, 192)
	b1 = b.conv(p+"_b1b", b1, 192, 1, 3, 1, 1, 0, 1)
	b1 = b.conv(p+"_b1c", b1, 192, 3, 1, 1, 1, 1, 0)
	cat := b.concat(p+"_cat", b0, b1)
	up := b.conv1(p+"_up", cat, 1792)
	return b.add(p+"_add", up, in)
}
