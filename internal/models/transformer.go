package models

import (
	"fmt"

	"soma/internal/graph"
)

// GPTConfig describes one GPT-2 variant.
type GPTConfig struct {
	Name   string
	Layers int
	DModel int
	Heads  int
	Vocab  int
	// SeqLen is the prefill token count; decode attends over SeqLen
	// cached tokens and produces token SeqLen+1 (paper Sec. VI-A2).
	SeqLen int
}

// GPT2Small is the edge-platform workload: 12 layers, d=768, 512 tokens.
func GPT2Small() GPTConfig {
	return GPTConfig{Name: "gpt2s", Layers: 12, DModel: 768, Heads: 12, Vocab: 50257, SeqLen: 512}
}

// GPT2XL is the cloud-platform workload: 48 layers, d=1600, 1024 tokens.
func GPT2XL() GPTConfig {
	return GPTConfig{Name: "gpt2xl", Layers: 48, DModel: 1600, Heads: 25, Vocab: 50257, SeqLen: 1024}
}

// GPT2Prefill builds the prefill phase: all SeqLen tokens flow through every
// block; attention is quadratic in sequence length.
func GPT2Prefill(cfg GPTConfig, batch int) *graph.Graph {
	return buildGPT(cfg, batch, false)
}

// GPT2Decode builds the decode phase for one generated token: single-token
// GEMMs against full weights, with per-sample KV-cache reads modelled as
// weight-like DRAM traffic on the attention layers. This reproduces the
// paper's observation that decode imposes a nearly pure bandwidth demand.
func GPT2Decode(cfg GPTConfig, batch int) *graph.Graph {
	return buildGPT(cfg, batch, true)
}

func buildGPT(cfg GPTConfig, batch int, decode bool) *graph.Graph {
	phase := "prefill"
	tokens := cfg.SeqLen
	keyLen := cfg.SeqLen
	if decode {
		phase = "decode"
		tokens = 1
		keyLen = cfg.SeqLen + 1
	}
	b := newBuilder(fmt.Sprintf("%s-%s-b%d", cfg.Name, phase, batch), 1)
	d := cfg.DModel
	eb := int64(b.g.ElemBytes)

	// Embedded token activations enter the accelerator from DRAM.
	x := b.input("tokens", graph.Shape{N: batch, C: d, H: tokens, W: 1})

	for l := 0; l < cfg.Layers; l++ {
		p := fmt.Sprintf("blk%d", l)
		ln1 := b.layerNorm(p+"_ln1", x)
		q := b.gemmSeq(p+"_q", ln1, d)
		k := b.gemmSeq(p+"_k", ln1, d)
		v := b.gemmSeq(p+"_v", ln1, d)

		// In decode, attending over the cached context reads
		// batch*keyLen*d bytes of K (and V) from DRAM per block.
		var kvBytes int64
		if decode {
			kvBytes = int64(batch) * int64(cfg.SeqLen) * int64(d) * eb
		}
		scores := b.attnScores(p+"_qk", q, k, cfg.Heads, keyLen, kvBytes)
		probs := b.softmaxRows(p+"_sm", scores)
		ctx := b.attnContext(p+"_av", probs, v, d, keyLen, kvBytes)
		proj := b.gemmSeq(p+"_proj", ctx, d)
		att := b.add(p+"_add1", proj, x)

		ln2 := b.layerNorm(p+"_ln2", att)
		h := b.gemmSeq(p+"_fc1", ln2, 4*d)
		h = b.gemmSeq(p+"_fc2", h, d)
		x = b.add(p+"_add2", h, att)
	}

	x = b.layerNorm("ln_f", x)
	b.gemmChunked("lm_head", x, cfg.Vocab, 16)
	mustValidate(b.g)
	return b.g
}

// TransformerLarge builds the encoder used for the paper's Fig. 3 motivation
// scatter: a Transformer-Big-class encoder (6 layers, d=1024, 16 heads,
// FF=4096) over 512 tokens.
func TransformerLarge(batch int) *graph.Graph {
	b := newBuilder(fmt.Sprintf("transformer-large-b%d", batch), 1)
	d, heads, ff, tokens := 1024, 16, 4096, 512

	x := b.input("tokens", graph.Shape{N: batch, C: d, H: tokens, W: 1})
	for l := 0; l < 6; l++ {
		p := fmt.Sprintf("enc%d", l)
		q := b.gemmSeq(p+"_q", x, d)
		k := b.gemmSeq(p+"_k", x, d)
		v := b.gemmSeq(p+"_v", x, d)
		scores := b.attnScores(p+"_qk", q, k, heads, tokens, 0)
		probs := b.softmaxRows(p+"_sm", scores)
		ctx := b.attnContext(p+"_av", probs, v, d, tokens, 0)
		proj := b.gemmSeq(p+"_proj", ctx, d)
		att := b.add(p+"_add1", proj, x)
		att = b.layerNorm(p+"_ln1", att)

		// The 4 MB FFN projections are chunked so an edge-scale buffer
		// can double-buffer consecutive weight tensors (the standard
		// column-parallel lowering).
		h := b.gemmChunked(p+"_fc1", att, ff, 4)
		h = b.gemmChunked(p+"_fc2", h, d, 4)
		x = b.add(p+"_add2", h, att)
		x = b.layerNorm(p+"_ln2", x)
	}
	mustValidate(b.g)
	return b.g
}
