package models

import (
	"fmt"
	"sort"

	"soma/internal/graph"
)

// Builder constructs a workload graph at a batch size.
type Builder func(batch int) *graph.Graph

// registry maps workload names (as used by the CLI and the experiment
// harness) to builders. GPT-2 variants follow the paper's platform pairing:
// Small on edge, XL on cloud.
var registry = map[string]Builder{
	"resnet50":          ResNet50,
	"resnet101":         ResNet101,
	"ires":              InceptionResNetV1,
	"randwire":          RandWire,
	"vgg16":             VGG16,
	"mobilenetv2":       MobileNetV2,
	"transformer-large": TransformerLarge,
	"gpt2s-prefill":     func(b int) *graph.Graph { return GPT2Prefill(GPT2Small(), b) },
	"gpt2s-decode":      func(b int) *graph.Graph { return GPT2Decode(GPT2Small(), b) },
	"gpt2xl-prefill":    func(b int) *graph.Graph { return GPT2Prefill(GPT2XL(), b) },
	"gpt2xl-decode":     func(b int) *graph.Graph { return GPT2Decode(GPT2XL(), b) },
}

// Build constructs the named workload or returns an error listing the known
// names.
func Build(name string, batch int) (*graph.Graph, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown workload %q (known: %v)", name, Names())
	}
	if batch <= 0 {
		return nil, fmt.Errorf("models: batch must be positive, got %d", batch)
	}
	return b(batch), nil
}

// Known reports whether name is a registered workload.
func Known(name string) bool {
	_, ok := registry[name]
	return ok
}

// Names lists the registered workloads in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
