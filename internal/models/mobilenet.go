package models

import (
	"fmt"

	"soma/internal/graph"
)

// MobileNetV2 builds MobileNetV2 (Sandler et al., CVPR'18): inverted
// residual blocks of expand (1x1) -> depthwise 3x3 -> project (1x1). It
// exercises the depthwise-convolution path of the core-array scheduler and
// the very-low-compute-density regime (high fmap:weight ratio) where fusion
// matters most.
func MobileNetV2(batch int) *graph.Graph {
	b := newBuilder(fmt.Sprintf("mobilenetv2-b%d", batch), 1)
	in := b.input("input", graph.Shape{N: batch, C: 3, H: 224, W: 224})

	x := b.conv("stem", in, 32, 3, 3, 2, 2, 1, 1) // 112x112x32

	// (expansion t, output channels c, repeats n, stride s) per the paper.
	cfg := []struct{ t, c, n, s int }{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	blk := 0
	for _, c := range cfg {
		for i := 0; i < c.n; i++ {
			stride := 1
			if i == 0 {
				stride = c.s
			}
			x = invertedResidual(b, fmt.Sprintf("b%d", blk), x, c.t, c.c, stride)
			blk++
		}
	}
	x = b.conv1("head", x, 1280)
	x = b.gpool("gap", x)
	b.fc("fc", x, 1000)
	mustValidate(b.g)
	return b.g
}

// invertedResidual adds expand -> depthwise -> project with a residual add
// when shapes allow.
func invertedResidual(b *builder, p string, in graph.LayerID, expand, outC, stride int) graph.LayerID {
	is := b.g.Layer(in).Out
	x := in
	if expand != 1 {
		x = b.conv1(p+"_exp", x, is.C*expand)
	}
	x = b.dwconv(p+"_dw", x, 3, 3, stride, stride, 1, 1)
	x = b.conv1(p+"_proj", x, outC)
	if stride == 1 && is.C == outC {
		x = b.add(p+"_add", x, in)
	}
	return x
}
