package models

import (
	"fmt"

	"soma/internal/graph"
)

// ResNet50 builds the standard ResNet-50 inference graph at the given batch
// size (He et al., CVPR'16). ReLUs are folded into the producing layers, as
// in the paper's instruction abstraction; batch-norms fold into conv weights.
func ResNet50(batch int) *graph.Graph {
	return resNet(fmt.Sprintf("resnet50-b%d", batch), batch, []int{3, 4, 6, 3})
}

// ResNet101 builds ResNet-101 (same structure as ResNet-50 with a 23-block
// third stage).
func ResNet101(batch int) *graph.Graph {
	return resNet(fmt.Sprintf("resnet101-b%d", batch), batch, []int{3, 4, 23, 3})
}

// resNet builds a bottleneck ResNet with the given per-stage block counts.
func resNet(name string, batch int, blocks []int) *graph.Graph {
	b := newBuilder(name, 1)
	in := b.input("input", graph.Shape{N: batch, C: 3, H: 224, W: 224})

	x := b.conv("conv1", in, 64, 7, 7, 2, 2, 3, 3) // 112x112x64
	x = b.pool("pool1", x, 3, 3, 2, 2, 1, 1)       // 56x56x64
	stageMid := []int{64, 128, 256, 512}           // bottleneck width
	stageOut := []int{256, 512, 1024, 2048}        // expansion width
	for s, n := range blocks {                     //
		for blk := 0; blk < n; blk++ {
			prefix := fmt.Sprintf("s%d_b%d", s+2, blk)
			stride := 1
			if s > 0 && blk == 0 {
				stride = 2
			}
			x = bottleneck(b, prefix, x, stageMid[s], stageOut[s], stride)
		}
	}
	x = b.gpool("gap", x)
	b.fc("fc1000", x, 1000)
	mustValidate(b.g)
	return b.g
}

// bottleneck adds the 1x1 -> 3x3 -> 1x1 residual block with an optional
// projection shortcut.
func bottleneck(b *builder, prefix string, in graph.LayerID, mid, out, stride int) graph.LayerID {
	r := b.conv(prefix+"_red", in, mid, 1, 1, stride, stride, 0, 0)
	c := b.conv3(prefix+"_3x3", r, mid)
	e := b.conv1(prefix+"_exp", c, out)
	short := in
	if b.g.Layer(in).Out.C != out || stride != 1 {
		short = b.conv(prefix+"_proj", in, out, 1, 1, stride, stride, 0, 0)
	}
	return b.add(prefix+"_add", e, short)
}

func mustValidate(g *graph.Graph) {
	if err := g.Validate(); err != nil {
		panic("models: " + err.Error())
	}
}
