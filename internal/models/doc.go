// Package models is the workload zoo of the paper's evaluation (Sec. VI-A):
// ResNet-50, ResNet-101, Inception-ResNet-v1, RandWire, GPT-2 (Small and XL,
// prefill and decode), Transformer-Large, plus VGG-16 and MobileNet-V2 as
// extras. All graphs are constructed programmatically with exact per-layer
// shapes, weight footprints and op counts; there is no external model-file
// dependency.
//
// Build(name, batch) resolves a workload by registry name - the same names
// the soma CLI's -model flag and the experiment harness use - and
// Names() lists them. The paper's platform pairing maps GPT-2 Small to the
// edge accelerator and GPT-2 XL to the cloud accelerator (exp.Workloads);
// decode-phase GPT-2 graphs model the KV cache as per-batch weight
// streaming, which reproduces the bandwidth-bound LLM observations of
// Sec. VI (utilization growing sublinearly with batch).
//
// CNNs cover the fusion-friendly regime the SoMa stage-1 search exploits;
// RandWire stresses irregular inter-layer connectivity; the transformer
// workloads stress the weight-dominated, fusion-hostile regime where
// stage 2's prefetch/delayed-store freedom does most of the work.
package models
