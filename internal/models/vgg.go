package models

import (
	"fmt"

	"soma/internal/graph"
)

// VGG16 builds the classic VGG-16 network (Simonyan & Zisserman). It is not
// part of the paper's Fig. 6 set but is a standard stress test for the
// weight-dominated regime: its first FC layer alone holds ~98 MB of INT8
// parameters, far beyond any on-chip buffer, so it exercises the chunked
// projection lowering and weight-streaming paths.
func VGG16(batch int) *graph.Graph {
	b := newBuilder(fmt.Sprintf("vgg16-b%d", batch), 1)
	in := b.input("input", graph.Shape{N: batch, C: 3, H: 224, W: 224})

	x := in
	stage := func(name string, convs, outC int) {
		for i := 0; i < convs; i++ {
			x = b.conv3(fmt.Sprintf("%s_c%d", name, i), x, outC)
		}
		x = b.pool(name+"_pool", x, 2, 2, 2, 2, 0, 0)
	}
	stage("s1", 2, 64)  // 224 -> 112
	stage("s2", 2, 128) // 112 -> 56
	stage("s3", 3, 256) // 56 -> 28
	stage("s4", 3, 512) // 28 -> 14
	stage("s5", 3, 512) // 14 -> 7

	// Classifier: fc1 is huge (25088 x 4096); chunk it so each slice's
	// weights fit on-chip with double-buffering headroom.
	x = b.fcChunked("fc1", x, 4096, 64)
	x = b.fcChunked("fc2", x, 4096, 4)
	b.fc("fc3", x, 1000)
	mustValidate(b.g)
	return b.g
}

// fcChunked splits a fully connected layer into output-column chunks joined
// by a concat, mirroring gemmChunked for flattened CNN activations.
func (b *builder) fcChunked(name string, in graph.LayerID, outC, chunks int) graph.LayerID {
	if chunks <= 1 {
		return b.fc(name, in, outC)
	}
	parts := make([]graph.LayerID, 0, chunks)
	done := 0
	for i := 0; i < chunks; i++ {
		width := (outC - done) / (chunks - i)
		parts = append(parts, b.fc(fmt.Sprintf("%s_c%d", name, i), in, width))
		done += width
	}
	return b.concat(name+"_cat", parts...)
}
