package models

import (
	"fmt"

	"soma/internal/graph"
)

// builder wraps a graph with layer constructors that fill in the op and byte
// accounting. All models in this package are built through it.
type builder struct {
	g *graph.Graph
}

func newBuilder(name string, elemBytes int) *builder {
	return &builder{g: graph.New(name, elemBytes)}
}

// input adds the network input pseudo-layer.
func (b *builder) input(name string, s graph.Shape) graph.LayerID {
	return b.g.Add(graph.Layer{Name: name, Kind: graph.Input, Out: s})
}

// conv adds a 2-D convolution with activation folded in. Output spatial size
// follows the usual floor formula.
func (b *builder) conv(name string, in graph.LayerID, outC, kh, kw, sh, sw, ph, pw int) graph.LayerID {
	is := b.g.Layer(in).Out
	oh := (is.H+2*ph-kh)/sh + 1
	ow := (is.W+2*pw-kw)/sw + 1
	out := graph.Shape{N: is.N, C: outC, H: oh, W: ow}
	macs := int64(2) * out.Elems() * int64(is.C) * int64(kh) * int64(kw)
	return b.g.Add(graph.Layer{
		Name: name, Kind: graph.Conv,
		Deps:        []graph.Dep{{Producer: in}},
		Out:         out,
		K:           graph.Kernel{KH: kh, KW: kw, SH: sh, SW: sw, PH: ph, PW: pw},
		WeightBytes: int64(is.C) * int64(outC) * int64(kh) * int64(kw) * int64(b.g.ElemBytes),
		Ops:         macs,
	})
}

// conv3 is the common 3x3 stride-1 same-padding convolution.
func (b *builder) conv3(name string, in graph.LayerID, outC int) graph.LayerID {
	return b.conv(name, in, outC, 3, 3, 1, 1, 1, 1)
}

// conv1 is the common 1x1 convolution.
func (b *builder) conv1(name string, in graph.LayerID, outC int) graph.LayerID {
	return b.conv(name, in, outC, 1, 1, 1, 1, 0, 0)
}

// dwconv adds a depthwise 3x3 convolution (RandWire separable nodes).
func (b *builder) dwconv(name string, in graph.LayerID, kh, kw, sh, sw, ph, pw int) graph.LayerID {
	is := b.g.Layer(in).Out
	oh := (is.H+2*ph-kh)/sh + 1
	ow := (is.W+2*pw-kw)/sw + 1
	out := graph.Shape{N: is.N, C: is.C, H: oh, W: ow}
	macs := int64(2) * out.Elems() * int64(kh) * int64(kw)
	return b.g.Add(graph.Layer{
		Name: name, Kind: graph.DWConv,
		Deps:        []graph.Dep{{Producer: in}},
		Out:         out,
		K:           graph.Kernel{KH: kh, KW: kw, SH: sh, SW: sw, PH: ph, PW: pw},
		WeightBytes: int64(is.C) * int64(kh) * int64(kw) * int64(b.g.ElemBytes),
		Ops:         macs,
	})
}

// pool adds max/avg pooling.
func (b *builder) pool(name string, in graph.LayerID, kh, kw, sh, sw, ph, pw int) graph.LayerID {
	is := b.g.Layer(in).Out
	oh := (is.H+2*ph-kh)/sh + 1
	ow := (is.W+2*pw-kw)/sw + 1
	out := graph.Shape{N: is.N, C: is.C, H: oh, W: ow}
	return b.g.Add(graph.Layer{
		Name: name, Kind: graph.Pool,
		Deps: []graph.Dep{{Producer: in}},
		Out:  out,
		K:    graph.Kernel{KH: kh, KW: kw, SH: sh, SW: sw, PH: ph, PW: pw},
		Ops:  out.Elems() * int64(kh) * int64(kw),
	})
}

// gpool reduces the whole spatial extent to 1x1. The consumer sees a global
// dependency because every output element needs the full input plane.
func (b *builder) gpool(name string, in graph.LayerID) graph.LayerID {
	is := b.g.Layer(in).Out
	out := graph.Shape{N: is.N, C: is.C, H: 1, W: 1}
	return b.g.Add(graph.Layer{
		Name: name, Kind: graph.GlobalPool,
		Deps: []graph.Dep{{Producer: in, Global: true}},
		Out:  out,
		Ops:  is.Elems(),
	})
}

// fc adds a fully connected layer on an N x C x 1 x 1 activation.
func (b *builder) fc(name string, in graph.LayerID, outC int) graph.LayerID {
	is := b.g.Layer(in).Out
	inFeat := int64(is.C) * int64(is.H) * int64(is.W)
	out := graph.Shape{N: is.N, C: outC, H: 1, W: 1}
	return b.g.Add(graph.Layer{
		Name: name, Kind: graph.GEMM,
		Deps:        []graph.Dep{{Producer: in}},
		Out:         out,
		WeightBytes: inFeat * int64(outC) * int64(b.g.ElemBytes),
		Ops:         2 * out.Elems() * inFeat,
	})
}

// add joins two equal-shaped activations element-wise (residual connection).
func (b *builder) add(name string, a, c graph.LayerID) graph.LayerID {
	as := b.g.Layer(a).Out
	return b.g.Add(graph.Layer{
		Name: name, Kind: graph.Eltwise,
		Deps: []graph.Dep{{Producer: a}, {Producer: c}},
		Out:  as,
		Ops:  as.Elems(),
	})
}

// concat joins branches along the channel axis.
func (b *builder) concat(name string, ins ...graph.LayerID) graph.LayerID {
	first := b.g.Layer(ins[0]).Out
	c := 0
	deps := make([]graph.Dep, 0, len(ins))
	for _, id := range ins {
		s := b.g.Layer(id).Out
		if s.N != first.N || s.H != first.H || s.W != first.W {
			panic(fmt.Sprintf("models: concat %s: shape mismatch %v vs %v", name, first, s))
		}
		c += s.C
		deps = append(deps, graph.Dep{Producer: id})
	}
	out := graph.Shape{N: first.N, C: c, H: first.H, W: first.W}
	return b.g.Add(graph.Layer{
		Name: name, Kind: graph.Concat,
		Deps: deps,
		Out:  out,
		Ops:  out.Elems(), // modelled as a vector copy
	})
}

// ---- transformer building blocks ------------------------------------------

// gemmSeq adds a token-wise projection (B x T tokens, inC -> outC features).
// Token axis lives on H, so fused tiling along H splits the sequence.
func (b *builder) gemmSeq(name string, in graph.LayerID, outC int) graph.LayerID {
	is := b.g.Layer(in).Out
	out := graph.Shape{N: is.N, C: outC, H: is.H, W: 1}
	return b.g.Add(graph.Layer{
		Name: name, Kind: graph.GEMM,
		Deps:        []graph.Dep{{Producer: in}},
		Out:         out,
		WeightBytes: int64(is.C) * int64(outC) * int64(b.g.ElemBytes),
		Ops:         2 * out.Elems() * int64(is.C),
	})
}

// layerNorm adds a row-local normalization.
func (b *builder) layerNorm(name string, in graph.LayerID) graph.LayerID {
	is := b.g.Layer(in).Out
	return b.g.Add(graph.Layer{
		Name: name, Kind: graph.LayerNorm,
		Deps: []graph.Dep{{Producer: in}},
		Out:  is,
		Ops:  4 * is.Elems(),
	})
}

// softmaxRows adds a row-local softmax over the feature axis.
func (b *builder) softmaxRows(name string, in graph.LayerID) graph.LayerID {
	is := b.g.Layer(in).Out
	return b.g.Add(graph.Layer{
		Name: name, Kind: graph.Softmax,
		Deps: []graph.Dep{{Producer: in}},
		Out:  is,
		Ops:  4 * is.Elems(),
	})
}

// attnScores adds the Q*K^T matmul. The query operand is row-local (each
// score row needs one query row); the key operand is global (every row needs
// all keys), which is what forces attention to break fine-grained fusion
// unless the producer sits in an earlier FLG. keyLen is the attended context
// length; kvCacheBytes > 0 models decode-phase cache reads as weight-like
// DRAM traffic.
func (b *builder) attnScores(name string, q, k graph.LayerID, heads, keyLen int, kvCacheBytes int64) graph.LayerID {
	qs := b.g.Layer(q).Out
	dModel := qs.C
	out := graph.Shape{N: qs.N, C: heads * keyLen, H: qs.H, W: 1}
	return b.g.Add(graph.Layer{
		Name: name, Kind: graph.MatMul,
		Deps:             []graph.Dep{{Producer: q}, {Producer: k, Global: true}},
		Out:              out,
		WeightBytes:      kvCacheBytes,
		WeightsPerSample: kvCacheBytes > 0,
		Ops:              2 * int64(qs.N) * int64(qs.H) * int64(keyLen) * int64(dModel),
	})
}

// attnContext adds the scores*V matmul (row-local on scores, global on V).
func (b *builder) attnContext(name string, scores, v graph.LayerID, dModel, keyLen int, kvCacheBytes int64) graph.LayerID {
	ss := b.g.Layer(scores).Out
	out := graph.Shape{N: ss.N, C: dModel, H: ss.H, W: 1}
	return b.g.Add(graph.Layer{
		Name: name, Kind: graph.MatMul,
		Deps:             []graph.Dep{{Producer: scores}, {Producer: v, Global: true}},
		Out:              out,
		WeightBytes:      kvCacheBytes,
		WeightsPerSample: kvCacheBytes > 0,
		Ops:              2 * int64(ss.N) * int64(ss.H) * int64(keyLen) * int64(dModel),
	})
}

// gemmChunked splits a very wide projection (the LM head) into column chunks
// joined by a concat, so no single weight tensor exceeds on-chip capacity -
// the standard compiler lowering for vocabulary projections.
func (b *builder) gemmChunked(name string, in graph.LayerID, outC, chunks int) graph.LayerID {
	if chunks <= 1 {
		return b.gemmSeq(name, in, outC)
	}
	parts := make([]graph.LayerID, 0, chunks)
	done := 0
	for i := 0; i < chunks; i++ {
		width := (outC - done) / (chunks - i)
		parts = append(parts, b.gemmSeq(fmt.Sprintf("%s_c%d", name, i), in, width))
		done += width
	}
	return b.concat(name+"_cat", parts...)
}
