package models

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"soma/internal/graph"
)

func TestResNet50Shape(t *testing.T) {
	g := ResNet50(1)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// ResNet-50 at batch 1: ~4.1 GMACs = ~8.2 GOPs (+ small vector work).
	gops := float64(g.TotalOps()) / 1e9
	if gops < 7.5 || gops > 9.5 {
		t.Fatalf("ResNet-50 ops = %.2f GOPs, want ~8.2", gops)
	}
	// ~25.5 M parameters at INT8.
	mb := float64(g.TotalWeightBytes()) / (1 << 20)
	if mb < 22 || mb > 28 {
		t.Fatalf("ResNet-50 weights = %.1f MB, want ~24", mb)
	}
	// 53 convolutions + 1 FC.
	if n := g.Stats()["conv"]; n != 53 {
		t.Fatalf("ResNet-50 convs = %d, want 53", n)
	}
	if n := g.Stats()["eltwise"]; n != 16 {
		t.Fatalf("ResNet-50 adds = %d, want 16", n)
	}
}

func TestResNet50BatchScaling(t *testing.T) {
	g1, g4 := ResNet50(1), ResNet50(4)
	if g4.TotalOps() != 4*g1.TotalOps() {
		t.Fatalf("ops must scale with batch: %d vs %d", g4.TotalOps(), g1.TotalOps())
	}
	if g4.TotalWeightBytes() != g1.TotalWeightBytes() {
		t.Fatal("weights must not scale with batch")
	}
}

func TestResNet101Deeper(t *testing.T) {
	g50, g101 := ResNet50(1), ResNet101(1)
	if g101.Len() <= g50.Len() {
		t.Fatal("ResNet-101 must have more layers than ResNet-50")
	}
	// ~7.8 GMACs = ~15.7 GOPs.
	gops := float64(g101.TotalOps()) / 1e9
	if gops < 14 || gops > 18 {
		t.Fatalf("ResNet-101 ops = %.2f GOPs, want ~15.7", gops)
	}
	if n := g101.Stats()["conv"]; n != 104 {
		t.Fatalf("ResNet-101 convs = %d, want 104", n)
	}
}

func TestInceptionResNetV1(t *testing.T) {
	g := InceptionResNetV1(1)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := g.Stats()
	if st["concat"] < 20 {
		t.Fatalf("expected many concats, got %d", st["concat"])
	}
	if st["eltwise"] != 20 { // 5 A + 10 B + 5 C residual adds
		t.Fatalf("residual adds = %d, want 20", st["eltwise"])
	}
	if g.TotalOps() <= 0 || g.TotalWeightBytes() <= 0 {
		t.Fatal("accounting must be positive")
	}
	// Wider than ResNet: some layer has >2 consumers of one tensor.
	wide := 0
	for _, id := range g.ComputeLayers() {
		if len(g.Consumers(id)) >= 3 {
			wide++
		}
	}
	if wide == 0 {
		t.Fatal("inception should contain wide fan-out")
	}
}

func TestRandWireDeterminismAndSeedVariation(t *testing.T) {
	a, b := RandWire(1), RandWire(1)
	if a.DumpLayers() != b.DumpLayers() {
		t.Fatal("RandWire must be deterministic for the default seed")
	}
	c := RandWireSeeded(1, 1234)
	if a.DumpLayers() == c.DumpLayers() {
		t.Fatal("different seeds should rewire the graph")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("seeded graph invalid: %v", err)
	}
}

func TestGPT2PrefillAccounting(t *testing.T) {
	cfg := GPT2Small()
	g := GPT2Prefill(cfg, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// GPT-2 Small: ~124 M params (INT8 bytes) +/- embedding.
	mb := float64(g.TotalWeightBytes()) / (1 << 20)
	if mb < 90 || mb > 140 {
		t.Fatalf("GPT-2 Small weights = %.1f MB, want ~120", mb)
	}
	// Attention edges must be global on the K/V operand.
	globals := 0
	for _, id := range g.ComputeLayers() {
		for _, d := range g.Layer(id).Deps {
			if d.Global {
				globals++
			}
		}
	}
	if globals < 2*cfg.Layers {
		t.Fatalf("expected >= %d global edges, got %d", 2*cfg.Layers, globals)
	}
}

func TestGPT2DecodeIsBandwidthBound(t *testing.T) {
	cfg := GPT2Small()
	pre := GPT2Prefill(cfg, 1)
	dec := GPT2Decode(cfg, 1)
	// Decode computes ~1/SeqLen of the prefill work but reads the same
	// weights: compute density must collapse (paper observation 1).
	preDensity := float64(pre.TotalOps()) / float64(pre.TotalWeightBytes())
	decDensity := float64(dec.TotalOps()) / float64(dec.TotalWeightBytes())
	if decDensity > preDensity/50 {
		t.Fatalf("decode density %.2f vs prefill %.2f: not bandwidth bound", decDensity, preDensity)
	}
}

func TestGPT2DecodeKVCacheGrowsWithBatch(t *testing.T) {
	cfg := GPT2Small()
	w1 := GPT2Decode(cfg, 1).TotalWeightBytes()
	w16 := GPT2Decode(cfg, 16).TotalWeightBytes()
	if w16 <= w1 {
		t.Fatal("KV cache bytes must grow with batch")
	}
	// Static weights stay constant; the delta is exactly the KV cache.
	perSample := float64(w16-w1) / 15
	wantKV := float64(2 * cfg.Layers * cfg.SeqLen * cfg.DModel) // K+V per sample
	if perSample < 0.9*wantKV || perSample > 1.1*wantKV {
		t.Fatalf("KV growth per sample = %.0f, want ~%.0f", perSample, wantKV)
	}
}

func TestGPT2XLBiggerThanSmall(t *testing.T) {
	s := GPT2Prefill(GPT2Small(), 1)
	xl := GPT2Prefill(GPT2XL(), 1)
	if xl.TotalWeightBytes() < 10*s.TotalWeightBytes() {
		t.Fatalf("XL weights %.0fMB should dwarf Small %.0fMB",
			float64(xl.TotalWeightBytes())/(1<<20), float64(s.TotalWeightBytes())/(1<<20))
	}
}

func TestTransformerLarge(t *testing.T) {
	g := TransformerLarge(1)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := g.Stats()
	if st["matmul"] != 12 { // qk + av per encoder layer
		t.Fatalf("matmuls = %d, want 12", st["matmul"])
	}
	if st["softmax"] != 6 {
		t.Fatalf("softmaxes = %d, want 6", st["softmax"])
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("registry size = %d, want 11: %v", len(names), names)
	}
	// Scenario specs reference these names: the listing must be sorted and
	// identical on every call, not subject to map iteration order.
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for i := 0; i < 5; i++ {
		if !reflect.DeepEqual(Names(), names) {
			t.Fatal("Names() not deterministic across calls")
		}
	}
	for _, n := range names {
		g, err := Build(n, 1)
		if err != nil {
			t.Fatalf("Build(%s): %v", n, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", n, err)
		}
		if !g.IsValidOrder(g.TopoOrder()) {
			t.Fatalf("%s: topo order invalid", n)
		}
	}
	if _, err := Build("nope", 1); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown model must error, got %v", err)
	}
	if _, err := Build("resnet50", 0); err == nil {
		t.Fatal("zero batch must error")
	}
}

func TestAllModelsHaveConsistentLocalEdges(t *testing.T) {
	for _, n := range Names() {
		g, _ := Build(n, 2)
		for _, id := range g.ComputeLayers() {
			l := g.Layer(id)
			for _, d := range l.Deps {
				p := g.Layer(d.Producer)
				if d.Global || l.Kind == graph.Concat {
					continue
				}
				if p.Out.N != l.Out.N {
					t.Fatalf("%s: %s->%s batch mismatch", n, p.Name, l.Name)
				}
			}
		}
	}
}
