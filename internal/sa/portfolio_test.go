package sa

import (
	"math"
	"math/rand"
	"testing"
)

// rugged is a deliberately multimodal 1-D cost with a unique global minimum
// at x = 371, so independent restarts genuinely disagree.
func rugged(x int) float64 {
	fx := float64(x)
	return 5 + math.Abs(fx-371)/100 + 2*math.Sin(fx/7)*math.Sin(fx/13)
}

func ruggedNeighbor(x int, rng *rand.Rand) (int, bool) {
	step := rng.Intn(25) - 12
	if step == 0 {
		return x, false
	}
	return x + step, true
}

func portfolioCfg() Config { return Config{T0: 0.3, Alpha: 4, Iters: 400, Seed: 11} }

func TestPortfolioDeterministicAcrossWorkers(t *testing.T) {
	var states []int
	var costs []float64
	var chains []int
	for _, workers := range []int{1, 3, 8, 16} {
		pf := PortfolioConfig{Chains: 6, Workers: workers}
		best, c, st := RunPortfolio(portfolioCfg(), pf, 0, rugged, ruggedNeighbor)
		states = append(states, best)
		costs = append(costs, c)
		chains = append(chains, st.BestChain)
		if st.Chains != 6 {
			t.Fatalf("chains = %d", st.Chains)
		}
	}
	for i := 1; i < len(states); i++ {
		if states[i] != states[0] || costs[i] != costs[0] || chains[i] != chains[0] {
			t.Fatalf("worker count changed the outcome: %v %v %v", states, costs, chains)
		}
	}
}

func TestPortfolioNeverWorseThanAnyChain(t *testing.T) {
	cfg := portfolioCfg()
	pfBest, pfCost, st := RunPortfolio(cfg, PortfolioConfig{Chains: 8, Workers: 4},
		0, rugged, ruggedNeighbor)
	if rugged(pfBest) != pfCost {
		t.Fatalf("returned cost %g does not match returned state (%g)", pfCost, rugged(pfBest))
	}
	for c := 0; c < 8; c++ {
		chainCfg := cfg
		chainCfg.Seed = cfg.Seed + int64(c)
		_, cc, _ := Run(chainCfg, 0, rugged, ruggedNeighbor)
		if pfCost > cc {
			t.Fatalf("portfolio (%g) lost to its own chain %d (%g)", pfCost, c, cc)
		}
		if c == st.BestChain && cc != pfCost {
			t.Fatalf("winner chain %d re-run diverged: %g vs %g", c, cc, pfCost)
		}
	}
}

func TestPortfolioAggregatesStats(t *testing.T) {
	_, _, st := RunPortfolio(portfolioCfg(), PortfolioConfig{Chains: 5, Workers: 2},
		0, rugged, ruggedNeighbor)
	if len(st.PerChain) != 5 {
		t.Fatalf("per-chain stats = %d", len(st.PerChain))
	}
	var iters, accepted, improved int
	for _, s := range st.PerChain {
		iters += s.Iterations
		accepted += s.Accepted
		improved += s.Improved
	}
	if st.Total.Iterations != iters || st.Total.Accepted != accepted || st.Total.Improved != improved {
		t.Fatalf("totals do not sum per-chain stats: %+v", st)
	}
	if st.Total.BestIter != st.PerChain[st.BestChain].BestIter {
		t.Fatal("Total.BestIter must come from the winning chain")
	}
}

func TestPortfolioZeroValueIsSerialRun(t *testing.T) {
	cfg := portfolioCfg()
	serialBest, serialCost, serialStats := Run(cfg, 0, rugged, ruggedNeighbor)
	pfBest, pfCost, st := RunPortfolio(cfg, PortfolioConfig{}, 0, rugged, ruggedNeighbor)
	if pfBest != serialBest || pfCost != serialCost || st.Total != serialStats {
		t.Fatalf("zero portfolio must equal Run: %v/%g vs %v/%g", pfBest, pfCost, serialBest, serialCost)
	}
	if st.Chains != 1 || st.Workers != 1 || st.BestChain != 0 {
		t.Fatalf("normalized dimensions wrong: %+v", st)
	}
}
