package sa

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestTemperatureSchedule(t *testing.T) {
	if got := Temperature(1, 4, 0, 100); got != 1 {
		t.Fatalf("T(0) = %g, want T0", got)
	}
	if got := Temperature(1, 4, 100, 100); got != 0 {
		t.Fatalf("T(N) = %g, want 0", got)
	}
	// Monotone decreasing.
	prev := math.Inf(1)
	for n := 0; n <= 100; n += 10 {
		cur := Temperature(0.25, 4, n, 100)
		if cur > prev {
			t.Fatalf("temperature rose at n=%d: %g > %g", n, cur, prev)
		}
		prev = cur
	}
	// Paper's closed form at the midpoint: T0 * 0.5 / (1 + alpha*0.5).
	want := 0.25 * 0.5 / (1 + 4*0.5)
	if got := Temperature(0.25, 4, 50, 100); math.Abs(got-want) > 1e-12 {
		t.Fatalf("T(N/2) = %g, want %g", got, want)
	}
	if Temperature(1, 4, 5, 0) != 0 {
		t.Fatal("zero-length schedule must be cold")
	}
}

func TestRunFindsQuadraticMinimum(t *testing.T) {
	cost := func(x float64) float64 { return (x - 7) * (x - 7) }
	neighbor := func(x float64, rng *rand.Rand) (float64, bool) {
		return x + rng.NormFloat64(), true
	}
	best, bc, st := Run(DefaultConfig(5000, 1), 100.0, cost, neighbor)
	if math.Abs(best-7) > 0.5 {
		t.Fatalf("best = %g, want ~7 (cost %g)", best, bc)
	}
	if st.Accepted == 0 || st.Improved == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cost := func(x int) float64 { return math.Abs(float64(x - 42)) }
	neighbor := func(x int, rng *rand.Rand) (int, bool) {
		return x + rng.Intn(7) - 3, true
	}
	a, ac, _ := Run(DefaultConfig(2000, 99), 0, cost, neighbor)
	b, bc, _ := Run(DefaultConfig(2000, 99), 0, cost, neighbor)
	if a != b || ac != bc {
		t.Fatalf("same seed diverged: %d/%g vs %d/%g", a, ac, b, bc)
	}
	c, _, _ := Run(DefaultConfig(2000, 100), 0, cost, neighbor)
	_ = c // different seed may or may not differ; just must not crash
}

func TestRunEscapesInfeasibleStart(t *testing.T) {
	// Start in an infeasible region (cost +Inf); SA must accept the first
	// feasible candidate regardless of its cost.
	cost := func(x int) float64 {
		if x < 10 {
			return math.Inf(1)
		}
		return float64(x)
	}
	neighbor := func(x int, rng *rand.Rand) (int, bool) {
		return x + rng.Intn(5) - 1, true
	}
	best, bc, _ := Run(DefaultConfig(3000, 7), 0, cost, neighbor)
	if math.IsInf(bc, 1) {
		t.Fatalf("never escaped infeasible region: best=%d", best)
	}
	if best < 10 {
		t.Fatalf("returned infeasible best %d", best)
	}
}

func TestRunNeverReturnsWorseThanInit(t *testing.T) {
	cost := func(x float64) float64 { return x * x }
	neighbor := func(x float64, rng *rand.Rand) (float64, bool) {
		return x + rng.Float64()*10, true // only worsening moves
	}
	_, bc, _ := Run(DefaultConfig(500, 3), 2.0, cost, neighbor)
	if bc > 4.0 {
		t.Fatalf("best cost %g worse than init 4.0", bc)
	}
}

func TestRunSkipsRejectedNeighbors(t *testing.T) {
	calls := 0
	cost := func(x int) float64 { calls++; return float64(x) }
	neighbor := func(x int, rng *rand.Rand) (int, bool) { return x, false }
	_, _, st := Run(DefaultConfig(100, 1), 5, cost, neighbor)
	if st.Accepted != 0 {
		t.Fatalf("accepted moves with no valid neighbors: %+v", st)
	}
	if calls != 1 { // only the init evaluation
		t.Fatalf("cost called %d times for rejected neighbors", calls)
	}
}

func TestRunDeadlineImproveOnly(t *testing.T) {
	cfg := DefaultConfig(1_000_000, 1)
	cfg.Deadline = time.Millisecond
	cfg.PostIters = 10
	worsenings := 0
	cost := func(x float64) float64 { return x }
	neighbor := func(x float64, rng *rand.Rand) (float64, bool) {
		return x + rng.Float64() - 0.3, true
	}
	start := time.Now()
	_, _, st := Run(cfg, 100.0, cost, neighbor)
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline ignored")
	}
	if st.Iterations >= 1_000_000 {
		t.Fatal("ran the full budget despite deadline")
	}
	_ = worsenings
}

// TestRunCtxCancellation: a canceled context stops the annealer within
// cancelCheckEvery iterations, and the incumbent found so far is returned.
func TestRunCtxCancellation(t *testing.T) {
	cost := func(s int) float64 { return float64(s) }
	neighbor := func(s int, rng *rand.Rand) (int, bool) { return s - 1, true }

	// Pre-canceled: stops at the first check, before any move.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	best, _, st := RunCtx(ctx, DefaultConfig(1<<20, 1), 0, cost, neighbor)
	if st.Iterations != 0 {
		t.Fatalf("pre-canceled run iterated %d times", st.Iterations)
	}
	if best != 0 {
		t.Fatalf("pre-canceled run moved off the initial state: %d", best)
	}

	// Canceled mid-run: the neighbor cancels after a fixed number of
	// proposals, so the loop must stop within one check interval.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	cancelAt := func(s int, rng *rand.Rand) (int, bool) {
		calls++
		if calls == 10 {
			cancel()
		}
		return s - 1, true
	}
	_, _, st = RunCtx(ctx, DefaultConfig(1<<20, 1), 0, cost, cancelAt)
	if st.Iterations >= 10+2*cancelCheckEvery {
		t.Fatalf("cancellation took %d iterations to land", st.Iterations)
	}
	if st.Iterations < 10 {
		t.Fatalf("run stopped before cancel: %d iterations", st.Iterations)
	}

	// RunPortfolioCtx shares the context across chains: every chain stops.
	ctx, cancel = context.WithCancel(context.Background())
	cancel()
	_, _, pst := RunPortfolioCtx(ctx, DefaultConfig(1<<20, 1),
		PortfolioConfig{Chains: 4, Workers: 2}, 0, cost, neighbor)
	if pst.Total.Iterations != 0 {
		t.Fatalf("canceled portfolio iterated %d times", pst.Total.Iterations)
	}
}
