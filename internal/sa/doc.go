// Package sa is the simulated-annealing engine both exploration stages of
// the SoMa framework share (paper Sec. V-C).
//
// # Serial search (Run)
//
// Starting from an initial solution, each iteration applies a random
// operator, evaluates the candidate, always accepts improvements and accepts
// regressions with probability p = exp((c-c')/(c*T_n)), where the
// temperature follows the paper's schedule T_n = T0*(1-n/N)/(1+alpha*n/N).
// An optional wall-clock deadline switches the tail of the search to
// improve-only iterations (the paper's "Y more iterations" rule).
//
// The engine is generic over the state type: stage 1 anneals *core.Encoding
// (the Layer-Fusion-related Attributes), stage 2 anneals *core.Schedule (the
// DRAM-Load-and-Store-related Attributes), and the Cocco baseline reuses the
// same engine for its fusion search. States must be value-like: neighbor
// functions clone before mutating.
//
// # Portfolio search (RunPortfolio)
//
// RunPortfolio is the parallel extension of the paper's search: it runs
// several independently seeded chains (seed, seed+1, ...) from the same
// initial solution - a classic portfolio of restarts - on a bounded worker
// pool, and selects the winner by (cost, chain index). Because every chain
// is deterministic given its seed and the selection rule is total, the
// result is a pure function of the configuration: the Workers knob changes
// wall-clock time only, never the returned schedule. This is what makes
// figure sweeps reproducible while still scaling across cores.
package sa
