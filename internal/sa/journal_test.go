package sa

import (
	"math"
	"math/rand"
	"testing"

	"soma/internal/obs"
)

// kindedMoves is a tiny MoveState over an integer walk that implements both
// optional journal extensions, for exercising the journal plumbing end to
// end without a real simulator.
type kindedMoves struct {
	cur, cand int
	kind      string
	resumed   int64
}

func (m *kindedMoves) InitCost() float64 { return math.Abs(float64(m.cur - 42)) }

func (m *kindedMoves) Propose(rng *rand.Rand) (float64, bool) {
	step := rng.Intn(7) - 3
	if step == 0 {
		return 0, false
	}
	if step > 0 {
		m.kind = "up"
	} else {
		m.kind = "down"
	}
	m.cand = m.cur + step
	m.resumed++
	return math.Abs(float64(m.cand - 42)), true
}

func (m *kindedMoves) Accept()                 { m.cur = m.cand }
func (m *kindedMoves) Reject()                 {}
func (m *kindedMoves) Snapshot() int           { return m.cur }
func (m *kindedMoves) MoveKind() string        { return m.kind }
func (m *kindedMoves) IncCounts() (r, f int64) { return m.resumed, 0 }

// TestJournalDoesNotPerturbRun pins the journal's pass-through contract at
// the annealer level: a fixed-seed run returns the identical solution, cost,
// and stats with a journal attached or not, serial and portfolio alike.
func TestJournalDoesNotPerturbRun(t *testing.T) {
	run := func(j *obs.Journal) (int, float64, PortfolioStats) {
		cfg := DefaultConfig(3000, 7)
		pf := PortfolioConfig{Chains: 3, Workers: 2}
		if j != nil {
			pf.Journal = func(c int) *obs.Series { return j.Series("test", 0, c) }
		}
		return RunMovesPortfolio(cfg, pf, func(int) MoveState[int] {
			return &kindedMoves{cur: 500}
		})
	}
	bareBest, bareCost, bareStats := run(nil)
	j := obs.NewJournalWith(16, 64)
	jBest, jCost, jStats := run(j)
	if bareBest != jBest || bareCost != jCost {
		t.Fatalf("journal perturbed the run: %d/%g vs %d/%g",
			bareBest, bareCost, jBest, jCost)
	}
	for c := range bareStats.PerChain {
		if bareStats.PerChain[c] != jStats.PerChain[c] {
			t.Fatalf("chain %d stats diverged: %+v vs %+v",
				c, bareStats.PerChain[c], jStats.PerChain[c])
		}
	}

	rep := obs.BuildConvergence(j, "test")
	if len(rep.Series) != 3 {
		t.Fatalf("series = %d, want one per chain", len(rep.Series))
	}
	for c, cs := range rep.Series {
		st := jStats.PerChain[c]
		if cs.Chain != c || !cs.Finished {
			t.Errorf("series %d = chain %d finished %v", c, cs.Chain, cs.Finished)
		}
		if cs.Moves != int64(st.Iterations) {
			t.Errorf("chain %d journaled %d moves, stats say %d", c, cs.Moves, st.Iterations)
		}
		if cs.BestMove != int64(st.BestIter) {
			t.Errorf("chain %d best move %d, stats say %d", c, cs.BestMove, st.BestIter)
		}
		var acc, rej int64
		for _, kc := range cs.Kinds {
			acc += kc.Accepted
			rej += kc.Rejected
		}
		if acc != int64(st.Accepted) || rej != int64(st.Rejected) {
			t.Errorf("chain %d kind tallies %d/%d, stats %d/%d",
				c, acc, rej, st.Accepted, st.Rejected)
		}
		// kindedMoves bumps its resumed count on every productive proposal.
		last := cs.Samples[len(cs.Samples)-1]
		if want := int64(st.Accepted + st.Rejected); last.IncResumed != want {
			t.Errorf("chain %d final IncResumed = %d, want %d", c, last.IncResumed, want)
		}
	}
	d := rep.Diagnostics
	if d == nil || d.Chain != jStats.BestChain {
		t.Fatalf("diagnostics winner = %+v, portfolio says chain %d", d, jStats.BestChain)
	}
	if d.FinalBest != jCost {
		t.Errorf("diagnostics FinalBest = %g, want %g", d.FinalBest, jCost)
	}
}

// TestJournalSingleChainSeries: the Chains==1 fast path wires chain 0's
// series too.
func TestJournalSingleChainSeries(t *testing.T) {
	j := obs.NewJournalWith(8, 32)
	cfg := DefaultConfig(500, 3)
	pf := PortfolioConfig{Journal: func(c int) *obs.Series { return j.Series("solo", 1, c) }}
	_, cost, _ := RunMovesPortfolio(cfg, pf, func(int) MoveState[int] {
		return &kindedMoves{cur: 99}
	})
	rep := obs.BuildConvergence(j)
	if len(rep.Series) != 1 || rep.Series[0].Chain != 0 || rep.Series[0].AllocIter != 1 {
		t.Fatalf("series = %+v, want single chain-0 series", rep.Series)
	}
	if rep.Series[0].FinalBest != cost {
		t.Errorf("journaled final best %g, run returned %g", rep.Series[0].FinalBest, cost)
	}
	if len(rep.Series[0].Samples) < 2 {
		t.Errorf("only %d samples for a 500-move run at stride 8", len(rep.Series[0].Samples))
	}
}
