package sa

import (
	"context"
	"math"
	"math/rand"
	"time"
)

// Config tunes one annealing run.
type Config struct {
	// T0 is the initial temperature; Alpha the cooling rate.
	T0, Alpha float64
	// Iters is N, the total iteration budget.
	Iters int
	// Seed drives the operator selection (deterministic runs).
	Seed int64
	// Deadline, when positive, caps wall-clock time; after it expires the
	// run performs PostIters improve-only iterations and stops.
	Deadline  time.Duration
	PostIters int
	// OnImprove, when non-nil, is invoked after every improvement of the
	// incumbent with the iteration index and the new best cost. It observes
	// the search only: it must not mutate shared state, and it runs on the
	// annealing goroutine, so it should be fast.
	OnImprove func(iter int, cost float64)
}

// DefaultConfig returns the temperatures used across the experiments.
func DefaultConfig(iters int, seed int64) Config {
	return Config{T0: 0.25, Alpha: 4, Iters: iters, Seed: seed, PostIters: 0}
}

// Stats summarizes a run.
type Stats struct {
	Iterations int
	Accepted   int
	Improved   int
	BestIter   int
}

// Temperature evaluates the paper's cooling schedule at iteration n of N.
func Temperature(t0, alpha float64, n, total int) float64 {
	if total <= 0 {
		return 0
	}
	frac := float64(n) / float64(total)
	if frac >= 1 {
		return 0
	}
	return t0 * (1 - frac) / (1 + alpha*frac)
}

// Run anneals from init. neighbor proposes a candidate derived from the
// current state (returning ok=false for unproductive moves, which are
// skipped); cost evaluates a state, with +Inf marking infeasible candidates.
// Run returns the best state seen. States must be value-like: neighbor must
// not mutate its argument.
func Run[S any](cfg Config, init S, cost func(S) float64,
	neighbor func(S, *rand.Rand) (S, bool)) (S, float64, Stats) {
	return RunCtx(context.Background(), cfg, init, cost, neighbor)
}

// cancelCheckEvery is how many iterations pass between context polls: rare
// enough to stay off the hot path, frequent enough that cancellation lands
// within a handful of schedule evaluations.
const cancelCheckEvery = 32

// RunCtx is Run with cooperative cancellation: when ctx is canceled the loop
// stops within cancelCheckEvery iterations and returns the best state seen so
// far. Callers that must distinguish a canceled run from a converged one
// check ctx.Err() after RunCtx returns (the annealer itself never fails).
func RunCtx[S any](ctx context.Context, cfg Config, init S, cost func(S) float64,
	neighbor func(S, *rand.Rand) (S, bool)) (S, float64, Stats) {

	rng := rand.New(rand.NewSource(cfg.Seed))
	cur, curCost := init, cost(init)
	best, bestCost := cur, curCost
	var st Stats

	var deadline time.Time
	if cfg.Deadline > 0 {
		deadline = time.Now().Add(cfg.Deadline)
	}
	improveOnly := false
	post := cfg.PostIters

	for n := 0; n < cfg.Iters; n++ {
		if n%cancelCheckEvery == 0 && ctx.Err() != nil {
			break
		}
		if !deadline.IsZero() && !improveOnly && n%64 == 0 && time.Now().After(deadline) {
			improveOnly = true
		}
		if improveOnly {
			if post <= 0 {
				break
			}
			post--
		}
		st.Iterations++
		cand, ok := neighbor(cur, rng)
		if !ok {
			continue
		}
		cc := cost(cand)
		accept := false
		switch {
		case cc <= curCost:
			accept = true
		case math.IsInf(curCost, 1):
			accept = !math.IsInf(cc, 1)
		case improveOnly || math.IsInf(cc, 1):
			accept = false
		default:
			temp := Temperature(cfg.T0, cfg.Alpha, n, cfg.Iters)
			if temp > 0 {
				p := math.Exp((curCost - cc) / (curCost * temp))
				accept = rng.Float64() < p
			}
		}
		if !accept {
			continue
		}
		st.Accepted++
		cur, curCost = cand, cc
		if curCost < bestCost {
			best, bestCost = cur, curCost
			st.Improved++
			st.BestIter = n
			if cfg.OnImprove != nil {
				cfg.OnImprove(n, bestCost)
			}
		}
	}
	return best, bestCost, st
}
