package sa

import (
	"context"
	"math/rand"
	"time"

	"soma/internal/obs"
)

// Config tunes one annealing run.
type Config struct {
	// T0 is the initial temperature; Alpha the cooling rate.
	T0, Alpha float64
	// Iters is N, the total iteration budget.
	Iters int
	// Seed drives the operator selection (deterministic runs).
	Seed int64
	// Deadline, when positive, caps wall-clock time; after it expires the
	// run performs PostIters improve-only iterations and stops.
	Deadline  time.Duration
	PostIters int
	// OnImprove, when non-nil, is invoked after every improvement of the
	// incumbent with the iteration index and the new best cost. It observes
	// the search only: it must not mutate shared state, and it runs on the
	// annealing goroutine, so it should be fast.
	OnImprove func(iter int, cost float64)
	// Telemetry, when non-nil, receives move counters and best-cost/
	// temperature gauges. Pass-through only: it never influences the rng
	// stream or the acceptance rule, so runs are byte-identical with or
	// without it. Counters are added in bulk when a chain finishes; gauges
	// are set on incumbent improvements (rare), so the hot loop pays
	// nothing.
	Telemetry *Telemetry
	// Journal, when non-nil, receives this chain's convergence trajectory:
	// a sample of the run's cumulative counters, costs and temperature every
	// Journal.SampleStride() moves, plus per-operator accept/reject tallies
	// when the MoveState implements MoveKinder. Pass-through only, like
	// Telemetry: it never draws from the rng or alters control flow, so
	// fixed-seed results are byte-identical with or without it.
	Journal *obs.Series
}

// Telemetry is the annealer's bundle of obs instruments. Fields may be nil
// individually (obs instruments are no-ops on nil receivers), and a nil
// *Telemetry disables the whole bundle. One Telemetry may be shared by all
// chains of a portfolio: counters are atomic, and the gauges are
// last-write-wins progress indicators.
type Telemetry struct {
	// Proposed counts every Propose call (productive or not); Accepted and
	// Rejected split the productive ones by the acceptance draw; Improved
	// counts incumbent improvements.
	Proposed, Accepted, Rejected, Improved *obs.Counter
	// BestCost and Temp are sampled at each incumbent improvement.
	BestCost, Temp *obs.Gauge
}

// NewTelemetry registers the annealer's metric family on reg under the
// given stage label ("stage1", "stage2", "cocco", ...). Nil-safe: a nil
// registry yields a nil Telemetry.
func NewTelemetry(reg *obs.Registry, stage string) *Telemetry {
	if reg == nil {
		return nil
	}
	return &Telemetry{
		Proposed: reg.Counter("soma_sa_moves_proposed_total",
			"Annealing moves proposed (including unproductive draws).", "stage", stage),
		Accepted: reg.Counter("soma_sa_moves_accepted_total",
			"Annealing moves accepted.", "stage", stage),
		Rejected: reg.Counter("soma_sa_moves_rejected_total",
			"Annealing moves rejected by the acceptance rule.", "stage", stage),
		Improved: reg.Counter("soma_sa_improvements_total",
			"Incumbent (best-so-far) improvements.", "stage", stage),
		BestCost: reg.Gauge("soma_sa_best_cost",
			"Best cost seen, sampled at each improvement.", "stage", stage),
		Temp: reg.Gauge("soma_sa_temperature",
			"Cooling-schedule temperature at the last improvement.", "stage", stage),
	}
}

// DefaultConfig returns the temperatures used across the experiments.
func DefaultConfig(iters int, seed int64) Config {
	return Config{T0: 0.25, Alpha: 4, Iters: iters, Seed: seed, PostIters: 0}
}

// Stats summarizes a run.
type Stats struct {
	Iterations int
	Accepted   int
	// Rejected counts productive proposals turned down by the acceptance
	// rule (Iterations - Accepted - Rejected is the unproductive draws).
	Rejected int
	Improved int
	BestIter int
}

// Temperature evaluates the paper's cooling schedule at iteration n of N.
func Temperature(t0, alpha float64, n, total int) float64 {
	if total <= 0 {
		return 0
	}
	frac := float64(n) / float64(total)
	if frac >= 1 {
		return 0
	}
	return t0 * (1 - frac) / (1 + alpha*frac)
}

// Run anneals from init. neighbor proposes a candidate derived from the
// current state (returning ok=false for unproductive moves, which are
// skipped); cost evaluates a state, with +Inf marking infeasible candidates.
// Run returns the best state seen. States must be value-like: neighbor must
// not mutate its argument.
func Run[S any](cfg Config, init S, cost func(S) float64,
	neighbor func(S, *rand.Rand) (S, bool)) (S, float64, Stats) {
	return RunCtx(context.Background(), cfg, init, cost, neighbor)
}

// cancelCheckEvery is how many iterations pass between context polls: rare
// enough to stay off the hot path, frequent enough that cancellation lands
// within a handful of schedule evaluations.
const cancelCheckEvery = 32

// RunCtx is Run with cooperative cancellation: when ctx is canceled the loop
// stops within cancelCheckEvery iterations and returns the best state seen so
// far. Callers that must distinguish a canceled run from a converged one
// check ctx.Err() after RunCtx returns (the annealer itself never fails).
//
// RunCtx is the clone-per-candidate adapter over RunMovesCtx; both draw the
// same rng sequence under the same Config.
func RunCtx[S any](ctx context.Context, cfg Config, init S, cost func(S) float64,
	neighbor func(S, *rand.Rand) (S, bool)) (S, float64, Stats) {
	return RunMovesCtx[S](ctx, cfg, &cloneMoves[S]{cur: init, cost: cost, neighbor: neighbor})
}
