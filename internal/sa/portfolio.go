package sa

import (
	"context"
	"math/rand"

	"soma/internal/obs"
)

// PortfolioConfig sizes a portfolio run: Chains independent annealing chains
// executed on at most Workers goroutines. Zero or negative values normalize
// to 1, so the zero value is exactly the classic serial Run.
type PortfolioConfig struct {
	// Chains is the number of independently seeded restarts. Chain i runs
	// with seed Config.Seed+i, so the portfolio's outcome is a pure
	// function of (Config, Chains) - the Workers knob only changes
	// wall-clock time, never the returned solution (provided
	// Config.Deadline is zero; see RunPortfolio).
	Chains int
	// Workers bounds the goroutines running chains concurrently.
	Workers int
	// OnImprove, when non-nil, receives every chain's incumbent
	// improvements tagged with the chain index. Chains run concurrently, so
	// calls may arrive interleaved from multiple goroutines; the callback
	// must be safe for concurrent use and must not influence the search.
	OnImprove func(chain, iter int, cost float64)
	// Journal, when non-nil, hands each chain its own convergence series
	// (Config.Journal for chain c is Journal(c)). It is called once per
	// chain before the chain goroutines start, so obs.Journal.Series
	// creation order stays deterministic; a nil return disables journaling
	// for that chain.
	Journal func(chain int) *obs.Series
}

func (p PortfolioConfig) normalized() PortfolioConfig {
	if p.Chains < 1 {
		p.Chains = 1
	}
	if p.Workers < 1 {
		p.Workers = 1
	}
	if p.Workers > p.Chains {
		p.Workers = p.Chains
	}
	return p
}

// PortfolioStats aggregates the chain runs.
type PortfolioStats struct {
	// Total sums Iterations/Accepted/Improved across every chain;
	// Total.BestIter is the winning chain's best iteration.
	Total Stats
	// Chains/Workers are the normalized pool dimensions actually used.
	Chains, Workers int
	// BestChain is the index of the winning chain (ties break toward the
	// lowest index, which keeps selection deterministic).
	BestChain int
	// PerChain holds each chain's own statistics.
	PerChain []Stats
}

// RunPortfolio anneals Chains independent chains from the same initial
// solution and returns the best state found across all of them. Every chain
// is the deterministic serial Run under its derived seed, and the winner is
// selected by (cost, chain index), so a fixed Config.Seed yields an
// identical result for any Workers value - parallelism is observationally
// equivalent to the serial sweep.
//
// The invariance requires Config.Deadline == 0: a wall-clock deadline makes
// each chain's improve-only cutoff depend on when the pool scheduled it, so
// deadline runs trade determinism for bounded time just like serial Run.
//
// cost and neighbor must be safe for concurrent use when Workers > 1
// (neighbor already must not mutate its argument; cost must not mutate
// shared state without synchronization).
func RunPortfolio[S any](cfg Config, pf PortfolioConfig, init S, cost func(S) float64,
	neighbor func(S, *rand.Rand) (S, bool)) (S, float64, PortfolioStats) {
	return RunPortfolioCtx(context.Background(), cfg, pf, init, cost, neighbor)
}

// RunPortfolioCtx is RunPortfolio with cooperative cancellation: ctx is
// shared by every chain, so canceling it stops the whole portfolio within
// cancelCheckEvery iterations per chain. The best state seen across the
// chains that did run is still returned; callers check ctx.Err() to tell a
// canceled portfolio from a converged one.
func RunPortfolioCtx[S any](ctx context.Context, cfg Config, pf PortfolioConfig, init S,
	cost func(S) float64, neighbor func(S, *rand.Rand) (S, bool)) (S, float64, PortfolioStats) {

	return RunMovesPortfolioCtx[S](ctx, cfg, pf, func(int) MoveState[S] {
		// The clone interface's states are value-like, so every chain can
		// start from the same init value; each adapter instance is still
		// private to its chain.
		return &cloneMoves[S]{cur: init, cost: cost, neighbor: neighbor}
	})
}
