package sa

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"time"

	"soma/internal/obs"
)

// journalSample packs the loop's cumulative counters into one obs.Sample.
func journalSample(move int64, st Stats, bestCost, curCost, temp float64,
	incs IncCountSource) obs.Sample {
	sm := obs.Sample{Move: move, Proposed: int64(st.Iterations),
		Accepted: int64(st.Accepted), Rejected: int64(st.Rejected),
		Improved: int64(st.Improved), BestCost: bestCost, CurCost: curCost,
		Temperature: temp}
	if incs != nil {
		sm.IncResumed, sm.IncFallbacks = incs.IncCounts()
	}
	return sm
}

// MoveState is the move-aware face of an annealing problem. Where the
// classic Run interface clones the whole state per candidate (neighbor +
// cost), a MoveState applies one move in place, reports its cost, and then
// commits or rolls it back depending on the acceptance draw - which is what
// lets an incremental evaluator (sim.Incremental) splice cached simulation
// state instead of replaying the schedule per candidate.
//
// The contract: Propose applies at most one move and returns its cost;
// ok=false means the drawn move was unproductive, the state is unchanged,
// and neither Accept nor Reject will be called. After ok=true, exactly one
// of Accept/Reject follows before the next Propose. Snapshot captures the
// current accepted state as a value the annealer may retain across further
// moves (it is called once at init and on every incumbent improvement).
type MoveState[S any] interface {
	// InitCost evaluates the initial state (+Inf marks infeasible).
	InitCost() float64
	// Propose applies one candidate move and returns its cost.
	Propose(rng *rand.Rand) (cost float64, ok bool)
	// Accept commits the proposed move.
	Accept()
	// Reject rolls the proposed move back.
	Reject()
	// Snapshot captures the accepted state for best-so-far tracking.
	Snapshot() S
}

// MoveKinder is an optional MoveState extension. A state that implements it
// reports which operator its last productive Propose drew ("order",
// "move-tensor", ...), letting Config.Journal tally accept/reject counts per
// move kind. MoveKind is only consulted after Propose returned ok=true.
type MoveKinder interface {
	MoveKind() string
}

// IncCountSource is an optional MoveState extension exposing the incremental
// evaluator's cumulative resumed/fallback proposal counts (sim.IncStats) so
// journal samples can track the incremental-vs-fallback ratio over a run.
type IncCountSource interface {
	IncCounts() (resumed, fallbacks int64)
}

// RunMoves anneals a MoveState with the paper's acceptance rule and cooling
// schedule. It is the engine underneath Run/RunCtx: both interfaces draw
// the same rng sequence under the same Config, so migrating a caller from
// the clone interface to a MoveState preserves its search trajectory
// exactly (given the costs are bit-identical).
func RunMoves[S any](cfg Config, ms MoveState[S]) (S, float64, Stats) {
	return RunMovesCtx(context.Background(), cfg, ms)
}

// RunMovesCtx is RunMoves with cooperative cancellation, mirroring RunCtx.
func RunMovesCtx[S any](ctx context.Context, cfg Config, ms MoveState[S]) (S, float64, Stats) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	curCost := ms.InitCost()
	best, bestCost := ms.Snapshot(), curCost
	var st Stats

	// Journal setup: resolved once, outside the hot loop. The journal only
	// ever reads values the loop already computes - it never touches rng or
	// steering state, which is what keeps fixed-seed runs byte-identical
	// with it on or off.
	jr := cfg.Journal
	var jstride int64
	var kinder MoveKinder
	var incs IncCountSource
	if jr != nil {
		jstride = int64(jr.SampleStride())
		kinder, _ = ms.(MoveKinder)
		incs, _ = ms.(IncCountSource)
		jr.Record(journalSample(0, st, bestCost, curCost,
			Temperature(cfg.T0, cfg.Alpha, 0, cfg.Iters), incs))
	}

	var deadline time.Time
	if cfg.Deadline > 0 {
		deadline = time.Now().Add(cfg.Deadline)
	}
	improveOnly := false
	post := cfg.PostIters

	for n := 0; n < cfg.Iters; n++ {
		if n%cancelCheckEvery == 0 && ctx.Err() != nil {
			break
		}
		if !deadline.IsZero() && !improveOnly && n%64 == 0 && time.Now().After(deadline) {
			improveOnly = true
		}
		if improveOnly {
			if post <= 0 {
				break
			}
			post--
		}
		st.Iterations++
		cc, ok := ms.Propose(rng)
		if ok {
			accept := false
			switch {
			case cc <= curCost:
				accept = true
			case math.IsInf(curCost, 1):
				accept = !math.IsInf(cc, 1)
			case improveOnly || math.IsInf(cc, 1):
				accept = false
			default:
				temp := Temperature(cfg.T0, cfg.Alpha, n, cfg.Iters)
				if temp > 0 {
					p := math.Exp((curCost - cc) / (curCost * temp))
					accept = rng.Float64() < p
				}
			}
			if accept {
				st.Accepted++
				ms.Accept()
				curCost = cc
				if curCost < bestCost {
					best, bestCost = ms.Snapshot(), curCost
					st.Improved++
					st.BestIter = n
					if cfg.OnImprove != nil {
						cfg.OnImprove(n, bestCost)
					}
					if tel := cfg.Telemetry; tel != nil {
						tel.BestCost.Set(bestCost)
						tel.Temp.Set(Temperature(cfg.T0, cfg.Alpha, n, cfg.Iters))
					}
				}
			} else {
				st.Rejected++
				ms.Reject()
			}
			if jr != nil && kinder != nil {
				jr.MoveOutcome(kinder.MoveKind(), accept)
			}
		}
		if jr != nil && jstride > 0 && int64(st.Iterations)%jstride == 0 {
			jr.Record(journalSample(int64(st.Iterations), st, bestCost, curCost,
				Temperature(cfg.T0, cfg.Alpha, n+1, cfg.Iters), incs))
		}
	}
	if jr != nil {
		jr.Finish(journalSample(int64(st.Iterations), st, bestCost, curCost,
			Temperature(cfg.T0, cfg.Alpha, st.Iterations, cfg.Iters), incs),
			int64(st.BestIter))
	}
	if tel := cfg.Telemetry; tel != nil {
		// Bulk-add once per chain so the hot loop pays no atomics.
		tel.Proposed.Add(int64(st.Iterations))
		tel.Accepted.Add(int64(st.Accepted))
		tel.Rejected.Add(int64(st.Rejected))
		tel.Improved.Add(int64(st.Improved))
	}
	return best, bestCost, st
}

// RunMovesPortfolio runs Chains independently seeded MoveState chains and
// returns the best state across them, exactly like RunPortfolio for the
// clone interface. newState builds chain c's private MoveState: move-aware
// states are stateful by design (they carry spliced evaluator caches), so
// unlike the clone interface the chains cannot share one state value - each
// gets its own, and newState must be safe to call from the worker
// goroutines.
func RunMovesPortfolio[S any](cfg Config, pf PortfolioConfig,
	newState func(chain int) MoveState[S]) (S, float64, PortfolioStats) {
	return RunMovesPortfolioCtx(context.Background(), cfg, pf, newState)
}

// RunMovesPortfolioCtx is RunMovesPortfolio with cooperative cancellation.
// The chain seeding, winner selection, and stats aggregation match
// RunPortfolioCtx, so a fixed Config.Seed yields an identical result for
// any Workers value (Config.Deadline == 0, as ever).
func RunMovesPortfolioCtx[S any](ctx context.Context, cfg Config, pf PortfolioConfig,
	newState func(chain int) MoveState[S]) (S, float64, PortfolioStats) {

	pf = pf.normalized()
	if pf.Chains == 1 {
		if pf.OnImprove != nil {
			cfg.OnImprove = func(iter int, c float64) { pf.OnImprove(0, iter, c) }
		}
		if pf.Journal != nil {
			cfg.Journal = pf.Journal(0)
		}
		best, bestCost, st := RunMovesCtx(ctx, cfg, newState(0))
		return best, bestCost, PortfolioStats{
			Total: st, Chains: 1, Workers: 1, PerChain: []Stats{st}}
	}

	type outcome struct {
		best S
		cost float64
		st   Stats
	}
	results := make([]outcome, pf.Chains)
	var wg sync.WaitGroup
	sem := make(chan struct{}, pf.Workers)
	for c := 0; c < pf.Chains; c++ {
		// Per-chain configs are derived on the caller's goroutine so journal
		// series come into existence in chain order, not pool-schedule order.
		chainCfg := cfg
		chainCfg.Seed = cfg.Seed + int64(c)
		if pf.OnImprove != nil {
			chain := c
			chainCfg.OnImprove = func(iter int, bc float64) { pf.OnImprove(chain, iter, bc) }
		}
		if pf.Journal != nil {
			chainCfg.Journal = pf.Journal(c)
		}
		wg.Add(1)
		go func(c int, chainCfg Config) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			best, bc, st := RunMovesCtx(ctx, chainCfg, newState(c))
			results[c] = outcome{best: best, cost: bc, st: st}
		}(c, chainCfg)
	}
	wg.Wait()

	ps := PortfolioStats{Chains: pf.Chains, Workers: pf.Workers,
		PerChain: make([]Stats, pf.Chains)}
	winner := 0
	for c, r := range results {
		ps.PerChain[c] = r.st
		ps.Total.Iterations += r.st.Iterations
		ps.Total.Accepted += r.st.Accepted
		ps.Total.Rejected += r.st.Rejected
		ps.Total.Improved += r.st.Improved
		if r.cost < results[winner].cost {
			winner = c
		}
	}
	ps.BestChain = winner
	ps.Total.BestIter = results[winner].st.BestIter
	return results[winner].best, results[winner].cost, ps
}

// cloneMoves adapts the classic clone-per-candidate interface (neighbor +
// cost) to a MoveState. The rng draw sequence is exactly the historical
// RunCtx loop's: neighbor's draws, then the acceptance draw.
type cloneMoves[S any] struct {
	cur, cand S
	cost      func(S) float64
	neighbor  func(S, *rand.Rand) (S, bool)
}

func (m *cloneMoves[S]) InitCost() float64 { return m.cost(m.cur) }

func (m *cloneMoves[S]) Propose(rng *rand.Rand) (float64, bool) {
	cand, ok := m.neighbor(m.cur, rng)
	if !ok {
		return 0, false
	}
	m.cand = cand
	return m.cost(cand), true
}

func (m *cloneMoves[S]) Accept()     { m.cur = m.cand }
func (m *cloneMoves[S]) Reject()     {}
func (m *cloneMoves[S]) Snapshot() S { return m.cur }
