package isa

import (
	"bytes"
	"strings"
	"testing"

	"soma/internal/hw"
)

func TestJSONRoundTrip(t *testing.T) {
	s := testSchedule(t)
	p, err := Generate(s, hw.Edge().GBufBytes)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"version": 1`) {
		t.Fatalf("missing version: %s", buf.String()[:200])
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Instrs) != len(p.Instrs) {
		t.Fatalf("instr count: %d vs %d", len(back.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		a, b := p.Instrs[i], back.Instrs[i]
		if a.Op != b.Op || a.Bytes != b.Bytes || a.GBufAddr != b.GBufAddr ||
			a.Label != b.Label || a.TileSeq != b.TileSeq {
			t.Fatalf("instr %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
	if back.GBufHighWater != p.GBufHighWater || back.DRAMSize != p.DRAMSize {
		t.Fatal("header mismatch")
	}
	if err := back.Validate(hw.Edge().GBufBytes); err != nil {
		t.Fatalf("round-tripped program invalid: %v", err)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}
