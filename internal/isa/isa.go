// Package isa lowers a scheduled workload to the paper's abstract
// instruction system (Sec. II): load (DRAM -> GBUF), store (GBUF -> DRAM)
// and compute instructions, with start-of/end-of dependency markers between
// them. It also performs GBUF address allocation - a first-fit linear-scan
// allocator over the Living Durations - and DRAM address assignment, which
// is the part of the SoMa compiler flow (IR Generator + Instruction
// Generator) that sits below the scheduler.
package isa

import (
	"fmt"
	"io"
	"sort"

	"soma/internal/core"
	"soma/internal/graph"
)

// Op is the abstract opcode.
type Op int

const (
	// Load moves a tensor from DRAM into the GBUF.
	Load Op = iota
	// Store moves a tensor from the GBUF back to DRAM.
	Store
	// Compute runs one tile on the core group.
	Compute
)

func (o Op) String() string {
	switch o {
	case Load:
		return "LOAD"
	case Store:
		return "STORE"
	case Compute:
		return "COMPUTE"
	default:
		return "???"
	}
}

// Instr is one abstract instruction. DependsOn lists instruction IDs whose
// completion gates this instruction's start (the "markers" of Fig. 4).
type Instr struct {
	ID int
	Op Op
	// Label is a human-readable operand description (e.g. "W conv1",
	// "I pool2#3", "conv1#0").
	Label string
	// Bytes moved (Load/Store only).
	Bytes int64
	// GBufAddr / DRAMAddr are the resolved addresses (Load/Store only).
	GBufAddr int64
	DRAMAddr int64
	// TileSeq / TensorID link back to the schedule.
	TileSeq   int
	TensorID  int
	DependsOn []int
}

// Program is a lowered instruction stream plus its address maps.
type Program struct {
	Instrs []Instr
	// GBufHighWater is the highest allocated GBUF address + 1.
	GBufHighWater int64
	// DRAMSize is the total DRAM image size.
	DRAMSize int64
	// Objects names the DRAM-resident objects (weights, boundary fmaps).
	Objects []DRAMObject
}

// DRAMObject is one named region of the DRAM image.
type DRAMObject struct {
	Name  string
	Addr  int64
	Bytes int64
}

// Generate lowers a schedule onto a GBUF of the given capacity. It fails if
// first-fit allocation cannot place every living tensor (fragmentation can
// require slightly more than the peak occupancy).
func Generate(s *core.Schedule, gbufBytes int64) (*Program, error) {
	p := &Program{}

	// --- DRAM image -----------------------------------------------------
	// One object per weighted layer plus one per DRAM-crossing fmap.
	dramBase := map[string]int64{}
	var dramTop int64
	object := func(name string, bytes int64) int64 {
		if addr, ok := dramBase[name]; ok {
			return addr
		}
		addr := dramTop
		dramBase[name] = addr
		dramTop += bytes
		p.Objects = append(p.Objects, DRAMObject{Name: name, Addr: addr, Bytes: bytes})
		return addr
	}

	// --- GBUF allocation over living intervals ---------------------------
	spans := make([]span, 0, len(s.OnChip)+len(s.Tensors))
	for _, iv := range s.OnChip {
		spans = append(spans, span{iv.Lo, iv.Hi, iv.Bytes, -1})
	}
	for i := range s.Tensors {
		t := &s.Tensors[i]
		if t.Kind.IsLoad() {
			spans = append(spans, span{t.Start, t.Release, t.Bytes, t.ID})
		} else {
			hi := t.End
			if t.OnChipHi > hi {
				hi = t.OnChipHi
			}
			spans = append(spans, span{t.Producer, hi, t.Bytes, t.ID})
		}
	}
	// First-fit linear-scan allocation. Fragmentation depends on the
	// placement order of same-start spans, so several tie-break
	// strategies are attempted before giving up.
	strategies := []func(a, b span) bool{
		// Longest lifetime first: long-lived tensors sink to low
		// addresses and short-lived traffic churns above them.
		func(a, b span) bool {
			if a.lo != b.lo {
				return a.lo < b.lo
			}
			return a.hi > b.hi
		},
		// Largest first.
		func(a, b span) bool {
			if a.lo != b.lo {
				return a.lo < b.lo
			}
			return a.bytes > b.bytes
		},
		// Plain arrival order.
		func(a, b span) bool { return a.lo < b.lo },
	}
	var gbufAddr map[int]int64
	var high int64
	var err error
	for _, less := range strategies {
		ordered := append([]span(nil), spans...)
		sort.SliceStable(ordered, func(a, b int) bool { return less(ordered[a], ordered[b]) })
		gbufAddr, high, err = allocateSpans(ordered, gbufBytes)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	p.GBufHighWater = high

	// --- Instruction emission --------------------------------------------
	// DMA instructions follow the DRAM Tensor Order; compute instructions
	// follow the tile sequence. Dependencies mirror the evaluator's start
	// conditions exactly.
	tensorInstr := make(map[int]int, len(s.Tensors))
	tileInstr := make(map[int]int, s.NumTiles())
	add := func(in Instr) int {
		in.ID = len(p.Instrs)
		p.Instrs = append(p.Instrs, in)
		return in.ID
	}

	// Gating tensors per tile (loads at first use, stores at End).
	gate := make([][]int, s.NumTiles()+1)
	for i := range s.Tensors {
		t := &s.Tensors[i]
		if t.Kind.IsLoad() {
			gate[t.FirstUse] = append(gate[t.FirstUse], t.ID)
		} else if t.End < s.NumTiles() {
			gate[t.End] = append(gate[t.End], t.ID)
		}
	}

	// Emit in simulation order so every dependency already has an ID:
	// walk tiles and tensors with the same two-pointer rule as the
	// evaluator.
	i, j := 0, 0
	for i < s.NumTiles() || j < len(s.Tensors) {
		progressed := false
		for j < len(s.Tensors) {
			t := &s.Tensors[s.Order[j]]
			if t.Kind.IsLoad() {
				if i < t.Start {
					break
				}
			} else if i <= t.Producer {
				break
			}
			deps := make([]int, 0, 3)
			if j > 0 {
				deps = append(deps, tensorInstr[s.Order[j-1]])
			}
			op := Load
			name := t.Kind.String() + " " + s.G.Layer(t.Layer).Name
			switch t.Kind {
			case core.LoadWeight:
				object("weights:"+s.G.Layer(t.Layer).Name, t.Bytes)
			case core.LoadIfmap:
				src := "input"
				if t.Source != graph.None {
					src = s.G.Layer(t.Source).Name
				}
				object("fmap:"+src, s.G.Layer(srcOrSelf(s, t)).Out.Bytes(s.G.ElemBytes))
				name = fmt.Sprintf("I %s<-%s", s.G.Layer(t.Layer).Name, src)
				if t.Start > 0 {
					deps = append(deps, tileInstr[t.Start-1])
				}
				for _, st := range t.AfterStores {
					deps = append(deps, tensorInstr[st])
				}
			case core.StoreOfmap:
				op = Store
				object("fmap:"+s.G.Layer(t.Layer).Name, s.G.Layer(t.Layer).Out.Bytes(s.G.ElemBytes))
				deps = append(deps, tileInstr[t.Producer])
			}
			if t.Kind == core.LoadWeight && t.Start > 0 {
				deps = append(deps, tileInstr[t.Start-1])
			}
			dram := dramObjectAddr(p, t, s)
			id := add(Instr{Op: op, Label: name, Bytes: t.Bytes,
				GBufAddr: gbufAddr[t.ID], DRAMAddr: dram,
				TileSeq: -1, TensorID: t.ID, DependsOn: dedup(deps)})
			tensorInstr[t.ID] = id
			j++
			progressed = true
		}
		if i < s.NumTiles() {
			allDone := true
			deps := make([]int, 0, 4)
			if i > 0 {
				deps = append(deps, tileInstr[i-1])
			}
			for _, tid := range gate[i] {
				iid, ok := tensorInstr[tid]
				if !ok {
					allDone = false
					break
				}
				deps = append(deps, iid)
			}
			if allDone {
				tl := &s.Tiles[i]
				id := add(Instr{Op: Compute,
					Label:   fmt.Sprintf("%s#%d", s.G.Layer(tl.Layer).Name, tl.Index),
					TileSeq: i, TensorID: -1, DependsOn: dedup(deps)})
				tileInstr[i] = id
				i++
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("isa: schedule deadlocks during emission (tile %d, tensor %d)", i, j)
		}
	}
	p.DRAMSize = dramTop
	return p, nil
}

// span is one GBUF-resident interval to allocate: alive over tile seqs
// [lo, hi), bytes wide, linked to a DRAM tensor (or -1 for on-chip fmaps).
type span struct {
	lo, hi int
	bytes  int64
	tensor int
}

// allocateSpans runs address-ordered first fit over lifetime-sorted spans.
func allocateSpans(spans []span, gbufBytes int64) (map[int]int64, int64, error) {
	type block struct {
		off, size int64
		hi        int
	}
	var live []block
	addr := make(map[int]int64)
	var high int64
	for _, sp := range spans {
		if sp.bytes == 0 {
			continue
		}
		// Expire blocks whose lifetime ended.
		nl := live[:0]
		for _, b := range live {
			if b.hi > sp.lo {
				nl = append(nl, b)
			}
		}
		live = nl
		sort.Slice(live, func(a, b int) bool { return live[a].off < live[b].off })
		// First fit.
		var off int64
		for _, b := range live {
			if off+sp.bytes <= b.off {
				break
			}
			if b.off+b.size > off {
				off = b.off + b.size
			}
		}
		if off+sp.bytes > gbufBytes {
			return nil, 0, fmt.Errorf("isa: GBUF allocation overflow at tile %d: need %d at %d (cap %d)",
				sp.lo, sp.bytes, off, gbufBytes)
		}
		live = append(live, block{off, sp.bytes, sp.hi})
		if off+sp.bytes > high {
			high = off + sp.bytes
		}
		if sp.tensor >= 0 {
			addr[sp.tensor] = off
		}
	}
	return addr, high, nil
}

// srcOrSelf returns the DRAM-object layer an ifmap load reads.
func srcOrSelf(s *core.Schedule, t *core.Tensor) graph.LayerID {
	if t.Source != graph.None {
		return t.Source
	}
	return t.Layer
}

// dramObjectAddr resolves a tensor's DRAM base address.
func dramObjectAddr(p *Program, t *core.Tensor, s *core.Schedule) int64 {
	var name string
	switch t.Kind {
	case core.LoadWeight:
		name = "weights:" + s.G.Layer(t.Layer).Name
	case core.LoadIfmap:
		src := "input"
		if t.Source != graph.None {
			src = s.G.Layer(t.Source).Name
		}
		name = "fmap:" + src
	case core.StoreOfmap:
		name = "fmap:" + s.G.Layer(t.Layer).Name
	}
	for _, o := range p.Objects {
		if o.Name == name {
			return o.Addr
		}
	}
	return 0
}

func dedup(in []int) []int {
	sort.Ints(in)
	out := in[:0]
	for k, v := range in {
		if k == 0 || v != in[k-1] {
			out = append(out, v)
		}
	}
	return out
}

// Validate checks program well-formedness: IDs dense, dependencies backward,
// addresses in range.
func (p *Program) Validate(gbufBytes int64) error {
	for i, in := range p.Instrs {
		if in.ID != i {
			return fmt.Errorf("isa: instruction %d has ID %d", i, in.ID)
		}
		for _, d := range in.DependsOn {
			if d >= i || d < 0 {
				return fmt.Errorf("isa: instruction %d depends on %d (not earlier)", i, d)
			}
		}
		if in.Op != Compute {
			if in.Bytes <= 0 {
				return fmt.Errorf("isa: DMA instruction %d moves %d bytes", i, in.Bytes)
			}
			if in.GBufAddr < 0 || in.GBufAddr+in.Bytes > gbufBytes {
				return fmt.Errorf("isa: instruction %d GBUF range [%d,%d) out of %d",
					i, in.GBufAddr, in.GBufAddr+in.Bytes, gbufBytes)
			}
		}
	}
	return nil
}

// WriteText renders the program as the SoMa compiler's textual IR.
func (p *Program) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# soma-ir v1: %d instructions, gbuf high water %d, dram image %d\n",
		len(p.Instrs), p.GBufHighWater, p.DRAMSize); err != nil {
		return err
	}
	for _, o := range p.Objects {
		if _, err := fmt.Fprintf(w, ".object %-32s addr=0x%08x size=%d\n", o.Name, o.Addr, o.Bytes); err != nil {
			return err
		}
	}
	for _, in := range p.Instrs {
		var err error
		switch in.Op {
		case Compute:
			_, err = fmt.Fprintf(w, "%5d %-7s %-28s deps=%v\n", in.ID, in.Op, in.Label, in.DependsOn)
		default:
			_, err = fmt.Fprintf(w, "%5d %-7s %-28s bytes=%-10d gbuf=0x%06x dram=0x%08x deps=%v\n",
				in.ID, in.Op, in.Label, in.Bytes, in.GBufAddr, in.DRAMAddr, in.DependsOn)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Counts returns the per-opcode instruction counts (reporting aid).
func (p *Program) Counts() map[Op]int {
	m := map[Op]int{}
	for _, in := range p.Instrs {
		m[in.Op]++
	}
	return m
}
