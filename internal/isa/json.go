package isa

import (
	"encoding/json"
	"io"
)

// jsonProgram is the stable on-disk IR shape (the "easily parsable
// intermediate representation" of Sec. V-A that downstream instruction
// generators consume).
type jsonProgram struct {
	Version       int          `json:"version"`
	GBufHighWater int64        `json:"gbuf_high_water"`
	DRAMSize      int64        `json:"dram_size"`
	Objects       []DRAMObject `json:"objects"`
	Instrs        []jsonInstr  `json:"instructions"`
}

type jsonInstr struct {
	ID        int    `json:"id"`
	Op        string `json:"op"`
	Label     string `json:"label"`
	Bytes     int64  `json:"bytes,omitempty"`
	GBufAddr  int64  `json:"gbuf_addr,omitempty"`
	DRAMAddr  int64  `json:"dram_addr,omitempty"`
	TileSeq   int    `json:"tile_seq"`
	TensorID  int    `json:"tensor_id"`
	DependsOn []int  `json:"depends_on,omitempty"`
}

// WriteJSON emits the program as the versioned JSON IR.
func (p *Program) WriteJSON(w io.Writer) error {
	jp := jsonProgram{
		Version:       1,
		GBufHighWater: p.GBufHighWater,
		DRAMSize:      p.DRAMSize,
		Objects:       p.Objects,
	}
	for _, in := range p.Instrs {
		jp.Instrs = append(jp.Instrs, jsonInstr{
			ID: in.ID, Op: in.Op.String(), Label: in.Label,
			Bytes: in.Bytes, GBufAddr: in.GBufAddr, DRAMAddr: in.DRAMAddr,
			TileSeq: in.TileSeq, TensorID: in.TensorID, DependsOn: in.DependsOn,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jp)
}

// ReadJSON parses a JSON IR back into a Program (round-trip support for
// external schedulers that emit the IR format, Sec. V-F).
func ReadJSON(r io.Reader) (*Program, error) {
	var jp jsonProgram
	if err := json.NewDecoder(r).Decode(&jp); err != nil {
		return nil, err
	}
	p := &Program{
		GBufHighWater: jp.GBufHighWater,
		DRAMSize:      jp.DRAMSize,
		Objects:       jp.Objects,
	}
	for _, in := range jp.Instrs {
		op := Compute
		switch in.Op {
		case "LOAD":
			op = Load
		case "STORE":
			op = Store
		}
		p.Instrs = append(p.Instrs, Instr{
			ID: in.ID, Op: op, Label: in.Label,
			Bytes: in.Bytes, GBufAddr: in.GBufAddr, DRAMAddr: in.DRAMAddr,
			TileSeq: in.TileSeq, TensorID: in.TensorID, DependsOn: in.DependsOn,
		})
	}
	return p, nil
}
