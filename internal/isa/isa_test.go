package isa

import (
	"bytes"
	"strings"
	"testing"

	"soma/internal/core"
	"soma/internal/graph"
	"soma/internal/hw"
)

func sh(n, c, h, w int) graph.Shape { return graph.Shape{N: n, C: c, H: h, W: w} }

func kr(kh, kw, s, sw, ph, pw int) graph.Kernel {
	return graph.Kernel{KH: kh, KW: kw, SH: s, SW: sw, PH: ph, PW: pw}
}

func testSchedule(t *testing.T) *core.Schedule {
	g := graph.New("isa", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh(1, 8, 16, 16)})
	a := g.Add(graph.Layer{Name: "a", Kind: graph.Conv, Deps: []graph.Dep{{Producer: in}},
		Out: sh(1, 8, 16, 16), K: kr(3, 3, 1, 1, 1, 1), WeightBytes: 8 * 8 * 9, Ops: 2 * 8 * 8 * 9 * 16 * 16})
	b := g.Add(graph.Layer{Name: "b", Kind: graph.Conv, Deps: []graph.Dep{{Producer: a}},
		Out: sh(1, 8, 16, 16), K: kr(3, 3, 1, 1, 1, 1), WeightBytes: 8 * 8 * 9, Ops: 2 * 8 * 8 * 9 * 16 * 16})
	g.Add(graph.Layer{Name: "c", Kind: graph.Conv, Deps: []graph.Dep{{Producer: b}},
		Out: sh(1, 8, 16, 16), K: kr(3, 3, 1, 1, 1, 1), WeightBytes: 8 * 8 * 9, Ops: 2 * 8 * 8 * 9 * 16 * 16})
	enc := core.DefaultEncoding(g, 2)
	s, err := core.Parse(g, enc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestGenerateProducesValidProgram(t *testing.T) {
	s := testSchedule(t)
	cap := hw.Edge().GBufBytes
	p, err := Generate(s, cap)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := p.Validate(cap); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	counts := p.Counts()
	if counts[Compute] != s.NumTiles() {
		t.Fatalf("compute instrs = %d, want %d", counts[Compute], s.NumTiles())
	}
	if counts[Load]+counts[Store] != len(s.Tensors) {
		t.Fatalf("DMA instrs = %d, want %d", counts[Load]+counts[Store], len(s.Tensors))
	}
	if p.GBufHighWater <= 0 || p.GBufHighWater > cap {
		t.Fatalf("high water = %d", p.GBufHighWater)
	}
	if p.DRAMSize <= 0 || len(p.Objects) == 0 {
		t.Fatal("DRAM image empty")
	}
}

func TestGBufAllocationsDoNotOverlap(t *testing.T) {
	s := testSchedule(t)
	p, err := Generate(s, hw.Edge().GBufBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct lifetimes from the schedule and check pairwise overlap
	// of concurrently-live DMA targets.
	type alloc struct {
		lo, hi     int
		off, bytes int64
	}
	var allocs []alloc
	for _, in := range p.Instrs {
		if in.Op == Compute {
			continue
		}
		ts := &s.Tensors[in.TensorID]
		lo, hi := ts.Start, ts.Release
		if ts.Kind == core.StoreOfmap {
			lo, hi = ts.Producer, ts.End
			if ts.OnChipHi > hi {
				hi = ts.OnChipHi
			}
		}
		allocs = append(allocs, alloc{lo, hi, in.GBufAddr, in.Bytes})
	}
	for i := range allocs {
		for j := i + 1; j < len(allocs); j++ {
			a, b := allocs[i], allocs[j]
			timeOverlap := a.lo < b.hi && b.lo < a.hi
			memOverlap := a.off < b.off+b.bytes && b.off < a.off+a.bytes
			if timeOverlap && memOverlap {
				t.Fatalf("allocations %d and %d overlap in time and space: %+v %+v", i, j, a, b)
			}
		}
	}
}

func TestDependenciesMatchSemantics(t *testing.T) {
	s := testSchedule(t)
	p, err := Generate(s, hw.Edge().GBufBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Map tensor/tile to instruction.
	tensorInstr := map[int]int{}
	tileInstr := map[int]int{}
	for _, in := range p.Instrs {
		if in.Op == Compute {
			tileInstr[in.TileSeq] = in.ID
		} else {
			tensorInstr[in.TensorID] = in.ID
		}
	}
	// Every tile's gating loads appear among its dependencies.
	for _, in := range p.Instrs {
		if in.Op != Compute {
			continue
		}
		deps := map[int]bool{}
		for _, d := range in.DependsOn {
			deps[d] = true
		}
		for _, ts := range s.Tensors {
			if ts.Kind.IsLoad() && ts.FirstUse == in.TileSeq {
				if !deps[tensorInstr[ts.ID]] {
					t.Fatalf("tile %d missing dep on load %d", in.TileSeq, ts.ID)
				}
			}
		}
		if in.TileSeq > 0 && !deps[tileInstr[in.TileSeq-1]] {
			t.Fatalf("tile %d missing serial dep", in.TileSeq)
		}
	}
	// Every store depends on its producing tile.
	for _, in := range p.Instrs {
		if in.Op != Store {
			continue
		}
		ts := &s.Tensors[in.TensorID]
		found := false
		for _, d := range in.DependsOn {
			if d == tileInstr[ts.Producer] {
				found = true
			}
		}
		if !found {
			t.Fatalf("store %d missing dep on tile %d", in.ID, ts.Producer)
		}
	}
}

func TestGenerateFailsOnTinyGBuf(t *testing.T) {
	s := testSchedule(t)
	if _, err := Generate(s, 64); err == nil {
		t.Fatal("64-byte GBUF must overflow")
	}
}

func TestWriteText(t *testing.T) {
	s := testSchedule(t)
	p, err := Generate(s, hw.Edge().GBufBytes)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"soma-ir v1", "LOAD", "STORE", "COMPUTE", ".object", "weights:a"} {
		if !strings.Contains(out, want) {
			t.Fatalf("IR missing %q:\n%s", want, out[:min(len(out), 600)])
		}
	}
}

func TestOpString(t *testing.T) {
	if Load.String() != "LOAD" || Store.String() != "STORE" || Compute.String() != "COMPUTE" {
		t.Fatal("op names wrong")
	}
	if !strings.Contains(Op(9).String(), "?") {
		t.Fatal("unknown op must be marked")
	}
}
