// Package tiling implements the computing-granularity machinery behind the
// Tiling Number attribute of the Tensor-centric Notation (paper Sec. IV-A1).
//
// A Fine-grained Layer-fusion Group (FLG) executes depth-first: every layer
// of the group is split into the FLG's Tiling Number of tiles - batch
// dimension first, then ofmap height and width, kept as equal as possible -
// and the tiles interleave across layers. Producing one output tile of the
// last layer requires a backward-propagated input region through every
// convolution/pooling kernel in the group, so tile regions overlap by the
// kernel halos; that backtracking (recompute-free halo overlap) cost is the
// price of fusion the stage-1 search trades against DRAM traffic. The
// propagation method is adopted from Cocco and DeFiNES, the fusion baselines
// of Sec. VI.
//
// The channel axis is never split: splitting C would break fusion across
// more than two layers (Sec. IV-A1).
//
// Plan is the per-FLG product: for each layer, the computed region and the
// owned (non-overlapping) region of every tile. core.Parse consumes Plans to
// emit the global tile sequence the evaluator replays.
package tiling
