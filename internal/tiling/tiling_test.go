package tiling

import (
	"testing"
	"testing/quick"

	"soma/internal/graph"
)

// sh and kr build keyed Shape/Kernel literals compactly.
func sh(n, c, h, w int) graph.Shape { return graph.Shape{N: n, C: c, H: h, W: w} }

func kr(kh, kw, s, sw, ph, pw int) graph.Kernel {
	return graph.Kernel{KH: kh, KW: kw, SH: s, SW: sw, PH: ph, PW: pw}
}

func convChain(t *testing.T) (*graph.Graph, []graph.LayerID) {
	t.Helper()
	g := graph.New("c", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh(1, 3, 32, 32)})
	a := g.Add(graph.Layer{Name: "a", Kind: graph.Conv, Deps: []graph.Dep{{Producer: in}},
		Out: sh(1, 16, 32, 32), K: kr(3, 3, 1, 1, 1, 1), WeightBytes: 432, Ops: 2 * 3 * 16 * 9 * 32 * 32})
	b := g.Add(graph.Layer{Name: "b", Kind: graph.Conv, Deps: []graph.Dep{{Producer: a}},
		Out: sh(1, 16, 32, 32), K: kr(3, 3, 1, 1, 1, 1), WeightBytes: 2304, Ops: 2 * 16 * 16 * 9 * 32 * 32})
	c := g.Add(graph.Layer{Name: "c", Kind: graph.Pool, Deps: []graph.Dep{{Producer: b}},
		Out: sh(1, 16, 16, 16), K: kr(2, 2, 2, 2, 0, 0), Ops: 16 * 16 * 16 * 4})
	return g, []graph.LayerID{a, b, c}
}

func TestRegionBasics(t *testing.T) {
	r := Region{0, 1, 0, 8, 0, 8}
	if r.Empty() {
		t.Fatal("non-empty region reported empty")
	}
	if r.Elems(4) != 1*8*8*4 {
		t.Fatalf("Elems = %d", r.Elems(4))
	}
	if (Region{}).Elems(4) != 0 {
		t.Fatal("empty region must have zero elems")
	}
	u := r.Union(Region{0, 1, 6, 12, 0, 8})
	if u.H0 != 0 || u.H1 != 12 {
		t.Fatalf("Union = %v", u)
	}
	if r.Union(Region{}) != r || (Region{}).Union(r) != r {
		t.Fatal("union with empty must be identity")
	}
	if r.Overlap(Region{0, 1, 6, 12, 0, 8}, 1) != 1*2*8 {
		t.Fatalf("Overlap = %d", r.Overlap(Region{0, 1, 6, 12, 0, 8}, 1))
	}
	if Full(sh(2, 3, 4, 5)) != (Region{0, 2, 0, 4, 0, 5}) {
		t.Fatalf("Full = %v", Full(sh(2, 3, 4, 5)))
	}
}

func TestChooseSplitBatchFirst(t *testing.T) {
	// Batch 4, T=4: all four tiles on the batch axis.
	sp := ChooseSplit(4, graph.Shape{N: 4, C: 8, H: 32, W: 32})
	if sp != (Split{TN: 4, TH: 1, TW: 1}) {
		t.Fatalf("split = %+v", sp)
	}
	// Batch 1, T=4: the paper's Fig. 2 example splits H and W by 2 each.
	sp = ChooseSplit(4, graph.Shape{N: 1, C: 8, H: 32, W: 32})
	if sp != (Split{TN: 1, TH: 2, TW: 2}) {
		t.Fatalf("split = %+v", sp)
	}
	// Batch 2, T=8: 2 on batch, remaining 4 balanced across H/W.
	sp = ChooseSplit(8, graph.Shape{N: 2, C: 8, H: 32, W: 32})
	if sp != (Split{TN: 2, TH: 2, TW: 2}) {
		t.Fatalf("split = %+v", sp)
	}
	// Odd factor prefers H over W.
	sp = ChooseSplit(2, graph.Shape{N: 1, C: 8, H: 32, W: 32})
	if sp != (Split{TN: 1, TH: 2, TW: 1}) {
		t.Fatalf("split = %+v", sp)
	}
}

func TestChooseSplitClamping(t *testing.T) {
	// Token sequences have W=1: all spatial splitting lands on H.
	sp := ChooseSplit(8, graph.Shape{N: 1, C: 768, H: 512, W: 1})
	if sp.TW != 1 || sp.Tiles() > 8 {
		t.Fatalf("split = %+v", sp)
	}
	// FC output 1x1: nothing to split spatially.
	sp = ChooseSplit(16, graph.Shape{N: 1, C: 1000, H: 1, W: 1})
	if sp.Tiles() != 1 {
		t.Fatalf("split = %+v", sp)
	}
	// T=0 degrades to 1.
	if ChooseSplit(0, graph.Shape{N: 1, C: 1, H: 8, W: 8}).Tiles() != 1 {
		t.Fatal("T=0 must clamp to a single tile")
	}
}

func TestChooseSplitProperty(t *testing.T) {
	f := func(tRaw, nRaw, hRaw, wRaw uint8) bool {
		tn := int(tRaw%32) + 1
		s := graph.Shape{N: int(nRaw%8) + 1, C: 16, H: int(hRaw%64) + 1, W: int(wRaw%64) + 1}
		sp := ChooseSplit(tn, s)
		if sp.TN < 1 || sp.TH < 1 || sp.TW < 1 {
			return false
		}
		if sp.TN > s.N || sp.TH > s.H || sp.TW > s.W {
			return false
		}
		return sp.Tiles() <= tn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanCoverage(t *testing.T) {
	g, ids := convChain(t)
	for _, tn := range []int{1, 2, 4, 8} {
		p, err := New(g, ids, tn)
		if err != nil {
			t.Fatalf("T=%d: %v", tn, err)
		}
		if !p.CoverageOK(g) {
			t.Fatalf("T=%d: owned regions do not partition outputs", tn)
		}
	}
}

func TestPlanHaloGrowsBackwards(t *testing.T) {
	g, ids := convChain(t)
	p, err := New(g, ids, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The pool (last layer) computes exactly its owned regions.
	fPool := p.OverlapFactor(g, 2)
	if fPool != 1.0 {
		t.Fatalf("pool overlap = %g, want 1", fPool)
	}
	// The 2x2/s2 pool itself creates no halo, so b computes exactly its
	// owned regions; a, feeding a 3x3 conv, must recompute halo rows.
	fa, fb := p.OverlapFactor(g, 0), p.OverlapFactor(g, 1)
	if fb != 1.0 {
		t.Fatalf("b overlap = %g, want 1 (pool has no halo)", fb)
	}
	if fa <= 1.0 {
		t.Fatalf("a overlap = %g, want > 1 (3x3 conv consumer)", fa)
	}
}

func TestPlanHaloAccumulatesThroughConvStack(t *testing.T) {
	// Three chained 3x3 convs: halo must strictly grow towards the front.
	g := graph.New("stack", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh(1, 4, 48, 48)})
	ids := make([]graph.LayerID, 0, 3)
	prev := in
	for i := 0; i < 3; i++ {
		id := g.Add(graph.Layer{Kind: graph.Conv, Deps: []graph.Dep{{Producer: prev}},
			Out: sh(1, 4, 48, 48), K: kr(3, 3, 1, 1, 1, 1), Ops: 1000})
		ids = append(ids, id)
		prev = id
	}
	p, err := New(g, ids, 4)
	if err != nil {
		t.Fatal(err)
	}
	f0, f1, f2 := p.OverlapFactor(g, 0), p.OverlapFactor(g, 1), p.OverlapFactor(g, 2)
	if !(f0 > f1 && f1 > f2 && f2 == 1.0) {
		t.Fatalf("halo must accumulate backwards: %g %g %g", f0, f1, f2)
	}
}

func TestPlanSingleTileNoHalo(t *testing.T) {
	g, ids := convChain(t)
	p, err := New(g, ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tiles != 1 {
		t.Fatalf("tiles = %d", p.Tiles)
	}
	for i := range ids {
		if f := p.OverlapFactor(g, i); f != 1.0 {
			t.Fatalf("layer %d overlap = %g with one tile", i, f)
		}
	}
}

func TestPlanFinerTilesMoreOverlap(t *testing.T) {
	g, ids := convChain(t)
	p2, _ := New(g, ids, 2)
	p8, _ := New(g, ids, 8)
	if !(p8.OverlapFactor(g, 0) > p2.OverlapFactor(g, 0)) {
		t.Fatalf("finer tiling must increase halo: T8=%g T2=%g",
			p8.OverlapFactor(g, 0), p2.OverlapFactor(g, 0))
	}
}

func TestPlanRejectsGlobalDepInsideFLG(t *testing.T) {
	g := graph.New("glob", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh(1, 8, 16, 1)})
	q := g.Add(graph.Layer{Name: "q", Kind: graph.GEMM, Deps: []graph.Dep{{Producer: in}},
		Out: sh(1, 8, 16, 1), WeightBytes: 64, Ops: 100})
	k := g.Add(graph.Layer{Name: "k", Kind: graph.GEMM, Deps: []graph.Dep{{Producer: in}},
		Out: sh(1, 8, 16, 1), WeightBytes: 64, Ops: 100})
	qk := g.Add(graph.Layer{Name: "qk", Kind: graph.MatMul,
		Deps: []graph.Dep{{Producer: q}, {Producer: k, Global: true}},
		Out:  sh(1, 16, 16, 1), Ops: 100})
	if _, err := New(g, []graph.LayerID{q, k, qk}, 4); err == nil {
		t.Fatal("global dep inside multi-tile FLG must be rejected")
	}
	// With a single tile it is legal.
	if _, err := New(g, []graph.LayerID{q, k, qk}, 1); err != nil {
		t.Fatalf("single-tile FLG rejected: %v", err)
	}
}

// TestPlanRejectsBarrierInsideFLG: a barrier demands every predecessor tile
// before any successor tile; the tile-major enumeration of a multi-tile FLG
// interleaves them, so such groups are illegal (single-tile FLGs are fine).
func TestPlanRejectsBarrierInsideFLG(t *testing.T) {
	g := graph.New("barrier", 1)
	inA := g.Add(graph.Layer{Name: "inA", Kind: graph.Input, Out: sh(1, 8, 16, 1)})
	a := g.Add(graph.Layer{Name: "a", Kind: graph.GEMM, Deps: []graph.Dep{{Producer: inA}},
		Out: sh(1, 8, 16, 1), WeightBytes: 64, Ops: 100})
	inB := g.Add(graph.Layer{Name: "inB", Kind: graph.Input, Out: sh(1, 8, 16, 1)})
	b := g.Add(graph.Layer{Name: "b", Kind: graph.GEMM, Deps: []graph.Dep{{Producer: inB}},
		After: []graph.LayerID{a}, Out: sh(1, 8, 16, 1), WeightBytes: 64, Ops: 100})
	if _, err := New(g, []graph.LayerID{a, b}, 4); err == nil {
		t.Fatal("barrier inside multi-tile FLG must be rejected")
	}
	if _, err := New(g, []graph.LayerID{a, b}, 1); err != nil {
		t.Fatalf("single-tile FLG with barrier rejected: %v", err)
	}
	// The barrier only binds groups containing both endpoints.
	if _, err := New(g, []graph.LayerID{b}, 4); err != nil {
		t.Fatalf("barrier successor alone rejected: %v", err)
	}
}

func TestPlanEmptyFLG(t *testing.T) {
	g, _ := convChain(t)
	if _, err := New(g, nil, 2); err == nil {
		t.Fatal("empty FLG must error")
	}
}

func TestInputRegionPointwiseIdentity(t *testing.T) {
	g, ids := convChain(t)
	// Pool (2x2 s2): output rows [0,8) need input rows [0,16).
	c := g.Layer(ids[2])
	r := InputRegion(c, ids[1], g, Region{0, 1, 0, 8, 0, 8})
	if r.H0 != 0 || r.H1 != 16 || r.W1 != 16 {
		t.Fatalf("pool input region = %v", r)
	}
	// Conv 3x3 s1 p1: output rows [8,16) need input rows [7,17).
	b := g.Layer(ids[1])
	r = InputRegion(b, ids[0], g, Region{0, 1, 8, 16, 0, 32})
	if r.H0 != 7 || r.H1 != 17 {
		t.Fatalf("conv input region = %v", r)
	}
}

func TestPlanBatchSplitNoHalo(t *testing.T) {
	// Splitting along batch produces no halo even under 3x3 convs.
	g := graph.New("b4", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh(4, 3, 16, 16)})
	a := g.Add(graph.Layer{Name: "a", Kind: graph.Conv, Deps: []graph.Dep{{Producer: in}},
		Out: sh(4, 8, 16, 16), K: kr(3, 3, 1, 1, 1, 1), Ops: 1000})
	b := g.Add(graph.Layer{Name: "b", Kind: graph.Conv, Deps: []graph.Dep{{Producer: a}},
		Out: sh(4, 8, 16, 16), K: kr(3, 3, 1, 1, 1, 1), Ops: 1000})
	p, err := New(g, []graph.LayerID{a, b}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Split.TN != 4 {
		t.Fatalf("split = %+v", p.Split)
	}
	if f := p.OverlapFactor(g, 0); f != 1.0 {
		t.Fatalf("batch split should have no halo, got %g", f)
	}
}

func TestPlanPropertyCoverageAndMonotoneHalo(t *testing.T) {
	g, ids := convChain(t)
	f := func(tRaw uint8) bool {
		tn := int(tRaw%16) + 1
		p, err := New(g, ids, tn)
		if err != nil {
			return false
		}
		if !p.CoverageOK(g) {
			return false
		}
		for i := range ids {
			if p.OverlapFactor(g, i) < 1.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}
