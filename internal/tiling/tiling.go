package tiling

import (
	"fmt"

	"soma/internal/graph"
)

// Region is a half-open 3-D slab of a feature map: batch x height x width.
// The channel axis is never split (splitting C would break fusion across
// more than two layers, Sec. IV-A1).
type Region struct {
	N0, N1 int
	H0, H1 int
	W0, W1 int
}

// Empty reports whether the region contains no elements.
func (r Region) Empty() bool { return r.N1 <= r.N0 || r.H1 <= r.H0 || r.W1 <= r.W0 }

// Elems returns the element count given the channel width.
func (r Region) Elems(c int) int64 {
	if r.Empty() {
		return 0
	}
	return int64(r.N1-r.N0) * int64(r.H1-r.H0) * int64(r.W1-r.W0) * int64(c)
}

// Union returns the bounding box of two regions (exact for our use: the
// inputs are always slabs of the same N range differing only along H).
func (r Region) Union(o Region) Region {
	if r.Empty() {
		return o
	}
	if o.Empty() {
		return r
	}
	return Region{
		N0: min(r.N0, o.N0), N1: max(r.N1, o.N1),
		H0: min(r.H0, o.H0), H1: max(r.H1, o.H1),
		W0: min(r.W0, o.W0), W1: max(r.W1, o.W1),
	}
}

// Overlap returns the element count shared by two regions.
func (r Region) Overlap(o Region, c int) int64 {
	x := Region{
		N0: max(r.N0, o.N0), N1: min(r.N1, o.N1),
		H0: max(r.H0, o.H0), H1: min(r.H1, o.H1),
		W0: max(r.W0, o.W0), W1: min(r.W1, o.W1),
	}
	return x.Elems(c)
}

func (r Region) String() string {
	return fmt.Sprintf("[n%d:%d h%d:%d w%d:%d]", r.N0, r.N1, r.H0, r.H1, r.W0, r.W1)
}

// Full returns the region covering an entire shape.
func Full(s graph.Shape) Region {
	return Region{N0: 0, N1: s.N, H0: 0, H1: s.H, W0: 0, W1: s.W}
}

// Split is a factorization of the tiling number across the three divisible
// axes.
type Split struct{ TN, TH, TW int }

// Tiles is the realized tile count.
func (sp Split) Tiles() int { return sp.TN * sp.TH * sp.TW }

// ChooseSplit factors the requested tiling number T over a bounding shape,
// following the paper's heuristic: use the batch axis first (it has no halo),
// then split H and W as equally as possible. The realized tile count is
// <= T when the shape cannot absorb the whole factor (e.g. token sequences
// with W == 1, or FC layers with H == W == 1).
func ChooseSplit(t int, bound graph.Shape) Split {
	if t < 1 {
		t = 1
	}
	tn := largestDivisorAtMost(t, bound.N)
	rest := t / tn
	// Balance the remaining factor between H and W, H first; when one
	// axis cannot absorb its share, hand the factor to the other axis.
	th, tw := balancedPair(rest)
	if th > bound.H || tw > bound.W {
		tw = largestDivisorAtMost(rest, bound.W)
		th = rest / tw
		if th > bound.H {
			th = bound.H
		}
	}
	if th < 1 {
		th = 1
	}
	if tw < 1 {
		tw = 1
	}
	return Split{TN: tn, TH: th, TW: tw}
}

// largestDivisorAtMost finds the largest divisor of t not exceeding limit.
func largestDivisorAtMost(t, limit int) int {
	if limit < 1 {
		limit = 1
	}
	best := 1
	for d := 1; d*d <= t; d++ {
		if t%d != 0 {
			continue
		}
		if d <= limit && d > best {
			best = d
		}
		if q := t / d; q <= limit && q > best {
			best = q
		}
	}
	return best
}

// balancedPair factors f = a*b with a >= b and a-b minimized (a goes to H).
func balancedPair(f int) (a, b int) {
	if f < 1 {
		return 1, 1
	}
	b = 1
	for d := 1; d*d <= f; d++ {
		if f%d == 0 {
			b = d
		}
	}
	return f / b, b
}

// evenCut returns the i-th of k near-equal half-open segments of [0,n).
func evenCut(n, k, i int) (int, int) {
	return i * n / k, (i + 1) * n / k
}

// Plan is the tiling of one FLG: for every layer, the per-tile computed
// output region (owned slab grown by consumer-driven halo) and the disjoint
// owned region (what the tile contributes to the aggregate ofmap).
type Plan struct {
	// Layers is the FLG's layer sequence (the slice passed to New).
	Layers []graph.LayerID
	// Split is the realized axis factorization; Tiles == Split.Tiles().
	Split Split
	Tiles int
	// Computed[l][t] is the region layer Layers[l] evaluates for tile t,
	// including recomputed halo rows.
	Computed [][]Region
	// Owned[l][t] is the disjoint slab tile t contributes; owned regions
	// of one layer partition its output exactly.
	Owned [][]Region
}

// New computes the tiling plan of an FLG given its layer sequence (a
// contiguous slice of the Computing Order) and the requested tiling number.
// Halo propagation runs in reverse: a producer's tile must compute every row
// its in-FLG consumers' same-index tiles read. Global in-FLG dependencies
// are rejected unless the realized tile count is 1 (legality rule from
// DESIGN.md).
func New(g *graph.Graph, layers []graph.LayerID, t int) (*Plan, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("tiling: empty FLG")
	}
	bound := g.Layer(layers[0]).Out
	for _, id := range layers[1:] {
		s := g.Layer(id).Out
		bound.N = min(bound.N, s.N)
		bound.H = min(bound.H, s.H)
		bound.W = min(bound.W, s.W)
	}
	sp := ChooseSplit(t, bound)
	tiles := sp.Tiles()

	// pos[id] is the FLG-local index of layer id, -1 for layers outside the
	// FLG. A dense slice keyed by LayerID instead of a map: New runs on
	// every structural proposal (each parse re-tiles each FLG), and map
	// bucket churn dominated its allocation profile.
	pos := make([]int, len(g.Layers))
	for i := range pos {
		pos[i] = -1
	}
	for i, id := range layers {
		pos[id] = i
	}
	// Global deps are batch-local: splitting the batch axis is fine, but
	// spatial splits would starve the consumer of producer rows.
	if sp.TH*sp.TW > 1 {
		for _, id := range layers {
			for _, d := range g.Layer(id).Deps {
				if pos[d.Producer] >= 0 && d.Global {
					return nil, fmt.Errorf("tiling: global dependency %s->%s inside spatially-split FLG (%dx%d)",
						g.Layer(d.Producer).Name, g.Layer(id).Name, sp.TH, sp.TW)
				}
			}
		}
	}
	// Barrier edges demand all predecessor tiles before any successor tile;
	// the tile-major enumeration of a multi-tile FLG interleaves them, so a
	// barrier may only sit inside an FLG that runs as a single tile.
	if tiles > 1 {
		for _, id := range layers {
			for _, a := range g.Layer(id).After {
				if pos[a] >= 0 {
					return nil, fmt.Errorf("tiling: barrier %s->%s inside multi-tile FLG (%d tiles)",
						g.Layer(a).Name, g.Layer(id).Name, tiles)
				}
			}
		}
	}

	p := &Plan{
		Layers:   append([]graph.LayerID(nil), layers...),
		Split:    sp,
		Tiles:    tiles,
		Computed: make([][]Region, len(layers)),
		Owned:    make([][]Region, len(layers)),
	}
	// Owned regions: an even split of each layer's own output shape.
	for i, id := range layers {
		s := g.Layer(id).Out
		p.Owned[i] = make([]Region, tiles)
		p.Computed[i] = make([]Region, tiles)
		ti := 0
		for n := 0; n < sp.TN; n++ {
			n0, n1 := evenCut(s.N, sp.TN, n)
			for h := 0; h < sp.TH; h++ {
				h0, h1 := evenCut(s.H, sp.TH, h)
				for w := 0; w < sp.TW; w++ {
					w0, w1 := evenCut(s.W, sp.TW, w)
					p.Owned[i][ti] = Region{n0, n1, h0, h1, w0, w1}
					ti++
				}
			}
		}
	}
	// Backward halo propagation: computed = owned U (needs of in-FLG
	// consumers' computed regions).
	for i := len(layers) - 1; i >= 0; i-- {
		id := layers[i]
		for ti := 0; ti < tiles; ti++ {
			r := p.Owned[i][ti]
			for _, cid := range g.Consumers(id) {
				ci := pos[cid]
				if ci <= i { // outside the FLG (-1) or not a later layer
					continue
				}
				c := g.Layer(cid)
				if depIsGlobal(c, id) {
					continue // only with tiles==1; full region already owned
				}
				r = r.Union(InputRegion(c, id, g, p.Computed[ci][ti]))
			}
			p.Computed[i][ti] = r
		}
	}
	return p, nil
}

// depIsGlobal reports whether consumer c's edge from producer is global.
func depIsGlobal(c *graph.Layer, producer graph.LayerID) bool {
	for _, d := range c.Deps {
		if d.Producer == producer && d.Global {
			return true
		}
	}
	return false
}

// InputRegion maps a consumer's output region to the producer-side region it
// reads through the consumer's kernel (identity for pointwise kinds, spans
// with halo for conv/pool). The producer's shape clamps the result.
func InputRegion(c *graph.Layer, producer graph.LayerID, g *graph.Graph, out Region) Region {
	ps := g.Layer(producer).Out
	k := c.K
	h0, h1 := graph.InSpan(out.H0, out.H1, k.KH, k.SH, k.PH, ps.H)
	w0, w1 := graph.InSpan(out.W0, out.W1, k.KW, k.SW, k.PW, ps.W)
	n0, n1 := out.N0, out.N1
	if n1 > ps.N {
		n1 = ps.N
	}
	if out.Empty() {
		return Region{}
	}
	return Region{N0: n0, N1: n1, H0: h0, H1: h1, W0: w0, W1: w1}
}

// OverlapFactor returns computed/owned element ratio of one layer - 1.0
// means no recomputation; larger values quantify the backtracking halo cost.
func (p *Plan) OverlapFactor(g *graph.Graph, layerIdx int) float64 {
	id := p.Layers[layerIdx]
	c := g.Layer(id).Out.C
	var comp, own int64
	for t := 0; t < p.Tiles; t++ {
		comp += p.Computed[layerIdx][t].Elems(c)
		own += p.Owned[layerIdx][t].Elems(c)
	}
	if own == 0 {
		return 1
	}
	return float64(comp) / float64(own)
}

// CoverageOK verifies that each layer's owned regions partition its output:
// total element count matches and no two owned regions overlap. Used by
// tests and by the notation parser's self-checks.
func (p *Plan) CoverageOK(g *graph.Graph) bool {
	for i, id := range p.Layers {
		s := g.Layer(id).Out
		var total int64
		for t := 0; t < p.Tiles; t++ {
			total += p.Owned[i][t].Elems(s.C)
			for u := t + 1; u < p.Tiles; u++ {
				if p.Owned[i][t].Overlap(p.Owned[i][u], s.C) != 0 {
					return false
				}
			}
		}
		if total != s.Elems() {
			return false
		}
	}
	return true
}
