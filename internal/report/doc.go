// Package report provides the table and CSV emitters the experiment harness
// uses to print paper-figure data series.
//
// Every figure command of somabench builds its output as a report.Table:
// String renders an aligned text table for the terminal, WriteCSV emits the
// same series as a CSV file (the -out flag), so a figure's numbers exist in
// exactly one place. The formatting helpers encode the units conventions
// used throughout the evaluation (Sec. VI): Ms for latencies (milliseconds),
// MB for buffer sizes (mebibytes), Pct for utilizations, X for the speedup
// ratios of the Sec. VI-B summary, and HitRate for the evaluation-cache
// counters of the parallel search engine.
//
// The package is deliberately dependency-free (it formats, it does not
// compute) so every layer - cmd binaries, internal/exp, tests - can use it
// without import cycles.
package report
