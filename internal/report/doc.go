// Package report owns the two output shapes every surface of the repo
// shares: the machine-readable Result payload and the human-readable
// table/CSV emitters.
//
// Result is the wire payload of one scheduling run - workload, hardware,
// objective, cost, canonical-encoding digests, metrics, schedule statistics,
// search statistics, and (for composed runs) the Scenario section. The soma
// CLI's -json flag, the somad jobs and sweeps APIs, and the dse journal all
// render this exact struct through encoding/json, so a fixed-seed run
// returns byte-identical bytes over every path and scripts never scrape
// human tables. FromSoma/FromCocco assemble it from the solver results; the
// non-serialized Raw section carries the in-memory graph, encoding, schedule
// and metrics for trace rendering, ISA lowering and figure adapters without
// perturbing the wire bytes.
//
// Table is the human side: every somabench figure builds its output as a
// report.Table - String renders an aligned text table, WriteCSV emits the
// same series as CSV (the -out flag) - so a figure's numbers exist in
// exactly one place. The formatting helpers encode the evaluation's unit
// conventions (Sec. VI): Ms for latencies, MB for buffer sizes, Pct for
// utilizations, X for speedup ratios, and HitRate for evaluation-cache
// counters.
//
// The package depends only on the solver result types (it formats and
// assembles, it does not compute), so every layer - cmd binaries,
// internal/exp, internal/dse, internal/service, tests - uses it without
// import cycles.
package report
