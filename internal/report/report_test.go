package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.Add("short", "1")
	tb.Add("a-much-longer-name", "22")
	out := tb.String()
	if !strings.Contains(out, "## demo") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Header and separator must align to the widest cell.
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("separator misaligned:\n%s", out)
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.Add("x")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tb.Rows[0])
	}
}

func TestWriteCSV(t *testing.T) {
	tb := New("t", "a", "b")
	tb.Add("1", "2")
	tb.Add("3", "has,comma")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("csv header: %q", out)
	}
	if !strings.Contains(out, `"has,comma"`) {
		t.Fatalf("csv quoting: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[string]string{
		F(1.2345, 2): "1.23",
		Pct(0.5):     "50.00%",
		MB(1 << 20):  "1.00MB",
		Ms(1.5e6):    "1.500ms",
		X(2.11):      "2.11x",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q want %q", got, want)
		}
	}
	if !strings.Contains(E(12345.0), "e+") {
		t.Errorf("E() = %q", E(12345.0))
	}
}
