package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"soma/internal/sim"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; short rows are padded.
func (t *Table) Add(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (headers first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// E formats a float in scientific notation.
func E(v float64) string { return fmt.Sprintf("%.3e", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// MB formats bytes as mebibytes.
func MB(b int64) string { return fmt.Sprintf("%.2fMB", float64(b)/(1<<20)) }

// Ms formats nanoseconds as milliseconds.
func Ms(ns float64) string { return fmt.Sprintf("%.3fms", ns/1e6) }

// X formats a speedup factor.
func X(v float64) string { return fmt.Sprintf("%.2fx", v) }

// HitRate formats memoization counters as "rate% (hits/lookups)" - used to
// surface the evaluation cache's effectiveness in run reports.
func HitRate(hits, misses int64) string {
	st := sim.CacheStats{Hits: hits, Misses: misses}
	total := hits + misses
	if total == 0 {
		return "n/a (0 lookups)"
	}
	return fmt.Sprintf("%.1f%% (%d/%d)", 100*st.HitRate(), hits, total)
}
