package report

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"

	"soma/internal/cocco"
	"soma/internal/core"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/obs"
	"soma/internal/sim"
	"soma/internal/soma"
)

// Result is the machine-readable schedule payload shared by `soma -json` and
// the somad HTTP API (docs/api.md). Both render this exact struct through
// encoding/json, so a fixed-seed run returns byte-identical cost and encoding
// over either path - scripts never need to scrape the human tables.
type Result struct {
	Workload  Workload  `json:"workload"`
	Hardware  Hardware  `json:"hardware"`
	Objective Objective `json:"objective"`
	// Framework is the scheduler that produced the result: soma|cocco.
	Framework string `json:"framework"`
	Seed      int64  `json:"seed"`
	// Cost is the objective value Energy^n x Delay^m of the winner.
	Cost float64 `json:"cost"`
	// EncodingKey is the winning LFA's canonical key
	// (core.Encoding.CanonicalKey), hex-encoded; EncodingSHA256 /
	// ScheduleSHA256 digest the canonical encoding and full-schedule keys
	// so byte-identity across runs is a string compare.
	EncodingKey    string `json:"encoding_key"`
	EncodingSHA256 string `json:"encoding_sha256"`
	ScheduleSHA256 string `json:"schedule_sha256"`

	Metrics  Metrics  `json:"metrics"`
	Schedule Schedule `json:"schedule"`
	// Search carries SoMa-specific search statistics (absent for cocco).
	Search *Search `json:"search,omitempty"`
	// Scenario carries multi-model composition results (absent for
	// single-model runs): per-component ownership, isolated per-model
	// results, and the composed-vs-isolated aggregate comparison.
	Scenario *ScenarioInfo `json:"scenario,omitempty"`
	// Telemetry carries wall-clock measurements, present only when the run
	// had observability enabled (engine Request.Obs). Wall times are
	// nondeterministic, so keeping the section out of plain runs preserves
	// byte-identical fixed-seed payloads; consumers comparing results
	// across runs should ignore it.
	Telemetry *Telemetry `json:"telemetry,omitempty"`
	// Convergence carries the journaled annealing trajectory and derived
	// search diagnostics, present only when the run attached a convergence
	// journal (engine Request.Journal). Unlike Telemetry it contains no
	// wall clock, so for serial runs the section itself is deterministic
	// for a fixed seed; it stays opt-in to keep plain payloads small and
	// byte-identical with journaling off.
	Convergence *obs.ConvergenceReport `json:"convergence,omitempty"`

	// Raw carries the in-memory artifacts behind the payload for callers
	// that need more than JSON - trace rendering, ISA lowering, the exp
	// figure adapters. Never serialized, so its presence cannot perturb
	// byte-identity of the wire payload.
	Raw *Raw `json:"-"`
}

// Raw is the non-serialized artifact section of a Result.
type Raw struct {
	Graph    *graph.Graph
	Encoding *core.Encoding
	Schedule *core.Schedule
	Metrics  *sim.Metrics
	// Stage1Metrics is the double-buffer DLSA result of the winning LFA
	// (soma runs only; nil for cocco).
	Stage1Metrics *sim.Metrics
	// Stage1WallNS/Stage2WallNS are per-stage wall times (soma runs only).
	// They live here rather than in the serialized payload because wall
	// time is nondeterministic; engine.Run folds them into
	// Result.Telemetry when observability is on.
	Stage1WallNS, Stage2WallNS int64
}

// Telemetry is the observability section of a Result: wall-clock spend per
// solve and per stage. Populated by engine.Run only when the request
// carries an obs bundle.
type Telemetry struct {
	// SolveWallMS is the whole solve's wall time as seen by the engine.
	SolveWallMS float64 `json:"solve_wall_ms"`
	// Stage1WallMS/Stage2WallMS split the soma exploration's annealing
	// time across the allocator loop (zero for cocco).
	Stage1WallMS float64 `json:"stage1_wall_ms,omitempty"`
	Stage2WallMS float64 `json:"stage2_wall_ms,omitempty"`
}

// ScenarioInfo is the scenario section of a composed run's payload.
type ScenarioInfo struct {
	Name string `json:"name"`
	// Arrival is the composition mode: interleaved, sequential or
	// prefill+decode.
	Arrival string `json:"arrival"`
	// Components lists the composed models in composition order.
	Components []ScenarioComponent `json:"components"`
	// IsolatedSumLatencyNS sums the isolated per-model latencies: the
	// serial back-to-back execution bound the composed schedule is
	// measured against.
	IsolatedSumLatencyNS float64 `json:"isolated_sum_latency_ns"`
	// IsolatedSumEnergyPJ sums the isolated per-model energies.
	IsolatedSumEnergyPJ float64 `json:"isolated_sum_energy_pj"`
	// ComposedSpeedup is IsolatedSumLatencyNS over the composed latency.
	ComposedSpeedup float64 `json:"composed_speedup"`
	// WeightedIsolatedCost is the priority-weighted geometric mean of the
	// isolated per-model objective costs (weights normalized to sum 1) -
	// the scenario's reference objective value.
	WeightedIsolatedCost float64 `json:"weighted_isolated_cost"`
}

// ScenarioComponent is one composed model instance with its ownership
// snapshot and isolated result.
type ScenarioComponent struct {
	Name   string  `json:"name"`
	Model  string  `json:"model"`
	Batch  int     `json:"batch"`
	Weight float64 `json:"weight"`
	// Layers / Ops / WeightBytes snapshot the component's layer ownership
	// in the composed graph (workload.Placement).
	Layers      int   `json:"layers"`
	Ops         int64 `json:"ops"`
	WeightBytes int64 `json:"weight_bytes"`
	// Isolated is the component's stand-alone scheduling result on the
	// same platform and parameters.
	Isolated *Result `json:"isolated"`
}

// Workload identifies the scheduled model instance.
type Workload struct {
	Model string `json:"model"`
	Batch int    `json:"batch"`
}

// Hardware identifies the platform the schedule was evaluated on.
type Hardware struct {
	Name string `json:"name"`
	// Description is hw.Config.String(): cores, TOPS, GBUF, DRAM.
	Description string `json:"description"`
	GBufBytes   int64  `json:"gbuf_bytes"`
	// DRAMBandwidth is bytes per nanosecond (== GB/s).
	DRAMBandwidth float64 `json:"dram_gbps"`
}

// Objective is the optimization goal Energy^N x Delay^M.
type Objective struct {
	N float64 `json:"n"`
	M float64 `json:"m"`
}

// Metrics mirrors sim.Metrics in explicit units.
type Metrics struct {
	LatencyNS          float64 `json:"latency_ns"`
	EnergyPJ           float64 `json:"energy_pj"`
	CoreEnergyPJ       float64 `json:"core_energy_pj"`
	DRAMEnergyPJ       float64 `json:"dram_energy_pj"`
	Utilization        float64 `json:"utilization"`
	TheoreticalMaxUtil float64 `json:"theoretical_max_util"`
	DRAMUtilization    float64 `json:"dram_utilization"`
	TotalDRAMBytes     int64   `json:"total_dram_bytes"`
	PeakBufferBytes    int64   `json:"peak_buffer_bytes"`
	AvgBufferBytes     float64 `json:"avg_buffer_bytes"`
}

// Schedule summarizes the fusion structure (core.Stats).
type Schedule struct {
	LGs     int `json:"lgs"`
	FLGs    int `json:"flgs"`
	Tiles   int `json:"tiles"`
	Tensors int `json:"dram_tensors"`
}

// Search reports how the SoMa two-stage exploration behaved.
type Search struct {
	AllocIters       int     `json:"alloc_iters"`
	Stage1Budget     int64   `json:"stage1_budget_bytes"`
	Stage1Cost       float64 `json:"stage1_cost"`
	Stage2Cost       float64 `json:"stage2_cost"`
	Chains           int     `json:"chains"`
	Workers          int     `json:"workers"`
	BestChain        int     `json:"best_chain"`
	CacheHits        int64   `json:"cache_hits"`
	CacheMisses      int64   `json:"cache_misses"`
	CacheEntries     int     `json:"cache_entries"`
	CacheGenerations int64   `json:"cache_generations"`
	// CacheHitRate is CacheHits / (CacheHits + CacheMisses), precomputed
	// so -json consumers need not derive it (0 when the cache was unused).
	// Deterministic for a fixed seed, like the counters it is built from.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Spec names one run for the payload header; the service fills it from the
// job request, the CLI from its flags.
type Spec struct {
	Model     string
	Batch     int
	HW        string
	Framework string
	Seed      int64
	Obj       Objective
}

func sha(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

func jsonMetrics(m *sim.Metrics) Metrics {
	if m == nil {
		return Metrics{}
	}
	return Metrics{
		LatencyNS:          m.LatencyNS,
		EnergyPJ:           m.EnergyPJ,
		CoreEnergyPJ:       m.CoreEnergyPJ,
		DRAMEnergyPJ:       m.DRAMEnergyPJ,
		Utilization:        m.Utilization,
		TheoreticalMaxUtil: m.TheoreticalMaxUtil,
		DRAMUtilization:    m.DRAMUtilization,
		TotalDRAMBytes:     m.TotalDRAMBytes,
		PeakBufferBytes:    m.PeakBufferBytes,
		AvgBufferBytes:     m.AvgBufferBytes,
	}
}

func jsonSchedule(s *core.Schedule) Schedule {
	st := s.Summarize()
	return Schedule{LGs: st.LGs, FLGs: st.FLGs, Tiles: st.Tiles, Tensors: st.Tensors}
}

func jsonHeader(spec Spec, cfg hw.Config, enc *core.Encoding, sched *core.Schedule) Result {
	encKey := enc.CanonicalKey()
	return Result{
		Workload: Workload{Model: spec.Model, Batch: spec.Batch},
		Hardware: Hardware{Name: spec.HW, Description: cfg.String(),
			GBufBytes: cfg.GBufBytes, DRAMBandwidth: cfg.DRAMBandwidth},
		Objective:      spec.Obj,
		Framework:      spec.Framework,
		Seed:           spec.Seed,
		EncodingKey:    hex.EncodeToString([]byte(encKey)),
		EncodingSHA256: sha(encKey),
		ScheduleSHA256: sha(sched.CanonicalKey()),
		Schedule:       jsonSchedule(sched),
	}
}

// FromSoma builds the payload for a SoMa exploration result.
func FromSoma(spec Spec, cfg hw.Config, res *soma.Result) *Result {
	r := jsonHeader(spec, cfg, res.Encoding, res.Schedule)
	r.Cost = res.Cost
	r.Metrics = jsonMetrics(res.Stage2.Metrics)
	r.Search = &Search{
		AllocIters:       res.AllocIters,
		Stage1Budget:     res.Stage1Budget,
		Stage1Cost:       res.Stage1.Cost,
		Stage2Cost:       res.Stage2.Cost,
		Chains:           res.Stage2.Stats.Chains,
		Workers:          res.Stage2.Stats.Workers,
		BestChain:        res.Stage2.Stats.BestChain,
		CacheHits:        res.Cache.Hits,
		CacheMisses:      res.Cache.Misses,
		CacheEntries:     res.Cache.Entries,
		CacheGenerations: res.Cache.Flushes,
	}
	r.Search.CacheHitRate = res.Cache.HitRate()
	r.Raw = &Raw{Encoding: res.Encoding, Schedule: res.Schedule,
		Metrics: res.Stage2.Metrics, Stage1Metrics: res.Stage1.Metrics,
		Stage1WallNS: res.Stage1WallNS, Stage2WallNS: res.Stage2WallNS}
	return &r
}

// FromCocco builds the payload for a Cocco baseline result.
func FromCocco(spec Spec, cfg hw.Config, res *cocco.Result) *Result {
	r := jsonHeader(spec, cfg, res.Encoding, res.Schedule)
	r.Cost = res.Cost
	r.Metrics = jsonMetrics(res.Metrics)
	r.Raw = &Raw{Encoding: res.Encoding, Schedule: res.Schedule, Metrics: res.Metrics}
	return &r
}

// WriteJSON emits the payload as indented JSON, the exact bytes the somad
// API serves for the same run.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
