package engine

import (
	"context"
	"sync"
	"testing"

	"soma/internal/hw"
	"soma/internal/report"
	"soma/internal/soma"
)

// noopBackend returns a fixed payload without searching, isolating the
// engine's dispatch cost (normalization, registry lookup, hook wrapping)
// from solver time.
type noopBackend struct{}

func (noopBackend) Name() string     { return "bench-noop" }
func (noopBackend) Describe() string { return "benchmark stub: returns a fixed payload" }

func (noopBackend) Solve(_ context.Context, req Request, h *Hooks) (*report.Result, error) {
	h.Emit(Event{Kind: "stage", Backend: "bench-noop", Stage: "noop"})
	return &report.Result{Framework: "bench-noop", Cost: 1}, nil
}

var registerNoop sync.Once

// BenchmarkEngineOverhead/dispatch measures the pure engine overhead per
// Run call against a no-op backend (nanoseconds - the guard that the
// Request/Backend indirection costs nothing next to a real search, which
// the solve benchmarks below put at many milliseconds).
func BenchmarkEngineOverhead(b *testing.B) {
	registerNoop.Do(func() { Register(noopBackend{}) })
	ctx := context.Background()

	b.Run("dispatch", func(b *testing.B) {
		req := Request{Backend: "bench-noop", Model: "mobilenetv2", Platform: "edge",
			Params: soma.FastParams()}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(ctx, req, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The same minimal search through the engine and directly through the
	// explorer: the two must track each other (engine adds only the
	// dispatch measured above).
	par := soma.FastParams()
	par.Beta1, par.Beta2 = 1, 1
	b.Run("engine-solve", func(b *testing.B) {
		req := Request{Model: "mobilenetv2", Platform: "edge",
			Objective: soma.EDP(), Params: par}
		for i := 0; i < b.N; i++ {
			if _, err := Run(ctx, req, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-solve", func(b *testing.B) {
		cfg, err := hw.Platform("edge")
		if err != nil {
			b.Fatal(err)
		}
		res, err := Run(ctx, Request{Model: "mobilenetv2", Platform: "edge",
			Objective: soma.EDP(), Params: par}, nil)
		if err != nil {
			b.Fatal(err)
		}
		g := res.Raw.Graph
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := soma.New(g, cfg, soma.EDP(), par).Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
