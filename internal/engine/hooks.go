package engine

import (
	"math"
	"sync"

	"soma/internal/sim"
	"soma/internal/soma"
)

// Event is one progress observation streamed to Hooks.Event while a Request
// is being solved. Kinds, in the order a run emits them:
//
//   - "start": the engine accepted the request and is dispatching it
//   - "stage": an annealing stage is starting (Stage, AllocIter, Budget)
//   - "improve": a portfolio chain improved its incumbent (Stage, Chain,
//     Iter, Cost)
//   - "stage-done": the stage finished with its best Cost
//   - "cache": an evaluation-cache counter snapshot (after each stage)
//   - "done": the request finished; Cost is the final objective value
//   - "error": the request failed or was canceled; Err has the reason
//
// Scenario requests tag sub-run events with Component: "composed" for the
// whole-scenario search, then each component's name for its isolated run.
// The same struct is the somad SSE wire format (data: payload of
// GET /v1/jobs/{id}/events).
type Event struct {
	// Seq numbers events consecutively from 0 within one run; Hooks.Emit
	// assigns it, so consumers can rely on strict ordering.
	Seq int `json:"seq"`
	// Kind discriminates the event (see above).
	Kind string `json:"kind"`
	// Backend is the solver producing the event.
	Backend string `json:"backend"`
	// Component tags scenario sub-runs (empty for single-model requests).
	Component string `json:"component,omitempty"`
	// Stage is "stage1", "stage2" or "cocco".
	Stage string `json:"stage,omitempty"`
	// AllocIter is the 1-based Buffer Allocator iteration (soma only).
	AllocIter int `json:"alloc_iter,omitempty"`
	// Budget is the stage's buffer budget in bytes (stage events only).
	Budget int64 `json:"budget_bytes,omitempty"`
	// Chain / Iter / Cost locate an improvement or a stage outcome.
	Chain int     `json:"chain,omitempty"`
	Iter  int     `json:"iter,omitempty"`
	Cost  float64 `json:"cost,omitempty"`
	// Cache is the evaluation-cache snapshot ("cache" events only).
	Cache *sim.CacheStats `json:"cache,omitempty"`
	// Err is the failure reason ("error" events only).
	Err string `json:"error,omitempty"`
}

// Hooks streams progress events from a running solve. The zero value (or a
// nil *Hooks) disables streaming. Event is invoked serialized and in Seq
// order even when portfolio chains report concurrently, so consumers need no
// locking of their own; the callback runs on solver goroutines and must not
// block for long.
type Hooks struct {
	Event func(Event)

	mu  sync.Mutex
	seq int
}

// Emit assigns the next sequence number and delivers the event. It is safe
// for concurrent use and a no-op on a nil receiver or nil Event callback.
// Non-finite costs (an infeasible incumbent) are reported as -1, keeping
// every event JSON-marshalable.
func (h *Hooks) Emit(e Event) {
	if h == nil || h.Event == nil {
		return
	}
	if math.IsInf(e.Cost, 0) || math.IsNaN(e.Cost) {
		e.Cost = -1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	e.Seq = h.seq
	h.seq++
	h.Event(e)
}

// progressTap adapts a solver's Progress callback into tagged engine events,
// following each stage completion with an evaluation-cache snapshot. A nil
// return (no hooks installed) keeps the solver's callback plumbing off
// entirely.
func progressTap(h *Hooks, backend, component string, cache sim.EvalCache) func(soma.Progress) {
	if h == nil || h.Event == nil {
		return nil
	}
	return func(p soma.Progress) {
		ev := Event{Backend: backend, Component: component, Stage: p.Stage,
			AllocIter: p.AllocIter, Chain: p.Chain, Iter: p.Iter, Cost: p.Cost}
		switch p.Kind {
		case "start":
			ev.Kind = "stage"
			ev.Budget = p.Budget
		case "improve":
			ev.Kind = "improve"
		case "done":
			ev.Kind = "stage-done"
		}
		h.Emit(ev)
		if p.Kind == "done" && cache != nil {
			st := cache.Stats()
			h.Emit(Event{Kind: "cache", Backend: backend, Component: component, Cache: &st})
		}
	}
}
