// Package engine is the single entrypoint for constructing and running
// scheduling searches: one Request describes what to solve (a model or a
// multi-model scenario, on which platform, under which objective and search
// parameters), one Backend interface abstracts who solves it (the SoMa
// two-stage SA portfolio, the Cocco baseline, or any future solver dropped
// into the registry), and one Hooks stream reports live progress (stage
// transitions, per-chain best-cost updates, evaluation-cache snapshots).
//
// Every surface of the repo - the soma CLI, the somad daemon, the dse sweep
// runner, the exp figure adapters, the examples - runs searches exclusively
// through engine.Run, so cancellation, cache scoping, determinism and
// payload assembly are centralized here instead of re-plumbed per caller. A
// fixed seed yields byte-identical report payloads over every path, with or
// without hooks installed. Grid-shaped work (many Requests varying along
// declared axes) belongs one layer up, in internal/dse, which adds worker
// pooling, journaled resume and sweep-level progress on top of this API.
package engine
