package engine

import (
	"context"

	"soma/internal/cocco"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/obs"
	"soma/internal/report"
	"soma/internal/sim"
	"soma/internal/soma"
)

// somaBackend is the paper's two-stage SA framework behind the "soma" name.
type somaBackend struct{}

func (somaBackend) Name() string { return "soma" }

func (somaBackend) Describe() string {
	return "SoMa two-stage simulated-annealing portfolio with Buffer Allocator (the paper's framework)"
}

func (somaBackend) Solve(ctx context.Context, req Request, h *Hooks) (*report.Result, error) {
	req = req.normalized()
	cfg, err := req.hwConfig()
	if err != nil {
		return nil, err
	}
	g, err := req.buildGraph()
	if err != nil {
		return nil, err
	}
	return solveSoma(ctx, solveInputs{
		g: g, cfg: cfg, spec: req.spec(), obj: req.Objective, par: req.Params,
		cache: req.Cache, scope: req.cacheScope(),
		hooks: h, obs: req.Obs, track: req.track(), journal: req.Journal,
	})
}

// solveInputs bundles one soma sub-solve; the scenario orchestration reuses
// it for the composed graph and every isolated component run.
type solveInputs struct {
	g     *graph.Graph
	cfg   hw.Config
	spec  report.Spec
	obj   soma.Objective
	par   soma.Params
	cache sim.EvalCache
	// scope namespaces cache keys; only applied when cache is shared
	// (a private cache holds one workload and needs none).
	scope string
	hooks *Hooks
	// component tags streamed events for scenario sub-runs.
	component string
	// obs/track carry the request's observability bundle and trace track
	// down to the solver (both may be nil).
	obs   *obs.Obs
	track *obs.Track
	// journal optionally collects the sub-solve's convergence trajectory.
	journal *obs.Journal
}

// solveSoma runs one soma exploration and assembles its payload. This is the
// single place the repo constructs a soma.Explorer outside the solver's own
// package: cache scoping, progress wiring and payload assembly live here for
// every caller.
func solveSoma(ctx context.Context, in solveInputs) (*report.Result, error) {
	ex := soma.New(in.g, in.cfg, in.obj, in.par)
	if in.cache != nil {
		ex.Cache = in.cache
		ex.Scope = in.scope
	}
	ex.Progress = progressTap(in.hooks, "soma", in.component, ex.Cache)
	ex.Reg = in.obs.Registry()
	ex.Track = in.track
	ex.Journal = in.journal
	var span *obs.Span
	if in.component != "" {
		// Scenario sub-runs nest their stage spans under a component span.
		span = in.track.Start("component:"+in.component, "scenario")
	}
	res, err := ex.RunContext(ctx)
	span.End()
	if err != nil {
		return nil, err
	}
	payload := report.FromSoma(in.spec, in.cfg, res)
	payload.Raw.Graph = in.g
	return payload, nil
}

// coccoBackend is the ASPLOS'24 baseline behind the "cocco" name.
type coccoBackend struct{}

func (coccoBackend) Name() string { return "cocco" }

func (coccoBackend) Describe() string {
	return "Cocco baseline: order + DRAM-cut annealing under the classical double-buffer DLSA"
}

func (coccoBackend) Solve(ctx context.Context, req Request, h *Hooks) (*report.Result, error) {
	req = req.normalized()
	cfg, err := req.hwConfig()
	if err != nil {
		return nil, err
	}
	g, err := req.buildGraph()
	if err != nil {
		return nil, err
	}
	ex := cocco.New(g, cfg, req.Objective, req.Params)
	// Cocco evaluates uncached (its single annealing chain rarely revisits
	// states), so a shared Request.Cache has nothing to scope here.
	ex.Progress = progressTap(h, "cocco", "", nil)
	ex.Reg = req.Obs.Registry()
	ex.Track = req.track()
	ex.Journal = req.Journal
	res, err := ex.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	payload := report.FromCocco(req.spec(), cfg, res)
	payload.Raw.Graph = g
	return payload, nil
}
