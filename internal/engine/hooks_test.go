package engine

import (
	"context"
	"sync"
	"testing"

	"soma/internal/soma"
	"soma/internal/workload"
)

// collect runs the request with a recording hooks stream.
func collect(t *testing.T, req Request) []Event {
	t.Helper()
	var mu sync.Mutex
	var events []Event
	_, err := Run(context.Background(), req, &Hooks{Event: func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	return events
}

// checkOrdering asserts the stream invariants every consumer may rely on:
// consecutive Seq numbering, a "start" first and a "done" last, and - within
// each (component, stage) - improvements and completions only after the
// stage's start event.
func checkOrdering(t *testing.T, events []Event) {
	t.Helper()
	if len(events) < 2 {
		t.Fatalf("only %d events streamed", len(events))
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d; delivery order must match Seq", i, e.Seq)
		}
	}
	if events[0].Kind != "start" {
		t.Errorf("first event = %q, want start", events[0].Kind)
	}
	if last := events[len(events)-1]; last.Kind != "done" {
		t.Errorf("last event = %q, want done", last.Kind)
	}
	type key struct {
		component, stage string
		allocIter        int
	}
	started := map[key]bool{}
	for i, e := range events {
		k := key{e.Component, e.Stage, e.AllocIter}
		switch e.Kind {
		case "stage":
			started[k] = true
		case "improve", "stage-done":
			if !started[k] {
				t.Fatalf("event %d (%s %s/%s alloc %d) arrived before its stage start",
					i, e.Kind, e.Component, e.Stage, e.AllocIter)
			}
			if e.Kind == "stage-done" {
				// A finished stage emits no further improvements.
				started[k] = false
			}
		}
	}
}

func TestHooksEventOrderingSerial(t *testing.T) {
	events := collect(t, Request{Model: "mobilenetv2", Platform: "edge", Params: fastPar(1)})
	checkOrdering(t, events)

	var stages, improves, caches int
	sawStage2 := false
	firstStage2 := -1
	lastStage1Start := -1
	for i, e := range events {
		switch e.Kind {
		case "stage":
			stages++
			if e.Stage == "stage2" && firstStage2 < 0 {
				firstStage2 = i
				sawStage2 = true
			}
			if e.Stage == "stage1" && firstStage2 < 0 {
				lastStage1Start = i
			}
		case "improve":
			improves++
		case "cache":
			caches++
			if e.Cache == nil {
				t.Error("cache event without a snapshot")
			}
		}
	}
	if stages < 2 || !sawStage2 {
		t.Errorf("saw %d stage events (stage2: %v), want both stages", stages, sawStage2)
	}
	if improves == 0 {
		t.Error("no improve events streamed")
	}
	if caches == 0 {
		t.Error("no cache snapshots streamed")
	}
	if lastStage1Start < 0 || firstStage2 < lastStage1Start {
		t.Errorf("stage2 start (event %d) precedes stage1 start (event %d)",
			firstStage2, lastStage1Start)
	}
}

// TestHooksEventOrderingPortfolio: with concurrent chains the mutex in Emit
// must still deliver a strictly ordered stream.
func TestHooksEventOrderingPortfolio(t *testing.T) {
	par := fastPar(2)
	par.Chains = 4
	par.Workers = 4
	events := collect(t, Request{Model: "mobilenetv2", Platform: "edge", Params: par})
	checkOrdering(t, events)

	chains := map[int]bool{}
	for _, e := range events {
		if e.Kind == "improve" {
			chains[e.Chain] = true
		}
	}
	if len(chains) < 2 {
		t.Errorf("improvements from %d chain(s), want several with Chains=4", len(chains))
	}
}

func TestHooksCoccoStream(t *testing.T) {
	events := collect(t, Request{Backend: "cocco", Model: "mobilenetv2",
		Platform: "edge", Params: fastPar(1)})
	checkOrdering(t, events)
	for _, e := range events {
		if e.Kind == "stage" && e.Stage != "cocco" {
			t.Errorf("cocco streamed stage %q", e.Stage)
		}
		if e.Backend != "cocco" {
			t.Errorf("event backend = %q, want cocco", e.Backend)
		}
	}
}

// TestHooksScenarioComponents: scenario runs tag the composed search and
// every isolated component, composed first (matching payload assembly).
func TestHooksScenarioComponents(t *testing.T) {
	sc, err := workload.Builtin("multi-tenant-cnn")
	if err != nil {
		t.Fatal(err)
	}
	par := soma.FastParams()
	par.Beta1, par.Beta2 = 2, 1
	events := collect(t, Request{Scenario: &sc, Platform: "edge", Params: par})
	checkOrdering(t, events)

	var order []string
	seen := map[string]bool{}
	for _, e := range events {
		if e.Component != "" && !seen[e.Component] {
			seen[e.Component] = true
			order = append(order, e.Component)
		}
	}
	if len(order) != 1+len(sc.Components) {
		t.Fatalf("components streamed: %v, want composed + %d components", order, len(sc.Components))
	}
	if order[0] != "composed" {
		t.Errorf("first component = %q, want composed", order[0])
	}
}

func TestEmitNilSafety(t *testing.T) {
	var h *Hooks
	h.Emit(Event{Kind: "start"}) // must not panic
	(&Hooks{}).Emit(Event{Kind: "start"})
}
