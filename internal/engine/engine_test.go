package engine

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"soma/internal/hw"
	"soma/internal/obs"
	"soma/internal/sim"
	"soma/internal/soma"
	"soma/internal/testutil"
	"soma/internal/workload"
)

// fastPar is the smallest deterministic search the engine tests run.
func fastPar(seed int64) soma.Params {
	p := soma.FastParams()
	p.Seed = seed
	p.Beta1, p.Beta2 = 2, 1
	return p
}

func TestRegistry(t *testing.T) {
	names := Backends()
	if len(names) < 2 {
		t.Fatalf("Backends() = %v, want at least soma and cocco", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Backends() not sorted: %v", names)
		}
	}
	for _, name := range []string{"soma", "cocco"} {
		b, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Fatalf("Get(%q).Name() = %q", name, b.Name())
		}
	}
	if b, err := Get(""); err != nil || b.Name() != "soma" {
		t.Fatalf("Get(\"\") = %v, %v; want the soma default", b, err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("Get(nope) must error")
	}
	infos := List()
	if len(infos) != len(names) {
		t.Fatalf("List() = %d entries, want %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Fatalf("List()[%d] = %q, want %q", i, info.Name, names[i])
		}
		if info.Description == "" {
			t.Errorf("backend %q has no description", info.Name)
		}
	}
}

func TestRunUnknownBackend(t *testing.T) {
	_, err := Run(context.Background(), Request{Backend: "nope", Model: "mobilenetv2",
		Platform: "edge", Params: fastPar(1)}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("err = %v, want unknown backend", err)
	}
}

func TestRunUnknownPlatformAndModel(t *testing.T) {
	if _, err := Run(context.Background(), Request{Model: "mobilenetv2",
		Platform: "nope", Params: fastPar(1)}, nil); err == nil {
		t.Fatal("unknown platform must error")
	}
	if _, err := Run(context.Background(), Request{Model: "nope",
		Platform: "edge", Params: fastPar(1)}, nil); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestScenarioRequestValidation(t *testing.T) {
	sc, err := workload.Builtin("multi-tenant-cnn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), Request{Backend: "cocco", Scenario: &sc,
		Platform: "edge", Params: fastPar(1)}, nil); err == nil {
		t.Fatal("scenario on cocco must error")
	}
	if _, err := Run(context.Background(), Request{Scenario: &sc, Model: "resnet50",
		Platform: "edge", Params: fastPar(1)}, nil); err == nil {
		t.Fatal("scenario plus model must error")
	}
}

// goldenPath locates the CLI's golden payloads; the same files guard the
// `soma -json` path in CI, so this test pins engine.Run to those bytes.
func goldenPath(name string) string {
	return filepath.Join("..", "..", "cmd", "soma", "testdata", name)
}

// TestGoldenSingleModel pins the engine's fixed-seed payloads - one per
// backend - to the pre-refactor `soma -json` goldens, byte for byte.
func TestGoldenSingleModel(t *testing.T) {
	cases := []struct {
		backend, golden string
		par             soma.Params
	}{
		{"soma", "mobilenetv2-edge.golden.json", func() soma.Params {
			p := fastPar(1)
			p.Stage2MaxIters = 1 << 20 // the CLI's -beta2 override side effect
			return p
		}()},
		{"cocco", "mobilenetv2-edge-cocco.golden.json", func() soma.Params {
			p := soma.FastParams()
			p.Seed = 1
			p.Beta1 = 2
			return p
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.backend, func(t *testing.T) {
			res, err := Run(context.Background(), Request{Backend: tc.backend,
				Model: "mobilenetv2", Batch: 1, Platform: "edge",
				Objective: soma.EDP(), Params: tc.par}, nil)
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := res.WriteJSON(&got); err != nil {
				t.Fatal(err)
			}
			testutil.Golden(t, goldenPath(tc.golden), got.Bytes())
		})
	}
}

// TestGoldenScenario pins the engine's composed-scenario payload to the
// pre-refactor golden.
func TestGoldenScenario(t *testing.T) {
	sc, err := workload.Builtin("gpt2s-prefill-decode")
	if err != nil {
		t.Fatal(err)
	}
	par := soma.FastParams()
	par.Seed = 1
	par.Beta1 = 2
	res, err := Run(context.Background(), Request{Scenario: &sc, Platform: "edge",
		Objective: soma.EDP(), Params: par}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := res.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	testutil.Golden(t, goldenPath("scenario-gpt2s-prefill-decode.golden.json"), got.Bytes())
}

// TestHooksDoNotPerturbResult: a run with a hooks stream installed must be
// byte-identical to the same run without one (events observe, never steer).
func TestHooksDoNotPerturbResult(t *testing.T) {
	req := Request{Model: "mobilenetv2", Platform: "edge", Params: fastPar(11)}
	plain, err := Run(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	hooked, err := Run(context.Background(), req, &Hooks{Event: func(Event) {}})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := plain.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := hooked.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("hooks changed the result payload")
	}
}

// TestTelemetryDoesNotPerturbResult mirrors TestHooksDoNotPerturbResult for
// the observability layer: a run with a full obs bundle attached must be
// byte-identical to the bare run once the (intentionally obs-only,
// wall-clock) Telemetry section is stripped - and the bundle must actually
// have observed the search.
func TestTelemetryDoesNotPerturbResult(t *testing.T) {
	req := Request{Model: "mobilenetv2", Platform: "edge", Params: fastPar(11)}
	plain, err := Run(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	req.Obs = o
	observed, err := Run(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Telemetry == nil || observed.Telemetry.SolveWallMS <= 0 {
		t.Fatal("observed run carries no Telemetry section")
	}
	observed.Telemetry = nil
	var a, b bytes.Buffer
	if err := plain.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := observed.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("telemetry changed the result payload")
	}

	// The registry must hold populated sa/sim/engine families...
	if o.Reg.Counter("soma_sa_moves_proposed_total", "", "stage", "stage1").Value() <= 0 {
		t.Error("counter soma_sa_moves_proposed_total{stage=stage1} not populated")
	}
	for _, name := range []string{"sim_inc_proposals_total", "soma_alloc_iters_total"} {
		if o.Reg.Counter(name, "").Value() <= 0 {
			t.Errorf("counter %s not populated", name)
		}
	}
	if o.Reg.Counter("engine_solves_total", "", "backend", "soma", "outcome", "ok").Value() != 1 {
		t.Error("engine_solves_total{soma,ok} != 1")
	}
	// ...and the tracer must hold stage spans on the solve track.
	var trace bytes.Buffer
	if err := o.Tracer.WriteJSON(&trace); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"solve"`, `"stage1"`, `"stage2"`, "best_cost/stage1"} {
		if !strings.Contains(trace.String(), want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

// slowRequest is a search big enough to be mid-chain when the test cancels
// it (paper-scale iteration budgets on a deep model).
func slowRequest(backend string) Request {
	return Request{Backend: backend, Model: "resnet101", Batch: 16, Platform: "cloud",
		Params: soma.PaperParams()}
}

// TestSolveCancellation: canceling the context mid-chain must return
// context.Canceled promptly on both backends and leak no goroutines (the
// suite runs under -race in CI, which also catches unsynchronized hook
// plumbing).
func TestSolveCancellation(t *testing.T) {
	for _, backend := range []string{"soma", "cocco"} {
		t.Run(backend, func(t *testing.T) {
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 1)
			go func() {
				_, err := Run(ctx, slowRequest(backend), nil)
				errc <- err
			}()
			time.Sleep(100 * time.Millisecond)
			cancel()
			select {
			case err := <-errc:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("cancellation did not land within 30s")
			}
			// Portfolio chains and the run goroutine must all unwind.
			deadline := time.Now().Add(10 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(20 * time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > before {
				t.Errorf("goroutines leaked: %d before, %d after cancel", before, n)
			}
		})
	}
}

// TestCompare: one request over both backends matches two individual runs.
func TestCompare(t *testing.T) {
	req := Request{Model: "mobilenetv2", Platform: "edge", Params: fastPar(5)}
	both, err := Compare(context.Background(), req, "cocco", "soma")
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != 2 {
		t.Fatalf("Compare returned %d results", len(both))
	}
	if both[0].Framework != "cocco" || both[1].Framework != "soma" {
		t.Fatalf("frameworks = %q, %q", both[0].Framework, both[1].Framework)
	}
	for i, name := range []string{"cocco", "soma"} {
		r := req
		r.Backend = name
		single, err := Run(context.Background(), r, nil)
		if err != nil {
			t.Fatal(err)
		}
		if single.Cost != both[i].Cost || single.EncodingKey != both[i].EncodingKey {
			t.Errorf("%s: Compare diverged from Run", name)
		}
	}
	if _, err := Compare(context.Background(), req, "soma", "nope"); err == nil {
		t.Fatal("Compare with unknown backend must error")
	}
}

// TestSharedCacheConfigIsolation: two shared-cache requests naming the same
// (model, batch, platform) but carrying different hardware overrides must
// not reuse each other's evaluations - each must match its private-cache
// run exactly.
func TestSharedCacheConfigIsolation(t *testing.T) {
	fast, err := hw.Platform("edge")
	if err != nil {
		t.Fatal(err)
	}
	fast = fast.WithDRAM(4 * fast.DRAMBandwidth)
	slow, err := hw.Platform("edge")
	if err != nil {
		t.Fatal(err)
	}
	shared := sim.NewCache(0)
	ctx := context.Background()
	for _, cfg := range []*hw.Config{&slow, &fast} {
		req := Request{Model: "mobilenetv2", Platform: "edge", Config: cfg,
			Params: fastPar(9)}
		want, err := Run(ctx, req, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Cache = shared
		got, err := Run(ctx, req, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != want.Cost || got.ScheduleSHA256 != want.ScheduleSHA256 {
			t.Errorf("DRAM %.0f GB/s: shared-cache run diverged from private-cache run (cost %v vs %v)",
				cfg.DRAMBandwidth, got.Cost, want.Cost)
		}
	}
}

// TestGraphRequest: an explicit graph takes the place of a registry model.
func TestGraphRequest(t *testing.T) {
	viaModel, err := Run(context.Background(), Request{Model: "mobilenetv2",
		Platform: "edge", Params: fastPar(3)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := viaModel.Raw.Graph
	viaGraph, err := Run(context.Background(), Request{Graph: g, Model: "mobilenetv2",
		Platform: "edge", Params: fastPar(3)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if viaGraph.Cost != viaModel.Cost || viaGraph.ScheduleSHA256 != viaModel.ScheduleSHA256 {
		t.Error("explicit-graph request diverged from the registry-model request")
	}
}
