package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"soma/internal/obs"
)

// TestJournalDoesNotPerturbResult mirrors TestTelemetryDoesNotPerturbResult
// for the convergence journal: a run with Request.Journal attached must be
// byte-identical to the bare run once the (intentionally opt-in)
// Convergence section is stripped - and the journal must actually have
// recorded the search.
func TestJournalDoesNotPerturbResult(t *testing.T) {
	for _, backend := range []string{"soma", "cocco"} {
		t.Run(backend, func(t *testing.T) {
			req := Request{Backend: backend, Model: "mobilenetv2", Platform: "edge",
				Params: fastPar(11)}
			plain, err := Run(context.Background(), req, nil)
			if err != nil {
				t.Fatal(err)
			}
			req.Journal = obs.NewJournal()
			journaled, err := Run(context.Background(), req, nil)
			if err != nil {
				t.Fatal(err)
			}
			conv := journaled.Convergence
			if conv == nil || len(conv.Series) == 0 || conv.Diagnostics == nil {
				t.Fatal("journaled run carries no Convergence section")
			}
			journaled.Convergence = nil
			var a, b bytes.Buffer
			if err := plain.WriteJSON(&a); err != nil {
				t.Fatal(err)
			}
			if err := journaled.WriteJSON(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Error("convergence journaling changed the result payload")
			}

			d := conv.Diagnostics
			wantStage := ConvergenceStages(backend)[0]
			if d.Stage != wantStage {
				t.Errorf("diagnostics winner stage = %q, want %q", d.Stage, wantStage)
			}
			if d.FinalBest != journaled.Cost {
				t.Errorf("diagnostics FinalBest = %g, payload cost %g", d.FinalBest, journaled.Cost)
			}
			if d.TotalMoves <= 0 || d.MovesTo10Pct < 0 {
				t.Errorf("diagnostics not populated: %+v", d)
			}
			for _, cs := range conv.Series {
				if !cs.Finished || len(cs.Samples) == 0 {
					t.Errorf("series %s/%d/%d unfinished or empty",
						cs.Stage, cs.AllocIter, cs.Chain)
				}
			}
		})
	}
}

// TestJournalDeterministicForSeed: two serial journaled runs with the same
// seed produce identical Convergence sections (the CLI golden's contract).
func TestJournalDeterministicForSeed(t *testing.T) {
	run := func() *obs.ConvergenceReport {
		req := Request{Model: "mobilenetv2", Platform: "edge", Params: fastPar(7),
			Journal: obs.NewJournal()}
		res, err := Run(context.Background(), req, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Convergence
	}
	a, b := marshalConv(t, run()), marshalConv(t, run())
	if !bytes.Equal(a, b) {
		t.Error("fixed-seed convergence reports differ")
	}
}

// TestCompareAttachesPerBackendJournals: Compare gives each backend a fresh
// journal, so both results carry their own diagnostics.
func TestCompareAttachesPerBackendJournals(t *testing.T) {
	req := Request{Model: "mobilenetv2", Platform: "edge", Params: fastPar(3),
		Journal: obs.NewJournal()}
	results, err := Compare(context.Background(), req, "soma", "cocco")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for i, want := range []string{"stage2", "cocco"} {
		conv := results[i].Convergence
		if conv == nil || conv.Diagnostics == nil {
			t.Fatalf("result %d carries no convergence diagnostics", i)
		}
		if conv.Diagnostics.Stage != want {
			t.Errorf("result %d winner stage = %q, want %q", i, conv.Diagnostics.Stage, want)
		}
	}
	// The request's own journal must not have accumulated both backends.
	for _, cs := range obs.BuildConvergence(req.Journal).Series {
		if cs.Stage == "cocco" {
			t.Error("backends shared one journal in Compare")
		}
	}
}

func marshalConv(t *testing.T, rep *obs.ConvergenceReport) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
