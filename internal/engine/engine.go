package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/models"
	"soma/internal/obs"
	"soma/internal/report"
	"soma/internal/sim"
	"soma/internal/soma"
	"soma/internal/workload"
)

// Request describes one scheduling problem: what to solve, on which
// hardware, under which objective and search parameters. Exactly one
// workload source applies, checked in this order: Scenario (a multi-model
// composition), Graph (an explicit layer graph), or Model (a registry name
// built at Batch). Zero values select the usual defaults - backend "soma",
// batch 1, the EDP objective - so the minimal request is
// {Model: "resnet50", Platform: "edge", Params: soma.DefaultParams()}.
type Request struct {
	// Backend names the registered solver ("" selects "soma").
	Backend string
	// Model is a model-zoo name (ignored when Graph or Scenario is set,
	// except as the payload's workload label for Graph requests).
	Model string
	// Batch is the model batch size (0 selects 1).
	Batch int
	// Graph optionally supplies the layer graph directly instead of
	// building Model from the registry.
	Graph *graph.Graph
	// Scenario optionally requests a multi-model composed run ("soma"
	// backend only); Model/Batch/Graph must be unset.
	Scenario *workload.Scenario
	// Platform is the named hardware preset (hw.Platforms lists them).
	Platform string
	// Config optionally overrides the platform preset with an explicit
	// hardware configuration (DSE sweeps, -dram/-buf style overrides);
	// Platform still labels the payload header.
	Config *hw.Config
	// Objective is the optimization goal Energy^N x Delay^M (the zero
	// value selects EDP, n = m = 1).
	Objective soma.Objective
	// Params are the search hyper-parameters (seed, portfolio width,
	// iteration budgets).
	Params soma.Params
	// Cache optionally shares one evaluation cache across requests (the
	// somad daemon passes its process-wide cache). The engine scopes keys
	// per (workload, batch, platform) context, so heterogeneous requests
	// never collide; nil gives the run a private cache. Sharing only
	// changes lookup cost, never the result.
	Cache sim.EvalCache
	// Obs optionally attaches an observability bundle: the registry
	// receives engine solve counters/latency plus the solver layers'
	// telemetry (soma_sa_*, sim_inc_*, sim_eval_cache_*), and the tracer
	// records stage/component spans. Pure pass-through: fixed-seed results
	// are byte-identical with Obs set or nil, except that successful runs
	// additionally carry a Result.Telemetry section (wall times).
	Obs *obs.Obs
	// TraceTrack overrides the trace track name this request's spans land
	// on ("" derives "<backend> <workload>"). Concurrent runs sharing one
	// tracer (dse sweep points) must use distinct tracks, since spans
	// within a track render as one nested timeline.
	TraceTrack string
	// Journal optionally collects the run's convergence trajectory (one
	// obs series per stage/allocator-iteration/chain). Pass-through like
	// Obs: fixed-seed results are byte-identical with Journal set or nil,
	// except that successful runs additionally carry a Result.Convergence
	// section with the journaled series and derived search diagnostics.
	// For scenario requests only the composed run is journaled.
	Journal *obs.Journal
}

// normalized fills Request defaults in place.
func (r Request) normalized() Request {
	if r.Backend == "" {
		r.Backend = "soma"
	}
	if r.Batch == 0 {
		r.Batch = 1
	}
	if r.Objective == (soma.Objective{}) {
		r.Objective = soma.EDP()
	}
	if r.Model == "" && r.Graph != nil {
		r.Model = r.Graph.Name
	}
	return r
}

// hwConfig resolves the hardware the request runs on.
func (r Request) hwConfig() (hw.Config, error) {
	if r.Config != nil {
		return *r.Config, nil
	}
	cfg, err := hw.Platform(r.Platform)
	if err != nil {
		return hw.Config{}, fmt.Errorf("engine: %w", err)
	}
	return cfg, nil
}

// spec builds the payload header naming this run. Callers pass a normalized
// request.
func (r Request) spec() report.Spec {
	return report.Spec{Model: r.Model, Batch: r.Batch, HW: r.Platform,
		Framework: r.Backend, Seed: r.Params.Seed,
		Obj: report.Objective{N: r.Objective.N, M: r.Objective.M}}
}

// buildGraph resolves the request's layer graph.
func (r Request) buildGraph() (*graph.Graph, error) {
	if r.Graph != nil {
		return r.Graph, nil
	}
	return models.Build(r.Model, r.Batch)
}

// cacheScope is the evaluation-cache namespace for one (workload, batch,
// platform) context, shared with scenario isolated runs so a scenario job
// and a plain job for the same component reuse each other's evaluations.
func cacheScope(model string, batch int, platform string) string {
	return fmt.Sprintf("%s|%d|%s|", model, batch, platform)
}

// cacheScope namespaces this request's entries in a shared cache. Beyond
// the (model, batch, platform) triple it folds in the two request fields
// that change what an evaluation means without renaming the workload: an
// explicit hardware override (digested) and an explicit graph (by object
// identity - two distinct graphs may share a label, while re-solving the
// same graph value still shares entries).
func (r Request) cacheScope() string {
	scope := cacheScope(r.Model, r.Batch, r.Platform)
	if r.Config != nil {
		sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", *r.Config)))
		scope += "cfg:" + hex.EncodeToString(sum[:8]) + "|"
	}
	if r.Graph != nil {
		scope += fmt.Sprintf("g:%p|", r.Graph)
	}
	return scope
}

// track resolves the trace track this request's spans land on. Callers pass
// a normalized request; nil-safe (a request without Obs gets a nil track,
// whose methods are no-ops).
func (r Request) track() *obs.Track {
	name := r.TraceTrack
	if name == "" {
		label := r.Model
		if r.Scenario != nil {
			label = ScenarioModelName(r.Scenario.Name)
		}
		name = r.Backend + " " + label
	}
	return r.Obs.Trace().Track(name)
}

// Backend is one pluggable solver. Solve runs the search described by the
// (normalized or raw) Request and assembles the machine-readable payload,
// streaming progress through h (which may be nil). Implementations must
// honor ctx cancellation promptly and must be deterministic for a fixed
// Params.Seed.
type Backend interface {
	Name() string
	Solve(ctx context.Context, req Request, h *Hooks) (*report.Result, error)
}

// Describer is an optional Backend extension providing the one-line
// description served by registry listings (somad GET /v1/backends).
type Describer interface {
	Describe() string
}

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a solver to the registry; registering a name twice panics
// (backend names are package-level wiring, not runtime data).
func Register(b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name()]; dup {
		panic("engine: duplicate backend " + b.Name())
	}
	registry[b.Name()] = b
}

func init() {
	Register(somaBackend{})
	Register(coccoBackend{})
}

// Get returns the named backend ("" selects "soma").
func Get(name string) (Backend, error) {
	if name == "" {
		name = "soma"
	}
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown backend %q (%v)", name, Backends())
	}
	return b, nil
}

// Backends lists the registered solver names in sorted order.
func Backends() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BackendInfo is one registry listing entry.
type BackendInfo struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
}

// List describes every registered backend in sorted order.
func List() []BackendInfo {
	regMu.RLock()
	defer regMu.RUnlock()
	infos := make([]BackendInfo, 0, len(registry))
	for name, b := range registry {
		info := BackendInfo{Name: name}
		if d, ok := b.(Describer); ok {
			info.Description = d.Describe()
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].Name < infos[b].Name })
	return infos
}

// Run solves one Request on its named backend, streaming progress through h
// (nil disables streaming). It wraps the backend's events with a "start"
// event up front and a terminal "done" (or "error") event, so every hook
// consumer sees one complete, strictly ordered stream per run.
func Run(ctx context.Context, req Request, h *Hooks) (*report.Result, error) {
	req = req.normalized()
	b, err := Get(req.Backend)
	if err != nil {
		return nil, err
	}
	if req.Scenario != nil {
		if req.Backend != "soma" {
			return nil, fmt.Errorf("engine: scenario requests run the soma backend only, got %q", req.Backend)
		}
		if req.Model != "" || req.Graph != nil {
			return nil, fmt.Errorf("engine: scenario requests must not set Model or Graph")
		}
	}
	h.Emit(Event{Kind: "start", Backend: req.Backend})
	reg := req.Obs.Registry()
	span := req.track().Start("solve", "engine").
		Arg("backend", req.Backend).Arg("model", req.Model)
	start := time.Now()
	var res *report.Result
	if req.Scenario != nil {
		res, err = solveScenario(ctx, req, h)
	} else {
		res, err = b.Solve(ctx, req, h)
	}
	wall := time.Since(start)
	reg.Histogram("engine_solve_seconds",
		"Wall time of one engine solve.", "backend", req.Backend).Observe(wall.Seconds())
	if err != nil {
		reg.Counter("engine_solves_total",
			"Engine solves by backend and outcome.",
			"backend", req.Backend, "outcome", "error").Inc()
		span.Arg("error", err.Error()).End()
		h.Emit(Event{Kind: "error", Backend: req.Backend, Err: err.Error()})
		return nil, err
	}
	reg.Counter("engine_solves_total",
		"Engine solves by backend and outcome.",
		"backend", req.Backend, "outcome", "ok").Inc()
	span.Arg("cost", res.Cost).End()
	if req.Obs != nil {
		t := &report.Telemetry{SolveWallMS: float64(wall.Nanoseconds()) / 1e6}
		if res.Raw != nil {
			t.Stage1WallMS = float64(res.Raw.Stage1WallNS) / 1e6
			t.Stage2WallMS = float64(res.Raw.Stage2WallNS) / 1e6
		}
		res.Telemetry = t
	}
	if req.Journal != nil {
		res.Convergence = obs.BuildConvergence(req.Journal, ConvergenceStages(req.Backend)...)
	}
	h.Emit(Event{Kind: "done", Backend: req.Backend, Cost: res.Cost})
	return res, nil
}

// ConvergenceStages returns the stage-preference order for a backend's
// convergence-diagnostics winner selection: the stage whose incumbent is the
// run's final cost comes first. Shared with somad's per-job convergence
// endpoint so live and final diagnostics agree.
func ConvergenceStages(backend string) []string {
	if backend == "cocco" {
		return []string{"cocco"}
	}
	return []string{"stage2", "stage1"}
}

// Compare runs several backends on one Request (its Backend field is
// overridden per run), returning results in backend order. Backends run
// sequentially, so a fixed seed yields the same results as N separate Run
// calls; an error on any backend aborts the comparison. When req.Journal is
// set, each backend gets its own fresh journal, so every result carries its
// own Convergence section - side-by-side search diagnostics for tournaments.
func Compare(ctx context.Context, req Request, backends ...string) ([]*report.Result, error) {
	out := make([]*report.Result, 0, len(backends))
	for _, name := range backends {
		r := req
		r.Backend = name
		r.Journal = req.Journal.Fresh()
		res, err := Run(ctx, r, nil)
		if err != nil {
			return nil, fmt.Errorf("engine: backend %s: %w", name, err)
		}
		out = append(out, res)
	}
	return out, nil
}
