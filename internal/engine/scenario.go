package engine

import (
	"context"
	"fmt"
	"math"

	"soma/internal/report"
	"soma/internal/sim"
	"soma/internal/workload"
)

// ScenarioModelName is the Workload.Model label a composed payload reports.
func ScenarioModelName(name string) string { return "scenario:" + name }

// solveScenario schedules the composed scenario graph and each component
// model in isolation, returning the composed aggregate report.Result with
// the per-model results attached in its Scenario section. The flow is shared
// between `soma -scenario` and the somad jobs API (both route here through
// Run), so a fixed-seed scenario run is byte-identical over both paths.
// Events are tagged Component "composed" for the whole-scenario search, then
// each component's name for its isolated run.
func solveScenario(ctx context.Context, req Request, h *Hooks) (*report.Result, error) {
	req = req.normalized()
	cfg, err := req.hwConfig()
	if err != nil {
		return nil, err
	}
	sc := *req.Scenario
	sc.Components = append([]workload.Component(nil), sc.Components...)
	sc.Normalize()
	g, pl, err := sc.Compose()
	if err != nil {
		return nil, err
	}
	digest, err := sc.SpecSHA256()
	if err != nil {
		return nil, err
	}
	cache := req.Cache
	if cache == nil {
		cache = sim.NewCache(0)
	}

	// Composed run: the whole scenario as one point of the scheduling
	// space. The scope keys composed evaluations by spec digest, so equal
	// scenarios share cache entries and different ones never collide.
	spec := report.Spec{Model: ScenarioModelName(sc.Name), Batch: sc.TotalBatch(),
		HW: req.Platform, Framework: "soma", Seed: req.Params.Seed,
		Obj: report.Objective{N: req.Objective.N, M: req.Objective.M}}
	// Only the composed run is journaled: it is the scenario's actual
	// search, while the isolated per-component runs below are reference
	// solves whose trajectories would drown it in the report.
	payload, err := solveSoma(ctx, solveInputs{
		g: g, cfg: cfg, spec: spec, obj: req.Objective, par: req.Params,
		cache: cache, scope: fmt.Sprintf("scn:%s|%s|composed|", digest, req.Platform),
		hooks: h, component: "composed", obs: req.Obs, track: req.track(),
		journal: req.Journal,
	})
	if err != nil {
		return nil, err
	}

	// Isolated per-component runs, in composition order. The scope matches
	// the single-model convention, so a scenario job and a plain job for
	// the same (model, batch, hw) share evaluations.
	info := &report.ScenarioInfo{Name: sc.Name, Arrival: string(sc.Arrival)}
	var wLogCost float64
	for _, span := range pl.Spans {
		c := span.Component
		ispec := report.Spec{Model: c.Model, Batch: c.Batch, HW: req.Platform,
			Framework: "soma", Seed: req.Params.Seed, Obj: spec.Obj}
		ires, err := solveSoma(ctx, solveInputs{
			g: span.Graph, cfg: cfg, spec: ispec, obj: req.Objective, par: req.Params,
			cache: cache, scope: cacheScope(c.Model, c.Batch, req.Platform),
			hooks: h, component: c.Name, obs: req.Obs, track: req.track(),
		})
		if err != nil {
			return nil, fmt.Errorf("engine: scenario %s: isolated %s: %w", sc.Name, c.Name, err)
		}
		info.Components = append(info.Components, report.ScenarioComponent{
			Name: c.Name, Model: c.Model, Batch: c.Batch, Weight: c.Weight,
			Layers: span.Layers, Ops: span.Ops, WeightBytes: span.WeightBytes,
			Isolated: ires,
		})
		info.IsolatedSumLatencyNS += ires.Metrics.LatencyNS
		info.IsolatedSumEnergyPJ += ires.Metrics.EnergyPJ
		wLogCost += c.Weight * math.Log(ires.Cost)
	}
	if payload.Metrics.LatencyNS > 0 {
		info.ComposedSpeedup = info.IsolatedSumLatencyNS / payload.Metrics.LatencyNS
	}
	info.WeightedIsolatedCost = math.Exp(wLogCost / sc.TotalWeight())
	payload.Scenario = info
	return payload, nil
}
