// Package coresched is the classic intra-tile Core Array Scheduler and
// Evaluator the paper adopts from the single-layer dataflow literature
// (Timeloop/MAESTRO-style analytical modelling, Sec. V-D): given one
// computing tile whose ifmaps and weights already sit in the GBUF, it
// searches how to partition the tile across the cores, chooses a
// weight-stationary or input-stationary L0 dataflow per candidate, and
// returns the tile's compute time and energy including GBUF<->L0 traffic.
//
// The model captures the effects the paper's first stage exploits: coarser
// tiles amortize the fixed per-tile overhead, expose more L0 reuse (fewer
// GBUF passes) and map better onto the KC-parallel PE array, so the LFA
// search sees a genuine cost gradient over the Tiling Number.
package coresched

import (
	"math"
	"sync"

	"soma/internal/graph"
	"soma/internal/hw"
)

// Request describes one computing tile. It is the cache key, so it contains
// only value types.
type Request struct {
	Kind graph.Kind
	// OutElems is the tile's output batch x height x width element count
	// (channel excluded).
	OutElems int64
	// OutC / InC are the produced / contracted channel widths.
	OutC, InC int
	// KH/KW is the spatial window (1 for GEMM-like kinds).
	KH, KW int
	// InBytes / OutBytes / WeightBytes are the GBUF-resident operand
	// footprints the tile must stream through the cores.
	InBytes, OutBytes, WeightBytes int64
	// Ops is the tile's total arithmetic work (MAC = 2 ops).
	Ops int64
	// ElemBytes is the element width.
	ElemBytes int
}

// Result is the evaluated cost of one tile.
type Result struct {
	// TimeNS is the tile's occupancy of the compute pipeline.
	TimeNS float64
	// EnergyPJ is the total tile energy; the breakdown fields sum to it.
	EnergyPJ  float64
	ComputePJ float64
	GBufPJ    float64
	L0PJ      float64
	// GBufBytes is the GBUF traffic the chosen mapping generates.
	GBufBytes int64
	// SpatialCut / ChannelCut is the chosen core partition.
	SpatialCut, ChannelCut int
}

// Scheduler evaluates tiles against one hardware configuration, memoising
// results (tiles of the same layer share shapes, so hit rates are high).
type Scheduler struct {
	cfg hw.Config
	// parts holds the (spatial x channel) core partitions of cfg.Cores,
	// enumerated once: evalPEArray runs on every tile-cost cache miss and
	// the candidate set depends only on the core count.
	parts [][2]int

	mu    sync.Mutex
	cache map[Request]Result
}

// New creates a scheduler for the given hardware.
func New(cfg hw.Config) *Scheduler {
	return &Scheduler{cfg: cfg, parts: factorPairs(cfg.Cores), cache: make(map[Request]Result)}
}

// Config returns the hardware this scheduler models.
func (s *Scheduler) Config() hw.Config { return s.cfg }

// CacheSize reports the number of memoised tile shapes (test/metrics hook).
func (s *Scheduler) CacheSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// Evaluate returns the cost of one tile, searching core partitions for
// PE-array kinds and using the vector-unit model otherwise.
func (s *Scheduler) Evaluate(r Request) Result {
	s.mu.Lock()
	if res, ok := s.cache[r]; ok {
		s.mu.Unlock()
		return res
	}
	s.mu.Unlock()

	var res Result
	if r.Kind.OnPEArray() {
		res = s.evalPEArray(r)
	} else {
		res = s.evalVector(r)
	}
	res.EnergyPJ = res.ComputePJ + res.GBufPJ + res.L0PJ

	s.mu.Lock()
	s.cache[r] = res
	s.mu.Unlock()
	return res
}

// evalPEArray searches (spatial x channel) core partitions.
func (s *Scheduler) evalPEArray(r Request) Result {
	best := Result{TimeNS: math.Inf(1)}
	for _, part := range s.parts {
		cand := s.evalPartition(r, part[0], part[1])
		if cand.TimeNS < best.TimeNS ||
			(cand.TimeNS == best.TimeNS && cand.energy() < best.energy()) {
			best = cand
		}
	}
	return best
}

func (r Result) energy() float64 { return r.ComputePJ + r.GBufPJ + r.L0PJ }

// evalPartition costs one (spatial=pS, outputChannel=pC) core split.
func (s *Scheduler) evalPartition(r Request, pS, pC int) Result {
	cfg := &s.cfg
	macs := float64(r.Ops) / 2

	// Mapping-efficiency penalties of the KC-parallel PE array: padding
	// the contracted channels to ArrayRows, the per-core output channels
	// to ArrayCols, and the spatial extent to the spatial cut.
	subC := ceilDiv(r.OutC, pC)
	penC := pad(r.InC, cfg.ArrayRows)
	penK := pad(subC, cfg.ArrayCols)
	penS := pad64(r.OutElems, int64(pS))
	if r.Kind == graph.DWConv {
		// Depthwise convs do not contract channels; they unroll the
		// window and spatial extent instead, at reduced efficiency.
		penC, penK = 2, 1
	}
	cycles := macs * penC * penK * penS / float64(pS*pC*cfg.MACsPerCore())

	// GBUF traffic: spatial cuts replicate weight reads, channel cuts
	// replicate ifmap reads; the L0 dataflow decides which operand is
	// re-streamed when it overflows its L0 slice.
	wPerCore := float64(r.WeightBytes) / float64(pC)
	iPerCore := float64(r.InBytes) / float64(pS)
	l0 := float64(cfg.L0Bytes)
	wPasses := math.Ceil(wPerCore / l0) // input-stationary weight refetches
	iPasses := math.Ceil(iPerCore / l0) // weight-stationary ifmap refetches
	cores := float64(pS * pC)
	wsTraffic := cores * (wPerCore + iPerCore*wPasses)
	isTraffic := cores * (iPerCore + wPerCore*iPasses)
	gbuf := math.Min(wsTraffic, isTraffic) + float64(r.OutBytes)

	timeCompute := cfg.CyclesToNS(cycles + float64(cfg.TileOverheadCycles))
	timeGBuf := gbuf / cfg.GBufBandwidth
	en := cfg.Energy

	return Result{
		TimeNS:     math.Max(timeCompute, timeGBuf),
		ComputePJ:  float64(r.Ops) * en.MACOp / 2,
		GBufPJ:     gbuf * en.GBufPerByte,
		L0PJ:       (gbuf + 2*float64(r.OutBytes)) * en.L0PerByte,
		GBufBytes:  int64(gbuf),
		SpatialCut: pS, ChannelCut: pC,
	}
}

// evalVector costs element-wise kinds on the vector units.
func (s *Scheduler) evalVector(r Request) Result {
	cfg := &s.cfg
	gbuf := float64(r.InBytes + r.OutBytes)
	cycles := float64(r.Ops)/float64(cfg.Cores*cfg.VecLanesPerCore) +
		float64(cfg.TileOverheadCycles)
	en := cfg.Energy
	return Result{
		TimeNS:     math.Max(cfg.CyclesToNS(cycles), gbuf/cfg.GBufBandwidth),
		ComputePJ:  float64(r.Ops) * en.VecOp,
		GBufPJ:     gbuf * en.GBufPerByte,
		L0PJ:       gbuf * en.L0PerByte,
		GBufBytes:  int64(gbuf),
		SpatialCut: cfg.Cores, ChannelCut: 1,
	}
}

// pad returns the ceil-quantization penalty of mapping n onto lanes of width
// q: padded/n >= 1.
func pad(n, q int) float64 {
	if n <= 0 {
		return 1
	}
	return float64(ceilDiv(n, q)*q) / float64(n)
}

func pad64(n int64, q int64) float64 {
	if n <= 0 {
		return 1
	}
	p := (n + q - 1) / q * q
	return float64(p) / float64(n)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// factorPairs enumerates (a,b) with a*b == n (core partition candidates).
func factorPairs(n int) [][2]int {
	var out [][2]int
	for a := 1; a <= n; a++ {
		if n%a == 0 {
			out = append(out, [2]int{a, n / a})
		}
	}
	return out
}
