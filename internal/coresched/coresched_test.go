package coresched

import (
	"testing"
	"testing/quick"

	"soma/internal/graph"
	"soma/internal/hw"
)

// convReq builds a well-formed conv tile request.
func convReq(outElems int64, outC, inC int) Request {
	macs := outElems * int64(outC) * int64(inC) * 9
	return Request{
		Kind:        graph.Conv,
		OutElems:    outElems,
		OutC:        outC,
		InC:         inC,
		KH:          3,
		KW:          3,
		InBytes:     outElems * int64(inC), // ~same spatial extent
		OutBytes:    outElems * int64(outC),
		WeightBytes: int64(inC) * int64(outC) * 9,
		Ops:         2 * macs,
		ElemBytes:   1,
	}
}

func TestEvaluatePositiveAndConsistent(t *testing.T) {
	s := New(hw.Edge())
	r := s.Evaluate(convReq(56*56, 64, 64))
	if r.TimeNS <= 0 || r.EnergyPJ <= 0 {
		t.Fatalf("non-positive cost: %+v", r)
	}
	sum := r.ComputePJ + r.GBufPJ + r.L0PJ
	if diff := r.EnergyPJ - sum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("energy breakdown %g != total %g", sum, r.EnergyPJ)
	}
	if r.SpatialCut*r.ChannelCut != hw.Edge().Cores {
		t.Fatalf("partition %dx%d does not use all cores", r.SpatialCut, r.ChannelCut)
	}
}

func TestMemoisation(t *testing.T) {
	s := New(hw.Edge())
	req := convReq(28*28, 128, 128)
	a := s.Evaluate(req)
	if s.CacheSize() != 1 {
		t.Fatalf("cache size = %d", s.CacheSize())
	}
	b := s.Evaluate(req)
	if a != b {
		t.Fatal("memoised result differs")
	}
}

func TestTimeLowerBoundedByPeak(t *testing.T) {
	// No mapping can beat the peak arithmetic rate.
	cfg := hw.Edge()
	s := New(cfg)
	req := convReq(112*112, 256, 256)
	r := s.Evaluate(req)
	ideal := float64(req.Ops) / cfg.PeakOpsPerNS()
	if r.TimeNS < ideal {
		t.Fatalf("time %.1f ns beats the %.1f ns peak bound", r.TimeNS, ideal)
	}
}

func TestBigChannelsNearPeak(t *testing.T) {
	// A large, well-aligned conv should run close to peak (pad penalties
	// vanish when channels are multiples of the array dims).
	cfg := hw.Edge()
	s := New(cfg)
	req := convReq(64*64, 256, 256)
	r := s.Evaluate(req)
	ideal := float64(req.Ops) / cfg.PeakOpsPerNS()
	if r.TimeNS > 2.1*ideal {
		t.Fatalf("aligned conv at %.2fx ideal, want <= 2.1x", r.TimeNS/ideal)
	}
}

func TestSmallChannelsUnderutilize(t *testing.T) {
	cfg := hw.Edge()
	s := New(cfg)
	small := s.Evaluate(convReq(56*56, 8, 3)) // stem-like: tiny channels
	ideal := float64(convReq(56*56, 8, 3).Ops) / cfg.PeakOpsPerNS()
	if small.TimeNS < 3*ideal {
		t.Fatalf("tiny channels should underutilize: %.2fx ideal", small.TimeNS/ideal)
	}
}

func TestCoarserTilesAmortizeOverhead(t *testing.T) {
	// Evaluating a layer as 1 big tile must cost less time than the sum
	// of 16 small tiles (fixed overhead + reuse losses).
	s := New(hw.Edge())
	big := s.Evaluate(convReq(56*56, 128, 128))
	small := s.Evaluate(convReq(56*56/16, 128, 128))
	if 16*small.TimeNS <= big.TimeNS {
		t.Fatalf("fine tiling should cost more: 16x%.0f vs %.0f", small.TimeNS, big.TimeNS)
	}
	if 16*small.EnergyPJ < big.EnergyPJ {
		t.Fatalf("fine tiling should not save energy: 16x%.0f vs %.0f", small.EnergyPJ, big.EnergyPJ)
	}
}

func TestVectorKindUsesVectorModel(t *testing.T) {
	s := New(hw.Edge())
	r := s.Evaluate(Request{
		Kind: graph.Eltwise, OutElems: 56 * 56, OutC: 64,
		InBytes: 2 * 56 * 56 * 64, OutBytes: 56 * 56 * 64,
		Ops: 56 * 56 * 64, ElemBytes: 1,
	})
	if r.TimeNS <= 0 || r.EnergyPJ <= 0 {
		t.Fatalf("vector cost: %+v", r)
	}
	// Element-wise layers are GBUF-bound, never MAC-bound.
	if r.ComputePJ > r.GBufPJ {
		t.Fatalf("eltwise should be traffic-dominated: %+v", r)
	}
}

func TestDepthwiseDoesNotExplode(t *testing.T) {
	// DWConv has InC=1 per output channel; the special case must keep the
	// penalty bounded rather than padding 1 -> ArrayRows.
	cfg := hw.Edge()
	s := New(cfg)
	req := Request{
		Kind: graph.DWConv, OutElems: 56 * 56, OutC: 64, InC: 1,
		KH: 3, KW: 3,
		InBytes: 58 * 58 * 64, OutBytes: 56 * 56 * 64, WeightBytes: 64 * 9,
		Ops: 2 * 56 * 56 * 64 * 9, ElemBytes: 1,
	}
	r := s.Evaluate(req)
	ideal := float64(req.Ops) / cfg.PeakOpsPerNS()
	if r.TimeNS > 40*ideal {
		t.Fatalf("depthwise penalty too harsh: %.1fx ideal", r.TimeNS/ideal)
	}
}

func TestMoreBandwidthNeverSlower(t *testing.T) {
	base := hw.Edge()
	fast := hw.Edge()
	fast.GBufBandwidth *= 4
	req := convReq(14*14, 512, 512)
	a := New(base).Evaluate(req)
	b := New(fast).Evaluate(req)
	if b.TimeNS > a.TimeNS {
		t.Fatalf("more GBUF bandwidth made the tile slower: %g > %g", b.TimeNS, a.TimeNS)
	}
}

func TestFactorPairs(t *testing.T) {
	got := factorPairs(8)
	want := [][2]int{{1, 8}, {2, 4}, {4, 2}, {8, 1}}
	if len(got) != len(want) {
		t.Fatalf("factorPairs(8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("factorPairs(8) = %v", got)
		}
	}
}

func TestPadHelpers(t *testing.T) {
	if pad(32, 32) != 1 || pad(33, 32) >= 2 || pad(1, 32) != 32 {
		t.Fatalf("pad: %g %g %g", pad(32, 32), pad(33, 32), pad(1, 32))
	}
	if pad(0, 32) != 1 || pad64(0, 4) != 1 {
		t.Fatal("pad of zero must be neutral")
	}
	if pad64(10, 4) != 1.2 {
		t.Fatalf("pad64(10,4) = %g", pad64(10, 4))
	}
}

func TestEvaluatePropertyMonotoneInOps(t *testing.T) {
	s := New(hw.Edge())
	f := func(scaleRaw uint8) bool {
		scale := int64(scaleRaw%7) + 1
		small := s.Evaluate(convReq(28*28, 64, 64))
		big := s.Evaluate(convReq(28*28*scale, 64, 64))
		return big.TimeNS >= small.TimeNS && big.EnergyPJ >= small.EnergyPJ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
