package core

import (
	"testing"

	"soma/internal/graph"
)

// decodeNet builds a decode-style layer: tiny activations, a per-sample
// KV-cache operand modelled as WeightsPerSample.
func decodeNet(t *testing.T, batch int) (*graph.Graph, graph.LayerID) {
	t.Helper()
	g := graph.New("dec", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: graph.Shape{N: batch, C: 64, H: 1, W: 1}})
	q := g.Add(graph.Layer{Name: "q", Kind: graph.GEMM, Deps: []graph.Dep{{Producer: in}},
		Out: graph.Shape{N: batch, C: 64, H: 1, W: 1}, WeightBytes: 64 * 64, Ops: int64(batch) * 2 * 64 * 64})
	qk := g.Add(graph.Layer{Name: "qk", Kind: graph.MatMul,
		Deps:        []graph.Dep{{Producer: q}},
		Out:         graph.Shape{N: batch, C: 128, H: 1, W: 1},
		WeightBytes: int64(batch) * 128 * 64, WeightsPerSample: true,
		Ops: int64(batch) * 2 * 128 * 64})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, qk
}

func TestPerSampleWeightsSplitWithBatchTiling(t *testing.T) {
	g, qk := decodeNet(t, 4)
	// Put qk in its own FLG with T=4: the batch axis splits, and the KV
	// operand must split with it (4 loads of 1/4 size each).
	e := &Encoding{
		Order:  g.TopoOrder(),
		FLCs:   []int{1},
		IsDRAM: []bool{true},
		Tile:   []int{1, 4},
	}
	s := mustParse(t, g, e)
	var loads []Tensor
	for _, ts := range s.Tensors {
		if ts.Kind == LoadWeight && ts.Layer == qk {
			loads = append(loads, ts)
		}
	}
	if len(loads) != 4 {
		t.Fatalf("per-sample weight loads = %d, want 4", len(loads))
	}
	total := g.Layer(qk).WeightBytes
	for _, l := range loads {
		if l.Bytes != total/4 {
			t.Fatalf("per-tile cache slice = %d, want %d", l.Bytes, total/4)
		}
		// Streamed per tile: released right after the consuming tile.
		if l.Release != l.FirstUse+1 {
			t.Fatalf("per-sample load lifetime [%d,%d) should be one tile",
				l.FirstUse, l.Release)
		}
	}
}

func TestPerSampleWeightsSingleTile(t *testing.T) {
	g, qk := decodeNet(t, 4)
	e := &Encoding{
		Order:  g.TopoOrder(),
		FLCs:   []int{1},
		IsDRAM: []bool{true},
		Tile:   []int{1, 1},
	}
	s := mustParse(t, g, e)
	count := 0
	for _, ts := range s.Tensors {
		if ts.Kind == LoadWeight && ts.Layer == qk {
			count++
			if ts.Bytes != g.Layer(qk).WeightBytes {
				t.Fatalf("single-tile cache bytes = %d", ts.Bytes)
			}
		}
	}
	if count != 1 {
		t.Fatalf("loads = %d, want 1", count)
	}
}

func TestPerSampleTileRequestScalesWeights(t *testing.T) {
	g, _ := decodeNet(t, 4)
	e := &Encoding{
		Order:  g.TopoOrder(),
		FLCs:   []int{1},
		IsDRAM: []bool{true},
		Tile:   []int{1, 4},
	}
	s := mustParse(t, g, e)
	for i := range s.Tiles {
		if g.Layer(s.Tiles[i].Layer).Name != "qk" {
			continue
		}
		r := s.TileRequest(i)
		want := g.Layer(s.Tiles[i].Layer).WeightBytes / 4
		if r.WeightBytes != want {
			t.Fatalf("tile weight bytes = %d, want %d", r.WeightBytes, want)
		}
	}
}

func TestPerSampleWeightsReduceBufferPeak(t *testing.T) {
	g, _ := decodeNet(t, 8)
	coarse := mustParse(t, g, &Encoding{Order: g.TopoOrder(), FLCs: []int{1},
		IsDRAM: []bool{true}, Tile: []int{1, 1}})
	fine := mustParse(t, g, &Encoding{Order: g.TopoOrder(), FLCs: []int{1},
		IsDRAM: []bool{true}, Tile: []int{1, 8}})
	if fine.PeakBuffer() >= coarse.PeakBuffer() {
		t.Fatalf("batch tiling should shrink the cache footprint: %d >= %d",
			fine.PeakBuffer(), coarse.PeakBuffer())
	}
}
