package core

import (
	"testing"

	"soma/internal/graph"
)

func keyTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("keys", 1)
	sh := graph.Shape{N: 1, C: 8, H: 16, W: 16}
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh})
	a := g.Add(graph.Layer{Name: "a", Kind: graph.Conv, Deps: []graph.Dep{{Producer: in}},
		Out: sh, K: graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 8 * 8 * 9, Ops: 2 * 8 * 8 * 9 * 16 * 16})
	b := g.Add(graph.Layer{Name: "b", Kind: graph.Conv, Deps: []graph.Dep{{Producer: a}},
		Out: sh, K: graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 8 * 8 * 9, Ops: 2 * 8 * 8 * 9 * 16 * 16})
	g.Add(graph.Layer{Name: "c", Kind: graph.Conv, Deps: []graph.Dep{{Producer: b}},
		Out: sh, K: graph.Kernel{KH: 1, KW: 1, SH: 1, SW: 1},
		WeightBytes: 8 * 8, Ops: 2 * 8 * 8 * 16 * 16})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEncodingCanonicalKeyDistinguishesAttributes(t *testing.T) {
	g := keyTestGraph(t)
	base := DefaultEncoding(g, 1)
	key := base.CanonicalKey()

	if clone := base.Clone(); clone.CanonicalKey() != key {
		t.Fatal("clone must share the canonical key")
	}

	tiled := base.Clone()
	tiled.Tile[0] *= 2
	if tiled.CanonicalKey() == key {
		t.Fatal("tiling change must change the key")
	}

	cut := base.Clone()
	if !cut.SetDRAM(0, false) {
		t.Fatal("SetDRAM failed")
	}
	if cut.CanonicalKey() == key {
		t.Fatal("DRAM-cut change must change the key")
	}

	merged := base.Clone()
	if !merged.RemoveFLC(0, 1) {
		t.Fatal("RemoveFLC failed")
	}
	if merged.CanonicalKey() == key {
		t.Fatal("FLC change must change the key")
	}
}

func TestScheduleCanonicalKeyTracksDLSA(t *testing.T) {
	g := keyTestGraph(t)
	s, err := Parse(g, DefaultEncoding(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	key := s.CanonicalKey()
	if s.Clone().CanonicalKey() != key {
		t.Fatal("clone must share the canonical key")
	}

	moved := s.Clone()
	if !moved.MoveTensor(0, len(moved.Order)-1) {
		t.Fatal("MoveTensor failed")
	}
	if moved.CanonicalKey() == key {
		t.Fatal("tensor-order change must change the key")
	}

	// Jitter the first adjustable Living Duration and expect a new key.
	jittered := s.Clone()
	changed := false
	for i := range jittered.Tensors {
		tn := &jittered.Tensors[i]
		if tn.Kind.IsLoad() && tn.Start > 0 && jittered.SetStart(i, tn.Start-1) {
			changed = true
			break
		}
		if !tn.Kind.IsLoad() && jittered.SetEnd(i, tn.End+1) {
			changed = true
			break
		}
	}
	if changed && jittered.CanonicalKey() == key {
		t.Fatal("living-duration change must change the key")
	}

	// Keys embed the encoding: the same DLSA shape under another encoding
	// must not collide.
	other, err := Parse(g, DefaultEncoding(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	if other.CanonicalKey() == key {
		t.Fatal("different encodings must produce different schedule keys")
	}
}
