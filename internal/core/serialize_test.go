package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSchemeRoundTrip(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	// Perturb the DLSA so the round trip is non-trivial.
	for i := range s.Tensors {
		if s.Tensors[i].Kind.IsLoad() {
			s.SetStart(s.Tensors[i].ID, 0)
		} else {
			s.SetEnd(s.Tensors[i].ID, s.NumTiles())
		}
	}
	var buf bytes.Buffer
	if err := s.WriteScheme(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"computing_order", "flc_set", "dram_tensor_order", "tiling_numbers"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("scheme missing %q", want)
		}
	}
	back, err := ReadScheme(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTiles() != s.NumTiles() || len(back.Tensors) != len(s.Tensors) {
		t.Fatal("structure mismatch after round trip")
	}
	a, b := s.ExtractDLSA(), back.ExtractDLSA()
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatal("tensor order not restored")
		}
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] || a.End[i] != b.End[i] {
			t.Fatalf("living duration %d not restored: (%d,%d) vs (%d,%d)",
				i, a.Start[i], a.End[i], b.Start[i], b.End[i])
		}
	}
	if !back.OrderValid() || !back.LivingValid() {
		t.Fatal("round-tripped schedule invalid")
	}
}

func TestReadSchemeRejects(t *testing.T) {
	g, _ := fig4(t)
	if _, err := ReadScheme(g, strings.NewReader("{bad")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadScheme(g, strings.NewReader(`{"version":9}`)); err == nil {
		t.Fatal("future version accepted")
	}
	// A scheme from a different graph shape fails to re-instantiate.
	if _, err := ReadScheme(g, strings.NewReader(
		`{"version":1,"computing_order":[1],"tiling_numbers":[1]}`)); err == nil {
		t.Fatal("incomplete order accepted")
	}
}
