package core

import (
	"encoding/json"
	"fmt"
	"io"

	"soma/internal/graph"
)

// SchemeJSON is the serialized "detailed scheduling scheme" the framework
// outputs (paper Fig. 5): the complete encoding - all six attributes - in a
// stable, human-readable form that external tools (or the instruction
// generator of another accelerator) can consume.
type SchemeJSON struct {
	Version int    `json:"version"`
	Graph   string `json:"graph"`
	// LFA attributes.
	Order   []int  `json:"computing_order"`
	FLCs    []int  `json:"flc_set"`
	DRAMCut []bool `json:"dram_cut"`
	Tiling  []int  `json:"tiling_numbers"`
	// DLSA attributes.
	TensorOrder []int        `json:"dram_tensor_order"`
	Tensors     []TensorJSON `json:"tensors"`
}

// TensorJSON is one DRAM tensor with its Living Duration.
type TensorJSON struct {
	ID    int    `json:"id"`
	Kind  string `json:"kind"`
	Layer string `json:"layer"`
	Bytes int64  `json:"bytes"`
	Start int    `json:"start"`
	End   int    `json:"end"`
}

// WriteScheme serializes the schedule's complete encoding.
func (s *Schedule) WriteScheme(w io.Writer) error {
	sj := SchemeJSON{
		Version: 1,
		Graph:   s.G.Name,
		FLCs:    append([]int{}, s.Enc.FLCs...),
		DRAMCut: append([]bool{}, s.Enc.IsDRAM...),
		Tiling:  append([]int{}, s.Enc.Tile...),
	}
	for _, id := range s.Enc.Order {
		sj.Order = append(sj.Order, int(id))
	}
	sj.TensorOrder = append(sj.TensorOrder, s.Order...)
	for i := range s.Tensors {
		t := &s.Tensors[i]
		end := t.End
		if t.Kind.IsLoad() {
			end = t.Release
		}
		sj.Tensors = append(sj.Tensors, TensorJSON{
			ID: t.ID, Kind: t.Kind.String(),
			Layer: s.G.Layer(t.Layer).Name, Bytes: t.Bytes,
			Start: t.Start, End: end,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sj)
}

// ReadScheme parses a serialized scheme and re-instantiates it against the
// given graph: the encoding is parsed from scratch and the stored DLSA is
// applied, so the result is guaranteed internally consistent (or an error).
func ReadScheme(g *graph.Graph, r io.Reader) (*Schedule, error) {
	var sj SchemeJSON
	if err := json.NewDecoder(r).Decode(&sj); err != nil {
		return nil, err
	}
	if sj.Version != 1 {
		return nil, fmt.Errorf("core: unsupported scheme version %d", sj.Version)
	}
	e := &Encoding{
		FLCs:   sj.FLCs,
		IsDRAM: sj.DRAMCut,
		Tile:   sj.Tiling,
	}
	for _, id := range sj.Order {
		e.Order = append(e.Order, graph.LayerID(id))
	}
	s, err := Parse(g, e)
	if err != nil {
		return nil, err
	}
	if len(sj.Tensors) != len(s.Tensors) {
		return nil, fmt.Errorf("core: scheme has %d tensors, reparse produced %d",
			len(sj.Tensors), len(s.Tensors))
	}
	d := DLSA{Order: sj.TensorOrder,
		Start: make([]int, len(s.Tensors)), End: make([]int, len(s.Tensors))}
	for i := range s.Tensors {
		d.Start[i] = s.Tensors[i].Start
		d.End[i] = s.Tensors[i].End
	}
	for _, tj := range sj.Tensors {
		if tj.ID < 0 || tj.ID >= len(s.Tensors) {
			return nil, fmt.Errorf("core: scheme tensor id %d out of range", tj.ID)
		}
		if s.Tensors[tj.ID].Kind.IsLoad() {
			d.Start[tj.ID] = tj.Start
		} else {
			d.End[tj.ID] = tj.End
		}
	}
	if err := s.ApplyDLSA(d); err != nil {
		return nil, err
	}
	return s, nil
}
