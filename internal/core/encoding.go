// Package core implements the paper's primary contribution: the
// Tensor-centric Notation (Sec. IV) and its parsing method. An Encoding
// captures the Layer-Fusion-related Attributes - Computing Order,
// Fine-grained Layer-fusion Cut (FLC) set, per-FLG Tiling Number and DRAM
// Cut set - and parsing lowers it to a Schedule: the global computing-tile
// sequence, the set of DRAM tensors with their adjustable Living Durations
// (the DRAM-Load-and-Store-related Attributes), and every on-chip buffer
// interval. Together these span the DRAM Communication Scheduling Space the
// SoMa framework explores.
package core

import (
	"fmt"
	"sort"

	"soma/internal/graph"
)

// Encoding is one point of the DRAM Communication Scheduling Space, holding
// the four LFA attributes. The DLSA attributes live on the parsed Schedule
// (see dlsa.go) because their domain - the DRAM tensor set - only exists
// after LFA parsing.
type Encoding struct {
	// Order is the Computing Order: a dependency-respecting permutation
	// of the graph's compute layers.
	Order []graph.LayerID
	// FLCs are the Fine-grained Layer-fusion Cut positions, strictly
	// increasing, each in (0, len(Order)). A cut at position p separates
	// Order[p-1] from Order[p]. Positions 0 and len(Order) are implicit
	// boundaries.
	FLCs []int
	// IsDRAM marks which FLCs are also DRAM Cuts (the DRAM Cut Set is a
	// subset of the FLC Set). Parallel to FLCs.
	IsDRAM []bool
	// Tile is the Tiling Number of each FLG; len(Tile) == len(FLCs)+1.
	Tile []int
}

// DefaultEncoding returns the LFA exploration stage's initial solution: each
// layer forms its own FLG and LG (every boundary is a DRAM cut) and every
// tiling number is the requested minimum granularity.
func DefaultEncoding(g *graph.Graph, minTile int) *Encoding {
	if minTile < 1 {
		minTile = 1
	}
	order := g.TopoOrder()
	n := len(order)
	e := &Encoding{Order: order}
	for p := 1; p < n; p++ {
		e.FLCs = append(e.FLCs, p)
		e.IsDRAM = append(e.IsDRAM, true)
	}
	e.Tile = make([]int, n)
	for i := range e.Tile {
		e.Tile[i] = minTile
	}
	return e
}

// Clone deep-copies the encoding (SA operators mutate copies).
func (e *Encoding) Clone() *Encoding {
	return &Encoding{
		Order:  append([]graph.LayerID(nil), e.Order...),
		FLCs:   append([]int(nil), e.FLCs...),
		IsDRAM: append([]bool(nil), e.IsDRAM...),
		Tile:   append([]int(nil), e.Tile...),
	}
}

// NumFLGs returns the number of fine-grained layer-fusion groups.
func (e *Encoding) NumFLGs() int { return len(e.FLCs) + 1 }

// NumLGs returns the number of layer-fusion groups (DRAM-cut segments).
func (e *Encoding) NumLGs() int {
	n := 1
	for _, d := range e.IsDRAM {
		if d {
			n++
		}
	}
	return n
}

// FLGBounds returns the half-open position range [lo,hi) of FLG i.
func (e *Encoding) FLGBounds(i int) (lo, hi int) {
	lo = 0
	if i > 0 {
		lo = e.FLCs[i-1]
	}
	hi = len(e.Order)
	if i < len(e.FLCs) {
		hi = e.FLCs[i]
	}
	return lo, hi
}

// FLGLayers returns the layer slice of FLG i (a view into Order).
func (e *Encoding) FLGLayers(i int) []graph.LayerID {
	lo, hi := e.FLGBounds(i)
	return e.Order[lo:hi]
}

// FLGOfPos returns the FLG index containing order position p.
func (e *Encoding) FLGOfPos(p int) int {
	return sort.SearchInts(e.FLCs, p+1)
}

// LGOfPos returns the LG index containing order position p.
func (e *Encoding) LGOfPos(p int) int {
	lg := 0
	for i, c := range e.FLCs {
		if c <= p && e.IsDRAM[i] {
			lg++
		}
	}
	return lg
}

// DRAMCutPositions returns the positions of the DRAM cuts in order.
func (e *Encoding) DRAMCutPositions() []int {
	var out []int
	for i, c := range e.FLCs {
		if e.IsDRAM[i] {
			out = append(out, c)
		}
	}
	return out
}

// Check verifies the structural legality of the encoding against a graph:
// the order is a valid Computing Order, cuts are sorted, in range and
// consistent, and tiling numbers are positive. Fusion-semantic legality
// (global deps inside multi-tile FLGs, buffer capacity) is established by
// Parse and the evaluator.
func (e *Encoding) Check(g *graph.Graph) error {
	if !g.IsValidOrder(e.Order) {
		return fmt.Errorf("core: invalid computing order")
	}
	if len(e.IsDRAM) != len(e.FLCs) {
		return fmt.Errorf("core: IsDRAM length %d != FLCs length %d", len(e.IsDRAM), len(e.FLCs))
	}
	if len(e.Tile) != len(e.FLCs)+1 {
		return fmt.Errorf("core: Tile length %d != #FLGs %d", len(e.Tile), len(e.FLCs)+1)
	}
	prev := 0
	for _, c := range e.FLCs {
		if c <= prev || c >= len(e.Order) {
			return fmt.Errorf("core: cut position %d out of order (prev %d, n %d)", c, prev, len(e.Order))
		}
		prev = c
	}
	for i, t := range e.Tile {
		if t < 1 {
			return fmt.Errorf("core: FLG %d has tiling number %d", i, t)
		}
	}
	return nil
}

// AddFLC inserts a fine-grained cut at position p (not a DRAM cut); the two
// halves inherit the original FLG's tiling number, per the paper's operator
// definition. No-op if a cut already exists at p or p is out of range.
func (e *Encoding) AddFLC(p int) bool {
	if p <= 0 || p >= len(e.Order) {
		return false
	}
	i := sort.SearchInts(e.FLCs, p)
	if i < len(e.FLCs) && e.FLCs[i] == p {
		return false
	}
	flg := e.FLGOfPos(p) // FLG being split; p is strictly inside it
	e.FLCs = append(e.FLCs, 0)
	copy(e.FLCs[i+1:], e.FLCs[i:])
	e.FLCs[i] = p
	e.IsDRAM = append(e.IsDRAM, false)
	copy(e.IsDRAM[i+1:], e.IsDRAM[i:])
	e.IsDRAM[i] = false
	t := e.Tile[flg]
	e.Tile = append(e.Tile, 0)
	copy(e.Tile[flg+1:], e.Tile[flg:])
	e.Tile[flg] = t
	return true
}

// RemoveFLC deletes the i-th cut, merging the adjacent FLGs; mergedTile
// selects the surviving tiling number (the caller inherits probabilistically
// by layer-count ratio, per the paper). Removing a DRAM cut also merges LGs.
func (e *Encoding) RemoveFLC(i int, mergedTile int) bool {
	if i < 0 || i >= len(e.FLCs) {
		return false
	}
	e.FLCs = append(e.FLCs[:i], e.FLCs[i+1:]...)
	e.IsDRAM = append(e.IsDRAM[:i], e.IsDRAM[i+1:]...)
	if mergedTile < 1 {
		mergedTile = 1
	}
	e.Tile[i] = mergedTile
	e.Tile = append(e.Tile[:i+1], e.Tile[i+2:]...)
	return true
}

// SetDRAM marks or unmarks the i-th FLC as a DRAM cut.
func (e *Encoding) SetDRAM(i int, dram bool) bool {
	if i < 0 || i >= len(e.FLCs) {
		return false
	}
	e.IsDRAM[i] = dram
	return true
}

// MoveLayer relocates the layer at position from to position to, keeping
// segment tilings attached to positions. Returns false (unchanged) if the
// resulting order would violate dependencies.
func (e *Encoding) MoveLayer(g *graph.Graph, from, to int) bool {
	n := len(e.Order)
	if from < 0 || from >= n || to < 0 || to >= n || from == to {
		return false
	}
	cand := make([]graph.LayerID, 0, n)
	cand = append(cand, e.Order[:from]...)
	cand = append(cand, e.Order[from+1:]...)
	rest := append([]graph.LayerID(nil), cand[to:]...)
	cand = append(append(cand[:to:to], e.Order[from]), rest...)
	if !g.IsValidOrder(cand) {
		return false
	}
	e.Order = cand
	return true
}

// String renders the encoding in the paper's bracket notation, e.g.
// [A | B | C E D]{dram:2} with tiling numbers.
func (e *Encoding) String() string {
	s := "["
	for i := 0; i < e.NumFLGs(); i++ {
		if i > 0 {
			idx := i - 1
			if e.IsDRAM[idx] {
				s += " || "
			} else {
				s += " | "
			}
		}
		lo, hi := e.FLGBounds(i)
		for p := lo; p < hi; p++ {
			if p > lo {
				s += ","
			}
			s += fmt.Sprint(int(e.Order[p]))
		}
		s += fmt.Sprintf(":%d", e.Tile[i])
	}
	return s + "]"
}
