package core

import (
	"fmt"

	"soma/internal/coresched"
	"soma/internal/graph"
	"soma/internal/tiling"
)

// TensorKind classifies a DRAM tensor.
type TensorKind int

const (
	// LoadWeight streams a layer's parameters (or decode KV cache) from
	// DRAM into the GBUF once per execution.
	LoadWeight TensorKind = iota
	// LoadIfmap streams a feature-map slab a consuming tile needs from
	// DRAM (cross-LG dependency or network input).
	LoadIfmap
	// StoreOfmap writes a produced feature-map slab back to DRAM
	// (cross-LG dependency or network output).
	StoreOfmap
)

func (k TensorKind) String() string {
	switch k {
	case LoadWeight:
		return "W"
	case LoadIfmap:
		return "I"
	case StoreOfmap:
		return "O"
	default:
		return "?"
	}
}

// IsLoad reports whether the tensor moves DRAM -> GBUF.
func (k TensorKind) IsLoad() bool { return k != StoreOfmap }

// Tile is one entry of the global computing sequence.
type Tile struct {
	// Seq is the position in the compute pipeline (dense, 0-based).
	Seq int
	// Layer is the layer this tile evaluates.
	Layer graph.LayerID
	// FLG / LG are the fusion-group indices the tile belongs to.
	FLG, LG int
	// Index is the tile index within the FLG (the i of "A_i").
	Index int
	// Region is the computed output slab including recomputed halo rows;
	// Own is the disjoint contribution to the aggregate ofmap.
	Region, Own tiling.Region
}

// Tensor is one DRAM tensor with its Living Duration. Start (loads) and End
// (stores) are the DLSA-adjustable fields; everything else is fixed by the
// LFA parse.
type Tensor struct {
	ID   int
	Kind TensorKind
	// Layer is the consumer for loads and the producer for stores.
	Layer graph.LayerID
	// Source is the producing layer of an ifmap load (possibly an Input
	// pseudo-layer); None otherwise.
	Source graph.LayerID
	// Bytes is the transfer size.
	Bytes int64

	// FirstUse is the seq of the first consuming tile (loads). The load
	// must complete before that tile starts, and Start may range over
	// [0, FirstUse].
	FirstUse int
	// Release is the fixed buffer-release point of a load (exclusive
	// seq): after the last consuming tile (ifmaps) or after the FLG's
	// last tile (weights).
	Release int
	// Producer is the seq of the tile generating a store; -1 for loads.
	Producer int
	// OnChipHi extends a store's buffer interval when the same ofmap
	// slab is also consumed on-chip (exclusive seq; 0 if none).
	OnChipHi int

	// Start is the Living Duration start of a load: the transfer may
	// begin once every tile with seq < Start has finished.
	Start int
	// End is the Living Duration end of a store: tile End cannot start
	// until the transfer finished. End == nTiles means "by the end of
	// the execution".
	End int

	// AfterStores lists store-tensor IDs that must complete before this
	// load may begin (the producer's data must reach DRAM first).
	AfterStores []int
}

// Interval is an on-chip buffer occupation over tile seqs [Lo, Hi).
type Interval struct {
	Lo, Hi int
	Bytes  int64
}

// Schedule is a fully parsed encoding: the compute sequence, the DRAM tensor
// set in DRAM Tensor Order, and all buffer bookkeeping. It is the object the
// DLSA exploration stage mutates and the evaluator consumes.
type Schedule struct {
	G   *graph.Graph
	Enc *Encoding

	Tiles []Tile
	// Tensors is indexed by Tensor.ID.
	Tensors []Tensor
	// Order is the DRAM Tensor Order: a permutation of tensor IDs.
	Order []int
	// OnChip are the static on-chip fmap intervals (same-FLG tile slabs
	// and cross-FLG aggregates).
	OnChip []Interval

	// LayerTiles[layer] lists the tile seqs of each layer, in order.
	LayerTiles map[graph.LayerID][]int
}

// NumTiles returns the compute-sequence length.
func (s *Schedule) NumTiles() int { return len(s.Tiles) }

// Clone deep-copies the schedule (tiles and intervals are immutable between
// DLSA moves, so they are shared; tensors and order are copied).
func (s *Schedule) Clone() *Schedule {
	c := *s
	c.Tensors = append([]Tensor(nil), s.Tensors...)
	for i := range c.Tensors {
		c.Tensors[i].AfterStores = s.Tensors[i].AfterStores // immutable
	}
	c.Order = append([]int(nil), s.Order...)
	return &c
}

// Parse lowers an encoding into a Schedule, or fails when the encoding is
// illegal (bad order/cuts, or a global dependency inside a multi-tile FLG).
// The resulting schedule carries the classical double-buffer DLSA; callers
// explore alternatives via the DLSA methods.
func Parse(g *graph.Graph, e *Encoding) (*Schedule, error) {
	if err := e.Check(g); err != nil {
		return nil, err
	}
	s := &Schedule{G: g, Enc: e, LayerTiles: make(map[graph.LayerID][]int)}

	// Positions and group indices per layer.
	posOf := make(map[graph.LayerID]int, len(e.Order))
	for p, id := range e.Order {
		posOf[id] = p
	}
	flgOf := make(map[graph.LayerID]int, len(e.Order))
	lgOf := make(map[graph.LayerID]int, len(e.Order))

	// Tiling plans and the global tile sequence (FLGs in order, each
	// enumerated tile-major).
	plans := make([]*tiling.Plan, e.NumFLGs())
	flgLast := make([]int, e.NumFLGs()) // seq of each FLG's last tile
	type tileKey struct {
		layer graph.LayerID
		idx   int
	}
	seqOf := make(map[tileKey]int)
	for f := 0; f < e.NumFLGs(); f++ {
		layers := e.FLGLayers(f)
		plan, err := tiling.New(g, layers, e.Tile[f])
		if err != nil {
			return nil, fmt.Errorf("core: FLG %d: %w", f, err)
		}
		plans[f] = plan
		lg := e.LGOfPos(posOf[layers[0]])
		for t := 0; t < plan.Tiles; t++ {
			for li, id := range layers {
				seq := len(s.Tiles)
				s.Tiles = append(s.Tiles, Tile{
					Seq: seq, Layer: id, FLG: f, LG: lg, Index: t,
					Region: plan.Computed[li][t],
					Own:    plan.Owned[li][t],
				})
				s.LayerTiles[id] = append(s.LayerTiles[id], seq)
				seqOf[tileKey{id, t}] = seq
				flgOf[id], lgOf[id] = f, lg
			}
		}
		flgLast[f] = len(s.Tiles) - 1
	}
	n := len(s.Tiles)
	eb := int64(g.ElemBytes)

	// Stores first (loads reference them through AfterStores). A layer's
	// ofmap is stored once per tile if any dependency crosses an LG
	// boundary or the layer is a network output.
	storeIDs := make(map[graph.LayerID][]int)
	for _, id := range e.Order {
		needStore := g.IsOutput(id)
		for _, cid := range g.Consumers(id) {
			if lgOf[cid] != lgOf[id] {
				needStore = true
			}
		}
		if !needStore {
			continue
		}
		// On-chip consumers extend the buffer life of the stored slab.
		onChipHi := 0
		for _, cid := range g.Consumers(id) {
			if lgOf[cid] == lgOf[id] {
				ct := s.LayerTiles[cid]
				if hi := ct[len(ct)-1] + 1; hi > onChipHi {
					onChipHi = hi
				}
			}
		}
		for _, seq := range s.LayerTiles[id] {
			tl := &s.Tiles[seq]
			bytes := tl.Own.Elems(g.Layer(id).Out.C) * eb
			if bytes == 0 {
				continue
			}
			t := Tensor{
				ID: len(s.Tensors), Kind: StoreOfmap, Layer: id,
				Source: graph.None, Bytes: bytes,
				FirstUse: seq, Producer: seq, OnChipHi: onChipHi,
				Start: seq, End: n,
			}
			s.Tensors = append(s.Tensors, t)
			storeIDs[id] = append(storeIDs[id], t.ID)
		}
	}

	// Weight loads: one resident tensor per weighted layer, released at
	// FLG completion. Per-sample weight state (decode KV caches) instead
	// streams per tile, scaled to the batch slice the tile covers.
	for _, id := range e.Order {
		l := g.Layer(id)
		if l.WeightBytes == 0 {
			continue
		}
		if l.WeightsPerSample {
			for _, seq := range s.LayerTiles[id] {
				r := s.Tiles[seq].Region
				bytes := l.WeightBytes * int64(r.N1-r.N0) / int64(l.Out.N)
				if bytes == 0 {
					continue
				}
				s.Tensors = append(s.Tensors, Tensor{
					ID: len(s.Tensors), Kind: LoadWeight, Layer: id,
					Source: graph.None, Bytes: bytes,
					FirstUse: seq, Release: seq + 1,
					Producer: -1, Start: seq,
				})
			}
			continue
		}
		first := s.LayerTiles[id][0]
		s.Tensors = append(s.Tensors, Tensor{
			ID: len(s.Tensors), Kind: LoadWeight, Layer: id,
			Source: graph.None, Bytes: l.WeightBytes,
			FirstUse: first, Release: flgLast[flgOf[id]] + 1,
			Producer: -1, Start: first,
		})
	}

	// Ifmap loads and on-chip intervals, per dependency edge.
	for _, id := range e.Order {
		l := g.Layer(id)
		myTiles := s.LayerTiles[id]
		for _, d := range l.Deps {
			p := g.Layer(d.Producer)
			fromDRAM := p.Kind == graph.Input || lgOf[d.Producer] != lgOf[id]
			switch {
			case fromDRAM && d.Global:
				// A single-tile consumer keeps the whole operand
				// resident; a tiled consumer streams its batch
				// rows' full spatial extent per tile (the only way
				// attention over a large context fits the buffer -
				// at the price of re-reading it under spatial
				// splits, a trade-off the SA owns).
				full := p.Out.Bytes(g.ElemBytes)
				if len(myTiles) == 1 {
					s.Tensors = append(s.Tensors, Tensor{
						ID: len(s.Tensors), Kind: LoadIfmap, Layer: id,
						Source: d.Producer, Bytes: full,
						FirstUse: myTiles[0], Release: myTiles[len(myTiles)-1] + 1,
						Producer: -1, Start: myTiles[0],
						AfterStores: storeIDs[d.Producer],
					})
					continue
				}
				for _, seq := range myTiles {
					r := s.Tiles[seq].Region
					bytes := full * int64(r.N1-r.N0) / int64(l.Out.N)
					if bytes == 0 {
						continue
					}
					s.Tensors = append(s.Tensors, Tensor{
						ID: len(s.Tensors), Kind: LoadIfmap, Layer: id,
						Source: d.Producer, Bytes: bytes,
						FirstUse: seq, Release: seq + 1,
						Producer: -1, Start: seq,
						AfterStores: storeIDs[d.Producer],
					})
				}
			case fromDRAM:
				// Per-tile slab loads (with halo duplication).
				for _, seq := range myTiles {
					r := tiling.InputRegion(l, d.Producer, g, s.Tiles[seq].Region)
					bytes := r.Elems(p.Out.C) * eb
					if bytes == 0 {
						continue
					}
					s.Tensors = append(s.Tensors, Tensor{
						ID: len(s.Tensors), Kind: LoadIfmap, Layer: id,
						Source: d.Producer, Bytes: bytes,
						FirstUse: seq, Release: seq + 1,
						Producer: -1, Start: seq,
						AfterStores: storeIDs[d.Producer],
					})
				}
			case flgOf[d.Producer] == flgOf[id]:
				// Same FLG: the producer's computed slab of tile t
				// lives until this consumer's tile t finishes.
				for t, pseq := range s.LayerTiles[d.Producer] {
					cseq := seqOf[tileKey{id, t}]
					bytes := s.Tiles[pseq].Region.Elems(p.Out.C) * eb
					s.OnChip = append(s.OnChip, Interval{Lo: pseq, Hi: cseq + 1, Bytes: bytes})
				}
			default:
				// Same LG, earlier FLG: the producer's owned slabs
				// aggregate on-chip until this consumer finishes.
				// Emitted once per producer below to avoid double
				// counting across multiple consumers.
			}
		}
	}

	// Cross-FLG same-LG aggregates: one interval per producer tile,
	// spanning to the last cross-FLG consumer. Skips producers whose data
	// already persists through a store's OnChipHi extension.
	for _, id := range e.Order {
		if len(storeIDs[id]) > 0 {
			continue // store intervals already cover the slabs
		}
		hi := 0
		for _, cid := range g.Consumers(id) {
			if lgOf[cid] == lgOf[id] && flgOf[cid] != flgOf[id] {
				ct := s.LayerTiles[cid]
				if h := ct[len(ct)-1] + 1; h > hi {
					hi = h
				}
			}
		}
		if hi == 0 {
			continue
		}
		for _, pseq := range s.LayerTiles[id] {
			bytes := s.Tiles[pseq].Own.Elems(g.Layer(id).Out.C) * eb
			if bytes > 0 {
				s.OnChip = append(s.OnChip, Interval{Lo: pseq, Hi: hi, Bytes: bytes})
			}
		}
	}

	s.Order = make([]int, len(s.Tensors))
	for i := range s.Order {
		s.Order[i] = i
	}
	s.ApplyDoubleBuffer()
	return s, nil
}

// TileRequest builds the core-array scheduler request of tile i.
func (s *Schedule) TileRequest(i int) coresched.Request {
	tl := &s.Tiles[i]
	l := s.G.Layer(tl.Layer)
	eb := int64(s.G.ElemBytes)
	regionElems := tl.Region.Elems(l.Out.C)
	fullElems := l.Out.Elems()
	ops := int64(float64(l.Ops) * float64(regionElems) / float64(fullElems))

	var inBytes int64
	inC := 1
	for di, d := range l.Deps {
		p := s.G.Layer(d.Producer)
		if di == 0 {
			inC = p.Out.C
		}
		if d.Global {
			inBytes += p.Out.Bytes(s.G.ElemBytes) *
				int64(tl.Region.N1-tl.Region.N0) / int64(l.Out.N)
			continue
		}
		r := tiling.InputRegion(l, d.Producer, s.G, tl.Region)
		inBytes += r.Elems(p.Out.C) * eb
	}
	wBytes := l.WeightBytes
	if l.WeightsPerSample {
		wBytes = wBytes * int64(tl.Region.N1-tl.Region.N0) / int64(l.Out.N)
	}
	return coresched.Request{
		Kind:     l.Kind,
		OutElems: tl.Region.Elems(1),
		OutC:     l.Out.C,
		InC:      inC,
		KH:       l.K.KH, KW: l.K.KW,
		InBytes:     inBytes,
		OutBytes:    regionElems * eb,
		WeightBytes: wBytes,
		Ops:         ops,
		ElemBytes:   s.G.ElemBytes,
	}
}

// BufferUsage returns the buffer occupancy at each tile seq, combining the
// static on-chip intervals with the Living Durations of the DRAM tensors.
func (s *Schedule) BufferUsage() []int64 {
	n := s.NumTiles()
	diff := make([]int64, n+1)
	addIv := func(lo, hi int, b int64) {
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		if lo >= hi || b == 0 {
			return
		}
		diff[lo] += b
		diff[hi] -= b
	}
	for _, iv := range s.OnChip {
		addIv(iv.Lo, iv.Hi, iv.Bytes)
	}
	for i := range s.Tensors {
		t := &s.Tensors[i]
		if t.Kind.IsLoad() {
			addIv(t.Start, t.Release, t.Bytes)
		} else {
			hi := t.End
			if t.OnChipHi > hi {
				hi = t.OnChipHi
			}
			addIv(t.Producer, hi, t.Bytes)
		}
	}
	usage := make([]int64, n)
	var acc int64
	for i := 0; i < n; i++ {
		acc += diff[i]
		usage[i] = acc
	}
	return usage
}

// PeakBuffer returns the maximum buffer occupancy over the execution.
func (s *Schedule) PeakBuffer() int64 {
	var peak int64
	for _, u := range s.BufferUsage() {
		if u > peak {
			peak = u
		}
	}
	return peak
}

// TotalDRAMBytes sums all DRAM tensor sizes.
func (s *Schedule) TotalDRAMBytes() int64 {
	var b int64
	for i := range s.Tensors {
		b += s.Tensors[i].Bytes
	}
	return b
}

// Stats summarizes the schedule's fusion structure (Sec. VI-B metrics).
type Stats struct {
	Tiles, Tensors int
	FLGs, LGs      int
	DRAMBytes      int64
}

// Summarize computes the fusion statistics of the schedule.
func (s *Schedule) Summarize() Stats {
	return Stats{
		Tiles:     s.NumTiles(),
		Tensors:   len(s.Tensors),
		FLGs:      s.Enc.NumFLGs(),
		LGs:       s.Enc.NumLGs(),
		DRAMBytes: s.TotalDRAMBytes(),
	}
}
