package core

import "encoding/binary"

// CanonicalKey serializes the four LFA attributes into a compact,
// deterministic byte string. Two encodings describe the same point of the
// scheduling space iff their keys are equal, which makes the key usable as a
// memoization key for schedule evaluation (see sim.Cache).
func (e *Encoding) CanonicalKey() string {
	// Varint encoding keeps typical keys well under one byte per field
	// value; the leading lengths make the concatenation prefix-free.
	b := make([]byte, 0, 2*(len(e.Order)+2*len(e.FLCs)+len(e.Tile))+8)
	b = binary.AppendUvarint(b, uint64(len(e.Order)))
	for _, id := range e.Order {
		b = binary.AppendUvarint(b, uint64(id))
	}
	b = binary.AppendUvarint(b, uint64(len(e.FLCs)))
	for i, c := range e.FLCs {
		v := uint64(c) << 1
		if e.IsDRAM[i] {
			v |= 1
		}
		b = binary.AppendUvarint(b, v)
	}
	b = binary.AppendUvarint(b, uint64(len(e.Tile)))
	for _, t := range e.Tile {
		b = binary.AppendUvarint(b, uint64(t))
	}
	return string(b)
}

// CanonicalKey serializes the schedule's complete scheduling decision - the
// LFA encoding plus every DLSA attribute (DRAM Tensor Order and the
// adjustable Living Durations). Everything else on the Schedule is derived
// deterministically from these by Parse, so equal keys imply identical
// evaluation results.
func (s *Schedule) CanonicalKey() string {
	b := []byte(s.Enc.CanonicalKey())
	b = binary.AppendUvarint(b, uint64(len(s.Order)))
	for _, id := range s.Order {
		b = binary.AppendUvarint(b, uint64(id))
	}
	for i := range s.Tensors {
		t := &s.Tensors[i]
		// Start is the adjustable field of loads, End of stores; the
		// other one is fixed by the parse, so one varint per tensor
		// suffices.
		if t.Kind.IsLoad() {
			b = binary.AppendUvarint(b, uint64(t.Start))
		} else {
			b = binary.AppendUvarint(b, uint64(t.End))
		}
	}
	return string(b)
}
