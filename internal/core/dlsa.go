package core

import (
	"fmt"
	"sort"
)

// ApplyDoubleBuffer installs the classical double-buffer DLSA the paper uses
// as the baseline strategy (Sec. III-B): every load is prefetched one tile
// ahead of its first use, every store drains during the following tile, and
// the DRAM Tensor Order interleaves "store what tile t produced" right after
// "prefetch what tile t+1 needs".
func (s *Schedule) ApplyDoubleBuffer() {
	n := s.NumTiles()
	for i := range s.Tensors {
		t := &s.Tensors[i]
		if t.Kind.IsLoad() {
			t.Start = t.FirstUse - 1
			if t.Start < 0 {
				t.Start = 0
			}
		} else {
			t.End = t.Producer + 2
			if t.End > n {
				t.End = n
			}
		}
	}
	// Stores of tile t sort just before loads first used by tile t+1, so
	// producer stores always precede their dependent reloads.
	key := func(id int) int {
		t := &s.Tensors[id]
		if t.Kind.IsLoad() {
			return 2 * t.FirstUse
		}
		return 2*t.Producer + 1
	}
	sort.SliceStable(s.Order, func(a, b int) bool {
		return key(s.Order[a]) < key(s.Order[b])
	})
}

// OrderValid reports whether the DRAM Tensor Order is a permutation that
// places every producer store before the loads that re-read its data
// (violations deadlock the serial DRAM channel).
func (s *Schedule) OrderValid() bool {
	if len(s.Order) != len(s.Tensors) {
		return false
	}
	pos := make([]int, len(s.Tensors))
	for i := range pos {
		pos[i] = -1
	}
	for i, id := range s.Order {
		if id < 0 || id >= len(s.Tensors) || pos[id] != -1 {
			return false
		}
		pos[id] = i
	}
	for i := range s.Tensors {
		t := &s.Tensors[i]
		for _, st := range t.AfterStores {
			if pos[st] > pos[t.ID] {
				return false
			}
		}
	}
	return true
}

// LivingValid reports whether every Living Duration is inside its legal
// range: loads must start no later than their first use and not before tile
// zero; stores must end after their producing tile and no later than the end
// of execution.
func (s *Schedule) LivingValid() bool {
	n := s.NumTiles()
	for i := range s.Tensors {
		t := &s.Tensors[i]
		if t.Kind.IsLoad() {
			if t.Start < 0 || t.Start > t.FirstUse {
				return false
			}
		} else {
			if t.End <= t.Producer || t.End > n {
				return false
			}
		}
	}
	return true
}

// MoveTensor relocates the tensor at order position from to position to.
// The move is rejected (returning false, order unchanged) when it would put
// a load before a store it depends on.
func (s *Schedule) MoveTensor(from, to int) bool {
	n := len(s.Order)
	if from < 0 || from >= n || to < 0 || to >= n || from == to {
		return false
	}
	id := s.Order[from]
	t := &s.Tensors[id]
	// Fast legality: a load may not move before its latest AfterStore; a
	// store may not move after its earliest dependent load.
	if to < from && len(t.AfterStores) > 0 {
		// AfterStores lists are short (a load waits on at most a few
		// stores), so a direct scan beats building a set: this runs on
		// every order proposal of the stage-2 hot loop and must not
		// allocate.
		for p := to; p < from; p++ {
			cand := s.Order[p]
			for _, st := range t.AfterStores {
				if st == cand {
					return false
				}
			}
		}
	}
	if to > from && t.Kind == StoreOfmap {
		for p := from + 1; p <= to; p++ {
			cand := &s.Tensors[s.Order[p]]
			for _, st := range cand.AfterStores {
				if st == id {
					return false
				}
			}
		}
	}
	copy(s.Order[from:], s.Order[from+1:])
	copy(s.Order[to+1:], s.Order[to:n-1])
	s.Order[to] = id
	return true
}

// SetStart adjusts a load's Living Duration start (prefetch earlier or
// later), clamped to [0, FirstUse]. Returns false for stores.
func (s *Schedule) SetStart(id, start int) bool {
	if id < 0 || id >= len(s.Tensors) {
		return false
	}
	t := &s.Tensors[id]
	if !t.Kind.IsLoad() {
		return false
	}
	if start < 0 {
		start = 0
	}
	if start > t.FirstUse {
		start = t.FirstUse
	}
	t.Start = start
	return true
}

// SetEnd adjusts a store's Living Duration end (delay the writeback),
// clamped to [Producer+1, NumTiles]. Returns false for loads.
func (s *Schedule) SetEnd(id, end int) bool {
	if id < 0 || id >= len(s.Tensors) {
		return false
	}
	t := &s.Tensors[id]
	if t.Kind.IsLoad() {
		return false
	}
	if end <= t.Producer {
		end = t.Producer + 1
	}
	if n := s.NumTiles(); end > n {
		end = n
	}
	t.End = end
	return true
}

// DLSA is the serialized DRAM-Load-and-Store-related attribute set: the
// tensor order plus every adjustable Start/End. It lets explorers snapshot
// and restore the stage-2 state cheaply.
type DLSA struct {
	Order []int
	Start []int
	End   []int
}

// ExtractDLSA snapshots the schedule's current DLSA.
func (s *Schedule) ExtractDLSA() DLSA {
	d := DLSA{
		Order: append([]int(nil), s.Order...),
		Start: make([]int, len(s.Tensors)),
		End:   make([]int, len(s.Tensors)),
	}
	for i := range s.Tensors {
		d.Start[i] = s.Tensors[i].Start
		d.End[i] = s.Tensors[i].End
	}
	return d
}

// ApplyDLSA restores a snapshot taken from a schedule with the same tensor
// set.
func (s *Schedule) ApplyDLSA(d DLSA) error {
	if len(d.Order) != len(s.Tensors) || len(d.Start) != len(s.Tensors) || len(d.End) != len(s.Tensors) {
		return fmt.Errorf("core: DLSA shape mismatch (%d tensors)", len(s.Tensors))
	}
	s.Order = append(s.Order[:0], d.Order...)
	for i := range s.Tensors {
		s.Tensors[i].Start = d.Start[i]
		s.Tensors[i].End = d.End[i]
	}
	if !s.OrderValid() || !s.LivingValid() {
		return fmt.Errorf("core: DLSA snapshot is not legal for this schedule")
	}
	return nil
}
