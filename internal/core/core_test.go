package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"soma/internal/graph"
)

func sh(n, c, h, w int) graph.Shape { return graph.Shape{N: n, C: c, H: h, W: w} }

func kr(kh, kw, s, sw, ph, pw int) graph.Kernel {
	return graph.Kernel{KH: kh, KW: kw, SH: s, SW: sw, PH: ph, PW: pw}
}

// fig4 reproduces the paper's Fig. 4 five-layer network: A -> B -> C(pool),
// C -> E, C -> D, with E and D as network outputs. A and B are convs with
// weights, C is a pooling layer without weights.
func fig4(t testing.TB) (*graph.Graph, map[string]graph.LayerID) {
	g := graph.New("fig4", 1)
	ids := map[string]graph.LayerID{}
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh(1, 8, 32, 32)})
	ids["in"] = in
	a := g.Add(graph.Layer{Name: "A", Kind: graph.Conv, Deps: []graph.Dep{{Producer: in}},
		Out: sh(1, 16, 32, 32), K: kr(3, 3, 1, 1, 1, 1), WeightBytes: 8 * 16 * 9, Ops: 2 * 8 * 16 * 9 * 32 * 32})
	ids["A"] = a
	b := g.Add(graph.Layer{Name: "B", Kind: graph.Conv, Deps: []graph.Dep{{Producer: a}},
		Out: sh(1, 16, 32, 32), K: kr(3, 3, 1, 1, 1, 1), WeightBytes: 16 * 16 * 9, Ops: 2 * 16 * 16 * 9 * 32 * 32})
	ids["B"] = b
	c := g.Add(graph.Layer{Name: "C", Kind: graph.Pool, Deps: []graph.Dep{{Producer: b}},
		Out: sh(1, 16, 16, 16), K: kr(2, 2, 2, 2, 0, 0), Ops: 16 * 16 * 16 * 4})
	ids["C"] = c
	e := g.Add(graph.Layer{Name: "E", Kind: graph.Conv, Deps: []graph.Dep{{Producer: c}},
		Out: sh(1, 16, 16, 16), K: kr(3, 3, 1, 1, 1, 1), WeightBytes: 16 * 16 * 9, Ops: 2 * 16 * 16 * 9 * 16 * 16})
	ids["E"] = e
	d := g.Add(graph.Layer{Name: "D", Kind: graph.Conv, Deps: []graph.Dep{{Producer: c}},
		Out: sh(1, 16, 16, 16), K: kr(3, 3, 1, 1, 1, 1), WeightBytes: 16 * 16 * 9, Ops: 2 * 16 * 16 * 9 * 16 * 16})
	ids["D"] = d
	if err := g.Validate(); err != nil {
		t.Fatalf("fig4 graph: %v", err)
	}
	return g, ids
}

// fig4Encoding is the paper's example: order [A B C E D], FLC set {1,2},
// DRAM cut set {2}, tiling numbers 2, 1, 2.
func fig4Encoding(ids map[string]graph.LayerID) *Encoding {
	return &Encoding{
		Order:  []graph.LayerID{ids["A"], ids["B"], ids["C"], ids["E"], ids["D"]},
		FLCs:   []int{1, 2},
		IsDRAM: []bool{false, true},
		Tile:   []int{2, 1, 2},
	}
}

func mustParse(t testing.TB, g *graph.Graph, e *Encoding) *Schedule {
	s, err := Parse(g, e)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestEncodingGroupAccessors(t *testing.T) {
	g, ids := fig4(t)
	e := fig4Encoding(ids)
	if err := e.Check(g); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if e.NumFLGs() != 3 || e.NumLGs() != 2 {
		t.Fatalf("FLGs=%d LGs=%d", e.NumFLGs(), e.NumLGs())
	}
	if lo, hi := e.FLGBounds(0); lo != 0 || hi != 1 {
		t.Fatalf("FLG0 = [%d,%d)", lo, hi)
	}
	if lo, hi := e.FLGBounds(2); lo != 2 || hi != 5 {
		t.Fatalf("FLG2 = [%d,%d)", lo, hi)
	}
	if e.FLGOfPos(0) != 0 || e.FLGOfPos(1) != 1 || e.FLGOfPos(4) != 2 {
		t.Fatalf("FLGOfPos: %d %d %d", e.FLGOfPos(0), e.FLGOfPos(1), e.FLGOfPos(4))
	}
	// Positions 0..1 (A,B) are LG0; positions 2..4 (C,E,D) are LG1.
	if e.LGOfPos(0) != 0 || e.LGOfPos(1) != 0 || e.LGOfPos(2) != 1 || e.LGOfPos(4) != 1 {
		t.Fatalf("LGOfPos: %d %d %d %d", e.LGOfPos(0), e.LGOfPos(1), e.LGOfPos(2), e.LGOfPos(4))
	}
	if cuts := e.DRAMCutPositions(); len(cuts) != 1 || cuts[0] != 2 {
		t.Fatalf("DRAMCutPositions = %v", cuts)
	}
	if !strings.Contains(e.String(), "||") || !strings.Contains(e.String(), "|") {
		t.Fatalf("String = %q", e.String())
	}
}

func TestEncodingCheckRejections(t *testing.T) {
	g, ids := fig4(t)
	base := fig4Encoding(ids)

	e := base.Clone()
	e.Order[0], e.Order[1] = e.Order[1], e.Order[0] // B before A
	if e.Check(g) == nil {
		t.Fatal("dependency-violating order accepted")
	}
	e = base.Clone()
	e.FLCs = []int{2, 1}
	if e.Check(g) == nil {
		t.Fatal("unsorted cuts accepted")
	}
	e = base.Clone()
	e.FLCs = []int{1, 5}
	if e.Check(g) == nil {
		t.Fatal("cut at order length accepted")
	}
	e = base.Clone()
	e.Tile[1] = 0
	if e.Check(g) == nil {
		t.Fatal("zero tiling accepted")
	}
	e = base.Clone()
	e.Tile = e.Tile[:2]
	if e.Check(g) == nil {
		t.Fatal("tile/FLG length mismatch accepted")
	}
	e = base.Clone()
	e.IsDRAM = e.IsDRAM[:1]
	if e.Check(g) == nil {
		t.Fatal("IsDRAM length mismatch accepted")
	}
}

func TestDefaultEncoding(t *testing.T) {
	g, _ := fig4(t)
	e := DefaultEncoding(g, 1)
	if err := e.Check(g); err != nil {
		t.Fatalf("Check: %v", err)
	}
	n := len(g.ComputeLayers())
	if e.NumFLGs() != n || e.NumLGs() != n {
		t.Fatalf("default encoding must isolate every layer: FLGs=%d LGs=%d n=%d",
			e.NumFLGs(), e.NumLGs(), n)
	}
	if DefaultEncoding(g, 0).Tile[0] != 1 {
		t.Fatal("minTile clamp failed")
	}
}

func TestParseFig4TileSequence(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	// A1 A2 B C1 E1 D1 C2 E2 D2 - exactly the paper's sequence.
	want := []graph.LayerID{ids["A"], ids["A"], ids["B"],
		ids["C"], ids["E"], ids["D"], ids["C"], ids["E"], ids["D"]}
	if s.NumTiles() != len(want) {
		t.Fatalf("tiles = %d, want %d", s.NumTiles(), len(want))
	}
	for i, tl := range s.Tiles {
		if tl.Layer != want[i] {
			t.Fatalf("tile %d = %s, want %s", i, g.Layer(tl.Layer).Name, g.Layer(want[i]).Name)
		}
		if tl.Seq != i {
			t.Fatalf("tile %d has Seq %d", i, tl.Seq)
		}
	}
	// Group indices: A,B in LG0; C,E,D in LG1. A in FLG0, B in FLG1.
	if s.Tiles[0].LG != 0 || s.Tiles[2].LG != 0 || s.Tiles[3].LG != 1 {
		t.Fatalf("LG assignment wrong: %+v", s.Tiles)
	}
	if s.Tiles[0].FLG != 0 || s.Tiles[2].FLG != 1 || s.Tiles[3].FLG != 2 {
		t.Fatalf("FLG assignment wrong")
	}
}

func TestParseFig4TensorInventory(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	// The paper's example yields exactly 13 DRAM tensors:
	// IA1 IA2 WA WB WE WD OB IC1 IC2 OE1 OE2 OD1 OD2.
	if len(s.Tensors) != 13 {
		t.Fatalf("tensors = %d, want 13", len(s.Tensors))
	}
	count := map[TensorKind]int{}
	perLayer := map[string]int{}
	for _, ts := range s.Tensors {
		count[ts.Kind]++
		perLayer[g.Layer(ts.Layer).Name+ts.Kind.String()]++
	}
	if count[LoadWeight] != 4 { // WA WB WE WD (C has none)
		t.Fatalf("weight loads = %d, want 4", count[LoadWeight])
	}
	if count[LoadIfmap] != 4 { // IA1 IA2 IC1 IC2
		t.Fatalf("ifmap loads = %d, want 4", count[LoadIfmap])
	}
	if count[StoreOfmap] != 5 { // OB OE1 OE2 OD1 OD2
		t.Fatalf("stores = %d, want 5", count[StoreOfmap])
	}
	if perLayer["CI"] != 2 {
		t.Fatalf("C must load 2 ifmap tiles, got %d", perLayer["CI"])
	}
	if perLayer["BO"] != 1 {
		t.Fatalf("B must store 1 ofmap tile, got %d", perLayer["BO"])
	}
}

func TestParseFig4CrossLGDependency(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	// Every IC load must depend on B's store.
	var bStore int = -1
	for _, ts := range s.Tensors {
		if ts.Kind == StoreOfmap && ts.Layer == ids["B"] {
			bStore = ts.ID
		}
	}
	if bStore < 0 {
		t.Fatal("no store for B")
	}
	for _, ts := range s.Tensors {
		if ts.Kind == LoadIfmap && ts.Layer == ids["C"] {
			found := false
			for _, st := range ts.AfterStores {
				if st == bStore {
					found = true
				}
			}
			if !found {
				t.Fatalf("IC load %d missing AfterStores on OB", ts.ID)
			}
		}
	}
}

func TestParseFig4WeightLifetimes(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	for _, ts := range s.Tensors {
		if ts.Kind != LoadWeight {
			continue
		}
		switch ts.Layer {
		case ids["A"]:
			// WA: first use A1 (seq 0), released after FLG [A] ends (seq 2 = B).
			if ts.FirstUse != 0 || ts.Release != 2 {
				t.Fatalf("WA lifetime = (%d,%d), want (0,2)", ts.FirstUse, ts.Release)
			}
		case ids["E"]:
			// WE: first use E1 (seq 4), released after FLG [C,E,D] ends (seq 9).
			if ts.FirstUse != 4 || ts.Release != 9 {
				t.Fatalf("WE lifetime = (%d,%d), want (4,9)", ts.FirstUse, ts.Release)
			}
		}
	}
}

func TestDoubleBufferDefaultsAndValidity(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	if !s.OrderValid() {
		t.Fatal("double-buffer order invalid")
	}
	if !s.LivingValid() {
		t.Fatal("double-buffer livings invalid")
	}
	for _, ts := range s.Tensors {
		if ts.Kind.IsLoad() {
			want := ts.FirstUse - 1
			if want < 0 {
				want = 0
			}
			if ts.Start != want {
				t.Fatalf("tensor %d Start = %d, want %d", ts.ID, ts.Start, want)
			}
		} else {
			want := ts.Producer + 2
			if n := s.NumTiles(); want > n {
				want = n
			}
			if ts.End != want {
				t.Fatalf("tensor %d End = %d, want %d", ts.ID, ts.End, want)
			}
		}
	}
}

func TestBufferUsageShapes(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	u := s.BufferUsage()
	if len(u) != s.NumTiles() {
		t.Fatalf("usage length = %d", len(u))
	}
	for i, b := range u {
		if b < 0 {
			t.Fatalf("negative usage %d at seq %d", b, i)
		}
	}
	if s.PeakBuffer() <= 0 {
		t.Fatal("peak buffer must be positive")
	}
	// Peak must at least hold B's weights + A's aggregated ofmap.
	if s.PeakBuffer() < g.Layer(ids["B"]).WeightBytes {
		t.Fatal("peak buffer implausibly small")
	}
}

func TestFusionReducesDRAMTraffic(t *testing.T) {
	g, ids := fig4(t)
	fused := mustParse(t, g, fig4Encoding(ids))
	unfused := mustParse(t, g, DefaultEncoding(g, 2))
	if fused.TotalDRAMBytes() >= unfused.TotalDRAMBytes() {
		t.Fatalf("fusion must cut DRAM bytes: fused=%d unfused=%d",
			fused.TotalDRAMBytes(), unfused.TotalDRAMBytes())
	}
}

func TestParseRejectsGlobalDepInMultiTileFLG(t *testing.T) {
	g := graph.New("attn", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh(1, 8, 16, 1)})
	q := g.Add(graph.Layer{Name: "q", Kind: graph.GEMM, Deps: []graph.Dep{{Producer: in}},
		Out: sh(1, 8, 16, 1), WeightBytes: 64, Ops: 4096})
	k := g.Add(graph.Layer{Name: "k", Kind: graph.GEMM, Deps: []graph.Dep{{Producer: in}},
		Out: sh(1, 8, 16, 1), WeightBytes: 64, Ops: 4096})
	qk := g.Add(graph.Layer{Name: "qk", Kind: graph.MatMul,
		Deps: []graph.Dep{{Producer: q}, {Producer: k, Global: true}},
		Out:  sh(1, 16, 16, 1), Ops: 4096})
	e := &Encoding{Order: []graph.LayerID{q, k, qk}, Tile: []int{4}}
	if _, err := Parse(g, e); err == nil {
		t.Fatal("multi-tile FLG with global dep accepted")
	}
	// Separating the consumer into its own FLG makes it legal.
	e2 := &Encoding{Order: []graph.LayerID{q, k, qk}, FLCs: []int{2},
		IsDRAM: []bool{false}, Tile: []int{4, 1}}
	if _, err := Parse(g, e2); err != nil {
		t.Fatalf("cross-FLG global dep rejected: %v", err)
	}
}

func TestGlobalDepAcrossLGBecomesSingleLoad(t *testing.T) {
	g := graph.New("attn", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh(1, 8, 16, 1)})
	q := g.Add(graph.Layer{Name: "q", Kind: graph.GEMM, Deps: []graph.Dep{{Producer: in}},
		Out: sh(1, 8, 16, 1), WeightBytes: 64, Ops: 4096})
	k := g.Add(graph.Layer{Name: "k", Kind: graph.GEMM, Deps: []graph.Dep{{Producer: in}},
		Out: sh(1, 8, 16, 1), WeightBytes: 64, Ops: 4096})
	qk := g.Add(graph.Layer{Name: "qk", Kind: graph.MatMul,
		Deps: []graph.Dep{{Producer: q}, {Producer: k, Global: true}},
		Out:  sh(1, 16, 16, 1), Ops: 4096})
	countLoads := func(s *Schedule) (kLoads, qLoads int, kBytes int64) {
		for _, ts := range s.Tensors {
			if ts.Kind == LoadIfmap && ts.Layer == qk {
				if ts.Source == k {
					kLoads++
					kBytes = ts.Bytes
				}
				if ts.Source == q {
					qLoads++
				}
			}
		}
		return
	}
	// Tiled consumer: the global K operand streams fully per tile, the
	// local Q operand loads per-tile slabs.
	e := &Encoding{Order: []graph.LayerID{q, k, qk}, FLCs: []int{2},
		IsDRAM: []bool{true}, Tile: []int{1, 4}}
	s := mustParse(t, g, e)
	kLoads, qLoads, kBytes := countLoads(s)
	if kLoads != 4 {
		t.Fatalf("tiled consumer: global operand loads = %d, want 4 (one per tile)", kLoads)
	}
	if kBytes != g.Layer(k).Out.Bytes(1) {
		t.Fatalf("each global load must carry the full operand: %d", kBytes)
	}
	if qLoads != 4 {
		t.Fatalf("local operand loads = %d, want 4", qLoads)
	}
	// Single-tile consumer: one resident load.
	e1 := &Encoding{Order: []graph.LayerID{q, k, qk}, FLCs: []int{2},
		IsDRAM: []bool{true}, Tile: []int{1, 1}}
	s1 := mustParse(t, g, e1)
	kLoads, qLoads, _ = countLoads(s1)
	if kLoads != 1 || qLoads != 1 {
		t.Fatalf("single-tile consumer: loads = %d/%d, want 1/1", kLoads, qLoads)
	}
}

func TestTileRequestSanity(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	var totalOps int64
	for i := range s.Tiles {
		r := s.TileRequest(i)
		if r.Ops <= 0 || r.OutBytes <= 0 || r.InBytes <= 0 {
			t.Fatalf("tile %d request: %+v", i, r)
		}
		totalOps += r.Ops
	}
	// Halo recompute means executed ops >= graph ops.
	if totalOps < g.TotalOps() {
		t.Fatalf("executed ops %d < graph ops %d", totalOps, g.TotalOps())
	}
	if float64(totalOps) > 1.5*float64(g.TotalOps()) {
		t.Fatalf("halo overhead implausible: %d vs %d", totalOps, g.TotalOps())
	}
	_ = ids
}

func TestSummarize(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	st := s.Summarize()
	if st.Tiles != 9 || st.Tensors != 13 || st.FLGs != 3 || st.LGs != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DRAMBytes != s.TotalDRAMBytes() {
		t.Fatal("stats bytes mismatch")
	}
}

func TestMoveTensorLegality(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	// Find OB's and IC1's order positions.
	pos := map[int]int{}
	for i, id := range s.Order {
		pos[id] = i
	}
	var ob, ic = -1, -1
	for _, ts := range s.Tensors {
		if ts.Kind == StoreOfmap && ts.Layer == ids["B"] {
			ob = ts.ID
		}
		if ts.Kind == LoadIfmap && ts.Layer == ids["C"] && ic == -1 {
			ic = ts.ID
		}
	}
	if pos[ob] > pos[ic] {
		t.Fatal("double buffer must place OB before IC")
	}
	// Moving IC before OB must be rejected.
	if s.MoveTensor(pos[ic], pos[ob]) {
		t.Fatal("load moved before its producer store")
	}
	if !s.OrderValid() {
		t.Fatal("rejected move corrupted the order")
	}
	// Moving OB after IC must be rejected too.
	if s.MoveTensor(pos[ob], pos[ic]) {
		t.Fatal("store moved after its dependent load")
	}
	// A legal move keeps the order valid.
	if !s.MoveTensor(0, len(s.Order)-1) && !s.MoveTensor(len(s.Order)-1, 0) {
		t.Skip("no legal boundary move in this schedule")
	}
	if !s.OrderValid() {
		t.Fatal("legal move produced invalid order")
	}
}

func TestSetStartSetEndClamping(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	var load, store int = -1, -1
	for _, ts := range s.Tensors {
		if ts.Kind.IsLoad() && load == -1 {
			load = ts.ID
		}
		if ts.Kind == StoreOfmap && store == -1 {
			store = ts.ID
		}
	}
	if !s.SetStart(load, -5) || s.Tensors[load].Start != 0 {
		t.Fatalf("SetStart clamp low: %d", s.Tensors[load].Start)
	}
	if !s.SetStart(load, 999) || s.Tensors[load].Start != s.Tensors[load].FirstUse {
		t.Fatalf("SetStart clamp high: %d", s.Tensors[load].Start)
	}
	if s.SetStart(store, 0) {
		t.Fatal("SetStart must reject stores")
	}
	if !s.SetEnd(store, -1) || s.Tensors[store].End != s.Tensors[store].Producer+1 {
		t.Fatalf("SetEnd clamp low: %d", s.Tensors[store].End)
	}
	if !s.SetEnd(store, 999) || s.Tensors[store].End != s.NumTiles() {
		t.Fatalf("SetEnd clamp high: %d", s.Tensors[store].End)
	}
	if s.SetEnd(load, 3) {
		t.Fatal("SetEnd must reject loads")
	}
	if !s.LivingValid() {
		t.Fatal("clamped livings must stay valid")
	}
}

func TestDLSASnapshotRoundTrip(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	snap := s.ExtractDLSA()
	// Mutate, then restore.
	s.SetStart(s.Order[0], 0)
	s.MoveTensor(0, len(s.Order)-1)
	if err := s.ApplyDLSA(snap); err != nil {
		t.Fatalf("ApplyDLSA: %v", err)
	}
	got := s.ExtractDLSA()
	for i := range snap.Order {
		if got.Order[i] != snap.Order[i] {
			t.Fatal("order not restored")
		}
	}
	// Shape mismatch is rejected.
	bad := snap
	bad.Order = bad.Order[:1]
	if err := s.ApplyDLSA(bad); err == nil {
		t.Fatal("mismatched DLSA accepted")
	}
}

func TestCloneIsolation(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	c := s.Clone()
	c.SetStart(c.Order[0], 0)
	c.MoveTensor(0, 2)
	if s.ExtractDLSA().Order[0] != s.Order[0] {
		t.Fatal("clone mutation leaked")
	}
	same := true
	orig, cl := s.ExtractDLSA(), c.ExtractDLSA()
	for i := range orig.Order {
		if orig.Order[i] != cl.Order[i] {
			same = false
		}
	}
	if same && orig.Start[s.Order[0]] == cl.Start[s.Order[0]] {
		t.Fatal("clone did not diverge")
	}
}

func TestEncodingOperators(t *testing.T) {
	g, ids := fig4(t)
	e := fig4Encoding(ids)
	// AddFLC splits FLG [C,E,D] at position 3; halves inherit tiling 2.
	if !e.AddFLC(3) {
		t.Fatal("AddFLC failed")
	}
	if e.NumFLGs() != 4 || e.Tile[2] != 2 || e.Tile[3] != 2 {
		t.Fatalf("after AddFLC: FLGs=%d Tile=%v", e.NumFLGs(), e.Tile)
	}
	if e.AddFLC(3) {
		t.Fatal("duplicate cut accepted")
	}
	if e.AddFLC(0) || e.AddFLC(5) {
		t.Fatal("boundary cut accepted")
	}
	if err := e.Check(g); err != nil {
		t.Fatalf("Check after AddFLC: %v", err)
	}
	// RemoveFLC merges back with the chosen tiling.
	if !e.RemoveFLC(2, 4) {
		t.Fatal("RemoveFLC failed")
	}
	if e.NumFLGs() != 3 || e.Tile[2] != 4 {
		t.Fatalf("after RemoveFLC: FLGs=%d Tile=%v", e.NumFLGs(), e.Tile)
	}
	if e.RemoveFLC(7, 1) {
		t.Fatal("out-of-range removal accepted")
	}
	// SetDRAM toggles cut class.
	if !e.SetDRAM(0, true) || !e.IsDRAM[0] {
		t.Fatal("SetDRAM failed")
	}
	if e.SetDRAM(9, true) {
		t.Fatal("out-of-range SetDRAM accepted")
	}
	if err := e.Check(g); err != nil {
		t.Fatalf("Check after operators: %v", err)
	}
}

func TestMoveLayer(t *testing.T) {
	g, ids := fig4(t)
	e := fig4Encoding(ids)
	// E and D are independent: swapping them is legal.
	if !e.MoveLayer(g, 4, 3) {
		t.Fatal("legal swap rejected")
	}
	if e.Order[3] != ids["D"] || e.Order[4] != ids["E"] {
		t.Fatalf("order after move: %v", e.Order)
	}
	// Moving A after B violates the dependency.
	if e.MoveLayer(g, 0, 1) {
		t.Fatal("illegal move accepted")
	}
	if e.MoveLayer(g, 0, 0) || e.MoveLayer(g, -1, 2) || e.MoveLayer(g, 0, 9) {
		t.Fatal("degenerate moves accepted")
	}
}

func TestRandomDLSAMutationsKeepInvariants(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		switch rng.Intn(3) {
		case 0:
			s.MoveTensor(rng.Intn(len(s.Order)), rng.Intn(len(s.Order)))
		case 1:
			s.SetStart(rng.Intn(len(s.Tensors)), rng.Intn(s.NumTiles()+1)-1)
		case 2:
			s.SetEnd(rng.Intn(len(s.Tensors)), rng.Intn(s.NumTiles()+2)-1)
		}
		if !s.OrderValid() {
			t.Fatalf("iteration %d: order invalid", i)
		}
		if !s.LivingValid() {
			t.Fatalf("iteration %d: livings invalid", i)
		}
	}
	for _, u := range s.BufferUsage() {
		if u < 0 {
			t.Fatal("negative buffer usage after mutations")
		}
	}
}

func TestBufferUsagePropertyMorePrefetchMoreBuffer(t *testing.T) {
	g, ids := fig4(t)
	f := func(seedRaw uint8) bool {
		s := mustParse(t, g, fig4Encoding(ids))
		base := s.PeakBuffer()
		// Prefetch everything at time zero: peak can only grow.
		for i := range s.Tensors {
			if s.Tensors[i].Kind.IsLoad() {
				s.SetStart(s.Tensors[i].ID, 0)
			}
		}
		_ = seedRaw
		return s.PeakBuffer() >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
