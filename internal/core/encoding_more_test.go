package core

import (
	"strings"
	"testing"
)

func TestEncodingStringShapes(t *testing.T) {
	g, ids := fig4(t)
	e := fig4Encoding(ids)
	s := e.String()
	// Bracket notation: three groups, one fine cut, one DRAM cut, all
	// tiling numbers annotated.
	if strings.Count(s, ":") != 3 {
		t.Fatalf("expected 3 tiling annotations in %q", s)
	}
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		t.Fatalf("not bracketed: %q", s)
	}
	_ = g
}

func TestFLGLayersViews(t *testing.T) {
	g, ids := fig4(t)
	e := fig4Encoding(ids)
	if got := e.FLGLayers(0); len(got) != 1 || got[0] != ids["A"] {
		t.Fatalf("FLG0 = %v", got)
	}
	if got := e.FLGLayers(2); len(got) != 3 {
		t.Fatalf("FLG2 = %v", got)
	}
	_ = g
}

func TestRemoveFLCMergesLGs(t *testing.T) {
	g, ids := fig4(t)
	e := fig4Encoding(ids)
	if e.NumLGs() != 2 {
		t.Fatalf("LGs = %d", e.NumLGs())
	}
	// Removing the DRAM cut (index 1) merges the two LGs.
	if !e.RemoveFLC(1, 2) {
		t.Fatal("RemoveFLC failed")
	}
	if e.NumLGs() != 1 {
		t.Fatalf("LGs after merge = %d", e.NumLGs())
	}
	if err := e.Check(g); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestTensorKindHelpers(t *testing.T) {
	if !LoadWeight.IsLoad() || !LoadIfmap.IsLoad() || StoreOfmap.IsLoad() {
		t.Fatal("IsLoad misclassifies")
	}
	if LoadWeight.String() != "W" || LoadIfmap.String() != "I" || StoreOfmap.String() != "O" {
		t.Fatal("kind strings wrong")
	}
	if TensorKind(42).String() != "?" {
		t.Fatal("unknown kind must render as ?")
	}
}

func TestScheduleCloneSharesImmutableTiles(t *testing.T) {
	g, ids := fig4(t)
	s := mustParse(t, g, fig4Encoding(ids))
	c := s.Clone()
	if &s.Tiles[0] != &c.Tiles[0] {
		t.Fatal("tiles should be shared between clones (immutable)")
	}
	if &s.Tensors[0] == &c.Tensors[0] {
		t.Fatal("tensors must be copied")
	}
}
