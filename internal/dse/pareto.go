package dse

import "sort"

// Front returns the indices of the rows forming the minimal non-dominated
// set under joint minimization of (x, y), ordered by ascending x. A row is
// on the front when no other successful row has both x <= and y <= it (with
// at least one strict); among x-ties only the lowest y survives. Error rows
// never participate. Ties beyond that resolve to the lowest index, so the
// front is deterministic.
func Front(rows []Row, x, y func(Row) float64) []int {
	var idx []int
	for i, r := range rows {
		if r.Err == "" && r.Result != nil {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		xa, xb := x(rows[idx[a]]), x(rows[idx[b]])
		if xa != xb {
			return xa < xb
		}
		return y(rows[idx[a]]) < y(rows[idx[b]])
	})
	var front []int
	for _, i := range idx {
		if len(front) > 0 {
			last := front[len(front)-1]
			if x(rows[i]) == x(rows[last]) {
				continue // x-tie: first (lowest y) wins
			}
			if y(rows[i]) >= y(rows[last]) {
				continue // dominated: more resource, no cost improvement
			}
		}
		front = append(front, i)
	}
	return front
}

// CostVsBufferFront is the Fig. 7 co-design aggregate: the Pareto front of
// objective cost against global-buffer capacity (the row's effective GBUF
// bytes, preset or override). It answers "which buffer sizes actually buy
// cost" - a point is on the front only if no smaller-or-equal buffer reaches
// its cost. Returns nil when the sweep spans fewer than two buffer sizes
// (the frontier would be a single trivial point).
func CostVsBufferFront(rows []Row) []int {
	sizes := map[int64]bool{}
	for _, r := range rows {
		if r.Err == "" && r.Result != nil {
			sizes[r.Result.Hardware.GBufBytes] = true
		}
	}
	if len(sizes) < 2 {
		return nil
	}
	return Front(rows,
		func(r Row) float64 { return float64(r.Result.Hardware.GBufBytes) },
		func(r Row) float64 { return r.Result.Cost })
}

// BestPerAxis groups successful rows by an axis key and keeps the
// lowest-cost row of each group, returned as a key -> row-index map. It is
// the "collapse everything but one axis" aggregate behind per-platform and
// per-model summary tables.
func BestPerAxis(rows []Row, key func(Point) string) map[string]int {
	best := map[string]int{}
	for i, r := range rows {
		if r.Err != "" || r.Result == nil {
			continue
		}
		k := key(r.Point)
		j, ok := best[k]
		if !ok || r.Result.Cost < rows[j].Result.Cost {
			best[k] = i
		}
	}
	return best
}
