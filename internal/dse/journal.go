package dse

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// The journal is a JSONL checkpoint of a running sweep: line 1 is a header
// binding the file to one spec (by SHA-256 digest) and grid size, every
// following line is one Scrubbed Row, committed strictly in point-index
// order. In-order commit is what makes the format restartable with a plain
// prefix check: however the worker pool interleaved, an interrupted journal
// is always rows 0..k-1, so a resume re-runs exactly the points >= k and the
// final file is byte-identical to an uninterrupted run's.

// journalVersion guards the on-disk row schema.
const journalVersion = 1

type journalHeader struct {
	Version int `json:"journal_version"`
	// Sweep is the spec's name (informational; the digest is the binding).
	Sweep      string `json:"sweep,omitempty"`
	SpecSHA256 string `json:"spec_sha256"`
	Points     int    `json:"points"`
}

// JournalWriter is the append side of the checkpoint file. The cluster
// coordinator drives it directly (merging worker row streams into the
// canonical file); everyone else goes through Run's Journal option.
type JournalWriter struct {
	f *os.File
	w *bufio.Writer
}

// LoadJournal reads an existing journal, validating the header against the
// sweep digest and returning the committed row prefix together with the raw
// line bytes (re-written verbatim on resume, so loaded rows never go through
// a re-marshal). A missing file returns no rows and no error. A header
// bound to a different spec or grid size is an error - resuming must never
// silently mix two sweeps. A torn tail (partial last line from a killed
// process) is discarded; everything before it is kept.
func LoadJournal(path string, digest string, points int) (rows []Row, lines [][]byte, err error) {
	// An exhaustive journal's row k is exactly grid point k.
	return loadJournal(path, digest, points, func(k int, row Row) bool {
		return row.Point.Index == k && row.Point.Index < points
	})
}

// loadJournal is the shared loader behind the exhaustive and adaptive resume
// paths: header binding, torn-tail tolerance, and a caller-supplied
// row-sequence validator - row k of the file must satisfy valid(k, row), and
// the first row that does not ends the trusted prefix.
func loadJournal(path, digest string, points int, valid func(k int, row Row) bool) (rows []Row, lines [][]byte, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	raw := bytes.Split(data, []byte("\n"))
	if len(raw) == 0 || len(bytes.TrimSpace(raw[0])) == 0 {
		return nil, nil, nil // empty file: treat as fresh
	}
	var hdr journalHeader
	if err := json.Unmarshal(raw[0], &hdr); err != nil {
		return nil, nil, fmt.Errorf("dse: journal %s: bad header: %w", path, err)
	}
	if hdr.Version != journalVersion {
		return nil, nil, fmt.Errorf("dse: journal %s: version %d, want %d", path, hdr.Version, journalVersion)
	}
	if hdr.SpecSHA256 != digest || hdr.Points != points {
		return nil, nil, fmt.Errorf("dse: journal %s belongs to a different sweep (spec %s.. with %d points)",
			path, shortDigest(hdr.SpecSHA256), hdr.Points)
	}
	for _, line := range raw[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var row Row
		if err := json.Unmarshal(line, &row); err != nil {
			break // torn tail: keep the valid prefix
		}
		if !valid(len(rows), row) {
			break // out-of-order or out-of-range: distrust the tail
		}
		rows = append(rows, row)
		lines = append(lines, line)
	}
	return rows, lines, nil
}

func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}

// OpenJournal creates (or, with kept prefix lines, rewrites) the journal and
// leaves it positioned for appending row len(lines). Rewriting the verbatim
// prefix keeps resumed files byte-identical to uninterrupted runs even if
// the previous process died mid-line. The rewrite goes through a temp file
// renamed into place only after the prefix is flushed, so a crash during
// resume never costs the points the previous run already paid for.
func OpenJournal(path string, sw Sweep, digest string, points int, lines [][]byte) (*JournalWriter, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*JournalWriter, error) {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	j := &JournalWriter{f: f, w: bufio.NewWriter(f)}
	hdr, err := json.Marshal(journalHeader{Version: journalVersion, Sweep: sw.Name,
		SpecSHA256: digest, Points: points})
	if err != nil {
		return fail(err)
	}
	if _, err := j.w.Write(append(hdr, '\n')); err != nil {
		return fail(err)
	}
	for _, line := range lines {
		if _, err := j.w.Write(append(line, '\n')); err != nil {
			return fail(err)
		}
	}
	if err := j.w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	// The open handle follows the rename: appends keep landing in the (now
	// canonical) journal file.
	if err := os.Rename(tmp, path); err != nil {
		return fail(err)
	}
	return j, nil
}

// Append commits one (already Scrubbed) row and flushes it to the OS, so a
// kill right after a point completes loses at most the in-flight points.
func (j *JournalWriter) Append(row Row) error {
	data, err := json.Marshal(row)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return err
	}
	return j.w.Flush()
}

// Close flushes and closes the journal file.
func (j *JournalWriter) Close() error {
	if j == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// WriteJournal re-emits a completed outcome in the exact journal format -
// header plus scrubbed rows - so callers that ran without a checkpoint file
// (the somad sweeps API, -json pipelines) can still export the canonical
// byte-comparable artifact.
func WriteJournal(w io.Writer, sw Sweep, out *Outcome) error {
	digest, err := sw.SpecSHA256()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(journalHeader{Version: journalVersion, Sweep: sw.Name,
		SpecSHA256: digest, Points: out.Points}); err != nil {
		return err
	}
	for _, row := range out.Rows {
		if err := enc.Encode(row.Scrubbed()); err != nil {
			return err
		}
	}
	return nil
}
