package dse

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The differential harness pins the adaptive driver against the exhaustive
// one on a committed 8-point fixture grid (testdata/adaptive-grid.json:
// 4 buffer sizes x 2 seeds): the adaptive front must stay within a pinned
// epsilon of the exhaustive front while issuing at most 40% of the
// full-fidelity solves, every adaptive row must be an exhaustive grid point,
// and fixed-seed adaptive journals must be byte-identical for any worker
// count and across kill-and-resume.

// diffEpsilon is the pinned front-degradation bound for the fixture grid:
// at every buffer size on the exhaustive cost-vs-buffer front, the adaptive
// run's best cost at-or-below that buffer is within (1+diffEpsilon) of the
// exhaustive one. The fixture currently achieves 0 (the promoted full
// solves reproduce the exhaustive optima exactly); the margin absorbs a
// probe-found schedule edging out a front point without weakening the
// guarantee the docs state (docs/dse.md).
const diffEpsilon = 0.05

// adaptiveFixture loads the committed grid spec; strip=true removes the
// adaptive block, giving the exhaustive run of the identical grid.
func adaptiveFixture(t *testing.T, strip bool, workers int) Sweep {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "adaptive-grid.json"))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := ParseSweep(data)
	if err != nil {
		t.Fatal(err)
	}
	if strip {
		sw.Adaptive = nil
	}
	sw.Workers = workers
	return sw
}

// frontCostAt is the front staircase: the best successful cost among rows
// with at most the given buffer capacity.
func frontCostAt(rows []Row, gbufBytes int64) (float64, bool) {
	best, ok := 0.0, false
	for _, r := range rows {
		if r.Err != "" || r.Result == nil || r.Result.Hardware.GBufBytes > gbufBytes {
			continue
		}
		if !ok || r.Result.Cost < best {
			best, ok = r.Result.Cost, true
		}
	}
	return best, ok
}

func TestAdaptiveDifferential(t *testing.T) {
	ctx := context.Background()
	ex, err := Run(ctx, adaptiveFixture(t, true, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := Run(ctx, adaptiveFixture(t, false, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Adaptive != nil {
		t.Fatalf("exhaustive outcome grew adaptive stats: %+v", ex.Adaptive)
	}
	if ad.Adaptive == nil {
		t.Fatal("adaptive outcome missing stats")
	}
	n := ex.Points

	// <= 40% full-fidelity solves, and the stats agree with the rows.
	fulls := 0
	for _, r := range ad.Rows {
		if r.Fidelity == FidelityFull {
			fulls++
		}
	}
	if fulls != ad.Adaptive.Promotions || ad.Adaptive.SolvesSaved != n-fulls {
		t.Fatalf("stats disagree with rows: %d full rows, stats %+v", fulls, ad.Adaptive)
	}
	if max := (2 * n) / 5; fulls == 0 || fulls > max {
		t.Fatalf("adaptive issued %d full solves on a %d-point grid (cap %d)", fulls, n, max)
	}

	// Every adaptive row's point is exactly the exhaustive expansion's.
	if len(ad.Rows) != n {
		t.Fatalf("adaptive rows = %d, grid = %d", len(ad.Rows), n)
	}
	for i, r := range ad.Rows {
		if r.Point != ex.Rows[i].Point {
			t.Fatalf("row %d point diverged: adaptive %+v, exhaustive %+v", i, r.Point, ex.Rows[i].Point)
		}
		if r.Fidelity != FidelityProbe && r.Fidelity != FidelityFull {
			t.Fatalf("row %d fidelity = %q", i, r.Fidelity)
		}
	}

	// Front within the pinned epsilon at every exhaustive-front buffer size.
	if len(ex.Pareto) == 0 {
		t.Fatal("exhaustive run produced no front on a 4-buffer grid")
	}
	for _, i := range ex.Pareto {
		buf := ex.Rows[i].Result.Hardware.GBufBytes
		want := ex.Rows[i].Result.Cost
		got, ok := frontCostAt(ad.Rows, buf)
		if !ok {
			t.Fatalf("adaptive run has no successful row at buffer <= %d", buf)
		}
		if rel := (got - want) / want; rel > diffEpsilon {
			t.Errorf("front at buffer %d: adaptive %.6g vs exhaustive %.6g (rel %.4f > eps %.2f)",
				buf, got, want, rel, diffEpsilon)
		}
	}
}

// journalBytes runs the sweep with a journal and returns the finished file.
func journalBytes(t *testing.T, sw Sweep, path string) []byte {
	t.Helper()
	if _, err := Run(context.Background(), sw, Options{Journal: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestAdaptiveJournalIdenticalAcrossWorkerCounts(t *testing.T) {
	dir := t.TempDir()
	ref := journalBytes(t, adaptiveFixture(t, false, 1), filepath.Join(dir, "serial.jsonl"))
	for _, workers := range []int{3, 8} {
		got := journalBytes(t, adaptiveFixture(t, false, workers), filepath.Join(dir, "par.jsonl"))
		if !bytes.Equal(ref, got) {
			t.Fatalf("adaptive journal differs between 1 and %d workers", workers)
		}
	}
}

func TestAdaptiveResumeByteIdentity(t *testing.T) {
	dir := t.TempDir()
	ref := journalBytes(t, adaptiveFixture(t, false, 2), filepath.Join(dir, "ref.jsonl"))
	lines := strings.Split(strings.TrimSuffix(string(ref), "\n"), "\n")
	n := adaptiveFixture(t, true, 1).GridSize()
	if len(lines) <= n+1 {
		t.Fatalf("reference journal has no full rows to truncate (%d lines, grid %d)", len(lines), n)
	}
	// Kill mid-rung-0 (3 probes committed) and mid-rung-1 (all probes, one
	// full row committed): both resumes must land on the reference bytes.
	for name, keep := range map[string]int{"mid-probe": 1 + 3, "mid-full": 1 + n + 1} {
		path := filepath.Join(dir, name+".jsonl")
		torn := strings.Join(lines[:keep], "\n") + "\n" + `{"point":{"index"` // torn tail
		if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := Run(context.Background(), adaptiveFixture(t, false, 2), Options{Journal: path})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Resumed != keep-1 {
			t.Fatalf("%s: resumed %d rows, want %d", name, out.Resumed, keep-1)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("%s: resumed journal differs from uninterrupted run", name)
		}
	}
}

// A finished adaptive journal resumes to a no-op with identical bytes.
func TestAdaptiveResumeFinishedJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "done.jsonl")
	ref := journalBytes(t, adaptiveFixture(t, false, 2), path)
	out, err := Run(context.Background(), adaptiveFixture(t, false, 2), Options{Journal: path})
	if err != nil {
		t.Fatal(err)
	}
	if out.Adaptive == nil || out.Adaptive.Promotions == 0 {
		t.Fatalf("resumed outcome lost adaptive stats: %+v", out.Adaptive)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Fatal("no-op resume rewrote the journal differently")
	}
	if out.Resumed != len(bytes.Split(bytes.TrimSuffix(ref, []byte("\n")), []byte("\n")))-1 {
		t.Fatalf("no-op resume recomputed rows: %+v", out)
	}
}
