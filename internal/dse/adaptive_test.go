package dse

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"soma/internal/engine"
	"soma/internal/obs"
	"soma/internal/report"
	"soma/internal/soma"
)

func TestAdaptiveDefaults(t *testing.T) {
	cases := []struct {
		in              Adaptive
		n               int
		budget, explore int
		epsilon         float64
	}{
		{Adaptive{}, 10, 3, 1, 0.25},
		{Adaptive{}, 100, 30, 3, 0.25},
		{Adaptive{}, 1, 1, 0, 0.25},
		{Adaptive{Budget: 50}, 10, 10, 1, 0.25}, // clamped to grid
		{Adaptive{Budget: 4, Explore: 9}, 10, 4, 3, 0.25},
		{Adaptive{Budget: 2, Epsilon: 0.1, Explore: 1}, 10, 2, 1, 0.1},
	}
	for _, c := range cases {
		got := c.in.withDefaults(c.n)
		if got.Budget != c.budget || got.Explore != c.explore || got.Epsilon != c.epsilon {
			t.Errorf("withDefaults(%+v, n=%d) = %+v, want budget=%d explore=%d eps=%g",
				c.in, c.n, got, c.budget, c.explore, c.epsilon)
		}
	}
}

func TestProbeParamsScalesDown(t *testing.T) {
	par := soma.DefaultParams()
	par.Chains, par.Workers = 8, 4
	p := ProbeParams(par)
	if p.Chains != 0 || p.Workers != 0 {
		t.Fatalf("probe portfolio not collapsed: %+v", p)
	}
	if p.Beta1 >= par.Beta1 && par.Beta1 > 1 {
		t.Fatalf("beta1 not reduced: %d -> %d", par.Beta1, p.Beta1)
	}
	if p.Stage1MaxIters > 800 || p.Stage2MaxIters > 1500 {
		t.Fatalf("iteration caps not applied: %+v", p)
	}
	// Already-tiny params stay valid (never scaled to zero).
	tiny := soma.FastParams()
	tiny.Beta1, tiny.Beta2 = 1, 1
	q := ProbeParams(tiny)
	if q.Beta1 < 1 || q.Beta2 < 1 {
		t.Fatalf("probe scaled betas below 1: %+v", q)
	}
}

// probeRow builds a synthetic successful probe row for promotion tests.
func probeRow(idx int, gbuf int64, cost float64) Row {
	return Row{
		Point:    Point{Index: idx},
		Fidelity: FidelityProbe,
		Result: &report.Result{
			Hardware: report.Hardware{GBufBytes: gbuf},
			Cost:     cost,
		},
	}
}

func TestPromoteSelection(t *testing.T) {
	// Buffers 1/2/4 MiB; index 1 dominates at 2 MiB, index 3 is far off the
	// front at 4 MiB, index 0 defines the 1 MiB front corner.
	probes := []Row{
		probeRow(0, 1<<20, 100),
		probeRow(1, 2<<20, 50),
		probeRow(2, 2<<20, 55), // within 10% of the 2 MiB front
		probeRow(3, 4<<20, 500),
		{Point: Point{Index: 4}, Fidelity: FidelityProbe, Err: "infeasible"},
	}
	// promote consumes the already-resolved block verbatim, so Explore: 0
	// here really means no exploration quota (withDefaults would turn 0
	// into the grid-scaled default).
	ad := Adaptive{Budget: 3, Epsilon: 0.25, Explore: 0}
	promoted, explored, dists := promote(probes, ad, 1)
	if explored != 0 {
		t.Fatalf("explore=0 but explored %d", explored)
	}
	// Front points (dist 0) rank first: 0, 1; then 2 (dist 0.1). 3 (dist 9)
	// and the failed 4 never make a 3-slot band.
	if len(promoted) != 3 || promoted[0] != 0 || promoted[1] != 1 || promoted[2] != 2 {
		t.Fatalf("promoted = %v, want [0 1 2]", promoted)
	}
	if dists[0] != 0 || dists[1] != 0 || math.Abs(dists[2]-0.1) > 1e-9 || !math.IsNaN(dists[4]) {
		t.Fatalf("dists = %v", dists)
	}

	// An exploration quota fills from outside the band, deterministically
	// under a fixed seed, and never picks failed probes.
	ad = Adaptive{Budget: 3, Epsilon: 0.01, Explore: 1}
	p1, e1, _ := promote(probes, ad, 7)
	p2, e2, _ := promote(probes, ad, 7)
	if e1 != 1 || e2 != 1 {
		t.Fatalf("explored = %d/%d, want 1", e1, e2)
	}
	if len(p1) != 3 || !equalInts(p1, p2) {
		t.Fatalf("seeded exploration not deterministic: %v vs %v", p1, p2)
	}
	for _, i := range p1 {
		if i == 4 {
			t.Fatal("promoted a failed probe")
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPromoteAllFailed(t *testing.T) {
	probes := []Row{
		{Point: Point{Index: 0}, Fidelity: FidelityProbe, Err: "x"},
		{Point: Point{Index: 1}, Fidelity: FidelityProbe, Err: "y"},
	}
	promoted, explored, _ := promote(probes, Adaptive{}.withDefaults(2), 1)
	if len(promoted) != 0 || explored != 0 {
		t.Fatalf("promoted from all-failed probes: %v", promoted)
	}
}

func TestAdaptiveValidate(t *testing.T) {
	sw := fastSweep(1)
	sw.Adaptive = &Adaptive{Budget: -1}
	if err := sw.Validate(); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("negative budget accepted: %v", err)
	}
	sw.Adaptive = &Adaptive{Epsilon: -0.5}
	if err := sw.Validate(); err == nil || !strings.Contains(err.Error(), "epsilon") {
		t.Fatalf("negative epsilon accepted: %v", err)
	}
	sw.Adaptive = &Adaptive{Explore: -2}
	if err := sw.Validate(); err == nil || !strings.Contains(err.Error(), "explore") {
		t.Fatalf("negative explore accepted: %v", err)
	}
	sw.Adaptive = &Adaptive{}
	if err := sw.Validate(); err != nil {
		t.Fatalf("empty adaptive block rejected: %v", err)
	}
}

// The adaptive block is part of the spec digest: adaptive and exhaustive
// journals of the same grid can never resume into each other.
func TestAdaptiveChangesDigest(t *testing.T) {
	ex := fastSweep(1)
	ad := fastSweep(1)
	ad.Adaptive = &Adaptive{}
	de, err1 := ex.SpecSHA256()
	da, err2 := ad.SpecSHA256()
	if err1 != nil || err2 != nil || de == da {
		t.Fatalf("digests: %v %v / %s vs %s", err1, err2, de, da)
	}
}

// Run must dispatch adaptive specs to RunAdaptive and stream the rung
// events between the usual sweep/point events.
func TestRunDispatchesAdaptive(t *testing.T) {
	sw := fastSweep(2)
	sw.Adaptive = &Adaptive{}
	var mu sync.Mutex
	rungs := map[string]int{}
	hooks := &engine.Hooks{Event: func(e engine.Event) {
		if e.Kind == "rung-start" || e.Kind == "rung-done" {
			mu.Lock()
			rungs[e.Kind+"/"+e.Stage]++
			mu.Unlock()
		}
	}}
	o := obs.New()
	out, err := Run(context.Background(), sw, Options{Hooks: hooks, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if out.Adaptive == nil {
		t.Fatal("Run on an adaptive spec returned no adaptive stats")
	}
	for _, k := range []string{"rung-start/probe", "rung-done/probe", "rung-start/full", "rung-done/full"} {
		if rungs[k] != 1 {
			t.Fatalf("rung events = %v", rungs)
		}
	}
	// The adaptive metric family is populated.
	snaps := o.Registry().Snapshot()
	found := false
	for _, s := range snaps {
		if s.Name == "dse_adaptive_promotions_total" {
			found = true
		}
	}
	if !found {
		t.Fatal("dse_adaptive_promotions_total not recorded")
	}
}

// A full row that is not the next recomputed promotion ends the trusted
// journal prefix (distrust-the-tail), so a resume recomputes from there
// instead of committing a contradictory file.
func TestAdaptiveLoadJournalDistrustsBadFullRow(t *testing.T) {
	dir := t.TempDir()
	sw := adaptiveFixture(t, false, 2)
	path := filepath.Join(dir, "j.jsonl")
	if _, err := Run(context.Background(), sw, Options{Journal: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	n := sw.GridSize()

	// Load the intact journal to learn the recomputed promotion set, then
	// swap the first full row for a probe row re-labeled "full" whose point
	// index is not the first promotion - contradicting the deterministic
	// full-row sequence.
	a, err := NewAdaptiveRun(sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoadJournal(path); err != nil {
		t.Fatal(err)
	}
	src := 1 // probe row of point 0
	if a.Promoted[0] == 0 {
		src = 2 // probe row of point 1
	}
	lines[n+1] = strings.Replace(lines[src], `"fidelity":"probe"`, `"fidelity":"full"`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := NewAdaptiveRun(sw)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := b.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.ProbeDone != n || b.FullDone != 0 || len(kept) != n {
		t.Fatalf("kept %d lines, ProbeDone=%d FullDone=%d; want all probes and no fulls",
			len(kept), b.ProbeDone, b.FullDone)
	}
}

// Probe rows that skip an index end the trusted prefix too.
func TestAdaptiveLoadJournalDistrustsGappedProbes(t *testing.T) {
	dir := t.TempDir()
	sw := adaptiveFixture(t, false, 1)
	path := filepath.Join(dir, "j.jsonl")
	if _, err := Run(context.Background(), sw, Options{Journal: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	// Drop probe row 2: everything from there on is distrusted.
	torn := append(append([]string{}, lines[:3]...), lines[4:]...)
	if err := os.WriteFile(path, []byte(strings.Join(torn, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := NewAdaptiveRun(sw)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := a.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.ProbeDone != 2 || len(kept) != 2 {
		t.Fatalf("ProbeDone=%d kept=%d, want 2", a.ProbeDone, len(kept))
	}
}
