// Package dse is the design-space exploration subsystem: it turns the
// hand-rolled sweep loops of the paper's evaluation (Fig. 7's bandwidth x
// buffer heatmap, the objective and seed sweeps, hardware co-design studies)
// into one declarative grid orchestrator on top of engine.Run.
//
// A Sweep declares axes - solver backends, platform presets, parametric
// hardware overrides (DRAM GB/s, GBUF MiB), models or multi-model scenarios,
// batches, objectives, seeds - and Expand crosses them into a deterministic
// point grid. Run executes the grid on a bounded worker pool with one shared
// evaluation cache (neighboring points on the seed and objective axes reuse
// each other's evaluations), streams per-point progress through
// engine.Hooks, and checkpoints completed rows to a JSONL journal committed
// strictly in point-index order - so an interrupted sweep resumes from its
// prefix without recomputation, and serial, parallel, and resumed runs of
// one spec produce byte-identical journals (rows are Scrubbed of the
// cache counters that depend on warmth and interleaving).
//
// Results are typed report.Result rows plus aggregates: the lowest-cost
// point, per-axis bests, and Pareto fronts such as cost vs buffer size (the
// Fig. 7 "how much buffer is this cost reduction worth" question).
//
// Every sweep surface routes here: `soma -sweep <file.json>` in the CLI,
// POST /v1/sweeps in the somad daemon (with SSE progress), and the
// internal/exp figure drivers (Fig7, Fig8, ObjectiveSweep, SeedSweep) are
// thin adapters over dse.Run. The spec schema and journal format are
// documented in docs/dse.md.
package dse
