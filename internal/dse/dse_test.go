package dse

import (
	"strings"
	"testing"

	"soma/internal/report"
	"soma/internal/soma"
)

func TestParseSweepStrict(t *testing.T) {
	sw, err := ParseSweep([]byte(`{"models":["resnet50"],"gbuf_mb":[4,8]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Models) != 1 || len(sw.GBufMB) != 2 {
		t.Fatalf("parsed = %+v", sw)
	}
	if _, err := ParseSweep([]byte(`{"modles":["resnet50"]}`)); err == nil {
		t.Fatal("typoed axis name accepted")
	}
	if _, err := ParseSweep([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		sw   Sweep
		want string // substring of the expected error ("" = valid)
	}{
		{"minimal model", Sweep{Models: []string{"resnet50"}}, ""},
		{"minimal scenario", Sweep{Scenarios: []string{"multi-tenant-cnn"}}, ""},
		{"no workload", Sweep{}, "at least one model"},
		{"unknown model", Sweep{Models: []string{"nope"}}, "unknown model"},
		{"unknown platform", Sweep{Models: []string{"resnet50"}, Platforms: []string{"tpu"}}, "unknown platform"},
		{"unknown backend", Sweep{Models: []string{"resnet50"}, Backends: []string{"magic"}}, "unknown backend"},
		{"unknown scenario", Sweep{Scenarios: []string{"nope"}}, "unknown"},
		{"scenario on cocco", Sweep{Scenarios: []string{"multi-tenant-cnn"}, Backends: []string{"cocco"}}, "soma backend only"},
		{"bad batch", Sweep{Models: []string{"resnet50"}, Batches: []int{0}}, "batch must be positive"},
		{"bad dram", Sweep{Models: []string{"resnet50"}, DRAMGBs: []float64{-1}}, "dram_gbps"},
		{"bad gbuf", Sweep{Models: []string{"resnet50"}, GBufMB: []int64{-4}}, "gbuf_mb"},
		{"bad profile", Sweep{Models: []string{"resnet50"}, Search: &Search{Profile: "turbo"}}, "unknown profile"},
	}
	for _, c := range cases {
		err := c.sw.Validate()
		switch {
		case c.want == "" && err != nil:
			t.Errorf("%s: unexpected error %v", c.name, err)
		case c.want != "" && err == nil:
			t.Errorf("%s: error not detected", c.name)
		case c.want != "" && !strings.Contains(err.Error(), c.want):
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestExpandOrderAndDefaults(t *testing.T) {
	sw := Sweep{
		Models:  []string{"resnet50", "mobilenetv2"},
		DRAMGBs: []float64{8, 16},
		GBufMB:  []int64{2, 4},
		Seeds:   []int64{1, 2},
	}
	pts, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*2*2*2 {
		t.Fatalf("points = %d, want 16", len(pts))
	}
	// Defaults fill the unset axes.
	if pts[0].Backend != "soma" || pts[0].Platform != "edge" || pts[0].Batch != 1 ||
		pts[0].Objective != (report.Objective{N: 1, M: 1}) {
		t.Fatalf("defaults not applied: %+v", pts[0])
	}
	// Canonical nesting: model is outer, then dram, gbuf, seed (innermost).
	if pts[0].Seed != 1 || pts[1].Seed != 2 {
		t.Fatalf("seed must be the innermost axis: %+v %+v", pts[0], pts[1])
	}
	if pts[0].GBufMB != 2 || pts[2].GBufMB != 4 {
		t.Fatalf("gbuf nesting wrong: %+v %+v", pts[0], pts[2])
	}
	if pts[0].DRAMGBs != 8 || pts[4].DRAMGBs != 16 {
		t.Fatalf("dram nesting wrong: %+v %+v", pts[0], pts[4])
	}
	if pts[0].Model != "resnet50" || pts[8].Model != "mobilenetv2" {
		t.Fatalf("model nesting wrong: %+v %+v", pts[0], pts[8])
	}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("index %d recorded as %d", i, p.Index)
		}
	}
	// Expansion is deterministic.
	again, _ := sw.Expand()
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, pts[i], again[i])
		}
	}
}

func TestExpandScenarioSkipsBatchAxis(t *testing.T) {
	sw := Sweep{Scenarios: []string{"multi-tenant-cnn"}, Batches: []int{1, 4}}
	pts, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("scenario points must ignore the batch axis: %d points", len(pts))
	}
	if pts[0].Scenario != "multi-tenant-cnn" || pts[0].Batch != 0 {
		t.Fatalf("point = %+v", pts[0])
	}
}

func TestPointRequestHWOverride(t *testing.T) {
	p := Point{Backend: "soma", Platform: "edge", Model: "resnet50", Batch: 1,
		DRAMGBs: 32, GBufMB: 8, Objective: report.Objective{N: 1, M: 1}, Seed: 7}
	req, err := p.Request(soma.FastParams())
	if err != nil {
		t.Fatal(err)
	}
	if req.Config == nil {
		t.Fatal("hw override not applied")
	}
	// DRAM-then-GBuf composition preserves the pre-dse Fig. 7 preset names.
	if req.Config.Name != "edge-d32-b8MB" {
		t.Fatalf("config name = %q", req.Config.Name)
	}
	if req.Config.DRAMBandwidth != 32 || req.Config.GBufBytes != 8<<20 {
		t.Fatalf("override values wrong: %+v", req.Config)
	}
	if req.Params.Seed != 7 {
		t.Fatalf("seed not stamped: %d", req.Params.Seed)
	}

	// Without overrides the preset resolves by name (Config stays nil).
	p.DRAMGBs, p.GBufMB = 0, 0
	req, err = p.Request(soma.FastParams())
	if err != nil || req.Config != nil {
		t.Fatalf("preset point must not override config: %+v %v", req.Config, err)
	}
}

func TestLabel(t *testing.T) {
	p := Point{Backend: "soma", Platform: "edge", Model: "resnet50", Batch: 4,
		DRAMGBs: 32, GBufMB: 8, Objective: report.Objective{N: 1, M: 2}, Seed: 3}
	want := "soma/edge/resnet50/b4/d32/g8MB/e1d2/s3"
	if p.Label() != want {
		t.Fatalf("label = %q, want %q", p.Label(), want)
	}
	sp := Point{Backend: "soma", Platform: "edge", Scenario: "multi-tenant-cnn",
		Objective: report.Objective{N: 1, M: 1}, Seed: 1}
	if got := sp.Label(); got != "soma/edge/scenario:multi-tenant-cnn/s1" {
		t.Fatalf("scenario label = %q", got)
	}
}

func TestSpecDigestStable(t *testing.T) {
	sw := Sweep{Models: []string{"resnet50"}, GBufMB: []int64{2, 4}}
	a, err := sw.SpecSHA256()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sw.SpecSHA256()
	if a != b || len(a) != 64 {
		t.Fatalf("digest unstable: %q vs %q", a, b)
	}
	sw.GBufMB = []int64{2, 8}
	if c, _ := sw.SpecSHA256(); c == a {
		t.Fatal("digest must change with the spec")
	}
}

func row(gbuf int64, cost float64) Row {
	return Row{Result: &report.Result{Cost: cost,
		Hardware: report.Hardware{GBufBytes: gbuf}}}
}

func TestFront(t *testing.T) {
	rows := []Row{
		row(2<<20, 10), // on front (smallest buffer)
		row(4<<20, 8),  // on front
		row(4<<20, 9),  // x-tie, higher cost: dominated
		row(8<<20, 8),  // more buffer, same cost: dominated
		row(16<<20, 5), // on front
		{Err: "infeasible"},
	}
	got := CostVsBufferFront(rows)
	want := []int{0, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("front = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("front = %v, want %v", got, want)
		}
	}
	// A single buffer size has no meaningful frontier.
	if CostVsBufferFront(rows[:1]) != nil {
		t.Fatal("single-size front must be nil")
	}
}

func TestBestPerAxis(t *testing.T) {
	rows := []Row{
		{Point: Point{Platform: "edge"}, Result: &report.Result{Cost: 5}},
		{Point: Point{Platform: "edge"}, Result: &report.Result{Cost: 3}},
		{Point: Point{Platform: "cloud"}, Result: &report.Result{Cost: 9}},
		{Point: Point{Platform: "cloud"}, Err: "boom"},
	}
	best := BestPerAxis(rows, func(p Point) string { return p.Platform })
	if best["edge"] != 1 || best["cloud"] != 2 {
		t.Fatalf("best = %v", best)
	}
}

func TestScrubbed(t *testing.T) {
	r := Row{Result: &report.Result{
		Cost: 7,
		Raw:  &report.Raw{},
		Search: &report.Search{AllocIters: 3, Stage2Cost: 7,
			CacheHits: 100, CacheMisses: 50, CacheEntries: 50, CacheGenerations: 1},
		Scenario: &report.ScenarioInfo{Components: []report.ScenarioComponent{
			{Isolated: &report.Result{Raw: &report.Raw{},
				Search: &report.Search{CacheHits: 9}}},
		}},
	}}
	s := r.Scrubbed()
	if s.Result.Raw != nil || s.Result.Search.CacheHits != 0 || s.Result.Search.CacheMisses != 0 {
		t.Fatalf("scrub incomplete: %+v", s.Result)
	}
	if iso := s.Result.Scenario.Components[0].Isolated; iso.Raw != nil || iso.Search.CacheHits != 0 {
		t.Fatalf("scenario component not scrubbed: %+v", iso)
	}
	// Search stats that describe the search itself survive.
	if s.Result.Search.AllocIters != 3 || s.Result.Search.Stage2Cost != 7 {
		t.Fatalf("over-scrubbed: %+v", s.Result.Search)
	}
	// The original row is untouched (scrub copies).
	if r.Result.Raw == nil || r.Result.Search.CacheHits != 100 ||
		r.Result.Scenario.Components[0].Isolated.Search.CacheHits != 9 {
		t.Fatalf("scrub mutated the source: %+v", r.Result)
	}
	if (Row{Err: "x"}).Scrubbed().Result != nil {
		t.Fatal("error rows pass through")
	}
}
