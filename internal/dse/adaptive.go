package dse

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"soma/internal/engine"
	"soma/internal/obs"
	"soma/internal/sim"
	"soma/internal/soma"
)

// Fidelity values carried by adaptive rows (Row.Fidelity). Exhaustive rows
// leave the field empty, which keeps pre-adaptive journals byte-identical
// under the extended schema.
const (
	FidelityProbe = "probe"
	FidelityFull  = "full"
)

// ProbeParams scales a resolved parameter set down to rung-0 probe fidelity:
// a single annealing chain with quartered stage multipliers and capped
// iteration counts. Probes exist to rank regions of the grid, not to find
// the best schedule, so they trade solution quality for a large constant
// factor in wall time. Deterministic: the probe of a point is as much a pure
// function of the spec as its full solve.
func ProbeParams(par soma.Params) soma.Params {
	par.Chains, par.Workers = 0, 0 // single chain, no portfolio
	if par.Beta1 > 1 {
		par.Beta1 = (par.Beta1 + 3) / 4
	}
	if par.Beta2 > 1 {
		par.Beta2 = (par.Beta2 + 3) / 4
	}
	if par.Stage1MaxIters > 800 {
		par.Stage1MaxIters = 800
	}
	if par.Stage2MaxIters > 1500 {
		par.Stage2MaxIters = 1500
	}
	par.Patience = 1
	return par
}

// AdaptiveStats summarizes what the successive-halving driver spent and
// saved; Outcome.Adaptive carries it for the CLI report, the somad API and
// the dse_adaptive_* metrics.
type AdaptiveStats struct {
	// Budget is the resolved full-fidelity cap; Probes the grid size
	// (every point is probed); Promotions the full solves actually issued,
	// of which Explored came from the seeded exploration quota rather than
	// the front band.
	Budget     int `json:"budget"`
	Probes     int `json:"probes"`
	Promotions int `json:"promotions"`
	Explored   int `json:"explored"`
	// SolvesSaved is Probes - Promotions: the full-fidelity solves an
	// exhaustive run of the same grid would have issued but this run
	// skipped.
	SolvesSaved int `json:"solves_saved"`
}

// AdaptiveRun is the deterministic state machine behind RunAdaptive and the
// cluster coordinator's adaptive path: grid expansion, the two-rung row
// stores, the promotion decision and the journal-resume rules all live here
// so the local and sharded drivers cannot drift. The journal layout is the
// dispatch sequence flattened: probe rows 0..N-1 in point-index order, then
// the promoted full-fidelity rows in ascending point-index order.
type AdaptiveRun struct {
	Sweep  Sweep
	Ad     Adaptive // resolved (withDefaults) block
	Pts    []Point
	Digest string

	// Probes is point-indexed (rung 0 is the identity sequence); Fulls is
	// promotion-order-indexed. ProbeDone/FullDone count the journal-resumed
	// prefix of each rung.
	Probes    []Row
	ProbeDone int
	Promoted  []int // ascending point indices promoted to full fidelity
	Explored  int   // how many of Promoted came from the exploration quota
	Fulls     []Row
	FullDone  int

	par   soma.Params
	dists []float64 // per-point probe front distance (NaN = failed/unscored)
}

// NewAdaptiveRun expands and validates an adaptive spec.
func NewAdaptiveRun(sw Sweep) (*AdaptiveRun, error) {
	if sw.Adaptive == nil {
		return nil, fmt.Errorf("dse: sweep spec has no adaptive block")
	}
	pts, err := sw.Expand()
	if err != nil {
		return nil, err
	}
	_, par, err := sw.normalized()
	if err != nil {
		return nil, err
	}
	digest, err := sw.SpecSHA256()
	if err != nil {
		return nil, err
	}
	return &AdaptiveRun{
		Sweep: sw, Ad: sw.Adaptive.withDefaults(len(pts)),
		Pts: pts, Digest: digest, par: par,
		Probes: make([]Row, len(pts)),
	}, nil
}

// LoadJournal loads the committed prefix of an adaptive journal into the
// run's rung stores and returns the raw prefix lines (rewritten verbatim by
// OpenJournal, so resumed rows never re-marshal). The trusted prefix ends at
// the first row that contradicts the deterministic sequence: a probe row out
// of index order, or a full row whose point is not the next recomputed
// promotion - everything after is distrusted, exactly like a torn tail.
func (a *AdaptiveRun) LoadJournal(path string) ([][]byte, error) {
	n := len(a.Pts)
	rows, lines, err := loadJournal(path, a.Digest, n, func(k int, row Row) bool {
		if k < n {
			return row.Point.Index == k && row.Fidelity == FidelityProbe
		}
		return row.Point.Index < n && row.Fidelity == FidelityFull
	})
	if err != nil {
		return nil, err
	}
	a.ProbeDone = len(rows)
	if a.ProbeDone > n {
		a.ProbeDone = n
	}
	copy(a.Probes, rows[:a.ProbeDone])
	if a.ProbeDone < n {
		return lines, nil
	}
	// Rung 0 is complete: the promotion set is a pure function of the probe
	// rows, so recompute it and validate the full-row tail against it.
	a.Promote()
	for _, row := range rows[n:] {
		if a.FullDone >= len(a.Promoted) || row.Point.Index != a.Promoted[a.FullDone] {
			break
		}
		a.Fulls[a.FullDone] = row
		a.FullDone++
	}
	return lines[:n+a.FullDone], nil
}

// Promote computes the rung-1 promotion set from the completed probe rows.
// Idempotent; a pure function of (probe rows, resolved adaptive block, spec
// seed), which is what lets a resumed or sharded run re-derive the same set.
func (a *AdaptiveRun) Promote() {
	if a.Promoted != nil || a.Fulls != nil {
		return
	}
	a.Promoted, a.Explored, a.dists = promote(a.Probes, a.Ad, a.par.Seed)
	a.Fulls = make([]Row, len(a.Promoted))
}

// promote is the Pareto-guided selection: rank successful probes by relative
// distance to the probe-level cost-vs-buffer front staircase, take the
// in-band closest up to budget minus the exploration quota, then fill the
// remaining budget by a seeded deterministic draw from the leftover pool.
// Failed probes are never promoted - their error row is the point's final
// answer, like an infeasible exhaustive cell.
func promote(probes []Row, ad Adaptive, seed int64) (promoted []int, explored int, dists []float64) {
	dists = make([]float64, len(probes))
	var ok []int
	for i := range dists {
		dists[i] = math.NaN()
		if probes[i].Err == "" && probes[i].Result != nil {
			ok = append(ok, i)
		}
	}
	if len(ok) == 0 {
		return nil, 0, dists
	}
	// dists[i] = (cost_i - f(buf_i)) / f(buf_i), where f is the front
	// staircase: the best probe cost achieved at or below i's buffer size.
	for _, i := range ok {
		front := math.Inf(1)
		for _, j := range ok {
			if probes[j].Result.Hardware.GBufBytes <= probes[i].Result.Hardware.GBufBytes &&
				probes[j].Result.Cost < front {
				front = probes[j].Result.Cost
			}
		}
		if front > 0 && !math.IsInf(front, 1) {
			dists[i] = (probes[i].Result.Cost - front) / front
		} else {
			dists[i] = 0
		}
	}

	budget := ad.Budget
	if budget > len(ok) {
		budget = len(ok)
	}
	quota := ad.Explore
	if quota > budget {
		quota = budget
	}
	ranked := append([]int(nil), ok...)
	sort.SliceStable(ranked, func(x, y int) bool {
		if dists[ranked[x]] != dists[ranked[y]] {
			return dists[ranked[x]] < dists[ranked[y]]
		}
		return ranked[x] < ranked[y]
	})
	chosen := map[int]bool{}
	for _, i := range ranked {
		if len(chosen) >= budget-quota || dists[i] > ad.Epsilon {
			break // band exhausted: leftover capacity goes to exploration
		}
		chosen[i] = true
	}
	// Exploration: fill the rest of the budget from the unchosen successful
	// pool, ordered by a fixed-seed permutation - deterministic for any
	// worker count, but not biased toward the (possibly misleading) probe
	// front.
	var pool []int
	for _, i := range ok {
		if !chosen[i] {
			pool = append(pool, i)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for _, p := range rng.Perm(len(pool)) {
		if len(chosen) >= budget {
			break
		}
		chosen[pool[p]] = true
		explored++
	}
	for i := range chosen {
		promoted = append(promoted, i)
	}
	sort.Ints(promoted)
	return promoted, explored, dists
}

// Outcome assembles the final adaptive outcome: one row per grid point in
// canonical index order - the full-fidelity row where the point was
// promoted, its probe row otherwise - so every exhaustive aggregate (Best,
// CostVsBufferFront, BestPerAxis, convergence scrubbing) works unchanged.
func (a *AdaptiveRun) Outcome(resumed int, cache sim.EvalCache) *Outcome {
	out := &Outcome{Name: a.Sweep.Name, SpecSHA256: a.Digest,
		Points: len(a.Pts), Resumed: resumed, BestIndex: -1}
	out.Rows = make([]Row, len(a.Pts))
	copy(out.Rows, a.Probes)
	for j, idx := range a.Promoted {
		out.Rows[idx] = a.Fulls[j]
	}
	bestCost := math.Inf(1)
	for i := range out.Rows {
		r := &out.Rows[i]
		if r.Err != "" {
			out.Failed++
			continue
		}
		if r.Result != nil && r.Result.Cost < bestCost {
			out.BestIndex, bestCost = i, r.Result.Cost
		}
	}
	out.Pareto = CostVsBufferFront(out.Rows)
	if cache != nil {
		out.Cache = cache.Stats()
	}
	out.Adaptive = &AdaptiveStats{
		Budget:      a.Ad.Budget,
		Probes:      len(a.Pts),
		Promotions:  len(a.Promoted),
		Explored:    a.Explored,
		SolvesSaved: len(a.Pts) - len(a.Promoted),
	}
	return out
}

// bestCostOf returns the outcome's best-cost hook value (-1 when every point
// failed, matching the Hooks convention).
func bestCostOf(out *Outcome) float64 {
	if b := out.Best(); b != nil {
		return b.Result.Cost
	}
	return -1
}

// RecordMetrics emits the dse_adaptive_* series after promotion: probe and
// promotion counts (front band vs exploration quota), the solves saved
// against an exhaustive run, and the front-distance histogram of the probe
// costs the decision ranked.
func (a *AdaptiveRun) RecordMetrics(o *obs.Obs) {
	reg := o.Registry()
	if reg == nil {
		return
	}
	reg.Counter("dse_adaptive_probes_total",
		"Probe-fidelity solves issued by adaptive sweeps.").Add(int64(len(a.Pts)))
	reg.Counter("dse_adaptive_promotions_total",
		"Points promoted to full fidelity, by selection kind.",
		"kind", "front").Add(int64(len(a.Promoted) - a.Explored))
	reg.Counter("dse_adaptive_promotions_total",
		"Points promoted to full fidelity, by selection kind.",
		"kind", "explore").Add(int64(a.Explored))
	reg.Counter("dse_adaptive_solves_saved_total",
		"Full-fidelity solves an exhaustive run would have issued but the adaptive driver skipped.").
		Add(int64(len(a.Pts) - len(a.Promoted)))
	h := reg.Histogram("dse_adaptive_front_distance",
		"Relative distance of each successful probe cost to the probe-level cost-vs-buffer front.")
	for _, d := range a.dists {
		if !math.IsNaN(d) {
			h.Observe(d)
		}
	}
}

// RunAdaptive executes an adaptive sweep locally: probe every grid point at
// reduced fidelity (rung 0), promote the budgeted points nearest the probe
// front plus a seeded exploration quota, and solve only those at full
// fidelity (rung 1). Journals share the exhaustive format and commit
// discipline - header, then rows at an in-order frontier (probes by point
// index, then promotions by point index) - so serial, parallel and
// interrupted-then-resumed adaptive runs produce byte-identical files and
// all exhaustive tooling (resume, aggregation, cluster sharding) applies
// per rung. Run dispatches here whenever the spec carries an adaptive block.
func RunAdaptive(ctx context.Context, sw Sweep, opt Options) (*Outcome, error) {
	a, err := NewAdaptiveRun(sw)
	if err != nil {
		return nil, err
	}
	var jw *JournalWriter
	resumed := 0
	if opt.Journal != "" {
		lines, err := a.LoadJournal(opt.Journal)
		if err != nil {
			return nil, err
		}
		if jw, err = OpenJournal(opt.Journal, sw, a.Digest, len(a.Pts), lines); err != nil {
			return nil, err
		}
		defer jw.Close()
		resumed = len(lines)
	}
	cache := opt.Cache
	if cache == nil {
		cache = sim.NewCache(0)
	}
	sr := &seqRun{pts: a.Pts, par: a.par, conv: sw.Convergence, workers: poolSize(sw),
		cache: cache, hooks: opt.Hooks, o: opt.Obs, jw: jw}

	opt.Hooks.Emit(engine.Event{Kind: "sweep-start", Component: sw.Name, Iter: len(a.Pts)})

	opt.Hooks.Emit(engine.Event{Kind: "rung-start", Component: sw.Name,
		Stage: FidelityProbe, Iter: len(a.Pts) - a.ProbeDone})
	sr.fid = FidelityProbe
	if err := sr.run(ctx, identitySeq(len(a.Pts)), a.ProbeDone, a.Probes); err != nil {
		return nil, err
	}
	a.ProbeDone = len(a.Pts)
	opt.Hooks.Emit(engine.Event{Kind: "rung-done", Component: sw.Name,
		Stage: FidelityProbe, Iter: len(a.Pts)})

	a.Promote()
	a.RecordMetrics(opt.Obs)

	opt.Hooks.Emit(engine.Event{Kind: "rung-start", Component: sw.Name,
		Stage: FidelityFull, Iter: len(a.Promoted) - a.FullDone})
	sr.fid = FidelityFull
	if err := sr.run(ctx, a.Promoted, a.FullDone, a.Fulls); err != nil {
		return nil, err
	}
	a.FullDone = len(a.Promoted)
	opt.Hooks.Emit(engine.Event{Kind: "rung-done", Component: sw.Name,
		Stage: FidelityFull, Iter: len(a.Promoted)})

	out := a.Outcome(resumed, cache)
	opt.Hooks.Emit(engine.Event{Kind: "sweep-done", Component: sw.Name, Cost: bestCostOf(out)})
	return out, nil
}
