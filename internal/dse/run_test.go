package dse

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"soma/internal/engine"
	"soma/internal/report"
	"soma/internal/soma"
)

// fastSweep is a 4-point grid (2 buffer sizes x 2 seeds) on the quickest
// model/profile combination in the repo; one full run takes well under a
// second.
func fastSweep(workers int) Sweep {
	par := soma.FastParams()
	par.Beta1, par.Beta2 = 2, 1
	return Sweep{
		Name:    "test-grid",
		Models:  []string{"mobilenetv2"},
		GBufMB:  []int64{2, 4},
		Seeds:   []int64{1, 2},
		Params:  &par,
		Workers: workers,
	}
}

func TestRunGrid(t *testing.T) {
	var mu sync.Mutex
	kinds := map[string]int{}
	hooks := &engine.Hooks{Event: func(e engine.Event) {
		mu.Lock()
		kinds[e.Kind]++
		mu.Unlock()
	}}
	out, err := Run(context.Background(), fastSweep(2), Options{Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	if out.Points != 4 || len(out.Rows) != 4 || out.Failed != 0 || out.Resumed != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	for i, r := range out.Rows {
		if r.Point.Index != i || r.Result == nil || r.Result.Cost <= 0 {
			t.Fatalf("row %d bad: %+v", i, r)
		}
		// In-process rows keep the Raw artifacts for figure callers.
		if r.Result.Raw == nil || r.Result.Raw.Schedule == nil {
			t.Fatalf("row %d lost Raw", i)
		}
	}
	if out.Best() == nil || out.Best().Result.Cost > out.Rows[0].Result.Cost {
		t.Fatalf("best = %+v", out.Best())
	}
	// Two buffer sizes -> a cost-vs-buffer frontier exists and starts at
	// the smaller buffer.
	if len(out.Pareto) == 0 {
		t.Fatal("no pareto front on a 2-buffer grid")
	}
	if first := out.Rows[out.Pareto[0]]; first.Point.GBufMB != 2 {
		t.Fatalf("front must start at the smallest buffer: %+v", first.Point)
	}
	if kinds["sweep-start"] != 1 || kinds["sweep-done"] != 1 ||
		kinds["point-start"] != 4 || kinds["point-done"] != 4 {
		t.Fatalf("event kinds = %v", kinds)
	}
}

func TestJournalIdenticalAcrossWorkerCounts(t *testing.T) {
	dir := t.TempDir()
	paths := map[int]string{1: filepath.Join(dir, "serial.jsonl"), 4: filepath.Join(dir, "par.jsonl")}
	for workers, path := range paths {
		if _, err := Run(context.Background(), fastSweep(workers), Options{Journal: path}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
	serial, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	par, err := os.ReadFile(paths[4])
	if err != nil {
		t.Fatal(err)
	}
	if string(serial) != string(par) {
		t.Fatalf("parallel journal differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
	if lines := strings.Count(string(serial), "\n"); lines != 5 { // header + 4 rows
		t.Fatalf("journal lines = %d", lines)
	}
}

func TestResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	if _, err := Run(context.Background(), fastSweep(1), Options{Journal: full}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a sweep killed after two committed points (plus a torn,
	// half-written third line, as a mid-write kill would leave).
	lines := strings.SplitAfter(string(want), "\n")
	prefix := strings.Join(lines[:3], "") + lines[3][:len(lines[3])/2]
	resumed := filepath.Join(dir, "resumed.jsonl")
	if err := os.WriteFile(resumed, []byte(prefix), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := Run(context.Background(), fastSweep(1), Options{Journal: resumed})
	if err != nil {
		t.Fatal(err)
	}
	if out.Resumed != 2 {
		t.Fatalf("resumed = %d, want 2", out.Resumed)
	}
	got, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed journal differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	// Resuming a complete journal recomputes nothing.
	out, err = Run(context.Background(), fastSweep(1), Options{Journal: full})
	if err != nil {
		t.Fatal(err)
	}
	if out.Resumed != 4 {
		t.Fatalf("complete journal resumed = %d, want 4", out.Resumed)
	}

	// A journal from a different spec must be refused, not mixed.
	other := fastSweep(1)
	other.GBufMB = []int64{2, 8}
	if _, err := Run(context.Background(), other, Options{Journal: full}); err == nil ||
		!strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("foreign journal accepted: %v", err)
	}
}

func TestCancelMidSweepLeavesCleanPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "canceled.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	hooks := &engine.Hooks{Event: func(e engine.Event) {
		if e.Kind == "point-done" && e.Iter == 0 {
			cancel() // stop the grid after the first committed point
		}
	}}
	sw := fastSweep(1)
	_, err := Run(ctx, sw, Options{Journal: path, Hooks: hooks})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	pts, _ := sw.Expand()
	digest, _ := sw.SpecSHA256()
	rows, _, err := LoadJournal(path, digest, len(pts))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows) >= len(pts) {
		t.Fatalf("canceled journal rows = %d (want a proper prefix of %d)", len(rows), len(pts))
	}
	for i, r := range rows {
		if r.Point.Index != i {
			t.Fatalf("journal prefix not in order at %d: %+v", i, r.Point)
		}
	}
}

func TestSharedCacheReuseAcrossGridPoints(t *testing.T) {
	par := soma.FastParams()
	par.Beta1, par.Beta2 = 2, 1
	objectives := []report.Objective{{N: 1, M: 1}, {N: 1, M: 2}}

	// Each objective alone, private caches: the no-sharing baseline.
	var aloneMisses, aloneHits int64
	for _, obj := range objectives {
		sw := Sweep{Models: []string{"mobilenetv2"}, Objectives: []report.Objective{obj},
			Params: &par, Workers: 1}
		out, err := Run(context.Background(), sw, Options{})
		if err != nil {
			t.Fatal(err)
		}
		aloneMisses += out.Cache.Misses
		aloneHits += out.Cache.Hits
	}

	// Both objectives in one sweep share the cache: metrics are
	// objective-independent, so neighboring grid points must reuse each
	// other's evaluations and the total miss count must strictly drop.
	sw := Sweep{Models: []string{"mobilenetv2"}, Objectives: objectives,
		Params: &par, Workers: 1}
	out, err := Run(context.Background(), sw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cache.Hits+out.Cache.Misses != aloneHits+aloneMisses {
		t.Fatalf("lookup volume changed with sharing: %+v vs alone hits=%d misses=%d",
			out.Cache, aloneHits, aloneMisses)
	}
	if out.Cache.Misses >= aloneMisses {
		t.Fatalf("no cross-point reuse: shared misses %d >= isolated misses %d",
			out.Cache.Misses, aloneMisses)
	}
	if out.Cache.Hits <= aloneHits {
		t.Fatalf("shared hits %d <= isolated hits %d", out.Cache.Hits, aloneHits)
	}
}

func TestWriteJournalMatchesFileJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "file.jsonl")
	sw := fastSweep(1)
	out, err := Run(context.Background(), sw, Options{Journal: path})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteJournal(&buf, sw, out); err != nil {
		t.Fatal(err)
	}
	file, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(file) {
		t.Fatal("WriteJournal output differs from the checkpoint file")
	}
}

// TestConvergenceRows: a sweep with the convergence field set carries the
// per-point diagnostics summary on every row, serial and parallel journals
// stay byte-identical, and the full Result.Convergence section never
// persists (its samples are cache-warmth-dependent).
func TestConvergenceRows(t *testing.T) {
	sweep := func(workers int) Sweep {
		sw := fastSweep(workers)
		sw.Convergence = true
		return sw
	}
	dir := t.TempDir()
	paths := map[int]string{1: filepath.Join(dir, "serial.jsonl"), 4: filepath.Join(dir, "par.jsonl")}
	outs := map[int]*Outcome{}
	for workers, path := range paths {
		out, err := Run(context.Background(), sweep(workers), Options{Journal: path})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		outs[workers] = out
	}
	for workers, out := range outs {
		for i, r := range out.Rows {
			if r.Convergence == nil {
				t.Fatalf("workers=%d row %d has no diagnostics", workers, i)
			}
			if r.Convergence.FinalBest != r.Result.Cost {
				t.Fatalf("workers=%d row %d: diagnostics FinalBest %g != cost %g",
					workers, i, r.Convergence.FinalBest, r.Result.Cost)
			}
			if r.Convergence.TotalMoves <= 0 {
				t.Fatalf("workers=%d row %d: empty diagnostics %+v", workers, i, r.Convergence)
			}
			if s := r.Scrubbed(); s.Result.Convergence != nil {
				t.Fatalf("workers=%d row %d: scrubbed row kept full convergence section", workers, i)
			}
		}
	}
	serial, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	par, err := os.ReadFile(paths[4])
	if err != nil {
		t.Fatal(err)
	}
	if string(serial) != string(par) {
		t.Fatal("convergence journal differs between serial and parallel runs")
	}
	if !strings.Contains(string(serial), `"convergence":{"stage":`) {
		t.Fatal("journal rows carry no convergence diagnostics")
	}

	// The digest must distinguish convergence sweeps from plain ones, so a
	// plain journal cannot resume into a diagnostics run.
	plain, err := fastSweep(1).SpecSHA256()
	if err != nil {
		t.Fatal(err)
	}
	conv, err := sweep(1).SpecSHA256()
	if err != nil {
		t.Fatal(err)
	}
	if plain == conv {
		t.Fatal("convergence field does not change the spec digest")
	}
}
