package dse

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"soma/internal/engine"
	"soma/internal/hw"
	"soma/internal/models"
	"soma/internal/obs"
	"soma/internal/report"
	"soma/internal/soma"
	"soma/internal/workload"
)

// Sweep declares a design-space exploration grid: every slice is one axis,
// and the grid is the cross product of all of them, expanded in a fixed,
// deterministic order (Expand). Empty axes select the usual single-value
// defaults - backend "soma", platform "edge", batch 1, the EDP objective,
// the profile's seed - so the minimal sweep is {"models": ["resnet50"]}.
//
// The struct doubles as the JSON sweep-spec schema consumed by
// `soma -sweep <file.json>` and `POST /v1/sweeps` (docs/dse.md documents
// every field with examples).
type Sweep struct {
	// Name labels the sweep in journals, progress events and reports.
	Name string `json:"name,omitempty"`

	// Backends is the solver axis ("soma", "cocco"; engine.Backends lists
	// the registered names). Default ["soma"].
	Backends []string `json:"backends,omitempty"`
	// Platforms is the named hardware-preset axis. Default ["edge"].
	Platforms []string `json:"platforms,omitempty"`
	// Models is the workload axis (model-zoo names). At least one of
	// Models or Scenarios must be non-empty.
	Models []string `json:"models,omitempty"`
	// Scenarios is the multi-model workload axis (built-in scenario
	// names; soma backend only). Scenario points ignore the batch axis -
	// a scenario carries its own per-component batches.
	Scenarios []string `json:"scenarios,omitempty"`
	// Batches is the batch-size axis for model points. Default [1].
	Batches []int `json:"batches,omitempty"`
	// DRAMGBs is the parametric DRAM-bandwidth axis in GB/s; each value
	// overrides the platform preset (hw.Config.WithDRAM). 0 keeps the
	// preset's bandwidth. Default [0].
	DRAMGBs []float64 `json:"dram_gbps,omitempty"`
	// GBufMB is the parametric global-buffer axis in MiB
	// (hw.Config.WithGBuf). 0 keeps the preset's capacity. Default [0].
	GBufMB []int64 `json:"gbuf_mb,omitempty"`
	// Objectives is the Energy^n x Delay^m exponent axis. Default EDP.
	Objectives []report.Objective `json:"objectives,omitempty"`
	// Seeds is the search-seed axis. Default: the resolved params' seed.
	Seeds []int64 `json:"seeds,omitempty"`

	// Search selects the search hyper-parameters by profile name plus
	// per-field overrides (the JSON-friendly form, mirroring the somad
	// job params).
	Search *Search `json:"search,omitempty"`
	// Params overrides Search with a fully explicit parameter set; the
	// in-process figure adapters (internal/exp) use it to pass their
	// already-resolved soma.Params through unchanged.
	Params *soma.Params `json:"params,omitempty"`

	// Workers bounds the goroutines running grid points concurrently
	// (<= 0 selects GOMAXPROCS-style NumCPU). Results and journal rows
	// are identical for any worker count.
	Workers int `json:"workers,omitempty"`

	// Convergence attaches per-point search diagnostics to every row
	// (Row.Convergence): the engine journals each point's annealing
	// trajectory and the row keeps the derived summary. The diagnostics
	// depend only on sampled move counts and costs, so journal rows stay
	// byte-identical for any worker count. Setting this changes the spec
	// digest - a journal written without diagnostics cannot resume into a
	// run that expects them.
	Convergence bool `json:"convergence,omitempty"`

	// Adaptive switches the sweep to the Pareto-guided successive-halving
	// driver (RunAdaptive, docs/dse.md): cheap probes across the whole grid,
	// then full-fidelity solves only for the budgeted points nearest the
	// probe-level cost-vs-buffer front plus a seeded exploration quota.
	// An empty block {} selects all defaults. Like Convergence, the block
	// is part of the spec digest - adaptive and exhaustive journals never
	// mix.
	Adaptive *Adaptive `json:"adaptive,omitempty"`
}

// Adaptive is the successive-halving block of a sweep spec. Zero values
// select grid-size-dependent defaults (withDefaults).
type Adaptive struct {
	// Budget caps the number of full-fidelity solves (rung 1). Default:
	// 30% of the grid, so an adaptive run spends well under half of the
	// exhaustive runs' full solves.
	Budget int `json:"budget,omitempty"`
	// Epsilon is the promotion band: a probed point is front-ranked when
	// its probe cost is within (1+Epsilon) of the probe-level front's cost
	// at its buffer size. Default 0.25.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Explore reserves part of the budget for a seeded-deterministic
	// random draw from outside the front band, so a misleading probe
	// cannot permanently hide a region. Default: Budget/8, at least 1
	// when the budget allows it.
	Explore int `json:"explore,omitempty"`
}

// withDefaults resolves the zero fields against a concrete grid size. The
// resolved block is what promotion, stats and journal resume all use, so
// the defaults are part of the deterministic contract.
func (a Adaptive) withDefaults(n int) Adaptive {
	if a.Budget <= 0 {
		a.Budget = (3*n + 9) / 10 // ceil(0.3 * n)
	}
	if a.Budget > n {
		a.Budget = n
	}
	if a.Epsilon <= 0 {
		a.Epsilon = 0.25
	}
	if a.Explore <= 0 {
		a.Explore = a.Budget / 8
		if a.Explore == 0 && a.Budget > 1 {
			a.Explore = 1
		}
	}
	if a.Explore >= a.Budget {
		a.Explore = a.Budget - 1
	}
	if a.Explore < 0 {
		a.Explore = 0
	}
	return a
}

// Search is the JSON-friendly search-parameter block of a sweep spec: a
// named profile plus the same per-field overrides the soma CLI flags and the
// somad job API accept.
type Search struct {
	// Profile is fast|default|paper (default: default).
	Profile string `json:"profile,omitempty"`
	// Seed overrides the profile's base seed (the Seeds axis, when set,
	// overrides this per point).
	Seed int64 `json:"seed,omitempty"`
	// Chains / Workers size the per-point annealing portfolio.
	Chains  int `json:"chains,omitempty"`
	Workers int `json:"workers,omitempty"`
	// Beta1 / Beta2 override the stage iteration multipliers.
	Beta1 int `json:"beta1,omitempty"`
	Beta2 int `json:"beta2,omitempty"`
}

// ParseSweep decodes a JSON sweep spec strictly (unknown fields are
// rejected, so a typoed axis name fails loudly instead of silently sweeping
// nothing).
func ParseSweep(data []byte) (Sweep, error) {
	var sw Sweep
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sw); err != nil {
		return Sweep{}, fmt.Errorf("dse: bad sweep spec: %w", err)
	}
	if dec.More() {
		return Sweep{}, fmt.Errorf("dse: bad sweep spec: trailing data after JSON object")
	}
	return sw, nil
}

// Params resolves the block into soma.Params: profile lookup, then the
// per-field overrides, including the CLI's Beta2 > 0 -> uncapped stage-2
// iterations coupling. The somad job API aliases this type and resolves
// through this same method, so job and sweep parameter semantics cannot
// drift.
func (s Search) Params() (soma.Params, error) {
	par, err := soma.ProfileParams(s.Profile)
	if err != nil {
		return soma.Params{}, err
	}
	if s.Seed != 0 {
		par.Seed = s.Seed
	}
	par.Chains = s.Chains
	par.Workers = s.Workers
	if s.Beta1 > 0 {
		par.Beta1 = s.Beta1
	}
	if s.Beta2 > 0 {
		par.Beta2 = s.Beta2
		par.Stage2MaxIters = 1 << 20
	}
	return par, nil
}

// resolveParams turns the spec's Search/Params blocks into the soma.Params
// every point starts from (the Seeds axis then stamps the per-point seed).
func (s Sweep) resolveParams() (soma.Params, error) {
	if s.Params != nil {
		return *s.Params, nil
	}
	var sr Search
	if s.Search != nil {
		sr = *s.Search
	}
	return sr.Params()
}

// normalized fills the single-value axis defaults.
func (s Sweep) normalized() (Sweep, soma.Params, error) {
	par, err := s.resolveParams()
	if err != nil {
		return s, par, err
	}
	if len(s.Backends) == 0 {
		s.Backends = []string{"soma"}
	}
	if len(s.Platforms) == 0 {
		s.Platforms = []string{"edge"}
	}
	if len(s.Batches) == 0 {
		s.Batches = []int{1}
	}
	if len(s.DRAMGBs) == 0 {
		s.DRAMGBs = []float64{0}
	}
	if len(s.GBufMB) == 0 {
		s.GBufMB = []int64{0}
	}
	if len(s.Objectives) == 0 {
		s.Objectives = []report.Objective{{N: 1, M: 1}}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{par.Seed}
	}
	return s, par, nil
}

// Validate rejects specs that cannot expand into a well-formed grid: unknown
// backends, models, scenarios or platforms, non-positive batches, negative
// hardware overrides, or a scenario axis paired with a non-soma backend.
// Per-point search failures (e.g. an infeasible buffer size) are not spec
// errors; they surface as error rows at run time, like the paper's
// infeasible Fig. 7 cells.
func (s Sweep) Validate() error {
	s, _, err := s.normalized()
	if err != nil {
		return err
	}
	if len(s.Models) == 0 && len(s.Scenarios) == 0 {
		return fmt.Errorf("dse: sweep needs at least one model or scenario")
	}
	for _, b := range s.Backends {
		if _, err := engine.Get(b); err != nil {
			return err
		}
		if b != "soma" && len(s.Scenarios) > 0 {
			return fmt.Errorf("dse: scenario points run the soma backend only, got %q", b)
		}
	}
	for _, p := range s.Platforms {
		if _, err := hw.Platform(p); err != nil {
			return err
		}
	}
	for _, m := range s.Models {
		if !models.Known(m) {
			return fmt.Errorf("dse: unknown model %q", m)
		}
	}
	for _, sc := range s.Scenarios {
		if _, err := workload.Builtin(sc); err != nil {
			return err
		}
	}
	for _, b := range s.Batches {
		if b <= 0 {
			return fmt.Errorf("dse: batch must be positive, got %d", b)
		}
	}
	for _, d := range s.DRAMGBs {
		if d < 0 {
			return fmt.Errorf("dse: dram_gbps must be >= 0, got %g", d)
		}
	}
	for _, g := range s.GBufMB {
		if g < 0 {
			return fmt.Errorf("dse: gbuf_mb must be >= 0, got %d", g)
		}
	}
	if a := s.Adaptive; a != nil {
		if a.Budget < 0 {
			return fmt.Errorf("dse: adaptive budget must be >= 0, got %d", a.Budget)
		}
		if a.Epsilon < 0 {
			return fmt.Errorf("dse: adaptive epsilon must be >= 0, got %g", a.Epsilon)
		}
		if a.Explore < 0 {
			return fmt.Errorf("dse: adaptive explore must be >= 0, got %d", a.Explore)
		}
	}
	return nil
}

// GridSize returns the number of points the spec expands to, without
// materializing them - servers bound request size with this before calling
// Expand. The product saturates at math.MaxInt on overflow.
func (s Sweep) GridSize() int {
	s, _, err := s.normalized()
	if err != nil {
		return 0
	}
	size := len(s.Models)*len(s.Batches) + len(s.Scenarios)
	for _, n := range []int{len(s.Backends), len(s.Platforms),
		len(s.DRAMGBs), len(s.GBufMB), len(s.Objectives), len(s.Seeds)} {
		if n != 0 && size > math.MaxInt/n {
			return math.MaxInt
		}
		size *= n
	}
	return size
}

// Expand validates the spec and enumerates the point grid in its canonical
// order: backend (outermost), platform, model then scenario, batch (model
// points only), DRAM bandwidth, buffer size, objective, seed (innermost).
// The order is part of the journal format - resuming a sweep relies on point
// indices meaning the same cell across processes.
func (s Sweep) Expand() ([]Point, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s, _, err := s.normalized()
	if err != nil {
		return nil, err
	}
	var pts []Point
	add := func(p Point) {
		p.Index = len(pts)
		pts = append(pts, p)
	}
	hwAxes := func(p Point) {
		for _, d := range s.DRAMGBs {
			for _, g := range s.GBufMB {
				for _, obj := range s.Objectives {
					for _, seed := range s.Seeds {
						q := p
						q.DRAMGBs, q.GBufMB, q.Objective, q.Seed = d, g, obj, seed
						add(q)
					}
				}
			}
		}
	}
	for _, b := range s.Backends {
		for _, pf := range s.Platforms {
			for _, m := range s.Models {
				for _, batch := range s.Batches {
					hwAxes(Point{Backend: b, Platform: pf, Model: m, Batch: batch})
				}
			}
			for _, sc := range s.Scenarios {
				hwAxes(Point{Backend: b, Platform: pf, Scenario: sc})
			}
		}
	}
	return pts, nil
}

// SpecSHA256 digests the canonical JSON encoding of the spec; journals store
// it so a resume against an edited spec fails instead of mixing grids. The
// worker-count knobs (grid workers, portfolio workers) are excluded: they
// only change wall-clock time, never any row, so a sweep journaled serially
// resumes under any parallelism.
func (s Sweep) SpecSHA256() (string, error) {
	s.Workers = 0
	if s.Search != nil {
		c := *s.Search
		c.Workers = 0
		s.Search = &c
	}
	if s.Params != nil {
		c := *s.Params
		c.Workers = 0
		s.Params = &c
	}
	data, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Point is one cell of the expanded grid.
type Point struct {
	// Index is the point's position in the canonical expansion order.
	Index int `json:"index"`
	// Backend / Platform / Model or Scenario / Batch locate the workload.
	Backend  string `json:"backend"`
	Platform string `json:"platform"`
	Model    string `json:"model,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	Batch    int    `json:"batch,omitempty"`
	// DRAMGBs / GBufMB are the parametric hardware overrides (0 = keep
	// the platform preset's value).
	DRAMGBs float64 `json:"dram_gbps,omitempty"`
	GBufMB  int64   `json:"gbuf_mb,omitempty"`
	// Objective / Seed are the per-point search goal and seed.
	Objective report.Objective `json:"objective"`
	Seed      int64            `json:"seed"`
}

// Label renders the point compactly for progress events and reports, e.g.
// "soma/edge/resnet50/b4/d32/g8MB".
func (p Point) Label() string {
	w := p.Model
	if p.Scenario != "" {
		w = "scenario:" + p.Scenario
	}
	s := fmt.Sprintf("%s/%s/%s", p.Backend, p.Platform, w)
	if p.Batch > 0 {
		s += fmt.Sprintf("/b%d", p.Batch)
	}
	if p.DRAMGBs > 0 {
		s += fmt.Sprintf("/d%g", p.DRAMGBs)
	}
	if p.GBufMB > 0 {
		s += fmt.Sprintf("/g%dMB", p.GBufMB)
	}
	if p.Objective.N != 1 || p.Objective.M != 1 {
		s += fmt.Sprintf("/e%gd%g", p.Objective.N, p.Objective.M)
	}
	return s + fmt.Sprintf("/s%d", p.Seed)
}

// Request materializes the engine request solving this point. Hardware
// overrides apply DRAM first, then GBuf - the same composition order the
// Fig. 7 sweep used, so preset names (and therefore payload headers) match
// the pre-dse drivers byte for byte.
func (p Point) Request(par soma.Params) (engine.Request, error) {
	par.Seed = p.Seed
	req := engine.Request{
		Backend:   p.Backend,
		Platform:  p.Platform,
		Objective: soma.Objective{N: p.Objective.N, M: p.Objective.M},
		Params:    par,
	}
	if p.Scenario != "" {
		sc, err := workload.Builtin(p.Scenario)
		if err != nil {
			return engine.Request{}, err
		}
		req.Scenario = &sc
	} else {
		req.Model = p.Model
		req.Batch = p.Batch
	}
	if p.DRAMGBs > 0 || p.GBufMB > 0 {
		cfg, err := hw.Platform(p.Platform)
		if err != nil {
			return engine.Request{}, err
		}
		if p.DRAMGBs > 0 {
			cfg = cfg.WithDRAM(p.DRAMGBs)
		}
		if p.GBufMB > 0 {
			cfg = cfg.WithGBuf(p.GBufMB << 20)
		}
		req.Config = &cfg
	}
	return req, nil
}

// Row is one completed grid point: the point, and either its result payload
// or the search error. Rows are what the journal persists and what the
// aggregation helpers consume.
type Row struct {
	Point Point `json:"point"`
	// Result is the engine payload (nil when Err is set). In-process rows
	// keep Result.Raw attached for trace/figure callers; journaled and
	// API-served rows are Scrubbed.
	Result *report.Result `json:"result,omitempty"`
	// Err records a per-point search failure (e.g. an infeasible buffer
	// size); the sweep itself keeps going, like Fig. 7's infeasible cells.
	Err string `json:"error,omitempty"`
	// Convergence is the per-point search-diagnostics summary, attached
	// when the spec sets "convergence". Unlike the full Result.Convergence
	// section - scrubbed from persisted rows because its samples carry
	// cache-warmth-dependent incremental counters - the diagnostics derive
	// only from sampled costs and move counts, so journaled rows stay
	// byte-identical across worker counts and resumes.
	Convergence *obs.Diagnostics `json:"convergence,omitempty"`
	// Fidelity marks adaptive rows: FidelityProbe for the scaled-down
	// rung-0 solve, FidelityFull for a promoted full solve. Exhaustive
	// rows leave it empty, so pre-adaptive journals are byte-identical
	// under the extended schema.
	Fidelity string `json:"fidelity,omitempty"`
}

// Scrubbed returns a copy of the row safe to persist and compare across
// runs: the Raw artifact section is dropped, and the evaluation-cache
// counters in the search stats are zeroed - they depend on cache warmth and
// worker interleaving, which would break the journal's guarantee that
// parallel and serial sweeps (and resumed and uninterrupted ones) produce
// byte-identical rows. Everything the schedule determines - cost, metrics,
// encoding digests - is preserved.
func (r Row) Scrubbed() Row {
	r.Result = scrubResult(r.Result)
	return r
}

func scrubResult(res *report.Result) *report.Result {
	if res == nil {
		return nil
	}
	out := *res
	out.Raw = nil
	// Telemetry is wall-clock (observability runs only) - as
	// interleaving-dependent as the cache counters, so it never persists.
	out.Telemetry = nil
	// The full convergence section's samples carry incremental-evaluation
	// counters that depend on cache warmth; the worker-count-stable summary
	// persists as Row.Convergence instead.
	out.Convergence = nil
	if res.Search != nil {
		s := *res.Search
		s.CacheHits, s.CacheMisses, s.CacheEntries, s.CacheGenerations = 0, 0, 0, 0
		s.CacheHitRate = 0
		out.Search = &s
	}
	if res.Scenario != nil {
		sc := *res.Scenario
		sc.Components = append([]report.ScenarioComponent(nil), sc.Components...)
		for i := range sc.Components {
			sc.Components[i].Isolated = scrubResult(sc.Components[i].Isolated)
		}
		out.Scenario = &sc
	}
	return &out
}
