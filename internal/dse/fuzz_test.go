package dse

import (
	"encoding/json"
	"testing"
)

// FuzzParseSweep drives the strict sweep-spec parser with arbitrary bytes.
// The parser must never panic, and every accepted spec must satisfy the
// round-trip fixed point: marshal re-parses, and a second marshal reproduces
// the first byte for byte (the property the spec digest and the journal
// header binding depend on).
func FuzzParseSweep(f *testing.F) {
	f.Add([]byte(`{"models": ["resnet50"]}`))
	f.Add([]byte(`{"name": "grid", "models": ["mobilenetv2"], "gbuf_mb": [2, 4],
		"seeds": [1, 2], "search": {"profile": "fast", "beta1": 2, "beta2": 1}}`))
	f.Add([]byte(`{"models": ["mobilenetv2"], "adaptive": {"budget": 3, "epsilon": 0.5, "explore": 1}}`))
	f.Add([]byte(`{"scenarios": ["multi-tenant-cnn"], "objectives": [{"n": 1, "m": 2}]}`))
	f.Add([]byte(`{"models": ["x"], "convergence": true, "workers": 3}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"models": ["a"]} trailing`))
	f.Add([]byte(`{"modles": ["a"]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sw, err := ParseSweep(data)
		if err != nil {
			return
		}
		b1, err := json.Marshal(sw)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		sw2, err := ParseSweep(b1)
		if err != nil {
			t.Fatalf("marshaled spec does not re-parse: %v\n%s", err, b1)
		}
		b2, err := json.Marshal(sw2)
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("round trip is not a fixed point:\n%s\n%s", b1, b2)
		}
	})
}
