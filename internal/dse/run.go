package dse

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"soma/internal/engine"
	"soma/internal/obs"
	"soma/internal/sim"
	"soma/internal/soma"
)

// Options configures one sweep execution.
type Options struct {
	// Cache shares one evaluation cache across every grid point (and, in
	// the somad daemon, across sweeps and plain jobs). The engine scopes
	// keys per (workload, batch, platform, hw-override) context, so
	// heterogeneous points never collide while same-workload neighbors -
	// seed and objective axes in particular - reuse each other's
	// evaluations. nil gives the sweep a private shared cache. Sharing
	// only changes lookup cost, never any result.
	Cache sim.EvalCache
	// Hooks streams sweep progress: "sweep-start" (Iter = grid size),
	// then per point "point-start" / "point-done" (Cost) / "point-error"
	// (Err), each tagged Component = Point.Label() and Iter = point
	// index, and finally "sweep-done" (Cost = best). nil disables
	// streaming. The somad SSE endpoint serves this stream verbatim.
	Hooks *engine.Hooks
	// Journal is the checkpoint file path ("" disables journaling). If
	// the file already holds a committed prefix of this exact sweep, those
	// points are loaded instead of recomputed and the run continues after
	// them; the finished file is byte-identical to an uninterrupted run's.
	Journal string
	// Obs, when non-nil, receives sweep telemetry (dse_points_total,
	// dse_point_seconds, dse_queue_wait_seconds plus everything the engine
	// and solvers emit) and per-point trace spans, each point on its own
	// track so concurrent points render as parallel timelines. Pure
	// pass-through: rows and journals are byte-identical with or without
	// it (Row.Scrubbed drops the wall-clock Telemetry section).
	Obs *obs.Obs
	// Fidelity selects the solve fidelity for RunPoints leases dispatched
	// by an adaptive rung: FidelityProbe runs the scaled-down ProbeParams
	// solve, FidelityFull (or "") the spec's full parameters. Rows are
	// stamped with it. Run ignores this field - exhaustive sweeps have no
	// fidelity axis and adaptive ones derive it per rung.
	Fidelity string
}

// Outcome is a completed (or resumed-and-completed) sweep: every grid row
// plus the summary aggregates.
type Outcome struct {
	Name       string `json:"name,omitempty"`
	SpecSHA256 string `json:"spec_sha256"`
	// Points is the grid size; Resumed counts rows loaded from the
	// journal instead of recomputed; Failed counts error rows.
	Points  int `json:"points"`
	Resumed int `json:"resumed"`
	Failed  int `json:"failed"`
	// Rows holds every grid point in canonical index order.
	Rows []Row `json:"rows"`
	// BestIndex is the lowest-cost successful row (-1 if none).
	BestIndex int `json:"best_index"`
	// Pareto lists the row indices on the cost-vs-buffer-size frontier
	// (ascending buffer), when the sweep spans more than one buffer size:
	// the Fig. 7 co-design question "how much buffer is this cost
	// reduction worth" as a typed aggregate.
	Pareto []int `json:"pareto,omitempty"`
	// Cache snapshots the evaluation cache after the sweep. Counters
	// depend on cache warmth and worker interleaving (unlike Rows, which
	// are deterministic).
	Cache sim.CacheStats `json:"cache"`
	// Adaptive summarizes the successive-halving run when the spec carried
	// an adaptive block (nil for exhaustive sweeps). For adaptive outcomes
	// Rows still holds one row per grid point: the full-fidelity row where
	// the point was promoted, its probe row otherwise.
	Adaptive *AdaptiveStats `json:"adaptive,omitempty"`
}

// Best returns the lowest-cost successful row (nil if every point failed).
func (o *Outcome) Best() *Row {
	if o.BestIndex < 0 || o.BestIndex >= len(o.Rows) {
		return nil
	}
	return &o.Rows[o.BestIndex]
}

// Scrub replaces every row with its Scrubbed form (no Raw artifacts, no
// cache counters) - what the somad API stores and serves.
func (o *Outcome) Scrub() {
	for i := range o.Rows {
		o.Rows[i] = o.Rows[i].Scrubbed()
	}
}

// WriteJSON emits the outcome as indented JSON.
func (o *Outcome) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(o)
}

// Run expands the sweep and executes every point through engine.Run on a
// bounded worker pool. Per-point search failures become error rows and the
// sweep continues; ctx cancellation stops the grid promptly (in-flight
// points abort mid-anneal via the engine's context threading) and returns
// ctx's error, leaving any journal holding the committed prefix.
//
// Determinism: each point's result is a pure function of the spec (the
// engine backends are seed-deterministic and cache sharing never changes
// results), journal rows are committed strictly in point-index order, and
// row payloads are Scrubbed of cache counters - so serial, parallel, and
// interrupted-then-resumed executions of one spec all produce byte-identical
// journals.
func Run(ctx context.Context, sw Sweep, opt Options) (*Outcome, error) {
	if sw.Adaptive != nil {
		return RunAdaptive(ctx, sw, opt)
	}
	pts, err := sw.Expand()
	if err != nil {
		return nil, err
	}
	_, par, err := sw.normalized()
	if err != nil {
		return nil, err
	}
	digest, err := sw.SpecSHA256()
	if err != nil {
		return nil, err
	}

	out := &Outcome{Name: sw.Name, SpecSHA256: digest, Points: len(pts), BestIndex: -1}
	out.Rows = make([]Row, len(pts))

	// Resume: load the committed prefix, rewrite it verbatim, continue.
	var jw *JournalWriter
	start := 0
	if opt.Journal != "" {
		rows, lines, err := LoadJournal(opt.Journal, digest, len(pts))
		if err != nil {
			return nil, err
		}
		if jw, err = OpenJournal(opt.Journal, sw, digest, len(pts), lines); err != nil {
			return nil, err
		}
		defer jw.Close()
		copy(out.Rows, rows)
		start = len(rows)
		out.Resumed = len(rows)
	}

	cache := opt.Cache
	if cache == nil {
		cache = sim.NewCache(0)
	}

	opt.Hooks.Emit(engine.Event{Kind: "sweep-start", Component: sw.Name, Iter: len(pts)})

	sr := &seqRun{pts: pts, par: par, conv: sw.Convergence, workers: poolSize(sw),
		cache: cache, hooks: opt.Hooks, o: opt.Obs, jw: jw}
	if err := sr.run(ctx, identitySeq(len(pts)), start, out.Rows); err != nil {
		return nil, err
	}

	bestCost := -1.0 // the Hooks convention for "no valid cost"
	for i := range out.Rows {
		r := &out.Rows[i]
		if r.Err != "" {
			out.Failed++
			continue
		}
		if r.Result != nil && (out.BestIndex < 0 || r.Result.Cost < bestCost) {
			out.BestIndex, bestCost = i, r.Result.Cost
		}
	}
	out.Pareto = CostVsBufferFront(out.Rows)
	out.Cache = cache.Stats()
	opt.Hooks.Emit(engine.Event{Kind: "sweep-done", Component: sw.Name, Cost: bestCost})
	return out, nil
}

// poolSize resolves the spec's grid-worker bound.
func poolSize(sw Sweep) int {
	if sw.Workers > 0 {
		return sw.Workers
	}
	return runtime.NumCPU()
}

// identitySeq is the exhaustive dispatch sequence: position == point index.
func identitySeq(n int) []int {
	seq := make([]int, n)
	for i := range seq {
		seq[i] = i
	}
	return seq
}

// seqRun executes one dispatch sequence of grid points - the whole grid for
// an exhaustive sweep, one rung for an adaptive one - on a bounded worker
// pool. seq[pos] is the point index solved at sequence position pos; the
// journal commits strictly in sequence order, which is what makes adaptive
// journals (probe rows, then promoted rows) as cleanly resumable as
// exhaustive ones.
type seqRun struct {
	pts     []Point
	par     soma.Params
	fid     string
	conv    bool
	workers int
	cache   sim.EvalCache
	hooks   *engine.Hooks
	o       *obs.Obs
	jw      *JournalWriter
}

// run executes seq[start:], storing each finished row at rows[pos] (rows is
// indexed by sequence position, len(rows) == len(seq)).
func (s *seqRun) run(ctx context.Context, seq []int, start int, rows []Row) error {
	// In-order journal commit: workers finish points in any order, but rows
	// hit the file strictly by sequence position, so an interrupted journal
	// is always a clean prefix.
	var (
		mu       sync.Mutex
		done     = make([]bool, len(seq))
		frontier = start
		werr     error
	)
	commit := func(pos int) {
		mu.Lock()
		defer mu.Unlock()
		done[pos] = true
		for frontier < len(seq) && done[frontier] {
			if s.jw != nil && werr == nil {
				werr = s.jw.Append(rows[frontier].Scrubbed())
			}
			frontier++
		}
	}

	queueWait := s.o.Registry().Histogram("dse_queue_wait_seconds",
		"Time sweep points wait for a worker slot.")

	var wg sync.WaitGroup
	sem := make(chan struct{}, s.workers)
	for pos := start; pos < len(seq); pos++ {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(pos int) {
			defer wg.Done()
			enqueued := time.Now()
			sem <- struct{}{}
			defer func() { <-sem }()
			queueWait.Observe(time.Since(enqueued).Seconds())
			if ctx.Err() != nil {
				return
			}
			rows[pos] = runPoint(ctx, s.pts[seq[pos]], s.par, s.cache, s.hooks, s.o, s.conv, s.fid)
			// Commit completed rows even if cancellation raced in right
			// after the solve finished - the journal keeps every point
			// that was actually paid for. Aborted points (neither result
			// nor error) stay uncommitted, stalling the in-order frontier
			// so the journal remains a clean prefix.
			if rows[pos].Result != nil || rows[pos].Err != "" {
				commit(pos)
			}
		}(pos)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	return werr
}

// RunPoints executes a subset of the sweep's expanded grid - the given point
// indices - and returns their Scrubbed rows in the same order. This is the
// lease-execution primitive the cluster worker serves and the coordinator
// falls back to locally when no worker can take a lease: because each row is
// a pure function of (spec, index), rows computed here are byte-identical to
// the rows a serial Run commits. No journal is written; indices outside the
// grid are an error.
func RunPoints(ctx context.Context, sw Sweep, indices []int, opt Options) ([]Row, error) {
	pts, err := sw.Expand()
	if err != nil {
		return nil, err
	}
	_, par, err := sw.normalized()
	if err != nil {
		return nil, err
	}
	for _, idx := range indices {
		if idx < 0 || idx >= len(pts) {
			return nil, fmt.Errorf("dse: point index %d outside grid of %d", idx, len(pts))
		}
	}
	cache := opt.Cache
	if cache == nil {
		cache = sim.NewCache(0)
	}
	rows := make([]Row, len(indices))
	var wg sync.WaitGroup
	sem := make(chan struct{}, poolSize(sw))
	for j, idx := range indices {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(j, idx int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			rows[j] = runPoint(ctx, pts[idx], par, cache, opt.Hooks, opt.Obs, sw.Convergence, opt.Fidelity).Scrubbed()
		}(j, idx)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	return rows, nil
}

// runPoint solves one grid cell. Engine failures other than cancellation
// become error rows - an infeasible (buffer, bandwidth) corner is data, not
// a reason to abort the grid. A FidelityProbe fid swaps in the scaled-down
// ProbeParams solve and stamps the row; fidelity is otherwise pass-through.
func runPoint(ctx context.Context, p Point, par soma.Params, cache sim.EvalCache,
	h *engine.Hooks, o *obs.Obs, convergence bool, fid string) Row {
	if fid == FidelityProbe {
		par = ProbeParams(par)
	}
	h.Emit(engine.Event{Kind: "point-start", Component: p.Label(), Stage: fid, Iter: p.Index})
	reg := o.Registry()
	start := time.Now()
	row := Row{Point: p, Fidelity: fid}
	req, err := p.Request(par)
	if err == nil {
		req.Cache = cache
		req.Obs = o
		if convergence {
			req.Journal = obs.NewJournal()
		}
		// Concurrent points must not share a trace track: each gets its own
		// row in the viewer, named by grid position (adaptive probe and full
		// solves of one point are distinct tracks).
		track := fmt.Sprintf("point-%03d", p.Index)
		if fid != "" {
			track += "-" + fid
		}
		req.TraceTrack = track + " " + p.Label()
		row.Result, err = engine.Run(ctx, req, nil)
	}
	reg.Histogram("dse_point_seconds",
		"Wall time of one sweep point solve.").Observe(time.Since(start).Seconds())
	if err != nil {
		if ctx.Err() != nil {
			// Aborted: the row stays uncommitted (the in-order frontier
			// stalls, keeping the journal a clean prefix), but the hook
			// stream records the cancellation *cause* - not the engine's
			// generic error string - so a lease the cluster coordinator
			// reassigned is distinguishable from a real point failure.
			reg.Counter("dse_points_total", "Sweep points by outcome.",
				"outcome", "canceled").Inc()
			h.Emit(engine.Event{Kind: "point-error", Component: p.Label(), Stage: fid,
				Iter: p.Index, Err: context.Cause(ctx).Error()})
			return row
		}
		row.Err = err.Error()
		reg.Counter("dse_points_total", "Sweep points by outcome.",
			"outcome", "error").Inc()
		h.Emit(engine.Event{Kind: "point-error", Component: p.Label(), Stage: fid, Iter: p.Index, Err: row.Err})
		return row
	}
	if row.Result.Convergence != nil {
		row.Convergence = row.Result.Convergence.Diagnostics
	}
	reg.Counter("dse_points_total", "Sweep points by outcome.",
		"outcome", "ok").Inc()
	h.Emit(engine.Event{Kind: "point-done", Component: p.Label(), Stage: fid, Iter: p.Index, Cost: row.Result.Cost})
	return row
}
