package dse

import (
	"fmt"
	"math/rand"
	"testing"

	"soma/internal/report"
)

// randomRows builds a row set with clustered buffer sizes, duplicated
// (buffer, cost) pairs, and a sprinkling of error rows - the degenerate
// shapes the front aggregates must stay deterministic over.
func randomRows(rng *rand.Rand, n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		if rng.Intn(8) == 0 {
			rows[i] = Row{Point: Point{Index: i}, Err: "solver exploded"}
			continue
		}
		buf := int64(1+rng.Intn(4)) << 20
		cost := float64(1+rng.Intn(6)) * 1e12
		rows[i] = Row{
			Point: Point{Index: i, Model: fmt.Sprintf("m%d", rng.Intn(3))},
			Result: &report.Result{
				Hardware: report.Hardware{GBufBytes: buf},
				Cost:     cost,
			},
		}
	}
	return rows
}

// frontValues projects front indices onto their (buffer, cost) pairs - the
// permutation-invariant identity of the front (index-based tie-breaks may
// pick a different duplicate row, but never a different value pair).
func frontValues(rows []Row, front []int) [][2]float64 {
	vals := make([][2]float64, len(front))
	for i, j := range front {
		vals[i] = [2]float64{float64(rows[j].Result.Hardware.GBufBytes), rows[j].Result.Cost}
	}
	return vals
}

// TestFrontPropertyRandomized: over random row sets and random permutations,
// the cost-vs-buffer front must (a) be a strict staircase, (b) dominate every
// successful row, and (c) select the same value pairs for any row order.
func TestFrontPropertyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		rows := randomRows(rng, 2+rng.Intn(24))
		front := Front(rows,
			func(r Row) float64 { return float64(r.Result.Hardware.GBufBytes) },
			func(r Row) float64 { return r.Result.Cost })

		// (a) Strict staircase: buffer strictly ascending, cost strictly
		// descending, error rows excluded.
		for i, j := range front {
			r := rows[j]
			if r.Err != "" || r.Result == nil {
				t.Fatalf("trial %d: error row %d on the front", trial, j)
			}
			if i > 0 {
				prev := rows[front[i-1]].Result
				if prev.Hardware.GBufBytes >= r.Result.Hardware.GBufBytes ||
					prev.Cost <= r.Result.Cost {
					t.Fatalf("trial %d: front is not a strict staircase at %d", trial, i)
				}
			}
		}

		// (b) Dominance: every successful row has a front row at most as
		// large and at most as costly.
		for j, r := range rows {
			if r.Err != "" || r.Result == nil {
				continue
			}
			dominated := false
			for _, k := range front {
				f := rows[k].Result
				if f.Hardware.GBufBytes <= r.Result.Hardware.GBufBytes &&
					f.Cost <= r.Result.Cost {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Fatalf("trial %d: row %d not covered by the front", trial, j)
			}
		}

		// (c) Order invariance of the selected value pairs, and of the
		// per-axis best costs.
		want := frontValues(rows, front)
		wantBest := bestCosts(rows)
		for p := 0; p < 5; p++ {
			perm := append([]Row(nil), rows...)
			rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
			got := frontValues(perm, Front(perm,
				func(r Row) float64 { return float64(r.Result.Hardware.GBufBytes) },
				func(r Row) float64 { return r.Result.Cost }))
			if len(got) != len(want) {
				t.Fatalf("trial %d: front size changed under permutation: %d vs %d",
					trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: front values changed under permutation at %d: %v vs %v",
						trial, i, got[i], want[i])
				}
			}
			if gotBest := bestCosts(perm); !equalMaps(gotBest, wantBest) {
				t.Fatalf("trial %d: BestPerAxis changed under permutation: %v vs %v",
					trial, gotBest, wantBest)
			}
		}
	}
}

// bestCosts is BestPerAxis projected onto costs (cost ties may pick a
// different row index under permutation, never a different cost).
func bestCosts(rows []Row) map[string]float64 {
	best := BestPerAxis(rows, func(p Point) string { return p.Model })
	out := make(map[string]float64, len(best))
	for k, i := range best {
		out[k] = rows[i].Result.Cost
	}
	return out
}

func equalMaps(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestBestPerAxisDominanceCorrect: the kept row of each group really is the
// group's minimum cost.
func TestBestPerAxisDominanceCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		rows := randomRows(rng, 1+rng.Intn(20))
		best := BestPerAxis(rows, func(p Point) string { return p.Model })
		for _, r := range rows {
			if r.Err != "" || r.Result == nil {
				continue
			}
			j, ok := best[r.Point.Model]
			if !ok {
				t.Fatalf("trial %d: successful row's group %q missing", trial, r.Point.Model)
			}
			if rows[j].Result.Cost > r.Result.Cost {
				t.Fatalf("trial %d: group %q kept cost %g, found %g",
					trial, r.Point.Model, rows[j].Result.Cost, r.Result.Cost)
			}
		}
		for k, j := range best {
			if rows[j].Err != "" || rows[j].Result == nil || rows[j].Point.Model != k {
				t.Fatalf("trial %d: group %q maps to a bad row", trial, k)
			}
		}
	}
}
