package graph

import "testing"

func TestPointwiseKernel(t *testing.T) {
	k := Pointwise()
	if k.KH != 1 || k.KW != 1 || k.SH != 1 || k.SW != 1 {
		t.Fatalf("Pointwise = %+v", k)
	}
	if k.HasHalo() {
		t.Fatal("pointwise kernel cannot have halo")
	}
	if !(Kernel{KH: 3, KW: 3, SH: 1, SW: 1}).HasHalo() {
		t.Fatal("3x3/s1 must have halo")
	}
	if (Kernel{KH: 2, KW: 2, SH: 2, SW: 2}).HasHalo() {
		t.Fatal("2x2/s2 must not have halo")
	}
	if !(Kernel{KH: 3, KW: 1, SH: 2, SW: 1}).HasHalo() {
		t.Fatal("asymmetric 3x1/s2x1 overlaps on H")
	}
}

func TestHasWeightsAndOutBytes(t *testing.T) {
	g := New("w", 2) // 2-byte elements
	in := g.Add(Layer{Name: "in", Kind: Input, Out: Shape{N: 1, C: 4, H: 2, W: 2}})
	c := g.Add(Layer{Name: "c", Kind: Conv, Deps: []Dep{{Producer: in}},
		Out: Shape{N: 1, C: 8, H: 2, W: 2}, WeightBytes: 32, Ops: 10})
	if !g.Layer(c).HasWeights() || g.Layer(in).HasWeights() {
		t.Fatal("HasWeights misclassifies")
	}
	if g.OutBytes(c) != 8*2*2*2 {
		t.Fatalf("OutBytes = %d", g.OutBytes(c))
	}
}

func TestDefaultLayerNaming(t *testing.T) {
	g := New("n", 1)
	in := g.Add(Layer{Kind: Input, Out: Shape{N: 1, C: 1, H: 1, W: 1}})
	if g.Layer(in).Name == "" {
		t.Fatal("unnamed layers must get a generated name")
	}
	if New("e", 0).ElemBytes != 1 {
		t.Fatal("zero elem width must clamp to 1")
	}
}
