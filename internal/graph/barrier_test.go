package graph

import (
	"strings"
	"testing"
)

// twoChains builds two independent conv chains (a0->a1, b0->b1) with a
// barrier a1 => b0, the shape scenario composition produces for sequential
// arrival.
func twoChains(t *testing.T) (*Graph, []LayerID) {
	t.Helper()
	g := New("barrier", 1)
	inA := g.Add(Layer{Name: "a/in", Kind: Input, Out: Shape{1, 3, 8, 8}})
	a0 := g.Add(Layer{Name: "a/c0", Kind: Conv, Deps: []Dep{{Producer: inA}},
		Out: Shape{1, 8, 8, 8}, Ops: 100, WeightBytes: 10})
	a1 := g.Add(Layer{Name: "a/c1", Kind: Conv, Deps: []Dep{{Producer: a0}},
		Out: Shape{1, 8, 8, 8}, Ops: 100, WeightBytes: 10})
	inB := g.Add(Layer{Name: "b/in", Kind: Input, Out: Shape{1, 3, 8, 8}})
	b0 := g.Add(Layer{Name: "b/c0", Kind: Conv, Deps: []Dep{{Producer: inB}},
		After: []LayerID{a1}, Out: Shape{1, 8, 8, 8}, Ops: 100, WeightBytes: 10})
	b1 := g.Add(Layer{Name: "b/c1", Kind: Conv, Deps: []Dep{{Producer: b0}},
		Out: Shape{1, 8, 8, 8}, Ops: 100, WeightBytes: 10})
	return g, []LayerID{inA, a0, a1, inB, b0, b1}
}

func TestBarrierValidatesAndOrders(t *testing.T) {
	g, ids := twoChains(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	a0, a1, b0, b1 := ids[1], ids[2], ids[4], ids[5]
	if !g.IsValidOrder([]LayerID{a0, a1, b0, b1}) {
		t.Fatal("barrier-respecting order rejected")
	}
	// Any order placing a b-layer before the barrier target is illegal.
	for _, bad := range [][]LayerID{
		{b0, a0, a1, b1},
		{a0, b0, a1, b1},
		{b0, b1, a0, a1},
	} {
		if g.IsValidOrder(bad) {
			t.Fatalf("order %v crosses the barrier but was accepted", bad)
		}
	}
	// Without the barrier the same interleaving is legal.
	g2 := New("free", 1)
	for _, l := range g.Layers {
		l2 := l
		l2.After = nil
		l2.Deps = append([]Dep(nil), l.Deps...)
		g2.Add(l2)
	}
	if !g2.IsValidOrder([]LayerID{b0, a0, b1, a1}) {
		t.Fatal("interleaving without barriers must be legal")
	}
}

// TestBarrierCarriesNoData: barriers must not create consumer edges - the
// predecessor keeps its network-output status and byte accounting.
func TestBarrierCarriesNoData(t *testing.T) {
	g, ids := twoChains(t)
	a1 := ids[2]
	if !g.IsOutput(a1) {
		t.Fatal("barrier predecessor lost its output status")
	}
	if len(g.Consumers(a1)) != 0 {
		t.Fatalf("barrier created consumers: %v", g.Consumers(a1))
	}
}

func TestBarrierValidateErrors(t *testing.T) {
	g := New("bad", 1)
	in := g.Add(Layer{Name: "in", Kind: Input, Out: Shape{1, 1, 1, 1}})
	c := g.Add(Layer{Name: "c", Kind: Conv, Deps: []Dep{{Producer: in}},
		Out: Shape{1, 1, 1, 1}, Ops: 1})
	// Barrier on an Input pseudo-layer is meaningless.
	g.Layers[c].After = []LayerID{in}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "input") {
		t.Fatalf("barrier on input accepted: %v", err)
	}
	// Barrier pointing forward breaks the construction invariant.
	g.Layers[c].After = []LayerID{c}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "later") {
		t.Fatalf("forward barrier accepted: %v", err)
	}
}

func TestBarrierAddPanicsOnUnknownTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add accepted a barrier on an unknown layer")
		}
	}()
	g := New("panic", 1)
	in := g.Add(Layer{Name: "in", Kind: Input, Out: Shape{1, 1, 1, 1}})
	g.Add(Layer{Name: "c", Kind: Conv, Deps: []Dep{{Producer: in}},
		After: []LayerID{99}, Out: Shape{1, 1, 1, 1}, Ops: 1})
}

func TestBarrierInDumpAndCriticalPath(t *testing.T) {
	g, _ := twoChains(t)
	if !strings.Contains(g.DumpLayers(), "after=[2]") {
		t.Fatalf("DumpLayers misses barriers:\n%s", g.DumpLayers())
	}
	// Barriers chain the two 2-deep chains into a 4-deep critical path.
	if got := g.CriticalPathLen(); got != 4 {
		t.Fatalf("CriticalPathLen = %d, want 4", got)
	}
}
