package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// chain builds input -> conv -> pool -> conv for reuse across tests.
func chain(t *testing.T) (*Graph, []LayerID) {
	t.Helper()
	g := New("chain", 1)
	in := g.Add(Layer{Name: "in", Kind: Input, Out: Shape{1, 3, 32, 32}})
	c1 := g.Add(Layer{Name: "c1", Kind: Conv, Deps: []Dep{{Producer: in}},
		Out: Shape{1, 16, 32, 32}, K: Kernel{3, 3, 1, 1, 1, 1},
		WeightBytes: 3 * 16 * 9, Ops: 2 * 3 * 16 * 9 * 32 * 32})
	p1 := g.Add(Layer{Name: "p1", Kind: Pool, Deps: []Dep{{Producer: c1}},
		Out: Shape{1, 16, 16, 16}, K: Kernel{2, 2, 2, 2, 0, 0}, Ops: 16 * 16 * 16 * 4})
	c2 := g.Add(Layer{Name: "c2", Kind: Conv, Deps: []Dep{{Producer: p1}},
		Out: Shape{1, 32, 16, 16}, K: Kernel{3, 3, 1, 1, 1, 1},
		WeightBytes: 16 * 32 * 9, Ops: 2 * 16 * 32 * 9 * 16 * 16})
	return g, []LayerID{in, c1, p1, c2}
}

func TestShapeAccounting(t *testing.T) {
	s := Shape{2, 64, 14, 14}
	if s.Elems() != 2*64*14*14 {
		t.Fatalf("Elems = %d", s.Elems())
	}
	if s.Bytes(2) != s.Elems()*2 {
		t.Fatalf("Bytes = %d", s.Bytes(2))
	}
	if !s.Valid() {
		t.Fatal("shape should be valid")
	}
	if (Shape{0, 1, 1, 1}).Valid() {
		t.Fatal("zero batch should be invalid")
	}
	if got := s.String(); got != "2x64x14x14" {
		t.Fatalf("String = %q", got)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Conv: "conv", DWConv: "dwconv", GEMM: "gemm", MatMul: "matmul",
		Pool: "pool", GlobalPool: "gpool", Eltwise: "eltwise",
		Activation: "act", Softmax: "softmax", LayerNorm: "layernorm",
		Concat: "concat", Input: "input",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should include its number")
	}
}

func TestKindOnPEArray(t *testing.T) {
	pe := []Kind{Conv, DWConv, GEMM, MatMul}
	vec := []Kind{Pool, GlobalPool, Eltwise, Activation, Softmax, LayerNorm, Concat, Input}
	for _, k := range pe {
		if !k.OnPEArray() {
			t.Errorf("%v should be on PE array", k)
		}
	}
	for _, k := range vec {
		if k.OnPEArray() {
			t.Errorf("%v should be on vector unit", k)
		}
	}
}

func TestInSpan(t *testing.T) {
	// 3x3 stride-1 pad-1 conv over 32 rows: output rows [0,8) need
	// input rows [0,9) after clamping the padded row.
	i0, i1 := InSpan(0, 8, 3, 1, 1, 32)
	if i0 != 0 || i1 != 9 {
		t.Fatalf("InSpan head = [%d,%d)", i0, i1)
	}
	// Middle tile has halo on both sides.
	i0, i1 = InSpan(8, 16, 3, 1, 1, 32)
	if i0 != 7 || i1 != 17 {
		t.Fatalf("InSpan mid = [%d,%d)", i0, i1)
	}
	// Stride-2 pooling has no halo (2x2 s2).
	i0, i1 = InSpan(4, 8, 2, 2, 0, 16)
	if i0 != 8 || i1 != 16 {
		t.Fatalf("InSpan pool = [%d,%d)", i0, i1)
	}
	// Clamping at the bottom.
	i0, i1 = InSpan(24, 32, 3, 1, 1, 32)
	if i0 != 23 || i1 != 32 {
		t.Fatalf("InSpan tail = [%d,%d)", i0, i1)
	}
}

func TestInSpanCoverageProperty(t *testing.T) {
	// Property: consecutive output intervals' input spans cover the whole
	// input and each span is non-empty for non-degenerate configs.
	f := func(kRaw, sRaw, hRaw uint8) bool {
		k := int(kRaw%5) + 1
		s := int(sRaw%3) + 1
		if s > k {
			s = k
		}
		p := (k - 1) / 2
		outH := int(hRaw%29) + 4
		inH := (outH-1)*s + k - 2*p
		if inH <= 0 {
			return true
		}
		half := outH / 2
		a0, a1 := InSpan(0, half, k, s, p, inH)
		b0, b1 := InSpan(half, outH, k, s, p, inH)
		if a0 != 0 || b1 != inH {
			return false
		}
		return b0 <= a1 // no uncovered gap between tiles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAddAssignsIDsAndConsumers(t *testing.T) {
	g, ids := chain(t)
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	for i, id := range ids {
		if int(id) != i {
			t.Fatalf("ids not dense: %v", ids)
		}
	}
	if got := g.Consumers(ids[1]); len(got) != 1 || got[0] != ids[2] {
		t.Fatalf("Consumers(c1) = %v", got)
	}
	if !g.IsOutput(ids[3]) {
		t.Fatal("c2 should be a graph output")
	}
	if g.IsOutput(ids[1]) {
		t.Fatal("c1 is consumed, not an output")
	}
}

func TestInputsAndComputeLayers(t *testing.T) {
	g, ids := chain(t)
	in := g.Inputs()
	if len(in) != 1 || in[0] != ids[0] {
		t.Fatalf("Inputs = %v", in)
	}
	cl := g.ComputeLayers()
	if len(cl) != 3 {
		t.Fatalf("ComputeLayers = %v", cl)
	}
	for _, id := range cl {
		if g.Layer(id).Kind == Input {
			t.Fatal("compute layers must exclude inputs")
		}
	}
}

func TestTotals(t *testing.T) {
	g, _ := chain(t)
	wantW := int64(3*16*9 + 16*32*9)
	if g.TotalWeightBytes() != wantW {
		t.Fatalf("TotalWeightBytes = %d want %d", g.TotalWeightBytes(), wantW)
	}
	if g.TotalOps() <= 0 {
		t.Fatal("TotalOps must be positive")
	}
}

func TestValidate(t *testing.T) {
	g, _ := chain(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	empty := New("empty", 1)
	if err := empty.Validate(); err == nil {
		t.Fatal("empty graph accepted")
	}
	bad := New("bad", 1)
	bad.Add(Layer{Name: "in", Kind: Input, Out: Shape{1, 1, 1, 1}})
	bad.Add(Layer{Name: "orphan", Kind: Conv, Out: Shape{1, 1, 1, 1}})
	if err := bad.Validate(); err == nil {
		t.Fatal("conv without inputs accepted")
	}
}

func TestValidateBatchMismatch(t *testing.T) {
	g := New("bm", 1)
	in := g.Add(Layer{Name: "in", Kind: Input, Out: Shape{2, 3, 8, 8}})
	g.Add(Layer{Name: "c", Kind: Conv, Deps: []Dep{{Producer: in}},
		Out: Shape{1, 4, 8, 8}, K: Kernel{1, 1, 1, 1, 0, 0}, Ops: 1})
	if err := g.Validate(); err == nil {
		t.Fatal("batch-changing local edge accepted")
	}
}

func TestAddPanicsOnBadDep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on forward dependency")
		}
	}()
	g := New("p", 1)
	g.Add(Layer{Name: "x", Kind: Conv, Deps: []Dep{{Producer: 5}}, Out: Shape{1, 1, 1, 1}})
}

func TestAddPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid shape")
		}
	}()
	g := New("p", 1)
	g.Add(Layer{Name: "x", Kind: Input, Out: Shape{0, 0, 0, 0}})
}

func TestIsValidOrder(t *testing.T) {
	g, ids := chain(t)
	good := []LayerID{ids[1], ids[2], ids[3]}
	if !g.IsValidOrder(good) {
		t.Fatal("topological order rejected")
	}
	bad := []LayerID{ids[2], ids[1], ids[3]}
	if g.IsValidOrder(bad) {
		t.Fatal("dependency-violating order accepted")
	}
	if g.IsValidOrder([]LayerID{ids[1], ids[2]}) {
		t.Fatal("incomplete order accepted")
	}
	if g.IsValidOrder([]LayerID{ids[1], ids[1], ids[3]}) {
		t.Fatal("duplicated order accepted")
	}
	if g.IsValidOrder([]LayerID{ids[0], ids[1], ids[2]}) {
		t.Fatal("order containing Input accepted")
	}
}

func TestIsValidOrderIndependentSwap(t *testing.T) {
	// Diamond: two independent branches may appear in either order.
	g := New("diamond", 1)
	in := g.Add(Layer{Name: "in", Kind: Input, Out: Shape{1, 8, 8, 8}})
	a := g.Add(Layer{Name: "a", Kind: Conv, Deps: []Dep{{Producer: in}}, Out: Shape{1, 8, 8, 8}, Ops: 1})
	b := g.Add(Layer{Name: "b", Kind: Conv, Deps: []Dep{{Producer: in}}, Out: Shape{1, 8, 8, 8}, Ops: 1})
	c := g.Add(Layer{Name: "c", Kind: Eltwise, Deps: []Dep{{Producer: a}, {Producer: b}}, Out: Shape{1, 8, 8, 8}, Ops: 1})
	if !g.IsValidOrder([]LayerID{a, b, c}) || !g.IsValidOrder([]LayerID{b, a, c}) {
		t.Fatal("independent branches should commute")
	}
	if g.IsValidOrder([]LayerID{c, a, b}) {
		t.Fatal("consumer before producers accepted")
	}
}

func TestTopoOrderIsValid(t *testing.T) {
	g, _ := chain(t)
	if !g.IsValidOrder(g.TopoOrder()) {
		t.Fatal("TopoOrder must be a valid order")
	}
}

func TestCriticalPathLen(t *testing.T) {
	g, _ := chain(t)
	if got := g.CriticalPathLen(); got != 3 {
		t.Fatalf("CriticalPathLen = %d want 3", got)
	}
}

func TestSummaryAndDump(t *testing.T) {
	g, _ := chain(t)
	if s := g.Summary(); !strings.Contains(s, "chain") {
		t.Fatalf("Summary = %q", s)
	}
	d := g.DumpLayers()
	for _, want := range []string{"c1", "p1", "c2", "conv"} {
		if !strings.Contains(d, want) {
			t.Fatalf("DumpLayers missing %q:\n%s", want, d)
		}
	}
	if len(g.SortedKinds()) < 3 {
		t.Fatalf("SortedKinds = %v", g.SortedKinds())
	}
	if g.Stats()["conv"] != 2 {
		t.Fatalf("Stats = %v", g.Stats())
	}
}

func TestRandomValidOrdersProperty(t *testing.T) {
	// Property: any order produced by repeatedly moving a random layer to
	// another random *legal* location stays valid.
	g := New("rand", 1)
	in := g.Add(Layer{Name: "in", Kind: Input, Out: Shape{1, 4, 16, 16}})
	prev := in
	var ids []LayerID
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		deps := []Dep{{Producer: prev}}
		if i > 2 && rng.Intn(2) == 0 { // extra skip edge
			deps = append(deps, Dep{Producer: ids[rng.Intn(len(ids))]})
		}
		id := g.Add(Layer{Kind: Conv, Deps: deps, Out: Shape{1, 4, 16, 16}, Ops: 10})
		ids = append(ids, id)
		prev = id
	}
	ord := append([]LayerID(nil), ids...)
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(len(ord))
		j := rng.Intn(len(ord))
		cand := append([]LayerID(nil), ord...)
		v := cand[i]
		cand = append(cand[:i], cand[i+1:]...)
		rest := append([]LayerID(nil), cand[j:]...)
		cand = append(append(cand[:j:j], v), rest...)
		if g.IsValidOrder(cand) {
			ord = cand
		}
	}
	if !g.IsValidOrder(ord) {
		t.Fatal("accumulated order became invalid")
	}
}

func TestGlobalDepDump(t *testing.T) {
	g := New("glob", 1)
	in := g.Add(Layer{Name: "in", Kind: Input, Out: Shape{1, 8, 4, 1}})
	q := g.Add(Layer{Name: "q", Kind: GEMM, Deps: []Dep{{Producer: in}}, Out: Shape{1, 8, 4, 1}, WeightBytes: 64, Ops: 100})
	k := g.Add(Layer{Name: "k", Kind: GEMM, Deps: []Dep{{Producer: in}}, Out: Shape{1, 8, 4, 1}, WeightBytes: 64, Ops: 100})
	g.Add(Layer{Name: "qk", Kind: MatMul,
		Deps: []Dep{{Producer: q}, {Producer: k, Global: true}},
		Out:  Shape{1, 4, 4, 1}, Ops: 100})
	if !strings.Contains(g.DumpLayers(), "*") {
		t.Fatal("global deps should be starred in dump")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
