// Package graph defines the DNN workload intermediate representation used by
// the whole framework: layers with 4-D output shapes, a dependency DAG with
// local (spatially aligned, possibly haloed) and global edges, and the op and
// byte accounting every downstream component (tiling, notation parser,
// evaluator) relies on.
//
// The representation deliberately stays close to what the paper's model
// parser consumes: each layer knows its output feature-map shape, its kernel
// geometry (for halo propagation), its weight footprint and its arithmetic
// cost. Transformer workloads reuse the same 4-D shape with H = token index.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// LayerID identifies a layer inside one Graph. IDs are dense indices assigned
// in insertion order, which makes them usable as slice indices everywhere.
type LayerID int

// None is the invalid layer id.
const None LayerID = -1

// Kind enumerates the operator classes the accelerator template supports.
// Conv and GEMM-like kinds run on the PE array; the rest run on the vector
// unit (Sec. II of the paper).
type Kind int

const (
	// Conv is a 2-D convolution (optionally strided/padded).
	Conv Kind = iota
	// DWConv is a depthwise convolution.
	DWConv
	// GEMM is a dense matrix multiply against static weights (FC layers,
	// transformer projections).
	GEMM
	// MatMul is an activation×activation matrix multiply (attention score
	// and attention×V). Its second operand is a global dependency.
	MatMul
	// Pool is max/average pooling.
	Pool
	// GlobalPool reduces the whole spatial extent (keeps N and C).
	GlobalPool
	// Eltwise is an element-wise binary op (residual add, mul).
	Eltwise
	// Activation is a unary map (ReLU, GeLU) - usually folded, kept for
	// completeness of irregular graphs.
	Activation
	// Softmax normalizes along the feature (C) axis, row-local.
	Softmax
	// LayerNorm normalizes along the feature axis, row-local.
	LayerNorm
	// Concat concatenates along C (inception branches).
	Concat
	// Input is the graph input pseudo-layer (no compute, no weights).
	Input
)

// String returns the lower-case kind name.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case DWConv:
		return "dwconv"
	case GEMM:
		return "gemm"
	case MatMul:
		return "matmul"
	case Pool:
		return "pool"
	case GlobalPool:
		return "gpool"
	case Eltwise:
		return "eltwise"
	case Activation:
		return "act"
	case Softmax:
		return "softmax"
	case LayerNorm:
		return "layernorm"
	case Concat:
		return "concat"
	case Input:
		return "input"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// OnPEArray reports whether the kind executes on the PE array (GEMM/conv
// engines); everything else uses the vector unit.
func (k Kind) OnPEArray() bool {
	switch k {
	case Conv, DWConv, GEMM, MatMul:
		return true
	}
	return false
}

// Shape is a 4-D feature-map shape. CNNs use the natural NCHW meaning;
// transformer layers use H for the token axis and W=1.
type Shape struct {
	N, C, H, W int
}

// Elems returns the number of elements in the shape.
func (s Shape) Elems() int64 {
	return int64(s.N) * int64(s.C) * int64(s.H) * int64(s.W)
}

// Bytes returns the byte footprint assuming the given element width.
func (s Shape) Bytes(elemBytes int) int64 { return s.Elems() * int64(elemBytes) }

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool { return s.N > 0 && s.C > 0 && s.H > 0 && s.W > 0 }

func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", s.N, s.C, s.H, s.W)
}

// Kernel describes the spatial window of conv/pool layers; it drives halo
// propagation during fused tiling. A pointwise op uses the zero value with
// KH=KW=SH=SW=1.
type Kernel struct {
	KH, KW int // window size
	SH, SW int // stride
	PH, PW int // padding (symmetric)
}

// Pointwise is the 1x1/stride-1 kernel used by layers with no spatial window.
func Pointwise() Kernel { return Kernel{KH: 1, KW: 1, SH: 1, SW: 1} }

// HasHalo reports whether fused tiles of this layer overlap on input rows.
func (k Kernel) HasHalo() bool { return k.KH > k.SH || k.KW > k.SW }

// InSpan maps an output index interval [o0,o1) to the input interval it
// reads, along one axis with window kw, stride s, padding p, clamped to
// [0,limit).
func InSpan(o0, o1, kw, s, p, limit int) (i0, i1 int) {
	i0 = o0*s - p
	i1 = (o1-1)*s - p + kw
	if i0 < 0 {
		i0 = 0
	}
	if i1 > limit {
		i1 = limit
	}
	if i1 < i0 {
		i1 = i0
	}
	return i0, i1
}

// Dep is one incoming dependency edge of a layer.
type Dep struct {
	// Producer is the layer whose output feeds this edge.
	Producer LayerID
	// Global marks edges whose consumer needs the producer's entire
	// spatial extent for its own batch rows (attention K/V operands,
	// global pooling). Batch samples stay independent, so batch tiling
	// still splits global edges; spatial tiling does not. Local edges
	// are tile-aligned with halo.
	Global bool
}

// Layer is one node of the workload DAG.
type Layer struct {
	ID   LayerID
	Name string
	Kind Kind

	// Deps are the incoming data edges, in operand order.
	Deps []Dep

	// Out is the output feature-map shape.
	Out Shape

	// K is the spatial window (meaningful for Conv/DWConv/Pool).
	K Kernel

	// WeightBytes is the static parameter footprint streamed from DRAM
	// once per execution (conv filters, GEMM weights, and - for decode
	// attention - the KV cache, which behaves exactly like weights).
	WeightBytes int64

	// WeightsPerSample marks weight-like state that belongs to individual
	// batch samples (the decode-phase KV cache): the bytes scale with the
	// batch slice a tile covers and are streamed per tile instead of
	// staying resident for the whole fusion group.
	WeightsPerSample bool

	// After lists ordering-only barrier predecessors: every tile of each
	// listed layer must be scheduled before any tile of this layer, but no
	// data flows over the edge - no DRAM tensor, no buffer interval, no
	// store obligation for the predecessor. Scenario composition uses
	// barriers to express sequential multi-model arrival (model B starts
	// after model A completes) without distorting either model's traffic.
	After []LayerID

	// Ops is the total arithmetic work of the whole layer for the whole
	// batch, counting one multiply-accumulate as 2 ops and one vector op
	// as 1 op.
	Ops int64
}

// HasWeights reports whether the layer loads parameters from DRAM.
func (l *Layer) HasWeights() bool { return l.WeightBytes > 0 }

// OutBytes is the full output footprint with the graph's element width.
func (g *Graph) OutBytes(id LayerID) int64 {
	return g.Layers[id].Out.Bytes(g.ElemBytes)
}

// Graph is a DNN workload: a DAG of layers plus global metadata.
type Graph struct {
	Name string
	// ElemBytes is the activation/weight element width (1 for INT8).
	ElemBytes int
	Layers    []Layer
	// consumers[id] lists the layers that consume id's output.
	consumers [][]LayerID
}

// New creates an empty graph with the given name and element width.
func New(name string, elemBytes int) *Graph {
	if elemBytes <= 0 {
		elemBytes = 1
	}
	return &Graph{Name: name, ElemBytes: elemBytes}
}

// Add appends a layer, assigning its ID. Dependencies must already exist.
// It panics on malformed layers: model-zoo construction is programmer
// controlled, so a panic here is a build bug, not a runtime condition.
func (g *Graph) Add(l Layer) LayerID {
	id := LayerID(len(g.Layers))
	l.ID = id
	if l.Name == "" {
		l.Name = fmt.Sprintf("%s%d", l.Kind, id)
	}
	if !l.Out.Valid() {
		panic(fmt.Sprintf("graph %s: layer %s has invalid shape %v", g.Name, l.Name, l.Out))
	}
	if l.K.KH == 0 { // default pointwise kernel
		l.K = Pointwise()
	}
	for _, d := range l.Deps {
		if d.Producer < 0 || int(d.Producer) >= len(g.Layers) {
			panic(fmt.Sprintf("graph %s: layer %s depends on unknown layer %d", g.Name, l.Name, d.Producer))
		}
	}
	for _, a := range l.After {
		if a < 0 || int(a) >= len(g.Layers) {
			panic(fmt.Sprintf("graph %s: layer %s has barrier on unknown layer %d", g.Name, l.Name, a))
		}
	}
	g.Layers = append(g.Layers, l)
	g.consumers = append(g.consumers, nil)
	for _, d := range l.Deps {
		g.consumers[d.Producer] = append(g.consumers[d.Producer], id)
	}
	return id
}

// Len returns the number of layers (including Input pseudo-layers).
func (g *Graph) Len() int { return len(g.Layers) }

// Layer returns the layer with the given id.
func (g *Graph) Layer(id LayerID) *Layer { return &g.Layers[id] }

// Consumers returns the layers that read id's output.
func (g *Graph) Consumers(id LayerID) []LayerID { return g.consumers[id] }

// IsOutput reports whether a layer's result leaves the network (no
// consumers). Such ofmaps must always be written back to DRAM.
func (g *Graph) IsOutput(id LayerID) bool { return len(g.consumers[id]) == 0 }

// Inputs returns the IDs of Input pseudo-layers.
func (g *Graph) Inputs() []LayerID {
	var in []LayerID
	for i := range g.Layers {
		if g.Layers[i].Kind == Input {
			in = append(in, LayerID(i))
		}
	}
	return in
}

// ComputeLayers returns the IDs of all non-Input layers in insertion order.
func (g *Graph) ComputeLayers() []LayerID {
	var out []LayerID
	for i := range g.Layers {
		if g.Layers[i].Kind != Input {
			out = append(out, LayerID(i))
		}
	}
	return out
}

// TotalOps sums arithmetic work over all layers.
func (g *Graph) TotalOps() int64 {
	var t int64
	for i := range g.Layers {
		t += g.Layers[i].Ops
	}
	return t
}

// TotalWeightBytes sums parameter bytes over all layers.
func (g *Graph) TotalWeightBytes() int64 {
	var t int64
	for i := range g.Layers {
		t += g.Layers[i].WeightBytes
	}
	return t
}

// Validate checks the structural invariants of the DAG: acyclicity (implied
// by construction order), shape agreement on local edges, and that Input
// layers have no dependencies.
func (g *Graph) Validate() error {
	if len(g.Layers) == 0 {
		return errors.New("graph: empty")
	}
	for i := range g.Layers {
		l := &g.Layers[i]
		if l.Kind == Input && len(l.Deps) != 0 {
			return fmt.Errorf("graph %s: input layer %s has dependencies", g.Name, l.Name)
		}
		if l.Kind != Input && len(l.Deps) == 0 {
			return fmt.Errorf("graph %s: layer %s has no inputs", g.Name, l.Name)
		}
		for _, d := range l.Deps {
			if d.Producer >= l.ID {
				return fmt.Errorf("graph %s: layer %s depends on later layer %d", g.Name, l.Name, d.Producer)
			}
			p := &g.Layers[d.Producer]
			if !d.Global && l.Kind != Concat && p.Out.N != l.Out.N {
				return fmt.Errorf("graph %s: local edge %s->%s changes batch %d->%d",
					g.Name, p.Name, l.Name, p.Out.N, l.Out.N)
			}
		}
		for _, a := range l.After {
			if a >= l.ID {
				return fmt.Errorf("graph %s: layer %s has barrier on later layer %d", g.Name, l.Name, a)
			}
			if g.Layers[a].Kind == Input {
				return fmt.Errorf("graph %s: layer %s has barrier on input layer %s", g.Name, l.Name, g.Layers[a].Name)
			}
		}
		if l.Ops < 0 || l.WeightBytes < 0 {
			return fmt.Errorf("graph %s: layer %s has negative accounting", g.Name, l.Name)
		}
	}
	return nil
}

// TopoOrder returns the insertion order restricted to compute layers, which
// is a valid topological order by construction.
func (g *Graph) TopoOrder() []LayerID { return g.ComputeLayers() }

// IsValidOrder reports whether ord is a permutation of the compute layers in
// which every dependency points leftward (the paper's legality rule for the
// Computing Order attribute).
func (g *Graph) IsValidOrder(ord []LayerID) bool {
	pos := make(map[LayerID]int, len(ord))
	for i, id := range ord {
		if int(id) < 0 || int(id) >= len(g.Layers) || g.Layers[id].Kind == Input {
			return false
		}
		if _, dup := pos[id]; dup {
			return false
		}
		pos[id] = i
	}
	if len(pos) != len(g.ComputeLayers()) {
		return false
	}
	for _, id := range ord {
		for _, d := range g.Layers[id].Deps {
			if g.Layers[d.Producer].Kind == Input {
				continue
			}
			if pos[d.Producer] >= pos[id] {
				return false
			}
		}
		// Barriers constrain the Computing Order exactly like data
		// dependencies even though they carry no bytes.
		for _, a := range g.Layers[id].After {
			if pos[a] >= pos[id] {
				return false
			}
		}
	}
	return true
}

// Summary renders a short human-readable description of the graph.
func (g *Graph) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d layers, %.2f GOPs, %.2f MB weights\n",
		g.Name, len(g.ComputeLayers()),
		float64(g.TotalOps())/1e9, float64(g.TotalWeightBytes())/(1<<20))
	return b.String()
}

// Stats aggregates per-kind counts, useful for tests and reports.
func (g *Graph) Stats() map[string]int {
	m := map[string]int{}
	for i := range g.Layers {
		m[g.Layers[i].Kind.String()]++
	}
	return m
}

// DumpLayers lists all layers in a stable, diff-friendly format.
func (g *Graph) DumpLayers() string {
	var b strings.Builder
	for i := range g.Layers {
		l := &g.Layers[i]
		deps := make([]string, 0, len(l.Deps))
		for _, d := range l.Deps {
			tag := ""
			if d.Global {
				tag = "*"
			}
			deps = append(deps, fmt.Sprintf("%d%s", d.Producer, tag))
		}
		after := ""
		if len(l.After) > 0 {
			parts := make([]string, len(l.After))
			for i, a := range l.After {
				parts[i] = fmt.Sprint(a)
			}
			after = " after=[" + strings.Join(parts, ",") + "]"
		}
		fmt.Fprintf(&b, "%4d %-28s %-9s out=%-18s w=%-10d ops=%-14d deps=[%s]%s\n",
			l.ID, l.Name, l.Kind, l.Out, l.WeightBytes, l.Ops, strings.Join(deps, ","), after)
	}
	return b.String()
}

// CriticalPathLen returns the number of layers on the longest dependency
// chain; used by tests to sanity-check generated model depth.
func (g *Graph) CriticalPathLen() int {
	depth := make([]int, len(g.Layers))
	best := 0
	for i := range g.Layers {
		d := 0
		for _, dep := range g.Layers[i].Deps {
			if depth[dep.Producer] > d {
				d = depth[dep.Producer]
			}
		}
		for _, a := range g.Layers[i].After {
			if depth[a] > d {
				d = depth[a]
			}
		}
		if g.Layers[i].Kind != Input {
			d++
		}
		depth[i] = d
		if d > best {
			best = d
		}
	}
	return best
}

// SortedKinds returns the distinct kinds present, sorted by name (test aid).
func (g *Graph) SortedKinds() []string {
	set := map[string]bool{}
	for i := range g.Layers {
		set[g.Layers[i].Kind.String()] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
