// Package cocco implements the paper's baseline: the Cocco framework
// (ASPLOS'24), expressed inside the Tensor-centric Notation as the subspace
// the paper maps it to (Sec. IV-B): only the Computing Order and the DRAM Cut
// set vary, the FLC Set is identical to the DRAM Cut Set (no weight-freeing
// fine-grained cuts), the Tiling Number comes from a conservative
// KC-parallelism/buffer-fit heuristic, and the DLSA is the classical
// double-buffer strategy.
package cocco

import (
	"context"
	"math"
	"math/rand"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/obs"
	"soma/internal/sa"
	"soma/internal/sim"
	"soma/internal/soma"
)

// Result is the baseline outcome.
type Result struct {
	Encoding *core.Encoding
	Schedule *core.Schedule
	Metrics  *sim.Metrics
	Cost     float64
	Stats    sa.Stats
}

// Explorer runs the Cocco search for one graph and platform.
type Explorer struct {
	G   *graph.Graph
	CS  *coresched.Scheduler
	Cfg hw.Config
	Obj soma.Objective
	Par soma.Params
	// Progress, when non-nil, receives solver progress callbacks with
	// Stage "cocco" (a start event, one improve event per incumbent
	// improvement, and a done event). It observes the search only and
	// never changes the result.
	Progress func(soma.Progress)
	// Reg, when non-nil, receives the annealer's move counters under the
	// "cocco" stage label; Track, when non-nil, is the trace track the
	// search span and best-cost samples land on. Observation only, like
	// Progress.
	Reg   *obs.Registry
	Track *obs.Track
	// Journal, when non-nil, collects the search's convergence trajectory
	// as a single "cocco" series (the baseline is one chain, one stage).
	// Pass-through observation only, like Reg.
	Journal *obs.Journal
}

// New builds a baseline explorer; Params.Beta1 scales its iteration budget
// (Beta2 is unused - Cocco has no second stage).
func New(g *graph.Graph, cfg hw.Config, obj soma.Objective, par soma.Params) *Explorer {
	return &Explorer{G: g, CS: coresched.New(cfg), Cfg: cfg, Obj: obj, Par: par}
}

// Run anneals order + DRAM cuts and returns the best baseline schedule.
func (e *Explorer) Run() (*Result, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation; a canceled search returns
// ctx.Err() so a serving layer can distinguish it from an infeasible one.
func (e *Explorer) RunContext(ctx context.Context) (*Result, error) {
	init := core.DefaultEncoding(e.G, 1)
	e.applyHeuristicTiling(init)
	iters := e.Par.Beta1 * len(init.Order)
	if e.Par.Stage1MaxIters > 0 && iters > e.Par.Stage1MaxIters {
		iters = e.Par.Stage1MaxIters
	}

	cfg := sa.Config{T0: e.Par.T0, Alpha: e.Par.Alpha, Iters: iters, Seed: e.Par.Seed,
		Telemetry: sa.NewTelemetry(e.Reg, "cocco")}
	if e.Progress != nil || e.Track != nil {
		if e.Progress != nil {
			e.Progress(soma.Progress{Stage: "cocco", Kind: "start", Budget: e.Cfg.GBufBytes})
		}
		cfg.OnImprove = func(iter int, cost float64) {
			if e.Progress != nil {
				e.Progress(soma.Progress{Stage: "cocco", Kind: "improve", Iter: iter, Cost: cost})
			}
			e.Track.Counter("best_cost/cocco", cost)
		}
	}
	if e.Journal != nil {
		cfg.Journal = e.Journal.Series("cocco", 0, 0)
	}
	span := e.Track.Start("cocco", "cocco").Arg("iters", iters)
	best, bestCost, stats := sa.RunMovesCtx[*core.Encoding](ctx, cfg, &coccoMoves{e: e, cur: init})
	span.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if math.IsInf(bestCost, 1) {
		return nil, soma.ErrNoFeasible
	}
	s, err := core.Parse(e.G, best)
	if err != nil {
		return nil, err
	}
	m, err := sim.Evaluate(s, e.CS, sim.Options{})
	if err != nil {
		return nil, err
	}
	if e.Progress != nil {
		e.Progress(soma.Progress{Stage: "cocco", Kind: "done", Cost: m.Cost(e.Obj.N, e.Obj.M)})
	}
	return &Result{Encoding: best, Schedule: s, Metrics: m,
		Cost: m.Cost(e.Obj.N, e.Obj.M), Stats: stats}, nil
}

// coccoMoves is the baseline's sa.MoveState. Every Cocco operator is
// structural - it changes the Computing Order or the DRAM cut set, which
// re-derives the tiling and produces a different tile/tensor set - so no
// incremental delta applies: each proposal parses and fully evaluates a
// cloned encoding (the move-aware contract's documented fallback), and
// Accept/Reject just swap or drop the clone.
type coccoMoves struct {
	e         *Explorer
	cur, cand *core.Encoding
	// kind names the operator the last productive Propose drew
	// (sa.MoveKinder, for the convergence journal).
	kind string
}

func (ms *coccoMoves) InitCost() float64 { return ms.cost(ms.cur) }

func (ms *coccoMoves) Propose(rng *rand.Rand) (float64, bool) {
	cand, kind, ok := ms.e.mutate(ms.cur, rng)
	if !ok {
		return 0, false
	}
	ms.cand, ms.kind = cand, kind
	return ms.cost(cand), true
}

func (ms *coccoMoves) Accept()                  { ms.cur = ms.cand }
func (ms *coccoMoves) Reject()                  {}
func (ms *coccoMoves) Snapshot() *core.Encoding { return ms.cur }
func (ms *coccoMoves) MoveKind() string         { return ms.kind }

// cost parses and fully evaluates one encoding (+Inf when illegal,
// deadlocked, or over budget).
func (ms *coccoMoves) cost(enc *core.Encoding) float64 {
	s, err := core.Parse(ms.e.G, enc)
	if err != nil {
		return math.Inf(1)
	}
	m, err := sim.Evaluate(s, ms.e.CS, sim.Options{})
	if err != nil || !m.BufferOK {
		return math.Inf(1)
	}
	return m.Cost(ms.e.Obj.N, ms.e.Obj.M)
}

// mutate applies one Cocco operator: move a layer, or toggle a DRAM cut
// (always re-deriving the heuristic tiling, since group membership changed).
// The returned name tags the operator for the convergence journal.
func (e *Explorer) mutate(enc *core.Encoding, rng *rand.Rand) (*core.Encoding, string, bool) {
	c := enc.Clone()
	n := len(c.Order)
	ok := false
	kind := ""
	switch rng.Intn(3) {
	case 0:
		kind = "order"
		ok = c.MoveLayer(e.G, rng.Intn(n), rng.Intn(n))
	case 1: // add a fusion boundary removal == merge two LGs
		kind = "merge"
		if len(c.FLCs) == 0 {
			return c, kind, false
		}
		ok = c.RemoveFLC(rng.Intn(len(c.FLCs)), 1)
	default: // split an LG at a random position
		kind = "split"
		p := 1 + rng.Intn(n-1)
		ok = c.AddFLC(p)
		if ok {
			// Cocco cuts are always DRAM cuts.
			for i, cut := range c.FLCs {
				if cut == p {
					c.IsDRAM[i] = true
				}
			}
		}
	}
	if !ok {
		return c, kind, false
	}
	e.applyHeuristicTiling(c)
	return c, kind, true
}

// applyHeuristicTiling sets every LG's tiling number with the baseline's
// conservative rule (shared with SoMa's initial solution, see
// soma.HeuristicTile): one KC-parallelism work quantum per tile, refined
// when the double-buffered working set would overflow its GBUF share.
// Deeper, wider groups and larger batches therefore tile finer - the
// behaviour the paper reports for Cocco.
func (e *Explorer) applyHeuristicTiling(enc *core.Encoding) {
	for i := range enc.IsDRAM {
		enc.IsDRAM[i] = true // FLC Set == DRAM Cut Set for Cocco
	}
	for f := 0; f < enc.NumFLGs(); f++ {
		enc.Tile[f] = soma.HeuristicTile(e.G, e.Cfg, enc.FLGLayers(f))
	}
}

// ApplyHeuristicTilingForTest exposes the tiling heuristic for probes and
// tests.
func (e *Explorer) ApplyHeuristicTilingForTest(enc *core.Encoding) {
	e.applyHeuristicTiling(enc)
}
