package cocco

import (
	"math"
	"testing"

	"soma/internal/core"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/soma"
)

func sh(n, c, h, w int) graph.Shape { return graph.Shape{N: n, C: c, H: h, W: w} }

func kr(kh, kw, s, sw, ph, pw int) graph.Kernel {
	return graph.Kernel{KH: kh, KW: kw, SH: s, SW: sw, PH: ph, PW: pw}
}

func testNet(t testing.TB, batch int) *graph.Graph {
	g := graph.New("c5", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh(batch, 16, 56, 56)})
	prev := in
	chans := []int{32, 32, 64, 64}
	for i, c := range chans {
		inC := g.Layer(prev).Out.C
		prev = g.Add(graph.Layer{Kind: graph.Conv, Deps: []graph.Dep{{Producer: prev}},
			Out: sh(batch, c, 56, 56), K: kr(3, 3, 1, 1, 1, 1),
			WeightBytes: int64(inC * c * 9), Ops: int64(2*inC*c*9*56*56) * int64(batch)})
		_ = i
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("testNet: %v", err)
	}
	return g
}

func TestCoccoRunProducesFeasibleBaseline(t *testing.T) {
	g := testNet(t, 1)
	res, err := New(g, hw.Edge(), soma.EDP(), soma.FastParams()).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Cost <= 0 || math.IsInf(res.Cost, 1) {
		t.Fatalf("cost = %g", res.Cost)
	}
	if !res.Metrics.BufferOK {
		t.Fatal("baseline exceeds buffer")
	}
	// Cocco's FLC Set must equal its DRAM Cut Set.
	for i := range res.Encoding.FLCs {
		if !res.Encoding.IsDRAM[i] {
			t.Fatal("Cocco produced a non-DRAM FLC")
		}
	}
}

func TestCoccoHeuristicTilingMonotonicity(t *testing.T) {
	g := testNet(t, 1)
	cfg := hw.Edge()
	// A heavier group (more weights, bigger fmaps) must not tile coarser.
	light := soma.HeuristicTile(g, cfg, []graph.LayerID{g.ComputeLayers()[0]})
	heavy := soma.HeuristicTile(g, cfg, g.ComputeLayers())
	if heavy < light {
		t.Fatalf("heavier group tiles coarser: %d < %d", heavy, light)
	}
	if light < 1 || heavy < 1 {
		t.Fatal("tiling numbers must be positive")
	}
}

func TestCoccoTilingGrowsWithBatch(t *testing.T) {
	g1, g8 := testNet(t, 1), testNet(t, 8)
	cfg := hw.Edge()
	t1 := soma.HeuristicTile(g1, cfg, g1.ComputeLayers())
	t8 := soma.HeuristicTile(g8, cfg, g8.ComputeLayers())
	if t8 <= t1 {
		t.Fatalf("batch 8 should tile finer: %d <= %d", t8, t1)
	}
}

func TestCoccoMutationKeepsInvariant(t *testing.T) {
	g := testNet(t, 1)
	e := New(g, hw.Edge(), soma.EDP(), soma.FastParams())
	enc := core.DefaultEncoding(g, 1)
	e.applyHeuristicTiling(enc)
	rng := newRand(3)
	for i := 0; i < 200; i++ {
		c, kind, ok := e.mutate(enc, rng)
		if kind == "" {
			t.Fatalf("iteration %d: unnamed operator", i)
		}
		if !ok {
			continue
		}
		if err := c.Check(g); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		for j := range c.FLCs {
			if !c.IsDRAM[j] {
				t.Fatalf("iteration %d: non-DRAM cut in Cocco encoding", i)
			}
		}
		enc = c
	}
}

func TestSoMaBeatsOrMatchesCocco(t *testing.T) {
	// SoMa explores a strict superset of Cocco's space; with equal search
	// effort on a fusable CNN it must not lose by more than noise.
	g := testNet(t, 1)
	p := soma.DefaultParams()
	base, err := New(g, hw.Edge(), soma.EDP(), p).Run()
	if err != nil {
		t.Fatal(err)
	}
	ours, err := soma.New(g, hw.Edge(), soma.EDP(), p).Run()
	if err != nil {
		t.Fatal(err)
	}
	if ours.Cost > base.Cost*1.05 {
		t.Fatalf("SoMa lost to Cocco: %g vs %g", ours.Cost, base.Cost)
	}
}
