// Package trace renders DRAM-COMPUTE execution graphs - the schedule
// diagrams of the paper's Fig. 2, Fig. 4 and Fig. 8 - as ASCII timelines.
//
// A rendering consumes a parsed schedule plus a traced evaluation
// (sim.Options.Trace) and draws:
//
//   - a COMPUTE row of tile blocks, one glyph run per computing tile;
//   - a DRAM row of load/store blocks in DRAM Tensor Order, which makes
//     prefetching (loads issued before their consuming tile) and delayed
//     storing (stores issued after their producing tile) visible as overlap
//     between the two rows;
//   - a BUFFER occupancy sparkline tracking GBUF usage over time;
//   - the fusion structure: FLC positions, DRAM cuts and tiling numbers of
//     the underlying encoding.
//
// Comparing the Cocco, stage-1 and stage-2 renderings of one workload
// (somabench fig8) reproduces the paper's qualitative argument: stage 1
// balances the two resource rows, stage 2 closes the remaining idle gaps.
package trace
