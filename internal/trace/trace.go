package trace

import (
	"fmt"
	"strings"

	"soma/internal/core"
	"soma/internal/sim"
)

// sparks are the buffer-occupancy glyphs from empty to full.
var sparks = []rune(" .:-=+*#%@")

// Render draws the execution graph with the given column width.
func Render(s *core.Schedule, m *sim.Metrics, width int) string {
	if width < 20 {
		width = 20
	}
	if m.TileStart == nil || m.TensorStart == nil {
		return "trace: evaluation was run without sim.Options.Trace\n"
	}
	total := m.LatencyNS
	if total <= 0 {
		return "trace: empty execution\n"
	}
	col := func(t float64) int {
		c := int(t / total * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: latency %.3f ms, util %.2f%% (bound %.2f%%), energy %.2f mJ ===\n",
		s.G.Name, m.LatencyNS/1e6, 100*m.Utilization, 100*m.TheoreticalMaxUtil, m.EnergyPJ/1e9)
	fmt.Fprintf(&b, "structure: %d LGs, %d FLGs, tiling %v, %d tiles, %d DRAM tensors (%.2f MB)\n",
		s.Enc.NumLGs(), s.Enc.NumFLGs(), s.Enc.Tile, s.NumTiles(), len(s.Tensors),
		float64(s.TotalDRAMBytes())/(1<<20))

	// COMPUTE row: one glyph per column; letters cycle per layer, '.' for
	// stall (idle compute).
	compute := make([]rune, width)
	for i := range compute {
		compute[i] = '.'
	}
	for i := range s.Tiles {
		glyph := rune('A' + int(s.Tiles[i].Layer)%26)
		for c := col(m.TileStart[i]); c <= col(m.TileEnd[i]-1e-9) && c < width; c++ {
			compute[c] = glyph
		}
	}
	// Mark LG boundaries on a separate ruler row.
	ruler := make([]rune, width)
	for i := range ruler {
		ruler[i] = ' '
	}
	for i := 1; i < s.NumTiles(); i++ {
		if s.Tiles[i].LG != s.Tiles[i-1].LG {
			ruler[col(m.TileStart[i])] = '|'
		} else if s.Tiles[i].FLG != s.Tiles[i-1].FLG {
			ruler[col(m.TileStart[i])] = ':'
		}
	}

	// DRAM row: W/I/O per kind, '.' for idle.
	dram := make([]rune, width)
	for i := range dram {
		dram[i] = '.'
	}
	for _, ts := range s.Tensors {
		glyph := []rune(ts.Kind.String())[0]
		lo := col(m.TensorStart[ts.ID])
		hi := col(m.TensorEnd[ts.ID] - 1e-9)
		for c := lo; c <= hi && c < width; c++ {
			dram[c] = glyph
		}
	}

	// BUFFER sparkline: usage sampled at each column's midpoint tile.
	usage := s.BufferUsage()
	buffer := make([]rune, width)
	peak := m.PeakBufferBytes
	if peak == 0 {
		peak = 1
	}
	tileAt := make([]int, width)
	for i := range tileAt {
		tileAt[i] = -1
	}
	for i := range s.Tiles {
		for c := col(m.TileStart[i]); c <= col(m.TileEnd[i]-1e-9) && c < width; c++ {
			tileAt[c] = i
		}
	}
	last := 0
	for c := 0; c < width; c++ {
		if tileAt[c] >= 0 {
			last = tileAt[c]
		}
		level := int(float64(usage[last]) / float64(peak) * float64(len(sparks)-1))
		buffer[c] = sparks[level]
	}

	fmt.Fprintf(&b, "CUTS    %s\n", string(ruler))
	fmt.Fprintf(&b, "COMPUTE %s\n", string(compute))
	fmt.Fprintf(&b, "DRAM    %s\n", string(dram))
	fmt.Fprintf(&b, "BUFFER  %s  (peak %.2f MB, avg %.2f MB)\n",
		string(buffer), float64(m.PeakBufferBytes)/(1<<20), m.AvgBufferBytes/(1<<20))
	fmt.Fprintf(&b, "legend: COMPUTE letters=tiles .=stall | DRAM W=weights I=ifmaps O=ofmaps .=idle | CUTS |=DRAM cut :=FLC\n")
	return b.String()
}

// Legend describes the layer-letter assignment of a schedule (the COMPUTE
// row cycles the alphabet by layer ID).
func Legend(s *core.Schedule) string {
	seen := map[rune]string{}
	order := []rune{}
	for _, id := range s.Enc.Order {
		g := rune('A' + int(id)%26)
		if _, ok := seen[g]; !ok {
			seen[g] = s.G.Layer(id).Name
			order = append(order, g)
		}
	}
	var b strings.Builder
	for i, g := range order {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%c=%s", g, seen[g])
		if i == 11 {
			b.WriteString(" ...")
			break
		}
	}
	b.WriteString("\n")
	return b.String()
}
