package trace

import (
	"strings"
	"testing"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/sim"
)

func sh(n, c, h, w int) graph.Shape { return graph.Shape{N: n, C: c, H: h, W: w} }

func tracedSchedule(t *testing.T) (*core.Schedule, *sim.Metrics) {
	g := graph.New("trace", 1)
	in := g.Add(graph.Layer{Name: "in", Kind: graph.Input, Out: sh(1, 8, 16, 16)})
	a := g.Add(graph.Layer{Name: "a", Kind: graph.Conv, Deps: []graph.Dep{{Producer: in}},
		Out: sh(1, 8, 16, 16), K: graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 576, Ops: 2 * 8 * 8 * 9 * 16 * 16})
	g.Add(graph.Layer{Name: "b", Kind: graph.Conv, Deps: []graph.Dep{{Producer: a}},
		Out: sh(1, 8, 16, 16), K: graph.Kernel{KH: 3, KW: 3, SH: 1, SW: 1, PH: 1, PW: 1},
		WeightBytes: 576, Ops: 2 * 8 * 8 * 9 * 16 * 16})
	s, err := core.Parse(g, core.DefaultEncoding(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Evaluate(s, coresched.New(hw.Edge()), sim.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

func TestRenderContainsAllRows(t *testing.T) {
	s, m := tracedSchedule(t)
	out := Render(s, m, 80)
	for _, want := range []string{"COMPUTE", "DRAM", "BUFFER", "CUTS", "legend", "LGs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Loads and stores must appear as glyphs in the DRAM row (tiny weight
	// blocks may be overpainted by wider co-located transfers).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "DRAM") &&
			(!strings.Contains(line, "I") || !strings.Contains(line, "O")) {
			t.Fatalf("DRAM row missing load/store blocks:\n%s", out)
		}
	}
}

func TestRenderWithoutTrace(t *testing.T) {
	s, _ := tracedSchedule(t)
	m := &sim.Metrics{LatencyNS: 100} // no trace slices
	out := Render(s, m, 80)
	if !strings.Contains(out, "without sim.Options.Trace") {
		t.Fatalf("missing trace warning: %q", out)
	}
}

func TestRenderClampsWidth(t *testing.T) {
	s, m := tracedSchedule(t)
	out := Render(s, m, 1) // clamped to 20
	if len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestLegend(t *testing.T) {
	s, _ := tracedSchedule(t)
	l := Legend(s)
	if !strings.Contains(l, "=a") || !strings.Contains(l, "=b") {
		t.Fatalf("legend = %q", l)
	}
}
