package hw

import (
	"errors"
	"fmt"
)

// Energy is the unit-energy table the evaluator multiplies traffic and work
// against. All values are picojoules.
type Energy struct {
	DRAMPerByte float64 // DRAM read/write energy per byte
	GBufPerByte float64 // GBUF access energy per byte
	L0PerByte   float64 // core-private L0 access energy per byte
	MACOp       float64 // one arithmetic op on the PE array (MAC = 2 ops)
	VecOp       float64 // one vector-unit op
	StaticPerNS float64 // leakage + clock tree per nanosecond, whole chip
}

// DefaultEnergy is a TSMC-12nm-class INT8 energy table. Absolute values are
// representative, relative ordering is what the experiments depend on.
func DefaultEnergy() Energy {
	return Energy{
		DRAMPerByte: 8.0,
		GBufPerByte: 0.6,
		L0PerByte:   0.12,
		MACOp:       0.04,
		VecOp:       0.08,
		StaticPerNS: 0.0, // kept explicit so DSE can enable it
	}
}

// Config is one accelerator instance.
type Config struct {
	Name string

	// Cores is the number of computing cores sharing the GBUF.
	Cores int
	// PEsPerCore is the number of MAC units in one core's PE array,
	// arranged as ArrayRows x ArrayCols (input-channel x output-channel,
	// the KC-parallel organization of TPU/DaVinci-class designs).
	ArrayRows, ArrayCols int
	// VecLanesPerCore is the vector unit width (ops per cycle per core).
	VecLanesPerCore int

	// FreqGHz is the core clock in GHz (cycles per nanosecond).
	FreqGHz float64

	// DRAMBandwidth is in bytes per nanosecond (== GB/s).
	DRAMBandwidth float64
	// GBufBytes is the shared global buffer capacity.
	GBufBytes int64
	// GBufBandwidth is the aggregate GBUF port bandwidth, bytes/ns.
	GBufBandwidth float64
	// L0Bytes is each core's private buffer capacity (per class: the
	// scheduler treats WL0 == AL0 == OL0 == L0Bytes for simplicity).
	L0Bytes int64

	// TileOverheadCycles is the fixed per-tile cost (descriptor decode,
	// pipeline fill/drain, synchronization) that penalizes very fine
	// tiling.
	TileOverheadCycles int64

	Energy Energy
}

// Validate rejects physically meaningless configurations.
func (c *Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return errors.New("hw: cores must be positive")
	case c.ArrayRows <= 0 || c.ArrayCols <= 0:
		return errors.New("hw: PE array dims must be positive")
	case c.FreqGHz <= 0:
		return errors.New("hw: frequency must be positive")
	case c.DRAMBandwidth <= 0:
		return errors.New("hw: DRAM bandwidth must be positive")
	case c.GBufBytes <= 0:
		return errors.New("hw: GBUF must be positive")
	case c.GBufBandwidth <= 0:
		return errors.New("hw: GBUF bandwidth must be positive")
	case c.L0Bytes <= 0:
		return errors.New("hw: L0 must be positive")
	case c.VecLanesPerCore <= 0:
		return errors.New("hw: vector lanes must be positive")
	}
	return nil
}

// MACsPerCore is the per-core MAC count.
func (c *Config) MACsPerCore() int { return c.ArrayRows * c.ArrayCols }

// PeakOpsPerNS is the whole-chip peak arithmetic rate in ops per nanosecond
// (1 MAC = 2 ops), i.e. peak TOPS.
func (c *Config) PeakOpsPerNS() float64 {
	return 2 * float64(c.Cores*c.MACsPerCore()) * c.FreqGHz
}

// PeakTOPS is the headline peak rate in tera-ops/second.
func (c *Config) PeakTOPS() float64 { return c.PeakOpsPerNS() / 1000 }

// PeakVecOpsPerNS is the whole-chip peak vector rate in ops/ns.
func (c *Config) PeakVecOpsPerNS() float64 {
	return float64(c.Cores*c.VecLanesPerCore) * c.FreqGHz
}

// CyclesToNS converts core cycles to nanoseconds.
func (c *Config) CyclesToNS(cycles float64) float64 { return cycles / c.FreqGHz }

func (c *Config) String() string {
	return fmt.Sprintf("%s: %d cores x %dx%d PEs @ %.1fGHz = %.1f TOPS, GBUF %.0f MB, DRAM %.0f GB/s",
		c.Name, c.Cores, c.ArrayRows, c.ArrayCols, c.FreqGHz, c.PeakTOPS(),
		float64(c.GBufBytes)/(1<<20), c.DRAMBandwidth)
}

// Edge is the paper's default 16 TOPS edge platform: 8 MB GBUF, 16 GB/s
// LPDDR-class DRAM (Sec. VI-A, chosen from the Fig. 7 DSE sweet spot).
func Edge() Config {
	return Config{
		Name:               "edge",
		Cores:              8,
		ArrayRows:          32,
		ArrayCols:          32,
		VecLanesPerCore:    128,
		FreqGHz:            1.0,
		DRAMBandwidth:      16,
		GBufBytes:          8 << 20,
		GBufBandwidth:      256,
		L0Bytes:            64 << 10,
		TileOverheadCycles: 500,
		Energy:             DefaultEnergy(),
	}
}

// Cloud is the paper's 128 TOPS cloud platform: 32 MB GBUF, 128 GB/s DRAM.
func Cloud() Config {
	return Config{
		Name:               "cloud",
		Cores:              16,
		ArrayRows:          64,
		ArrayCols:          64,
		VecLanesPerCore:    512,
		FreqGHz:            1.0,
		DRAMBandwidth:      128,
		GBufBytes:          32 << 20,
		GBufBandwidth:      1024,
		L0Bytes:            256 << 10,
		TileOverheadCycles: 500,
		Energy:             DefaultEnergy(),
	}
}

// WithDRAM returns a copy with a different DRAM bandwidth (GB/s). Used by the
// Fig. 7 design-space exploration.
func (c Config) WithDRAM(gbps float64) Config {
	c.DRAMBandwidth = gbps
	c.Name = fmt.Sprintf("%s-d%g", c.Name, gbps)
	return c
}

// WithGBuf returns a copy with a different GBUF capacity in bytes.
func (c Config) WithGBuf(bytes int64) Config {
	c.GBufBytes = bytes
	c.Name = fmt.Sprintf("%s-b%dMB", c.Name, bytes>>20)
	return c
}
