package hw

import (
	"strings"
	"testing"
)

func TestEdgePreset(t *testing.T) {
	e := Edge()
	if err := e.Validate(); err != nil {
		t.Fatalf("edge invalid: %v", err)
	}
	// The paper sets the edge platform to ~16 TOPS.
	if got := e.PeakTOPS(); got < 15 || got > 18 {
		t.Fatalf("edge peak = %.2f TOPS, want ~16", got)
	}
	if e.GBufBytes != 8<<20 {
		t.Fatalf("edge GBUF = %d, want 8 MB", e.GBufBytes)
	}
	if e.DRAMBandwidth != 16 {
		t.Fatalf("edge DRAM = %g GB/s, want 16", e.DRAMBandwidth)
	}
}

func TestCloudPreset(t *testing.T) {
	c := Cloud()
	if err := c.Validate(); err != nil {
		t.Fatalf("cloud invalid: %v", err)
	}
	if got := c.PeakTOPS(); got < 120 || got > 140 {
		t.Fatalf("cloud peak = %.2f TOPS, want ~128", got)
	}
	if c.GBufBytes != 32<<20 {
		t.Fatalf("cloud GBUF = %d, want 32 MB", c.GBufBytes)
	}
	if c.DRAMBandwidth != 128 {
		t.Fatalf("cloud DRAM = %g GB/s, want 128", c.DRAMBandwidth)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.ArrayRows = 0 },
		func(c *Config) { c.ArrayCols = -1 },
		func(c *Config) { c.FreqGHz = 0 },
		func(c *Config) { c.DRAMBandwidth = 0 },
		func(c *Config) { c.GBufBytes = 0 },
		func(c *Config) { c.GBufBandwidth = 0 },
		func(c *Config) { c.L0Bytes = 0 },
		func(c *Config) { c.VecLanesPerCore = 0 },
	}
	for i, m := range mods {
		c := Edge()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mod %d: invalid config accepted", i)
		}
	}
}

func TestConversions(t *testing.T) {
	e := Edge()
	if e.CyclesToNS(1000) != 1000 { // 1 GHz: 1 cycle = 1 ns
		t.Fatalf("CyclesToNS = %g", e.CyclesToNS(1000))
	}
	e.FreqGHz = 2
	if e.CyclesToNS(1000) != 500 {
		t.Fatalf("CyclesToNS@2GHz = %g", e.CyclesToNS(1000))
	}
	if e.MACsPerCore() != 32*32 {
		t.Fatalf("MACsPerCore = %d", e.MACsPerCore())
	}
	if e.PeakVecOpsPerNS() <= 0 {
		t.Fatal("vector peak must be positive")
	}
}

func TestEnergyOrdering(t *testing.T) {
	en := DefaultEnergy()
	if !(en.DRAMPerByte > en.GBufPerByte && en.GBufPerByte > en.L0PerByte) {
		t.Fatalf("energy ordering violated: %+v", en)
	}
	if en.MACOp <= 0 || en.VecOp <= 0 {
		t.Fatalf("op energies must be positive: %+v", en)
	}
	// DRAM must dominate on-chip traffic by a wide margin for the
	// paper's fusion trade-off to exist at all.
	if en.DRAMPerByte/en.GBufPerByte < 5 {
		t.Fatalf("DRAM/GBUF ratio too small: %+v", en)
	}
}

func TestWithDRAMAndWithGBuf(t *testing.T) {
	e := Edge()
	d := e.WithDRAM(64)
	if d.DRAMBandwidth != 64 || e.DRAMBandwidth != 16 {
		t.Fatal("WithDRAM must not mutate the receiver")
	}
	b := e.WithGBuf(32 << 20)
	if b.GBufBytes != 32<<20 || e.GBufBytes != 8<<20 {
		t.Fatal("WithGBuf must not mutate the receiver")
	}
	if !strings.Contains(b.Name, "32MB") {
		t.Fatalf("derived name = %q", b.Name)
	}
}

func TestString(t *testing.T) {
	e := Edge()
	s := e.String()
	for _, want := range []string{"edge", "TOPS", "GBUF", "GB/s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
