package hw

import (
	"fmt"
	"sort"
)

// platforms is the single named-preset registry behind Platform and
// Platforms. It lives here, at the bottom of the dependency graph, so the
// engine, the exp figure adapters, the CLIs and the somad /v1/hw endpoint
// all resolve names through one table and cannot drift apart.
var platforms = map[string]func() Config{
	"edge":  Edge,
	"cloud": Cloud,
}

// Platforms lists the named hardware presets Platform accepts, in sorted
// order (the somad /v1/hw registry endpoint enumerates these).
func Platforms() []string {
	names := make([]string, 0, len(platforms))
	for name := range platforms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Platform returns the named hardware preset.
func Platform(name string) (Config, error) {
	build, ok := platforms[name]
	if !ok {
		return Config{}, fmt.Errorf("hw: unknown platform %q (%v)", name, Platforms())
	}
	return build(), nil
}
