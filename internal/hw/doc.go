// Package hw models the generic large-scale DNN accelerator template of the
// paper's Fig. 1: a DRAM channel, a shared Global Buffer (GBUF), and a group
// of cores, each with a PE array for GEMM/Conv, a vector unit for
// element-wise work, and private L0 buffers (WL0/AL0/OL0).
//
// Two presets mirror the paper's evaluation platforms: a 16 TOPS edge device
// and a 128 TOPS cloud device, both at 1 GHz with INT8 datapaths. Unit
// energies reproduce the relative ordering of the authors' RTL-derived
// numbers (DRAM >> GBUF >> L0 ~ MAC).
//
// The package also owns the named-preset registry (Platform / Platforms),
// deliberately placed at the bottom of the dependency graph so the engine,
// the exp figure adapters, the dse sweep runner, the CLIs and the somad
// /v1/hw endpoint all resolve platform names through one table and cannot
// drift apart.
//
// WithDRAM and WithGBuf derive parametric variants of a preset - the
// Fig. 7 design-space axes; the dse sweep spec's dram_gbps/gbuf_mb fields
// compose them in that order, so derived names (edge-d32-b8MB) are stable
// across every sweep surface.
package hw
