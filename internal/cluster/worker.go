package cluster

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"soma/internal/dse"
	"soma/internal/obs"
	"soma/internal/sim"
)

// Worker serves lease execution: a somad started with -worker mounts one on
// its mux. Workers are stateless between leases (every lease carries its
// full spec), but keep a process-lifetime L1 evaluation cache - engine cache
// scopes already namespace keys per (workload, batch, platform, hw) context,
// so entries are shareable across leases and sweeps - plus one Remote client
// per coordinator cache URL.
type Worker struct {
	// Obs receives worker telemetry (cluster_worker_* plus everything the
	// solvers emit). Nil disables it.
	Obs *obs.Obs
	// Client performs remote-cache calls; nil gets a private default.
	Client *http.Client

	l1 *sim.Cache

	mu      sync.Mutex
	remotes map[string]*Remote

	leases atomic.Int64
}

// NewWorker builds a worker with a fresh L1 cache.
func NewWorker(o *obs.Obs) *Worker {
	w := &Worker{Obs: o, l1: sim.NewCache(0), remotes: make(map[string]*Remote)}
	w.l1.ExportMetrics(o.Registry())
	return w
}

// Mount registers the worker endpoints on mux.
func (w *Worker) Mount(mux *http.ServeMux) {
	mux.HandleFunc(PathPing, w.handlePing)
	mux.HandleFunc(PathLease, w.handleLease)
}

func (w *Worker) handlePing(rw http.ResponseWriter, r *http.Request) {
	writeJSON(rw, PingResponse{OK: true, LeasesServed: w.leases.Load()})
}

// tier returns the evaluation cache for a lease: the shared L1, fronted by a
// Remote L2 when the coordinator advertised one.
func (w *Worker) tier(cacheURL string) sim.EvalCache {
	if cacheURL == "" {
		return w.l1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	rem, ok := w.remotes[cacheURL]
	if !ok {
		rem = NewRemote(cacheURL, w.Client)
		rem.ExportMetrics(w.Obs.Registry())
		w.remotes[cacheURL] = rem
	}
	return &Tiered{L1: w.l1, L2: rem}
}

func (w *Worker) handleLease(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req LeaseRequest
	if err := decodeBody(rw, r, &req); err != nil {
		return
	}
	// Version-skew defense: recompute the digest from the spec we actually
	// decoded. A coordinator running different expansion code would
	// otherwise get rows for the wrong grid cells, silently.
	digest, err := req.Spec.SpecSHA256()
	if err != nil {
		http.Error(rw, "cluster: bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	if digest != req.SpecSHA256 {
		http.Error(rw, "cluster: spec digest mismatch (coordinator/worker version skew?)",
			http.StatusBadRequest)
		return
	}

	reg := w.Obs.Registry()
	start := time.Now()
	rows, err := dse.RunPoints(r.Context(), req.Spec, req.Indices,
		dse.Options{Cache: w.tier(req.CacheURL), Obs: w.Obs, Fidelity: req.Fidelity})
	if err != nil {
		reg.Counter("cluster_worker_leases_total", "Leases served by outcome.",
			"outcome", "error").Inc()
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	w.leases.Add(1)
	reg.Counter("cluster_worker_leases_total", "Leases served by outcome.",
		"outcome", "ok").Inc()
	reg.Counter("cluster_worker_points_total", "Grid points computed for leases.").
		Add(int64(len(rows)))
	if n := len(rows); n > 0 {
		reg.Histogram("cluster_worker_point_seconds",
			"Per-point wall time of lease execution on this worker.").
			Observe(time.Since(start).Seconds() / float64(n))
	}
	writeJSON(rw, LeaseResponse{LeaseID: req.LeaseID, Rows: rows})
}

// decodeBody parses one JSON request body, answering 400 on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "cluster: bad request body: "+err.Error(), http.StatusBadRequest)
		return err
	}
	return nil
}
