package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"soma/internal/dse"
	"soma/internal/sim"
)

// Endpoint paths. Workers mount PathPing and PathLease (see Worker.Mount);
// coordinators host PathCacheGet and PathCachePut (see CacheServer.Mount).
const (
	PathPing     = "/v1/cluster/ping"
	PathLease    = "/v1/cluster/lease"
	PathCacheGet = "/v1/cluster/cache/get"
	PathCachePut = "/v1/cluster/cache/put"
)

// LeaseRequest asks a worker to compute a subset of a sweep's expanded grid.
// The request is self-contained - it carries the full spec, not a reference -
// so workers are stateless between leases and any worker can take any lease.
type LeaseRequest struct {
	// LeaseID names the lease for logs and responses; it is deterministic
	// per (spec, indices) so retried dispatches are recognizable.
	LeaseID string    `json:"lease_id"`
	Spec    dse.Sweep `json:"spec"`
	// SpecSHA256 is the coordinator's spec digest. Workers re-derive the
	// digest from Spec and reject a mismatch: after a version skew the two
	// sides could otherwise silently expand different grids.
	SpecSHA256 string `json:"spec_sha256"`
	// Indices are the canonical-expansion point indices to compute.
	Indices []int `json:"indices"`
	// CacheURL, when set, is the coordinator's remote evaluation-cache
	// base URL; the worker evaluates through a local-L1/remote-L2 tier.
	CacheURL string `json:"cache_url,omitempty"`
	// Fidelity is the adaptive rung the lease belongs to
	// (dse.FidelityProbe / dse.FidelityFull; "" for exhaustive sweeps).
	// Workers solve probe leases at dse.ProbeParams fidelity and stamp the
	// rows, so a rung's lease grid shards exactly like an exhaustive one.
	Fidelity string `json:"fidelity,omitempty"`
}

// LeaseResponse returns the computed rows, Scrubbed, in Indices order.
type LeaseResponse struct {
	LeaseID string    `json:"lease_id"`
	Rows    []dse.Row `json:"rows"`
}

// PingResponse answers a heartbeat.
type PingResponse struct {
	OK           bool  `json:"ok"`
	LeasesServed int64 `json:"leases_served"`
}

// Cache wire types. Keys travel as []byte (base64 in JSON) because sim.Key
// embeds varint bytes that are not valid UTF-8 and would be mangled by JSON
// string encoding. Error entries never cross the wire: failures are cheap to
// recompute and stay in the worker-local L1.
type CacheGetRequest struct {
	Key []byte `json:"key"`
}

type CacheGetResponse struct {
	Found   bool         `json:"found"`
	Metrics *sim.Metrics `json:"metrics,omitempty"`
}

type CachePutRequest struct {
	Key     []byte       `json:"key"`
	Metrics *sim.Metrics `json:"metrics"`
}

// postJSON round-trips one JSON request/response pair, treating any non-200
// status as an error carrying the response body.
func postJSON(ctx context.Context, hc *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: %s: %s: %s", url, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
