// Package cluster shards sweep execution across somad worker nodes.
//
// Topology: one coordinator owns a sweep. It deterministically partitions the
// spec's expanded point grid into leases and dispatches them over HTTP to N
// workers (each a somad started with -worker), then merges the per-worker row
// streams back into the canonical in-order journal. Because every row is a
// pure function of (spec, point index) - the engine backends are
// seed-deterministic and cache sharing never changes results - a sharded
// journal is byte-identical to the serial dse.Run journal for the same spec,
// including after worker deaths and lease reassignment.
//
// Robustness: leases carry per-attempt timeouts with exponential backoff and
// jitter; a heartbeat loop detects dead workers and cancels their in-flight
// leases; reassignment is at-least-once, with duplicate deliveries
// deduplicated at the journal commit point; and when zero workers are
// reachable the coordinator degrades to plain local execution
// (dse.Run / dse.RunPoints), so a cluster flag never makes a sweep fail that
// would have succeeded single-process.
//
// Caching: workers evaluate through a Tiered cache - a worker-local
// sim.Cache L1 in front of a coordinator-hosted remote L2 (CacheServer /
// Remote) - so schedule evaluations shared between grid points are computed
// once cluster-wide instead of once per worker. The tier implements
// sim.EvalCache, the same interface dse, engine, service and soma consume
// in-process.
package cluster
