package cluster

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"soma/internal/dse"
)

// adaptiveSweep is fastSweep with the successive-halving driver turned on
// (8 points so the default budget leaves both rungs non-trivial).
func adaptiveSweep() dse.Sweep {
	sw := fastSweep()
	sw.Name = "cluster-adaptive-grid"
	sw.GBufMB = []int64{2, 3, 4, 6}
	sw.Adaptive = &dse.Adaptive{}
	return sw
}

// A sharded adaptive sweep - probe rung leased across workers, promotion
// recomputed on the coordinator, full rung leased again - must write the
// exact bytes a serial dse.RunAdaptive writes, and resume from a journal
// truncated mid-rung-1 to the same bytes.
func TestShardedAdaptiveJournalByteIdentical(t *testing.T) {
	dir := t.TempDir()
	serial := filepath.Join(dir, "serial.jsonl")
	if _, err := dse.Run(context.Background(), adaptiveSweep(), dse.Options{Journal: serial}); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(serial)
	if err != nil {
		t.Fatal(err)
	}

	w1, w2 := startWorker(t), startWorker(t)
	opt := fastOptions(w1.URL, w2.URL)
	opt.Journal = filepath.Join(dir, "sharded.jsonl")
	out, err := Run(context.Background(), adaptiveSweep(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Adaptive == nil || out.Adaptive.Promotions == 0 {
		t.Fatalf("sharded adaptive outcome missing stats: %+v", out.Adaptive)
	}
	got, err := os.ReadFile(opt.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, got) {
		t.Fatal("sharded adaptive journal differs from serial dse.RunAdaptive")
	}

	// Kill-and-resume: keep every probe row plus one full row, resume the
	// cluster run, compare bytes.
	n := out.Points
	lines := strings.Split(strings.TrimSuffix(string(golden), "\n"), "\n")
	if len(lines) < n+3 {
		t.Fatalf("journal too short to truncate mid-rung-1: %d lines", len(lines))
	}
	resume := filepath.Join(dir, "resume.jsonl")
	if err := os.WriteFile(resume, []byte(strings.Join(lines[:n+2], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ropt := fastOptions(w1.URL, w2.URL)
	ropt.Journal = resume
	rout, err := Run(context.Background(), adaptiveSweep(), ropt)
	if err != nil {
		t.Fatal(err)
	}
	if rout.Resumed != n+1 {
		t.Fatalf("resumed %d rows, want %d", rout.Resumed, n+1)
	}
	rgot, err := os.ReadFile(resume)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, rgot) {
		t.Fatal("resumed sharded adaptive journal differs from serial")
	}
}
