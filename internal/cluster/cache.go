package cluster

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"soma/internal/obs"
	"soma/internal/sim"
)

// CacheServer exposes a sim.EvalCache tier over HTTP - the coordinator hosts
// one backed by its own in-process cache, making it the cluster-wide L2
// behind every worker's local L1. Error entries are withheld: a lookup whose
// cached outcome was a failure reports "not found", keeping failures
// worker-local where they are cheap to recompute.
type CacheServer struct {
	cache sim.EvalCache

	// gets/hits count the remote-facing traffic (as opposed to the backing
	// cache's own counters, which also see coordinator-local lookups).
	gets, hits, puts atomic.Int64
}

// NewCacheServer serves c remotely. The backing cache is typically the same
// one the coordinator's local fallback evaluations use, so local and remote
// work share one entry pool.
func NewCacheServer(c sim.EvalCache) *CacheServer {
	return &CacheServer{cache: c}
}

// Mount registers the cache endpoints on mux.
func (s *CacheServer) Mount(mux *http.ServeMux) {
	mux.HandleFunc(PathCacheGet, s.handleGet)
	mux.HandleFunc(PathCachePut, s.handlePut)
}

func (s *CacheServer) handleGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req CacheGetRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	s.gets.Add(1)
	resp := CacheGetResponse{}
	if m, err, ok := s.cache.Get(string(req.Key)); ok && err == nil && m != nil {
		s.hits.Add(1)
		resp.Found, resp.Metrics = true, m
	}
	writeJSON(w, resp)
}

func (s *CacheServer) handlePut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req CachePutRequest
	if err := decodeBody(w, r, &req); err != nil {
		return
	}
	if req.Metrics != nil {
		s.puts.Add(1)
		s.cache.Put(string(req.Key), req.Metrics, nil)
	}
	writeJSON(w, struct{}{})
}

// Stats snapshots the remote-facing counters: Hits/Misses describe what
// workers asked for (the cluster-wide L2 hit rate), not the backing cache's
// total traffic.
func (s *CacheServer) Stats() sim.CacheStats {
	st := sim.CacheStats{Hits: s.hits.Load()}
	st.Misses = s.gets.Load() - st.Hits
	st.Rate = st.HitRate()
	return st
}

// ExportMetrics registers the remote-cache families on reg.
func (s *CacheServer) ExportMetrics(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.GaugeFunc("cluster_remote_cache_gets_total",
		"Remote evaluation-cache lookups served.", func() float64 { return float64(s.gets.Load()) })
	reg.GaugeFunc("cluster_remote_cache_puts_total",
		"Remote evaluation-cache inserts accepted.", func() float64 { return float64(s.puts.Load()) })
	reg.GaugeFunc("cluster_remote_cache_hit_rate",
		"Remote evaluation-cache hit rate (hits over lookups).", func() float64 { return s.Stats().HitRate() })
}

// Remote is the worker-side client of a CacheServer: a sim.EvalCache whose
// entries live on the coordinator. It is built for the annealer's hot loop,
// where a blocking network call per cache miss would erase the cluster's
// speedup, so every slow path degrades to "miss" instead of waiting:
//
//   - Gets are bounded to a few in flight; when the bound is reached further
//     lookups miss locally instead of queueing.
//   - Puts are write-behind: enqueued on a bounded channel a background pump
//     drains, dropped (counted) on overflow.
//   - A transport error opens a circuit breaker for a cooldown during which
//     every operation is a local miss / drop.
//   - Error entries are never sent (see CacheServer).
type Remote struct {
	base string
	hc   *http.Client

	sem    chan struct{}
	puts   chan CachePutRequest
	closed chan struct{}
	wg     sync.WaitGroup

	// downUntil is the wall-clock nanosecond until which the breaker is
	// open; 0 means closed.
	downUntil atomic.Int64

	hits, misses, errors, droppedPuts atomic.Int64
}

const (
	remoteGetBound    = 4
	remotePutBacklog  = 256
	remoteCooldown    = 2 * time.Second
	remoteCallTimeout = 5 * time.Second
)

// NewRemote builds a client for the CacheServer at base (e.g.
// "http://10.0.0.1:8844"). A nil http.Client gets a private default. Close
// releases the write-behind pump.
func NewRemote(base string, hc *http.Client) *Remote {
	if hc == nil {
		hc = &http.Client{}
	}
	r := &Remote{base: strings.TrimSuffix(base, "/"), hc: hc,
		sem:    make(chan struct{}, remoteGetBound),
		puts:   make(chan CachePutRequest, remotePutBacklog),
		closed: make(chan struct{})}
	r.wg.Add(1)
	go r.pump()
	return r
}

// Close stops the write-behind pump, dropping any queued puts.
func (r *Remote) Close() {
	close(r.closed)
	r.wg.Wait()
}

func (r *Remote) pump() {
	defer r.wg.Done()
	for {
		select {
		case <-r.closed:
			return
		case req := <-r.puts:
			if r.tripped() {
				r.droppedPuts.Add(1)
				continue
			}
			if err := r.call(PathCachePut, req, nil); err != nil {
				r.trip()
			}
		}
	}
}

func (r *Remote) call(path string, in, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), remoteCallTimeout)
	defer cancel()
	if err := postJSON(ctx, r.hc, r.base+path, in, out); err != nil {
		r.errors.Add(1)
		return err
	}
	return nil
}

func (r *Remote) trip()         { r.downUntil.Store(time.Now().Add(remoteCooldown).UnixNano()) }
func (r *Remote) tripped() bool { return time.Now().UnixNano() < r.downUntil.Load() }

// Get implements sim.EvalCache. Any slow or failing path reports a miss.
func (r *Remote) Get(key string) (*sim.Metrics, error, bool) {
	if r == nil || r.tripped() {
		return nil, nil, false
	}
	select {
	case r.sem <- struct{}{}:
	default:
		r.misses.Add(1) // saturated: miss locally rather than queue
		return nil, nil, false
	}
	defer func() { <-r.sem }()
	var resp CacheGetResponse
	if err := r.call(PathCacheGet, CacheGetRequest{Key: []byte(key)}, &resp); err != nil {
		r.trip()
		return nil, nil, false
	}
	if !resp.Found || resp.Metrics == nil {
		r.misses.Add(1)
		return nil, nil, false
	}
	r.hits.Add(1)
	return resp.Metrics, nil, true
}

// Put implements sim.EvalCache: write-behind, dropped on backlog overflow.
// Error entries stay local.
func (r *Remote) Put(key string, m *sim.Metrics, err error) {
	if r == nil || err != nil || m == nil {
		return
	}
	cp := *m
	select {
	case r.puts <- CachePutRequest{Key: []byte(key), Metrics: &cp}:
	default:
		r.droppedPuts.Add(1)
	}
}

// Stats implements sim.EvalCache with the client-side counters.
func (r *Remote) Stats() sim.CacheStats {
	st := sim.CacheStats{Hits: r.hits.Load(), Misses: r.misses.Load()}
	st.Rate = st.HitRate()
	return st
}

// ExportMetrics registers the client-side remote-cache families on reg.
func (r *Remote) ExportMetrics(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.GaugeFunc("cluster_remote_cache_client_hits_total",
		"Remote-cache lookups answered by the coordinator.", func() float64 { return float64(r.hits.Load()) })
	reg.GaugeFunc("cluster_remote_cache_client_misses_total",
		"Remote-cache lookups that missed (including bypasses).", func() float64 { return float64(r.misses.Load()) })
	reg.GaugeFunc("cluster_remote_cache_client_errors_total",
		"Remote-cache transport errors (each opens the breaker).", func() float64 { return float64(r.errors.Load()) })
	reg.GaugeFunc("cluster_remote_cache_client_dropped_puts_total",
		"Write-behind puts dropped on overflow or open breaker.", func() float64 { return float64(r.droppedPuts.Load()) })
}

// Tiered is the worker's evaluation cache: a local in-process L1 in front of
// a remote L2. L1 answers the annealer's short revisit distance; L2 shares
// converged evaluations across workers. Caching never changes results, so
// the tier preserves dse.Run's determinism guarantee.
type Tiered struct {
	L1 *sim.Cache
	L2 *Remote
}

// Get implements sim.EvalCache: L1, then L2 (promoting remote hits into L1).
func (t *Tiered) Get(key string) (*sim.Metrics, error, bool) {
	if m, err, ok := t.L1.Get(key); ok {
		return m, err, ok
	}
	if t.L2 != nil {
		if m, _, ok := t.L2.Get(key); ok {
			t.L1.Put(key, m, nil)
			return m, nil, true
		}
	}
	return nil, nil, false
}

// Put implements sim.EvalCache: always L1, successes also to L2.
func (t *Tiered) Put(key string, m *sim.Metrics, err error) {
	t.L1.Put(key, m, err)
	if err == nil && t.L2 != nil {
		t.L2.Put(key, m, err)
	}
}

// Stats implements sim.EvalCache with the L1 counters (the tier the
// evaluation loop actually feels).
func (t *Tiered) Stats() sim.CacheStats { return t.L1.Stats() }

// ExportMetrics registers both tiers' families on reg.
func (t *Tiered) ExportMetrics(reg *obs.Registry) {
	t.L1.ExportMetrics(reg)
	t.L2.ExportMetrics(reg)
}
