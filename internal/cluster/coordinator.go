package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"soma/internal/dse"
	"soma/internal/engine"
	"soma/internal/obs"
	"soma/internal/sim"
)

// Options configures one coordinated sweep.
type Options struct {
	// Workers are worker base URLs ("host:port" is accepted and normalized
	// to "http://host:port"). Empty, or none reachable at the initial
	// probe, degrades to plain local execution.
	Workers []string
	// Cache is the coordinator's evaluation cache: local-fallback points
	// evaluate through it, and when CacheURL advertises a CacheServer
	// backed by the same cache, workers share it as their L2. nil gives
	// the run a private cache.
	Cache sim.EvalCache
	// CacheURL is the remote-cache base URL handed to workers in every
	// lease ("" disables the L2 tier).
	CacheURL string
	// Hooks streams sweep progress exactly like dse.Options.Hooks; points
	// report start on lease dispatch and done/error on delivery.
	Hooks *engine.Hooks
	// Journal is the checkpoint file path ("" disables journaling), with
	// dse.Run's semantics: committed prefixes resume, finished files are
	// byte-identical to a serial uninterrupted run's.
	Journal string
	// Obs receives coordinator telemetry (cluster_* families) and
	// everything local fallback execution emits.
	Obs *obs.Obs
	// Client performs lease and ping calls; nil gets a private default.
	Client *http.Client
	// Logf, when non-nil, receives coordinator lifecycle lines (worker
	// death, reassignment, degradation).
	Logf func(format string, args ...any)

	// LeasePoints is the grid points per lease (default 1: finest-grained
	// rebalancing and dedup).
	LeasePoints int
	// LeaseTimeout bounds one lease attempt (default 10m - a paper-profile
	// point can anneal for minutes).
	LeaseTimeout time.Duration
	// PingTimeout bounds one heartbeat probe (default 2s).
	PingTimeout time.Duration
	// Heartbeat is the liveness probe period (default 2s). A worker that
	// fails a probe is marked dead and its in-flight lease is canceled and
	// reassigned; a later successful probe revives it.
	Heartbeat time.Duration
	// MaxAttempts is the remote attempts per lease before it falls back to
	// local execution (default 3).
	MaxAttempts int
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o *Options) defaults() {
	if o.LeasePoints <= 0 {
		o.LeasePoints = 1
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 10 * time.Minute
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = 2 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
}

// NormalizeWorkerURL accepts "host:port" or a full URL and returns a base
// URL without a trailing slash.
func NormalizeWorkerURL(addr string) string {
	if addr == "" {
		return addr
	}
	u := addr
	if len(u) < 7 || (u[:7] != "http://" && (len(u) < 8 || u[:8] != "https://")) {
		u = "http://" + u
	}
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// node is one worker as the coordinator sees it. alive is written by the
// heartbeat goroutine and read by the dispatch loop; every other field is
// owned by the dispatch loop alone.
type node struct {
	url   string
	alive atomic.Bool

	busy    bool
	fails   int
	nextTry time.Time

	mu     sync.Mutex
	cancel context.CancelCauseFunc
}

func (n *node) setCancel(c context.CancelCauseFunc) {
	n.mu.Lock()
	n.cancel = c
	n.mu.Unlock()
}

func (n *node) cancelInflight(cause error) {
	n.mu.Lock()
	c := n.cancel
	n.mu.Unlock()
	if c != nil {
		c(cause)
	}
}

// lease is a unit of dispatch: a deterministic chunk of the coordinator's
// dispatch sequence. pos are sequence positions (journal-commit order),
// indices the corresponding canonical point indices (what the worker
// computes). For exhaustive sweeps the two are identical; for an adaptive
// rung the sequence is the rung's own grid (all points, then the promoted
// subset) and indices differ.
type lease struct {
	id       string
	pos      []int
	indices  []int
	attempts int
}

type result struct {
	l    *lease
	node *node // nil: local fallback execution
	rows []dse.Row
	err  error
	wall time.Duration
}

// Run executes the sweep across opt.Workers, producing an Outcome - and,
// with opt.Journal set, a journal file - byte-identical to a serial
// dse.Run of the same spec. Zero reachable workers at the initial probe
// degrades to dse.Run; workers dying mid-sweep get their leases reassigned
// (and, attempts exhausted, executed locally), so the sweep completes as
// long as the coordinator itself survives.
func Run(ctx context.Context, sw dse.Sweep, opt Options) (*dse.Outcome, error) {
	opt.defaults()

	pts, err := sw.Expand()
	if err != nil {
		return nil, err
	}
	digest, err := sw.SpecSHA256()
	if err != nil {
		return nil, err
	}

	// Initial probe: a cluster run with zero reachable workers is a plain
	// local sweep, not an error - the flag must never break the sweep.
	// dse.Run dispatches adaptive specs itself, so degradation covers both
	// modes.
	nodes := probeWorkers(ctx, opt)
	reg := opt.Obs.Registry()
	if len(nodes) == 0 {
		opt.logf("cluster: no reachable workers of %d configured; running locally", len(opt.Workers))
		reg.Counter("cluster_degraded_runs_total",
			"Sweeps that fell back to pure-local execution at start.").Inc()
		return dse.Run(ctx, sw, dse.Options{Cache: opt.Cache,
			Hooks: opt.Hooks, Journal: opt.Journal, Obs: opt.Obs})
	}

	if sw.Adaptive != nil {
		return runAdaptive(ctx, sw, pts, digest, nodes, opt)
	}

	out := &dse.Outcome{Name: sw.Name, SpecSHA256: digest, Points: len(pts), BestIndex: -1}
	out.Rows = make([]dse.Row, len(pts))

	// Resume support mirrors dse.Run: load the committed prefix, rewrite
	// it verbatim, lease only the rest.
	var jw *dse.JournalWriter
	start := 0
	if opt.Journal != "" {
		rows, lines, err := dse.LoadJournal(opt.Journal, digest, len(pts))
		if err != nil {
			return nil, err
		}
		if jw, err = dse.OpenJournal(opt.Journal, sw, digest, len(pts), lines); err != nil {
			return nil, err
		}
		defer jw.Close()
		copy(out.Rows, rows)
		start = len(rows)
		out.Resumed = len(rows)
	}

	cache := opt.Cache
	if cache == nil {
		cache = sim.NewCache(0)
	}

	opt.Hooks.Emit(engine.Event{Kind: "sweep-start", Component: sw.Name, Iter: len(pts)})

	// Exhaustive dispatch: the sequence is the grid itself.
	seq := make([]int, len(pts))
	for i := range seq {
		seq[i] = i
	}
	c := newCoord(sw, digest, &opt, nodes, pts, seq, "", out.Rows, jw, start, cache)
	if err := c.run(ctx, start); err != nil {
		return nil, err
	}

	bestCost := -1.0
	for i := range out.Rows {
		r := &out.Rows[i]
		if r.Err != "" {
			out.Failed++
			continue
		}
		if r.Result != nil && (out.BestIndex < 0 || r.Result.Cost < bestCost) {
			out.BestIndex, bestCost = i, r.Result.Cost
		}
	}
	out.Pareto = dse.CostVsBufferFront(out.Rows)
	out.Cache = cache.Stats()
	opt.Hooks.Emit(engine.Event{Kind: "sweep-done", Component: sw.Name, Cost: bestCost})
	return out, nil
}

// runAdaptive coordinates a successive-halving sweep: the probe rung shards
// the whole grid across the workers, the promotion decision replays the same
// deterministic dse.AdaptiveRun state machine the local driver uses, and the
// full-fidelity rung shards the promoted subset - each rung an ordinary
// lease grid, so heartbeats, reassignment, dedup-at-commit and local
// fallback all apply per rung unchanged. The journal (probe rows in point
// order, then promotions in point order) is byte-identical to a serial
// dse.RunAdaptive of the same spec.
func runAdaptive(ctx context.Context, sw dse.Sweep, pts []dse.Point, digest string,
	nodes []*node, opt Options) (*dse.Outcome, error) {
	a, err := dse.NewAdaptiveRun(sw)
	if err != nil {
		return nil, err
	}
	var jw *dse.JournalWriter
	resumed := 0
	if opt.Journal != "" {
		lines, err := a.LoadJournal(opt.Journal)
		if err != nil {
			return nil, err
		}
		if jw, err = dse.OpenJournal(opt.Journal, sw, digest, len(pts), lines); err != nil {
			return nil, err
		}
		defer jw.Close()
		resumed = len(lines)
	}
	cache := opt.Cache
	if cache == nil {
		cache = sim.NewCache(0)
	}

	opt.Hooks.Emit(engine.Event{Kind: "sweep-start", Component: sw.Name, Iter: len(pts)})

	seq := make([]int, len(pts))
	for i := range seq {
		seq[i] = i
	}
	opt.Hooks.Emit(engine.Event{Kind: "rung-start", Component: sw.Name,
		Stage: dse.FidelityProbe, Iter: len(pts) - a.ProbeDone})
	c0 := newCoord(sw, digest, &opt, nodes, pts, seq, dse.FidelityProbe, a.Probes, jw, a.ProbeDone, cache)
	if err := c0.run(ctx, a.ProbeDone); err != nil {
		return nil, err
	}
	a.ProbeDone = len(pts)
	opt.Hooks.Emit(engine.Event{Kind: "rung-done", Component: sw.Name,
		Stage: dse.FidelityProbe, Iter: len(pts)})

	a.Promote()
	a.RecordMetrics(opt.Obs)

	opt.Hooks.Emit(engine.Event{Kind: "rung-start", Component: sw.Name,
		Stage: dse.FidelityFull, Iter: len(a.Promoted) - a.FullDone})
	c1 := newCoord(sw, digest, &opt, nodes, pts, a.Promoted, dse.FidelityFull, a.Fulls, jw, a.FullDone, cache)
	if err := c1.run(ctx, a.FullDone); err != nil {
		return nil, err
	}
	a.FullDone = len(a.Promoted)
	opt.Hooks.Emit(engine.Event{Kind: "rung-done", Component: sw.Name,
		Stage: dse.FidelityFull, Iter: len(a.Promoted)})

	out := a.Outcome(resumed, cache)
	bestCost := -1.0
	if b := out.Best(); b != nil {
		bestCost = b.Result.Cost
	}
	opt.Hooks.Emit(engine.Event{Kind: "sweep-done", Component: sw.Name, Cost: bestCost})
	return out, nil
}

// probeWorkers pings every configured worker once in parallel, returning the
// reachable ones (all of them stay candidates for revival via heartbeat, but
// an initial probe finding zero is the degradation signal).
func probeWorkers(ctx context.Context, opt Options) []*node {
	type probe struct {
		n  *node
		ok bool
	}
	ch := make(chan probe, len(opt.Workers))
	for _, addr := range opt.Workers {
		url := NormalizeWorkerURL(addr)
		if url == "" {
			ch <- probe{}
			continue
		}
		go func(url string) {
			n := &node{url: url}
			ok := pingWorker(ctx, opt.Client, url, opt.PingTimeout)
			n.alive.Store(ok)
			ch <- probe{n: n, ok: ok}
		}(url)
	}
	var nodes []*node
	for range opt.Workers {
		p := <-ch
		if p.n == nil {
			continue
		}
		if !p.ok {
			opt.logf("cluster: worker %s unreachable at probe", p.n.url)
		}
		nodes = append(nodes, p.n)
	}
	alive := 0
	for _, n := range nodes {
		if n.alive.Load() {
			alive++
		}
	}
	if alive == 0 {
		return nil
	}
	return nodes
}

func pingWorker(ctx context.Context, hc *http.Client, url string, timeout time.Duration) bool {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+PathPing, nil)
	if err != nil {
		return false
	}
	resp, err := hc.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// coord is the dispatch-loop state for one dispatch sequence - a whole
// exhaustive grid, or one adaptive rung. Except where noted on node, every
// field is owned by the single run() goroutine.
type coord struct {
	sw     dse.Sweep
	digest string
	opt    *Options
	nodes  []*node
	pts    []dse.Point
	cache  sim.EvalCache

	// seq is the dispatch sequence (seq[pos] = canonical point index), fid
	// the rung fidelity carried by every lease ("" for exhaustive), rows
	// the sequence-position-indexed result store the caller owns. done and
	// frontier are also by sequence position: the journal commits rows in
	// sequence order.
	seq  []int
	fid  string
	rows []dse.Row

	jw       *dse.JournalWriter
	done     []bool
	frontier int
	werr     error

	results chan result
	localCh chan *lease

	inflight      atomic.Int64
	reassignments *obs.Counter
	deduped       *obs.Counter
	committed     int
}

// newCoord builds the dispatch state for one sequence, resuming after the
// first start positions (already loaded from the journal).
func newCoord(sw dse.Sweep, digest string, opt *Options, nodes []*node, pts []dse.Point,
	seq []int, fid string, rows []dse.Row, jw *dse.JournalWriter, start int,
	cache sim.EvalCache) *coord {
	c := &coord{sw: sw, digest: digest, opt: opt, nodes: nodes, pts: pts,
		seq: seq, fid: fid, rows: rows, jw: jw,
		done: make([]bool, len(seq)), frontier: start,
		cache: cache, results: make(chan result),
		localCh: make(chan *lease, (len(seq)-start)/opt.LeasePoints+1)}
	c.exportMetrics(opt.Obs.Registry())
	return c
}

func (c *coord) exportMetrics(reg *obs.Registry) {
	reg.GaugeFunc("cluster_leases_inflight",
		"Leases currently dispatched (remote or local).",
		func() float64 { return float64(c.inflight.Load()) })
	reg.GaugeFunc("cluster_workers_alive",
		"Workers currently passing heartbeats.", func() float64 {
			alive := 0
			for _, n := range c.nodes {
				if n.alive.Load() {
					alive++
				}
			}
			return float64(alive)
		})
	c.reassignments = reg.Counter("cluster_lease_reassignments_total",
		"Lease dispatches retried after a worker failure or death.")
	c.deduped = reg.Counter("cluster_points_deduped_total",
		"Duplicate point deliveries ignored at the journal commit point.")
}

// commit merges one delivered row set into the sequence store, ignoring
// duplicates (at-least-once dispatch makes double delivery legal) and
// advancing the in-order journal frontier - the exactly-once point of the
// whole design.
func (c *coord) commit(l *lease, rows []dse.Row) {
	for j, pos := range l.pos {
		if c.done[pos] {
			c.deduped.Inc()
			continue
		}
		c.rows[pos] = rows[j]
		c.done[pos] = true
		c.committed++
		idx := c.seq[pos]
		row := &c.rows[pos]
		if row.Err != "" {
			c.opt.Hooks.Emit(engine.Event{Kind: "point-error",
				Component: row.Point.Label(), Stage: c.fid, Iter: idx, Err: row.Err})
		} else if row.Result != nil {
			c.opt.Hooks.Emit(engine.Event{Kind: "point-done",
				Component: row.Point.Label(), Stage: c.fid, Iter: idx, Cost: row.Result.Cost})
		}
	}
	for c.frontier < len(c.done) && c.done[c.frontier] {
		if c.jw != nil && c.werr == nil {
			c.werr = c.jw.Append(c.rows[c.frontier].Scrubbed())
		}
		c.frontier++
	}
}

// run drives dispatch until every sequence position is committed or ctx dies.
func (c *coord) run(ctx context.Context, start int) error {
	opt := c.opt
	runCtx, stop := context.WithCancel(ctx)
	defer stop()

	// Partition deterministically: consecutive chunks in sequence order, so
	// lease boundaries never depend on worker behavior.
	var pending []*lease
	for lo := start; lo < len(c.seq); lo += opt.LeasePoints {
		hi := lo + opt.LeasePoints
		if hi > len(c.seq) {
			hi = len(c.seq)
		}
		pos := make([]int, 0, hi-lo)
		indices := make([]int, 0, hi-lo)
		for p := lo; p < hi; p++ {
			pos = append(pos, p)
			indices = append(indices, c.seq[p])
		}
		id := fmt.Sprintf("lease-%04d", lo)
		if c.fid != "" {
			id = fmt.Sprintf("lease-%s-%04d", c.fid, lo)
		}
		pending = append(pending, &lease{id: id, pos: pos, indices: indices})
	}
	need := len(c.seq) - start

	// Local fallback executors: leases that exhaust remote attempts (or
	// find no workers alive) run here through dse.RunPoints with the
	// coordinator cache.
	var localWG sync.WaitGroup
	localWorkers := runtime.NumCPU()
	for w := 0; w < localWorkers; w++ {
		localWG.Add(1)
		go func() {
			defer localWG.Done()
			for l := range c.localCh {
				rows, err := dse.RunPoints(runCtx, c.sw, l.indices,
					dse.Options{Cache: c.cache, Obs: opt.Obs, Fidelity: c.fid})
				select {
				case c.results <- result{l: l, rows: rows, err: err}:
				case <-runCtx.Done():
					return
				}
			}
		}()
	}
	defer func() {
		close(c.localCh)
		stop()
		localWG.Wait()
	}()

	// Heartbeats: a failed probe kills the node's in-flight lease with a
	// reassignment cause; a later success revives the node.
	for _, n := range c.nodes {
		go func(n *node) {
			t := time.NewTicker(opt.Heartbeat)
			defer t.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-t.C:
					ok := pingWorker(runCtx, opt.Client, n.url, opt.PingTimeout)
					was := n.alive.Swap(ok)
					if was && !ok {
						opt.logf("cluster: worker %s failed heartbeat; reassigning its lease", n.url)
						n.cancelInflight(fmt.Errorf("cluster: worker %s heartbeat lost", n.url))
					}
					if !was && ok {
						opt.logf("cluster: worker %s revived", n.url)
					}
				}
			}
		}(n)
	}

	rng := rand.New(rand.NewSource(1)) // jitter only; never affects results
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()

	for c.committed < need {
		// Assign pending leases to idle, alive, backoff-eligible nodes.
		now := time.Now()
		anyAlive := false
		for _, n := range c.nodes {
			if n.alive.Load() {
				anyAlive = true
				if !n.busy && !now.Before(n.nextTry) && len(pending) > 0 {
					l := pending[0]
					pending = pending[1:]
					c.dispatch(runCtx, n, l)
				}
			}
		}
		if !anyAlive {
			// Every worker is dead right now: drain pending locally.
			// Later requeues re-check, so revived workers resume serving.
			for len(pending) > 0 {
				l := pending[0]
				pending = pending[1:]
				c.reassignments.Inc()
				c.toLocal(l, "no workers alive")
			}
		}

		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			// Re-check aliveness and backoff windows.
		case res := <-c.results:
			c.inflight.Add(-1)
			if res.node != nil {
				res.node.busy = false
				res.node.setCancel(nil)
			}
			if res.err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				if res.node == nil {
					// Local fallback failed: nothing further to
					// degrade to, so the sweep fails loudly.
					return fmt.Errorf("cluster: local execution of %s: %w", res.l.id, res.err)
				}
				res.l.attempts++
				res.node.fails++
				backoff := time.Duration(100<<min(res.node.fails, 6)) * time.Millisecond
				backoff += time.Duration(rng.Int63n(int64(backoff)/2 + 1))
				res.node.nextTry = time.Now().Add(backoff)
				c.reassignments.Inc()
				opt.logf("cluster: %s failed on %s (attempt %d): %v",
					res.l.id, res.node.url, res.l.attempts, res.err)
				if res.l.attempts >= opt.MaxAttempts {
					c.toLocal(res.l, "attempts exhausted")
				} else {
					pending = append(pending, res.l)
				}
			} else {
				if res.node != nil {
					res.node.fails = 0
					if n := len(res.l.indices); n > 0 {
						c.opt.Obs.Registry().Histogram("cluster_point_seconds",
							"Per-point wall time of leases by worker.",
							"worker", res.node.url).
							Observe(res.wall.Seconds() / float64(n))
					}
				}
				c.commit(res.l, res.rows)
			}
		}
	}
	if c.werr != nil {
		return c.werr
	}
	return nil
}

// toLocal queues a lease for local fallback execution. Callers count the
// reassignment (the failure paths already have).
func (c *coord) toLocal(l *lease, why string) {
	c.opt.logf("cluster: %s running locally (%s)", l.id, why)
	c.inflight.Add(1)
	c.localCh <- l
}

// dispatch launches one remote lease attempt.
func (c *coord) dispatch(ctx context.Context, n *node, l *lease) {
	n.busy = true
	c.inflight.Add(1)
	lctx, cancel := context.WithCancelCause(ctx)
	n.setCancel(cancel)
	for _, idx := range l.indices {
		c.opt.Hooks.Emit(engine.Event{Kind: "point-start",
			Component: c.pts[idx].Label(), Stage: c.fid, Iter: idx})
	}
	go func() {
		defer cancel(nil)
		start := time.Now()
		rows, err := c.doLease(lctx, n, l)
		select {
		case c.results <- result{l: l, node: n, rows: rows, err: err, wall: time.Since(start)}:
		case <-ctx.Done():
		}
	}()
}

// doLease performs one lease HTTP round-trip and validates the response
// shape (right row count, right indices, scrub-stable rows).
func (c *coord) doLease(ctx context.Context, n *node, l *lease) ([]dse.Row, error) {
	tctx, cancel := context.WithTimeout(ctx, c.opt.LeaseTimeout)
	defer cancel()
	var resp LeaseResponse
	err := postJSON(tctx, c.opt.Client, n.url+PathLease, LeaseRequest{
		LeaseID: l.id, Spec: c.sw, SpecSHA256: c.digest,
		Indices: l.indices, CacheURL: c.opt.CacheURL, Fidelity: c.fid}, &resp)
	if err != nil {
		if cause := context.Cause(ctx); cause != nil && ctx.Err() != nil {
			return nil, cause
		}
		return nil, err
	}
	if len(resp.Rows) != len(l.indices) {
		return nil, fmt.Errorf("cluster: %s returned %d rows, want %d", n.url, len(resp.Rows), len(l.indices))
	}
	for j, idx := range l.indices {
		if resp.Rows[j].Point.Index != idx {
			return nil, fmt.Errorf("cluster: %s returned row for point %d at position %d (want %d)",
				n.url, resp.Rows[j].Point.Index, j, idx)
		}
		if resp.Rows[j].Fidelity != c.fid {
			return nil, fmt.Errorf("cluster: %s returned fidelity %q rows for a %q lease (worker version skew?)",
				n.url, resp.Rows[j].Fidelity, c.fid)
		}
	}
	return resp.Rows, nil
}
