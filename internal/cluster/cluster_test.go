package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"soma/internal/dse"
	"soma/internal/obs"
	"soma/internal/sim"
	"soma/internal/soma"
)

// fastSweep is the quickest useful grid in the repo: 4 points of the fastest
// model/profile combination, the same shape internal/dse's tests use.
func fastSweep() dse.Sweep {
	par := soma.FastParams()
	par.Beta1, par.Beta2 = 2, 1
	return dse.Sweep{
		Name:   "cluster-test-grid",
		Models: []string{"mobilenetv2"},
		GBufMB: []int64{2, 4},
		Seeds:  []int64{1, 2},
		Params: &par,
	}
}

// serialJournal runs the sweep through plain dse.Run and returns the journal
// bytes - the golden every sharded variant must reproduce exactly. The run is
// deterministic, so one execution serves every test.
var serialOnce struct {
	sync.Once
	data []byte
	err  error
}

func serialJournal(t *testing.T) []byte {
	t.Helper()
	serialOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cluster-serial")
		if err != nil {
			serialOnce.err = err
			return
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "serial.jsonl")
		if _, err := dse.Run(context.Background(), fastSweep(), dse.Options{Journal: path}); err != nil {
			serialOnce.err = err
			return
		}
		serialOnce.data, serialOnce.err = os.ReadFile(path)
	})
	if serialOnce.err != nil {
		t.Fatal(serialOnce.err)
	}
	return serialOnce.data
}

// startWorker launches an in-process worker node.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	NewWorker(nil).Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// fastOptions shrinks the failure-detection clocks so fault tests finish in
// test time, not operations time.
func fastOptions(workers ...string) Options {
	return Options{
		Workers:      workers,
		Heartbeat:    100 * time.Millisecond,
		PingTimeout:  250 * time.Millisecond,
		LeaseTimeout: 30 * time.Second,
		Obs:          obs.New(),
	}
}

func counterValue(t *testing.T, o *obs.Obs, name string) int64 {
	t.Helper()
	var total int64
	for _, m := range o.Registry().Snapshot() {
		if m.Name == name {
			for _, s := range m.Series {
				total += int64(s.Value)
			}
		}
	}
	return total
}

func TestShardedJournalByteIdentical(t *testing.T) {
	golden := serialJournal(t)

	w1, w2 := startWorker(t), startWorker(t)

	// Coordinator-hosted L2 backed by the coordinator cache.
	cache := sim.NewCache(0)
	cmux := http.NewServeMux()
	NewCacheServer(cache).Mount(cmux)
	csrv := httptest.NewServer(cmux)
	defer csrv.Close()

	path := filepath.Join(t.TempDir(), "sharded.jsonl")
	opt := fastOptions(w1.URL, w2.URL)
	opt.Cache = cache
	opt.CacheURL = csrv.URL
	opt.Journal = path
	out, err := Run(context.Background(), fastSweep(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Points != 4 || out.Failed != 0 || out.BestIndex < 0 {
		t.Fatalf("outcome = %+v", out)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(golden) {
		t.Fatalf("sharded journal differs from serial:\nserial:\n%s\nsharded:\n%s", golden, got)
	}
}

func TestShardedResumeFromCommittedPrefix(t *testing.T) {
	golden := serialJournal(t)

	// Simulate a killed sweep: keep the header plus two committed rows.
	lines := splitLines(golden)
	if len(lines) != 5 {
		t.Fatalf("golden journal has %d lines, want 5", len(lines))
	}
	path := filepath.Join(t.TempDir(), "resume.jsonl")
	prefix := append(append([]byte{}, lines[0]...), '\n')
	for _, l := range lines[1:3] {
		prefix = append(append(prefix, l...), '\n')
	}
	if err := os.WriteFile(path, prefix, 0o644); err != nil {
		t.Fatal(err)
	}

	w := startWorker(t)
	opt := fastOptions(w.URL)
	opt.Journal = path
	out, err := Run(context.Background(), fastSweep(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Resumed != 2 {
		t.Fatalf("resumed = %d, want 2", out.Resumed)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(golden) {
		t.Fatalf("resumed sharded journal differs from serial golden")
	}
}

func splitLines(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			lines = append(lines, data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, data[start:])
	}
	return lines
}

// TestDegradesToLocalWithoutWorkers: zero reachable workers must produce the
// identical journal through plain local execution, not an error.
func TestDegradesToLocalWithoutWorkers(t *testing.T) {
	golden := serialJournal(t)
	path := filepath.Join(t.TempDir(), "degraded.jsonl")
	opt := fastOptions("127.0.0.1:1", "127.0.0.1:2") // nothing listens there
	opt.Journal = path
	out, err := Run(context.Background(), fastSweep(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Points != 4 || out.Failed != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(golden) {
		t.Fatal("degraded journal differs from serial")
	}
	if n := counterValue(t, opt.Obs, "cluster_degraded_runs_total"); n != 1 {
		t.Fatalf("cluster_degraded_runs_total = %d, want 1", n)
	}
}

func TestWorkerRejectsDigestMismatch(t *testing.T) {
	w := startWorker(t)
	sw := fastSweep()
	req := LeaseRequest{LeaseID: "lease-0000", Spec: sw,
		SpecSHA256: "not-the-digest", Indices: []int{0}}
	var resp LeaseResponse
	err := postJSON(context.Background(), http.DefaultClient, w.URL+PathLease, req, &resp)
	if err == nil {
		t.Fatal("worker accepted a lease with a mismatched spec digest")
	}
}

func TestNormalizeWorkerURL(t *testing.T) {
	cases := map[string]string{
		"host:8080":         "http://host:8080",
		"http://host:8080":  "http://host:8080",
		"http://host:8080/": "http://host:8080",
		"https://host":      "https://host",
		"":                  "",
		"127.0.0.1:8871":    "http://127.0.0.1:8871",
	}
	for in, want := range cases {
		if got := NormalizeWorkerURL(in); got != want {
			t.Errorf("NormalizeWorkerURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestTieredCache: L1 answers repeats, successes propagate to the remote L2
// (write-behind), a second node's tier hits the shared L2, and error entries
// stay local.
func TestTieredCache(t *testing.T) {
	backing := sim.NewCache(0)
	mux := http.NewServeMux()
	srv := NewCacheServer(backing)
	srv.Mount(mux)
	hsrv := httptest.NewServer(mux)
	defer hsrv.Close()

	tier1 := &Tiered{L1: sim.NewCache(0), L2: NewRemote(hsrv.URL, nil)}
	defer tier1.L2.Close()

	m := &sim.Metrics{LatencyNS: 42}
	tier1.Put("k1", m, nil)
	if got, err, ok := tier1.Get("k1"); !ok || err != nil || got.LatencyNS != 42 {
		t.Fatalf("tier1 L1 get = %v, %v, %v", got, err, ok)
	}

	// Write-behind is async: wait for the put to land on the server.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ok := backing.Get("k1"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write-behind put never reached the cache server")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A fresh node (empty L1) hits the shared L2 and promotes into L1.
	tier2 := &Tiered{L1: sim.NewCache(0), L2: NewRemote(hsrv.URL, nil)}
	defer tier2.L2.Close()
	if got, err, ok := tier2.Get("k1"); !ok || err != nil || got.LatencyNS != 42 {
		t.Fatalf("tier2 remote get = %v, %v, %v", got, err, ok)
	}
	if got, _, ok := tier2.L1.Get("k1"); !ok || got.LatencyNS != 42 {
		t.Fatal("remote hit was not promoted into L1")
	}

	// Error entries stay worker-local.
	tier1.Put("bad", nil, context.DeadlineExceeded)
	time.Sleep(50 * time.Millisecond)
	if _, _, ok := backing.Get("bad"); ok {
		t.Fatal("error entry crossed the wire")
	}
	if _, err, ok := tier1.L1.Get("bad"); !ok || err == nil {
		t.Fatal("error entry missing from L1")
	}
}

// TestRemoteBreaker: a dead cache server must not block evaluation - gets
// degrade to misses after the breaker opens.
func TestRemoteBreaker(t *testing.T) {
	rem := NewRemote("http://127.0.0.1:1", nil)
	defer rem.Close()
	if _, _, ok := rem.Get("k"); ok {
		t.Fatal("dead remote reported a hit")
	}
	if !rem.tripped() {
		t.Fatal("transport error did not open the breaker")
	}
	// While open, gets return instantly as misses.
	start := time.Now()
	if _, _, ok := rem.Get("k"); ok {
		t.Fatal("tripped remote reported a hit")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("tripped get took %v, want instant", d)
	}
}

// TestMemoizeThroughInterface: the free sim.Memoize must work for any tier,
// including a typed-nil concrete cache hiding in the interface.
func TestMemoizeThroughInterface(t *testing.T) {
	var typedNil *sim.Cache
	calls := 0
	eval := func() (*sim.Metrics, error) { calls++; return &sim.Metrics{LatencyNS: 1}, nil }
	if m, err := sim.Memoize(typedNil, "k", eval); err != nil || m.LatencyNS != 1 {
		t.Fatalf("typed-nil memoize = %v, %v", m, err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	tier := &Tiered{L1: sim.NewCache(0)}
	sim.Memoize(tier, "k", eval)
	sim.Memoize(tier, "k", eval)
	if calls != 2 {
		t.Fatalf("tiered memoize ran eval %d times, want 2 (one cached)", calls-1+1)
	}
	if st := tier.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("tier stats = %+v", st)
	}
}
