package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"soma/internal/dse"
	"soma/internal/obs"
)

// faulty wraps a real worker handler and injects failures on the lease path:
// the first `drop` lease requests answer 500, the first `delay` lease
// requests stall until the client gives up. Pings pass through untouched so
// the node looks alive the whole time - exactly the partial-failure mode
// (process up, work failing) that is hardest on a coordinator.
type faulty struct {
	inner http.Handler

	mu    sync.Mutex
	drop  int
	delay int
	dead  bool
	seen  int
}

func (f *faulty) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == PathLease {
		f.mu.Lock()
		f.seen++
		switch {
		case f.dead:
			f.mu.Unlock()
			panic(http.ErrAbortHandler) // connection reset, like a SIGKILL
		case f.drop > 0:
			f.drop--
			f.mu.Unlock()
			http.Error(w, "injected fault", http.StatusInternalServerError)
			return
		case f.delay > 0:
			f.delay--
			f.mu.Unlock()
			select { // stall until the coordinator's lease timeout fires
			case <-r.Context().Done():
			case <-time.After(30 * time.Second):
			}
			return
		}
		f.mu.Unlock()
	} else if r.URL.Path == PathPing {
		f.mu.Lock()
		dead := f.dead
		f.mu.Unlock()
		if dead {
			http.Error(w, "dead", http.StatusServiceUnavailable)
			return
		}
	}
	f.inner.ServeHTTP(w, r)
}

func (f *faulty) kill() {
	f.mu.Lock()
	f.dead = true
	f.mu.Unlock()
}

func (f *faulty) leases() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen
}

func startFaulty(t *testing.T, f *faulty) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	NewWorker(nil).Mount(mux)
	f.inner = mux
	srv := httptest.NewServer(f)
	t.Cleanup(srv.Close)
	return srv
}

// runSharded runs the standard grid through the coordinator and returns the
// journal bytes for comparison against the serial golden.
func runSharded(t *testing.T, opt Options) ([]byte, *dse.Outcome) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	opt.Journal = path
	out, err := Run(context.Background(), fastSweep(), opt)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, out
}

// TestFaultDroppedLeases: a worker that 500s the first two lease attempts.
// The coordinator must retry (counting each reassignment) and the final
// journal must not betray that anything went wrong.
func TestFaultDroppedLeases(t *testing.T) {
	golden := serialJournal(t)
	f := &faulty{drop: 2}
	srv := startFaulty(t, f)

	opt := fastOptions(srv.URL)
	got, out := runSharded(t, opt)
	if string(got) != string(golden) {
		t.Fatal("journal after dropped leases differs from serial")
	}
	if out.Failed != 0 {
		t.Fatalf("failed = %d", out.Failed)
	}
	if n := counterValue(t, opt.Obs, "cluster_lease_reassignments_total"); n != 2 {
		t.Fatalf("cluster_lease_reassignments_total = %d, want 2 (one per injected drop)", n)
	}
}

// TestFaultEveryLeaseDropsFallsLocal: a worker whose lease path always fails
// forces every lease through the local fallback once attempts are exhausted.
func TestFaultEveryLeaseDropsFallsLocal(t *testing.T) {
	golden := serialJournal(t)
	f := &faulty{drop: 1 << 20}
	srv := startFaulty(t, f)

	opt := fastOptions(srv.URL)
	opt.MaxAttempts = 1 // first failure sends the lease local
	got, out := runSharded(t, opt)
	if string(got) != string(golden) {
		t.Fatal("journal after local fallback differs from serial")
	}
	if out.Failed != 0 {
		t.Fatalf("failed = %d", out.Failed)
	}
	if n := counterValue(t, opt.Obs, "cluster_lease_reassignments_total"); n != 4 {
		t.Fatalf("cluster_lease_reassignments_total = %d, want 4 (each lease dropped once)", n)
	}
}

// TestFaultDelayedLease: a lease that stalls past LeaseTimeout must be timed
// out, reassigned, and the stalled attempt's eventual non-answer ignored.
func TestFaultDelayedLease(t *testing.T) {
	golden := serialJournal(t)
	f := &faulty{delay: 1}
	srv := startFaulty(t, f)

	opt := fastOptions(srv.URL)
	opt.LeaseTimeout = 400 * time.Millisecond
	got, out := runSharded(t, opt)
	if string(got) != string(golden) {
		t.Fatal("journal after delayed lease differs from serial")
	}
	if out.Failed != 0 {
		t.Fatalf("failed = %d", out.Failed)
	}
	if n := counterValue(t, opt.Obs, "cluster_lease_reassignments_total"); n < 1 {
		t.Fatal("timed-out lease was not counted as a reassignment")
	}
}

// TestFaultKillWorkerMidSweep is the acceptance scenario: two workers, one
// dies (connection resets, failed pings) after serving its first lease. The
// survivor absorbs the rest and the journal stays byte-identical.
func TestFaultKillWorkerMidSweep(t *testing.T) {
	golden := serialJournal(t)

	var f *faulty
	f = &faulty{}
	victim := startFaulty(t, f)
	survivor := startWorker(t)

	// Kill the victim the moment it finishes its first lease: wrap via the
	// seen counter - the second lease request hits the dead branch.
	go func() {
		for f.leases() < 1 {
			time.Sleep(5 * time.Millisecond)
		}
		f.kill()
	}()

	opt := fastOptions(victim.URL, survivor.URL)
	got, out := runSharded(t, opt)
	if string(got) != string(golden) {
		t.Fatal("journal after mid-sweep worker kill differs from serial")
	}
	if out.Failed != 0 || out.Points != 4 {
		t.Fatalf("outcome = %+v", out)
	}
}

// TestCommitDedup exercises the at-least-once safety valve directly: a lease
// delivered twice must mutate the outcome exactly once, count every duplicate
// point, and never re-append to the journal.
func TestCommitDedup(t *testing.T) {
	reg := obs.NewRegistry()
	out := &dse.Outcome{Rows: make([]dse.Row, 3)}
	c := &coord{opt: &Options{}, seq: []int{0, 1, 2}, rows: out.Rows, done: make([]bool, 3)}
	c.exportMetrics(reg)

	l := &lease{id: "lease-0000", pos: []int{0, 1}, indices: []int{0, 1}}
	first := []dse.Row{
		{Point: dse.Point{Index: 0, Seed: 11}},
		{Point: dse.Point{Index: 1, Seed: 12}},
	}
	c.commit(l, first)
	if c.committed != 2 || c.frontier != 2 {
		t.Fatalf("committed=%d frontier=%d after first delivery", c.committed, c.frontier)
	}

	// Second delivery of the same lease (e.g. a retried dispatch whose
	// first attempt actually succeeded): different payload, must be ignored.
	dup := []dse.Row{
		{Point: dse.Point{Index: 0, Seed: 99}},
		{Point: dse.Point{Index: 1, Seed: 99}},
	}
	c.commit(l, dup)
	if c.committed != 2 {
		t.Fatalf("committed = %d after duplicate delivery, want 2", c.committed)
	}
	if out.Rows[0].Point.Seed != 11 || out.Rows[1].Point.Seed != 12 {
		t.Fatalf("duplicate delivery overwrote committed rows: %+v", out.Rows[:2])
	}
	if got := c.deduped.Value(); got != 2 {
		t.Fatalf("cluster_points_deduped_total = %d, want 2", got)
	}

	// Out-of-order delivery holds the frontier until the gap fills.
	c.commit(&lease{id: "lease-0002", pos: []int{2}, indices: []int{2}},
		[]dse.Row{{Point: dse.Point{Index: 2, Seed: 13}}})
	if c.committed != 3 || c.frontier != 3 {
		t.Fatalf("committed=%d frontier=%d after final delivery", c.committed, c.frontier)
	}
}
