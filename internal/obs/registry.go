package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric types, in Prometheus exposition vocabulary.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are no-ops on a nil receiver, so instrumented
// code never branches on whether telemetry is enabled.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (negative deltas are ignored: a
// counter only goes up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 instrument for values that go up and down.
// All methods are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultBuckets are the registry's fixed log-scale histogram bounds: half
// decades from 1µs to 1000s. One bucket set serves every duration histogram
// in the repo - per-move proposals land near the bottom, whole paper-profile
// sweeps near the top - so dashboards can overlay any two families.
var DefaultBuckets = []float64{
	1e-6, 3.2e-6, 1e-5, 3.2e-5, 1e-4, 3.2e-4,
	1e-3, 3.2e-3, 1e-2, 3.2e-2, 1e-1, 3.2e-1,
	1, 3.2, 10, 32, 100, 320, 1000,
}

// Histogram counts observations into fixed log-scale buckets
// (DefaultBuckets) and tracks their sum, Prometheus-style (cumulative
// exposition, +Inf catch-all). Observe is three atomic operations; all
// methods are no-ops on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    Gauge
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// HistogramSnapshot is the JSON-able state of one histogram series.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts the per-bucket (not
	// cumulative) tallies, with one extra +Inf bucket at the end.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

func (h *Histogram) snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts)),
		Count: h.count.Load(), Sum: h.sum.Value()}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// series is one labeled instrument inside a family.
type series struct {
	labels string // rendered {k="v",...} signature, "" for unlabeled
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name, help, typ string
	series          []*series
	byLabel         map[string]*series
}

// Registry is a concurrency-safe metrics registry. Instruments are
// registered get-or-create by (name, labels), so call sites fetch them
// freely without coordinating; re-registering an existing series returns the
// same instrument. A nil *Registry hands out nil instruments, whose methods
// are all no-ops - the off switch for the whole layer.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSignature renders k/v pairs as a canonical `{k="v",...}` string.
// Pairs are sorted by key so call sites need not agree on argument order.
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(a, b int) bool { return kvs[a].k < kvs[b].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the series for (name, labels), creating family and series
// as needed. Registering one name under two different types panics: metric
// names are package-level wiring, not runtime data.
func (r *Registry) lookup(name, help, typ string, labels []string) *series {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabel: make(map[string]*series)}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	s, ok := f.byLabel[sig]
	if !ok {
		s = &series{labels: sig}
		switch typ {
		case TypeCounter:
			s.c = &Counter{}
		case TypeGauge:
			s.g = &Gauge{}
		case TypeHistogram:
			s.h = newHistogram(DefaultBuckets)
		}
		f.byLabel[sig] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter returns the named counter, creating it on first use. labels are
// key/value pairs ("stage", "stage2"). Nil-safe: a nil registry returns a
// nil counter, whose methods are no-ops.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, TypeCounter, labels).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, TypeGauge, labels).g
}

// GaugeFunc registers a gauge whose value is pulled from fn at exposition
// time - the natural shape for exporting counters a subsystem already keeps
// (sim.Cache hit/miss atomics, runtime stats). Re-registering a series
// replaces its function, so long-lived daemons can re-point at fresh
// objects. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	s := r.lookup(name, help, TypeGauge, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram (fixed DefaultBuckets log-scale
// bounds), creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, TypeHistogram, labels).h
}

// fnum renders a float the way Prometheus clients do: shortest round-trip
// representation, with +Inf spelled "+Inf".
func fnum(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus emits every family in the Prometheus text exposition
// format (families sorted by name, series by label signature). Safe on a
// nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	// Snapshot each family's series list under the lock; the instruments
	// themselves are atomic, so values are read lock-free below.
	type famView struct {
		f      *family
		series []*series
	}
	views := make([]famView, len(fams))
	for i, f := range fams {
		ss := make([]*series, len(f.series))
		copy(ss, f.series)
		sort.Slice(ss, func(a, b int) bool { return ss[a].labels < ss[b].labels })
		views[i] = famView{f: f, series: ss}
	}
	r.mu.Unlock()

	for _, v := range views {
		f := v.f
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range v.series {
			var err error
			switch f.typ {
			case TypeCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case TypeGauge:
				val := s.g.Value()
				if s.fn != nil {
					val = s.fn()
				}
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fnum(val))
			case TypeHistogram:
				err = writePromHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram renders one histogram series: cumulative _bucket lines
// (le-labeled, +Inf last), then _sum and _count.
func writePromHistogram(w io.Writer, name string, s *series) error {
	snap := s.h.snapshot()
	inner := strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}")
	var cum int64
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = fnum(snap.Bounds[i])
		}
		lbl := fmt.Sprintf(`{le="%s"}`, le)
		if inner != "" {
			lbl = fmt.Sprintf(`{%s,le="%s"}`, inner, le)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, lbl, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, fnum(snap.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, snap.Count)
	return err
}

// SeriesSnapshot is one labeled series in a registry snapshot.
type SeriesSnapshot struct {
	// Labels is the rendered `{k="v",...}` signature ("" when unlabeled).
	Labels string `json:"labels,omitempty"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value"`
	// Histogram carries bucketed series (Value is then the sum).
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// MetricSnapshot is one family in a registry snapshot.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// SnapshotDelta returns the per-series difference b minus a for one family:
// what changed between two Snapshot calls. Series are matched by label
// signature; a series present only in b is included verbatim (it appeared in
// between), one present only in a is dropped. Histogram buckets, counts and
// sums subtract element-wise. Tests use it instead of hand-diffing counters
// around an operation.
func SnapshotDelta(a, b MetricSnapshot) MetricSnapshot {
	prev := make(map[string]SeriesSnapshot, len(a.Series))
	for _, s := range a.Series {
		prev[s.Labels] = s
	}
	out := MetricSnapshot{Name: b.Name, Type: b.Type, Help: b.Help}
	for _, s := range b.Series {
		p, ok := prev[s.Labels]
		if !ok {
			out.Series = append(out.Series, s)
			continue
		}
		d := SeriesSnapshot{Labels: s.Labels, Value: s.Value - p.Value}
		if s.Histogram != nil {
			dh := &HistogramSnapshot{Bounds: s.Histogram.Bounds,
				Counts: make([]int64, len(s.Histogram.Counts)),
				Count:  s.Histogram.Count, Sum: s.Histogram.Sum}
			copy(dh.Counts, s.Histogram.Counts)
			if p.Histogram != nil {
				for i := range dh.Counts {
					if i < len(p.Histogram.Counts) {
						dh.Counts[i] -= p.Histogram.Counts[i]
					}
				}
				dh.Count -= p.Histogram.Count
				dh.Sum -= p.Histogram.Sum
			}
			d.Histogram = dh
		}
		out.Series = append(out.Series, d)
	}
	return out
}

// Snapshot returns a point-in-time JSON-able view of every family, sorted
// by name (series by label signature). Safe on a nil registry (returns nil).
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]MetricSnapshot, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		m := MetricSnapshot{Name: f.name, Type: f.typ, Help: f.help}
		ss := make([]*series, len(f.series))
		copy(ss, f.series)
		sort.Slice(ss, func(a, b int) bool { return ss[a].labels < ss[b].labels })
		for _, s := range ss {
			v := SeriesSnapshot{Labels: s.labels}
			switch f.typ {
			case TypeCounter:
				v.Value = float64(s.c.Value())
			case TypeGauge:
				if s.fn != nil {
					v.Value = s.fn()
				} else {
					v.Value = s.g.Value()
				}
			case TypeHistogram:
				v.Histogram = s.h.snapshot()
				v.Value = v.Histogram.Sum
			}
			m.Series = append(m.Series, v)
		}
		out = append(out, m)
	}
	r.mu.Unlock()
	return out
}
