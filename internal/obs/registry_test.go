package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusExposition pins the exact text format: HELP/TYPE lines,
// sorted families and series, histogram cumulative buckets with +Inf, _sum
// and _count.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total", "last family by name").Add(3)
	r.Counter("alpha_total", "a labeled counter", "stage", "stage2").Add(5)
	r.Counter("alpha_total", "a labeled counter", "stage", "stage1").Add(2)
	r.Gauge("beta", "a gauge").Set(1.5)
	r.GaugeFunc("gamma", "a pulled gauge", func() float64 { return 42 })
	h := r.Histogram("delta_seconds", "a histogram")
	h.Observe(0.5e-6) // first bucket (le 1e-6)
	h.Observe(2e-3)   // le 3.2e-3
	h.Observe(5000)   // +Inf

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP alpha_total a labeled counter
# TYPE alpha_total counter
alpha_total{stage="stage1"} 2
alpha_total{stage="stage2"} 5
# HELP beta a gauge
# TYPE beta gauge
beta 1.5
# HELP delta_seconds a histogram
# TYPE delta_seconds histogram
delta_seconds_bucket{le="1e-06"} 1
delta_seconds_bucket{le="3.2e-06"} 1
delta_seconds_bucket{le="1e-05"} 1
delta_seconds_bucket{le="3.2e-05"} 1
delta_seconds_bucket{le="0.0001"} 1
delta_seconds_bucket{le="0.00032"} 1
delta_seconds_bucket{le="0.001"} 1
delta_seconds_bucket{le="0.0032"} 2
delta_seconds_bucket{le="0.01"} 2
delta_seconds_bucket{le="0.032"} 2
delta_seconds_bucket{le="0.1"} 2
delta_seconds_bucket{le="0.32"} 2
delta_seconds_bucket{le="1"} 2
delta_seconds_bucket{le="3.2"} 2
delta_seconds_bucket{le="10"} 2
delta_seconds_bucket{le="32"} 2
delta_seconds_bucket{le="100"} 2
delta_seconds_bucket{le="320"} 2
delta_seconds_bucket{le="1000"} 2
delta_seconds_bucket{le="+Inf"} 3
delta_seconds_sum 5000.0020005
delta_seconds_count 3
# HELP gamma a pulled gauge
# TYPE gamma gauge
gamma 42
# HELP zeta_total last family by name
# TYPE zeta_total counter
zeta_total 3
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The +Inf catch-all must close every histogram series at the total
	// observation count - asserted explicitly, not just via the golden.
	if !strings.Contains(got, `delta_seconds_bucket{le="+Inf"} 3`) {
		t.Error("exposition missing the +Inf bucket at the full count")
	}
}

// TestHistogramBucketBoundaries checks the le semantics at the exact bucket
// bounds: an observation equal to a bound lands in that bound's bucket. Each
// case diffs full registry snapshots with SnapshotDelta, so the assertion is
// "exactly this one bucket moved" without hand-copying counter arrays.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", "")
	cases := []struct {
		v      float64
		bucket int // index into counts
	}{
		{0, 0},                          // below the first bound
		{1e-6, 0},                       // exactly the first bound
		{1e-6 + 1e-12, 1},               // just above it
		{3.2e-3, 7},                     // exactly a mid bound
		{1, 12},                         // exactly 1
		{1000, len(DefaultBuckets) - 1}, // exactly the last bound
		{1001, len(DefaultBuckets)},     // +Inf bucket
		{math.Inf(1), len(DefaultBuckets)},
	}
	for _, c := range cases {
		before := r.Snapshot()[0]
		h.Observe(c.v)
		d := SnapshotDelta(before, r.Snapshot()[0]).Series[0].Histogram
		for i, got := range d.Counts {
			var want int64
			if i == c.bucket {
				want = 1
			}
			if got != want {
				t.Errorf("Observe(%g): bucket %d count delta = %d, want %d", c.v, i, got, want)
			}
		}
		if d.Count != 1 {
			t.Errorf("Observe(%g): count delta = %d, want 1", c.v, d.Count)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(cases))
	}
}

// TestSnapshotDelta covers the series matching rules: values subtract by
// label signature, series new in b pass through, series gone from b drop.
func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", "k", "a").Add(3)
	before := r.Snapshot()[0]
	r.Counter("c_total", "", "k", "a").Add(4)
	r.Counter("c_total", "", "k", "b").Add(9) // appears between snapshots
	d := SnapshotDelta(before, r.Snapshot()[0])
	if d.Name != "c_total" || len(d.Series) != 2 {
		t.Fatalf("delta = %+v, want 2 series", d)
	}
	if d.Series[0].Labels != `{k="a"}` || d.Series[0].Value != 4 {
		t.Errorf("matched series delta = %+v, want 4", d.Series[0])
	}
	if d.Series[1].Labels != `{k="b"}` || d.Series[1].Value != 9 {
		t.Errorf("new series = %+v, want passthrough 9", d.Series[1])
	}
	empty := SnapshotDelta(d, MetricSnapshot{Name: "c_total"})
	if len(empty.Series) != 0 {
		t.Errorf("dropped series survived: %+v", empty.Series)
	}
}

// TestRegistryConcurrent hammers every instrument type from many goroutines;
// run under -race this is the registry's thread-safety proof. Counts are
// asserted exactly.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const G, N = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				// Get-or-create on every iteration: the lookup path is
				// part of what's being raced.
				r.Counter("c_total", "h", "stage", "s").Inc()
				r.Gauge("g", "h").Set(float64(i))
				r.Histogram("h_seconds", "h").Observe(float64(i) * 1e-4)
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total", "h", "stage", "s").Value(); got != G*N {
		t.Errorf("counter = %d, want %d", got, G*N)
	}
	if got := r.Histogram("h_seconds", "h").Count(); got != G*N {
		t.Errorf("histogram count = %d, want %d", got, G*N)
	}
}

// TestNilSafety: a nil registry and nil instruments must absorb every call.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "")
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("b", "")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	r.GaugeFunc("c", "", func() float64 { return 1 })
	h := r.Histogram("d_seconds", "")
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry wrote %q, err %v", b.String(), err)
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot non-nil")
	}

	var o *Obs
	if o.Registry() != nil || o.Trace() != nil || o.Trackf("x") != nil {
		t.Error("nil Obs handed out non-nil parts")
	}
}

// TestLabelCanonicalization: label order must not split series.
func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m_total", "", "x", "1", "y", "2")
	b := r.Counter("m_total", "", "y", "2", "x", "1")
	if a != b {
		t.Error("label order split the series")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("series not shared")
	}
}

// TestTypeMismatchPanics: one name, two types is a programming error.
func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "")
	defer func() {
		if recover() == nil {
			t.Error("no panic on type mismatch")
		}
	}()
	r.Gauge("m_total", "")
}

// TestCounterRejectsNegative: counters are monotone.
func TestCounterRejectsNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("m_total", "")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
}

// TestGaugeFuncReplace: re-registering swaps the pull function.
func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("g", "", func() float64 { return 1 })
	r.GaugeFunc("g", "", func() float64 { return 2 })
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Series) != 1 || snap[0].Series[0].Value != 2 {
		t.Errorf("snapshot = %+v, want single gauge 2", snap)
	}
}

// TestSnapshot covers the JSON-able view used by /v1/stats.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help a", "k", "v").Add(7)
	r.Histogram("b_seconds", "").Observe(0.5)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("families = %d, want 2", len(snap))
	}
	if snap[0].Name != "a_total" || snap[0].Type != TypeCounter ||
		snap[0].Series[0].Labels != `{k="v"}` || snap[0].Series[0].Value != 7 {
		t.Errorf("counter snapshot = %+v", snap[0])
	}
	hs := snap[1].Series[0].Histogram
	if snap[1].Name != "b_seconds" || hs == nil || hs.Count != 1 || hs.Sum != 0.5 {
		t.Errorf("histogram snapshot = %+v", snap[1])
	}
	if len(hs.Counts) != len(DefaultBuckets)+1 {
		t.Errorf("bucket counts = %d, want %d", len(hs.Counts), len(DefaultBuckets)+1)
	}
}
