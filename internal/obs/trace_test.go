package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// decodeTrace parses the Chrome trace-event JSON a tracer writes.
func decodeTrace(t *testing.T, data []byte) map[string]any {
	t.Helper()
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, data)
	}
	if _, ok := out["traceEvents"].([]any); !ok {
		t.Fatalf("no traceEvents array: %s", data)
	}
	return out
}

// TestTraceWellFormed: spans, counters and metadata come out as a valid
// trace-event file with the fields viewers require.
func TestTraceWellFormed(t *testing.T) {
	tr := NewTracer()
	track := tr.Track("engine")
	sp := track.Start("solve", "engine").Arg("backend", "soma")
	track.Counter("best_cost", 123.5)
	sp.End()

	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := decodeTrace(t, b.Bytes())
	evs := out["traceEvents"].([]any)
	var sawProc, sawThread, sawSpan, sawCounter bool
	for _, raw := range evs {
		ev := raw.(map[string]any)
		if _, ok := ev["pid"]; !ok {
			t.Errorf("event missing pid: %v", ev)
		}
		switch ev["ph"] {
		case "M":
			if ev["name"] == "process_name" {
				sawProc = true
			}
			if ev["name"] == "thread_name" {
				sawThread = true
				if args := ev["args"].(map[string]any); args["name"] != "engine" {
					t.Errorf("thread_name args = %v", args)
				}
			}
		case "X":
			sawSpan = true
			if ev["name"] != "solve" || ev["cat"] != "engine" {
				t.Errorf("span = %v", ev)
			}
			if dur, _ := ev["dur"].(float64); dur < 1 {
				t.Errorf("span dur %v < 1", ev["dur"])
			}
			if args := ev["args"].(map[string]any); args["backend"] != "soma" {
				t.Errorf("span args = %v", args)
			}
		case "C":
			sawCounter = true
			if args := ev["args"].(map[string]any); args["value"] != 123.5 {
				t.Errorf("counter args = %v", args)
			}
		}
	}
	if !sawProc || !sawThread || !sawSpan || !sawCounter {
		t.Errorf("missing events: proc=%v thread=%v span=%v counter=%v",
			sawProc, sawThread, sawSpan, sawCounter)
	}
	if out["displayTimeUnit"] != "ms" {
		t.Errorf("displayTimeUnit = %v", out["displayTimeUnit"])
	}
}

// TestTraceTracks: same name returns the same track; different names get
// distinct tids.
func TestTraceTracks(t *testing.T) {
	tr := NewTracer()
	a, b, a2 := tr.Track("a"), tr.Track("b"), tr.Track("a")
	if a != a2 {
		t.Error("same name gave different tracks")
	}
	if a.tid == b.tid {
		t.Error("different tracks share a tid")
	}
}

// TestTraceNilSafety: nil tracer, track and span absorb everything and
// still write a valid empty trace.
func TestTraceNilSafety(t *testing.T) {
	var tr *Tracer
	track := tr.Track("x")
	if track != nil {
		t.Fatal("nil tracer gave a track")
	}
	sp := track.Start("y", "z").Arg("k", 1)
	sp.End()
	track.Counter("c", 1)
	if tr.Dropped() != 0 {
		t.Error("nil tracer dropped")
	}
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := decodeTrace(t, b.Bytes())
	if evs := out["traceEvents"].([]any); len(evs) != 0 {
		t.Errorf("nil tracer wrote %d events", len(evs))
	}
}

// TestTraceCap: events beyond the cap are dropped and counted, and the file
// stays valid.
func TestTraceCap(t *testing.T) {
	tr := NewTracer()
	tr.cap = 8
	track := tr.Track("t") // uses 2 metadata events
	for i := 0; i < 20; i++ {
		track.Start("s", "c").End()
	}
	if tr.Dropped() != 14 { // 20 spans - (8-2) slots
		t.Errorf("dropped = %d, want 14", tr.Dropped())
	}
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := decodeTrace(t, b.Bytes())
	if got := out["droppedEventCount"].(float64); got != 14 {
		t.Errorf("droppedEventCount = %v", got)
	}
}

// TestTraceConcurrent: spans from many goroutines under -race.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			track := tr.Track(strings.Repeat("t", g+1))
			for i := 0; i < 200; i++ {
				track.Start("s", "c").Arg("i", i).End()
				track.Counter("n", float64(i))
			}
		}(g)
	}
	wg.Wait()
	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	decodeTrace(t, b.Bytes())
}
