// Package obs is the repo's zero-dependency observability layer: a
// concurrency-safe metrics registry with Prometheus text exposition, and a
// span tracer emitting Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing).
//
// The package imports nothing outside the standard library, so every layer
// of the stack - the annealer (internal/sa), the simulator and its caches
// (internal/sim), the solvers (internal/soma, internal/cocco), the engine,
// the sweep runner (internal/dse) and the daemon (internal/service) - can
// depend on it without cycles.
//
// Everything is hooks-style pass-through: a nil *Registry hands out nil
// instruments, and every instrument method is a no-op on a nil receiver, so
// instrumented code calls Counter.Add / Span.End unconditionally and pays
// nothing when observability is off. Instruments observe only - they never
// influence a search - so fixed-seed results are byte-identical with
// telemetry on or off.
package obs
