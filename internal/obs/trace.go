package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// traceEvent is one entry in the Chrome trace-event JSON array. Field names
// follow the trace-event format spec so Perfetto and chrome://tracing load
// the output directly.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`            // microseconds since tracer start
	Dur  int64          `json:"dur,omitempty"` // microseconds, ph:"X" only
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// DefaultTraceCap bounds how many events a tracer retains; beyond it events
// are counted as dropped rather than grown without limit (a long sweep can
// emit a span per point per stage).
const DefaultTraceCap = 1 << 16

// Tracer records spans and counter samples and writes them out as Chrome
// trace-event JSON. Spans are grouped onto named Tracks, which render as
// separate rows ("threads") in Perfetto. A nil *Tracer hands out nil
// Tracks/Spans whose methods are all no-ops.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	events  []traceEvent
	tracks  map[string]*Track
	nextTID int
	cap     int
	dropped int64
}

// NewTracer creates a tracer whose timestamps are relative to now, keeping
// at most DefaultTraceCap events.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), tracks: make(map[string]*Track), nextTID: 1, cap: DefaultTraceCap}
}

// now returns microseconds since the tracer started.
func (t *Tracer) now() int64 { return time.Since(t.start).Microseconds() }

// append records ev unless the cap is hit (then it counts a drop).
// Caller must hold t.mu.
func (t *Tracer) appendLocked(ev traceEvent) {
	if len(t.events) >= t.cap {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Dropped reports how many events were discarded after the cap was reached.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Track returns the named track (a Perfetto row), creating it on first use.
// Nil-safe: a nil tracer returns a nil track.
func (t *Tracer) Track(name string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr, ok := t.tracks[name]; ok {
		return tr
	}
	tr := &Track{t: t, tid: t.nextTID}
	t.nextTID++
	t.tracks[name] = tr
	// Metadata event naming the "thread" so viewers show the track name.
	t.appendLocked(traceEvent{Name: "thread_name", Ph: "M", PID: 1, TID: tr.tid,
		Args: map[string]any{"name": name}})
	// sort_index keeps tracks in creation order in Perfetto.
	t.appendLocked(traceEvent{Name: "thread_sort_index", Ph: "M", PID: 1, TID: tr.tid,
		Args: map[string]any{"sort_index": tr.tid}})
	return tr
}

// Track is one horizontal row of spans. Methods are no-ops on a nil
// receiver.
type Track struct {
	t   *Tracer
	tid int
}

// Start opens a span on the track; close it with End. cat is the trace
// category ("engine", "soma", "dse", ...), usable as a filter in viewers.
func (tr *Track) Start(name, cat string) *Span {
	if tr == nil {
		return nil
	}
	return &Span{tr: tr, name: name, cat: cat, ts: tr.t.now()}
}

// Counter emits one sample of a named counter series on this track; ph:"C"
// events render as a step chart in Perfetto (e.g. the best-cost timeline).
func (tr *Track) Counter(name string, value float64) {
	if tr == nil {
		return
	}
	tr.t.mu.Lock()
	tr.t.appendLocked(traceEvent{Name: name, Ph: "C", TS: tr.t.now(), PID: 1, TID: tr.tid,
		Args: map[string]any{"value": value}})
	tr.t.mu.Unlock()
}

// Span is one open interval on a track. Methods are no-ops on a nil
// receiver, so callers unconditionally defer sp.End().
type Span struct {
	tr   *Track
	name string
	cat  string
	ts   int64
	args map[string]any
}

// Arg attaches a key/value shown in the span's detail pane. Returns the span
// for chaining.
func (s *Span) Arg(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]any)
	}
	s.args[key] = value
	return s
}

// End closes the span, recording a complete (ph:"X") event.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr.t
	t.mu.Lock()
	end := t.now()
	dur := end - s.ts
	if dur < 1 {
		dur = 1 // zero-duration spans are invisible in viewers
	}
	t.appendLocked(traceEvent{Name: s.name, Cat: s.cat, Ph: "X", TS: s.ts, Dur: dur,
		PID: 1, TID: s.tr.tid, Args: s.args})
	t.mu.Unlock()
}

// WriteJSON emits the Chrome trace-event JSON object
// ({"traceEvents":[...],"displayTimeUnit":"ms"}). Events are sorted by
// timestamp (metadata first) so output is stable for a given span history.
// Safe on a nil tracer (writes an empty trace).
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	t.mu.Lock()
	evs := make([]traceEvent, 0, len(t.events)+1)
	evs = append(evs, traceEvent{Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "soma"}})
	evs = append(evs, t.events...)
	dropped := t.dropped
	t.mu.Unlock()
	sort.SliceStable(evs, func(a, b int) bool {
		// Metadata first, then by timestamp.
		am, bm := evs[a].Ph == "M", evs[b].Ph == "M"
		if am != bm {
			return am
		}
		return evs[a].TS < evs[b].TS
	})
	type traceFile struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		Dropped         int64        `json:"droppedEventCount,omitempty"`
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ms", Dropped: dropped})
}

// Obs bundles a metrics registry and a tracer: the single handle threaded
// through engine requests, sweep options, and somad jobs. A nil *Obs (the
// default everywhere) disables both.
type Obs struct {
	Reg    *Registry
	Tracer *Tracer
}

// New returns an Obs with a fresh registry and tracer.
func New() *Obs {
	return &Obs{Reg: NewRegistry(), Tracer: NewTracer()}
}

// Registry returns the metrics registry (nil when o is nil), safe to pass
// straight to instrument constructors.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Trace returns the tracer (nil when o is nil).
func (o *Obs) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Trackf is shorthand for Trace().Track(fmt.Sprintf(...)); handy for
// per-point sweep tracks. Nil-safe.
func (o *Obs) Trackf(format string, args ...any) *Track {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.Track(fmt.Sprintf(format, args...))
}
