package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestJournalNilSafety: a nil journal and nil series must absorb every call,
// and a nil journal builds a nil report - the "journal off" path.
func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	if j.Fresh() != nil {
		t.Error("nil journal Fresh non-nil")
	}
	s := j.Series("stage1", 0, 0)
	if s != nil {
		t.Fatal("nil journal handed out a series")
	}
	if s.SampleStride() != 0 {
		t.Error("nil series has a stride")
	}
	s.Record(Sample{Move: 0})
	s.MoveOutcome("order", true)
	s.Finish(Sample{Move: 10}, 3)
	if j.snapshotSeries() != nil {
		t.Error("nil journal snapshot non-nil")
	}
	if BuildConvergence(j, "stage2") != nil {
		t.Error("nil journal built a report")
	}
}

// TestJournalStride: only moves on the stride (plus move 0 and the Finish
// sample) are retained.
func TestJournalStride(t *testing.T) {
	j := NewJournalWith(10, 100)
	s := j.Series("stage1", 0, 0)
	if s.SampleStride() != 10 {
		t.Fatalf("stride = %d, want 10", s.SampleStride())
	}
	for n := int64(0); n <= 25; n++ {
		s.Record(Sample{Move: n, Proposed: n})
	}
	s.Finish(Sample{Move: 25, Proposed: 25}, 7)
	cs := j.snapshotSeries()[0]
	moves := make([]int64, len(cs.Samples))
	for i, sm := range cs.Samples {
		moves[i] = sm.Move
	}
	want := []int64{0, 10, 20, 25}
	if len(moves) != len(want) {
		t.Fatalf("retained moves %v, want %v", moves, want)
	}
	for i := range want {
		if moves[i] != want[i] {
			t.Fatalf("retained moves %v, want %v", moves, want)
		}
	}
	if !cs.Finished || cs.BestMove != 7 || cs.Moves != 25 {
		t.Errorf("series = finished %v best %d moves %d, want true 7 25",
			cs.Finished, cs.BestMove, cs.Moves)
	}
	// Finish seals: later writes are dropped.
	s.Record(Sample{Move: 30})
	s.MoveOutcome("late", true)
	s.Finish(Sample{Move: 40}, 9)
	cs = j.snapshotSeries()[0]
	if n := len(cs.Samples); cs.Samples[n-1].Move != 25 || cs.BestMove != 7 {
		t.Error("sealed series accepted writes")
	}
	if cs.Kinds != nil {
		t.Error("sealed series tallied a kind")
	}
}

// TestJournalDecimation: past the cap the series halves itself and doubles
// its effective stride, so memory stays bounded while retained moves remain
// exact multiples of the (reported) stride spanning the full run.
func TestJournalDecimation(t *testing.T) {
	j := NewJournalWith(1, 8)
	s := j.Series("stage2", 1, 0)
	const total = 1000
	for n := int64(0); n <= total; n++ {
		s.Record(Sample{Move: n, Proposed: n, BestCost: float64(2*total - n)})
	}
	s.Finish(Sample{Move: total, Proposed: total, BestCost: float64(total)}, total-1)
	cs := j.snapshotSeries()[0]
	if len(cs.Samples) > 8 {
		t.Fatalf("retained %d samples, cap 8", len(cs.Samples))
	}
	if cs.Stride < 128 {
		t.Errorf("effective stride %d, want >= 128 after decimation", cs.Stride)
	}
	for _, sm := range cs.Samples[:len(cs.Samples)-1] {
		if sm.Move%int64(cs.Stride) != 0 {
			t.Errorf("retained move %d not a multiple of stride %d", sm.Move, cs.Stride)
		}
	}
	if cs.Samples[0].Move != 0 {
		t.Error("decimation dropped the initial sample")
	}
	if last := cs.Samples[len(cs.Samples)-1]; last.Move != total {
		t.Errorf("terminal sample at move %d, want %d", last.Move, total)
	}
}

// TestJournalAcceptRate: the windowed rate derives from consecutive
// cumulative counters at snapshot time.
func TestJournalAcceptRate(t *testing.T) {
	j := NewJournalWith(10, 100)
	s := j.Series("stage1", 0, 0)
	s.Record(Sample{Move: 0})
	s.Record(Sample{Move: 10, Proposed: 10, Accepted: 8})
	s.Record(Sample{Move: 20, Proposed: 20, Accepted: 10})
	cs := j.snapshotSeries()[0]
	if got := cs.Samples[1].AcceptRate; got != 0.8 {
		t.Errorf("window 1 accept rate = %v, want 0.8", got)
	}
	if got := cs.Samples[2].AcceptRate; got != 0.2 {
		t.Errorf("window 2 accept rate = %v, want 0.2", got)
	}
	if cs.Finished {
		t.Error("unfinished series reported finished")
	}
}

// TestJournalSanitizesCosts: infeasible (+Inf) and NaN costs become -1 so
// every sample JSON-encodes.
func TestJournalSanitizesCosts(t *testing.T) {
	j := NewJournalWith(1, 100)
	s := j.Series("cocco", 0, 0)
	s.Record(Sample{Move: 0, BestCost: math.Inf(1), CurCost: math.NaN()})
	s.Finish(Sample{Move: 1, Proposed: 1, BestCost: math.Inf(1), CurCost: math.Inf(1)}, 0)
	cs := j.snapshotSeries()[0]
	if cs.Samples[0].BestCost != -1 || cs.Samples[0].CurCost != -1 {
		t.Errorf("sample 0 = %+v, want sanitized costs", cs.Samples[0])
	}
	if cs.FinalBest != -1 {
		t.Errorf("FinalBest = %v, want -1", cs.FinalBest)
	}
	if _, err := json.Marshal(BuildConvergence(j)); err != nil {
		t.Fatalf("report does not JSON-encode: %v", err)
	}
}

// TestJournalKindsAndOrdering: kind tallies come back sorted by name, and
// series sort by (stage, allocIter, chain) whatever the creation order.
func TestJournalKindsAndOrdering(t *testing.T) {
	j := NewJournal()
	s := j.Series("stage2", 2, 1)
	j.Series("stage2", 2, 0)
	j.Series("stage1", 2, 0)
	j.Series("stage2", 1, 3)
	s.MoveOutcome("move-tensor", true)
	s.MoveOutcome("duration", false)
	s.MoveOutcome("duration", true)
	all := j.snapshotSeries()
	var order []string
	for _, cs := range all {
		order = append(order, cs.Stage)
	}
	if strings.Join(order, ",") != "stage1,stage2,stage2,stage2" {
		t.Fatalf("stage order %v", order)
	}
	if all[1].AllocIter != 1 || all[2].Chain != 0 || all[3].Chain != 1 {
		t.Errorf("series order = %+v", all)
	}
	kinds := all[3].Kinds
	if len(kinds) != 2 || kinds[0].Kind != "duration" || kinds[1].Kind != "move-tensor" {
		t.Fatalf("kinds = %+v, want sorted [duration move-tensor]", kinds)
	}
	if kinds[0].Accepted != 1 || kinds[0].Rejected != 1 || kinds[1].Accepted != 1 {
		t.Errorf("kind tallies = %+v", kinds)
	}
	// Same key returns the same series.
	if j.Series("stage2", 2, 1) != s {
		t.Error("series not shared by key")
	}
}

// TestBuildConvergenceDiagnostics: winner selection honors the stage
// preference and the cost/allocIter/chain tie-breaks, and the derived
// numbers (moves-to-within-X%, plateau, dispersion) match hand computation.
func TestBuildConvergenceDiagnostics(t *testing.T) {
	j := NewJournalWith(10, 100)

	// stage1 has a lower cost but must lose to the preferred stage2.
	s1 := j.Series("stage1", 1, 0)
	s1.Record(Sample{Move: 0, BestCost: 50})
	s1.Finish(Sample{Move: 100, Proposed: 100, BestCost: 1}, 90)

	// Two stage2 chains; chain 1 wins on final cost.
	a := j.Series("stage2", 1, 0)
	a.Record(Sample{Move: 0, BestCost: 100})
	a.Finish(Sample{Move: 200, Proposed: 200, BestCost: 12}, 150)

	b := j.Series("stage2", 1, 1)
	b.Record(Sample{Move: 0, BestCost: 100})
	b.Record(Sample{Move: 10, Proposed: 10, Accepted: 5, BestCost: 11})    // 11 <= 10*1.10: within 10%
	b.Record(Sample{Move: 20, Proposed: 20, Accepted: 10, BestCost: 10.4}) // 10.4 <= 10*1.05: within 5%
	b.Finish(Sample{Move: 200, Proposed: 200, BestCost: 10}, 180)

	rep := BuildConvergence(j, "stage2", "stage1")
	if rep == nil || rep.Diagnostics == nil {
		t.Fatal("no diagnostics")
	}
	d := rep.Diagnostics
	if d.Stage != "stage2" || d.Chain != 1 || d.AllocIter != 1 {
		t.Fatalf("winner = %s/%d/%d, want stage2/1/1", d.Stage, d.AllocIter, d.Chain)
	}
	if d.FinalBest != 10 {
		t.Errorf("FinalBest = %v, want 10", d.FinalBest)
	}
	if d.TotalMoves != 500 {
		t.Errorf("TotalMoves = %d, want 500", d.TotalMoves)
	}
	if d.MovesTo10Pct != 10 {
		t.Errorf("MovesTo10Pct = %d, want 10 (11 <= 10*1.1)", d.MovesTo10Pct)
	}
	if d.MovesTo5Pct != 20 {
		t.Errorf("MovesTo5Pct = %d, want 20 (10.4 <= 10*1.05)", d.MovesTo5Pct)
	}
	if d.MovesTo1Pct != 200 {
		t.Errorf("MovesTo1Pct = %d, want 200", d.MovesTo1Pct)
	}
	if d.PlateauMoves != 19 {
		t.Errorf("PlateauMoves = %d, want 200-180-1 = 19", d.PlateauMoves)
	}
	if d.Chains != 2 {
		t.Errorf("Chains = %d, want 2", d.Chains)
	}
	// Population stddev of {12, 10} is 1, mean 11.
	if got := d.ChainDispersion; math.Abs(got-1.0/11) > 1e-12 {
		t.Errorf("ChainDispersion = %v, want 1/11", got)
	}

	// Without the stage preference the cheapest series overall wins.
	if d2 := BuildConvergence(j).Diagnostics; d2.Stage != "stage1" || d2.FinalBest != 1 {
		t.Errorf("unpreferred winner = %s/%v, want stage1/1", d2.Stage, d2.FinalBest)
	}
	// Preferring a stage with no series falls back to all of them.
	if d3 := BuildConvergence(j, "nope").Diagnostics; d3.Stage != "stage1" {
		t.Errorf("fallback winner = %s, want stage1", d3.Stage)
	}
}

// TestBuildConvergenceInfeasible: a journal whose every chain stayed
// infeasible still yields a well-formed report with -1 sentinels.
func TestBuildConvergenceInfeasible(t *testing.T) {
	j := NewJournalWith(10, 100)
	s := j.Series("cocco", 0, 0)
	s.Record(Sample{Move: 0, BestCost: math.Inf(1)})
	s.Finish(Sample{Move: 50, Proposed: 50, BestCost: math.Inf(1)}, 0)
	d := BuildConvergence(j, "cocco").Diagnostics
	if d.FinalBest != -1 || d.MovesTo10Pct != -1 || d.PlateauMoves != -1 {
		t.Errorf("infeasible diagnostics = %+v, want -1 sentinels", d)
	}
	// Feasible beats infeasible whatever the order.
	j.Series("cocco", 0, 1).Finish(Sample{Move: 50, Proposed: 50, BestCost: 99}, 10)
	if d := BuildConvergence(j, "cocco").Diagnostics; d.Chain != 1 || d.FinalBest != 99 {
		t.Errorf("winner = chain %d best %v, want 1/99", d.Chain, d.FinalBest)
	}
	// Empty journal: report with no series and no diagnostics.
	if rep := BuildConvergence(NewJournal()); rep == nil || len(rep.Series) != 0 || rep.Diagnostics != nil {
		t.Errorf("empty journal report = %+v", rep)
	}
}

// TestJournalConcurrent hammers concurrent chain writes and live snapshots;
// under -race this is the journal's thread-safety proof.
func TestJournalConcurrent(t *testing.T) {
	j := NewJournalWith(1, 32)
	const G, N = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := j.Series("stage2", 0, g)
			for n := int64(0); n < N; n++ {
				s.Record(Sample{Move: n, Proposed: n, BestCost: float64(N - n)})
				s.MoveOutcome("move-tensor", n%2 == 0)
				if n%100 == 0 {
					_ = BuildConvergence(j, "stage2")
				}
			}
			s.Finish(Sample{Move: N, Proposed: N, BestCost: 1}, N-1)
		}(g)
	}
	wg.Wait()
	rep := BuildConvergence(j, "stage2")
	if len(rep.Series) != G {
		t.Fatalf("series = %d, want %d", len(rep.Series), G)
	}
	for i, cs := range rep.Series {
		if cs.Chain != i || !cs.Finished || cs.Moves != N {
			t.Errorf("series %d = chain %d finished %v moves %d", i, cs.Chain, cs.Finished, cs.Moves)
		}
	}
	if rep.Diagnostics.Chains != G {
		t.Errorf("Chains = %d, want %d", rep.Diagnostics.Chains, G)
	}
}

// TestFreshKeepsShape: Fresh clones stride and cap but no data.
func TestFreshKeepsShape(t *testing.T) {
	j := NewJournalWith(5, 16)
	j.Series("stage1", 0, 0).Record(Sample{Move: 0})
	f := j.Fresh()
	if f == j {
		t.Fatal("Fresh returned the same journal")
	}
	if len(f.snapshotSeries()) != 0 {
		t.Error("Fresh carried data over")
	}
	if s := f.Series("x", 0, 0); s.SampleStride() != 5 {
		t.Errorf("Fresh stride = %d, want 5", s.SampleStride())
	}
}
