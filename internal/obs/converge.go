package obs

import "math"

// ConvergenceSeries is one chain's journaled trajectory as exported JSON:
// the retained samples plus series-level totals. See Sample for which fields
// are deterministic under parallel execution.
type ConvergenceSeries struct {
	Stage     string `json:"stage"`
	AllocIter int    `json:"alloc_iter"`
	Chain     int    `json:"chain"`
	// Stride is the effective retention stride after any decimation.
	Stride   int  `json:"stride"`
	Finished bool `json:"finished"`
	// BestMove is the 0-based move index of the last incumbent improvement
	// (meaningful once Finished).
	BestMove int64 `json:"best_move"`
	// Moves is the chain's total proposal count; FinalBest its final
	// incumbent cost (-1 = infeasible or empty).
	Moves     int64       `json:"moves"`
	FinalBest float64     `json:"final_best"`
	Kinds     []KindCount `json:"kinds,omitempty"`
	Samples   []Sample    `json:"samples"`
}

// Diagnostics condenses a journal into the search-quality numbers a human
// (or a backend tournament) compares: where the winning trajectory was, how
// fast it got close to its final cost, how long it plateaued, and how much
// the portfolio's chains disagreed. Every field is derived from sampled move
// counts and costs only - no wall clock - so diagnostics are deterministic
// for a fixed seed and any worker count.
type Diagnostics struct {
	// Stage/AllocIter/Chain locate the winning series (lowest final best
	// cost within the preferred stage; ties break toward the lowest
	// allocator iteration, then chain - the annealer's own tie-break).
	Stage     string `json:"stage"`
	AllocIter int    `json:"alloc_iter"`
	Chain     int    `json:"chain"`
	// FinalBest is the winning series' final incumbent cost (-1 when no
	// feasible point was ever found).
	FinalBest float64 `json:"final_best"`
	// TotalMoves sums proposals across every series in the journal.
	TotalMoves int64 `json:"total_moves"`
	// MovesToXPct is the sampled move count at which the winning chain
	// first came within X% of its final best cost (-1 when unknown, e.g.
	// an infeasible run). Sampling granularity: the true crossing lies in
	// the stride-wide window ending at the reported move.
	MovesTo10Pct int64 `json:"moves_to_10pct"`
	MovesTo5Pct  int64 `json:"moves_to_5pct"`
	MovesTo1Pct  int64 `json:"moves_to_1pct"`
	// PlateauMoves counts the winning chain's moves after its last
	// improvement - how long the search ran without finding anything
	// better (-1 when unknown).
	PlateauMoves int64 `json:"plateau_moves"`
	// Chains is the number of sibling series (same stage and allocator
	// iteration as the winner); ChainDispersion is the relative standard
	// deviation of their feasible final bests (0 for a single chain) - high
	// dispersion means the portfolio's restarts genuinely explored
	// different basins.
	Chains          int     `json:"chains"`
	ChainDispersion float64 `json:"chain_dispersion"`
}

// ConvergenceReport is the full journal export: every series plus the
// derived diagnostics. It is the payload of `soma -convergence-out`, the
// opt-in report.Result.Convergence section, and somad's
// GET /v1/jobs/{id}/convergence.
type ConvergenceReport struct {
	Series      []ConvergenceSeries `json:"series"`
	Diagnostics *Diagnostics        `json:"diagnostics,omitempty"`
}

// BuildConvergence snapshots the journal and computes its diagnostics.
// prefer lists stage labels in preference order for winner selection (e.g.
// "stage2", "stage1" for soma: the final cost comes from stage 2); when none
// of the preferred stages is present every series competes. Nil-safe: a nil
// journal yields a nil report. Safe to call on a live journal - unfinished
// series report their trajectory so far.
func BuildConvergence(j *Journal, prefer ...string) *ConvergenceReport {
	if j == nil {
		return nil
	}
	rep := &ConvergenceReport{Series: j.snapshotSeries()}
	if len(rep.Series) == 0 {
		return rep
	}

	candidates := rep.Series
	for _, stage := range prefer {
		var in []ConvergenceSeries
		for _, cs := range rep.Series {
			if cs.Stage == stage {
				in = append(in, cs)
			}
		}
		if len(in) > 0 {
			candidates = in
			break
		}
	}

	// cmp orders final bests with -1 (infeasible) worst.
	better := func(a, b float64) bool {
		if b < 0 {
			return a >= 0
		}
		return a >= 0 && a < b
	}
	win := candidates[0]
	for _, cs := range candidates[1:] {
		if better(cs.FinalBest, win.FinalBest) {
			win = cs
		}
	}

	d := &Diagnostics{Stage: win.Stage, AllocIter: win.AllocIter,
		Chain: win.Chain, FinalBest: win.FinalBest,
		MovesTo10Pct: -1, MovesTo5Pct: -1, MovesTo1Pct: -1, PlateauMoves: -1}
	for _, cs := range rep.Series {
		d.TotalMoves += cs.Moves
	}
	if win.FinalBest >= 0 {
		d.MovesTo10Pct = movesToWithin(win.Samples, win.FinalBest, 0.10)
		d.MovesTo5Pct = movesToWithin(win.Samples, win.FinalBest, 0.05)
		d.MovesTo1Pct = movesToWithin(win.Samples, win.FinalBest, 0.01)
		if plateau := win.Moves - win.BestMove - 1; plateau >= 0 {
			d.PlateauMoves = plateau
		}
	}

	var bests []float64
	for _, cs := range rep.Series {
		if cs.Stage == win.Stage && cs.AllocIter == win.AllocIter {
			d.Chains++
			if cs.FinalBest >= 0 {
				bests = append(bests, cs.FinalBest)
			}
		}
	}
	d.ChainDispersion = relativeStddev(bests)
	rep.Diagnostics = d
	return rep
}

// movesToWithin finds the first sampled move whose incumbent cost is within
// frac of final (-1 when never, which only happens on empty/infeasible
// series since the last sample's cost is final itself).
func movesToWithin(samples []Sample, final, frac float64) int64 {
	limit := final * (1 + frac)
	for _, sm := range samples {
		if sm.BestCost >= 0 && sm.BestCost <= limit {
			return sm.Move
		}
	}
	return -1
}

// relativeStddev is the population standard deviation over the mean (0 for
// fewer than two values or a non-positive mean).
func relativeStddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean <= 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return math.Sqrt(ss/float64(len(xs))) / mean
}
