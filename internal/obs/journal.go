package obs

import (
	"math"
	"sort"
	"sync"
)

// Journal collects bounded convergence series for one solver run: one Series
// per (stage, allocator iteration, chain) triple, each sampling the annealing
// trajectory at a fixed move-count stride. Like every obs instrument it is
// pass-through observation only - the annealer records cumulative counters it
// already tracks, never reads anything back, and a fixed-seed run produces
// byte-identical results with a journal attached or not.
//
// All methods are nil-safe (a nil *Journal yields nil Series whose methods
// are no-ops) and concurrency-safe: portfolio chains write their own series
// concurrently, and the somad dashboard snapshots a running job's journal
// live.
type Journal struct {
	mu     sync.Mutex
	stride int
	max    int
	series []*Series
	index  map[seriesKey]*Series
}

type seriesKey struct {
	stage     string
	allocIter int
	chain     int
}

// DefaultJournalStride is the move-count sampling stride; DefaultJournalCap
// bounds the samples retained per series (beyond it the series decimates:
// every second sample is dropped and the effective stride doubles, so long
// runs keep full-range coverage at fixed memory).
const (
	DefaultJournalStride = 64
	DefaultJournalCap    = 256
)

// NewJournal builds a journal with the default stride and per-series cap.
func NewJournal() *Journal { return NewJournalWith(0, 0) }

// NewJournalWith builds a journal sampling every stride moves and retaining
// at most capSamples samples per series (<= 0 selects the defaults).
func NewJournalWith(stride, capSamples int) *Journal {
	if stride <= 0 {
		stride = DefaultJournalStride
	}
	if capSamples <= 4 {
		capSamples = DefaultJournalCap
	}
	return &Journal{stride: stride, max: capSamples,
		index: make(map[seriesKey]*Series)}
}

// Fresh returns a new empty journal with the same stride and cap, or nil for
// a nil receiver. engine.Compare uses it to give every backend of a
// tournament its own journal.
func (j *Journal) Fresh() *Journal {
	if j == nil {
		return nil
	}
	return NewJournalWith(j.stride, j.max)
}

// Series returns the (created-on-first-use) series for one annealing chain,
// identified by stage label ("stage1", "stage2", "cocco"), allocator
// iteration and chain index. Returns nil on a nil journal.
func (j *Journal) Series(stage string, allocIter, chain int) *Series {
	if j == nil {
		return nil
	}
	key := seriesKey{stage: stage, allocIter: allocIter, chain: chain}
	j.mu.Lock()
	defer j.mu.Unlock()
	if s, ok := j.index[key]; ok {
		return s
	}
	s := &Series{stage: stage, allocIter: allocIter, chain: chain,
		base: j.stride, stride: j.stride, max: j.max}
	j.index[key] = s
	j.series = append(j.series, s)
	return s
}

// Sample is one point of a convergence series. All counters are cumulative
// since the chain started, so windowed rates derive from consecutive samples
// and decimation never loses totals. Costs are sanitized at record time:
// +Inf (infeasible) becomes -1, the same convention the engine's progress
// events use, so samples always JSON-encode.
type Sample struct {
	// Move is the 1-based move count at the sample point (0 for the initial
	// state sample).
	Move int64 `json:"move"`
	// Proposed counts every proposal (productive or not); Accepted/Rejected
	// split the productive ones; Improved counts incumbent improvements.
	Proposed int64 `json:"proposed"`
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	Improved int64 `json:"improved"`
	// BestCost/CurCost are the incumbent and current costs (-1 = infeasible).
	BestCost float64 `json:"best_cost"`
	CurCost  float64 `json:"cur_cost"`
	// Temperature is the cooling schedule's value at Move.
	Temperature float64 `json:"temperature"`
	// AcceptRate is the windowed acceptance rate since the previous retained
	// sample (accepted delta over proposed delta). Derived at snapshot time,
	// so decimation widens the window instead of corrupting the rate.
	AcceptRate float64 `json:"accept_rate"`
	// IncResumed/IncFallbacks mirror the incremental evaluator's cumulative
	// per-chain counters when the move state exposes them (stage 2). Their
	// split depends on shared-cache warmth, so they are deterministic only
	// for serial runs; every other field is seed-deterministic for any
	// worker count.
	IncResumed   int64 `json:"inc_resumed,omitempty"`
	IncFallbacks int64 `json:"inc_fallbacks,omitempty"`
}

// KindCount is one move operator's cumulative accept/reject tally.
type KindCount struct {
	Kind     string `json:"kind"`
	Accepted int64  `json:"accepted"`
	Rejected int64  `json:"rejected"`
}

// Series is one chain's bounded convergence trajectory. The annealer owns
// the write side; snapshots may be taken concurrently at any time.
type Series struct {
	mu        sync.Mutex
	stage     string
	allocIter int
	chain     int
	// base is the journal's configured stride (what the annealer samples
	// at); stride is the effective retention stride, doubling on decimation.
	base, stride, max int
	samples           []Sample
	kinds             map[string]*KindCount
	bestMove          int64
	finished          bool
}

// SampleStride returns the base sampling stride the recording loop should
// use (0 on a nil series, which callers treat as "journal off").
func (s *Series) SampleStride() int {
	if s == nil {
		return 0
	}
	return s.base
}

// sanitizeCost maps +Inf (infeasible) to -1 so samples JSON-encode.
func sanitizeCost(c float64) float64 {
	if math.IsInf(c, 0) || math.IsNaN(c) {
		return -1
	}
	return c
}

// Record appends one sample if its Move lands on the effective retention
// stride (Move 0, the initial-state sample, always does). When the series
// reaches its cap it decimates: every second retained sample is dropped and
// the effective stride doubles - deterministic, and the retained moves stay
// exact multiples of the new stride. No-op on a nil series or after Finish.
func (s *Series) Record(sm Sample) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return
	}
	if s.stride > 0 && sm.Move%int64(s.stride) != 0 {
		return
	}
	sm.BestCost = sanitizeCost(sm.BestCost)
	sm.CurCost = sanitizeCost(sm.CurCost)
	s.samples = append(s.samples, sm)
	if len(s.samples) >= s.max {
		kept := s.samples[:0]
		for i := range s.samples {
			if i%2 == 0 {
				kept = append(kept, s.samples[i])
			}
		}
		s.samples = kept
		s.stride *= 2
	}
}

// MoveOutcome tallies one productive move's accept/reject under its operator
// kind. No-op on a nil series or after Finish.
func (s *Series) MoveOutcome(kind string, accepted bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return
	}
	if s.kinds == nil {
		s.kinds = make(map[string]*KindCount)
	}
	kc, ok := s.kinds[kind]
	if !ok {
		kc = &KindCount{Kind: kind}
		s.kinds[kind] = kc
	}
	if accepted {
		kc.Accepted++
	} else {
		kc.Rejected++
	}
}

// Finish records the chain's terminal sample (always retained, whatever the
// stride) and the move index of its last incumbent improvement, then seals
// the series. Idempotent; no-op on a nil series.
func (s *Series) Finish(sm Sample, bestMove int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return
	}
	sm.BestCost = sanitizeCost(sm.BestCost)
	sm.CurCost = sanitizeCost(sm.CurCost)
	if n := len(s.samples); n == 0 || s.samples[n-1].Move != sm.Move {
		s.samples = append(s.samples, sm)
	} else {
		s.samples[n-1] = sm
	}
	s.bestMove = bestMove
	s.finished = true
}

// snapshot copies the series under its lock, deriving the windowed
// acceptance rate from consecutive cumulative counts.
func (s *Series) snapshot() ConvergenceSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := ConvergenceSeries{Stage: s.stage, AllocIter: s.allocIter,
		Chain: s.chain, Stride: s.stride, Finished: s.finished,
		BestMove: s.bestMove, FinalBest: -1,
		Samples: append([]Sample(nil), s.samples...)}
	var prev Sample
	for i := range cs.Samples {
		sm := &cs.Samples[i]
		if dp := sm.Proposed - prev.Proposed; dp > 0 {
			sm.AcceptRate = float64(sm.Accepted-prev.Accepted) / float64(dp)
		}
		prev = cs.Samples[i]
	}
	if n := len(cs.Samples); n > 0 {
		last := cs.Samples[n-1]
		cs.Moves = last.Proposed
		cs.FinalBest = last.BestCost
	}
	cs.Kinds = make([]KindCount, 0, len(s.kinds))
	for _, kc := range s.kinds {
		cs.Kinds = append(cs.Kinds, *kc)
	}
	sort.Slice(cs.Kinds, func(a, b int) bool { return cs.Kinds[a].Kind < cs.Kinds[b].Kind })
	if len(cs.Kinds) == 0 {
		cs.Kinds = nil
	}
	return cs
}

// snapshotSeries snapshots every series in deterministic (stage, allocIter,
// chain) order - portfolio chains create series concurrently, so creation
// order alone is not stable.
func (j *Journal) snapshotSeries() []ConvergenceSeries {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	series := append([]*Series(nil), j.series...)
	j.mu.Unlock()
	out := make([]ConvergenceSeries, 0, len(series))
	for _, s := range series {
		out = append(out, s.snapshot())
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Stage != out[b].Stage {
			return out[a].Stage < out[b].Stage
		}
		if out[a].AllocIter != out[b].AllocIter {
			return out[a].AllocIter < out[b].AllocIter
		}
		return out[a].Chain < out[b].Chain
	})
	return out
}
