package exp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/dse"
	"soma/internal/engine"
	"soma/internal/graph"
	"soma/internal/hw"
	"soma/internal/report"
	"soma/internal/sim"
	"soma/internal/soma"
)

// Platforms lists the named hardware presets Platform accepts, in sorted
// order. The registry itself lives in the hw package (shared with the
// engine and the somad /v1/hw enumeration); these wrappers keep the exp API
// stable.
func Platforms() []string { return hw.Platforms() }

// Platform returns the named hardware preset.
func Platform(name string) (hw.Config, error) {
	cfg, err := hw.Platform(name)
	if err != nil {
		return hw.Config{}, fmt.Errorf("exp: unknown platform %q (%v)", name, Platforms())
	}
	return cfg, nil
}

// Workloads returns the paper's Fig. 6 workload list for a platform (GPT-2
// Small on edge, XL on cloud).
func Workloads(platform string) []string {
	gpt := "gpt2s"
	if platform == "cloud" {
		gpt = "gpt2xl"
	}
	return []string{"resnet50", "resnet101", "ires", "randwire",
		gpt + "-prefill", gpt + "-decode"}
}

// Batches are the paper's batch-size sweep.
var Batches = []int{1, 4, 16, 64}

// Row is one scheme's measured data point (one bar group of Fig. 6).
type Row struct {
	Scheme    string
	LatencyNS float64
	EnergyPJ  float64
	CorePJ    float64
	DRAMPJ    float64
	Util      float64
	TheoUtil  float64
	AvgBufMB  float64
	PeakBufMB float64
	DRAMBytes int64
	Tiles     int
	Tensors   int
	LGs       int
	FLGs      int
}

func rowFromMetrics(scheme string, m *sim.Metrics, s *core.Schedule) Row {
	st := s.Summarize()
	return Row{
		Scheme:    scheme,
		LatencyNS: m.LatencyNS,
		EnergyPJ:  m.EnergyPJ,
		CorePJ:    m.CoreEnergyPJ,
		DRAMPJ:    m.DRAMEnergyPJ,
		Util:      m.Utilization,
		TheoUtil:  m.TheoreticalMaxUtil,
		AvgBufMB:  m.AvgBufferBytes / (1 << 20),
		PeakBufMB: float64(m.PeakBufferBytes) / (1 << 20),
		DRAMBytes: m.TotalDRAMBytes,
		Tiles:     st.Tiles,
		Tensors:   st.Tensors,
		LGs:       st.LGs,
		FLGs:      st.FLGs,
	}
}

// Case identifies one experiment point.
type Case struct {
	Platform string
	Workload string
	Batch    int
}

func (c Case) String() string {
	return fmt.Sprintf("%s/%s/b%d", c.Platform, c.Workload, c.Batch)
}

// PairResult is one Fig. 6 bar group: Cocco vs SoMa stage 1 vs stage 2.
type PairResult struct {
	Case  Case
	Cocco Row
	Ours1 Row
	Ours2 Row
	// Cache is the SoMa run's evaluation-cache counter snapshot.
	Cache sim.CacheStats
	Err   error
}

// searchCache reconstructs the evaluation-cache counter snapshot a payload
// reports.
func searchCache(s *report.Search) sim.CacheStats {
	if s == nil {
		return sim.CacheStats{}
	}
	st := sim.CacheStats{Hits: s.CacheHits, Misses: s.CacheMisses,
		Entries: s.CacheEntries, Flushes: s.CacheGenerations}
	st.Rate = st.HitRate()
	return st
}

// RunPair runs the baseline and both SoMa stages on one case: one
// engine.Request compared across the cocco and soma backends (one Fig. 6
// bar group).
func RunPair(c Case, par soma.Params) PairResult {
	out := PairResult{Case: c}
	req := engine.Request{Model: c.Workload, Batch: c.Batch, Platform: c.Platform,
		Objective: soma.EDP(), Params: par}
	results, err := engine.Compare(context.Background(), req, "cocco", "soma")
	if err != nil {
		out.Err = fmt.Errorf("%s: %w", c, err)
		return out
	}
	base, ours := results[0], results[1]
	out.Cocco = rowFromMetrics("cocco", base.Raw.Metrics, base.Raw.Schedule)
	out.Cache = searchCache(ours.Search)
	// Stage 1 metrics come from re-parsing the winning encoding with the
	// heuristic double-buffer DLSA (what "Ours_1" shows in Fig. 6).
	s1sched, err := core.Parse(ours.Raw.Graph, ours.Raw.Encoding)
	if err != nil {
		out.Err = err
		return out
	}
	out.Ours1 = rowFromMetrics("ours1", ours.Raw.Stage1Metrics, s1sched)
	out.Ours2 = rowFromMetrics("ours2", ours.Raw.Metrics, ours.Raw.Schedule)
	return out
}

// ParallelMap runs fn over all cases using up to workers goroutines,
// preserving input order in the result.
func ParallelMap[T any](items []T, workers int, fn func(T) PairResult) []PairResult {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	out := make([]PairResult, len(items))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = fn(items[i])
		}(i)
	}
	wg.Wait()
	return out
}

// Fig6Cases enumerates the 48 (platform, workload, batch) points of Fig. 6.
func Fig6Cases() []Case {
	var cs []Case
	for _, pf := range []string{"edge", "cloud"} {
		for _, w := range Workloads(pf) {
			for _, b := range Batches {
				cs = append(cs, Case{Platform: pf, Workload: w, Batch: b})
			}
		}
	}
	return cs
}

// Fig6 runs the overall comparison on the given cases.
func Fig6(cases []Case, par soma.Params, workers int) []PairResult {
	return ParallelMap(cases, workers, func(c Case) PairResult {
		return RunPair(c, par)
	})
}

// GeoMeans summarizes Fig. 6 results the way Sec. VI-B reports them:
// geometric-mean speedups and energy ratios of SoMa over Cocco.
type GeoMeans struct {
	SpeedupStage1 float64 // Ours_1 vs Cocco
	SpeedupStage2 float64 // Ours_2 vs Cocco
	Stage2Extra   float64 // Ours_2 vs Ours_1
	EnergyRatio   float64 // Ours_2 / Cocco energy
	GapToBound    float64 // mean (bound - util)/bound of Ours_2
	N             int
}

// Summarize folds valid pair results into geometric means.
func Summarize(rs []PairResult) GeoMeans {
	var gm GeoMeans
	logSum := func(acc *float64, v float64) {
		*acc += ln(v)
	}
	var s1, s2, extra, en, gap float64
	for _, r := range rs {
		if r.Err != nil || r.Cocco.LatencyNS == 0 || r.Ours2.LatencyNS == 0 {
			continue
		}
		gm.N++
		logSum(&s1, r.Cocco.LatencyNS/r.Ours1.LatencyNS)
		logSum(&s2, r.Cocco.LatencyNS/r.Ours2.LatencyNS)
		logSum(&extra, r.Ours1.LatencyNS/r.Ours2.LatencyNS)
		logSum(&en, r.Ours2.EnergyPJ/r.Cocco.EnergyPJ)
		gap += (r.Ours2.TheoUtil - r.Ours2.Util) / r.Ours2.TheoUtil
	}
	if gm.N == 0 {
		return gm
	}
	n := float64(gm.N)
	gm.SpeedupStage1 = exp(s1 / n)
	gm.SpeedupStage2 = exp(s2 / n)
	gm.Stage2Extra = exp(extra / n)
	gm.EnergyRatio = exp(en / n)
	gm.GapToBound = gap / n
	return gm
}

// ScatterPoint is one dot of Fig. 3 (normalized ops vs DRAM access).
type ScatterPoint struct {
	Name     string
	NormOps  float64
	NormDRAM float64
}

// Fig3Layers produces the per-layer scatter of Fig. 3(a)/(b): each compute
// layer's DRAM demand (weights + boundary fmaps, assuming no fusion) against
// its operation count, both normalized to the maximum.
func Fig3Layers(g *graph.Graph) []ScatterPoint {
	var pts []ScatterPoint
	var maxOps, maxDRAM float64
	raw := make([][2]float64, 0, len(g.ComputeLayers()))
	names := make([]string, 0, len(g.ComputeLayers()))
	for _, id := range g.ComputeLayers() {
		l := g.Layer(id)
		dram := float64(l.WeightBytes)
		for _, d := range l.Deps {
			dram += float64(g.OutBytes(d.Producer))
		}
		dram += float64(g.OutBytes(id))
		ops := float64(l.Ops)
		raw = append(raw, [2]float64{ops, dram})
		names = append(names, l.Name)
		if ops > maxOps {
			maxOps = ops
		}
		if dram > maxDRAM {
			maxDRAM = dram
		}
	}
	for i, r := range raw {
		pts = append(pts, ScatterPoint{Name: names[i],
			NormOps: r[0] / maxOps, NormDRAM: r[1] / maxDRAM})
	}
	return pts
}

// Fig3Tiles produces the per-tile scatter of Fig. 3(c)/(d) under the Cocco
// baseline schedule: each computing tile's DRAM demand (the tensors it
// gates) against its operation count.
func Fig3Tiles(g *graph.Graph, cfg hw.Config, par soma.Params) ([]ScatterPoint, error) {
	base, err := engine.Run(context.Background(), engine.Request{Backend: "cocco",
		Graph: g, Batch: 1, Config: &cfg, Objective: soma.EDP(), Params: par}, nil)
	if err != nil {
		return nil, err
	}
	s := base.Raw.Schedule
	dramOf := make([]float64, s.NumTiles())
	for i := range s.Tensors {
		t := &s.Tensors[i]
		if t.Kind.IsLoad() {
			dramOf[t.FirstUse] += float64(t.Bytes)
		} else {
			dramOf[t.Producer] += float64(t.Bytes)
		}
	}
	var maxOps, maxDRAM float64
	ops := make([]float64, s.NumTiles())
	for i := 0; i < s.NumTiles(); i++ {
		ops[i] = float64(s.TileRequest(i).Ops)
		if ops[i] > maxOps {
			maxOps = ops[i]
		}
		if dramOf[i] > maxDRAM {
			maxDRAM = dramOf[i]
		}
	}
	if maxDRAM == 0 {
		maxDRAM = 1
	}
	pts := make([]ScatterPoint, s.NumTiles())
	for i := range pts {
		pts[i] = ScatterPoint{
			Name:     fmt.Sprintf("%s#%d", g.Layer(s.Tiles[i].Layer).Name, s.Tiles[i].Index),
			NormOps:  ops[i] / maxOps,
			NormDRAM: dramOf[i] / maxDRAM,
		}
	}
	return pts, nil
}

// Spread quantifies how spread out along the axes a scatter is: the mean
// angular deviation of each point from the balanced diagonal, normalized to
// [0,1] (0 = every point has matched compute/DRAM demand, 1 = every point
// sits on an axis). The paper's Fig. 3 claim is that per-tile points are
// more spread out than per-layer points.
func Spread(pts []ScatterPoint) float64 {
	var acc float64
	n := 0
	for _, p := range pts {
		if p.NormOps == 0 && p.NormDRAM == 0 {
			acc += 1 // degenerate: counts as axis-hugging
			n++
			continue
		}
		angle := math.Atan2(p.NormDRAM, p.NormOps) // 0..pi/2
		acc += math.Abs(angle-math.Pi/4) / (math.Pi / 4)
		n++
	}
	if n == 0 {
		return 0
	}
	return acc / float64(n)
}

// DSEPoint is one cell of Fig. 7's heatmaps.
type DSEPoint struct {
	DRAMGBs  float64
	BufferMB int64
	// LatencyMS per scheme.
	CoccoMS, SoMaMS float64
	CoccoErr        string
	SoMaErr         string
}

// Fig7Grid is the paper's DSE sweep for the 16 TOPS edge accelerator.
var (
	Fig7Bandwidths = []float64{8, 16, 32, 64, 128}
	Fig7Buffers    = []int64{2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20}
)

// Fig7 sweeps DRAM bandwidth x buffer size for one workload/batch: a thin
// adapter over the dse grid runner. Both backends run as one sweep sharing
// one evaluation cache; ctx cancels promptly between (and within) grid
// points. Per-cell search failures surface as the point's CoccoErr/SoMaErr,
// exactly like the paper's infeasible heatmap corners.
func Fig7(ctx context.Context, workload string, batch int, par soma.Params, workers int) ([]DSEPoint, error) {
	bufsMB := make([]int64, len(Fig7Buffers))
	for i, b := range Fig7Buffers {
		bufsMB[i] = b >> 20
	}
	res, err := dse.Run(ctx, dse.Sweep{
		Name:     "fig7",
		Backends: []string{"cocco", "soma"},
		Platforms: []string{"edge"}, Models: []string{workload},
		Batches: []int{batch},
		DRAMGBs: Fig7Bandwidths, GBufMB: bufsMB,
		Params: &par, Workers: workers,
	}, dse.Options{})
	if err != nil {
		return nil, err
	}
	out := make([]DSEPoint, 0, len(Fig7Bandwidths)*len(Fig7Buffers))
	cell := make(map[[2]float64]int)
	for _, bw := range Fig7Bandwidths {
		for _, buf := range Fig7Buffers {
			cell[[2]float64{bw, float64(buf >> 20)}] = len(out)
			out = append(out, DSEPoint{DRAMGBs: bw, BufferMB: buf >> 20})
		}
	}
	for _, row := range res.Rows {
		i := cell[[2]float64{row.Point.DRAMGBs, float64(row.Point.GBufMB)}]
		var ms float64
		if row.Result != nil {
			ms = row.Result.Metrics.LatencyNS / 1e6
		}
		switch row.Point.Backend {
		case "cocco":
			out[i].CoccoMS, out[i].CoccoErr = ms, row.Err
		case "soma":
			out[i].SoMaMS, out[i].SoMaErr = ms, row.Err
		}
	}
	return out, nil
}

// TracePair renders the Fig. 8 execution graphs: Cocco, SoMa stage 1 and
// SoMa stage 2 schedules of one workload, each with a traced evaluation.
type TracePair struct {
	Cocco, Ours1, Ours2 *core.Schedule
	MCocco, M1, M2      *sim.Metrics
}

// Fig8 produces the three traced schedules for one case: a two-point dse
// sweep over the backend axis (Cocco and SoMa on the same cell), then traced
// re-evaluations of the three schedules.
func Fig8(ctx context.Context, c Case, par soma.Params) (*TracePair, error) {
	cfg, err := Platform(c.Platform)
	if err != nil {
		return nil, err
	}
	cs := coresched.New(cfg)
	res, err := dse.Run(ctx, dse.Sweep{
		Name:     "fig8",
		Backends: []string{"cocco", "soma"},
		Platforms: []string{c.Platform}, Models: []string{c.Workload},
		Batches: []int{c.Batch}, Params: &par,
	}, dse.Options{})
	if err != nil {
		return nil, err
	}
	var base, ours *report.Result
	for _, row := range res.Rows {
		if row.Err != "" {
			return nil, fmt.Errorf("%s: %s", row.Point.Label(), row.Err)
		}
		switch row.Point.Backend {
		case "cocco":
			base = row.Result
		case "soma":
			ours = row.Result
		}
	}
	s1, err := core.Parse(ours.Raw.Graph, ours.Raw.Encoding)
	if err != nil {
		return nil, err
	}
	tp := &TracePair{Cocco: base.Raw.Schedule, Ours1: s1, Ours2: ours.Raw.Schedule}
	if tp.MCocco, err = sim.Evaluate(base.Raw.Schedule, cs, sim.Options{Trace: true}); err != nil {
		return nil, err
	}
	if tp.M1, err = sim.Evaluate(s1, cs, sim.Options{Trace: true}); err != nil {
		return nil, err
	}
	if tp.M2, err = sim.Evaluate(ours.Raw.Schedule, cs, sim.Options{Trace: true}); err != nil {
		return nil, err
	}
	return tp, nil
}

// SortCases orders cases deterministically (heavy ones first improves
// parallel load balance is NOT done here; stable order for reports).
func SortCases(cs []Case) {
	sort.Slice(cs, func(a, b int) bool { return cs[a].String() < cs[b].String() })
}
