package exp

import (
	"context"
	"strings"
	"testing"

	"soma/internal/soma"
)

func TestFrontierConsistent(t *testing.T) {
	good := []ObjectivePoint{
		{N: 0, M: 1, LatencyMS: 1.0, EnergyMJ: 0.9},
		{N: 1, M: 0, LatencyMS: 1.3, EnergyMJ: 0.7},
		{N: 1, M: 1, LatencyMS: 1.1, EnergyMJ: 0.8},
	}
	if !FrontierConsistent(good, 0.01) {
		t.Fatal("consistent frontier rejected")
	}
	bad := []ObjectivePoint{
		{N: 0, M: 1, LatencyMS: 2.0, EnergyMJ: 0.9}, // latency-only slower!
		{N: 1, M: 0, LatencyMS: 1.0, EnergyMJ: 0.7},
	}
	if FrontierConsistent(bad, 0.01) {
		t.Fatal("inconsistent frontier accepted")
	}
	// Missing corners are vacuously consistent.
	if !FrontierConsistent(bad[:1], 0.01) {
		t.Fatal("partial sweep must be vacuously consistent")
	}
}

func TestObjectiveSweepSmall(t *testing.T) {
	c := Case{Platform: "edge", Workload: "resnet50", Batch: 1}
	pts := ObjectiveSweep(context.Background(), c, soma.FastParams(), []soma.Objective{
		{N: 0, M: 1}, {N: 1, M: 0}, {N: 1, M: 1},
	})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Err != nil {
			t.Fatalf("(%g,%g): %v", p.N, p.M, p.Err)
		}
		if p.LatencyMS <= 0 || p.EnergyMJ <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	// Generous tolerance: the fast profile is noisy, but the latency-only
	// objective should not be grossly slower than the energy-only one.
	if !FrontierConsistent(pts, 0.5) {
		t.Fatalf("frontier wildly inconsistent: %+v", pts)
	}
}

func TestSeedSweep(t *testing.T) {
	c := Case{Platform: "edge", Workload: "resnet50", Batch: 1}
	st, err := SeedSweep(context.Background(), c, soma.FastParams(), []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Seeds != 3 || st.MinMS <= 0 || st.MaxMS < st.MinMS || st.MedMS < st.MinMS {
		t.Fatalf("stats = %+v", st)
	}
	// Seed noise is real but bounded: the search should land within 2x.
	if st.SpreadPct > 1.0 {
		t.Fatalf("seed spread %.0f%% too large", st.AllWithinPercent)
	}
	if !strings.Contains(st.String(), "seeds") {
		t.Fatalf("String = %q", st.String())
	}
	if _, err := SeedSweep(context.Background(), Case{Platform: "bad"}, soma.FastParams(), []int64{1}); err == nil {
		t.Fatal("bad platform accepted")
	}
}
