package exp

import (
	"strings"
	"testing"

	"soma/internal/models"
	"soma/internal/soma"
)

func TestPlatform(t *testing.T) {
	e, err := Platform("edge")
	if err != nil || e.Name != "edge" {
		t.Fatalf("edge: %v %v", e.Name, err)
	}
	c, err := Platform("cloud")
	if err != nil || c.Name != "cloud" {
		t.Fatalf("cloud: %v %v", c.Name, err)
	}
	if _, err := Platform("tpu"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestWorkloadsPairing(t *testing.T) {
	edge := Workloads("edge")
	cloud := Workloads("cloud")
	if len(edge) != 6 || len(cloud) != 6 {
		t.Fatalf("workload counts: %d %d", len(edge), len(cloud))
	}
	joinE, joinC := strings.Join(edge, ","), strings.Join(cloud, ",")
	if !strings.Contains(joinE, "gpt2s-") || strings.Contains(joinE, "gpt2xl") {
		t.Fatalf("edge pairing wrong: %v", edge)
	}
	if !strings.Contains(joinC, "gpt2xl-") || strings.Contains(joinC, "gpt2s-") {
		t.Fatalf("cloud pairing wrong: %v", cloud)
	}
	for _, w := range append(edge, cloud...) {
		if _, err := models.Build(w, 1); err != nil {
			t.Fatalf("workload %s unbuildable: %v", w, err)
		}
	}
}

func TestFig6CasesCount(t *testing.T) {
	cs := Fig6Cases()
	// The paper's artifact runs 96 experiments for Fig. 6: 48 cases, each
	// with baseline + ours.
	if len(cs) != 48 {
		t.Fatalf("cases = %d, want 48", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if seen[c.String()] {
			t.Fatalf("duplicate case %s", c)
		}
		seen[c.String()] = true
	}
}

func TestRunPairProducesOrderedRows(t *testing.T) {
	r := RunPair(Case{Platform: "edge", Workload: "resnet50", Batch: 1}, soma.FastParams())
	if r.Err != nil {
		t.Fatalf("RunPair: %v", r.Err)
	}
	if r.Cocco.Scheme != "cocco" || r.Ours1.Scheme != "ours1" || r.Ours2.Scheme != "ours2" {
		t.Fatalf("schemes: %s %s %s", r.Cocco.Scheme, r.Ours1.Scheme, r.Ours2.Scheme)
	}
	// Stage 2 must never be slower than stage 1 (same LFA, explored DLSA).
	if r.Ours2.LatencyNS > r.Ours1.LatencyNS*1.0001 {
		t.Fatalf("stage 2 regressed: %g > %g", r.Ours2.LatencyNS, r.Ours1.LatencyNS)
	}
	// The headline result: SoMa beats the baseline on ResNet-50.
	if r.Ours2.LatencyNS >= r.Cocco.LatencyNS {
		t.Fatalf("SoMa %g slower than Cocco %g", r.Ours2.LatencyNS, r.Cocco.LatencyNS)
	}
	if r.Ours2.EnergyPJ >= r.Cocco.EnergyPJ {
		t.Fatalf("SoMa energy %g above Cocco %g", r.Ours2.EnergyPJ, r.Cocco.EnergyPJ)
	}
	// Fusion statistics go the paper's way.
	if r.Cocco.Tiles <= r.Ours2.Tiles || r.Cocco.LGs <= r.Ours2.LGs {
		t.Fatalf("fusion stats inverted: %+v vs %+v", r.Cocco, r.Ours2)
	}
}

func TestRunPairUnknownWorkload(t *testing.T) {
	r := RunPair(Case{Platform: "edge", Workload: "nope", Batch: 1}, soma.FastParams())
	if r.Err == nil {
		t.Fatal("unknown workload must error")
	}
	r = RunPair(Case{Platform: "nope", Workload: "resnet50", Batch: 1}, soma.FastParams())
	if r.Err == nil {
		t.Fatal("unknown platform must error")
	}
}

func TestSummarizeGeoMeans(t *testing.T) {
	rs := []PairResult{
		{
			Cocco: Row{LatencyNS: 200, EnergyPJ: 100},
			Ours1: Row{LatencyNS: 120, EnergyPJ: 80},
			Ours2: Row{LatencyNS: 100, EnergyPJ: 70, Util: 0.4, TheoUtil: 0.5},
		},
		{
			Cocco: Row{LatencyNS: 400, EnergyPJ: 100},
			Ours1: Row{LatencyNS: 250, EnergyPJ: 90},
			Ours2: Row{LatencyNS: 200, EnergyPJ: 80, Util: 0.45, TheoUtil: 0.5},
		},
		{Err: errString("bad")}, // skipped
	}
	gm := Summarize(rs)
	if gm.N != 2 {
		t.Fatalf("N = %d", gm.N)
	}
	if gm.SpeedupStage2 < 1.9 || gm.SpeedupStage2 > 2.1 {
		t.Fatalf("speedup = %g, want ~2", gm.SpeedupStage2)
	}
	if gm.EnergyRatio >= 1 {
		t.Fatalf("energy ratio = %g", gm.EnergyRatio)
	}
	if gm.Stage2Extra <= 1 {
		t.Fatalf("stage-2 extra = %g", gm.Stage2Extra)
	}
	if gm.GapToBound <= 0 || gm.GapToBound >= 1 {
		t.Fatalf("gap = %g", gm.GapToBound)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary must be zero")
	}
}

type errString string

func (e errString) Error() string { return string(e) }

func TestFig3LayersNormalization(t *testing.T) {
	g, _ := models.Build("resnet50", 1)
	pts := Fig3Layers(g)
	if len(pts) != len(g.ComputeLayers()) {
		t.Fatalf("points = %d", len(pts))
	}
	var maxOps, maxDRAM float64
	for _, p := range pts {
		if p.NormOps < 0 || p.NormOps > 1 || p.NormDRAM < 0 || p.NormDRAM > 1 {
			t.Fatalf("point out of range: %+v", p)
		}
		if p.NormOps > maxOps {
			maxOps = p.NormOps
		}
		if p.NormDRAM > maxDRAM {
			maxDRAM = p.NormDRAM
		}
	}
	if maxOps != 1 || maxDRAM != 1 {
		t.Fatalf("normalization must reach 1: %g %g", maxOps, maxDRAM)
	}
}

func TestFig3TilesMoreSpreadThanLayers(t *testing.T) {
	g, _ := models.Build("resnet50", 1)
	cfg, _ := Platform("edge")
	layers := Fig3Layers(g)
	tiles, err := Fig3Tiles(g, cfg, soma.FastParams())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 3 claim: per-tile points are more spread out.
	if Spread(tiles) <= Spread(layers) {
		t.Fatalf("tiles spread %g <= layers spread %g", Spread(tiles), Spread(layers))
	}
	// And many tiles hug the axes (no-DRAM tiles and weight-load tiles).
	axisTiles := 0
	for _, p := range tiles {
		if p.NormOps < 0.05 || p.NormDRAM < 0.05 {
			axisTiles++
		}
	}
	if float64(axisTiles) < 0.3*float64(len(tiles)) {
		t.Fatalf("only %d/%d tiles near the axes", axisTiles, len(tiles))
	}
}

func TestSpreadEdgeCases(t *testing.T) {
	if Spread(nil) != 0 {
		t.Fatal("empty spread must be 0")
	}
	pts := []ScatterPoint{{NormOps: 1, NormDRAM: 0}, {NormOps: 0, NormDRAM: 1}}
	if Spread(pts) != 1 {
		t.Fatalf("spread = %g", Spread(pts))
	}
}

func TestParallelMapPreservesOrder(t *testing.T) {
	cases := []Case{
		{Platform: "edge", Workload: "a", Batch: 1},
		{Platform: "edge", Workload: "b", Batch: 2},
		{Platform: "edge", Workload: "c", Batch: 3},
	}
	out := ParallelMap(cases, 2, func(c Case) PairResult {
		return PairResult{Case: c}
	})
	for i := range cases {
		if out[i].Case != cases[i] {
			t.Fatalf("order not preserved: %v", out)
		}
	}
}

func TestSortCases(t *testing.T) {
	cs := []Case{
		{Platform: "edge", Workload: "z", Batch: 1},
		{Platform: "cloud", Workload: "a", Batch: 1},
	}
	SortCases(cs)
	if cs[0].Platform != "cloud" {
		t.Fatalf("not sorted: %v", cs)
	}
}
