package exp

import (
	"bytes"
	"sort"
	"testing"

	"soma/internal/models"
	"soma/internal/report"
	"soma/internal/soma"
	"soma/internal/workload"
)

func scenarioPar() soma.Params {
	par := soma.FastParams()
	par.Beta1, par.Beta2 = 2, 1
	par.Stage1MaxIters, par.Stage2MaxIters = 400, 600
	return par
}

// TestRunScenarioAggregates: a composed run carries the scenario section with
// per-component isolated results and sane aggregate comparisons.
func TestRunScenarioAggregates(t *testing.T) {
	sc, err := workload.Builtin("multi-tenant-cnn")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(ScenarioRun{Scenario: sc, Platform: "edge", Obj: soma.EDP(), Par: scenarioPar()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload.Model != ScenarioModelName("multi-tenant-cnn") {
		t.Fatalf("workload model %q", res.Workload.Model)
	}
	info := res.Scenario
	if info == nil {
		t.Fatal("no scenario section on a composed result")
	}
	if len(info.Components) != 2 {
		t.Fatalf("want 2 components, got %d", len(info.Components))
	}
	var isolatedSum float64
	for _, c := range info.Components {
		if c.Isolated == nil {
			t.Fatalf("component %s has no isolated result", c.Name)
		}
		if c.Isolated.Workload.Model != c.Model || c.Isolated.Cost <= 0 {
			t.Fatalf("component %s isolated result malformed", c.Name)
		}
		if c.Layers <= 0 || c.Ops <= 0 {
			t.Fatalf("component %s ownership snapshot empty", c.Name)
		}
		isolatedSum += c.Isolated.Metrics.LatencyNS
	}
	if info.IsolatedSumLatencyNS != isolatedSum {
		t.Fatalf("isolated sum %g != recomputed %g", info.IsolatedSumLatencyNS, isolatedSum)
	}
	if info.ComposedSpeedup <= 0 || info.WeightedIsolatedCost <= 0 {
		t.Fatalf("aggregates not computed: %+v", info)
	}
	if res.Cost <= 0 || res.Metrics.LatencyNS <= 0 {
		t.Fatalf("composed metrics degenerate: cost %g", res.Cost)
	}
}

// TestRunScenarioDeterministicAcrossWorkers: a fixed-seed scenario run is a
// pure function of (spec, platform, params) - varying the portfolio worker
// count or re-running must return byte-identical payloads, up to the
// reporting-only search.workers echo (which records the worker count itself)
// and the cache counters (which, like dse journal rows document, depend on
// how concurrent chains interleave their shared-cache lookups).
func TestRunScenarioDeterministicAcrossWorkers(t *testing.T) {
	sc, err := workload.Builtin("multi-tenant-cnn")
	if err != nil {
		t.Fatal(err)
	}
	scrub := func(s *report.Search) {
		s.Workers = 0
		s.CacheHits, s.CacheMisses, s.CacheEntries, s.CacheGenerations = 0, 0, 0, 0
		s.CacheHitRate = 0
	}
	render := func(chains, workers int) []byte {
		par := scenarioPar()
		par.Chains = chains
		par.Workers = workers
		res, err := RunScenario(ScenarioRun{Scenario: sc, Platform: "edge", Obj: soma.EDP(), Par: par})
		if err != nil {
			t.Fatal(err)
		}
		scrub(res.Search)
		for i := range res.Scenario.Components {
			scrub(res.Scenario.Components[i].Isolated.Search)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(2, 1)
	if !bytes.Equal(serial, render(2, 3)) {
		t.Fatal("scenario result changed with the worker count")
	}
	if !bytes.Equal(serial, render(2, 1)) {
		t.Fatal("scenario result changed between identical runs")
	}
}

// TestRegistryListingsSorted: every registry listing the scenario subsystem
// references is deterministically sorted, so specs stay stable across runs.
func TestRegistryListingsSorted(t *testing.T) {
	cat := Registry()
	if !sort.StringsAreSorted(cat.Models) || len(cat.Models) == 0 {
		t.Fatalf("catalog models not sorted: %v", cat.Models)
	}
	if !sort.StringsAreSorted(cat.Platforms) || len(cat.Platforms) == 0 {
		t.Fatalf("catalog platforms not sorted: %v", cat.Platforms)
	}
	if !sort.StringsAreSorted(cat.Scenarios) || len(cat.Scenarios) < 3 {
		t.Fatalf("catalog scenarios not sorted: %v", cat.Scenarios)
	}
	for i := 0; i < 3; i++ {
		again := Registry()
		if len(again.Models) != len(cat.Models) || len(again.Scenarios) != len(cat.Scenarios) {
			t.Fatal("catalog not deterministic")
		}
	}
	known := make(map[string]bool, len(cat.Models))
	for _, m := range models.Names() {
		known[m] = true
	}
	for _, pf := range cat.Platforms {
		for _, w := range Workloads(pf) {
			if !known[w] {
				t.Fatalf("Workloads(%s) lists %q, absent from the models registry", pf, w)
			}
		}
	}
}
