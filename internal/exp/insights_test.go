package exp

import (
	"math"
	"testing"
)

// synthGrid builds a DSE grid from a latency function.
func synthGrid(f func(bw float64, bufMB int64) float64) []DSEPoint {
	var pts []DSEPoint
	for _, bw := range Fig7Bandwidths {
		for _, buf := range Fig7Buffers {
			pts = append(pts, DSEPoint{
				DRAMGBs: bw, BufferMB: buf >> 20,
				SoMaMS: f(bw, buf>>20), CoccoMS: 2 * f(bw, buf>>20),
			})
		}
	}
	return pts
}

func TestAnalyzeDSEBandwidthDominated(t *testing.T) {
	// Latency ~ 1/bw, insensitive to buffer: the batch-1 regime.
	pts := synthGrid(func(bw float64, buf int64) float64 { return 1000 / bw })
	st := AnalyzeDSE(pts, "soma")
	if st.BandwidthGain < 1.9 || st.BandwidthGain > 2.1 {
		t.Fatalf("bandwidth gain = %g, want ~2", st.BandwidthGain)
	}
	if st.BufferGain > 1.01 {
		t.Fatalf("buffer gain = %g, want ~1", st.BufferGain)
	}
	if st.BestMS != 1000.0/128.0 {
		t.Fatalf("best = %g", st.BestMS)
	}
}

func TestAnalyzeDSEBufferCompensates(t *testing.T) {
	// Latency ~ max(compute, traffic/bw) where traffic shrinks with
	// buffer: SoMa's large-batch regime with a flat envelope.
	pts := synthGrid(func(bw float64, buf int64) float64 {
		compute := 10.0
		traffic := 4096.0 / float64(buf)
		return math.Max(compute, traffic/bw)
	})
	st := AnalyzeDSE(pts, "soma")
	if st.EnvelopeCells < 5 {
		t.Fatalf("flat envelope expected, got %d cells", st.EnvelopeCells)
	}
	if !st.CheaperInEnvelope {
		t.Fatal("envelope must contain cheaper-than-max/max configurations")
	}
}

func TestAnalyzeDSESchemeSelection(t *testing.T) {
	pts := synthGrid(func(bw float64, buf int64) float64 { return 100 })
	soma := AnalyzeDSE(pts, "soma")
	cocco := AnalyzeDSE(pts, "cocco")
	if soma.BestMS != 100 || cocco.BestMS != 200 {
		t.Fatalf("scheme selection wrong: %g %g", soma.BestMS, cocco.BestMS)
	}
}

func TestAnalyzeDSESkipsErrors(t *testing.T) {
	pts := synthGrid(func(bw float64, buf int64) float64 { return 100 / bw })
	for i := range pts {
		if pts[i].BufferMB == 2 {
			pts[i].SoMaErr = "infeasible"
		}
	}
	st := AnalyzeDSE(pts, "soma")
	if math.IsInf(st.BestMS, 1) || st.BestMS <= 0 {
		t.Fatalf("best = %g", st.BestMS)
	}
	if st.BandwidthGain < 1.5 {
		t.Fatalf("bandwidth gain = %g", st.BandwidthGain)
	}
}
