package exp

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"soma/internal/dse"
	"soma/internal/report"
	"soma/internal/soma"
)

// ObjectivePoint is one row of the Energy^n x Delay^m sweep: the framework's
// optimization goal is tunable (Sec. V-A), trading energy against latency.
type ObjectivePoint struct {
	N, M      float64
	LatencyMS float64
	EnergyMJ  float64
	Err       error
}

// ObjectiveSweep schedules one case under several (n, m) objective exponents
// and reports how the chosen schedule shifts along the energy/latency
// frontier. It is a thin adapter over the dse grid runner: the objective
// axis shares one evaluation cache (metrics are objective-independent, so
// neighboring exponents reuse each other's evaluations) and ctx cancels
// mid-grid.
func ObjectiveSweep(ctx context.Context, c Case, par soma.Params, objectives []soma.Objective) []ObjectivePoint {
	out := make([]ObjectivePoint, len(objectives))
	objs := make([]report.Objective, len(objectives))
	for i, o := range objectives {
		out[i] = ObjectivePoint{N: o.N, M: o.M}
		objs[i] = report.Objective{N: o.N, M: o.M}
	}
	res, err := dse.Run(ctx, dse.Sweep{
		Name:      "objective-sweep",
		Models:    []string{c.Workload},
		Batches:   []int{c.Batch},
		Platforms: []string{c.Platform},
		Objectives: objs,
		Params:     &par,
	}, dse.Options{})
	if err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	// The objective axis is the only multi-valued one, so rows map to the
	// requested exponents one-to-one in order.
	for i, row := range res.Rows {
		if row.Err != "" {
			out[i].Err = errors.New(row.Err)
			continue
		}
		out[i].LatencyMS = row.Result.Metrics.LatencyNS / 1e6
		out[i].EnergyMJ = row.Result.Metrics.EnergyPJ / 1e9
	}
	return out
}

// FrontierConsistent checks the expected monotonicity of an objective sweep:
// increasing the delay exponent must not produce a slower schedule than the
// energy-weighted objectives, within tolerance (search noise).
func FrontierConsistent(pts []ObjectivePoint, tol float64) bool {
	var latOnly, enOnly *ObjectivePoint
	for i := range pts {
		if pts[i].Err != nil {
			continue
		}
		if pts[i].N == 0 && pts[i].M > 0 {
			latOnly = &pts[i]
		}
		if pts[i].N > 0 && pts[i].M == 0 {
			enOnly = &pts[i]
		}
	}
	if latOnly == nil || enOnly == nil {
		return true
	}
	return latOnly.LatencyMS <= enOnly.LatencyMS*(1+tol) &&
		enOnly.EnergyMJ <= latOnly.EnergyMJ*(1+tol)
}

// SeedStats summarizes a seed-stability run.
type SeedStats struct {
	Seeds            int
	MinMS, MedMS     float64
	MaxMS            float64
	SpreadPct        float64 // (max-min)/min
	AllWithinPercent float64 // == SpreadPct * 100
}

// SeedSweep runs SoMa on one case with k different seeds and reports the
// latency spread - the reproducibility check the artifact's fixed-seed
// protocol relies on. The seed axis is a dse sweep sharing one evaluation
// cache, so chains re-exploring states a neighboring seed already evaluated
// hit warm entries; ctx cancels mid-grid.
func SeedSweep(ctx context.Context, c Case, par soma.Params, seeds []int64) (SeedStats, error) {
	res, err := dse.Run(ctx, dse.Sweep{
		Name:      "seed-sweep",
		Models:    []string{c.Workload},
		Batches:   []int{c.Batch},
		Platforms: []string{c.Platform},
		Seeds:     seeds,
		Params:    &par,
	}, dse.Options{})
	if err != nil {
		return SeedStats{}, err
	}
	var ms []float64
	for _, row := range res.Rows {
		if row.Err != "" {
			return SeedStats{}, errors.New(row.Err)
		}
		ms = append(ms, row.Result.Metrics.LatencyNS/1e6)
	}
	sort.Float64s(ms)
	st := SeedStats{
		Seeds: len(ms),
		MinMS: ms[0], MaxMS: ms[len(ms)-1], MedMS: ms[len(ms)/2],
	}
	if st.MinMS > 0 {
		st.SpreadPct = (st.MaxMS - st.MinMS) / st.MinMS
		st.AllWithinPercent = st.SpreadPct * 100
	}
	return st, nil
}

// String renders seed stats for reports.
func (s SeedStats) String() string {
	return fmt.Sprintf("%d seeds: min %.3f / med %.3f / max %.3f ms (spread %.1f%%)",
		s.Seeds, s.MinMS, s.MedMS, s.MaxMS, s.AllWithinPercent)
}
