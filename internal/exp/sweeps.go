package exp

import (
	"context"
	"fmt"
	"sort"

	"soma/internal/engine"
	"soma/internal/models"
	"soma/internal/soma"
)

// ObjectivePoint is one row of the Energy^n x Delay^m sweep: the framework's
// optimization goal is tunable (Sec. V-A), trading energy against latency.
type ObjectivePoint struct {
	N, M      float64
	LatencyMS float64
	EnergyMJ  float64
	Err       error
}

// ObjectiveSweep schedules one case under several (n, m) objective exponents
// and reports how the chosen schedule shifts along the energy/latency
// frontier.
func ObjectiveSweep(c Case, par soma.Params, objectives []soma.Objective) []ObjectivePoint {
	out := make([]ObjectivePoint, len(objectives))
	cfg, err := Platform(c.Platform)
	if err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	g, err := models.Build(c.Workload, c.Batch)
	if err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out
	}
	res := ParallelMap(objectives, 0, func(obj soma.Objective) PairResult {
		r, err := engine.Run(context.Background(), engine.Request{Graph: g,
			Model: c.Workload, Batch: c.Batch, Platform: c.Platform, Config: &cfg,
			Objective: obj, Params: par}, nil)
		if err != nil {
			return PairResult{Err: err}
		}
		return PairResult{Ours2: Row{
			LatencyNS: r.Metrics.LatencyNS,
			EnergyPJ:  r.Metrics.EnergyPJ,
		}}
	})
	for i, r := range res {
		out[i] = ObjectivePoint{N: objectives[i].N, M: objectives[i].M, Err: r.Err}
		if r.Err == nil {
			out[i].LatencyMS = r.Ours2.LatencyNS / 1e6
			out[i].EnergyMJ = r.Ours2.EnergyPJ / 1e9
		}
	}
	return out
}

// FrontierConsistent checks the expected monotonicity of an objective sweep:
// increasing the delay exponent must not produce a slower schedule than the
// energy-weighted objectives, within tolerance (search noise).
func FrontierConsistent(pts []ObjectivePoint, tol float64) bool {
	var latOnly, enOnly *ObjectivePoint
	for i := range pts {
		if pts[i].Err != nil {
			continue
		}
		if pts[i].N == 0 && pts[i].M > 0 {
			latOnly = &pts[i]
		}
		if pts[i].N > 0 && pts[i].M == 0 {
			enOnly = &pts[i]
		}
	}
	if latOnly == nil || enOnly == nil {
		return true
	}
	return latOnly.LatencyMS <= enOnly.LatencyMS*(1+tol) &&
		enOnly.EnergyMJ <= latOnly.EnergyMJ*(1+tol)
}

// SeedStats summarizes a seed-stability run.
type SeedStats struct {
	Seeds            int
	MinMS, MedMS     float64
	MaxMS            float64
	SpreadPct        float64 // (max-min)/min
	AllWithinPercent float64 // == SpreadPct * 100
}

// SeedSweep runs SoMa on one case with k different seeds and reports the
// latency spread - the reproducibility check the artifact's fixed-seed
// protocol relies on.
func SeedSweep(c Case, par soma.Params, seeds []int64) (SeedStats, error) {
	cfg, err := Platform(c.Platform)
	if err != nil {
		return SeedStats{}, err
	}
	g, err := models.Build(c.Workload, c.Batch)
	if err != nil {
		return SeedStats{}, err
	}
	res := ParallelMap(seeds, 0, func(seed int64) PairResult {
		p := par
		p.Seed = seed
		r, err := engine.Run(context.Background(), engine.Request{Graph: g,
			Model: c.Workload, Batch: c.Batch, Platform: c.Platform, Config: &cfg,
			Objective: soma.EDP(), Params: p}, nil)
		if err != nil {
			return PairResult{Err: err}
		}
		return PairResult{Ours2: Row{LatencyNS: r.Metrics.LatencyNS}}
	})
	var ms []float64
	for _, r := range res {
		if r.Err != nil {
			return SeedStats{}, r.Err
		}
		ms = append(ms, r.Ours2.LatencyNS/1e6)
	}
	sort.Float64s(ms)
	st := SeedStats{
		Seeds: len(ms),
		MinMS: ms[0], MaxMS: ms[len(ms)-1], MedMS: ms[len(ms)/2],
	}
	if st.MinMS > 0 {
		st.SpreadPct = (st.MaxMS - st.MinMS) / st.MinMS
		st.AllWithinPercent = st.SpreadPct * 100
	}
	return st, nil
}

// String renders seed stats for reports.
func (s SeedStats) String() string {
	return fmt.Sprintf("%d seeds: min %.3f / med %.3f / max %.3f ms (spread %.1f%%)",
		s.Seeds, s.MinMS, s.MedMS, s.MaxMS, s.AllWithinPercent)
}
