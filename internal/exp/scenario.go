package exp

import (
	"context"
	"fmt"

	"soma/internal/report"
	"soma/internal/sim"
	"soma/internal/soma"
	"soma/internal/workload"
)

// ScenarioRun bundles the inputs of one composed-scenario experiment.
type ScenarioRun struct {
	Scenario workload.Scenario
	Platform string
	Obj      soma.Objective
	Par      soma.Params
	// Cache optionally shares evaluation memoization across runs (the
	// somad daemon passes its process-wide cache so repeated scenario and
	// single-model jobs reuse each other's evaluations); nil creates a
	// private cache shared by this scenario's sub-runs.
	Cache *sim.Cache
}

// ScenarioModelName is the Workload.Model the composed payload reports.
func ScenarioModelName(name string) string { return "scenario:" + name }

// RunScenario schedules the composed scenario graph and each component model
// in isolation, returning the composed aggregate report.Result with the
// per-model results attached in its Scenario section. The flow is shared
// between `soma -scenario` and the somad jobs API, so a fixed-seed scenario
// run is byte-identical over both paths (like single-model runs).
func RunScenario(run ScenarioRun) (*report.Result, error) {
	return RunScenarioCtx(context.Background(), run)
}

// RunScenarioCtx is RunScenario with cooperative cancellation.
func RunScenarioCtx(ctx context.Context, run ScenarioRun) (*report.Result, error) {
	cfg, err := Platform(run.Platform)
	if err != nil {
		return nil, err
	}
	sc := run.Scenario
	sc.Components = append([]workload.Component(nil), sc.Components...)
	sc.Normalize()
	g, pl, err := sc.Compose()
	if err != nil {
		return nil, err
	}
	digest, err := sc.SpecSHA256()
	if err != nil {
		return nil, err
	}
	cache := run.Cache
	if cache == nil {
		cache = sim.NewCache(0)
	}

	// Composed run: the whole scenario as one point of the scheduling
	// space. The scope keys composed evaluations by spec digest, so equal
	// scenarios share cache entries and different ones never collide.
	ex := soma.New(g, cfg, run.Obj, run.Par)
	ex.Cache = cache
	ex.Scope = fmt.Sprintf("scn:%s|%s|composed|", digest, run.Platform)
	res, err := ex.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	spec := report.Spec{Model: ScenarioModelName(sc.Name), Batch: sc.TotalBatch(),
		HW: run.Platform, Framework: "soma", Seed: run.Par.Seed,
		Obj: report.Objective{N: run.Obj.N, M: run.Obj.M}}
	payload := report.FromSoma(spec, cfg, res)

	// Isolated per-component runs, in composition order. The scope matches
	// the somad single-model convention, so a scenario job and a plain job
	// for the same (model, batch, hw) share evaluations.
	info := &report.ScenarioInfo{Name: sc.Name, Arrival: string(sc.Arrival)}
	var wLogCost float64
	for _, span := range pl.Spans {
		c := span.Component
		iso := soma.New(span.Graph, cfg, run.Obj, run.Par)
		iso.Cache = cache
		iso.Scope = fmt.Sprintf("%s|%d|%s|", c.Model, c.Batch, run.Platform)
		ires, err := iso.RunContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("exp: scenario %s: isolated %s: %w", sc.Name, c.Name, err)
		}
		ispec := report.Spec{Model: c.Model, Batch: c.Batch, HW: run.Platform,
			Framework: "soma", Seed: run.Par.Seed, Obj: spec.Obj}
		info.Components = append(info.Components, report.ScenarioComponent{
			Name: c.Name, Model: c.Model, Batch: c.Batch, Weight: c.Weight,
			Layers: span.Layers, Ops: span.Ops, WeightBytes: span.WeightBytes,
			Isolated: report.FromSoma(ispec, cfg, ires),
		})
		info.IsolatedSumLatencyNS += ires.Stage2.Metrics.LatencyNS
		info.IsolatedSumEnergyPJ += ires.Stage2.Metrics.EnergyPJ
		wLogCost += c.Weight * ln(ires.Cost)
	}
	if payload.Metrics.LatencyNS > 0 {
		info.ComposedSpeedup = info.IsolatedSumLatencyNS / payload.Metrics.LatencyNS
	}
	info.WeightedIsolatedCost = exp(wLogCost / sc.TotalWeight())
	payload.Scenario = info
	return payload, nil
}
