package exp

import (
	"context"

	"soma/internal/engine"
	"soma/internal/report"
	"soma/internal/sim"
	"soma/internal/soma"
	"soma/internal/workload"
)

// ScenarioRun bundles the inputs of one composed-scenario experiment.
type ScenarioRun struct {
	Scenario workload.Scenario
	Platform string
	Obj      soma.Objective
	Par      soma.Params
	// Cache optionally shares evaluation memoization across runs (the
	// somad daemon passes its process-wide cache so repeated scenario and
	// single-model jobs reuse each other's evaluations); nil creates a
	// private cache shared by this scenario's sub-runs.
	Cache sim.EvalCache
}

// ScenarioModelName is the Workload.Model the composed payload reports.
func ScenarioModelName(name string) string { return engine.ScenarioModelName(name) }

// RunScenario schedules the composed scenario graph and each component model
// in isolation, returning the composed aggregate report.Result with the
// per-model results attached in its Scenario section. It is a thin adapter
// over the engine's scenario orchestration, which `soma -scenario` and the
// somad jobs API also route through, so a fixed-seed scenario run is
// byte-identical over every path.
func RunScenario(run ScenarioRun) (*report.Result, error) {
	return RunScenarioCtx(context.Background(), run)
}

// RunScenarioCtx is RunScenario with cooperative cancellation.
func RunScenarioCtx(ctx context.Context, run ScenarioRun) (*report.Result, error) {
	sc := run.Scenario
	return engine.Run(ctx, engine.Request{
		Scenario:  &sc,
		Platform:  run.Platform,
		Objective: run.Obj,
		Params:    run.Par,
		Cache:     run.Cache,
	}, nil)
}
