package exp

import "math"

func ln(v float64) float64  { return math.Log(v) }
func exp(v float64) float64 { return math.Exp(v) }
