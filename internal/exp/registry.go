package exp

import (
	"soma/internal/engine"
	"soma/internal/models"
	"soma/internal/workload"
)

// Catalog is the shared registry listing behind `soma -list` and the somad
// /v1/models, /v1/hw, /v1/scenarios and /v1/backends endpoints: every name
// list is deterministically sorted, so scenario specs and scripts
// referencing them are stable across runs and releases.
type Catalog struct {
	Models    []string `json:"models"`
	Platforms []string `json:"platforms"`
	Scenarios []string `json:"scenarios"`
	Backends  []string `json:"backends"`
}

// Registry returns the catalog of every registered model, hardware platform,
// built-in scenario and solver backend, each list in sorted order.
func Registry() Catalog {
	return Catalog{
		Models:    models.Names(),
		Platforms: Platforms(),
		Scenarios: workload.BuiltinNames(),
		Backends:  engine.Backends(),
	}
}
