package exp

import (
	"soma/internal/models"
	"soma/internal/workload"
)

// Catalog is the shared registry listing behind `soma -list` and the somad
// /v1/models, /v1/hw and /v1/scenarios endpoints: every name list is
// deterministically sorted, so scenario specs and scripts referencing them
// are stable across runs and releases.
type Catalog struct {
	Models    []string `json:"models"`
	Platforms []string `json:"platforms"`
	Scenarios []string `json:"scenarios"`
}

// Registry returns the catalog of every registered model, hardware platform
// and built-in scenario, each list in sorted order.
func Registry() Catalog {
	return Catalog{
		Models:    models.Names(),
		Platforms: Platforms(),
		Scenarios: workload.BuiltinNames(),
	}
}
