package exp

import "math"

// InsightStats quantifies the two Fig. 7 insights on a DSE grid:
//
//   - Insight 1: at small batch sizes DRAM bandwidth dominates buffer size -
//     BandwidthGain (mean speedup from doubling bandwidth) far exceeds
//     BufferGain (mean speedup from doubling buffer).
//   - Insight 2: provisioning both maximum bandwidth and maximum buffer is
//     wasteful - the iso-latency "red envelope" (cells within 5% of the
//     global best) contains strictly cheaper corner points.
type InsightStats struct {
	// BandwidthGain / BufferGain are geometric-mean latency ratios across
	// adjacent grid steps (>= 1 means the step helps).
	BandwidthGain float64
	BufferGain    float64
	// BestMS is the global best latency; EnvelopeCells counts cells
	// within 5% of it.
	BestMS        float64
	EnvelopeCells int
	// CheaperInEnvelope reports whether the envelope contains a cell with
	// strictly less bandwidth or less buffer than the max/max corner.
	CheaperInEnvelope bool
}

// AnalyzeDSE computes the insight statistics for one scheme's latencies.
// scheme selects "cocco" or "soma".
func AnalyzeDSE(pts []DSEPoint, scheme string) InsightStats {
	lat := func(p DSEPoint) float64 {
		if scheme == "cocco" {
			if p.CoccoErr != "" {
				return math.Inf(1)
			}
			return p.CoccoMS
		}
		if p.SoMaErr != "" {
			return math.Inf(1)
		}
		return p.SoMaMS
	}
	at := func(bw float64, buf int64) (float64, bool) {
		for _, p := range pts {
			if p.DRAMGBs == bw && p.BufferMB == buf {
				return lat(p), true
			}
		}
		return 0, false
	}

	var st InsightStats
	st.BestMS = math.Inf(1)
	for _, p := range pts {
		if l := lat(p); l > 0 && l < st.BestMS {
			st.BestMS = l
		}
	}

	// Mean gain from doubling bandwidth (vertical grid steps) and buffer
	// (horizontal steps), in log space.
	var bwAcc, bufAcc float64
	var bwN, bufN int
	for i := 0; i+1 < len(Fig7Bandwidths); i++ {
		for _, buf := range Fig7Buffers {
			a, okA := at(Fig7Bandwidths[i], buf>>20)
			b, okB := at(Fig7Bandwidths[i+1], buf>>20)
			if okA && okB && a > 0 && b > 0 && !math.IsInf(a, 1) && !math.IsInf(b, 1) {
				bwAcc += math.Log(a / b)
				bwN++
			}
		}
	}
	for _, bw := range Fig7Bandwidths {
		for j := 0; j+1 < len(Fig7Buffers); j++ {
			a, okA := at(bw, Fig7Buffers[j]>>20)
			b, okB := at(bw, Fig7Buffers[j+1]>>20)
			if okA && okB && a > 0 && b > 0 && !math.IsInf(a, 1) && !math.IsInf(b, 1) {
				bufAcc += math.Log(a / b)
				bufN++
			}
		}
	}
	if bwN > 0 {
		st.BandwidthGain = math.Exp(bwAcc / float64(bwN))
	}
	if bufN > 0 {
		st.BufferGain = math.Exp(bufAcc / float64(bufN))
	}

	// Envelope membership and the wasteful-corner check.
	maxBW := Fig7Bandwidths[len(Fig7Bandwidths)-1]
	maxBuf := Fig7Buffers[len(Fig7Buffers)-1] >> 20
	for _, p := range pts {
		l := lat(p)
		if math.IsInf(l, 1) || l > st.BestMS*1.05 {
			continue
		}
		st.EnvelopeCells++
		if p.DRAMGBs < maxBW || p.BufferMB < maxBuf {
			st.CheaperInEnvelope = true
		}
	}
	return st
}
