// Package exp implements the paper's experiments: every figure of the
// evaluation (Sec. VI) and discussion (Sec. VII) maps to one function here,
// shared between the somabench command and the root benchmark suite. The
// top-level README's paper-artifact map lists which command regenerates
// which figure.
//
// Since the engine refactor the package contains no search plumbing of its
// own: comparison experiments (RunPair, Fig6) run engine.Compare, and
// everything grid-shaped - the Fig. 7 bandwidth x buffer heatmap, the
// Fig. 8 backend comparison, ObjectiveSweep and SeedSweep - is a thin
// adapter over the dse sweep runner (internal/dse), which supplies the
// worker pool, shared evaluation cache, and mid-grid cancellation. What
// remains here is figure-specific shaping: pairing backend rows into bar
// groups, geometric-mean summaries (Summarize), the Fig. 3 scatter
// construction, and the Fig. 7 insight statistics (AnalyzeDSE).
//
// Registry exposes the shared model/platform/scenario/backend catalog behind
// `soma -list` and the somad registry endpoints.
package exp
