package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"soma/internal/cluster"
	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/dse"
	"soma/internal/engine"
	"soma/internal/exp"
	"soma/internal/models"
	"soma/internal/report"
	"soma/internal/sim"
	"soma/internal/soma"
)

// BenchSchema identifies the snapshot file format. BENCH_6.json (committed at
// the repo root) is the first point of the performance trajectory: it records
// the stage-2 DLSA per-move cost of the incremental evaluator against the
// historical clone-and-replay path for every zoo model, plus an end-to-end
// solve time. CI regenerates the measurement and fails on regression (see
// checkSnapshot for the exact rules).
const BenchSchema = "soma-bench/v1"

// BenchEntry is one zoo model's measurement.
type BenchEntry struct {
	Model    string `json:"model"`
	Platform string `json:"platform"`
	Batch    int    `json:"batch"`
	Tiles    int    `json:"tiles"`
	Tensors  int    `json:"tensors"`

	// IncNsPerMove / IncAllocsPerMove cost one stage-2 DLSA proposal on
	// sim.Incremental (move + suffix re-simulation + accept/reject).
	IncNsPerMove     float64 `json:"inc_ns_per_move"`
	IncAllocsPerMove float64 `json:"inc_allocs_per_move"`
	// FullNsPerMove / FullAllocsPerMove cost the same proposal on the
	// historical path: clone the schedule, mutate the clone, evaluate it
	// from scratch with sim.Evaluate.
	FullNsPerMove     float64 `json:"full_ns_per_move"`
	FullAllocsPerMove float64 `json:"full_allocs_per_move"`
	// Speedup is FullNsPerMove / IncNsPerMove.
	Speedup float64 `json:"speedup"`
	// ResumedFrac is the fraction of evaluated proposals that resumed from
	// a mid-schedule checkpoint; EventsFrac the fraction of merge events
	// actually re-simulated (both from sim.IncStats).
	ResumedFrac float64 `json:"resumed_frac"`
	EventsFrac  float64 `json:"events_frac"`
	// SolveMS is the end-to-end soma solve wall time under the selected
	// profile. Machine- and load-dependent: recorded for the trajectory,
	// never gated on.
	SolveMS float64 `json:"solve_ms,omitempty"`
	// CacheHitRate is the evaluation-cache hit rate of that same solve
	// (report.Result Search.CacheHitRate). Unlike SolveMS it is
	// deterministic for a fixed seed; recorded for the trajectory so cache
	// effectiveness regressions show up alongside per-move cost.
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
}

// BenchSnapshot is the BENCH_6.json payload. Sweep is additive (schema
// unchanged, field omitted when absent): older snapshots without it still
// load, and checkSnapshot never gates on it.
type BenchSnapshot struct {
	Schema  string       `json:"schema"`
	Profile string       `json:"profile"`
	Seed    int64        `json:"seed"`
	Models  []BenchEntry `json:"models"`
	Sweep   *BenchSweep  `json:"sweep,omitempty"`
}

// BenchSweep is the sharded-sweep trajectory point: a small fixed grid
// executed serially through dse.Run and again through cluster.Run against
// two in-process worker nodes sharing the coordinator's remote cache tier.
// Both wall times are machine- and load-dependent (the workers compete for
// the same cores here, so the sharded time mostly measures coordination
// overhead, not cluster speedup) - recorded for the trajectory, never gated.
// JournalIdentical is the determinism check: the sharded journal must be
// byte-identical to the serial one.
type BenchSweep struct {
	Points             int     `json:"points"`
	Workers            int     `json:"workers"`
	SerialMS           float64 `json:"serial_ms"`
	ShardedMS          float64 `json:"sharded_ms"`
	Speedup            float64 `json:"speedup"`
	RemoteCacheHitRate float64 `json:"remote_cache_hit_rate"`
	JournalIdentical   bool    `json:"journal_identical"`
}

// snapshotCases pairs every zoo model with its paper platform (GPT-2 XL and
// the large transformer run on the cloud configuration, everything else on
// edge), all at batch 1.
func snapshotCases() []exp.Case {
	// vgg16's weight-dominated layers need the cloud buffer to admit a
	// feasible fast-profile schedule; the GPT-2 XL and large-transformer
	// pairing follows the paper.
	cloud := map[string]bool{"gpt2xl-prefill": true, "gpt2xl-decode": true,
		"transformer-large": true, "vgg16": true}
	names := []string{"resnet50", "resnet101", "ires", "randwire", "vgg16",
		"mobilenetv2", "transformer-large", "gpt2s-prefill", "gpt2s-decode",
		"gpt2xl-prefill", "gpt2xl-decode"}
	out := make([]exp.Case, 0, len(names))
	for _, n := range names {
		pf := "edge"
		if cloud[n] {
			pf = "cloud"
		}
		out = append(out, exp.Case{Platform: pf, Workload: n, Batch: 1})
	}
	return out
}

// snapshot measures the per-move evaluation cost of every zoo model and
// optionally writes the result (-snapshot-out) or compares it against a
// committed snapshot (-check), exiting non-zero on regression. The -check
// path skips the end-to-end solve column: per-move costs are what the guard
// gates on, and skipping the solves keeps the CI step fast.
func (h *harness) snapshot(outFile, checkFile string, solve bool) error {
	snap := BenchSnapshot{Schema: BenchSchema, Profile: h.profile, Seed: h.par.Seed}
	if checkFile != "" {
		solve = false
	}
	for _, c := range snapshotCases() {
		e, err := h.benchCase(c, solve)
		if err != nil {
			return fmt.Errorf("snapshot %s: %w", c, err)
		}
		snap.Models = append(snap.Models, e)
	}
	if solve {
		bs, err := benchSweep()
		if err != nil {
			return fmt.Errorf("snapshot sweep: %w", err)
		}
		snap.Sweep = bs
		fmt.Printf("sweep: %d points, serial %.0fms, sharded(%d workers) %.0fms, L2 hit rate %.0f%%, journal identical: %v\n",
			bs.Points, bs.SerialMS, bs.Workers, bs.ShardedMS,
			100*bs.RemoteCacheHitRate, bs.JournalIdentical)
	}

	if err := h.emit(snapshotTable(snap), "snapshot.csv"); err != nil {
		return err
	}
	if outFile != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outFile, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", outFile)
	}
	if checkFile != "" {
		return checkSnapshot(snap, checkFile)
	}
	return nil
}

// benchSweep measures the sharded-sweep point: the 4-point fast grid run
// serially, then through the cluster coordinator against two loopback worker
// nodes plus a coordinator-hosted remote cache.
func benchSweep() (*BenchSweep, error) {
	par := soma.FastParams()
	par.Beta1, par.Beta2 = 2, 1
	sw := dse.Sweep{Name: "bench-sweep", Models: []string{"mobilenetv2"},
		GBufMB: []int64{2, 4}, Seeds: []int64{1, 2}, Params: &par}
	pts, err := sw.Expand()
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "somabench-sweep")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	serialPath := filepath.Join(dir, "serial.jsonl")
	start := time.Now()
	if _, err := dse.Run(context.Background(), sw, dse.Options{Journal: serialPath}); err != nil {
		return nil, err
	}
	serialMS := float64(time.Since(start)) / float64(time.Millisecond)

	serve := func(mux *http.ServeMux) (string, func(), error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
	}

	const workers = 2
	urls := make([]string, 0, workers)
	for i := 0; i < workers; i++ {
		mux := http.NewServeMux()
		cluster.NewWorker(nil).Mount(mux)
		url, stop, err := serve(mux)
		if err != nil {
			return nil, err
		}
		defer stop()
		urls = append(urls, url)
	}
	cache := sim.NewCache(0)
	cs := cluster.NewCacheServer(cache)
	cmux := http.NewServeMux()
	cs.Mount(cmux)
	cacheURL, stop, err := serve(cmux)
	if err != nil {
		return nil, err
	}
	defer stop()

	shardedPath := filepath.Join(dir, "sharded.jsonl")
	start = time.Now()
	if _, err := cluster.Run(context.Background(), sw, cluster.Options{
		Workers: urls, Cache: cache, CacheURL: cacheURL, Journal: shardedPath}); err != nil {
		return nil, err
	}
	shardedMS := float64(time.Since(start)) / float64(time.Millisecond)

	serial, err := os.ReadFile(serialPath)
	if err != nil {
		return nil, err
	}
	sharded, err := os.ReadFile(shardedPath)
	if err != nil {
		return nil, err
	}
	bs := &BenchSweep{Points: len(pts), Workers: workers,
		SerialMS: serialMS, ShardedMS: shardedMS,
		RemoteCacheHitRate: cs.Stats().HitRate(),
		JournalIdentical:   bytes.Equal(serial, sharded)}
	if shardedMS > 0 {
		bs.Speedup = serialMS / shardedMS
	}
	return bs, nil
}

// benchCase measures one model: both per-move benchmarks share the tile-cost
// precomputation and walk deterministic move sequences drawn from the same
// seed and operator mix, so the ratio isolates the evaluator strategy.
func (h *harness) benchCase(c exp.Case, solve bool) (BenchEntry, error) {
	cfg, err := exp.Platform(c.Platform)
	if err != nil {
		return BenchEntry{}, err
	}
	g, err := models.Build(c.Workload, c.Batch)
	if err != nil {
		return BenchEntry{}, err
	}
	s, err := core.Parse(g, core.DefaultEncoding(g, 1))
	if err != nil {
		return BenchEntry{}, err
	}
	cs := coresched.New(cfg)
	tc := sim.PrecomputeTileCosts(s, cs)
	opt := sim.Options{BufferBudget: cfg.GBufBytes, TileCosts: tc}
	seed := h.par.Seed

	// Fixed-length walks, best wall time of benchReps repetitions: an
	// adaptive-round benchmark (testing.Benchmark) proved too noisy for a
	// CI-gated ratio, while min-of-reps over an identical deterministic
	// walk is stable to a few percent and keeps alloc counts exact.
	var stats sim.IncStats
	incBench := bestOf(func() moveBench {
		ev, err := sim.NewIncremental(s.Clone(), cs, opt)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(seed))
		mb := measureMoves(incBenchMoves, func() {
			if !proposeIncMove(ev, rng) {
				return
			}
			if _, err := ev.EvaluateProposal(); err != nil {
				ev.Reject()
				return
			}
			if rng.Intn(2) == 0 {
				ev.Accept()
			} else {
				ev.Reject()
			}
		})
		stats = ev.Stats()
		return mb
	})

	fullBench := bestOf(func() moveBench {
		cur := s.Clone()
		rng := rand.New(rand.NewSource(seed))
		return measureMoves(fullBenchMoves, func() {
			cand := cur.Clone()
			if !proposeFullMove(cand, rng) {
				return
			}
			if _, err := sim.Evaluate(cand, cs, opt); err != nil {
				return
			}
			if rng.Intn(2) == 0 {
				cur = cand
			}
		})
	})

	e := BenchEntry{
		Model: c.Workload, Platform: c.Platform, Batch: c.Batch,
		Tiles: s.NumTiles(), Tensors: len(s.Tensors),
		IncNsPerMove:      incBench.nsPerMove,
		IncAllocsPerMove:  incBench.allocsPerMove,
		FullNsPerMove:     fullBench.nsPerMove,
		FullAllocsPerMove: fullBench.allocsPerMove,
	}
	if e.IncNsPerMove > 0 {
		e.Speedup = e.FullNsPerMove / e.IncNsPerMove
	}
	if stats.Proposals > 0 {
		e.ResumedFrac = float64(stats.Resumed) / float64(stats.Proposals)
	}
	if stats.EventsTotal > 0 {
		e.EventsFrac = float64(stats.EventsSimulated) / float64(stats.EventsTotal)
	}

	if solve {
		start := time.Now()
		res, err := engine.Run(context.Background(), engine.Request{Backend: "soma",
			Model: c.Workload, Batch: c.Batch, Platform: c.Platform,
			Objective: soma.EDP(), Params: h.par}, nil)
		switch {
		case errors.Is(err, soma.ErrNoFeasible):
			// Feasibility under a reduced search budget is a property of
			// the (model, platform) pairing, not of the evaluator this
			// snapshot measures: record the point without a solve column.
			fmt.Fprintf(os.Stderr, "snapshot: %s: no feasible schedule under profile %q; solve time omitted\n",
				c, h.profile)
		case err != nil:
			return e, err
		default:
			e.SolveMS = float64(time.Since(start)) / float64(time.Millisecond)
			e.CacheHitRate = res.Search.CacheHitRate
		}
	}
	return e, nil
}

// The per-move measurement walks a deterministic move sequence and times a
// fixed number of moves, sized per path so the timed window stays well
// above scheduler-noise scale (the incremental path is ~1000x faster per
// move, so it gets proportionally more moves). benchReps repetitions run
// and the minimum wins: CI gates on the resulting ratio, so the estimator
// must be stable, and min-of-reps over a >=100ms window is.
const (
	incBenchMoves  = 50000
	fullBenchMoves = 2000
	benchReps      = 5
)

type moveBench struct {
	nsPerMove     float64
	allocsPerMove float64
}

// measureMoves times moves invocations of step after a warmup of a tenth as
// many, reporting wall time and heap allocations per move.
func measureMoves(moves int, step func()) moveBench {
	for i := 0; i < moves/10; i++ {
		step()
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < moves; i++ {
		step()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return moveBench{
		nsPerMove:     float64(elapsed.Nanoseconds()) / float64(moves),
		allocsPerMove: float64(after.Mallocs-before.Mallocs) / float64(moves),
	}
}

// bestOf runs the measurement benchReps times and keeps the fastest wall
// time and the smallest allocation count (allocations are deterministic;
// the min discards GC bookkeeping noise).
func bestOf(run func() moveBench) moveBench {
	best := run()
	for i := 1; i < benchReps; i++ {
		mb := run()
		if mb.nsPerMove < best.nsPerMove {
			best.nsPerMove = mb.nsPerMove
		}
		if mb.allocsPerMove < best.allocsPerMove {
			best.allocsPerMove = mb.allocsPerMove
		}
	}
	return best
}

// proposeIncMove applies one random stage-2 DLSA operator to the incremental
// evaluator, leaving a pending proposal when it returns true. The operator
// mix mirrors soma's stage2Moves.Propose (uniform tensor choice instead of
// the size-weighted picker: both benchmark paths use the same draws, so the
// comparison stays fair).
func proposeIncMove(ev *sim.Incremental, rng *rand.Rand) bool {
	s := ev.Schedule()
	id := rng.Intn(len(s.Tensors))
	if rng.Intn(2) == 0 {
		return ev.MoveTensor(ev.PosOf(id), rng.Intn(len(s.Order)))
	}
	delta := durationJitter(s, rng)
	if s.Tensors[id].Kind.IsLoad() {
		return ev.SetStart(id, s.Tensors[id].Start+delta)
	}
	return ev.SetEnd(id, s.Tensors[id].End+delta)
}

// proposeFullMove applies the identically-drawn operator directly to a
// schedule clone (the historical stage-2 path).
func proposeFullMove(s *core.Schedule, rng *rand.Rand) bool {
	id := rng.Intn(len(s.Tensors))
	if rng.Intn(2) == 0 {
		from := -1
		for p, o := range s.Order {
			if o == id {
				from = p
				break
			}
		}
		return s.MoveTensor(from, rng.Intn(len(s.Order)))
	}
	delta := durationJitter(s, rng)
	t := &s.Tensors[id]
	if t.Kind.IsLoad() {
		old := t.Start
		return s.SetStart(id, t.Start+delta) && s.Tensors[id].Start != old
	}
	old := t.End
	return s.SetEnd(id, t.End+delta) && s.Tensors[id].End != old
}

// durationJitter draws the stage-2 Living Duration delta (span scales with
// the schedule length, sign is a coin).
func durationJitter(s *core.Schedule, rng *rand.Rand) int {
	span := s.NumTiles() / 16
	if span < 8 {
		span = 8
	}
	delta := 1 + rng.Intn(span)
	if rng.Intn(2) == 0 {
		delta = -delta
	}
	return delta
}

func snapshotTable(snap BenchSnapshot) *report.Table {
	t := report.New("stage-2 per-move evaluation snapshot", "model", "platform",
		"tiles", "tensors", "inc ns/move", "full ns/move", "speedup",
		"allocs inc/full", "resumed", "events", "solve ms", "cache hit")
	for _, e := range snap.Models {
		t.Add(e.Model, e.Platform,
			fmt.Sprintf("%d", e.Tiles), fmt.Sprintf("%d", e.Tensors),
			fmt.Sprintf("%.0f", e.IncNsPerMove),
			fmt.Sprintf("%.0f", e.FullNsPerMove),
			fmt.Sprintf("%.2fx", e.Speedup),
			fmt.Sprintf("%.0f/%.0f", e.IncAllocsPerMove, e.FullAllocsPerMove),
			fmt.Sprintf("%.0f%%", 100*e.ResumedFrac),
			fmt.Sprintf("%.0f%%", 100*e.EventsFrac),
			fmt.Sprintf("%.0f", e.SolveMS),
			fmt.Sprintf("%.0f%%", 100*e.CacheHitRate))
	}
	return t
}

// checkSnapshot compares a fresh measurement against the committed snapshot
// and returns an error describing every regression. The gated quantities are
// machine-portable: allocs/move is deterministic for a given build, and the
// incremental-vs-full speedup is a same-machine ratio, so neither depends on
// how fast the CI runner happens to be. Absolute ns/move is reported but not
// gated (docs/performance.md discusses the rules).
func checkSnapshot(fresh BenchSnapshot, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want BenchSnapshot
	if err := json.Unmarshal(buf, &want); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	base := make(map[string]BenchEntry, len(want.Models))
	for _, e := range want.Models {
		base[e.Model] = e
	}

	var fails []string
	bestSpeedup := 0.0
	var logFresh, logBase float64
	compared := 0
	for _, e := range fresh.Models {
		w, ok := base[e.Model]
		if !ok {
			continue // model added after the snapshot: nothing to compare
		}
		if e.Speedup > bestSpeedup {
			bestSpeedup = e.Speedup
		}
		if e.Speedup > 0 && w.Speedup > 0 {
			logFresh += math.Log(e.Speedup)
			logBase += math.Log(w.Speedup)
			compared++
		}
		// >20% allocs/move regression per model (plus one alloc of
		// absolute slack: the committed counts are small integers, and a
		// counter artifact must not fail CI on 20% of 2 allocs).
		// Allocation counts are deterministic, so this gate never flakes.
		if e.IncAllocsPerMove > w.IncAllocsPerMove*1.2+1 {
			fails = append(fails, fmt.Sprintf(
				"%s: incremental allocs/move %.1f exceeds committed %.1f by >20%%",
				e.Model, e.IncAllocsPerMove, w.IncAllocsPerMove))
		}
		if e.FullAllocsPerMove > w.FullAllocsPerMove*1.2+1 {
			fails = append(fails, fmt.Sprintf(
				"%s: full allocs/move %.1f exceeds committed %.1f by >20%%",
				e.Model, e.FullAllocsPerMove, w.FullAllocsPerMove))
		}
	}
	// >20% ns/move regression, measured as the geometric-mean speedup
	// ratio across the zoo: a hot-path regression slows every model, while
	// per-model timing noise is independent and averages out (single-model
	// deviations are +-15% run to run; the geomean holds within a few
	// percent). Using the same-run incremental-vs-full ratio also keeps
	// the gate machine-portable - a slow runner cannot fail a healthy
	// build.
	if compared > 0 {
		gmFresh := math.Exp(logFresh / float64(compared))
		gmBase := math.Exp(logBase / float64(compared))
		if gmFresh < gmBase*0.8 {
			fails = append(fails, fmt.Sprintf(
				"geomean speedup %.2fx is >20%% below committed %.2fx", gmFresh, gmBase))
		}
	}
	// The PR's acceptance floor stays enforced: at least one zoo model must
	// keep a >=3x incremental speedup.
	if bestSpeedup < 3 {
		fails = append(fails, fmt.Sprintf(
			"no model reaches the 3x incremental speedup floor (best %.2fx)", bestSpeedup))
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "snapshot regression:", f)
		}
		return fmt.Errorf("%d snapshot regression(s) vs %s", len(fails), path)
	}
	fmt.Printf("snapshot check vs %s: ok (%d models, best speedup %.2fx)\n",
		path, len(base), bestSpeedup)
	return nil
}
