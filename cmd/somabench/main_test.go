package main

import (
	"testing"

	"soma/internal/exp"
)

func TestParseBatches(t *testing.T) {
	if got := parseBatches(""); len(got) != len(exp.Batches) {
		t.Fatalf("default batches = %v", got)
	}
	if got := parseBatches("1, 8,64"); len(got) != 3 || got[1] != 8 {
		t.Fatalf("parsed = %v", got)
	}
	if got := parseBatches("junk,-2"); len(got) != len(exp.Batches) {
		t.Fatalf("invalid input should fall back: %v", got)
	}
}

func TestParams(t *testing.T) {
	for _, p := range []string{"fast", "default", "paper"} {
		par, err := params(p)
		if err != nil || par.Beta1 <= 0 {
			t.Fatalf("profile %s: %+v %v", p, par, err)
		}
	}
	if _, err := params("turbo"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestMaxf(t *testing.T) {
	if maxf(1, 2) != 2 || maxf(3, 2) != 3 {
		t.Fatal("maxf broken")
	}
}

func TestCountAxisHuggers(t *testing.T) {
	pts := []exp.ScatterPoint{
		{NormOps: 0.01, NormDRAM: 0.9},
		{NormOps: 0.5, NormDRAM: 0.5},
		{NormOps: 0.9, NormDRAM: 0.01},
	}
	if countAxisHuggers(pts) != 2 {
		t.Fatalf("huggers = %d", countAxisHuggers(pts))
	}
}
