// Command somabench regenerates every figure of the paper's evaluation:
//
//	somabench fig2   - double-buffer utilization imbalance (Sec. III-B)
//	somabench fig3   - ops-vs-DRAM scatter, per layer and per Cocco tile
//	somabench fig6   - overall Cocco vs SoMa comparison (+ Sec. VI-B stats)
//	somabench fig7   - DSE heatmap over DRAM bandwidth x buffer size
//	somabench fig8   - execution-graph comparison (Cocco / stage 1 / stage 2)
//	somabench stats  - fusion-structure statistics (tiles, LGs, FLGs)
//	somabench llm    - GPT-2 decode utilization vs batch size
//	somabench ablate - ablations of SoMa's design choices
//	somabench snapshot - per-move evaluation cost snapshot (BENCH_6.json)
//	somabench all    - everything above
//
// Results print as tables and, with -out DIR, also as CSV files.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"soma/internal/exp"
	"soma/internal/report"
	"soma/internal/soma"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	profile := fs.String("profile", "default", "search profile: fast|default|paper")
	workers := fs.Int("workers", 0, "parallel workers across cases (0 = all CPUs)")
	chains := fs.Int("chains", 0, "portfolio chains per annealing stage (<=1 = serial)")
	chainWorkers := fs.Int("chainworkers", 0, "goroutines per portfolio (<=1 = serial; best kept at 1 when -workers already saturates the CPUs)")
	outDir := fs.String("out", "", "directory for CSV outputs (optional)")
	workload := fs.String("workload", "resnet50", "workload for fig7/fig8")
	platform := fs.String("platform", "edge", "platform for fig8: edge|cloud")
	batch := fs.Int("batch", 1, "batch size for fig7/fig8")
	batches := fs.String("batches", "", "comma list of batch sizes for fig6 (default 1,4,16,64)")
	seed := fs.Int64("seed", 1, "search seed")
	snapOut := fs.String("snapshot-out", "", "snapshot: write the measurement as JSON to FILE (e.g. BENCH_6.json)")
	snapCheck := fs.String("check", "", "snapshot: compare against committed snapshot FILE, exit non-zero on regression")
	snapSolve := fs.Bool("solve", true, "snapshot: include end-to-end solve times (always off with -check)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	par, err := params(*profile)
	if err != nil {
		fatal(err)
	}
	par.Seed = *seed
	par.Chains = *chains
	par.Workers = *chainWorkers
	h := &harness{par: par, profile: *profile, workers: *workers, outDir: *outDir}

	switch cmd {
	case "fig2":
		err = h.fig2()
	case "fig3":
		err = h.fig3()
	case "fig6":
		err = h.fig6(parseBatches(*batches))
	case "fig7":
		err = h.fig7(*workload, *batch)
	case "fig8":
		err = h.fig8(exp.Case{Platform: *platform, Workload: *workload, Batch: *batch})
	case "stats":
		err = h.stats(parseBatches(*batches))
	case "llm":
		err = h.llm()
	case "ablate":
		err = h.ablate()
	case "edp":
		err = h.edp(exp.Case{Platform: *platform, Workload: *workload, Batch: *batch})
	case "seeds":
		err = h.seeds(exp.Case{Platform: *platform, Workload: *workload, Batch: *batch})
	case "snapshot":
		err = h.snapshot(*snapOut, *snapCheck, *snapSolve)
	case "all":
		err = h.all()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: somabench {fig2|fig3|fig6|fig7|fig8|stats|llm|ablate|edp|seeds|snapshot|all} [flags]")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "somabench:", err)
	os.Exit(1)
}

func params(profile string) (soma.Params, error) {
	switch profile {
	case "fast":
		return soma.FastParams(), nil
	case "default":
		return soma.DefaultParams(), nil
	case "paper":
		return soma.PaperParams(), nil
	default:
		return soma.Params{}, fmt.Errorf("unknown profile %q", profile)
	}
}

func parseBatches(s string) []int {
	if s == "" {
		return exp.Batches
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		var b int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &b); err == nil && b > 0 {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		return exp.Batches
	}
	return out
}

type harness struct {
	par     soma.Params
	profile string
	workers int
	outDir  string
}

// emit prints a table and optionally writes it as CSV.
func (h *harness) emit(t *report.Table, csvName string) error {
	fmt.Println(t.String())
	if h.outDir == "" {
		return nil
	}
	if err := os.MkdirAll(h.outDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(h.outDir, csvName))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

func (h *harness) all() error {
	steps := []func() error{
		h.fig2, h.fig3,
		func() error { return h.fig6(exp.Batches) },
		func() error { return h.fig7("resnet50", 1) },
		func() error {
			return h.fig8(exp.Case{Platform: "edge", Workload: "resnet50", Batch: 1})
		},
		func() error { return h.stats(exp.Batches) },
		h.llm, h.ablate,
	}
	for _, s := range steps {
		if err := s(); err != nil {
			return err
		}
	}
	return nil
}
