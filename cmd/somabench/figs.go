package main

import (
	"context"
	"fmt"
	"os"
	"sync/atomic"

	"soma/internal/engine"
	"soma/internal/exp"
	"soma/internal/models"
	"soma/internal/report"
	"soma/internal/soma"
	"soma/internal/trace"
)

// fig2 reproduces the Sec. III-B motivation numbers: the DRAM and compute
// utilization of the double-buffer baseline schedule are both far from 100%,
// leaving overlap opportunity on the table.
func (h *harness) fig2() error {
	t := report.New("Fig.2 / Sec.III-B: resource utilization under the Cocco double-buffer strategy (edge, batch 1)",
		"workload", "dram-util", "compute-util", "latency", "overlap-headroom")
	for _, w := range []string{"resnet50", "transformer-large"} {
		base, err := engine.Run(context.Background(), engine.Request{Backend: "cocco",
			Model: w, Batch: 1, Platform: "edge", Objective: soma.EDP(), Params: h.par}, nil)
		if err != nil {
			return err
		}
		m := base.Raw.Metrics
		head := 1 - maxf(m.DRAMUtilization, m.ComputeUtilization)
		t.Add(w, report.Pct(m.DRAMUtilization), report.Pct(m.ComputeUtilization),
			report.Ms(m.LatencyNS), report.Pct(head))
	}
	fmt.Println("Neither resource is saturated: prefetching and delayed storing can reclaim the headroom.")
	return h.emit(t, "fig2.csv")
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// fig3 reproduces the motivation scatter: per-layer and per-tile normalized
// DRAM access vs operations; tiles are more spread out than layers.
func (h *harness) fig3() error {
	for _, w := range []string{"resnet50", "transformer-large"} {
		g, err := models.Build(w, 1)
		if err != nil {
			return err
		}
		cfg, _ := exp.Platform("edge")
		layers := exp.Fig3Layers(g)
		tiles, err := exp.Fig3Tiles(g, cfg, h.par)
		if err != nil {
			return err
		}
		t := report.New(fmt.Sprintf("Fig.3: %s normalized ops vs DRAM access", w),
			"series", "points", "spread(mean |ops-dram|)", "axis-huggers(<0.05)")
		t.Add("layers", fmt.Sprint(len(layers)), report.F(exp.Spread(layers), 4),
			fmt.Sprint(countAxisHuggers(layers)))
		t.Add("tiles(cocco)", fmt.Sprint(len(tiles)), report.F(exp.Spread(tiles), 4),
			fmt.Sprint(countAxisHuggers(tiles)))
		if err := h.emit(t, "fig3_"+w+"_summary.csv"); err != nil {
			return err
		}
		pts := report.New("", "name", "norm_ops", "norm_dram")
		for _, p := range tiles {
			pts.Add(p.Name, report.F(p.NormOps, 5), report.F(p.NormDRAM, 5))
		}
		if h.outDir != "" {
			if err := h.emit(pts, "fig3_"+w+"_tiles.csv"); err != nil {
				return err
			}
		}
	}
	fmt.Println("After fusion, tiles hug the axes (weight-loading tiles near Y, compute-only tiles near X).")
	return nil
}

func countAxisHuggers(pts []exp.ScatterPoint) int {
	n := 0
	for _, p := range pts {
		if p.NormOps < 0.05 || p.NormDRAM < 0.05 {
			n++
		}
	}
	return n
}

// fig6 reproduces the overall comparison and prints the Sec. VI-B summary.
func (h *harness) fig6(batches []int) error {
	var cases []exp.Case
	for _, pf := range []string{"edge", "cloud"} {
		for _, w := range exp.Workloads(pf) {
			for _, b := range batches {
				cases = append(cases, exp.Case{Platform: pf, Workload: w, Batch: b})
			}
		}
	}
	var done atomic.Int32
	results := exp.ParallelMap(cases, h.workers, func(c exp.Case) exp.PairResult {
		r := exp.RunPair(c, h.par)
		fmt.Fprintf(os.Stderr, "[fig6 %d/%d] %s done\n", done.Add(1), len(cases), c)
		return r
	})

	t := report.New("Fig.6: overall comparison (energy normalized to Cocco)",
		"case", "scheme", "norm-energy", "core-E", "dram-E", "util", "theo-max", "avg-buf", "latency")
	for _, r := range results {
		if r.Err != nil {
			t.Add(r.Case.String(), "ERROR", r.Err.Error())
			continue
		}
		base := r.Cocco.EnergyPJ
		for _, row := range []exp.Row{r.Cocco, r.Ours1, r.Ours2} {
			t.Add(r.Case.String(), row.Scheme,
				report.F(row.EnergyPJ/base, 3),
				report.F(row.CorePJ/base, 3),
				report.F(row.DRAMPJ/base, 3),
				report.Pct(row.Util), report.Pct(row.TheoUtil),
				fmt.Sprintf("%.2fMB", row.AvgBufMB),
				report.Ms(row.LatencyNS))
		}
	}
	if err := h.emit(t, "fig6.csv"); err != nil {
		return err
	}

	var cacheHits, cacheMisses int64
	for _, r := range results {
		cacheHits += r.Cache.Hits
		cacheMisses += r.Cache.Misses
	}
	fmt.Printf("eval cache across cases: %s hit rate\n", report.HitRate(cacheHits, cacheMisses))

	gm := exp.Summarize(results)
	s := report.New("Sec.VI-B summary (geometric means over valid cases)",
		"metric", "value", "paper-reports")
	s.Add("stage-1 speedup vs Cocco", report.X(gm.SpeedupStage1), "1.82x")
	s.Add("stage-2 total speedup vs Cocco", report.X(gm.SpeedupStage2), "2.11x")
	s.Add("stage-2 extra over stage-1", report.X(gm.Stage2Extra), "1.16x")
	s.Add("energy vs Cocco", report.Pct(gm.EnergyRatio-1), "-37.3%")
	s.Add("mean gap to theoretical bound", report.Pct(gm.GapToBound), "3.1%")
	s.Add("valid cases", fmt.Sprint(gm.N), "96 runs")
	return h.emit(s, "fig6_summary.csv")
}

// fig7 reproduces the DSE heatmap for one workload/batch (a dse grid sweep
// under the hood; see docs/dse.md for the standalone -sweep form).
func (h *harness) fig7(workload string, batch int) error {
	pts, err := exp.Fig7(context.Background(), workload, batch, h.par, h.workers)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("Fig.7: DSE latency (ms) for %s batch %d on 16 TOPS edge", workload, batch),
		"dram\\buf", "2MB", "4MB", "8MB", "16MB", "32MB", "scheme")
	emitGrid := func(scheme string, get func(exp.DSEPoint) (float64, string)) {
		for _, bw := range exp.Fig7Bandwidths {
			cells := []string{fmt.Sprintf("%gGB/s", bw)}
			for _, buf := range exp.Fig7Buffers {
				found := false
				for _, p := range pts {
					if p.DRAMGBs == bw && p.BufferMB == buf>>20 {
						v, e := get(p)
						if e != "" {
							cells = append(cells, "inf")
						} else {
							cells = append(cells, report.F(v, 2))
						}
						found = true
					}
				}
				if !found {
					cells = append(cells, "-")
				}
			}
			t.Add(append(cells, scheme)...)
		}
	}
	emitGrid("cocco", func(p exp.DSEPoint) (float64, string) { return p.CoccoMS, p.CoccoErr })
	emitGrid("soma", func(p exp.DSEPoint) (float64, string) { return p.SoMaMS, p.SoMaErr })
	for _, scheme := range []string{"cocco", "soma"} {
		st := exp.AnalyzeDSE(pts, scheme)
		fmt.Printf("%-6s insights: 2x bandwidth -> %.2fx faster, 2x buffer -> %.2fx faster; "+
			"envelope %d cells (best %.2f ms), cheaper-than-max/max corner: %v\n",
			scheme, st.BandwidthGain, st.BufferGain, st.EnvelopeCells, st.BestMS, st.CheaperInEnvelope)
	}
	fmt.Println("Insight 1: at batch 1 bandwidth dominates buffer; buffer gains grow with batch.")
	fmt.Println("Insight 2: SoMa's envelope flattens bottom-right - buffer compensates bandwidth.")
	return h.emit(t, fmt.Sprintf("fig7_%s_b%d.csv", workload, batch))
}

// fig8 renders the execution-graph comparison.
func (h *harness) fig8(c exp.Case) error {
	tp, err := exp.Fig8(context.Background(), c, h.par)
	if err != nil {
		return err
	}
	fmt.Printf("Fig.8: execution graphs for %s\n\n", c)
	fmt.Println("--- Cocco ---")
	fmt.Print(trace.Render(tp.Cocco, tp.MCocco, 110))
	fmt.Println("\n--- SoMa stage 1 (LFA explored, double-buffer DLSA) ---")
	fmt.Print(trace.Render(tp.Ours1, tp.M1, 110))
	fmt.Println("\n--- SoMa stage 2 (DLSA explored: prefetch + delayed store) ---")
	fmt.Print(trace.Render(tp.Ours2, tp.M2, 110))
	fmt.Println()
	fmt.Print(trace.Legend(tp.Ours2))
	return nil
}

// stats reproduces the Sec. VI-B1 fusion statistics.
func (h *harness) stats(batches []int) error {
	var cases []exp.Case
	for _, w := range exp.Workloads("edge") {
		for _, b := range batches {
			cases = append(cases, exp.Case{Platform: "edge", Workload: w, Batch: b})
		}
	}
	results := exp.Fig6(cases, h.par, h.workers)
	var cTiles, sTiles, cLGs, sLGs, sFLGs, n float64
	t := report.New("Sec.VI-B1: fusion structure, Cocco vs SoMa (edge)",
		"case", "cocco-tiles", "soma-tiles", "cocco-LGs", "soma-LGs", "soma-FLGs")
	for _, r := range results {
		if r.Err != nil {
			t.Add(r.Case.String(), "ERROR", r.Err.Error())
			continue
		}
		n++
		cTiles += float64(r.Cocco.Tiles)
		sTiles += float64(r.Ours2.Tiles)
		cLGs += float64(r.Cocco.LGs)
		sLGs += float64(r.Ours2.LGs)
		sFLGs += float64(r.Ours2.FLGs)
		t.Add(r.Case.String(), fmt.Sprint(r.Cocco.Tiles), fmt.Sprint(r.Ours2.Tiles),
			fmt.Sprint(r.Cocco.LGs), fmt.Sprint(r.Ours2.LGs), fmt.Sprint(r.Ours2.FLGs))
	}
	if n > 0 {
		t.Add("AVERAGE", report.F(cTiles/n, 1), report.F(sTiles/n, 1),
			report.F(cLGs/n, 1), report.F(sLGs/n, 1), report.F(sFLGs/n, 1))
		t.Add("paper", "7962", "751", "13.0", "2.5", "3.9 FLGs")
	}
	return h.emit(t, "stats.csv")
}

// llm reproduces the decode-phase observations: utilization grows sublinearly
// with batch size as the KV cache catches up with the weights.
func (h *harness) llm() error {
	t := report.New("LLM decode: SoMa utilization vs batch (paper: 0.66/2.03/4.26/5.84% small; 0.60/1.90/4.13/5.83% XL)",
		"model", "batch", "util", "dram-util", "kv/weights", "latency")
	for _, pc := range []struct {
		platform, model string
		cfg             models.GPTConfig
	}{
		{"edge", "gpt2s-decode", models.GPT2Small()},
		{"cloud", "gpt2xl-decode", models.GPT2XL()},
	} {
		for _, b := range exp.Batches {
			g, err := models.Build(pc.model, b)
			if err != nil {
				return err
			}
			res, err := engine.Run(context.Background(), engine.Request{Graph: g,
				Model: pc.model, Batch: b, Platform: pc.platform,
				Objective: soma.EDP(), Params: h.par}, nil)
			if err != nil {
				t.Add(pc.model, fmt.Sprint(b), "ERR: "+err.Error())
				continue
			}
			kv := float64(2*pc.cfg.Layers*b*pc.cfg.SeqLen*pc.cfg.DModel) /
				float64(g.TotalWeightBytes()-int64(2*pc.cfg.Layers*b*pc.cfg.SeqLen*pc.cfg.DModel))
			m := res.Raw.Metrics
			t.Add(pc.model, fmt.Sprint(b), report.Pct(m.Utilization),
				report.Pct(m.DRAMUtilization), report.F(kv, 2), report.Ms(m.LatencyNS))
		}
	}
	fmt.Println("Observation 1: decode is bandwidth-bound (DRAM util ~100%, compute util ~1%).")
	fmt.Println("Observation 2: utilization growth decays with batch as KV cache rivals weights.")
	return h.emit(t, "llm.csv")
}

// ablate quantifies SoMa's design choices on ResNet-50 (edge, batch 1).
func (h *harness) ablate() error {
	variants := []struct {
		name string
		ab   soma.Ablation
	}{
		{"full", soma.Ablation{}},
		{"no-FLC (FLC==DRAM cuts)", soma.Ablation{NoFLC: true}},
		{"no-tiling-freedom", soma.Ablation{NoTiling: true}},
		{"no-stage2", soma.Ablation{NoStage2: true}},
		{"no-buffer-allocator", soma.Ablation{NoAllocator: true}},
	}
	t := report.New("Ablations: ResNet-50, edge, batch 1",
		"variant", "latency", "energy(mJ)", "util", "LGs", "FLGs", "cost-vs-full")
	var fullCost float64
	for _, v := range variants {
		par := h.par
		par.Ablate = v.ab
		res, err := engine.Run(context.Background(), engine.Request{Model: "resnet50",
			Batch: 1, Platform: "edge", Objective: soma.EDP(), Params: par}, nil)
		if err != nil {
			t.Add(v.name, "ERR: "+err.Error())
			continue
		}
		if v.name == "full" {
			fullCost = res.Cost
		}
		m := res.Raw.Metrics
		t.Add(v.name, report.Ms(m.LatencyNS), report.F(m.EnergyPJ/1e9, 3),
			report.Pct(m.Utilization), fmt.Sprint(res.Raw.Encoding.NumLGs()),
			fmt.Sprint(res.Raw.Encoding.NumFLGs()), report.X(res.Cost/fullCost))
	}
	return h.emit(t, "ablate.csv")
}
