package main

import (
	"context"
	"fmt"

	"soma/internal/exp"
	"soma/internal/report"
	"soma/internal/soma"
)

// edp sweeps the Energy^n x Delay^m objective exponents (the framework's
// tunable optimization goal, Sec. V-A) on one case.
func (h *harness) edp(c exp.Case) error {
	objectives := []soma.Objective{
		{N: 0, M: 1}, // latency only
		{N: 1, M: 0}, // energy only
		{N: 1, M: 1}, // EDP (paper default)
		{N: 1, M: 2}, // delay-squared (latency-critical)
		{N: 2, M: 1}, // energy-squared (battery-critical)
	}
	pts := exp.ObjectiveSweep(context.Background(), c, h.par, objectives)
	t := report.New(fmt.Sprintf("Objective sweep: %s", c),
		"objective", "latency", "energy(mJ)")
	for _, p := range pts {
		name := fmt.Sprintf("E^%g x D^%g", p.N, p.M)
		if p.Err != nil {
			t.Add(name, "ERR: "+p.Err.Error())
			continue
		}
		t.Add(name, fmt.Sprintf("%.3fms", p.LatencyMS), report.F(p.EnergyMJ, 3))
	}
	if !exp.FrontierConsistent(pts, 0.25) {
		fmt.Println("warning: objective frontier inconsistent (search noise dominates at this profile)")
	}
	return h.emit(t, "edp.csv")
}

// seeds measures the run-to-run stability of the annealer on one case.
func (h *harness) seeds(c exp.Case) error {
	st, err := exp.SeedSweep(context.Background(), c, h.par, []int64{1, 2, 3, 4, 5})
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("Seed stability: %s", c),
		"seeds", "min", "median", "max", "spread")
	t.Add(fmt.Sprint(st.Seeds),
		fmt.Sprintf("%.3fms", st.MinMS),
		fmt.Sprintf("%.3fms", st.MedMS),
		fmt.Sprintf("%.3fms", st.MaxMS),
		report.Pct(st.SpreadPct))
	fmt.Println(st.String())
	return h.emit(t, "seeds.csv")
}
