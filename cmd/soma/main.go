// Command soma is the end-to-end scheduler CLI: it takes a workload from the
// model zoo and a hardware configuration, explores the DRAM Communication
// Scheduling Space, and emits the schedule report, the execution graph, and
// (optionally) the lowered instruction stream - the full compiler flow of
// the paper's Fig. 5.
//
// Examples:
//
//	soma -model resnet50 -batch 1 -hw edge
//	soma -model gpt2xl-prefill -batch 4 -hw cloud -profile default
//	soma -model resnet50 -chains 8 -workers 4
//	soma -model resnet50 -framework cocco -trace
//	soma -model resnet50 -ir out.ir -dram 32 -buf 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"soma/internal/cocco"
	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/exp"
	"soma/internal/isa"
	"soma/internal/models"
	"soma/internal/report"
	"soma/internal/sim"
	"soma/internal/soma"
	"soma/internal/trace"
)

func main() {
	model := flag.String("model", "resnet50", "workload: "+strings.Join(models.Names(), "|"))
	batch := flag.Int("batch", 1, "batch size")
	hwName := flag.String("hw", "edge", "platform preset: edge|cloud")
	dram := flag.Float64("dram", 0, "override DRAM bandwidth (GB/s)")
	buf := flag.Int64("buf", 0, "override GBUF size (MB)")
	profile := flag.String("profile", "default", "search profile: fast|default|paper")
	framework := flag.String("framework", "soma", "scheduler: soma|cocco")
	seed := flag.Int64("seed", 1, "search seed")
	chains := flag.Int("chains", 0, "portfolio chains per annealing stage (<=1 = serial)")
	workers := flag.Int("workers", 0, "goroutines running portfolio chains (<=1 = serial; result is identical for any value)")
	beta1 := flag.Int("beta1", 0, "override stage-1 iteration multiplier")
	beta2 := flag.Int("beta2", 0, "override stage-2 iteration multiplier")
	objN := flag.Float64("energy-exp", 1, "objective exponent n in Energy^n x Delay^m")
	objM := flag.Float64("delay-exp", 1, "objective exponent m in Energy^n x Delay^m")
	irOut := flag.String("ir", "", "write the lowered instruction stream to this file")
	showTrace := flag.Bool("trace", false, "print the execution graph")
	jsonOut := flag.Bool("json", false, "emit the machine-readable result payload (same schema as the somad API) instead of the human report")
	flag.Parse()

	cfg, err := exp.Platform(*hwName)
	if err != nil {
		fatal(err)
	}
	if *dram > 0 {
		cfg = cfg.WithDRAM(*dram)
	}
	if *buf > 0 {
		cfg = cfg.WithGBuf(*buf << 20)
	}
	g, err := models.Build(*model, *batch)
	if err != nil {
		fatal(err)
	}
	par, err := soma.ProfileParams(*profile)
	if err != nil {
		fatal(err)
	}
	par.Seed = *seed
	par.Chains = *chains
	par.Workers = *workers
	if *beta1 > 0 {
		par.Beta1 = *beta1
	}
	if *beta2 > 0 {
		par.Beta2 = *beta2
		par.Stage2MaxIters = 1 << 20
	}
	obj := soma.Objective{N: *objN, M: *objM}
	spec := report.Spec{Model: *model, Batch: *batch, HW: *hwName,
		Framework: *framework, Seed: *seed, Obj: report.Objective{N: *objN, M: *objM}}

	if !*jsonOut {
		fmt.Printf("workload: %s", g.Summary())
		fmt.Printf("hardware: %s\n", cfg.String())
	}

	var sched *core.Schedule
	var metrics *sim.Metrics
	var payload *report.Result
	switch *framework {
	case "cocco":
		res, err := cocco.New(g, cfg, obj, par).Run()
		if err != nil {
			fatal(err)
		}
		sched, metrics = res.Schedule, res.Metrics
		payload = report.FromCocco(spec, cfg, res)
	case "soma":
		res, err := soma.New(g, cfg, obj, par).Run()
		if err != nil {
			fatal(err)
		}
		sched, metrics = res.Schedule, res.Stage2.Metrics
		payload = report.FromSoma(spec, cfg, res)
		if !*jsonOut {
			fmt.Printf("buffer allocator: %d iterations, stage-1 budget %s\n",
				res.AllocIters, report.MB(res.Stage1Budget))
			if st := res.Stage2.Stats; st.Chains > 1 {
				fmt.Printf("portfolio: %d chains on %d workers, stage-2 winner chain %d\n",
					st.Chains, st.Workers, st.BestChain)
			}
			fmt.Printf("eval cache: %s hit rate, %d entries\n",
				report.HitRate(res.Cache.Hits, res.Cache.Misses), res.Cache.Entries)
			fmt.Printf("stage 1: latency %s, energy %.3f mJ\n",
				report.Ms(res.Stage1.Metrics.LatencyNS), res.Stage1.Metrics.EnergyPJ/1e9)
		}
	default:
		fatal(fmt.Errorf("unknown framework %q", *framework))
	}

	if *jsonOut {
		// The exact payload the somad API serves for this run; -trace is
		// a human-report feature and is skipped, -ir still applies below.
		if err := payload.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		printReport(sched, metrics)
	}

	if *showTrace && !*jsonOut {
		cs := coresched.New(cfg)
		m, err := sim.Evaluate(sched, cs, sim.Options{Trace: true})
		if err != nil {
			fatal(err)
		}
		fmt.Print(trace.Render(sched, m, 110))
		fmt.Print(trace.Legend(sched))
	}
	if *irOut != "" {
		prog, err := isa.Generate(sched, cfg.GBufBytes)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*irOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := prog.WriteText(f); err != nil {
			fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("instructions: %d (%d loads, %d stores, %d computes) -> %s\n",
				len(prog.Instrs), prog.Counts()[isa.Load], prog.Counts()[isa.Store],
				prog.Counts()[isa.Compute], *irOut)
		}
	}
}

func printReport(sched *core.Schedule, metrics *sim.Metrics) {
	t := report.New("schedule report", "metric", "value")
	t.Add("latency", report.Ms(metrics.LatencyNS))
	t.Add("energy", fmt.Sprintf("%.3f mJ", metrics.EnergyPJ/1e9))
	t.Add("  core array", fmt.Sprintf("%.3f mJ", metrics.CoreEnergyPJ/1e9))
	t.Add("  dram", fmt.Sprintf("%.3f mJ", metrics.DRAMEnergyPJ/1e9))
	t.Add("compute utilization", report.Pct(metrics.Utilization))
	t.Add("theoretical max util", report.Pct(metrics.TheoreticalMaxUtil))
	t.Add("dram busy", report.Pct(metrics.DRAMUtilization))
	t.Add("dram traffic", report.MB(metrics.TotalDRAMBytes))
	t.Add("peak buffer", report.MB(metrics.PeakBufferBytes))
	t.Add("avg buffer", fmt.Sprintf("%.2fMB", metrics.AvgBufferBytes/(1<<20)))
	st := sched.Summarize()
	t.Add("LGs / FLGs", fmt.Sprintf("%d / %d", st.LGs, st.FLGs))
	t.Add("tiles / DRAM tensors", fmt.Sprintf("%d / %d", st.Tiles, st.Tensors))
	fmt.Println(t.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soma:", err)
	os.Exit(1)
}
