// Command soma is the end-to-end scheduler CLI: it takes a workload from the
// model zoo and a hardware configuration, explores the DRAM Communication
// Scheduling Space, and emits the schedule report, the execution graph, and
// (optionally) the lowered instruction stream - the full compiler flow of
// the paper's Fig. 5.
//
// Examples:
//
//	soma -model resnet50 -batch 1 -hw edge
//	soma -model gpt2xl-prefill -batch 4 -hw cloud -profile default
//	soma -model resnet50 -chains 8 -workers 4 -progress
//	soma -model resnet50 -framework cocco -trace
//	soma -model resnet50 -ir out.ir -dram 32 -buf 16
//	soma -scenario multi-tenant-cnn -json
//	soma -scenario my_mix.json -profile fast
//	soma -sweep grid.json -journal grid.jsonl -progress
//	soma -sweep grid.json -journal grid.jsonl -workers host1:8844,host2:8844
//	soma -sweep grid.json -adaptive -budget 12 # probe the grid, solve near the front
//	soma -model resnet50 -telemetry            # search metrics on stderr
//	soma -model resnet50 -convergence-out c.json # annealing trajectory + diagnostics
//	soma -sweep grid.json -trace-out grid.json # Perfetto trace of the sweep
//	soma -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"soma/internal/core"
	"soma/internal/coresched"
	"soma/internal/engine"
	"soma/internal/exp"
	"soma/internal/isa"
	"soma/internal/models"
	"soma/internal/obs"
	"soma/internal/report"
	"soma/internal/sim"
	"soma/internal/soma"
	"soma/internal/trace"
	"soma/internal/workload"
)

func main() {
	model := flag.String("model", "resnet50", "workload: "+strings.Join(models.Names(), "|"))
	batch := flag.Int("batch", 1, "batch size")
	hwName := flag.String("hw", "edge", "platform preset: edge|cloud")
	dram := flag.Float64("dram", 0, "override DRAM bandwidth (GB/s)")
	buf := flag.Int64("buf", 0, "override GBUF size (MB)")
	profile := flag.String("profile", "default", "search profile: fast|default|paper")
	framework := flag.String("framework", "soma", "scheduler backend: "+strings.Join(engine.Backends(), "|"))
	seed := flag.Int64("seed", 1, "search seed")
	chains := flag.Int("chains", 0, "portfolio chains per annealing stage (<=1 = serial)")
	workers := flag.String("workers", "0", "goroutines running portfolio chains (<=1 = serial; result is identical for any value); with -sweep, a comma-separated somad worker address list shards the grid across a cluster instead")
	beta1 := flag.Int("beta1", 0, "override stage-1 iteration multiplier")
	beta2 := flag.Int("beta2", 0, "override stage-2 iteration multiplier")
	objN := flag.Float64("energy-exp", 1, "objective exponent n in Energy^n x Delay^m")
	objM := flag.Float64("delay-exp", 1, "objective exponent m in Energy^n x Delay^m")
	irOut := flag.String("ir", "", "write the lowered instruction stream to this file")
	showTrace := flag.Bool("trace", false, "print the execution graph")
	jsonOut := flag.Bool("json", false, "emit the machine-readable result payload (same schema as the somad API) instead of the human report")
	progress := flag.Bool("progress", false, "stream live search progress (stage transitions, chain improvements, cache hit rates) to stderr")
	scenario := flag.String("scenario", "", "schedule a multi-model scenario: a built-in name (see -list) or a JSON spec file")
	sweep := flag.String("sweep", "", "run a design-space exploration grid from a JSON sweep spec file (docs/dse.md)")
	journal := flag.String("journal", "", "sweep checkpoint file (JSONL); an interrupted sweep resumes from its committed prefix")
	adaptive := flag.Bool("adaptive", false, "run the sweep adaptively: cheap probe solves across the grid, full-fidelity solves only near the Pareto front (docs/dse.md)")
	budget := flag.Int("budget", 0, "with -adaptive, the full-fidelity solve budget (0 = the spec's value or the default fraction of the grid)")
	telemetry := flag.Bool("telemetry", false, "dump search metrics in Prometheus text format to stderr after the run (docs/observability.md)")
	convergenceOut := flag.String("convergence-out", "", "write the run's convergence journal and search diagnostics to this file as JSON (docs/observability.md)")
	traceOut := flag.String("trace-out", "", "write the solve's span trace to this file as Chrome trace-event JSON (load at ui.perfetto.dev)")
	list := flag.Bool("list", false, "list registered models, platforms and built-in scenarios, then exit")
	flag.Parse()

	if *list {
		printCatalog()
		return
	}

	cfg, err := exp.Platform(*hwName)
	if err != nil {
		fatal(err)
	}
	if *dram > 0 {
		cfg = cfg.WithDRAM(*dram)
	}
	if *buf > 0 {
		cfg = cfg.WithGBuf(*buf << 20)
	}
	par, err := soma.ProfileParams(*profile)
	if err != nil {
		fatal(err)
	}
	par.Seed = *seed
	par.Chains = *chains
	// -workers is overloaded: a plain integer is the portfolio worker
	// count; anything else is a cluster worker address list (sweeps only).
	var clusterWorkers []string
	if n, err := strconv.Atoi(strings.TrimSpace(*workers)); err == nil {
		par.Workers = n
	} else {
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				clusterWorkers = append(clusterWorkers, a)
			}
		}
		if len(clusterWorkers) == 0 {
			fatal(fmt.Errorf("-workers wants a number or a worker address list, got %q", *workers))
		}
	}
	if *beta1 > 0 {
		par.Beta1 = *beta1
	}
	if *beta2 > 0 {
		par.Beta2 = *beta2
		par.Stage2MaxIters = 1 << 20
	}
	obj := soma.Objective{N: *objN, M: *objM}
	var hooks *engine.Hooks
	if *progress {
		hooks = &engine.Hooks{Event: printProgress}
	}
	// The obs bundle observes only (byte-identical results with or without
	// it), so it rides along on every flow: single model, scenario, sweep.
	var o *obs.Obs
	if *telemetry || *traceOut != "" {
		o = obs.New()
	}
	// The convergence journal is pass-through the same way; per-point sweep
	// convergence is a sweep-spec field instead (-sweep rejects this flag).
	var jnl *obs.Journal
	if *convergenceOut != "" {
		jnl = obs.NewJournal()
	}

	if *sweep != "" {
		// A sweep spec declares its own axes and search parameters; the
		// single-run flags would silently conflict with them, so reject
		// any that were set explicitly.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "sweep", "journal", "json", "progress", "telemetry", "trace-out",
				"adaptive", "budget":
			case "workers":
				// Allowed only in its cluster-address-list form: a numeric
				// -workers is a search parameter the spec owns.
				if clusterWorkers == nil {
					fatal(fmt.Errorf("-sweep specs declare their own axes and parameters; numeric -%s is not allowed (a worker address list shards the sweep)", f.Name))
				}
			default:
				fatal(fmt.Errorf("-sweep specs declare their own axes and parameters; -%s is not allowed", f.Name))
			}
		})
		runSweep(*sweep, *journal, *jsonOut, *adaptive, *budget, clusterWorkers, hooks, o)
		flushObs(o, *telemetry, *traceOut)
		return
	}
	if *journal != "" {
		fatal(fmt.Errorf("-journal applies to -sweep runs only"))
	}
	if *adaptive || *budget != 0 {
		fatal(fmt.Errorf("-adaptive and -budget apply to -sweep runs only"))
	}
	if clusterWorkers != nil {
		fatal(fmt.Errorf("a -workers address list applies to -sweep runs only"))
	}

	if *scenario != "" {
		// Mirror the somad API contract: a scenario request carries its
		// own per-component models and batches.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "model" || f.Name == "batch" {
				fatal(fmt.Errorf("-scenario defines its own components; -%s is not allowed", f.Name))
			}
		})
		switch {
		case *framework != "soma":
			fatal(fmt.Errorf("-scenario runs the soma framework only"))
		case *dram > 0 || *buf > 0:
			fatal(fmt.Errorf("-scenario uses the named platform preset; -dram/-buf overrides are not supported"))
		case *showTrace || *irOut != "":
			fatal(fmt.Errorf("-trace and -ir are not supported with -scenario"))
		}
		runScenario(*scenario, *hwName, obj, par, *jsonOut, hooks, o, jnl, *convergenceOut)
		flushObs(o, *telemetry, *traceOut)
		return
	}

	// One engine.Request is the whole search construction: the backend
	// registry, cache scoping, cancellation and payload assembly all live
	// behind engine.Run (the somad daemon runs the identical path, so a
	// fixed seed gives byte-identical -json payloads over both).
	req := engine.Request{
		Backend:   *framework,
		Model:     *model,
		Batch:     *batch,
		Platform:  *hwName,
		Objective: obj,
		Params:    par,
		Obs:       o,
		Journal:   jnl,
	}
	if *dram > 0 || *buf > 0 {
		req.Config = &cfg
	}

	if !*jsonOut {
		g, err := models.Build(*model, *batch)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("workload: %s", g.Summary())
		fmt.Printf("hardware: %s\n", cfg.String())
		// Hand the already-built graph to the engine; Model still labels
		// the payload, so the bytes match the -json path exactly.
		req.Graph = g
	}

	payload, err := engine.Run(context.Background(), req, hooks)
	if err != nil {
		fatal(err)
	}
	writeConvergence(*convergenceOut, payload)
	sched, metrics := payload.Raw.Schedule, payload.Raw.Metrics
	if st := payload.Search; st != nil && !*jsonOut {
		fmt.Printf("buffer allocator: %d iterations, stage-1 budget %s\n",
			st.AllocIters, report.MB(st.Stage1Budget))
		if st.Chains > 1 {
			fmt.Printf("portfolio: %d chains on %d workers, stage-2 winner chain %d\n",
				st.Chains, st.Workers, st.BestChain)
		}
		fmt.Printf("eval cache: %s hit rate, %d entries\n",
			report.HitRate(st.CacheHits, st.CacheMisses), st.CacheEntries)
		fmt.Printf("stage 1: latency %s, energy %.3f mJ\n",
			report.Ms(payload.Raw.Stage1Metrics.LatencyNS), payload.Raw.Stage1Metrics.EnergyPJ/1e9)
	}

	if *jsonOut {
		// The exact payload the somad API serves for this run; -trace is
		// a human-report feature and is skipped, -ir still applies below.
		if err := payload.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		printReport(sched, metrics)
	}

	if *showTrace && !*jsonOut {
		cs := coresched.New(cfg)
		m, err := sim.Evaluate(sched, cs, sim.Options{Trace: true})
		if err != nil {
			fatal(err)
		}
		fmt.Print(trace.Render(sched, m, 110))
		fmt.Print(trace.Legend(sched))
	}
	if *irOut != "" {
		prog, err := isa.Generate(sched, cfg.GBufBytes)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*irOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := prog.WriteText(f); err != nil {
			fatal(err)
		}
		if !*jsonOut {
			fmt.Printf("instructions: %d (%d loads, %d stores, %d computes) -> %s\n",
				len(prog.Instrs), prog.Counts()[isa.Load], prog.Counts()[isa.Store],
				prog.Counts()[isa.Compute], *irOut)
		}
	}
	flushObs(o, *telemetry, *traceOut)
}

// writeConvergence dumps the run's Convergence section to path as indented
// JSON and scrubs it from the payload, so `-json` output stays byte-identical
// with or without the flag — the same rule somad applies, serving the report
// on its own endpoint instead of inside the stored result. Serial runs (the
// -chains default) are fully deterministic for a fixed seed, which the CI
// golden relies on. No-op when path is empty.
func writeConvergence(path string, res *report.Result) {
	if path == "" {
		return
	}
	rep := res.Convergence
	if rep == nil {
		fatal(fmt.Errorf("run produced no convergence report"))
	}
	res.Convergence = nil
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

// flushObs emits the collected observability artifacts after a run: the
// metrics registry as Prometheus text on stderr (-telemetry) and the span
// trace as Chrome trace-event JSON (-trace-out). No-op when the bundle is
// nil (neither flag set).
func flushObs(o *obs.Obs, telemetry bool, traceOut string) {
	if o == nil {
		return
	}
	if telemetry {
		fmt.Fprintln(os.Stderr, "# search telemetry (Prometheus text format)")
		if err := o.Reg.WritePrometheus(os.Stderr); err != nil {
			fatal(err)
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := o.Tracer.WriteJSON(f); err != nil {
			fatal(err)
		}
	}
}

// resolveScenario turns the -scenario argument into a Scenario: a path to a
// JSON spec file (anything containing a path separator or ending in .json),
// otherwise a built-in library name.
func resolveScenario(arg string) (workload.Scenario, error) {
	if strings.ContainsAny(arg, "/\\") || strings.HasSuffix(arg, ".json") {
		data, err := os.ReadFile(arg)
		if err != nil {
			return workload.Scenario{}, err
		}
		return workload.ParseSpec(data)
	}
	return workload.Builtin(arg)
}

// runScenario is the -scenario flow: compose, schedule, and report. The JSON
// payload is the exact one the somad jobs API serves for the same request
// (both route through engine.Run).
func runScenario(arg, hwName string, obj soma.Objective, par soma.Params, jsonOut bool, hooks *engine.Hooks, o *obs.Obs, jnl *obs.Journal, convergenceOut string) {
	sc, err := resolveScenario(arg)
	if err != nil {
		fatal(err)
	}
	res, err := engine.Run(context.Background(), engine.Request{
		Scenario: &sc, Platform: hwName, Objective: obj, Params: par, Obs: o,
		Journal: jnl}, hooks)
	if err != nil {
		fatal(err)
	}
	writeConvergence(convergenceOut, res)
	if jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	printScenarioReport(res)
}

func printScenarioReport(res *report.Result) {
	info := res.Scenario
	fmt.Printf("scenario: %s (%s, %d components)\n", info.Name, info.Arrival, len(info.Components))
	fmt.Printf("hardware: %s\n\n", res.Hardware.Description)

	t := report.New("components (isolated runs)", "component", "model", "batch", "weight",
		"layers", "latency", "energy", "dram busy")
	for _, c := range info.Components {
		m := c.Isolated.Metrics
		t.Add(c.Name, c.Model, fmt.Sprint(c.Batch), report.F(c.Weight, 1),
			fmt.Sprint(c.Layers), report.Ms(m.LatencyNS),
			fmt.Sprintf("%.3f mJ", m.EnergyPJ/1e9), report.Pct(m.DRAMUtilization))
	}
	fmt.Println(t.String())

	a := report.New("composed schedule", "metric", "value")
	a.Add("latency", report.Ms(res.Metrics.LatencyNS))
	a.Add("  isolated sum", report.Ms(info.IsolatedSumLatencyNS))
	a.Add("  speedup vs isolated", report.X(info.ComposedSpeedup))
	a.Add("energy", fmt.Sprintf("%.3f mJ", res.Metrics.EnergyPJ/1e9))
	a.Add("  isolated sum", fmt.Sprintf("%.3f mJ", info.IsolatedSumEnergyPJ/1e9))
	a.Add("dram busy", report.Pct(res.Metrics.DRAMUtilization))
	a.Add("dram traffic", report.MB(res.Metrics.TotalDRAMBytes))
	a.Add("peak buffer", report.MB(res.Metrics.PeakBufferBytes))
	a.Add("cost", report.E(res.Cost))
	a.Add("  weighted isolated", report.E(info.WeightedIsolatedCost))
	a.Add("LGs / FLGs", fmt.Sprintf("%d / %d", res.Schedule.LGs, res.Schedule.FLGs))
	a.Add("tiles / DRAM tensors", fmt.Sprintf("%d / %d", res.Schedule.Tiles, res.Schedule.Tensors))
	fmt.Println(a.String())
}

// printCatalog is the -list flow, sharing exp.Registry with the somad
// /v1/models, /v1/hw and /v1/scenarios endpoints.
func printCatalog() {
	cat := exp.Registry()
	fmt.Println("models:")
	for _, m := range cat.Models {
		fmt.Printf("  %s\n", m)
	}
	fmt.Println("platforms:")
	for _, p := range cat.Platforms {
		cfg, err := exp.Platform(p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %s\n", cfg.String())
	}
	fmt.Println("scenarios:")
	for _, name := range cat.Scenarios {
		sc, err := workload.Builtin(name)
		if err != nil {
			fatal(err)
		}
		parts := make([]string, len(sc.Components))
		for i, c := range sc.Components {
			parts[i] = c.String()
		}
		fmt.Printf("  %s (%s): %s\n", sc.Name, sc.Arrival, strings.Join(parts, " + "))
	}
	fmt.Println("backends:")
	for _, b := range engine.List() {
		fmt.Printf("  %s: %s\n", b.Name, b.Description)
	}
}

func printReport(sched *core.Schedule, metrics *sim.Metrics) {
	t := report.New("schedule report", "metric", "value")
	t.Add("latency", report.Ms(metrics.LatencyNS))
	t.Add("energy", fmt.Sprintf("%.3f mJ", metrics.EnergyPJ/1e9))
	t.Add("  core array", fmt.Sprintf("%.3f mJ", metrics.CoreEnergyPJ/1e9))
	t.Add("  dram", fmt.Sprintf("%.3f mJ", metrics.DRAMEnergyPJ/1e9))
	t.Add("compute utilization", report.Pct(metrics.Utilization))
	t.Add("theoretical max util", report.Pct(metrics.TheoreticalMaxUtil))
	t.Add("dram busy", report.Pct(metrics.DRAMUtilization))
	t.Add("dram traffic", report.MB(metrics.TotalDRAMBytes))
	t.Add("peak buffer", report.MB(metrics.PeakBufferBytes))
	t.Add("avg buffer", fmt.Sprintf("%.2fMB", metrics.AvgBufferBytes/(1<<20)))
	st := sched.Summarize()
	t.Add("LGs / FLGs", fmt.Sprintf("%d / %d", st.LGs, st.FLGs))
	t.Add("tiles / DRAM tensors", fmt.Sprintf("%d / %d", st.Tiles, st.Tensors))
	fmt.Println(t.String())
}

// printProgress is the -progress ticker: one stderr line per engine event,
// prefixed with the backend (and scenario component, when present). It
// observes the stream only, so -json output stays byte-identical with or
// without it.
func printProgress(e engine.Event) {
	who := e.Backend
	switch {
	case who == "": // sweep-level events carry only the component tag
		who = e.Component
	case e.Component != "":
		who += "/" + e.Component
	}
	switch e.Kind {
	case "start":
		fmt.Fprintf(os.Stderr, "[%s] search started\n", who)
	case "stage":
		fmt.Fprintf(os.Stderr, "[%s] %s start (alloc iter %d, budget %s)\n",
			who, e.Stage, e.AllocIter, report.MB(e.Budget))
	case "improve":
		fmt.Fprintf(os.Stderr, "[%s] %s chain %d iter %d best cost %s\n",
			who, e.Stage, e.Chain, e.Iter, report.E(e.Cost))
	case "stage-done":
		fmt.Fprintf(os.Stderr, "[%s] %s done, cost %s\n", who, e.Stage, report.E(e.Cost))
	case "cache":
		if e.Cache != nil {
			fmt.Fprintf(os.Stderr, "[%s] eval cache %s, %d entries\n",
				who, report.HitRate(e.Cache.Hits, e.Cache.Misses), e.Cache.Entries)
		}
	case "done":
		fmt.Fprintf(os.Stderr, "[%s] finished, cost %s\n", who, report.E(e.Cost))
	case "error":
		fmt.Fprintf(os.Stderr, "[%s] failed: %s\n", who, e.Err)
	case "sweep-start":
		fmt.Fprintf(os.Stderr, "[%s] sweep started, %d grid points\n", who, e.Iter)
	case "rung-start":
		fmt.Fprintf(os.Stderr, "[%s] %s rung started, %d points\n", who, e.Stage, e.Iter)
	case "rung-done":
		fmt.Fprintf(os.Stderr, "[%s] %s rung done\n", who, e.Stage)
	case "point-start":
		fmt.Fprintf(os.Stderr, "[%s] point %d%s started\n", who, e.Iter, stageTag(e.Stage))
	case "point-done":
		fmt.Fprintf(os.Stderr, "[%s] point %d%s done, cost %s\n", who, e.Iter, stageTag(e.Stage), report.E(e.Cost))
	case "point-error":
		fmt.Fprintf(os.Stderr, "[%s] point %d failed: %s\n", who, e.Iter, e.Err)
	case "sweep-done":
		fmt.Fprintf(os.Stderr, "[%s] sweep finished, best cost %s\n", who, report.E(e.Cost))
	}
}

// stageTag renders an adaptive rung fidelity as a point-event suffix;
// exhaustive sweeps carry no stage and print unchanged.
func stageTag(s string) string {
	if s == "" {
		return ""
	}
	return " [" + s + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soma:", err)
	os.Exit(1)
}
