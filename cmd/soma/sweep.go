package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"

	"soma/internal/cluster"
	"soma/internal/dse"
	"soma/internal/engine"
	"soma/internal/obs"
	"soma/internal/report"
	"soma/internal/sim"
)

// runSweep is the -sweep flow: parse the declarative grid spec, execute it
// through the dse runner (checkpointing to -journal when given, resuming
// automatically from a committed prefix), and report the rows plus the
// sweep-level aggregates. With a worker address list the grid shards across
// the cluster instead (docs/cluster.md). The JSONL journal is the canonical
// byte-comparable artifact - identical for any worker count, serial or
// sharded, and across interruptions.
func runSweep(path, journal string, jsonOut, adaptive bool, budget int, clusterWorkers []string, hooks *engine.Hooks, o *obs.Obs) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	sw, err := dse.ParseSweep(data)
	if err != nil {
		fatal(err)
	}
	// -adaptive switches a plain spec to the successive-halving driver with
	// default knobs; a spec that already declares an adaptive block keeps it.
	// -budget overrides the full-fidelity solve budget either way.
	if adaptive && sw.Adaptive == nil {
		sw.Adaptive = &dse.Adaptive{}
	}
	if budget != 0 {
		if sw.Adaptive == nil {
			fatal(fmt.Errorf("-budget needs -adaptive (or an adaptive block in the spec)"))
		}
		sw.Adaptive.Budget = budget
	}
	var out *dse.Outcome
	if len(clusterWorkers) > 0 {
		out, err = runClusterSweep(sw, journal, clusterWorkers, hooks, o)
	} else {
		out, err = dse.Run(context.Background(), sw, dse.Options{Journal: journal, Hooks: hooks, Obs: o})
	}
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		// The exact outcome the somad sweeps API serves for this spec
		// (rows scrubbed of run-dependent cache counters and in-memory
		// artifacts).
		out.Scrub()
		if err := out.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	printSweepReport(out)
}

// runClusterSweep coordinates one sharded sweep: it hosts an ephemeral
// remote-cache listener (the workers' L2, sharing the coordinator's own
// cache) and dispatches leases to the given somad workers. Unreachable
// workers degrade to plain local execution inside cluster.Run.
func runClusterSweep(sw dse.Sweep, journal string, workers []string, hooks *engine.Hooks, o *obs.Obs) (*dse.Outcome, error) {
	cache := sim.NewCache(0)
	opt := cluster.Options{
		Workers: workers, Cache: cache,
		Journal: journal, Hooks: hooks, Obs: o,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	// The L2 listener binds loopback: local workers (the 1-coordinator +
	// N-worker quickstart) share evaluations through it, remote workers
	// simply run L1-only - their Remote clients trip the breaker and the
	// sweep proceeds unshared, never unfinished.
	if ln, err := net.Listen("tcp", "127.0.0.1:0"); err == nil {
		mux := http.NewServeMux()
		cluster.NewCacheServer(cache).Mount(mux)
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		opt.CacheURL = "http://" + ln.Addr().String()
	}
	return cluster.Run(context.Background(), sw, opt)
}

func printSweepReport(out *dse.Outcome) {
	name := out.Name
	if name == "" {
		name = "unnamed"
	}
	fmt.Printf("sweep: %s (%d points, %d resumed from journal, %d failed)\n\n",
		name, out.Points, out.Resumed, out.Failed)

	t := report.New("grid", "point", "cost", "latency", "energy", "dram busy", "peak buf")
	for _, row := range out.Rows {
		label := row.Point.Label()
		if row.Fidelity != "" {
			label += " [" + row.Fidelity + "]"
		}
		if row.Err != "" {
			t.Add(label, "ERROR: "+row.Err)
			continue
		}
		m := row.Result.Metrics
		t.Add(label, report.E(row.Result.Cost), report.Ms(m.LatencyNS),
			fmt.Sprintf("%.3f mJ", m.EnergyPJ/1e9), report.Pct(m.DRAMUtilization),
			report.MB(m.PeakBufferBytes))
	}
	fmt.Println(t.String())

	if a := out.Adaptive; a != nil {
		fmt.Printf("adaptive: %d probes, %d promoted to full fidelity (%d by exploration), %d full solves saved\n",
			a.Probes, a.Promotions, a.Explored, a.SolvesSaved)
	}

	if best := out.Best(); best != nil {
		fmt.Printf("best: %s at cost %s\n", best.Point.Label(), report.E(best.Result.Cost))
	}
	if len(out.Pareto) > 0 {
		p := report.New("cost vs buffer-size pareto front", "buffer", "point", "cost")
		for _, i := range out.Pareto {
			row := out.Rows[i]
			p.Add(report.MB(row.Result.Hardware.GBufBytes), row.Point.Label(),
				report.E(row.Result.Cost))
		}
		fmt.Println(p.String())
	}
	fmt.Printf("eval cache: %s hit rate, %d entries\n",
		report.HitRate(out.Cache.Hits, out.Cache.Misses), out.Cache.Entries)
}
