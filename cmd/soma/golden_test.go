package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"soma/internal/dse"
	"soma/internal/testutil"
)

// The committed journals under testdata/ are the CLI's byte-level contract:
// CI re-runs `soma -sweep` against them and the cluster/resume smokes diff the
// same files. These tests pin them in-process so a divergence fails `go test`
// before CI ever builds the binary. Regenerate with UPDATE_GOLDENS=1 after an
// intentional behavior change (see docs/architecture.md).
func runJournaled(t *testing.T, spec string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", spec))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := dse.ParseSweep(data)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if _, err := dse.Run(context.Background(), sw, dse.Options{Journal: path}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSweepSmokeGolden(t *testing.T) {
	got := runJournaled(t, "sweep-smoke.json")
	testutil.Golden(t, filepath.Join("testdata", "sweep-smoke.golden.jsonl"), got)
}

func TestAdaptiveSmokeGolden(t *testing.T) {
	got := runJournaled(t, "adaptive-smoke.json")
	testutil.Golden(t, filepath.Join("testdata", "adaptive-smoke.golden.jsonl"), got)
}
