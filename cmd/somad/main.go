// Command somad serves SoMa scheduling as a service: an HTTP JSON API over a
// bounded async job queue, with cancellable searches and one process-wide
// evaluation cache shared across requests. See docs/api.md for the endpoint
// contract.
//
// Examples:
//
//	somad                                   # listen on :8080, 1 worker
//	somad -addr 127.0.0.1:9000 -workers 4
//	somad -cache-entries 1048576            # bigger shared eval cache
//
// Cluster mode (docs/cluster.md): start N workers with -worker, then point a
// coordinator at them - its sweep jobs shard across the workers and merge
// back into journals byte-identical to single-process runs:
//
//	somad -addr 127.0.0.1:8871 -worker
//	somad -addr 127.0.0.1:8872 -worker
//	somad -addr 127.0.0.1:8844 \
//	  -cluster-workers 127.0.0.1:8871,127.0.0.1:8872 \
//	  -advertise http://127.0.0.1:8844
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"model":"resnet50","batch":1,"hw":"edge","params":{"profile":"fast"}}'
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"scenario":"multi-tenant-cnn","params":{"profile":"fast"}}'
//	curl -s -X POST localhost:8080/v1/sweeps \
//	  -d '{"models":["resnet50"],"dram_gbps":[8,16,32],"gbuf_mb":[4,8]}'
//	curl -s localhost:8080/v1/scenarios
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/sweeps/sweep-000002
//	curl -sN localhost:8080/v1/sweeps/sweep-000002/events
//	curl -s localhost:8080/metrics                       # Prometheus exposition
//	curl -s localhost:8080/v1/jobs/job-000001/trace      # Perfetto trace JSON
//	go tool pprof localhost:8080/debug/pprof/profile     # CPU profile
//
// Observability (docs/observability.md): /metrics serves the search and
// service counters in Prometheus text format, each job serves its solve
// trace as Chrome trace-event JSON, and the stdlib pprof/expvar handlers
// are mounted under /debug/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"soma/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.String("workers", "1", "concurrent search jobs (a number), or comma-separated cluster worker addresses to shard sweep jobs across")
	queue := flag.Int("queue", 64, "max queued jobs before submits get 503")
	cacheEntries := flag.Int("cache-entries", 0, "shared evaluation cache capacity (0 = default)")
	maxJobs := flag.Int("max-jobs", 0, "job-table retention bound; oldest finished jobs are evicted beyond it (0 = default)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown timeout")
	worker := flag.Bool("worker", false, "serve cluster lease execution (this somad computes sweep points for a remote coordinator)")
	advertise := flag.String("advertise", "", "this coordinator's reachable base URL, used by workers as their remote evaluation-cache tier")
	flag.Parse()

	// -workers is overloaded the same way soma's is: a plain integer sizes
	// the job worker pool; anything else is a cluster worker address list.
	poolWorkers := 1
	var workerList []string
	if n, err := strconv.Atoi(strings.TrimSpace(*workers)); err == nil {
		poolWorkers = n
	} else {
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				workerList = append(workerList, a)
			}
		}
	}

	svc := service.New(service.Config{
		Workers:        poolWorkers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		MaxJobs:        *maxJobs,
		ClusterWorker:  *worker,
		ClusterWorkers: workerList,
		Advertise:      *advertise,
	})
	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	mode := ""
	if *worker {
		mode = ", cluster worker"
	}
	if len(workerList) > 0 {
		mode = fmt.Sprintf(", coordinating %d cluster workers", len(workerList))
	}
	log.Printf("somad listening on %s (%d workers, queue %d%s)", *addr, poolWorkers, *queue, mode)

	select {
	case <-ctx.Done():
		log.Printf("somad: shutting down (drain %s)", *drain)
	case err := <-errc:
		fatal(err)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Cancel jobs first: that unblocks ?wait=1 handlers, so the HTTP
	// drain below completes instead of riding out the whole timeout.
	svc.Stop()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("somad: http shutdown: %v", err)
	}
	// Wait for the worker pool to notice the cancellations and exit.
	if err := svc.Shutdown(dctx); err != nil {
		log.Printf("somad: job drain: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "somad:", err)
	os.Exit(1)
}
